test/test_deviation.mli:
