test/test_multihop.ml: Alcotest Array Dcf Fun Gen List Macgame Mobility Prelude Printf QCheck QCheck_alcotest Stdlib
