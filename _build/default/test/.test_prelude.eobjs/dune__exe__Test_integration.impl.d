test/test_integration.ml: Alcotest Array Dcf Float List Macgame Mobility Netsim Prelude Printf
