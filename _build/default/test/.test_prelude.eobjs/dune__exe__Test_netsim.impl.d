test/test_netsim.ml: Alcotest Array Dcf Float Fun List Mobility Netsim Prelude Printf
