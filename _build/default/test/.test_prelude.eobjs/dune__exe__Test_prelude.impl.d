test/test_prelude.ml: Alcotest Array Ascii_plot Float Fun Gen Prelude QCheck QCheck_alcotest Rng Stats String Table Util
