test/test_dcf.ml: Alcotest Array Dcf Float Format Gen List Prelude Printf QCheck QCheck_alcotest String
