test/test_deviation.ml: Alcotest Array Dcf Fun List Macgame Prelude Printf QCheck QCheck_alcotest Stdlib
