test/test_dcf.mli:
