test/test_multihop.mli:
