test/test_game.ml: Alcotest Array Dcf Float Format Gen List Macgame Option Prelude Printf QCheck QCheck_alcotest Result Stdlib
