test/test_extensions.ml: Alcotest Array Dcf Filename Float Fun List Macgame Netsim Numerics Prelude Printf QCheck QCheck_alcotest Stdlib Sys
