test/test_numerics.ml: Alcotest Array Fixed_point Float Fun List Numerics Optimize Prelude Printf QCheck QCheck_alcotest Roots
