test/test_telemetry.ml: Alcotest Array Dcf Filename Float List Macgame Netsim String Sys Telemetry
