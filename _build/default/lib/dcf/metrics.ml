type t = {
  p_tr : float;
  p_s : float;
  slot_time : float;
  throughput : float;
  per_node_success : float array;
  per_node_throughput : float array;
  idle_time : float;
  success_time : float;
  collision_time : float;
}

let of_taus (params : Params.t) taus =
  let n = Array.length taus in
  if n = 0 then invalid_arg "Metrics.of_taus: empty profile";
  let timing = Timing.of_params params in
  (* Π(1−τ_j) via prefix/suffix products, reused for the per-node terms. *)
  let prefix = Array.make (n + 1) 1. in
  let suffix = Array.make (n + 1) 1. in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) *. (1. -. taus.(i))
  done;
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) *. (1. -. taus.(i))
  done;
  let all_idle = prefix.(n) in
  let p_tr = 1. -. all_idle in
  let per_node_success =
    Array.init n (fun i -> taus.(i) *. prefix.(i) *. suffix.(i + 1))
  in
  let p_any_success = Array.fold_left ( +. ) 0. per_node_success in
  let p_s = if p_tr > 0. then p_any_success /. p_tr else 0. in
  let idle_time = all_idle *. params.sigma in
  let success_time = p_any_success *. timing.ts in
  let collision_time = (p_tr -. p_any_success) *. timing.tc in
  let slot_time = idle_time +. success_time +. collision_time in
  let throughput = p_any_success *. timing.payload /. slot_time in
  let per_node_throughput =
    Array.map (fun ps -> ps *. timing.payload /. slot_time) per_node_success
  in
  {
    p_tr;
    p_s;
    slot_time;
    throughput;
    per_node_success;
    per_node_throughput;
    idle_time;
    success_time;
    collision_time;
  }

let of_solution params (solution : Solver.solution) =
  of_taus params solution.taus

let idle_fraction t = t.idle_time /. t.slot_time

let collision_fraction t = t.collision_time /. t.slot_time

let success_fraction t = t.success_time /. t.slot_time
