(** Medium-access delay analysis (the Sec. VIII extension).

    The paper's utility ignores delay and admits very large NE windows; this
    module derives the saturation access-delay quantities needed to price
    delay into the game.  All results are per-node, conditioned on a solved
    profile (τ_i, p_i) and the network's mean virtual-slot length T̄slot.

    In saturation a node delivers a packet with probability τ_i(1−p_i) per
    virtual slot, so successful deliveries form a renewal process and the
    mean head-of-line access delay is T̄slot / (τ_i·(1−p_i)). *)

type t = {
  mean_delay : float;
      (** mean time between a node's successful deliveries, s *)
  attempts_per_packet : float;
      (** expected transmission attempts per delivered packet: 1/(1−p) *)
  backoff_slots_per_packet : float;
      (** expected backoff slots counted down per delivered packet, from the
          stage-by-stage chain structure *)
}

val of_node : slot_time:float -> tau:float -> p:float -> w:int -> m:int -> t
(** Delay view of one node.  Requires [p < 1] (a node that never succeeds
    has infinite delay — raises [Invalid_argument]). *)

val of_profile : Params.t -> taus:float array -> ps:float array -> cws:int array -> t array
(** Delay view of every node in a solved heterogeneous profile. *)

val expected_backoff_slots : w:int -> m:int -> p:float -> float
(** E[total backoff counted down per packet]:
    Σ_{j<m} p^j·(2^j·w − 1)/2 + p^m/(1−p)·(2^m·w − 1)/2 — each reached
    stage j contributes its mean drawn counter. *)

val drop_probability : p:float -> retry_limit:int -> float
(** With a finite retry limit R (real DCF discards after R+1 attempts;
    the paper's chain retries forever), the per-packet drop probability is
    p^(R+1). *)

val jain_delay_fairness : t array -> float
(** Jain index over the nodes' mean delays: 1 when every node waits
    equally long. *)
