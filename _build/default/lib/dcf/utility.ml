let check_p_hn p_hn =
  if p_hn <= 0. || p_hn > 1. then
    invalid_arg "Utility: p_hn must be in (0, 1]"

let rate_of_node ?(p_hn = 1.) (params : Params.t) ~slot_time ~tau ~p =
  check_p_hn p_hn;
  tau *. (((1. -. p) *. p_hn *. params.gain) -. params.cost) /. slot_time

let rates ?(p_hn = 1.) (params : Params.t) ~taus ~ps =
  check_p_hn p_hn;
  if Array.length taus <> Array.length ps then
    invalid_arg "Utility.rates: profile length mismatch";
  let metrics = Metrics.of_taus params taus in
  Array.map2
    (fun tau p -> rate_of_node ~p_hn params ~slot_time:metrics.slot_time ~tau ~p)
    taus ps

let stage (params : Params.t) u = u *. params.stage_duration

let discounted (params : Params.t) u =
  u *. params.stage_duration /. (1. -. params.discount)

let discounted_tail (params : Params.t) ~from_stage u =
  (params.discount ** float_of_int from_stage) *. discounted params u

let social_welfare = Array.fold_left ( +. ) 0.

let normalized_global (params : Params.t) rates =
  params.sigma *. social_welfare rates /. params.gain
