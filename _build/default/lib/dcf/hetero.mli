(** Channel metrics for heterogeneous frame durations.

    {!module:Metrics} assumes every node occupies the channel for the same
    Ts/Tc.  Pricing per-node payload sizes or PHY rates (the "rate control"
    extension sketched in the paper's conclusion) needs the general form:
    node i's successful transmission holds the channel for [ts.(i)], and a
    collision holds it for the *longest* colliding frame.

    With S the random transmitter set of a slot (i ∈ S independently with
    probability τ_i), the exact collision-time expectation is computed by
    sorting nodes by [tc] and decomposing on the index of the longest
    transmitter:

    E[Tc·1(|S|≥2)] = Σ_k tc_k · τ_k · Π_{j>k}(1−τ_j) · (1 − Π_{j<k}(1−τ_j))

    (ties broken by index), which is O(n log n) — no subset enumeration. *)

type t = {
  p_tr : float;
  p_s : float;
  slot_time : float;             (** T̄slot with per-node durations *)
  per_node_success : float array;(** P(node i transmits alone) per slot *)
  per_node_goodput : float array;
      (** node i's payload-bit rate share: success_i·payload_bits_i/T̄slot,
          normalised by the channel bit rate — comparable to S *)
  expected_collision_time : float;
      (** E[Tc · 1(collision)] per slot, s *)
}

val of_profile :
  sigma:float ->
  taus:float array ->
  ts:float array ->
  tc:float array ->
  payload_time:float array ->
  t
(** All arrays indexed by node; [payload_time] is the airtime of the
    payload bits only (used for goodput).  @raise Invalid_argument on
    length mismatches or empty input. *)

val node_timing :
  Params.t -> payload_bits:int -> bit_rate:float -> float * float * float
(** [(ts, tc, payload_time)] of a node sending [payload_bits] payloads at
    PHY rate [bit_rate] (control frames and headers stay at the parameter
    set's base rate, as in 802.11 where the PLCP header is always sent at
    the base rate). *)
