type t = { ts : float; tc : float; payload : float; header : float }

let tx_time (p : Params.t) bits = float_of_int bits /. p.bit_rate

let of_params (p : Params.t) =
  let header = tx_time p (p.phy_header_bits + p.mac_header_bits) in
  let payload = tx_time p p.payload_bits in
  let ack = tx_time p (p.ack_bits + p.phy_header_bits) in
  let rts = tx_time p (p.rts_bits + p.phy_header_bits) in
  let cts = tx_time p (p.cts_bits + p.phy_header_bits) in
  match p.mode with
  | Params.Basic ->
      {
        ts = header +. payload +. p.sifs +. ack +. p.difs;
        tc = header +. payload +. p.sifs;
        payload;
        header;
      }
  | Params.Rts_cts ->
      {
        ts =
          rts +. p.sifs +. cts +. p.sifs +. header +. payload +. p.sifs +. ack
          +. p.difs;
        tc = rts +. p.difs;
        payload;
        header;
      }
