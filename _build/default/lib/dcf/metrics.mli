(** Channel-level metrics derived from a solved transmission-probability
    profile (Sec. III).

    With Ptr = 1 − Π_j(1−τ_j) the probability that a slot carries at least
    one transmission and Ps the probability it carries exactly one
    (conditioned on Ptr), the mean virtual slot length is

    T̄slot = (1−Ptr)·σ + Ptr·Ps·Ts + Ptr·(1−Ps)·Tc

    and the normalised saturation throughput is S = Ptr·Ps·E[P]/T̄slot. *)

type t = {
  p_tr : float;          (** P(≥1 transmission in a slot) *)
  p_s : float;           (** P(exactly one | ≥1) *)
  slot_time : float;     (** T̄slot, s *)
  throughput : float;    (** S, fraction of airtime carrying payload *)
  per_node_success : float array;
      (** per slot: P(node i transmits alone) = τ_i·Π_{j≠i}(1−τ_j) *)
  per_node_throughput : float array;
      (** node i's share of S *)
  idle_time : float;     (** (1−Ptr)·σ, the idle component of T̄slot *)
  success_time : float;  (** Ptr·Ps·Ts component of T̄slot *)
  collision_time : float;(** Ptr·(1−Ps)·Tc component of T̄slot *)
}

val of_taus : Params.t -> float array -> t
(** Metrics of the network whose solved profile is [taus]. *)

val of_solution : Params.t -> Solver.solution -> t

val idle_fraction : t -> float
(** Fraction of time the channel is idle. *)

val collision_fraction : t -> float
(** Fraction of time wasted in collisions. *)

val success_fraction : t -> float
(** Fraction of time in successful transmissions (payload plus protocol
    overhead).  The three fractions sum to 1. *)
