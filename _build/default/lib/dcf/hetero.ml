type t = {
  p_tr : float;
  p_s : float;
  slot_time : float;
  per_node_success : float array;
  per_node_goodput : float array;
  expected_collision_time : float;
}

let of_profile ~sigma ~taus ~ts ~tc ~payload_time =
  let n = Array.length taus in
  if n = 0 then invalid_arg "Hetero.of_profile: empty profile";
  if
    Array.length ts <> n || Array.length tc <> n
    || Array.length payload_time <> n
  then invalid_arg "Hetero.of_profile: length mismatch";
  (* Prefix/suffix products of (1−τ) in the original order for the
     per-node success probabilities. *)
  let prefix = Array.make (n + 1) 1. in
  let suffix = Array.make (n + 1) 1. in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) *. (1. -. taus.(i))
  done;
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) *. (1. -. taus.(i))
  done;
  let all_idle = prefix.(n) in
  let p_tr = 1. -. all_idle in
  let per_node_success =
    Array.init n (fun i -> taus.(i) *. prefix.(i) *. suffix.(i + 1))
  in
  let p_any_success = Array.fold_left ( +. ) 0. per_node_success in
  let p_s = if p_tr > 0. then p_any_success /. p_tr else 0. in
  (* Collision-time expectation: decompose on the transmitter with the
     longest collision duration, after sorting by tc ascending. *)
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> compare tc.(a) tc.(b)) order;
  let expected_collision_time = ref 0. in
  let below = ref 1. (* Π_{j before k in sorted order} (1−τ_j) *) in
  let above = Array.make (n + 1) 1. in
  for k = n - 1 downto 0 do
    above.(k) <- above.(k + 1) *. (1. -. taus.(order.(k)))
  done;
  for k = 0 to n - 1 do
    let i = order.(k) in
    expected_collision_time :=
      !expected_collision_time
      +. (tc.(i) *. taus.(i) *. above.(k + 1) *. (1. -. !below));
    below := !below *. (1. -. taus.(i))
  done;
  let success_time =
    Array.fold_left ( +. ) 0.
      (Array.init n (fun i -> per_node_success.(i) *. ts.(i)))
  in
  let slot_time =
    (all_idle *. sigma) +. success_time +. !expected_collision_time
  in
  let per_node_goodput =
    Array.init n (fun i -> per_node_success.(i) *. payload_time.(i) /. slot_time)
  in
  {
    p_tr;
    p_s;
    slot_time;
    per_node_success;
    per_node_goodput;
    expected_collision_time = !expected_collision_time;
  }

let node_timing (params : Params.t) ~payload_bits ~bit_rate =
  if payload_bits <= 0 then invalid_arg "Hetero.node_timing: payload must be positive";
  if bit_rate <= 0. then invalid_arg "Hetero.node_timing: rate must be positive";
  (* Headers and control frames stay at the base rate; only the payload
     rides the node's PHY rate. *)
  let base = Timing.tx_time params in
  let header = base (params.phy_header_bits + params.mac_header_bits) in
  let ack = base (params.ack_bits + params.phy_header_bits) in
  let rts = base (params.rts_bits + params.phy_header_bits) in
  let cts = base (params.cts_bits + params.phy_header_bits) in
  let payload_time = float_of_int payload_bits /. bit_rate in
  match params.mode with
  | Params.Basic ->
      ( header +. payload_time +. params.sifs +. ack +. params.difs,
        header +. payload_time +. params.sifs,
        payload_time )
  | Params.Rts_cts ->
      ( rts +. params.sifs +. cts +. params.sifs +. header +. payload_time
        +. params.sifs +. ack +. params.difs,
        rts +. params.difs,
        payload_time )
