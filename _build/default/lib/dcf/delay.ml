type t = {
  mean_delay : float;
  attempts_per_packet : float;
  backoff_slots_per_packet : float;
}

let expected_backoff_slots ~w ~m ~p =
  if p < 0. || p > 1. then invalid_arg "Delay: p must be in [0, 1]";
  if w < 1 then invalid_arg "Delay: window must be >= 1";
  if m < 0 then invalid_arg "Delay: max stage must be >= 0";
  if p >= 1. then infinity
  else begin
    let total = ref 0. in
    let pj = ref 1. in
    for j = 0 to m - 1 do
      total := !total +. (!pj *. (float_of_int ((w lsl j) - 1) /. 2.));
      pj := !pj *. p
    done;
    (* The last stage repeats on every further collision. *)
    !total +. (!pj /. (1. -. p) *. (float_of_int ((w lsl m) - 1) /. 2.))
  end

let of_node ~slot_time ~tau ~p ~w ~m =
  if p >= 1. || tau <= 0. then
    invalid_arg "Delay.of_node: node never succeeds (p = 1 or tau = 0)";
  {
    mean_delay = slot_time /. (tau *. (1. -. p));
    attempts_per_packet = 1. /. (1. -. p);
    backoff_slots_per_packet = expected_backoff_slots ~w ~m ~p;
  }

let of_profile (params : Params.t) ~taus ~ps ~cws =
  let n = Array.length taus in
  if Array.length ps <> n || Array.length cws <> n then
    invalid_arg "Delay.of_profile: length mismatch";
  let metrics = Metrics.of_taus params taus in
  Array.init n (fun i ->
      of_node ~slot_time:metrics.slot_time ~tau:taus.(i) ~p:ps.(i) ~w:cws.(i)
        ~m:params.max_backoff_stage)

let drop_probability ~p ~retry_limit =
  if retry_limit < 0 then invalid_arg "Delay: retry_limit must be >= 0";
  if p < 0. || p > 1. then invalid_arg "Delay: p must be in [0, 1]";
  p ** float_of_int (retry_limit + 1)

let jain_delay_fairness views =
  Prelude.Stats.jain_fairness (Array.map (fun v -> v.mean_delay) views)
