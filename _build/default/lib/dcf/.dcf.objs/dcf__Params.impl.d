lib/dcf/params.ml: Format
