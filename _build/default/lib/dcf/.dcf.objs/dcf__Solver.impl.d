lib/dcf/solver.ml: Array Bianchi List Numerics Params Prelude Telemetry
