lib/dcf/model.ml: Array Metrics Params Solver Utility
