lib/dcf/utility.ml: Array Metrics Params
