lib/dcf/delay.mli: Params
