lib/dcf/timing.ml: Params
