lib/dcf/hetero.mli: Params
