lib/dcf/delay.ml: Array Metrics Params Prelude
