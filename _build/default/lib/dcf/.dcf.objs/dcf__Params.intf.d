lib/dcf/params.mli: Format
