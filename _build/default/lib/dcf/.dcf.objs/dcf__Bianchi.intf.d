lib/dcf/bianchi.mli:
