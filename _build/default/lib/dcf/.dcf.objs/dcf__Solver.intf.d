lib/dcf/solver.mli: Params
