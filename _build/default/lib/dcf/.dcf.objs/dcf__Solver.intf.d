lib/dcf/solver.mli: Params Telemetry
