lib/dcf/metrics.mli: Params Solver
