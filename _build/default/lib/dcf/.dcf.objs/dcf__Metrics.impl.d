lib/dcf/metrics.ml: Array Params Solver Timing
