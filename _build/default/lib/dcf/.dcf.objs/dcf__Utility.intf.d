lib/dcf/utility.mli: Params
