lib/dcf/hetero.ml: Array Fun Params Timing
