lib/dcf/bianchi.ml: Array Prelude
