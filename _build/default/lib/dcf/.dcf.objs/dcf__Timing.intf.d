lib/dcf/timing.mli: Params
