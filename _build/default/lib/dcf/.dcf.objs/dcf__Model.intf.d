lib/dcf/model.mli: Metrics Params
