type t = int array

let uniform ~n ~w =
  if n < 1 then invalid_arg "Profile.uniform: need n >= 1";
  if w < 1 then invalid_arg "Profile.uniform: window must be >= 1";
  Array.make n w

let with_deviant ~n ~w ~w_dev =
  if n < 2 then invalid_arg "Profile.with_deviant: need n >= 2";
  let p = uniform ~n ~w in
  if w_dev < 1 then invalid_arg "Profile.with_deviant: window must be >= 1";
  p.(0) <- w_dev;
  p

let is_uniform t =
  Array.length t > 0 && Array.for_all (fun w -> w = t.(0)) t

let min_window t =
  if Array.length t = 0 then invalid_arg "Profile.min_window: empty profile";
  Array.fold_left Stdlib.min t.(0) t

let validate ~cw_max t =
  if Array.length t = 0 then Error "empty profile"
  else if Array.exists (fun w -> w < 1 || w > cw_max) t then
    Error (Printf.sprintf "windows must lie in [1, %d]" cw_max)
  else Ok ()

let equal a b = a = b

let pp ppf t =
  if is_uniform t then
    Format.fprintf ppf "%dx%d" (Array.length t) t.(0)
  else begin
    Format.pp_print_char ppf '[';
    Array.iteri
      (fun i w ->
        if i > 0 then Format.pp_print_string ppf "; ";
        Format.pp_print_int ppf w)
      t;
    Format.pp_print_char ppf ']'
  end
