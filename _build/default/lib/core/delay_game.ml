let check_gamma gamma =
  if gamma < 0. then invalid_arg "Delay_game: gamma must be >= 0"

let node_quantities (params : Dcf.Params.t) ~n ~w =
  let tau, p = Dcf.Solver.solve_homogeneous params ~n ~w in
  let metrics = Dcf.Metrics.of_taus params (Array.make n tau) in
  (tau, p, metrics)

let payoff (params : Dcf.Params.t) ~gamma ~n ~w =
  check_gamma gamma;
  let tau, p, metrics = node_quantities params ~n ~w in
  if p >= 1. then -.(tau *. params.cost) /. metrics.slot_time
  else begin
    let delay =
      (Dcf.Delay.of_node ~slot_time:metrics.slot_time ~tau ~p ~w
         ~m:params.max_backoff_stage)
        .mean_delay
    in
    tau
    *. (((1. -. p) *. params.gain /. (1. +. (gamma *. delay))) -. params.cost)
    /. metrics.slot_time
  end

let efficient_cw (params : Dcf.Params.t) ~gamma ~n =
  check_gamma gamma;
  if n < 1 then invalid_arg "Delay_game.efficient_cw: need n >= 1";
  if n = 1 then 1
  else
    fst
      (Numerics.Optimize.ternary_int_max
         (fun w -> payoff params ~gamma ~n ~w)
         1 params.cw_max)

let delay_at_ne (params : Dcf.Params.t) ~gamma ~n =
  let w = efficient_cw params ~gamma ~n in
  let tau, p, metrics = node_quantities params ~n ~w in
  (Dcf.Delay.of_node ~slot_time:metrics.slot_time ~tau ~p ~w
     ~m:params.max_backoff_stage)
    .mean_delay

type tradeoff_point = {
  gamma : float;
  w_star : int;
  delay : float;
  throughput : float;
}

let tradeoff (params : Dcf.Params.t) ~n ~gammas =
  Array.map
    (fun gamma ->
      let w_star = efficient_cw params ~gamma ~n in
      let tau, p, metrics = node_quantities params ~n ~w:w_star in
      let delay =
        if p >= 1. then infinity
        else
          (Dcf.Delay.of_node ~slot_time:metrics.slot_time ~tau ~p ~w:w_star
             ~m:params.max_backoff_stage)
            .mean_delay
      in
      { gamma; w_star; delay; throughput = metrics.throughput })
    gammas
