type stage_payoffs = {
  deviant : float;
  conformer : float;
  uniform_w : float;
  uniform_star : float;
}

let stage_payoffs (params : Dcf.Params.t) ~n ~w_star ~w_dev =
  let during = Dcf.Model.with_deviant params ~n ~w:w_star ~w_dev in
  let stage u = Dcf.Utility.stage params u in
  {
    deviant = stage during.Dcf.Model.deviant.utility;
    conformer = stage during.Dcf.Model.conformer.utility;
    uniform_w = stage (Dcf.Model.homogeneous params ~n ~w:w_dev).Dcf.Model.utility;
    uniform_star =
      stage (Dcf.Model.homogeneous params ~n ~w:w_star).Dcf.Model.utility;
  }

let check_delta delta_s =
  if delta_s < 0. || delta_s >= 1. then
    invalid_arg "Deviation: delta_s must be in [0, 1)"

let deviant_total params ~n ~w_star ~w_dev ~delta_s ~react_stages =
  check_delta delta_s;
  if react_stages < 1 then invalid_arg "Deviation: react_stages must be >= 1";
  let p = stage_payoffs params ~n ~w_star ~w_dev in
  let dm = delta_s ** float_of_int react_stages in
  (((1. -. dm) *. p.deviant) +. (dm *. p.uniform_w)) /. (1. -. delta_s)

let honest_total params ~n ~w_star ~delta_s =
  check_delta delta_s;
  let u = (Dcf.Model.homogeneous params ~n ~w:w_star).Dcf.Model.utility in
  Dcf.Utility.stage params u /. (1. -. delta_s)

let best_deviation params ~n ~w_star ~delta_s ~react_stages =
  Numerics.Optimize.exhaustive_int_max
    (fun w_dev -> deviant_total params ~n ~w_star ~w_dev ~delta_s ~react_stages)
    1 w_star

let critical_discount ?(tol = 1e-6) params ~n ~w_star ~react_stages =
  if w_star <= 1 then 0.
  else begin
    (* Strict deviations only: W_s = W_c★ trivially ties with honesty, so
       including it would keep the gain non-negative forever.  Both totals
       carry the same 1/(1−δ_s) factor, so compare the numerators — the
       strict gain is decreasing in δ_s (free-riding stages weigh less as
       patience grows) and crosses zero at the critical patience. *)
    let gain delta_s =
      let _, best =
        Numerics.Optimize.exhaustive_int_max
          (fun w_dev ->
            deviant_total params ~n ~w_star ~w_dev ~delta_s ~react_stages)
          1 (w_star - 1)
      in
      (best -. honest_total params ~n ~w_star ~delta_s) *. (1. -. delta_s)
    in
    if gain 0. <= 0. then 0.
    else if gain (1. -. tol) > 0. then 1.
    else Numerics.Roots.bisect ~tol gain 0. (1. -. tol)
  end

type coalition_stage = {
  member : float;
  outsider : float;
  punished : float;
  honest : float;
}

let coalition_stage_payoffs (params : Dcf.Params.t) ~n ~w_star ~k ~w_dev =
  if k < 1 || k >= n then
    invalid_arg "Deviation.coalition_stage_payoffs: need 1 <= k < n";
  let classes = Dcf.Solver.solve_classes params [ (w_dev, k); (w_star, n - k) ] in
  let (tau_m, p_m), (tau_o, p_o) =
    match classes with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  let taus = Array.init n (fun i -> if i < k then tau_m else tau_o) in
  let metrics = Dcf.Metrics.of_taus params taus in
  let stage tau p =
    Dcf.Utility.stage params
      (Dcf.Utility.rate_of_node params ~slot_time:metrics.slot_time ~tau ~p)
  in
  {
    member = stage tau_m p_m;
    outsider = stage tau_o p_o;
    punished =
      Dcf.Utility.stage params
        (Dcf.Model.homogeneous params ~n ~w:w_dev).Dcf.Model.utility;
    honest =
      Dcf.Utility.stage params
        (Dcf.Model.homogeneous params ~n ~w:w_star).Dcf.Model.utility;
  }

let coalition_member_total params ~n ~w_star ~k ~w_dev ~delta_s ~react_stages =
  check_delta delta_s;
  if react_stages < 1 then invalid_arg "Deviation: react_stages must be >= 1";
  let p = coalition_stage_payoffs params ~n ~w_star ~k ~w_dev in
  let dm = delta_s ** float_of_int react_stages in
  (((1. -. dm) *. p.member) +. (dm *. p.punished)) /. (1. -. delta_s)

let coalition_gain params ~n ~w_star ~k ~w_dev ~delta_s ~react_stages =
  coalition_member_total params ~n ~w_star ~k ~w_dev ~delta_s ~react_stages
  -. honest_total params ~n ~w_star ~delta_s

let critical_discount_for ?(tol = 1e-9) params ~n ~w_star ~w_dev ~react_stages =
  let gain delta_s =
    (deviant_total params ~n ~w_star ~w_dev ~delta_s ~react_stages
    -. honest_total params ~n ~w_star ~delta_s)
    *. (1. -. delta_s)
  in
  if gain 0. <= 0. then 0.
  else if gain (1. -. 1e-12) > 0. then 1.
  else Numerics.Roots.bisect ~tol gain 0. (1. -. 1e-12)

let malicious_welfare params ~n ~w_mal =
  float_of_int n
  *. (Dcf.Model.homogeneous params ~n ~w:w_mal).Dcf.Model.utility
