(** Detection-theoretic design of the GTFT tolerance (linking [3] to
    Sec. IV).

    A TFT/GTFT player flags neighbour j as a cheater when its estimated
    window Ŵ_j falls below β·W_exp, where W_exp is the window everyone is
    supposed to play.  With the backoff-counting estimator
    ({!Observer.sampling}), Ŵ is approximately Normal(W_true, σ²) with
    σ = 2·√((W_true²−1)/12k) after k observed backoffs, so both error rates
    of the trigger have closed forms:

    - false positive: P(Ŵ < β·W_exp | W_true = W_exp) — punishing an
      honest neighbour, which under plain TFT collapses the network;
    - detection: P(Ŵ < β·W_exp | W_true = c·W_exp) for a cheater playing a
      fraction c < β of the expected window.

    GTFT's averaging over r0 stages multiplies the effective sample count
    by r0, which is how (r0, β) should be chosen: make the false-positive
    rate negligible at the noise level while still detecting the cheats
    that matter. *)

val false_positive_rate : w_exp:int -> samples:int -> beta:float -> float
(** P(flag an honest node).  [beta ∈ (0, 1]], [samples ≥ 1]. *)

val detection_rate :
  w_true:int -> w_exp:int -> samples:int -> beta:float -> float
(** P(flag a node whose true window is [w_true]). *)

val required_samples : w_exp:int -> beta:float -> max_fp:float -> int
(** Smallest k with [false_positive_rate ≤ max_fp] ([max_fp ∈ (0, 0.5)]).
    Closed form from the normal quantile, then adjusted to the exact
    integer threshold. *)

type design = {
  beta : float;
  samples_per_stage : int;  (** k needed in a single stage *)
  r0 : int;                 (** GTFT stages to average when only
                                [per_stage] samples arrive per stage *)
  false_positive : float;   (** achieved FP rate *)
  detection : float;        (** achieved detection of the target cheat *)
}

val design_gtft :
  w_exp:int -> cheat_factor:float -> per_stage:int -> max_fp:float ->
  min_detection:float -> design option
(** Find the cheapest tolerance meeting both error budgets: over
    β ∈ (cheat_factor, 1), compute the r0 (averaging depth) that makes the
    false-positive budget hold with [per_stage] backoff observations per
    stage, require the cheat at [cheat_factor]·w_exp to be caught with
    probability ≥ [min_detection], and return the feasible design with the
    smallest r0 (ties broken toward the larger β).  [None] if nothing
    works within r0 ≤ 64. *)

val empirical_rates :
  rng:Prelude.Rng.t -> trials:int -> w_true:int -> w_exp:int -> samples:int ->
  beta:float -> float
(** Monte-Carlo flag rate of the exact (non-Gaussian) estimator — used by
    the tests to validate the closed forms. *)
