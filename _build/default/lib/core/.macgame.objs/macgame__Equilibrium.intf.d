lib/core/equilibrium.mli: Dcf Telemetry
