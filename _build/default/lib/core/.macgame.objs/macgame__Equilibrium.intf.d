lib/core/equilibrium.mli: Dcf
