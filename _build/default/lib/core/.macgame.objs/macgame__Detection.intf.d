lib/core/detection.mli: Prelude
