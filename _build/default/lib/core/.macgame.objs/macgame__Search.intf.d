lib/core/search.mli: Dcf Prelude Telemetry
