lib/core/search.ml: Dcf Float Hashtbl List Prelude Telemetry
