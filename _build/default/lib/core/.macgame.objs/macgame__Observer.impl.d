lib/core/observer.ml: Array Float Prelude Printf
