lib/core/equilibrium.ml: Dcf Float Numerics Telemetry
