lib/core/repeated.ml: Array Dcf Hashtbl List Observer Prelude Profile Strategy Telemetry
