lib/core/repeated.ml: Array Dcf Hashtbl List Observer Profile Strategy
