lib/core/strategy.ml: Array Dcf Format List Numerics Printf Stdlib
