lib/core/strategy.mli: Dcf Format
