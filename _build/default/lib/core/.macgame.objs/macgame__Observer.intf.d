lib/core/observer.mli: Prelude
