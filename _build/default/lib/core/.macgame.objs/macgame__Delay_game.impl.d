lib/core/delay_game.ml: Array Dcf Numerics
