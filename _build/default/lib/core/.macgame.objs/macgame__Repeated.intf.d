lib/core/repeated.mli: Dcf Observer Profile Strategy Telemetry
