lib/core/welfare.ml: Array Dcf Equilibrium Float Hashtbl List Prelude Stdlib
