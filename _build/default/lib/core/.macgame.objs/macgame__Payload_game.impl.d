lib/core/payload_game.ml: Array Dcf List Numerics Stdlib
