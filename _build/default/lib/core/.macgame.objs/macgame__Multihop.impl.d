lib/core/multihop.ml: Array Dcf Equilibrium Float Hashtbl List Numerics Observer Prelude Queue Stdlib
