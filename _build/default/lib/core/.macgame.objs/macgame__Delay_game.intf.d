lib/core/delay_game.mli: Dcf
