lib/core/multihop.mli: Dcf Observer
