lib/core/detection.ml: Float List Numerics Prelude Stdlib
