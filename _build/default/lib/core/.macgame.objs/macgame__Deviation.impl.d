lib/core/deviation.ml: Array Dcf Numerics
