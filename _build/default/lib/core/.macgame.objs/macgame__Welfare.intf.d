lib/core/welfare.mli: Dcf
