lib/core/payload_game.mli: Dcf
