lib/core/profile.ml: Array Format Printf Stdlib
