lib/core/deviation.mli: Dcf
