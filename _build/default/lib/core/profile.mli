(** Strategy profiles of the MAC game: one contention-window value per
    player (Definition 1's W^k). *)

type t = int array

val uniform : n:int -> w:int -> t
(** All [n ≥ 1] players on window [w ≥ 1]. *)

val with_deviant : n:int -> w:int -> w_dev:int -> t
(** Player 0 on [w_dev], the other n−1 players on [w] — Lemma 4's
    configuration. *)

val is_uniform : t -> bool

val min_window : t -> int
(** Smallest window in the profile (the TFT attractor).
    @raise Invalid_argument on an empty profile. *)

val validate : cw_max:int -> t -> (unit, string) result
(** Every window must lie in the strategy space [1, cw_max]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Compact rendering: uniform profiles as [n×W], others as a list. *)
