let payoff params ~n ~w = (Dcf.Model.homogeneous params ~n ~w).Dcf.Model.utility

let efficient_cw ?(telemetry = Telemetry.Registry.default) (params : Dcf.Params.t)
    ~n =
  if n < 1 then invalid_arg "Equilibrium.efficient_cw: need n >= 1";
  if n = 1 then 1
  else begin
    let candidates = Telemetry.Registry.counter telemetry "equilibrium.candidates" in
    let evaluate w =
      let u = payoff params ~n ~w in
      Telemetry.Metric.incr candidates;
      Telemetry.Registry.emit telemetry "cw_candidate" (fun () ->
          [
            ("n", Telemetry.Jsonx.Int n);
            ("w", Telemetry.Jsonx.Int w);
            ("payoff", Telemetry.Jsonx.Float u);
          ]);
      u
    in
    let w_star =
      fst (Numerics.Optimize.ternary_int_max evaluate 1 params.cw_max)
    in
    Telemetry.Registry.emit telemetry "efficient_cw" (fun () ->
        [ ("n", Telemetry.Jsonx.Int n); ("w", Telemetry.Jsonx.Int w_star) ]);
    w_star
  end

let tau_star (params : Dcf.Params.t) ~n =
  if n < 1 then invalid_arg "Equilibrium.tau_star: need n >= 1";
  if n = 1 then 1.
  else begin
    let timing = Dcf.Timing.of_params params in
    let nf = float_of_int n in
    let q tau =
      let idle = (1. -. tau) ** nf in
      (idle *. params.sigma) +. ((1. -. idle -. (nf *. tau)) *. timing.tc)
    in
    Numerics.Roots.brent q 1e-12 (1. -. 1e-12)
  end

let cw_of_tau (params : Dcf.Params.t) ~n target =
  if target <= 0. || target > 1. then
    invalid_arg "Equilibrium.cw_of_tau: target must be in (0, 1]";
  let tau_of w = fst (Dcf.Solver.solve_homogeneous params ~n ~w) in
  (* τ(W) is decreasing; find the smallest W with τ(W) ≤ target, then pick
     the closer of it and its left neighbour. *)
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if tau_of mid <= target then search lo mid else search (mid + 1) hi
    end
  in
  let w = search 1 params.cw_max in
  if w = 1 then 1
  else begin
    let better_left =
      Float.abs (tau_of (w - 1) -. target) < Float.abs (tau_of w -. target)
    in
    if better_left then w - 1 else w
  end

let break_even_cw params ~n =
  if n < 1 then invalid_arg "Equilibrium.break_even_cw: need n >= 1";
  let w_star = efficient_cw params ~n in
  let u w = payoff params ~n ~w in
  if u 1 > 0. then 1
  else begin
    (* u is increasing on [1, W_c*]; binary search for the sign change. *)
    let rec search lo hi =
      (* invariant: u lo ≤ 0 < u hi *)
      if hi - lo <= 1 then hi
      else begin
        let mid = (lo + hi) / 2 in
        if u mid > 0. then search lo mid else search mid hi
      end
    in
    search 1 w_star
  end

type ne_set = { w_lo : int; w_hi : int }

let ne_set params ~n =
  { w_lo = break_even_cw params ~n; w_hi = efficient_cw params ~n }

let is_ne params ~n ~w =
  let { w_lo; w_hi } = ne_set params ~n in
  w >= w_lo && w <= w_hi

let is_efficient params ~n ~w = w = efficient_cw params ~n

let social_welfare params ~n ~w = float_of_int n *. payoff params ~n ~w

let robust_range (params : Dcf.Params.t) ~n ~fraction =
  if fraction <= 0. || fraction > 1. then
    invalid_arg "Equilibrium.robust_range: fraction must be in (0, 1]";
  let w_star = efficient_cw params ~n in
  let threshold = fraction *. payoff params ~n ~w:w_star in
  let u w = payoff params ~n ~w in
  (* Unimodality: u ≥ threshold on a contiguous range around W_c*. *)
  let rec lowest lo hi =
    (* invariant: u hi ≥ threshold, u lo < threshold (or lo = hi) *)
    if hi - lo <= 1 then hi
    else begin
      let mid = (lo + hi) / 2 in
      if u mid >= threshold then lowest lo mid else lowest mid hi
    end
  in
  let rec highest lo hi =
    (* invariant: u lo ≥ threshold, u hi < threshold (or lo = hi) *)
    if hi - lo <= 1 then lo
    else begin
      let mid = (lo + hi) / 2 in
      if u mid >= threshold then highest mid hi else highest lo mid
    end
  in
  let lo = if u 1 >= threshold then 1 else lowest 1 w_star in
  let hi =
    if u params.cw_max >= threshold then params.cw_max
    else highest w_star params.cw_max
  in
  (lo, hi)

let unilateral_gain params ~n ~w ~w_dev =
  let view = Dcf.Model.with_deviant params ~n ~w ~w_dev in
  view.Dcf.Model.deviant.utility -. view.Dcf.Model.conformer.utility
