(** Streaming and batch descriptive statistics.

    The streaming accumulator uses Welford's algorithm, which is numerically
    stable for long simulation runs (millions of slot samples). *)

type t
(** Mutable streaming accumulator. *)

val create : unit -> t

val add : t -> float -> unit

val add_many : t -> float array -> unit

val count : t -> int

val mean : t -> float
(** Mean of the observations; 0 if empty. *)

val variance : t -> float
(** Unbiased sample variance (n−1 denominator); 0 if fewer than two
    observations. *)

val population_variance : t -> float
(** Variance with n denominator; 0 if empty. *)

val stddev : t -> float

val min : t -> float
(** Smallest observation; [infinity] if empty. *)

val max : t -> float
(** Largest observation; [neg_infinity] if empty. *)

val sum : t -> float

val merge : t -> t -> t
(** Accumulator equivalent to having seen both streams (Chan et al.). *)

val confidence_interval_95 : t -> float
(** Half-width of the normal-approximation 95 % confidence interval of the
    mean: 1.96·s/√n.  0 if fewer than two observations. *)

(** {1 Batch helpers} *)

val mean_of : float array -> float

val variance_of : float array -> float
(** Unbiased sample variance of the array. *)

val stddev_of : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100], linear interpolation between order
    statistics.  Raises [Invalid_argument] on an empty array. *)

val median : float array -> float

val jain_fairness : float array -> float
(** Jain's fairness index (Σx)²/(n·Σx²) of a non-negative allocation vector;
    1 when perfectly fair, 1/n when one player takes everything.  Returns 1
    for an empty or all-zero vector. *)
