type align = Left | Right

type column = { header : string; align : align }

let column ?(align = Right) header = { header; align }

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render columns rows =
  let ncols = List.length columns in
  let normalize row =
    let len = List.length row in
    if len > ncols then invalid_arg "Table.render: row wider than header"
    else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length c.header) rows)
      columns
  in
  let render_row cells =
    String.concat " | "
      (List.map2
         (fun (c, w) cell -> pad c.align w cell)
         (List.combine columns widths)
         cells)
  in
  let sep =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row (List.map (fun c -> c.header) columns));
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let render_floats ?(precision = 6) columns rows =
  let fmt x = Printf.sprintf "%.*g" precision x in
  render columns (List.map (List.map fmt) rows)
