let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_string ~header rows =
  let width = List.length header in
  let render_row row =
    if List.length row <> width then
      invalid_arg "Csv.to_string: row width differs from header";
    String.concat "," (List.map escape_field row)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (List.map escape_field header));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let write ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~header rows))

let float_rows rows =
  List.map (List.map (fun x -> Printf.sprintf "%.17g" x)) rows
