(** Terminal line plots for the figure-reproduction benches.

    Multiple series are drawn on a shared character grid with per-series
    glyphs and a legend; axes are annotated with the data ranges.  The plots
    stand in for the paper's Figures 2 and 3 so that the "shape" of a curve
    (location of the maximum, flatness around it) is visible directly in the
    bench output. *)

type series = { label : string; points : (float * float) array }

val plot :
  ?width:int -> ?height:int -> ?title:string ->
  ?x_label:string -> ?y_label:string -> series list -> string
(** Render the series to a newline-terminated string.  Default grid is
    72×20 characters.  Series get glyphs ['*'], ['+'], ['o'], ['x'], … in
    order; later series overwrite earlier ones where they collide.  Empty
    series lists or all-empty series yield a short placeholder message. *)
