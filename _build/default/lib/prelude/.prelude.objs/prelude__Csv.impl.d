lib/prelude/csv.ml: Buffer Fun List Printf String
