lib/prelude/stats.mli:
