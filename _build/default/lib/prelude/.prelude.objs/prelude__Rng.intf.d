lib/prelude/rng.mli:
