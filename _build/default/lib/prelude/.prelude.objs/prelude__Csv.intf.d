lib/prelude/csv.mli:
