lib/prelude/table.mli:
