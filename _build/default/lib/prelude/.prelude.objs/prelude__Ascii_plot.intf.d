lib/prelude/ascii_plot.mli:
