lib/prelude/table.ml: Buffer List Printf Stdlib String
