lib/prelude/util.mli:
