lib/prelude/util.ml: Array Float
