(** Plain-text table rendering for the benchmark harness.

    Tables render with a header row, a separator, and right-aligned numeric
    cells, e.g.:

    {v
    n   | Wc* (paper) | Wc* (ours)
    ----+-------------+-----------
    5   |          76 |         77
    v} *)

type align = Left | Right

type column

val column : ?align:align -> string -> column
(** A column with the given header; numeric columns should use the default
    [Right] alignment, text columns [Left]. *)

val render : column list -> string list list -> string
(** [render columns rows] renders one string per line, newline-terminated.
    Rows shorter than the column list are padded with empty cells; longer
    rows raise [Invalid_argument]. *)

val render_floats :
  ?precision:int -> column list -> float list list -> string
(** Convenience wrapper formatting every cell with [%.*g]
    (default precision 6). *)
