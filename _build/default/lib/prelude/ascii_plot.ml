type series = { label : string; points : (float * float) array }

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let plot ?(width = 72) ?(height = 20) ?title ?(x_label = "x") ?(y_label = "y")
    series =
  let all_points = Array.concat (List.map (fun s -> s.points) series) in
  if Array.length all_points = 0 then "(no data to plot)\n"
  else begin
    let xs = Array.map fst all_points and ys = Array.map snd all_points in
    let fold f init a = Array.fold_left f init a in
    let xmin = fold Float.min infinity xs and xmax = fold Float.max neg_infinity xs in
    let ymin = fold Float.min infinity ys and ymax = fold Float.max neg_infinity ys in
    let xspan = if xmax > xmin then xmax -. xmin else 1. in
    let yspan = if ymax > ymin then ymax -. ymin else 1. in
    let grid = Array.make_matrix height width ' ' in
    let place glyph (x, y) =
      let cx =
        int_of_float (Float.round ((x -. xmin) /. xspan *. float_of_int (width - 1)))
      in
      let cy =
        int_of_float (Float.round ((y -. ymin) /. yspan *. float_of_int (height - 1)))
      in
      if cx >= 0 && cx < width && cy >= 0 && cy < height then
        grid.(height - 1 - cy).(cx) <- glyph
    in
    List.iteri
      (fun i s ->
        let glyph = glyphs.(i mod Array.length glyphs) in
        Array.iter (place glyph) s.points)
      series;
    let buf = Buffer.create ((width + 16) * (height + 6)) in
    (match title with
    | Some t ->
        Buffer.add_string buf t;
        Buffer.add_char buf '\n'
    | None -> ());
    Buffer.add_string buf (Printf.sprintf "%s (top=%.4g, bottom=%.4g)\n" y_label ymax ymin);
    Array.iter
      (fun row ->
        Buffer.add_string buf "  |";
        Buffer.add_string buf (String.init width (fun i -> row.(i)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf "  +";
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "   %s: left=%.4g, right=%.4g\n" x_label xmin xmax);
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf "   %c %s\n" glyphs.(i mod Array.length glyphs) s.label))
      series;
    Buffer.contents buf
  end
