type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let add_many t xs = Array.iter (add t) xs

let count t = t.n

let mean t = if t.n = 0 then 0. else t.mean

let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)

let population_variance t = if t.n = 0 then 0. else t.m2 /. float_of_int t.n

let stddev t = sqrt (variance t)

let min t = t.min

let max t = t.max

let sum t = t.mean *. float_of_int t.n

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let nf = float_of_int n in
    let mean = a.mean +. (delta *. float_of_int b.n /. nf) in
    let m2 =
      a.m2 +. b.m2 +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
    in
    { n; mean; m2; min = Float.min a.min b.min; max = Float.max a.max b.max }
  end

let confidence_interval_95 t =
  if t.n < 2 then 0. else 1.96 *. stddev t /. sqrt (float_of_int t.n)

let of_array xs =
  let t = create () in
  add_many t xs;
  t

let mean_of xs = mean (of_array xs)

let variance_of xs = variance (of_array xs)

let stddev_of xs = stddev (of_array xs)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.

let jain_fairness xs =
  let s = Array.fold_left ( +. ) 0. xs in
  let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
  if s2 = 0. then 1.
  else s *. s /. (float_of_int (Array.length xs) *. s2)
