(** Minimal CSV writing for exporting experiment series to plotting tools.

    Quoting follows RFC 4180: fields containing commas, quotes or newlines
    are wrapped in double quotes with inner quotes doubled. *)

val escape_field : string -> string
(** The RFC 4180 rendering of one field. *)

val to_string : header:string list -> string list list -> string
(** Render a header row plus data rows, newline-terminated.
    @raise Invalid_argument if a row's width differs from the header's. *)

val write : path:string -> header:string list -> string list list -> unit
(** [to_string] straight to a file (truncating). *)

val float_rows : float list list -> string list list
(** Format every cell with ["%.17g"] (round-trip precision). *)
