lib/netsim/spatial.ml: Array Dcf Float List Option Prelude Stdlib Telemetry Trace
