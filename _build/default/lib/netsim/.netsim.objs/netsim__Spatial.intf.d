lib/netsim/spatial.mli: Dcf Telemetry Trace
