lib/netsim/spatial.mli: Dcf Trace
