lib/netsim/trace.ml: Format Hashtbl List Option Queue String
