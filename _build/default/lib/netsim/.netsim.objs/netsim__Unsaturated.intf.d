lib/netsim/unsaturated.mli: Dcf
