lib/netsim/slotted.mli: Dcf Telemetry Trace
