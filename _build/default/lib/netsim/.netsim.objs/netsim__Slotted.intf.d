lib/netsim/slotted.mli: Dcf Trace
