lib/netsim/slotted.ml: Array Dcf List Prelude Stdlib Trace
