lib/netsim/slotted.ml: Array Dcf List Prelude Stdlib Telemetry Trace
