lib/netsim/unsaturated.ml: Array Dcf Float List Prelude Queue Stdlib
