type config = {
  params : Dcf.Params.t;
  cws : int array;
  arrival_rates : float array;
  duration : float;
  seed : int;
}

type node_stats = {
  arrivals : int;
  delivered : int;
  backlog : int;
  mean_sojourn : float;
  mean_queue_length : float;
  busy_fraction : float;
  payoff_rate : float;
}

type result = {
  time : float;
  per_node : node_stats array;
  total_delivered : int;
  welfare_rate : float;
}

type node = {
  window : int;
  rate : float;
  rng : Prelude.Rng.t;
  queue : float Queue.t;          (* arrival timestamps *)
  mutable next_arrival : float;   (* infinity when rate = 0 *)
  mutable stage : int;
  mutable counter : int;
  mutable attempts : int;
  mutable delivered : int;
  mutable arrivals : int;
  mutable sojourn_total : float;
  mutable queue_area : float;     (* ∫ queue length dt *)
  mutable busy_time : float;      (* ∫ 1(queue non-empty) dt *)
}

let draw_backoff node =
  node.counter <- Prelude.Rng.int node.rng (node.window lsl node.stage)

let schedule_arrival node now =
  node.next_arrival <-
    (if node.rate <= 0. then infinity
     else now +. Prelude.Rng.exponential node.rng node.rate)

let run { params; cws; arrival_rates; duration; seed } =
  let n = Array.length cws in
  if n = 0 then invalid_arg "Unsaturated.run: empty network";
  if Array.length arrival_rates <> n then
    invalid_arg "Unsaturated.run: arrival_rates length mismatch";
  if duration <= 0. then invalid_arg "Unsaturated.run: duration must be positive";
  Array.iter
    (fun w -> if w < 1 then invalid_arg "Unsaturated.run: window must be >= 1")
    cws;
  Array.iter
    (fun r -> if r < 0. then invalid_arg "Unsaturated.run: negative arrival rate")
    arrival_rates;
  let m = params.max_backoff_stage in
  let timing = Dcf.Timing.of_params params in
  let master = Prelude.Rng.create seed in
  let nodes =
    Array.init n (fun i ->
        let node =
          {
            window = cws.(i);
            rate = arrival_rates.(i);
            rng = Prelude.Rng.split master;
            queue = Queue.create ();
            next_arrival = 0.;
            stage = 0;
            counter = 0;
            attempts = 0;
            delivered = 0;
            arrivals = 0;
            sojourn_total = 0.;
            queue_area = 0.;
            busy_time = 0.;
          }
        in
        schedule_arrival node 0.;
        node)
  in
  let time = ref 0. in
  (* Advance the global clock, charging each node's queue integrals. *)
  let advance_to t =
    let dt = t -. !time in
    if dt > 0. then begin
      Array.iter
        (fun nd ->
          let len = Queue.length nd.queue in
          if len > 0 then begin
            nd.queue_area <- nd.queue_area +. (float_of_int len *. dt);
            nd.busy_time <- nd.busy_time +. dt
          end)
        nodes;
      time := t
    end
  in
  (* Pop arrivals due by [now] into queues; a packet reaching the head of
     an idle queue starts a fresh stage-0 backoff. *)
  let collect_arrivals () =
    Array.iter
      (fun nd ->
        while nd.next_arrival <= !time do
          let was_empty = Queue.is_empty nd.queue in
          Queue.add nd.next_arrival nd.queue;
          nd.arrivals <- nd.arrivals + 1;
          schedule_arrival nd nd.next_arrival;
          if was_empty then begin
            nd.stage <- 0;
            draw_backoff nd
          end
        done)
      nodes
  in
  while !time < duration do
    collect_arrivals ();
    let active =
      Array.to_list nodes |> List.filter (fun nd -> not (Queue.is_empty nd.queue))
    in
    let next_arrival =
      Array.fold_left (fun acc nd -> Float.min acc nd.next_arrival) infinity nodes
    in
    match active with
    | [] ->
        (* Idle network: jump to the next arrival (or the horizon). *)
        advance_to (Float.min duration next_arrival)
    | _ ->
        let idle_slots =
          List.fold_left (fun acc nd -> Stdlib.min acc nd.counter) max_int active
        in
        let arrival_slots =
          if next_arrival = infinity then max_int
          else
            Stdlib.max 0
              (int_of_float (Float.ceil ((next_arrival -. !time) /. params.sigma)))
        in
        if arrival_slots < idle_slots then begin
          (* An arrival lands mid-countdown: burn that many idle slots and
             reconsider with the newly active node included. *)
          let k = Stdlib.max 1 arrival_slots in
          List.iter (fun nd -> nd.counter <- nd.counter - k) active;
          advance_to (!time +. (float_of_int k *. params.sigma))
        end
        else begin
          List.iter (fun nd -> nd.counter <- nd.counter - idle_slots) active;
          advance_to (!time +. (float_of_int idle_slots *. params.sigma));
          if !time < duration then begin
            let transmitters = List.filter (fun nd -> nd.counter = 0) active in
            match transmitters with
            | [] -> assert false
            | [ winner ] ->
                winner.attempts <- winner.attempts + 1;
                let arrived = Queue.pop winner.queue in
                advance_to (!time +. timing.ts);
                winner.delivered <- winner.delivered + 1;
                winner.sojourn_total <- winner.sojourn_total +. (!time -. arrived);
                winner.stage <- 0;
                if not (Queue.is_empty winner.queue) then draw_backoff winner
            | colliders ->
                List.iter
                  (fun nd ->
                    nd.attempts <- nd.attempts + 1;
                    nd.stage <- Stdlib.min (nd.stage + 1) m;
                    draw_backoff nd)
                  colliders;
                advance_to (!time +. timing.tc)
          end
        end
  done;
  let elapsed = !time in
  let per_node =
    Array.map
      (fun nd ->
        {
          arrivals = nd.arrivals;
          delivered = nd.delivered;
          backlog = Queue.length nd.queue;
          mean_sojourn =
            (if nd.delivered = 0 then 0.
             else nd.sojourn_total /. float_of_int nd.delivered);
          mean_queue_length = nd.queue_area /. elapsed;
          busy_fraction = nd.busy_time /. elapsed;
          payoff_rate =
            ((float_of_int nd.delivered *. params.gain)
            -. (float_of_int nd.attempts *. params.cost))
            /. elapsed;
        })
      nodes
  in
  {
    time = elapsed;
    per_node;
    total_delivered =
      Array.fold_left (fun acc (s : node_stats) -> acc + s.delivered) 0 per_node;
    welfare_rate =
      Array.fold_left
        (fun acc (s : node_stats) -> acc +. s.payoff_rate)
        0. per_node;
  }

let saturation_rate (params : Dcf.Params.t) ~n ~w =
  let tau, p = Dcf.Solver.solve_homogeneous params ~n ~w in
  let metrics = Dcf.Metrics.of_taus params (Array.make n tau) in
  tau *. (1. -. p) /. metrics.slot_time

let utilization params ~n ~w ~arrival_rate =
  if arrival_rate < 0. then invalid_arg "Unsaturated.utilization: negative rate";
  arrival_rate /. saturation_rate params ~n ~w
