(** Unsaturated single-hop DCF: Poisson arrivals and per-node queues.

    The paper (like Bianchi's model) assumes saturation — every node always
    has a packet ready.  This simulator relaxes that: packets arrive at
    node i as a Poisson process of rate [arrival_rates.(i)]; a node
    contends only while its queue is non-empty, drawing a fresh stage-0
    backoff when a packet reaches the head of an idle queue.  Everything
    else (virtual slots, collisions, exponential backoff) matches
    {!module:Slotted}.

    The interesting game-theoretic question it answers: how much does the
    contention window matter below saturation?  (Answer: hardly at all
    until the offered load approaches the saturation capacity — see the
    [load] bench.) *)

type config = {
  params : Dcf.Params.t;
  cws : int array;
  arrival_rates : float array;  (** packets/s per node, same length *)
  duration : float;
  seed : int;
}

type node_stats = {
  arrivals : int;
  delivered : int;
  backlog : int;             (** packets still queued at the horizon *)
  mean_sojourn : float;      (** arrival → delivery, s (delivered only) *)
  mean_queue_length : float; (** time-averaged queue length *)
  busy_fraction : float;     (** fraction of time with a non-empty queue *)
  payoff_rate : float;       (** (delivered·g − attempts·e)/time *)
}

type result = {
  time : float;
  per_node : node_stats array;
  total_delivered : int;
  welfare_rate : float;
}

val run : config -> result
(** @raise Invalid_argument on length mismatches, negative rates, windows
    < 1 or non-positive duration. *)

val saturation_rate : Dcf.Params.t -> n:int -> w:int -> float
(** The per-node saturation departure rate τ(1−p)/T̄slot (packets/s) — the
    capacity against which an offered load should be compared. *)

val utilization : Dcf.Params.t -> n:int -> w:int -> arrival_rate:float -> float
(** Offered-load heuristic ρ = λ / {!saturation_rate}; queues are stable
    roughly when ρ < 1 (the saturation service rate is pessimistic below
    saturation, so ρ < 1 is conservative). *)
