(** Special functions needed by the detection analysis. *)

val erf : float -> float
(** Error function, by the Abramowitz & Stegun 7.1.26 rational
    approximation (absolute error < 1.5e-7 — ample for detection-rate
    work). *)

val normal_cdf : ?mean:float -> ?stddev:float -> float -> float
(** Φ((x − mean)/stddev).  [stddev] must be positive (default 1,
    mean default 0). *)

val normal_quantile : float -> float
(** Inverse of the standard normal CDF on (0, 1), by Acklam's rational
    approximation refined with one Halley step (relative error < 1e-9).
    @raise Invalid_argument outside (0, 1). *)
