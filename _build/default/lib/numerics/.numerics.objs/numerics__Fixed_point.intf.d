lib/numerics/fixed_point.mli: Telemetry
