lib/numerics/fixed_point.ml: Array Float List Telemetry
