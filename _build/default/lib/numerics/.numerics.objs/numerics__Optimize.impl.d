lib/numerics/optimize.ml: Hashtbl List
