lib/numerics/roots.mli:
