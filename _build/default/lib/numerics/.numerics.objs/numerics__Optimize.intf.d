lib/numerics/optimize.mli:
