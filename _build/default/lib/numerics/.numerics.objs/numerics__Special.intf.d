lib/numerics/special.mli:
