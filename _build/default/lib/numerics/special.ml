(* Abramowitz & Stegun 7.1.26. *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let y =
    1.
    -. ((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t
        -. 0.284496736)
        *. t
       +. 0.254829592)
       *. t
       *. exp (-.(x *. x))
  in
  sign *. y

let normal_cdf ?(mean = 0.) ?(stddev = 1.) x =
  if stddev <= 0. then invalid_arg "Special.normal_cdf: stddev must be positive";
  0.5 *. (1. +. erf ((x -. mean) /. (stddev *. sqrt 2.)))

(* Acklam's inverse-normal approximation plus a Halley refinement step. *)
let normal_quantile p =
  if p <= 0. || p >= 1. then
    invalid_arg "Special.normal_quantile: p must be in (0, 1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2. *. log p) in
      (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
      *. q
      +. c.(5)
      |> fun num ->
      num
      /. ((((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q) +. d.(3)) *. q +. 1.)
    end
    else if p <= 1. -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
       *. r
      +. a.(5))
      *. q
      /. ((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
          *. r
         +. 1.)
    end
    else begin
      let q = sqrt (-2. *. log (1. -. p)) in
      -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
         *. q
        +. c.(5))
      /. ((((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q) +. d.(3)) *. q +. 1.)
    end
  in
  (* One Halley step against the accurate CDF. *)
  let e = normal_cdf x -. p in
  let u = e *. sqrt (2. *. Float.pi) *. exp (x *. x /. 2.) in
  x -. (u /. (1. +. (x *. u /. 2.)))
