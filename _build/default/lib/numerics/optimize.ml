let golden_ratio = (sqrt 5. -. 1.) /. 2.

let golden_section_max ?(tol = 1e-9) ?(max_iter = 200) f lo hi =
  if hi < lo then invalid_arg "Optimize.golden_section_max: empty interval";
  let a = ref lo and b = ref hi in
  let x1 = ref (!b -. (golden_ratio *. (!b -. !a))) in
  let x2 = ref (!a +. (golden_ratio *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  let iter = ref 0 in
  while !b -. !a > tol && !iter < max_iter do
    incr iter;
    if !f1 < !f2 then begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (golden_ratio *. (!b -. !a));
      f2 := f !x2
    end
    else begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (golden_ratio *. (!b -. !a));
      f1 := f !x1
    end
  done;
  let x = 0.5 *. (!a +. !b) in
  (x, f x)

let memoize f =
  let cache = Hashtbl.create 64 in
  fun x ->
    match Hashtbl.find_opt cache x with
    | Some v -> v
    | None ->
        let v = f x in
        Hashtbl.add cache x v;
        v

let exhaustive_int_max f lo hi =
  if hi < lo then invalid_arg "Optimize.exhaustive_int_max: empty range";
  let best = ref lo and best_v = ref (f lo) in
  for x = lo + 1 to hi do
    let v = f x in
    if v > !best_v then begin
      best := x;
      best_v := v
    end
  done;
  (!best, !best_v)

let ternary_int_max f lo hi =
  if hi < lo then invalid_arg "Optimize.ternary_int_max: empty range";
  let f = memoize f in
  let rec narrow lo hi =
    if hi - lo <= 3 then exhaustive_int_max f lo hi
    else begin
      let m1 = lo + ((hi - lo) / 3) in
      let m2 = hi - ((hi - lo) / 3) in
      if f m1 < f m2 then narrow (m1 + 1) hi else narrow lo (m2 - 1)
    end
  in
  narrow lo hi

let hill_climb_int_max ?start f lo hi =
  if hi < lo then invalid_arg "Optimize.hill_climb_int_max: empty range";
  let f = memoize f in
  let start =
    match start with
    | None -> lo
    | Some s ->
        if s < lo || s > hi then
          invalid_arg "Optimize.hill_climb_int_max: start out of range"
        else s
  in
  let rec climb x v =
    let candidates =
      List.filter (fun y -> y >= lo && y <= hi) [ x - 1; x + 1 ]
    in
    let better =
      List.fold_left
        (fun acc y ->
          let vy = f y in
          match acc with
          | Some (_, vb) when vb >= vy -> acc
          | _ -> if vy > v then Some (y, vy) else acc)
        None candidates
    in
    match better with None -> (x, v) | Some (y, vy) -> climb y vy
  in
  climb start (f start)
