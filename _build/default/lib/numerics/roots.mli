(** Scalar root finding.

    The DCF model needs roots of smooth, monotone functions (e.g. the
    efficient-NE condition Q(τ) = 0 of Appendix B), for which bisection and
    Brent's method are ample. *)

exception No_bracket
(** Raised when the supplied interval does not bracket a sign change. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [bisect f lo hi] returns [x] with [f x ≈ 0] given [f lo] and [f hi] of
    opposite signs (an endpoint that is exactly zero is returned
    immediately).  [tol] bounds the interval width (default 1e-12).
    @raise No_bracket if the signs at the endpoints agree. *)

val brent :
  ?iterations:int ref ->
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** Brent's method: inverse-quadratic interpolation with bisection fallback.
    Same contract as {!bisect}, converges superlinearly on smooth
    functions.  When given, [iterations] receives the number of iterations
    performed (0 when an endpoint was already a root) — the hook the
    telemetry layer uses to report convergence cost for the scalar solver
    paths. *)

val find_bracket :
  ?grow:float -> ?max_iter:int -> (float -> float) -> float -> float ->
  (float * float) option
(** [find_bracket f lo hi] expands the interval geometrically to the right
    until a sign change is bracketed, returning the bracket if found. *)
