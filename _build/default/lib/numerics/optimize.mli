(** One-dimensional maximisation, continuous and integer.

    The efficient NE W_c* is the integer argmax of a unimodal payoff curve
    (Lemma 3 proves unimodality in τ, hence in W); ternary search finds it in
    O(log range) model evaluations, with an exhaustive fallback for curves
    that are only approximately unimodal (simulated payoffs). *)

val golden_section_max :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float ->
  float * float
(** [golden_section_max f lo hi] returns [(x_max, f x_max)] maximising a unimodal
    [f] on [lo, hi] within [tol] (default 1e-9) in argument space. *)

val ternary_int_max : (int -> float) -> int -> int -> int * float
(** [ternary_int_max f lo hi] maximises a unimodal integer function on the
    inclusive range, returning the smallest argmax and its value.  O(log
    range) evaluations; results are memoised so [f] is called at most once
    per point. *)

val exhaustive_int_max : (int -> float) -> int -> int -> int * float
(** Linear scan over the inclusive range; smallest argmax wins ties.
    @raise Invalid_argument on an empty range. *)

val hill_climb_int_max : ?start:int -> (int -> float) -> int -> int -> int * float
(** Local search from [start] (default [lo]) moving to the better neighbour
    until neither neighbour improves.  Exact on unimodal curves, and the
    search pattern mirrors the paper's Right/Left-Search protocol
    (Sec. V.C). *)
