type outcome = {
  value : float array;
  iterations : int;
  residual : float;
  converged : bool;
}

let solve ?(damping = 0.5) ?(tol = 1e-12) ?(max_iter = 10_000) f x0 =
  if damping <= 0. || damping > 1. then
    invalid_arg "Fixed_point.solve: damping must be in (0, 1]";
  let n = Array.length x0 in
  let x = Array.copy x0 in
  let rec go iter =
    let fx = f x in
    if Array.length fx <> n then
      invalid_arg "Fixed_point.solve: map changed vector length";
    let residual = ref 0. in
    for i = 0 to n - 1 do
      let x' = ((1. -. damping) *. x.(i)) +. (damping *. fx.(i)) in
      let delta = Float.abs (x' -. x.(i)) in
      if delta > !residual then residual := delta;
      x.(i) <- x'
    done;
    if !residual <= tol then
      { value = x; iterations = iter; residual = !residual; converged = true }
    else if iter >= max_iter then
      { value = x; iterations = iter; residual = !residual; converged = false }
    else go (iter + 1)
  in
  go 1

let solve_scalar ?damping ?tol ?max_iter f x0 =
  let outcome = solve ?damping ?tol ?max_iter (fun x -> [| f x.(0) |]) [| x0 |] in
  outcome.value.(0)
