(** Damped fixed-point iteration on float vectors.

    The heterogeneous Bianchi model couples 2n unknowns (τ_1…τ_n, p_1…p_n)
    through a contraction-like map; damped Picard iteration converges
    reliably for all parameter ranges the experiments use. *)

type outcome = {
  value : float array;  (** the (approximate) fixed point *)
  iterations : int;     (** iterations actually performed *)
  residual : float;     (** max |x' − x| at the final iterate *)
  converged : bool;     (** whether [residual ≤ tol] *)
}

val solve :
  ?telemetry:Telemetry.Registry.t ->
  ?damping:float -> ?tol:float -> ?max_iter:int ->
  (float array -> float array) -> float array -> outcome
(** [solve f x0] iterates [x ← (1−λ)·x + λ·f x] from [x0] until the
    max-norm update falls below [tol] (default 1e-12) or [max_iter]
    (default 10_000) is reached.  [damping] λ defaults to 0.5 and must be in
    (0, 1].  [f] must preserve the vector length.

    The input vector is not mutated.

    Every solve runs inside a ["fixed_point.solve"] telemetry span and
    emits a ["solver_convergence"] event on [telemetry] (default: the
    global registry) recording iterations, the final residual, damping and
    convergence.  When a sink is attached, a ["residual_trajectory"] event
    carries the per-iteration residuals (capped at 512 entries); with no
    sink, the trajectory is never materialised. *)

val solve_scalar :
  ?damping:float -> ?tol:float -> ?max_iter:int ->
  (float -> float) -> float -> float
(** Scalar convenience wrapper; returns the fixed point value. *)
