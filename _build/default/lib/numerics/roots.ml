exception No_bracket

let sign x = if x > 0. then 1 else if x < 0. then -1 else 0

let bisect ?(tol = 1e-12) ?(max_iter = 200) f lo hi =
  let flo = f lo and fhi = f hi in
  if flo = 0. then lo
  else if fhi = 0. then hi
  else if sign flo = sign fhi then raise No_bracket
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let iter = ref 0 in
    while !hi -. !lo > tol && !iter < max_iter do
      incr iter;
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if fmid = 0. then begin
        lo := mid;
        hi := mid
      end
      else if sign fmid = sign !flo then begin
        lo := mid;
        flo := fmid
      end
      else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

(* Brent's method, following the classic Numerical Recipes formulation. *)
let brent ?iterations ?(tol = 1e-12) ?(max_iter = 200) f a b =
  let report n = match iterations with Some r -> r := n | None -> () in
  let fa = f a and fb = f b in
  if fa = 0. then begin
    report 0;
    a
  end
  else if fb = 0. then begin
    report 0;
    b
  end
  else if sign fa = sign fb then raise No_bracket
  else begin
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and e = ref (!b -. !a) in
    let result = ref nan in
    let iter = ref 0 in
    (try
       while true do
         incr iter;
         if !iter > max_iter then begin
           result := !b;
           raise Exit
         end;
         if Float.abs !fc < Float.abs !fb then begin
           a := !b;
           b := !c;
           c := !a;
           fa := !fb;
           fb := !fc;
           fc := !fa
         end;
         let tol1 = (2. *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
         let xm = 0.5 *. (!c -. !b) in
         if Float.abs xm <= tol1 || !fb = 0. then begin
           result := !b;
           raise Exit
         end;
         if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
           let s = !fb /. !fa in
           let p, q =
             if !a = !c then
               (* secant *)
               (2. *. xm *. s, 1. -. s)
             else begin
               let q = !fa /. !fc and r = !fb /. !fc in
               ( s *. ((2. *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.))),
                 (q -. 1.) *. (r -. 1.) *. (s -. 1.) )
             end
           in
           let p, q = if p > 0. then (p, -.q) else (-.p, q) in
           let min1 = (3. *. xm *. q) -. Float.abs (tol1 *. q) in
           let min2 = Float.abs (!e *. q) in
           if 2. *. p < Float.min min1 min2 then begin
             e := !d;
             d := p /. q
           end
           else begin
             d := xm;
             e := !d
           end
         end
         else begin
           d := xm;
           e := !d
         end;
         a := !b;
         fa := !fb;
         if Float.abs !d > tol1 then b := !b +. !d
         else b := !b +. (if xm >= 0. then tol1 else -.tol1);
         fb := f !b;
         if sign !fb = sign !fc then begin
           c := !a;
           fc := !fa;
           d := !b -. !a;
           e := !d
         end
       done
     with Exit -> ());
    report !iter;
    !result
  end

let find_bracket ?(grow = 1.6) ?(max_iter = 60) f lo hi =
  if hi <= lo then invalid_arg "Roots.find_bracket: empty interval";
  let rec go lo hi flo fhi iter =
    if sign flo <> sign fhi then Some (lo, hi)
    else if iter >= max_iter then None
    else begin
      let hi' = lo +. ((hi -. lo) *. grow) in
      go lo hi' flo (f hi') (iter + 1)
    end
  in
  go lo hi (f lo) (f hi) 0
