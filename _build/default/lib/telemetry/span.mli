(** Timed regions.

    A span measures one dynamic extent on the registry clock.  Every
    completed span feeds the histogram ["<name>.seconds"] and the counter
    ["<name>.calls"], and — when a sink is attached — emits a ["span"]
    event with the span's nesting depth (0 = outermost), so a JSONL trace
    reconstructs the call tree of instrumented regions. *)

val with_span :
  ?registry:Registry.t ->
  ?fields:(unit -> (string * Jsonx.t) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] times [f ()]; the span completes (metrics and
    event included) even when [f] raises.  [fields] adds extra payload to
    the event and is only evaluated when a sink is attached. *)

type timer
(** A manually finished span, for regions that do not nest as a single
    [fun] body. *)

val start : ?registry:Registry.t -> string -> timer

val stop : ?fields:(unit -> (string * Jsonx.t) list) -> timer -> float
(** Completes the span and returns the elapsed seconds.  Each [start]
    must be matched by exactly one [stop], innermost first. *)
