(** The three metric primitives.

    All three are plain mutable cells designed for hot loops: a counter
    increment is one integer store, a histogram observation one Welford
    update ({!Prelude.Stats}) — no allocation, no formatting, no clock
    reads.  Rendering happens only when a report or event is requested. *)

type counter

val counter : unit -> counter

val incr : counter -> unit

val add : counter -> int -> unit
(** @raise Invalid_argument on a negative increment. *)

val count : counter -> int

type gauge

val gauge : unit -> gauge

val set : gauge -> float -> unit

val value : gauge -> float

type histogram
(** Welford-backed summary (count/mean/stddev/min/max/sum), not a bucketed
    histogram: constant memory regardless of sample count, which is what a
    million-slot simulation needs. *)

val histogram : unit -> histogram

val observe : histogram -> float -> unit

val observations : histogram -> int

val mean : histogram -> float

val stddev : histogram -> float

val hmin : histogram -> float
(** [infinity] when empty. *)

val hmax : histogram -> float
(** [neg_infinity] when empty. *)

val total : histogram -> float

val histogram_json : histogram -> Jsonx.t
(** Summary object; min/max render as 0 when empty so the JSON stays
    finite. *)
