type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || Float.abs f = infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
            (if !pos >= n then error "unterminated escape"
             else begin
               let e = s.[!pos] in
               advance ();
               match e with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 > n then error "truncated \\u escape";
                   let code =
                     try int_of_string ("0x" ^ String.sub s !pos 4)
                     with _ -> error "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* Encode the BMP code point as UTF-8. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | _ -> error "unknown escape"
             end);
            go ()
        | c -> Buffer.add_char buf c; go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> error (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> error "expected ',' or ']'"
          in
          items []
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> error "expected ',' or '}'"
          in
          fields []
        end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
