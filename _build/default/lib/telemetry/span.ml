let with_span ?(registry = Registry.default) ?fields name f =
  let t0 = Registry.now registry in
  let own_depth = Registry.enter_span registry in
  let finish () =
    let dt = Registry.now registry -. t0 in
    Registry.leave_span registry;
    Metric.observe (Registry.histogram registry (name ^ ".seconds")) dt;
    Metric.incr (Registry.counter registry (name ^ ".calls"));
    Registry.emit registry "span" (fun () ->
        ("name", Jsonx.String name)
        :: ("seconds", Jsonx.Float dt)
        :: ("depth", Jsonx.Int own_depth)
        :: (match fields with None -> [] | Some fields -> fields ()))
  in
  Fun.protect ~finally:finish f

type timer = { registry : Registry.t; name : string; t0 : float; depth : int }

let start ?(registry = Registry.default) name =
  { registry; name; t0 = Registry.now registry; depth = Registry.enter_span registry }

let stop ?fields timer =
  let dt = Registry.now timer.registry -. timer.t0 in
  Registry.leave_span timer.registry;
  Metric.observe (Registry.histogram timer.registry (timer.name ^ ".seconds")) dt;
  Metric.incr (Registry.counter timer.registry (timer.name ^ ".calls"));
  Registry.emit timer.registry "span" (fun () ->
      ("name", Jsonx.String timer.name)
      :: ("seconds", Jsonx.Float dt)
      :: ("depth", Jsonx.Int timer.depth)
      :: (match fields with None -> [] | Some fields -> fields ()));
  dt
