type t = {
  label : string;
  clock : unit -> float;
  mutable sinks : Sink.t list;
  counters : (string, Metric.counter) Hashtbl.t;
  gauges : (string, Metric.gauge) Hashtbl.t;
  histograms : (string, Metric.histogram) Hashtbl.t;
  mutable depth : int;
}

let create ?(label = "registry") ?(clock = Unix.gettimeofday) () =
  {
    label;
    clock;
    sinks = [];
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    depth = 0;
  }

let default = create ~label:"default" ()

let label t = t.label

let now t = t.clock ()

let get_or_create table make name =
  match Hashtbl.find_opt table name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.add table name m;
      m

let counter t name = get_or_create t.counters Metric.counter name

let gauge t name = get_or_create t.gauges Metric.gauge name

let histogram t name = get_or_create t.histograms Metric.histogram name

let add_sink t sink = t.sinks <- sink :: t.sinks

let remove_sink t sink = t.sinks <- List.filter (fun s -> s != sink) t.sinks

let active t = t.sinks <> []

let emit t name fields =
  match t.sinks with
  | [] -> ()
  | sinks ->
      let event = Event.make ~at:(t.clock ()) ~name (fields ()) in
      List.iter (fun sink -> Sink.emit sink event) sinks

let flush t = List.iter Sink.flush t.sinks

let enter_span t =
  let d = t.depth in
  t.depth <- d + 1;
  d

let leave_span t = t.depth <- Stdlib.max 0 (t.depth - 1)

let depth t = t.depth

let sorted table =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t = sorted t.counters

let gauges t = sorted t.gauges

let histograms t = sorted t.histograms

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms;
  t.depth <- 0
