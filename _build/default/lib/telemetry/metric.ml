type counter = { mutable count : int }

let counter () = { count = 0 }

let incr c = c.count <- c.count + 1

let add c k =
  if k < 0 then invalid_arg "Metric.add: counters only go up";
  c.count <- c.count + k

let count c = c.count

type gauge = { mutable value : float }

let gauge () = { value = 0. }

let set g v = g.value <- v

let value g = g.value

type histogram = { stats : Prelude.Stats.t }

let histogram () = { stats = Prelude.Stats.create () }

let observe h x = Prelude.Stats.add h.stats x

let observations h = Prelude.Stats.count h.stats

let mean h = Prelude.Stats.mean h.stats

let stddev h = Prelude.Stats.stddev h.stats

let hmin h = Prelude.Stats.min h.stats

let hmax h = Prelude.Stats.max h.stats

let total h = Prelude.Stats.sum h.stats

let histogram_json h =
  Jsonx.Obj
    [
      ("count", Jsonx.Int (observations h));
      ("mean", Jsonx.Float (mean h));
      ("stddev", Jsonx.Float (stddev h));
      ("min", Jsonx.Float (if observations h = 0 then 0. else hmin h));
      ("max", Jsonx.Float (if observations h = 0 then 0. else hmax h));
      ("sum", Jsonx.Float (total h));
    ]
