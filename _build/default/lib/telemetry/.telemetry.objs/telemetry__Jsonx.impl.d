lib/telemetry/jsonx.ml: Buffer Char Float List Printf String
