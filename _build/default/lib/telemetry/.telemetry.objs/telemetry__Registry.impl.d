lib/telemetry/registry.ml: Event Hashtbl List Metric Sink Stdlib Unix
