lib/telemetry/event.mli: Jsonx
