lib/telemetry/report.ml: Buffer Filename Float List Metric Prelude Printf Registry
