lib/telemetry/metric.mli: Jsonx
