lib/telemetry/report.mli: Registry
