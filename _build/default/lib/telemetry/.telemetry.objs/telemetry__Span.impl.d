lib/telemetry/span.ml: Fun Jsonx Metric Registry
