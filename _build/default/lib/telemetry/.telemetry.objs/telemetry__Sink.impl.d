lib/telemetry/sink.ml: Event List Queue Stdlib
