lib/telemetry/jsonx.mli:
