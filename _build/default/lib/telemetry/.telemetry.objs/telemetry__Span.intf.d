lib/telemetry/span.mli: Jsonx Registry
