lib/telemetry/metric.ml: Jsonx Prelude
