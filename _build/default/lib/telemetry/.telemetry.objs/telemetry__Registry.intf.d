lib/telemetry/registry.mli: Jsonx Metric Sink
