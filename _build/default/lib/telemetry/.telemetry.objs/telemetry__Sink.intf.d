lib/telemetry/sink.mli: Event
