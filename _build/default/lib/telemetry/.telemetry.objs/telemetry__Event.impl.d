lib/telemetry/event.ml: Jsonx List
