(** One telemetry event: a named record with a timestamp and free-form
    JSON fields.  Events are the unit a {!module:Sink} consumes; metrics
    (counters, histograms) aggregate in the {!module:Registry} instead. *)

type t = {
  at : float;     (** emission time, seconds (registry clock) *)
  name : string;  (** e.g. ["run_summary"], ["solver_convergence"] *)
  fields : (string * Jsonx.t) list;
}

val make : at:float -> name:string -> (string * Jsonx.t) list -> t

val to_json : t -> Jsonx.t
(** An [Obj] with ["event"] and ["at"] first, then the fields. *)

val to_line : t -> string
(** The JSONL rendering (one line, no trailing newline). *)

val of_json : Jsonx.t -> t option
(** Inverse of {!to_json}; [None] if ["event"]/["at"] are missing or
    ill-typed. *)

val field : string -> t -> Jsonx.t option
