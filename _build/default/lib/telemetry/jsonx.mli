(** A minimal JSON value type with a printer and parser.

    Dependency-light on purpose: the telemetry sinks need to write JSONL
    lines and the tests need to read them back, and pulling a full JSON
    library into every instrumented layer would violate the "prelude-only"
    footprint of the telemetry stack.  Numbers parse back as [Int] when the
    literal is integral and fits, [Float] otherwise; non-finite floats
    render as [null] (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering (no trailing newline). *)

exception Parse_error of string

val parse : string -> t
(** Parse one complete JSON document.  @raise Parse_error on malformed
    input or trailing garbage. *)

val member : string -> t -> t option
(** [member key json] is the field [key] of an [Obj]; [None] for other
    constructors or a missing key. *)

val to_float_opt : t -> float option
(** Numeric coercion: [Int] and [Float] succeed, everything else is
    [None]. *)
