(** Pluggable event consumers.

    A sink is just three closures, so backends stay decoupled from the
    registry: the in-memory sink backs tests, the JSONL sink backs the CLI
    [--telemetry FILE] flag and the benches, and the null sink measures
    instrumentation overhead. *)

type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

val null : t
(** Swallows everything. *)

val memory : unit -> t * (unit -> Event.t list)
(** A sink buffering every event, and an accessor returning them in
    emission order. *)

val of_channel : out_channel -> t
(** Writes one JSON line per event; [close] flushes but does not close the
    channel (the caller owns it). *)

val jsonl : string -> t
(** Opens [path] for writing and streams one JSON line per event.  [close]
    closes the file; later emits are ignored. *)

val emit : t -> Event.t -> unit

val flush : t -> unit

val close : t -> unit
