(** ASCII rendering of a registry's metrics, via {!Prelude.Table}.

    Three sections — counters, gauges, histograms — each omitted when
    empty.  Histograms whose name ends in [".seconds"] (the span
    convention) render with time units. *)

val render : ?registry:Registry.t -> unit -> string
(** Newline-terminated multi-line report; [""] when the registry holds no
    metrics. *)
