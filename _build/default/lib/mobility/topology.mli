(** Neighbourhood graphs from node positions.

    Two nodes are neighbours when they are within transmission range
    (unit-disk model, as the paper assumes: all nodes share a 250 m
    range). *)

val adjacency : range:float -> Geom.point array -> int list array
(** [adjacency ~range positions] — [result.(i)] lists the nodes within
    [range] of node i (excluding i), in increasing index order.  Symmetric
    by construction. *)

val degrees : int list array -> int array

val is_connected : int list array -> bool
(** Breadth-first reachability from node 0; true for the empty graph. *)

val largest_component : int list array -> int list
(** Indices of the largest connected component (ties broken by smallest
    representative), in increasing order. *)

val restrict : int list array -> int list -> int list array
(** [restrict adjacency keep] re-indexes the subgraph induced by the nodes
    of [keep] (which must be sorted and duplicate-free): node [keep.(i)]
    becomes node i. *)

val average_degree : int list array -> float

val snapshot :
  ?connect_attempts:int -> Waypoint.t -> range:float -> int list array
(** Adjacency of the walker's current positions.  If [connect_attempts > 0]
    and the graph is disconnected, advance the mobility model by 10-second
    steps up to that many times looking for a connected snapshot (the
    paper's scenario assumes a connected network), returning the last
    snapshot either way. *)
