(** Plane geometry for node placement. *)

type point = { x : float; y : float }

val distance : point -> point -> float

val distance_sq : point -> point -> float
(** Squared distance — avoids the square root in range tests. *)

val within : range:float -> point -> point -> bool
(** Whether two points are at most [range] apart. *)

val move_towards : from:point -> goal:point -> dist:float -> point
(** The point [dist] along the segment from [from] to [goal], clamped to
    [goal] if the segment is shorter. *)

val random_in : Prelude.Rng.t -> width:float -> height:float -> point
(** Uniform point in the [0,width]×[0,height] rectangle. *)
