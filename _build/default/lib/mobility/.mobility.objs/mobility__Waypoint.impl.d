lib/mobility/waypoint.ml: Array Geom Prelude
