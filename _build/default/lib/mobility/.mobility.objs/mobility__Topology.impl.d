lib/mobility/topology.ml: Array Geom Hashtbl List Queue Waypoint
