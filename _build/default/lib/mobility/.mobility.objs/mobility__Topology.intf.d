lib/mobility/topology.mli: Geom Waypoint
