lib/mobility/waypoint.mli: Geom
