lib/mobility/geom.mli: Prelude
