lib/mobility/geom.ml: Prelude
