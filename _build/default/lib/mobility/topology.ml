let adjacency ~range positions =
  if range <= 0. then invalid_arg "Topology.adjacency: range must be positive";
  let n = Array.length positions in
  let lists = Array.make n [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      if Geom.within ~range positions.(i) positions.(j) then begin
        lists.(i) <- j :: lists.(i);
        lists.(j) <- i :: lists.(j)
      end
    done
  done;
  lists

let degrees lists = Array.map List.length lists

let bfs lists source =
  let n = Array.length lists in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(source) <- true;
  Queue.add source queue;
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr count;
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
      lists.(u)
  done;
  (seen, !count)

let is_connected lists =
  let n = Array.length lists in
  n = 0 || snd (bfs lists 0) = n

let largest_component lists =
  let n = Array.length lists in
  let assigned = Array.make n false in
  let best = ref [] and best_size = ref 0 in
  for i = 0 to n - 1 do
    if not assigned.(i) then begin
      let seen, size = bfs lists i in
      let members = ref [] in
      for j = n - 1 downto 0 do
        if seen.(j) then begin
          assigned.(j) <- true;
          members := j :: !members
        end
      done;
      if size > !best_size then begin
        best := !members;
        best_size := size
      end
    end
  done;
  !best

let restrict lists keep =
  let index = Hashtbl.create (List.length keep) in
  List.iteri (fun new_id old_id -> Hashtbl.add index old_id new_id) keep;
  keep
  |> List.map (fun old_id ->
         List.filter_map (fun j -> Hashtbl.find_opt index j) lists.(old_id))
  |> Array.of_list

let average_degree lists =
  let n = Array.length lists in
  if n = 0 then 0.
  else
    float_of_int (Array.fold_left (fun acc l -> acc + List.length l) 0 lists)
    /. float_of_int n

let snapshot ?(connect_attempts = 0) walkers ~range =
  let current () = adjacency ~range (Waypoint.positions walkers) in
  let rec search attempts adj =
    if attempts <= 0 || is_connected adj then adj
    else begin
      Waypoint.step walkers ~dt:10.;
      search (attempts - 1) (current ())
    end
  in
  search connect_attempts (current ())
