type point = { x : float; y : float }

let distance_sq a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let distance a b = sqrt (distance_sq a b)

let within ~range a b = distance_sq a b <= range *. range

let move_towards ~from ~goal ~dist =
  let d = distance from goal in
  if d <= dist || d = 0. then goal
  else begin
    let f = dist /. d in
    { x = from.x +. ((goal.x -. from.x) *. f);
      y = from.y +. ((goal.y -. from.y) *. f) }
  end

let random_in rng ~width ~height =
  { x = Prelude.Rng.float rng width; y = Prelude.Rng.float rng height }
