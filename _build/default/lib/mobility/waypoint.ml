type config = {
  width : float;
  height : float;
  speed_min : float;
  speed_max : float;
}

type walker = {
  mutable pos : Geom.point;
  mutable goal : Geom.point;
  mutable speed : float;  (* m/s *)
}

type t = { cfg : config; rng : Prelude.Rng.t; walkers : walker array }

let validate cfg =
  if cfg.width <= 0. || cfg.height <= 0. then
    invalid_arg "Waypoint.create: area must be positive";
  if cfg.speed_min < 0. || cfg.speed_max < cfg.speed_min then
    invalid_arg "Waypoint.create: need 0 <= speed_min <= speed_max"

let fresh_leg rng cfg walker =
  walker.goal <- Geom.random_in rng ~width:cfg.width ~height:cfg.height;
  walker.speed <- Prelude.Rng.float_in rng cfg.speed_min cfg.speed_max

let create ?(seed = 0) cfg ~n =
  validate cfg;
  if n < 1 then invalid_arg "Waypoint.create: need n >= 1";
  let rng = Prelude.Rng.create seed in
  let walkers =
    Array.init n (fun _ ->
        let pos = Geom.random_in rng ~width:cfg.width ~height:cfg.height in
        let walker = { pos; goal = pos; speed = 0. } in
        fresh_leg rng cfg walker;
        walker)
  in
  { cfg; rng; walkers }

let positions t = Array.map (fun w -> w.pos) t.walkers

let config t = t.cfg

let step t ~dt =
  if dt <= 0. then invalid_arg "Waypoint.step: dt must be positive";
  let rec advance walker budget =
    if budget > 0. && walker.speed > 0. then begin
      let reach = Geom.distance walker.pos walker.goal in
      let travel = walker.speed *. budget in
      if travel >= reach then begin
        walker.pos <- walker.goal;
        let spent = if walker.speed > 0. then reach /. walker.speed else budget in
        fresh_leg t.rng t.cfg walker;
        advance walker (budget -. spent)
      end
      else
        walker.pos <-
          Geom.move_towards ~from:walker.pos ~goal:walker.goal ~dist:travel
    end
    else if walker.speed = 0. then
      (* Degenerate zero-speed leg: wait out this step, then redraw so the
         node does not stall forever. *)
      fresh_leg t.rng t.cfg walker
  in
  Array.iter (fun w -> advance w dt) t.walkers
