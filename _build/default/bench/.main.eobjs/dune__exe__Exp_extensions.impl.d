bench/exp_extensions.ml: Array Common Dcf List Macgame Netsim Prelude Printf Stdlib
