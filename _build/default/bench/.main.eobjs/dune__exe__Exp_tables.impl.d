bench/exp_tables.ml: Array Common Dcf Format List Macgame Netsim Prelude Printf Stdlib
