bench/exp_deviation.ml: Common Dcf Float List Macgame Prelude Printf Stdlib
