bench/exp_figures.ml: Array Common Dcf List Macgame Prelude Printf Stdlib
