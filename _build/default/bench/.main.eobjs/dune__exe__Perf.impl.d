bench/perf.ml: Analyze Array Bechamel Benchmark Common Dcf Float Hashtbl Instance List Macgame Measure Netsim Prelude Printf Staged String Telemetry Test Time Toolkit
