bench/main.ml: Array Common Exp_deviation Exp_dynamics Exp_extensions Exp_figures Exp_multihop Exp_tables Exp_validation List Perf Printf String Sys
