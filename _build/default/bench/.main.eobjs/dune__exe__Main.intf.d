bench/main.mli:
