bench/exp_validation.ml: Array Common Dcf List Netsim Prelude Printf
