bench/common.ml: Filename Prelude Printf String
