bench/exp_multihop.ml: Array Common Dcf Float List Macgame Mobility Netsim Prelude Printf Stdlib
