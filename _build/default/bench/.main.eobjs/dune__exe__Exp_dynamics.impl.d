bench/exp_dynamics.ml: Array Common Dcf Format List Macgame Netsim Prelude Stdlib String
