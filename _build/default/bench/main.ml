(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (Sec. VII) plus the analyses of Sec. V.C-V.E, and optionally
   runs the Bechamel micro-benchmark suite.

   Usage:
     main.exe                 run all experiments at quick scale
     main.exe --full          paper-scale durations
     main.exe --perf          micro-benchmarks only
     main.exe --only NAME     a single experiment: table1 table2 table3
                              figure2 figure3 multihop shortsighted
                              malicious convergence search validation *)

let experiments : (string * (Common.scale -> unit)) list =
  [
    ("table1", fun _ -> Exp_tables.table1 ());
    ("table2", Exp_tables.table2);
    ("table3", Exp_tables.table3);
    ("figure2", Exp_figures.figure2);
    ("figure3", Exp_figures.figure3);
    ("multihop", Exp_multihop.run);
    ("shortsighted", Exp_deviation.shortsighted);
    ("malicious", Exp_deviation.malicious);
    ("convergence", Exp_dynamics.convergence);
    ("search", Exp_dynamics.search);
    ("validation", Exp_validation.run);
    ("delay", Exp_extensions.delay);
    ("payload", Exp_extensions.payload);
    ("hidden", Exp_extensions.hidden);
    ("drops", Exp_extensions.drops);
    ("strategies", Exp_extensions.strategies);
    ("detection", Exp_extensions.detection);
    ("load", Exp_extensions.load);
    ("coalition", Exp_extensions.coalition);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let perf = List.mem "--perf" args in
  let rec keyed flag = function
    | f :: value :: _ when f = flag -> Some value
    | _ :: rest -> keyed flag rest
    | [] -> None
  in
  let only = keyed "--only" in
  Common.csv_dir := keyed "--csv" args;
  let scale = if full then Common.full else Common.quick in
  (match only args with
  | Some name -> (
      match List.assoc_opt name experiments with
      | Some f -> f scale
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
  | None ->
      if not perf then begin
        Printf.printf
          "Reproduction harness: Chen & Leneutre, ICDCS 2007 (%s scale)\n"
          (if full then "full" else "quick");
        List.iter (fun (_, f) -> f scale) experiments
      end);
  if perf then Perf.run ()
