(* Shared configuration and helpers for the experiment harness. *)

type scale = {
  sim_duration : float;   (* simulated seconds per measurement *)
  replicates : int;       (* independent simulation replicates *)
  multihop_nodes : int;
  multihop_duration : float;
  figure_points : int;
}

let quick =
  {
    sim_duration = 30.;
    replicates = 3;
    multihop_nodes = 100;
    multihop_duration = 20.;
    figure_points = 36;
  }

(* Paper-scale: 1000 s simulations as in Sec. VII. *)
let full =
  {
    sim_duration = 300.;
    replicates = 5;
    multihop_nodes = 100;
    multihop_duration = 120.;
    figure_points = 48;
  }

let heading title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" bar title bar

let subheading title = Printf.printf "\n--- %s ---\n" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt

let print_table columns rows = print_string (Prelude.Table.render columns rows)

let pct x = Printf.sprintf "%.1f%%" (100. *. x)

(* Optional CSV export directory (set by main from --csv DIR). *)
let csv_dir : string option ref = ref None

let csv name ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (name ^ ".csv") in
      Prelude.Csv.write ~path ~header rows;
      note "wrote %s" path

let f3 x = Printf.sprintf "%.3f" x

let f4 x = Printf.sprintf "%.4f" x
