examples/multihop_mobility.ml: Array Dcf List Macgame Mobility Netsim Prelude Printf Stdlib
