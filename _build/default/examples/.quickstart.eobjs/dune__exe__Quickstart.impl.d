examples/quickstart.ml: Array Dcf Format List Macgame Prelude Printf
