examples/multihop_mobility.mli:
