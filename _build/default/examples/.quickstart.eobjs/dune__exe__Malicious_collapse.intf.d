examples/malicious_collapse.mli:
