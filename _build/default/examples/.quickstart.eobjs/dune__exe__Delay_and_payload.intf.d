examples/delay_and_payload.mli:
