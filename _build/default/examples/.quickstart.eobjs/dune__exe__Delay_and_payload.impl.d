examples/delay_and_payload.ml: Array Dcf List Macgame Prelude Printf
