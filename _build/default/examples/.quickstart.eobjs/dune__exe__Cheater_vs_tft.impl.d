examples/cheater_vs_tft.ml: Array Dcf Format List Macgame Netsim Printf
