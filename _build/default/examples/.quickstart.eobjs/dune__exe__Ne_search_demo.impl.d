examples/ne_search_demo.ml: Dcf List Macgame Netsim Printf Stdlib
