examples/malicious_collapse.ml: Array Dcf Format List Macgame Printf
