examples/quickstart.mli:
