examples/ne_search_demo.mli:
