examples/cheater_vs_tft.mli:
