(* macgame: command-line front end to the selfish-MAC game library.

   Subcommands:
     solve     solve the analytic model for a CW profile
     ne        Nash-equilibrium analysis for a symmetric network
     game      play the repeated game (TFT/GTFT/cheaters) and print the trace
     search    run the distributed NE-search protocol
     sim       run the packet-level single-hop simulator
     multihop  random-waypoint multi-hop scenario and quasi-optimality
     sweep     payoff and throughput versus the common window *)

open Cmdliner

(* {1 Shared options} *)

let mode_arg =
  let parse = function
    | "basic" -> Ok Dcf.Params.Basic
    | "rts" | "rts-cts" | "rtscts" -> Ok Dcf.Params.Rts_cts
    | s -> Error (`Msg (Printf.sprintf "unknown access mode %S" s))
  in
  let print ppf mode = Dcf.Params.pp_access_mode ppf mode in
  Arg.conv (parse, print)

let mode_t =
  Arg.(
    value
    & opt mode_arg Dcf.Params.Basic
    & info [ "mode" ] ~docv:"MODE" ~doc:"Access mode: $(b,basic) or $(b,rts).")

let backoff_t =
  Arg.(
    value
    & opt int Dcf.Params.default.max_backoff_stage
    & info [ "m"; "max-backoff-stage" ] ~docv:"M"
        ~doc:"Number of contention-window doublings (0 disables backoff).")

let params_of mode m =
  let params = Dcf.Params.with_mode mode Dcf.Params.default in
  let params = { params with Dcf.Params.max_backoff_stage = m } in
  match Dcf.Params.validate params with
  | Ok () -> params
  | Error e ->
      Printf.eprintf "invalid parameters: %s\n" e;
      exit 2

let n_t =
  Arg.(
    value & opt int 5
    & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of contending nodes.")

(* Execution engine: every subcommand accepts -j N (domain parallelism for
   experiment grids), --cache DIR (content-addressed result cache +
   checkpoint journals) and --no-cache.  The flags configure the ambient
   runner; grid-shaped subcommands (sweep) submit their points through it. *)

let jobs_t =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Evaluate experiment grids on $(docv) domains.  Results are \
           bit-identical to a serial run for every $(docv).")

let cache_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Cache task results under $(docv) (content-addressed; re-runs \
           recompute only changed points and interrupted sweeps resume \
           from their checkpoint journal).")

let no_cache_t =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Recompute every grid point; cache nothing.")

let configure_runner jobs cache no_cache =
  Runner.configure
    {
      Runner.workers = (if jobs >= 1 then jobs else 1);
      cache_dir = (if no_cache then None else cache);
      checkpoints = true;
      seed = 0;
    }

(* Observability: every subcommand accepts --telemetry FILE (stream the
   instrumentation events of all layers as JSONL), --telemetry-report
   (print the metrics registry after the run) and --trace FILE (record a
   binary flight-recorder trace of the run's hot paths). *)

let telemetry_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:
          "Write the telemetry event stream (solver convergence, simulator \
           run summaries, game stages, spans) to $(docv) as JSON lines.")

let telemetry_report_t =
  Arg.(
    value & flag
    & info [ "telemetry-report" ]
        ~doc:"Print the telemetry counters/histograms report after the run.")

let trace_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable the flight recorder for the run and write the drained \
           trace to $(docv) (binary; inspect it with $(b,macgame trace \
           summary) or export it for Perfetto with $(b,macgame trace \
           export)).")

let with_telemetry file report trace f =
  let registry = Telemetry.Registry.default in
  let recorder = Telemetry.Recorder.default in
  let sink =
    Option.map
      (fun path ->
        try Telemetry.Sink.jsonl path
        with Sys_error msg ->
          Printf.eprintf "cannot open telemetry file: %s\n" msg;
          exit 2)
      file
  in
  Option.iter (Telemetry.Registry.add_sink registry) sink;
  if trace <> None then Telemetry.Recorder.set_enabled recorder true;
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun path ->
          Telemetry.Recorder.set_enabled recorder false;
          let dump = Telemetry.Recorder.drain ~registry recorder in
          Telemetry.Trace_file.write path dump;
          Printf.eprintf "trace: %d records (%d dropped) -> %s\n"
            (Array.length dump.records) dump.dropped path)
        trace;
      Option.iter
        (fun s ->
          Telemetry.Registry.remove_sink registry s;
          Telemetry.Sink.close s)
        sink;
      if report then
        print_string (Telemetry.Report.render ~registry ~recorder ()))
    f

(* [instrumented run] threads the telemetry and runner options in front of
   a subcommand's own arguments. *)
let instrumented term =
  Term.(
    const (fun file report trace jobs cache no_cache run ->
        configure_runner jobs cache no_cache;
        with_telemetry file report trace run)
    $ telemetry_t $ telemetry_report_t $ trace_out_t $ jobs_t $ cache_t
    $ no_cache_t $ term)

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let duration_t =
  Arg.(
    value & opt float 60.
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated duration.")

(* {1 Payoff oracle backend}

   Game-layer subcommands (ne, game, search, sweep, delay) evaluate every
   payoff through one memoized {!Macgame.Oracle}; --backend selects how
   that oracle answers: the analytic fixed point, or replicated packet
   simulations (slotted single-hop, or spatial on a clique). *)

let backend_t =
  Arg.(
    value
    & opt
        (enum
           [
             ("analytic", `Analytic); ("slotted", `Slotted);
             ("spatial", `Spatial);
           ])
        `Analytic
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Payoff evaluation backend: $(b,analytic) (fixed-point model), \
           $(b,slotted) (virtual-slot packet simulation) or $(b,spatial) \
           (spatial simulator on a clique).")

let replicates_t =
  Arg.(
    value & opt int 3
    & info [ "replicates" ] ~docv:"R"
        ~doc:"Simulation replicates per evaluated profile (sim backends).")

let sim_duration_t =
  Arg.(
    value & opt float 10.
    & info [ "sim-duration" ] ~docv:"SECONDS"
        ~doc:"Simulated seconds per replicate (sim backends).")

let sim_seed_t =
  Arg.(
    value & opt int 42
    & info [ "sim-seed" ] ~docv:"SEED"
        ~doc:"Base seed for the sim backends' replicate streams.")

let backend_of backend replicates duration seed =
  let cfg = { Macgame.Oracle.duration; replicates; seed } in
  match backend with
  | `Analytic -> Macgame.Oracle.Analytic
  | `Slotted -> Macgame.Oracle.Sim_slotted cfg
  | `Spatial -> Macgame.Oracle.Sim_spatial cfg

let oracle_of backend replicates duration seed params =
  Macgame.Oracle.create
    ~backend:(backend_of backend replicates duration seed)
    params

(* Evaluates to [Dcf.Params.t -> Macgame.Oracle.t]: the subcommand builds
   its params from --mode/-m first, then closes the oracle over them. *)
let oracle_term =
  Term.(
    const oracle_of $ backend_t $ replicates_t $ sim_duration_t $ sim_seed_t)

(* The serving variant additionally threads a store and the warm-start
   switch into the oracle (plain, not optional, arguments — optional args
   do not travel well through cmdliner terms). *)
let serving_oracle_term =
  Term.(
    const (fun backend replicates duration seed store warm_start params ->
        Macgame.Oracle.create
          ~backend:(backend_of backend replicates duration seed)
          ?store ~warm_start params)
    $ backend_t $ replicates_t $ sim_duration_t $ sim_seed_t)

(* {1 solve} *)

let solve_cmd =
  let profile_t =
    Arg.(
      non_empty
      & pos_all int []
      & info [] ~docv:"CW..." ~doc:"Contention windows, one per node.")
  in
  let run mode m cws () =
    let params = params_of mode m in
    let solved = Dcf.Model.solve params (Array.of_list cws) in
    Printf.printf "node |    W |    tau |      p | throughput | payoff/s\n";
    Array.iteri
      (fun i w ->
        Printf.printf "%4d | %4d | %.4f | %.4f |     %.4f | %+.4f\n" i w
          solved.taus.(i) solved.ps.(i)
          solved.metrics.per_node_throughput.(i)
          solved.utilities.(i))
      solved.cws;
    Printf.printf
      "channel: S=%.4f  Tslot=%.1f us  idle %.1f%%  success %.1f%%  collision %.1f%%\n"
      solved.metrics.throughput
      (solved.metrics.slot_time *. 1e6)
      (100. *. Dcf.Metrics.idle_fraction solved.metrics)
      (100. *. Dcf.Metrics.success_fraction solved.metrics)
      (100. *. Dcf.Metrics.collision_fraction solved.metrics)
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve the analytic model for a CW profile")
    (instrumented Term.(const run $ mode_t $ backoff_t $ profile_t))

(* {1 ne} *)

let ne_cmd =
  let run mode m n mk_oracle () =
    let params = params_of mode m in
    let oracle = mk_oracle params in
    let w_star = Macgame.Equilibrium.efficient_cw oracle ~n in
    let w_lo = Macgame.Equilibrium.break_even_cw oracle ~n in
    let rlo, rhi = Macgame.Equilibrium.robust_range oracle ~n ~fraction:0.95 in
    Printf.printf "players            n    = %d (%s, %s backend)\n" n
      (Format.asprintf "%a" Dcf.Params.pp_access_mode mode)
      (Macgame.Oracle.backend_name (Macgame.Oracle.backend oracle));
    Printf.printf "efficient NE       Wc*  = %d\n" w_star;
    Printf.printf "break-even window  Wc0  = %d\n" w_lo;
    Printf.printf "NE set                  = [%d, %d]\n" w_lo w_star;
    Printf.printf "95%% robust range        = [%d, %d]\n" rlo rhi;
    Printf.printf "payoff at Wc*           = %.4f /s per node\n"
      (Macgame.Oracle.payoff_uniform oracle ~n ~w:w_star);
    Printf.printf "social welfare at Wc*   = %.4f /s\n"
      (Macgame.Equilibrium.social_welfare oracle ~n ~w:w_star);
    if n > 1 then
      Printf.printf "optimal tau (Q root)    = %.5f\n"
        (Macgame.Equilibrium.tau_star params ~n)
  in
  Cmd.v
    (Cmd.info "ne" ~doc:"Nash-equilibrium analysis for a symmetric network")
    (instrumented Term.(const run $ mode_t $ backoff_t $ n_t $ oracle_term))

(* {1 ne-multi} *)

let ne_multi_cmd =
  let aifs_max_t =
    Arg.(
      value & opt int 2
      & info [ "aifs-max" ] ~docv:"A" ~doc:"Largest AIFS defer count searched.")
  in
  let txop_max_t =
    Arg.(
      value & opt int 1
      & info [ "txop-max" ] ~docv:"K" ~doc:"Largest TXOP burst searched.")
  in
  let w0_t =
    Arg.(
      value & opt int 64
      & info [ "w0" ] ~docv:"W0" ~doc:"Starting window of every player.")
  in
  let run mode m n aifs_max txop_max w0 mk_oracle () =
    let params = params_of mode m in
    let oracle = mk_oracle params in
    let space =
      Dcf.Strategy_space.edca_space ~aifs_max ~txop_max
        ~cw_max:params.Dcf.Params.cw_max ()
    in
    let initial = Macgame.Profile.uniform ~n ~w:w0 in
    let out = Macgame.Search.ne_search oracle ~space ~initial in
    let payoffs = Macgame.Oracle.payoffs_profile oracle out.equilibrium in
    Printf.printf
      "space: CW [%d, %d] x AIFS [0, %d] x TXOP [1, %d]  (%s backend)\n"
      space.cw_min space.cw_max space.aifs_max space.txop_max
      (Macgame.Oracle.backend_name (Macgame.Oracle.backend oracle));
    Printf.printf "%s after %d round(s), %d payoff evaluations\n"
      (if out.converged then "converged" else "NOT converged")
      out.rounds out.evaluations;
    Array.iteri
      (fun i s ->
        Printf.printf "player %d: %s  payoff %+.4f /s\n" i
          (Format.asprintf "%a" Macgame.Strategy_space.pp s)
          payoffs.(i))
      out.equilibrium
  in
  Cmd.v
    (Cmd.info "ne-multi"
       ~doc:
         "Coordinate-descent NE search over the (CW, AIFS, TXOP) strategy \
          space")
    (instrumented
       Term.(
         const run $ mode_t $ backoff_t $ n_t $ aifs_max_t $ txop_max_t $ w0_t
         $ oracle_term))

(* {1 game} *)

let game_cmd =
  let stages_t =
    Arg.(value & opt int 6 & info [ "stages" ] ~docv:"K" ~doc:"Stages to play.")
  in
  let cheater_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "cheater" ] ~docv:"W"
          ~doc:"Add one player that pins this window (replaces player 0).")
  in
  let gtft_t =
    Arg.(
      value & flag
      & info [ "gtft" ] ~doc:"Use Generous TFT (r0=3, beta=0.9) instead of TFT.")
  in
  let noise_t =
    Arg.(
      value & opt float 0.
      & info [ "obs-noise" ] ~docv:"REL"
          ~doc:"Relative stddev of CW observation noise (0 = perfect).")
  in
  let run mode m n stages cheater gtft noise seed mk_oracle () =
    let oracle = mk_oracle (params_of mode m) in
    let w_star = Macgame.Equilibrium.efficient_cw oracle ~n in
    let base i =
      let initial = w_star + (7 * i) in
      if gtft then Macgame.Strategy.gtft ~initial ~r0:3 ~beta:0.9
      else Macgame.Strategy.tft ~initial
    in
    let strategies = Array.init n base in
    (match cheater with
    | Some w -> strategies.(0) <- Macgame.Strategy.fixed w
    | None -> ());
    let observer =
      if noise > 0. then
        Macgame.Observer.noisy ~rng:(Prelude.Rng.create seed) ~rel_stddev:noise
      else Macgame.Observer.perfect
    in
    let outcome = Macgame.Repeated.run oracle ~observer ~strategies ~stages in
    Printf.printf "players: %s\n"
      (String.concat ", "
         (Array.to_list
            (Array.map (Format.asprintf "%a" Macgame.Strategy.pp) strategies)));
    Printf.printf "stage | profile | welfare | fairness\n";
    Array.iter
      (fun (r : Macgame.Repeated.stage_record) ->
        Printf.printf "%5d | %s | %8.3f | %.3f\n" r.stage
          (Format.asprintf "%a" Macgame.Profile.pp r.cws)
          r.welfare
          (Prelude.Stats.jain_fairness r.utilities))
      outcome.trace;
    match (Macgame.Repeated.converged_window outcome, outcome.converged_at) with
    | Some w, Some k -> Printf.printf "converged to W=%d at stage %d\n" w k
    | _ -> print_endline "no convergence within the horizon"
  in
  Cmd.v
    (Cmd.info "game" ~doc:"Play the repeated MAC game and print the trace")
    (instrumented
       Term.(
         const run $ mode_t $ backoff_t $ n_t $ stages_t $ cheater_t $ gtft_t
         $ noise_t $ seed_t $ oracle_term))

(* {1 search} *)

let search_cmd =
  let w0_t =
    Arg.(value & opt int 16 & info [ "w0" ] ~docv:"W0" ~doc:"Starting window.")
  in
  let probes_t =
    Arg.(
      value & opt int 1
      & info [ "probes" ] ~docv:"K" ~doc:"Payoff measurements per candidate.")
  in
  let run mode m n w0 probes mk_oracle () =
    let params = params_of mode m in
    let oracle = mk_oracle params in
    let trace =
      Macgame.Search.run ~w0 ~probes ~cw_max:params.Dcf.Params.cw_max
        (Macgame.Search.of_oracle oracle ~n)
    in
    List.iter
      (fun { Macgame.Search.w; payoff; stddev } ->
        Printf.printf "probe W=%4d  payoff %.4f (stddev %.4f)\n" w payoff
          stddev)
      trace.measurements;
    (* Score the announced window against the analytic optimum regardless
       of what backend drove the climb. *)
    let analytic = Macgame.Oracle.analytic params in
    let w_star = Macgame.Equilibrium.efficient_cw analytic ~n in
    let u w = Macgame.Oracle.payoff_uniform analytic ~n ~w in
    Printf.printf "announced Wm = %d (true Wc* = %d, payoff ratio %.1f%%)\n"
      trace.result w_star
      (100. *. u trace.result /. u w_star)
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Run the distributed NE-search protocol (Sec. V.C)")
    (instrumented
       Term.(
         const run $ mode_t $ backoff_t $ n_t $ w0_t $ probes_t $ oracle_term))

(* {1 sim} *)

let aifs_t =
  Arg.(
    value & opt int 0
    & info [ "aifs" ] ~docv:"A" ~doc:"Extra AIFS defer slots (0 = legacy DIFS).")

let txop_t =
  Arg.(
    value & opt int 1
    & info [ "txop" ] ~docv:"K" ~doc:"Frames per TXOP burst (1 = no bursting).")

let rate_t =
  Arg.(
    value & opt float 1.0
    & info [ "rate" ] ~docv:"R" ~doc:"PHY rate multiplier (1 = base rate).")

let sim_cmd =
  let w_t =
    Arg.(
      value & opt int 79 & info [ "w"; "window" ] ~docv:"W" ~doc:"Common contention window.")
  in
  let shards_t =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Run the geometric spatial core region-sharded across $(docv) \
             domains (nodes dropped by the waypoint model in the \
             $(b,--area) square) instead of the single-hop slotted \
             simulator.  0 keeps the slotted path.")
  in
  let sim_area_t =
    Arg.(
      value & opt float 500.
      & info [ "area" ] ~docv:"METERS"
          ~doc:"Side of the square area (spatial path, with --shards).")
  in
  let sim_range_t =
    Arg.(
      value & opt float 120.
      & info [ "range" ] ~docv:"METERS"
          ~doc:"Decode radius (spatial path, with --shards).")
  in
  let cs_range_t =
    Arg.(
      value & opt float 0.
      & info [ "cs-range" ] ~docv:"METERS"
          ~doc:
            "Carrier-sense radius (spatial path); 0 means 1.5 x the decode \
             radius.")
  in
  let run_sharded ~params ~strategies ~n ~w ~duration ~seed ~shards ~area
      ~range ~cs_range =
    let cs_range = if cs_range > 0. then cs_range else 1.5 *. range in
    let walkers =
      Mobility.Waypoint.create ~seed
        { width = area; height = area; speed_min = 0.; speed_max = 5. }
        ~n
    in
    let t0 = Unix.gettimeofday () in
    let r =
      Netsim.Sharded.run ?strategies ~shards
        {
          Netsim.Sharded.params;
          positions = Mobility.Waypoint.positions walkers;
          range;
          cs_range;
          cws = Array.make n w;
          duration;
          seed;
        }
    in
    let wall = Unix.gettimeofday () -. t0 in
    let mirrored =
      Array.fold_left
        (fun acc (i : Netsim.Sharded.shard_info) -> acc + i.mirrored)
        0 r.shards
    in
    Printf.printf
      "simulated %.1f s over %d nodes in %d live shard(s), %d mirrored\n"
      r.time n (Array.length r.shards) mirrored;
    Printf.printf
      "wall %.2f s (%.2fx real-time) | delivered %d | welfare %.4f\n" wall
      (if wall > 0. then r.time /. wall else infinity)
      r.delivered r.welfare_rate;
    (* The full table only at human scale; at 10^4 nodes it is noise. *)
    if n <= 64 then begin
      Printf.printf "node | attempts | success | coll | hidden | payoff/s\n";
      Array.iteri
        (fun i (s : Netsim.Spatial.node_stats) ->
          Printf.printf "%4d | %8d | %7d | %4d | %6d | %+.4f\n" i s.attempts
            s.successes s.local_collisions s.hidden_failures s.payoff_rate)
        r.per_node
    end
  in
  let run mode m n w aifs txop rate duration seed shards area range cs_range
      () =
    let params = params_of mode m in
    let s =
      { Macgame.Strategy_space.cw = w; aifs; txop_frames = txop; rate }
    in
    (match Macgame.Strategy_space.validate ~cw_max:params.Dcf.Params.cw_max s with
    | Ok () -> ()
    | Error e -> raise (Invalid_argument ("sim: " ^ e)));
    let strategies =
      if Macgame.Strategy_space.is_degenerate s then None
      else Some (Array.make n s)
    in
    if shards > 0 then
      run_sharded ~params ~strategies ~n ~w ~duration ~seed ~shards ~area
        ~range ~cs_range
    else begin
      let r =
        Netsim.Slotted.run ?strategies
          { params; cws = Array.make n w; duration; seed }
      in
      Printf.printf "simulated %.1f s, %d virtual slots\n" r.time r.slots;
      Printf.printf "node | attempts | success | tau_hat |  p_hat | payoff/s\n";
      Array.iteri
        (fun i (s : Netsim.Slotted.node_stats) ->
          Printf.printf "%4d | %8d | %7d | %.5f | %.4f | %+.4f\n" i s.attempts
            s.successes s.tau_hat s.p_hat s.payoff_rate)
        r.per_node;
      match strategies with
      | None ->
          let v = Dcf.Model.homogeneous params ~n ~w in
          Printf.printf
            "model: tau=%.5f p=%.4f payoff=%.4f | sim welfare %.4f\n" v.tau
            v.p v.utility r.welfare_rate
      | Some ss ->
          let v = Dcf.Model.solve_strategies params ss in
          Printf.printf
            "model: tau=%.5f p=%.4f payoff=%.4f | sim welfare %.4f\n"
            v.taus.(0) v.ps.(0) v.utilities.(0) r.welfare_rate
    end
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Packet-level simulation (slotted, or spatial with --shards)")
    (instrumented
       Term.(
         const run $ mode_t $ backoff_t $ n_t $ w_t $ aifs_t $ txop_t $ rate_t
         $ duration_t $ seed_t $ shards_t $ sim_area_t $ sim_range_t
         $ cs_range_t))

(* {1 multihop} *)

let multihop_cmd =
  let nodes_t =
    Arg.(value & opt int 100 & info [ "nodes" ] ~docv:"N" ~doc:"Node count.")
  in
  let area_t =
    Arg.(
      value & opt float 1000.
      & info [ "area" ] ~docv:"METERS" ~doc:"Side of the square area.")
  in
  let range_t =
    Arg.(
      value & opt float 250.
      & info [ "range" ] ~docv:"METERS" ~doc:"Radio range.")
  in
  let run m nodes area range seed () =
    let params =
      { Dcf.Params.rts_cts with Dcf.Params.max_backoff_stage = m }
    in
    let walkers =
      Mobility.Waypoint.create ~seed
        { width = area; height = area; speed_min = 0.; speed_max = 5. }
        ~n:nodes
    in
    let adjacency =
      Mobility.Topology.snapshot ~connect_attempts:200 walkers ~range
    in
    Printf.printf "topology: %d nodes, avg degree %.1f, connected %b\n" nodes
      (Mobility.Topology.average_degree adjacency)
      (Mobility.Topology.is_connected adjacency);
    let members = Mobility.Topology.largest_component adjacency in
    let core = Mobility.Topology.restrict adjacency members in
    let graph = Macgame.Multihop.create core in
    let q =
      Macgame.Multihop.quasi_optimality (Macgame.Oracle.analytic params) graph
    in
    Printf.printf "largest component: %d nodes, diameter %d\n"
      (List.length members)
      (Macgame.Multihop.diameter graph);
    Printf.printf "converged NE window Wm   = %d\n" q.w_m;
    Printf.printf "best common window       = %d\n" q.w_global_opt;
    Printf.printf "global payoff ratio      = %.1f%%\n" (100. *. q.global_ratio);
    Printf.printf "worst local payoff ratio = %.1f%%\n"
      (100. *. q.min_local_ratio)
  in
  Cmd.v
    (Cmd.info "multihop"
       ~doc:"Random-waypoint multi-hop scenario and NE quasi-optimality")
    (instrumented
       Term.(const run $ backoff_t $ nodes_t $ area_t $ range_t $ seed_t))

(* {1 sweep} *)

let sweep_cmd =
  let points_t =
    Arg.(value & opt int 24 & info [ "points" ] ~docv:"K" ~doc:"Grid size.")
  in
  let run mode m n points mk_oracle () =
    let params = params_of mode m in
    let oracle = mk_oracle params in
    let ws = Macgame.Welfare.sample_windows oracle ~n ~count:points in
    (* Each grid point is a runner task: -j N parallelises the sweep and
       --cache makes re-runs incremental. *)
    let encode (u, s) =
      Telemetry.Jsonx.Obj
        [
          ("utility", Telemetry.Jsonx.Float u);
          ("throughput", Telemetry.Jsonx.Float s);
        ]
    in
    let decode json =
      match
        ( Option.bind (Telemetry.Jsonx.member "utility" json)
            Telemetry.Jsonx.to_float_opt,
          Option.bind (Telemetry.Jsonx.member "throughput" json)
            Telemetry.Jsonx.to_float_opt )
      with
      | Some u, Some s -> Some (u, s)
      | _ -> None
    in
    let tasks =
      Array.map
        (fun w ->
          Runner.Task.make
            ~key:
              (Runner.Task.key_of ~family:"cli.sweep"
                 [
                   ( "params",
                     Telemetry.Jsonx.String
                       (Format.asprintf "%a" Dcf.Params.pp params) );
                   ( "backend",
                     Telemetry.Jsonx.String
                       (Macgame.Oracle.backend_name
                          (Macgame.Oracle.backend oracle)) );
                   ("n", Telemetry.Jsonx.Int n);
                   ("w", Telemetry.Jsonx.Int w);
                 ])
            ~encode ~decode
            (fun _rng ->
              let view = Macgame.Oracle.uniform oracle ~n ~w in
              (view.Macgame.Oracle.utility, view.Macgame.Oracle.throughput)))
        ws
    in
    let results = Runner.map ~name:"cli.sweep" tasks in
    Printf.printf "   W | payoff/node | welfare | U/C      | throughput\n";
    Array.iteri
      (fun i w ->
        let utility, throughput = results.(i) in
        Printf.printf "%4d |    %8.4f | %7.3f | %.6f | %.4f\n" w utility
          (float_of_int n *. utility)
          (params.Dcf.Params.sigma *. float_of_int n *. utility
          /. params.Dcf.Params.gain)
          throughput)
      ws;
    let w_star = Macgame.Equilibrium.efficient_cw oracle ~n in
    Printf.printf "efficient NE at W = %d\n" w_star
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Payoff and throughput versus the common window")
    (instrumented
       Term.(const run $ mode_t $ backoff_t $ n_t $ points_t $ oracle_term))

(* {1 delay} *)

let delay_cmd =
  let gamma_t =
    Arg.(
      value & opt float 0.
      & info [ "gamma" ] ~docv:"G" ~doc:"Delay sensitivity in 1/s.")
  in
  let run mode m n gamma () =
    let params = params_of mode m in
    let oracle = Macgame.Oracle.analytic params in
    let w_star = Macgame.Delay_game.efficient_cw oracle ~gamma ~n in
    let u = Macgame.Oracle.uniform oracle ~n ~w:w_star in
    let view =
      Dcf.Delay.of_node ~slot_time:u.slot_time ~tau:u.tau ~p:u.p ~w:w_star
        ~m:params.Dcf.Params.max_backoff_stage
    in
    Printf.printf "delay-aware efficient NE (gamma=%g): W = %d\n" gamma w_star;
    Printf.printf "mean access delay        = %.2f ms\n" (view.mean_delay *. 1e3);
    Printf.printf "attempts per packet      = %.3f\n" view.attempts_per_packet;
    Printf.printf "backoff slots per packet = %.1f\n" view.backoff_slots_per_packet;
    Printf.printf "network throughput S     = %.4f\n" u.throughput
  in
  Cmd.v
    (Cmd.info "delay" ~doc:"Delay-aware NE analysis (Sec. VIII extension)")
    (instrumented Term.(const run $ mode_t $ backoff_t $ n_t $ gamma_t))

(* {1 detect} *)

let detect_cmd =
  let beta_t =
    Arg.(
      value & opt float 0.8
      & info [ "beta" ] ~docv:"B" ~doc:"Tolerance threshold in (0, 1].")
  in
  let samples_t =
    Arg.(
      value & opt int 25
      & info [ "samples" ] ~docv:"K" ~doc:"Backoff observations per stage.")
  in
  let run mode m n beta samples () =
    let params = params_of mode m in
    let w_exp =
      Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic params) ~n
    in
    Printf.printf "expected window W = %d; trigger: estimate < %.2f*W\n" w_exp beta;
    Printf.printf "false positive rate      = %.5f\n"
      (Macgame.Detection.false_positive_rate ~w_exp ~samples ~beta);
    List.iter
      (fun frac ->
        let w_true = Stdlib.max 1 (w_exp / frac) in
        Printf.printf "detect cheater at W/%d    = %.5f\n" frac
          (Macgame.Detection.detection_rate ~w_true ~w_exp ~samples ~beta))
      [ 2; 4; 8 ];
    match
      Macgame.Detection.design_gtft ~w_exp ~cheat_factor:0.5 ~per_stage:samples
        ~max_fp:0.05 ~min_detection:0.95
    with
    | Some d ->
        Printf.printf
          "suggested GTFT: beta=%.3f, r0=%d (FP %.4f, detection %.4f)\n" d.beta
          d.r0 d.false_positive d.detection
    | None -> print_endline "no feasible GTFT design within r0 <= 64"
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:"Cheating-detection error rates and GTFT design (cf. [3])")
    (instrumented
       Term.(const run $ mode_t $ backoff_t $ n_t $ beta_t $ samples_t))

(* {1 conformance} *)

let conformance_cmd =
  let tier_t =
    Arg.(
      value
      & opt (enum [ ("fast", Conformance.Check.Fast); ("full", Conformance.Check.Full) ]) Conformance.Check.Fast
      & info [ "tier" ] ~docv:"TIER"
          ~doc:
            "Which checks to run: $(b,fast) (the sub-second @ci tier) or \
             $(b,full) (the complete statistical grid; full includes fast).")
  in
  let golden_dir_t =
    Arg.(
      value
      & opt string Conformance.Suite.default_golden_dir
      & info [ "golden-dir" ] ~docv:"DIR"
          ~doc:"Directory of golden JSONL snapshots (default: test/golden).")
  in
  let bless_t =
    Arg.(
      value & flag
      & info [ "bless" ]
          ~doc:
            "Regenerate the golden snapshots instead of checking them \
             (equivalent to CONFORMANCE_BLESS=1).")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Also write the conformance report to $(docv).")
  in
  let bless_env () =
    match Sys.getenv_opt "CONFORMANCE_BLESS" with
    | Some s when s <> "" && s <> "0" -> true
    | _ -> false
  in
  let run file report trace jobs cache no_cache tier golden_dir bless out =
    configure_runner jobs cache no_cache;
    let failed = ref false in
    with_telemetry file report trace (fun () ->
        if bless || bless_env () then
          List.iter
            (fun path -> Printf.printf "blessed %s\n" path)
            (Conformance.Suite.bless ~golden_dir ~tier ())
        else begin
          let outcome = Conformance.Suite.run ~golden_dir ~tier () in
          print_string outcome.Conformance.Suite.report;
          Option.iter
            (fun path ->
              Out_channel.with_open_bin path (fun oc ->
                  Out_channel.output_string oc outcome.Conformance.Suite.report);
              Printf.printf "report written to %s\n" path)
            out;
          failed := not outcome.Conformance.Suite.ok
        end);
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "conformance"
       ~doc:
         "Run the conformance suite: cross-backend statistical equivalence, \
          paper anchors and golden snapshots")
    Term.(
      const run $ telemetry_t $ telemetry_report_t $ trace_out_t $ jobs_t
      $ cache_t $ no_cache_t $ tier_t $ golden_dir_t $ bless_t $ out_t)

(* {1 serve} *)

let serve_cmd =
  let store_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Back the oracle with a persistent equilibrium store at $(docv) \
             (created if missing).  Cold solves are written through, so a \
             restarted service answers repeat queries from disk.")
  in
  let socket_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at $(docv).")
  in
  let stdin_t =
    Arg.(
      value & flag
      & info [ "stdin" ]
          ~doc:
            "Serve stdin to stdout, one JSONL request per line, until EOF \
             (the default when $(b,--socket) is not given).")
  in
  let max_inflight_t =
    Arg.(
      value & opt int 8
      & info [ "max-inflight" ] ~docv:"K"
          ~doc:
            "Evaluate at most $(docv) socket requests concurrently; the \
             rest queue (and may exhaust their deadlines).")
  in
  let max_connections_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-connections" ] ~docv:"K"
          ~doc:
            "Exit after serving $(docv) socket connections (for tests and \
             benches; default: serve forever).")
  in
  let warm_start_t =
    Arg.(
      value & flag
      & info [ "warm-start" ]
          ~doc:
            "Seed analytic solves from the nearest already-solved (n, W) \
             neighbour (loaded from the store at open).  Cuts cold-solve \
             iterations; answers agree with cold solves at tolerance \
             level rather than bit level.")
  in
  let run mode m store socket use_stdin max_inflight max_connections
      warm_start mk_oracle () =
    let params = params_of mode m in
    let store =
      Option.map
        (fun dir ->
          try Store.open_dir dir
          with Store.Locked reason ->
            Printf.eprintf "cannot open store: %s\n" reason;
            exit 2)
        store
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Store.close store)
      (fun () ->
        let oracle = mk_oracle store warm_start params in
        let server = Serve.Server.create oracle in
        match (socket, use_stdin) with
        | Some _, true ->
            Printf.eprintf "--socket and --stdin are mutually exclusive\n";
            exit 2
        | Some path, false ->
            Printf.eprintf "serving on %s\n%!" path;
            Serve.Server.serve_socket server ~path ~max_inflight
              ?max_connections ()
        | None, _ -> Serve.Server.serve_channel server stdin stdout)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve oracle queries as a JSONL service (stdin or Unix socket), \
          optionally backed by a persistent equilibrium store")
    (instrumented
       Term.(
         const run $ mode_t $ backoff_t $ store_t $ socket_t $ stdin_t
         $ max_inflight_t $ max_connections_t $ warm_start_t
         $ serving_oracle_term))

(* {1 cache}

   Admin commands for the runner's content-addressed result cache. *)

let cache_dir_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Cache directory (as passed to --cache).")

let cache_gc_cmd =
  let max_age_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-age-days" ] ~docv:"DAYS"
          ~doc:"Evict entries older than $(docv) days.")
  in
  let max_bytes_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-bytes" ] ~docv:"BYTES"
          ~doc:
            "Evict oldest entries until the cache fits in $(docv) bytes.")
  in
  let run dir max_age_days max_bytes =
    let cache = Runner.Cache.open_dir dir in
    let stats = Runner.Cache.gc ?max_age_days ?max_bytes cache in
    Printf.printf
      "scanned %d entries: evicted %d (%d corrupt), freed %d bytes, %d \
       bytes kept\n"
      stats.Runner.Cache.scanned stats.evicted stats.corrupt stats.bytes_freed
      stats.bytes_kept
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:
         "Evict corrupt, stale and over-budget entries from a result cache")
    Term.(const run $ cache_dir_pos $ max_age_t $ max_bytes_t)

let cache_stats_cmd =
  let run dir =
    let cache = Runner.Cache.open_dir dir in
    Printf.printf "%s: %d entries\n" dir (Runner.Cache.entries cache)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Entry count of a result cache")
    Term.(const run $ cache_dir_pos)

let cache_cmd =
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect and collect the runner's result cache")
    [ cache_gc_cmd; cache_stats_cmd ]

(* {1 store}

   Admin commands for the persistent equilibrium store. *)

let store_dir_pos =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Store directory (as passed to serve --store).")

let with_store dir f =
  match Store.with_store dir f with
  | v -> v
  | exception Store.Locked reason ->
      Printf.eprintf "cannot open store: %s\n" reason;
      exit 2
  | exception Store.Corrupt reason ->
      Printf.eprintf "corrupt store: %s\n" reason;
      exit 2

let store_stats_cmd =
  let run dir =
    with_store dir (fun s ->
        Printf.printf "%s: %d entries\n" dir (Store.entries s))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Entry count of an equilibrium store")
    Term.(const run $ store_dir_pos)

let store_compact_cmd =
  let run dir =
    with_store dir (fun s ->
        let before = Store.entries s in
        Store.compact s;
        Printf.printf "compacted %s: %d live entries\n" dir before)
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Rewrite an equilibrium store as one clean segment, dropping \
          superseded and damaged lines")
    Term.(const run $ store_dir_pos)

let store_cmd =
  Cmd.group
    (Cmd.info "store" ~doc:"Inspect and compact the equilibrium store")
    [ store_stats_cmd; store_compact_cmd ]

(* {1 trace}

   The flight-recorder toolbox: record a built-in workload to a binary
   trace, summarise it (top-k self/total time per span name), export it
   as Chrome trace-event JSON for Perfetto, and diff two traces with a
   threshold exit code for regression gates. *)

let read_trace path =
  match Telemetry.Trace_file.read path with
  | dump -> dump
  | exception Telemetry.Trace_file.Corrupt msg ->
      Printf.eprintf "%s: corrupt trace: %s\n" path msg;
      exit 2
  | exception Sys_error msg ->
      Printf.eprintf "cannot read trace: %s\n" msg;
      exit 2

let trace_record_cmd =
  let workload_t =
    Arg.(
      value
      & opt
          (enum
             [
               ("spatial25", `Spatial25); ("spatial10k", `Spatial10k);
               ("chain30", `Chain30);
               ("solve", `Solve); ("sweep", `Sweep);
             ])
          `Spatial25
      & info [ "workload" ] ~docv:"NAME"
          ~doc:
            "Built-in workload to record: $(b,spatial25) (25-node random \
             geometric spatial simulation, the perf kernel's topology), \
             $(b,spatial10k) (10000-node constant-density network through \
             the grid-indexed core — the scale tier's substrate), \
             $(b,chain30) (30-node RTS/CTS chain), $(b,solve) (50-node \
             heterogeneous fixed point) or $(b,sweep) (window sweep through \
             the runner pool; combine with -j to exercise multi-domain \
             merging).")
  in
  let out_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the trace.")
  in
  let repeat_t =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"K" ~doc:"Run the workload $(docv) times.")
  in
  let capacity_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "capacity" ] ~docv:"RECORDS"
          ~doc:
            "Ring capacity per domain (rounded up to a power of two; \
             default 32768).  Small rings demonstrate wrap accounting.")
  in
  let detail_t =
    Arg.(
      value & flag
      & info [ "detail" ]
          ~doc:
            "Also record the dense tier (per-calendar-event instants in the \
             spatial core).")
  in
  let inject_t =
    Arg.(
      value & opt int 0
      & info [ "inject-slow-us" ] ~docv:"MICROS"
          ~doc:
            "Busy-wait $(docv) microseconds inside each workload iteration \
             (under a $(b,trace.injected) span) — an artificial slowdown \
             for exercising $(b,trace diff).")
  in
  let busy_wait us =
    let until = Unix.gettimeofday () +. (float_of_int us *. 1e-6) in
    while Unix.gettimeofday () < until do
      ()
    done
  in
  let chain n =
    Array.init n (fun i ->
        List.filter (fun j -> j >= 0 && j < n && j <> i) [ i - 1; i + 1 ])
  in
  let random_geometric ~seed n =
    let w =
      Mobility.Waypoint.create ~seed
        { width = 500.; height = 500.; speed_min = 0.; speed_max = 5. }
        ~n
    in
    Mobility.Topology.snapshot ~connect_attempts:50 w ~range:180.
  in
  let spatial adjacency n duration seed =
    ignore
      (Netsim.Spatial.run
         {
           params = Dcf.Params.rts_cts;
           adjacency;
           cws = Array.make n 32;
           duration;
           seed;
         })
  in
  let sweep_workload jobs =
    let oracle = Macgame.Oracle.analytic Dcf.Params.default in
    let tasks =
      Array.init 32 (fun i ->
          let w = 16 + (8 * i) in
          Runner.Task.make
            ~key:
              (Runner.Task.key_of ~family:"trace.sweep"
                 [ ("w", Telemetry.Jsonx.Int w) ])
            ~encode:(fun v -> Telemetry.Jsonx.Float v)
            ~decode:Telemetry.Jsonx.to_float_opt
            (fun _rng -> Macgame.Oracle.payoff_uniform oracle ~n:10 ~w))
    in
    ignore
      (Runner.map
         ~config:
           { Runner.workers = jobs; cache_dir = None; checkpoints = false; seed = 0 }
         ~name:"trace.sweep" tasks)
  in
  let run workload out duration seed repeat capacity detail inject jobs =
    let recorder = Telemetry.Recorder.default in
    Option.iter (Telemetry.Recorder.set_capacity recorder) capacity;
    Telemetry.Recorder.set_detail recorder detail;
    let nid_workload = Telemetry.Recorder.intern recorder "trace.workload" in
    let nid_injected = Telemetry.Recorder.intern recorder "trace.injected" in
    let body =
      match workload with
      | `Spatial25 ->
          let adjacency = random_geometric ~seed 25 in
          fun () -> spatial adjacency 25 duration seed
      | `Spatial10k ->
          (* Constant mean decode degree ~12 (as in the bench scale tier):
             the area grows with n, so this records index behaviour at
             10^4 nodes, not a denser MAC game.  Through run_grid — no
             O(n^2) adjacency extraction on the way in. *)
          let n = 10_000 and range = 120. in
          let side =
            sqrt (float_of_int n *. Float.pi *. range *. range /. 12.)
          in
          let w =
            Mobility.Waypoint.create ~seed
              { width = side; height = side; speed_min = 0.; speed_max = 5. }
              ~n
          in
          let positions = Mobility.Waypoint.positions w in
          fun () ->
            ignore
              (Netsim.Spatial.run_grid ~params:Dcf.Params.default ~positions
                 ~range ~cs_range:180. ~cws:(Array.make n 128) ~duration
                 ~seed ())
      | `Chain30 ->
          let adjacency = chain 30 in
          fun () -> spatial adjacency 30 duration seed
      | `Solve ->
          fun () ->
            ignore
              (Dcf.Solver.solve Dcf.Params.default
                 (Array.init 50 (fun i -> 64 + i)))
      | `Sweep -> fun () -> sweep_workload jobs
    in
    Telemetry.Recorder.set_enabled recorder true;
    for k = 1 to Stdlib.max 1 repeat do
      let rid = Telemetry.Recorder.begin_span recorder nid_workload k inject in
      body ();
      if inject > 0 then begin
        let irid =
          Telemetry.Recorder.begin_span recorder nid_injected inject k
        in
        busy_wait inject;
        Telemetry.Recorder.end_span recorder nid_injected irid
      end;
      Telemetry.Recorder.end_span recorder nid_workload rid
    done;
    Telemetry.Recorder.set_enabled recorder false;
    let dump = Telemetry.Recorder.drain recorder in
    Telemetry.Trace_file.write out dump;
    Printf.printf "trace: %d records (%d dropped) -> %s\n"
      (Array.length dump.records) dump.dropped out
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Record a built-in workload to a binary trace")
    Term.(
      const run $ workload_t $ out_t $ duration_t $ seed_t $ repeat_t
      $ capacity_t $ detail_t $ inject_t $ jobs_t)

let trace_file_pos n doc = Arg.(required & pos n (some string) None & info [] ~docv:"TRACE" ~doc)

let trace_summary_cmd =
  let top_t =
    Arg.(
      value & opt int 15
      & info [ "top" ] ~docv:"K" ~doc:"Show the top $(docv) span names.")
  in
  let run path top =
    let summary = Telemetry.Trace_view.summarize (read_trace path) in
    Telemetry.Trace_view.render_summary ~top Format.std_formatter summary
  in
  Cmd.v
    (Cmd.info "summary"
       ~doc:"Per-span self/total time and loss accounting for a trace")
    Term.(const run $ trace_file_pos 0 "Trace file (from record or --trace)." $ top_t)

let trace_export_cmd =
  let format_t =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome) ]) `Chrome
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format; $(b,chrome) is Chrome trace-event JSON, \
             loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.")
  in
  let out_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the export.")
  in
  let run path `Chrome out =
    let dump = read_trace path in
    let json =
      Telemetry.Jsonx.to_string (Telemetry.Trace_view.to_chrome dump)
    in
    (* Self-check: the export must parse back before we call it valid. *)
    (match Telemetry.Jsonx.parse json with
    | exception Telemetry.Jsonx.Parse_error msg ->
        Printf.eprintf "internal error: chrome export is not valid JSON: %s\n"
          msg;
        exit 2
    | _ -> ());
    Out_channel.with_open_bin out (fun oc ->
        Out_channel.output_string oc json;
        Out_channel.output_char oc '\n');
    Printf.printf "exported %d records -> %s (open in ui.perfetto.dev)\n"
      (Array.length dump.records) out
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a trace for Perfetto / chrome://tracing")
    Term.(const run $ trace_file_pos 0 "Trace file to export." $ format_t $ out_t)

let trace_diff_cmd =
  let threshold_t =
    Arg.(
      value & opt float 0.25
      & info [ "threshold" ] ~docv:"FRACTION"
          ~doc:
            "Flag span names whose total time changed by more than this \
             fraction.")
  in
  let min_seconds_t =
    Arg.(
      value & opt float 1e-4
      & info [ "min-seconds" ] ~docv:"SECONDS"
          ~doc:
            "Ignore span names below this total time on both sides (noise \
             floor).")
  in
  let run a b threshold min_seconds =
    let deltas =
      Telemetry.Trace_view.diff ~threshold ~min_seconds (read_trace a)
        (read_trace b)
    in
    Telemetry.Trace_view.render_diff Format.std_formatter deltas;
    if Telemetry.Trace_view.flagged deltas > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two traces per span name; exit 1 when any delta exceeds \
          the threshold")
    Term.(
      const run
      $ trace_file_pos 0 "Baseline trace."
      $ trace_file_pos 1 "Candidate trace."
      $ threshold_t $ min_seconds_t)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Record, summarise, export and diff flight-recorder traces")
    [ trace_record_cmd; trace_summary_cmd; trace_export_cmd; trace_diff_cmd ]

let () =
  let info =
    Cmd.info "macgame" ~version:"1.0.0"
      ~doc:
        "Game-theoretic analysis of selfish IEEE 802.11 DCF (ICDCS 2007 \
         reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solve_cmd; ne_cmd; ne_multi_cmd; game_cmd; search_cmd; sim_cmd;
            multihop_cmd;
            sweep_cmd; delay_cmd; detect_cmd; conformance_cmd; serve_cmd;
            cache_cmd; store_cmd; trace_cmd;
          ]))
