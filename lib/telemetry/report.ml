let time_unit seconds =
  let abs = Float.abs seconds in
  if abs = 0. then Printf.sprintf "%.0f" seconds
  else if abs >= 1. then Printf.sprintf "%.3f s" seconds
  else if abs >= 1e-3 then Printf.sprintf "%.3f ms" (seconds *. 1e3)
  else if abs >= 1e-6 then Printf.sprintf "%.3f us" (seconds *. 1e6)
  else Printf.sprintf "%.0f ns" (seconds *. 1e9)

let g6 x = Printf.sprintf "%.6g" x

let render ?(registry = Registry.default) ?recorder () =
  let buf = Buffer.create 1024 in
  let section title columns rows =
    if rows <> [] then begin
      Buffer.add_string buf title;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Prelude.Table.render columns rows);
      Buffer.add_char buf '\n'
    end
  in
  let left = Prelude.Table.column ~align:Prelude.Table.Left in
  let right = Prelude.Table.column in
  section
    (Printf.sprintf "counters (%s)" (Registry.label registry))
    [ left "counter"; right "count" ]
    (List.map
       (fun (name, c) -> [ name; string_of_int (Metric.count c) ])
       (Registry.counters registry));
  section
    (Printf.sprintf "gauges (%s)" (Registry.label registry))
    [ left "gauge"; right "value" ]
    (List.map
       (fun (name, g) -> [ name; g6 (Metric.value g) ])
       (Registry.gauges registry));
  section
    (Printf.sprintf "histograms (%s)" (Registry.label registry))
    [ left "histogram"; right "count"; right "mean"; right "stddev";
      right "min"; right "max" ]
    (List.map
       (fun (name, h) ->
         let empty = Metric.observations h = 0 in
         let cell v = if empty then "-" else
           (* Durations (".seconds" histograms) read better with units. *)
           if Filename.check_suffix name ".seconds" then time_unit v else g6 v
         in
         [
           name;
           string_of_int (Metric.observations h);
           cell (Metric.mean h);
           cell (Metric.stddev h);
           cell (Metric.hmin h);
           cell (Metric.hmax h);
         ])
       (Registry.histograms registry));
  (match recorder with
  | None -> ()
  | Some r ->
      let st = Recorder.stats r in
      if st.written > 0 || st.dropped > 0 then
        section
          (Printf.sprintf "flight recorder (%s)" (Registry.label registry))
          [ left "trace"; right "value" ]
          [
            [ "rings"; string_of_int st.rings ];
            [ "records held"; string_of_int st.live ];
            [ "records written"; string_of_int st.written ];
            [ "records dropped"; string_of_int st.dropped ];
          ]);
  Buffer.contents buf
