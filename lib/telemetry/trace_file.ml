exception Corrupt of string

let magic = "MACTRC01"

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let write path (d : Recorder.dump) =
  let buf = Buffer.create (4096 + (Array.length d.records * 64)) in
  Buffer.add_string buf magic;
  let u64 v = Buffer.add_int64_le buf (Int64.of_int v) in
  u64 (Array.length d.names);
  u64 (Array.length d.records);
  u64 d.dropped;
  Array.iter
    (fun name ->
      u64 (String.length name);
      Buffer.add_string buf name)
    d.names;
  Array.iter
    (fun (r : Recorder.record) ->
      u64 r.ts;
      u64 r.domain;
      u64 r.kind;
      u64 r.name;
      u64 r.span;
      u64 r.parent;
      u64 r.a;
      u64 r.b)
    d.records;
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Buffer.output_buffer oc buf);
  Sys.rename tmp path

let read path : Recorder.dump =
  let s = In_channel.with_open_bin path In_channel.input_all in
  let len = String.length s in
  let pos = ref 0 in
  let need n what =
    if len - !pos < n then
      corrupt "truncated trace: wanted %d bytes for %s, had %d" n what
        (len - !pos)
  in
  need 8 "magic";
  if String.sub s 0 8 <> magic then corrupt "bad magic (not a trace file)";
  pos := 8;
  let i64 what =
    need 8 what;
    let v = Int64.to_int (String.get_int64_le s !pos) in
    pos := !pos + 8;
    v
  in
  let u64 what =
    let v = i64 what in
    if v < 0 then corrupt "negative %s" what;
    v
  in
  let n_names = u64 "name count" in
  let n_records = u64 "record count" in
  let dropped = u64 "dropped count" in
  if n_names > len || n_records > len / 64 then
    corrupt "implausible counts (%d names, %d records) for a %d-byte file"
      n_names n_records len;
  let names = Array.make n_names "" in
  for i = 0 to n_names - 1 do
    let l = u64 "name length" in
    need l "name bytes";
    names.(i) <- String.sub s !pos l;
    pos := !pos + l
  done;
  let records =
    Array.make n_records
      ({ ts = 0; domain = 0; kind = 0; name = 0; span = 0; parent = 0; a = 0; b = 0 }
        : Recorder.record)
  in
  for i = 0 to n_records - 1 do
    let ts = u64 "record" in
    let domain = u64 "record" in
    let kind = u64 "record" in
    let name = u64 "record" in
    let span = u64 "record" in
    let parent = u64 "record" in
    let a = i64 "record" in
    let b = i64 "record" in
    if kind > Recorder.kind_instant then corrupt "record %d: unknown kind %d" i kind;
    if name >= n_names then
      corrupt "record %d: name id %d out of range (have %d names)" i name n_names;
    records.(i) <- { ts; domain; kind; name; span; parent; a; b }
  done;
  if !pos <> len then corrupt "%d trailing bytes after last record" (len - !pos);
  { records; names; dropped }
