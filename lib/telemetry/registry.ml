type t = {
  label : string;
  clock : unit -> float;
  mutex : Mutex.t;
      (* Guards the metric tables, the sink list, sink emission and the
         span-depth counter, so instrumented code may run on any domain
         (the experiment runner executes tasks on a Domain pool).  Metric
         *updates* (incr/observe) are deliberately left outside the lock:
         they are single-field stores, racy-but-memory-safe, and locking
         them would tax every hot loop. *)
  mutable sinks : Sink.t list;
  counters : (string, Metric.counter) Hashtbl.t;
  gauges : (string, Metric.gauge) Hashtbl.t;
  histograms : (string, Metric.histogram) Hashtbl.t;
  mutable depth : int;
}

let create ?(label = "registry") ?(clock = Unix.gettimeofday) () =
  {
    label;
    clock;
    mutex = Mutex.create ();
    sinks = [];
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    depth = 0;
  }

let default = create ~label:"default" ()

let label t = t.label

let now t = t.clock ()

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let get_or_create t table make name =
  locked t (fun () ->
      match Hashtbl.find_opt table name with
      | Some m -> m
      | None ->
          let m = make () in
          Hashtbl.add table name m;
          m)

let counter t name = get_or_create t t.counters Metric.counter name

let gauge t name = get_or_create t t.gauges Metric.gauge name

let histogram t name = get_or_create t t.histograms Metric.histogram name

let add_sink t sink = locked t (fun () -> t.sinks <- sink :: t.sinks)

let remove_sink t sink =
  locked t (fun () -> t.sinks <- List.filter (fun s -> s != sink) t.sinks)

let active t = t.sinks <> []

let emit t name fields =
  match t.sinks with
  | [] -> ()
  | _ ->
      (* Build and deliver under the lock: sinks see whole events and the
         JSONL lines of concurrent domains never interleave. *)
      locked t (fun () ->
          match t.sinks with
          | [] -> ()
          | sinks ->
              let event = Event.make ~at:(t.clock ()) ~name (fields ()) in
              List.iter (fun sink -> Sink.emit sink event) sinks)

let flush t = locked t (fun () -> List.iter Sink.flush t.sinks)

let enter_span t =
  locked t (fun () ->
      let d = t.depth in
      t.depth <- d + 1;
      d)

let leave_span t = locked t (fun () -> t.depth <- Stdlib.max 0 (t.depth - 1))

let depth t = t.depth

let sorted t table =
  locked t (fun () -> Hashtbl.fold (fun name m acc -> (name, m) :: acc) table [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t = sorted t t.counters

let gauges t = sorted t t.gauges

let histograms t = sorted t t.histograms

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.counters;
      Hashtbl.reset t.gauges;
      Hashtbl.reset t.histograms;
      t.depth <- 0)
