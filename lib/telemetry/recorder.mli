(** The flight recorder: per-domain, fixed-capacity binary trace rings.

    The JSONL event stream ({!Sink.jsonl}) allocates and serialises on
    every event — fine for run summaries, fatal for per-event tracing of
    the allocation-free simulator core.  The recorder is the hot-path
    alternative: a packed trace record is eight integer stores into a
    ring buffer owned by the writing domain, with no allocation, no
    locking and no formatting in steady state.  Rendering (summaries,
    Chrome/Perfetto export, diffs) happens offline, after {!drain}.

    {2 Record format}

    Every record carries a monotonic nanosecond timestamp, the writing
    domain's id, a kind ({!kind_begin}, {!kind_end}, {!kind_instant}), an
    interned name id, a span id and parent-span id (0 = none), and two
    free integer payload words.  Timestamps are strictly increasing per
    ring (the wall clock is clamped forward by at least 1 ns per record),
    so a drained trace sorts into a single causal order: within a domain,
    a parent span's begin always precedes its children.

    {2 Capacity and loss}

    Each domain writes into its own fixed ring of {!capacity} records
    (rounded up to a power of two).  When a ring wraps, the oldest
    records are overwritten and counted: {!drain} reports the loss and
    bumps the ["telemetry.trace.dropped_records"] counter, so a
    truncated trace is never silently read as complete.  Rings of
    finished domains are parked and reused by later domains (the
    experiment pool spawns fresh domains per sweep), bounding memory at
    one ring per {e concurrently} live domain.

    {2 Zero-cost when disabled}

    Every recording entry point first reads one atomic flag; when the
    recorder is disabled nothing else happens — no clock read, no ring
    allocation, no stores — so instrumented hot loops are bit-identical
    to uninstrumented ones.  {!detail} gates a second, denser tier
    (per-calendar-event instants in the spatial core) that is off even
    when recording, for workloads where the default tier's overhead
    budget is tight. *)

type t

type record = {
  ts : int;  (** monotonic nanoseconds (strictly increasing per ring) *)
  domain : int;  (** id of the domain that wrote the record *)
  kind : int;  (** {!kind_begin}, {!kind_end} or {!kind_instant} *)
  name : int;  (** interned name id, an index into {!dump} names *)
  span : int;  (** begin/end: the span's id; instant: enclosing span *)
  parent : int;  (** begin/end: parent span id; 0 = root *)
  a : int;  (** payload word *)
  b : int;  (** payload word *)
}

type dump = { records : record array; names : string array; dropped : int }
(** A drained trace: records in causal order (timestamp, then domain),
    the interned-name table, and how many records the rings overwrote. *)

val kind_begin : int
val kind_end : int
val kind_instant : int

val create : ?capacity:int -> ?clock:(unit -> int) -> unit -> t
(** [capacity] is records per domain ring, rounded up to a power of two
    (default 32768 ≈ 2 MiB per ring); [clock] returns nanoseconds and
    defaults to the wall clock — tests inject a deterministic one.
    @raise Invalid_argument when [capacity < 16]. *)

val default : t
(** The process-wide recorder every instrumented layer writes to. *)

val set_enabled : t -> bool -> unit

val enabled : t -> bool

val set_detail : t -> bool -> unit
(** Opt into the dense instrumentation tier (see module doc). *)

val detail : t -> bool
(** [true] only when both {!enabled} and detail are on. *)

val set_capacity : t -> int -> unit
(** Ring capacity for domains that have not recorded yet; existing rings
    keep theirs.  @raise Invalid_argument when below 16. *)

val capacity : t -> int

val intern : t -> string -> int
(** Stable id for [name] (same string, same id, across domains).  Takes
    a lock: intern once at module initialisation or setup, not per
    record. *)

val instant : t -> int -> int -> int -> unit
(** [instant t name a b] records a point event attributed to the
    current open span of the calling domain.  No-op when disabled. *)

val begin_span : t -> int -> int -> int -> int
(** [begin_span t name a b] opens a span: allocates a fresh span id,
    records a begin with the current span as parent, and pushes the id
    on the domain's open-span stack.  Returns the id, or 0 when the
    recorder is disabled (every 0 is ignored by {!end_span}). *)

val end_span : t -> int -> int -> unit
(** [end_span t name id] closes span [id]: pops it (and anything an
    exception unwound past) off the open-span stack and records an end.
    No-op when [id = 0].  Safe to call with recording since disabled —
    the stack is still repaired. *)

val current_span : t -> int
(** Innermost open span id of the calling domain; 0 at top level. *)

type stats = { rings : int; live : int; written : int; dropped : int }

val stats : t -> stats
(** Counts since the last resetting {!drain}: rings ever used, records
    currently held, records ever written, records overwritten. *)

val drain : ?registry:Registry.t -> ?reset:bool -> t -> dump
(** Merge every ring (including parked rings of finished domains) into
    one causally-ordered trace.  [reset] (default [true]) empties the
    rings.  The drain's dropped count is added to [registry]'s
    ["telemetry.trace.dropped_records"] counter (default registry:
    {!Registry.default}).  Call when the recorded workload is quiescent
    — concurrent writers race the snapshot harmlessly but may tear their
    newest record into or out of it. *)
