type t = {
  emit : Event.t -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

let null = { emit = (fun _ -> ()); flush = (fun () -> ()); close = (fun () -> ()) }

let memory () =
  let events = Queue.create () in
  let sink =
    {
      emit = (fun e -> Queue.add e events);
      flush = (fun () -> ());
      close = (fun () -> ());
    }
  in
  (sink, fun () -> List.of_seq (Queue.to_seq events))

let of_channel oc =
  {
    emit =
      (fun e ->
        output_string oc (Event.to_line e);
        output_char oc '\n');
    flush = (fun () -> Stdlib.flush oc);
    close = (fun () -> Stdlib.flush oc);
  }

let jsonl path =
  let oc = open_out path in
  let closed = ref false in
  {
    emit =
      (fun e ->
        if not !closed then begin
          output_string oc (Event.to_line e);
          output_char oc '\n'
        end);
    flush = (fun () -> if not !closed then Stdlib.flush oc);
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          close_out oc
        end);
  }

let emit t e = t.emit e

let flush t = t.flush ()

let close t = t.close ()
