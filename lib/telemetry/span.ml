(* Metrics/events go through [registry]; identity (span id, parent id)
   comes from the flight recorder so cross-domain traces can reconstruct
   the call tree.  When the recorder is disabled the id is 0 and nothing
   is recorded or interned. *)

let emit_span registry name dt depth rid parent fields =
  Registry.emit registry "span" (fun () ->
      ("name", Jsonx.String name)
      :: ("seconds", Jsonx.Float dt)
      :: ("depth", Jsonx.Int depth)
      :: (if rid = 0 then []
          else [ ("span", Jsonx.Int rid); ("parent", Jsonx.Int parent) ])
      @ (match fields with None -> [] | Some fields -> fields ()))

let with_span ?(registry = Registry.default) ?(recorder = Recorder.default)
    ?fields name f =
  let t0 = Registry.now registry in
  let own_depth = Registry.enter_span registry in
  let parent = Recorder.current_span recorder in
  let nid, rid =
    if Recorder.enabled recorder then
      let nid = Recorder.intern recorder name in
      (nid, Recorder.begin_span recorder nid 0 0)
    else (0, 0)
  in
  let finish () =
    Recorder.end_span recorder nid rid;
    let dt = Registry.now registry -. t0 in
    Registry.leave_span registry;
    Metric.observe (Registry.histogram registry (name ^ ".seconds")) dt;
    Metric.incr (Registry.counter registry (name ^ ".calls"));
    emit_span registry name dt own_depth rid parent fields
  in
  Fun.protect ~finally:finish f

type timer = {
  registry : Registry.t;
  recorder : Recorder.t;
  name : string;
  t0 : float;
  depth : int;
  nid : int;
  rid : int;
  parent : int;
}

let start ?(registry = Registry.default) ?(recorder = Recorder.default) name =
  let t0 = Registry.now registry in
  let depth = Registry.enter_span registry in
  let parent = Recorder.current_span recorder in
  let nid, rid =
    if Recorder.enabled recorder then
      let nid = Recorder.intern recorder name in
      (nid, Recorder.begin_span recorder nid 0 0)
    else (0, 0)
  in
  { registry; recorder; name; t0; depth; nid; rid; parent }

let id timer = timer.rid

let stop ?fields timer =
  Recorder.end_span timer.recorder timer.nid timer.rid;
  let dt = Registry.now timer.registry -. timer.t0 in
  Registry.leave_span timer.registry;
  Metric.observe (Registry.histogram timer.registry (timer.name ^ ".seconds")) dt;
  Metric.incr (Registry.counter timer.registry (timer.name ^ ".calls"));
  emit_span timer.registry timer.name dt timer.depth timer.rid timer.parent
    fields;
  dt
