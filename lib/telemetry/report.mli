(** ASCII rendering of a registry's metrics, via {!Prelude.Table}.

    Three sections — counters, gauges, histograms — each omitted when
    empty.  Histograms whose name ends in [".seconds"] (the span
    convention) render with time units.  When [recorder] is given and has
    recorded anything, a fourth section reports the flight recorder's
    ring/record/drop counts so a truncated trace is visible in the run
    summary. *)

val render : ?registry:Registry.t -> ?recorder:Recorder.t -> unit -> string
(** Newline-terminated multi-line report; [""] when the registry holds no
    metrics. *)
