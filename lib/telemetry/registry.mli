(** A namespace of metrics plus a list of event sinks.

    Instrumented code takes an optional registry argument defaulting to
    {!default}, so production call sites need no plumbing (the CLI attaches
    a JSONL sink to the default registry and every layer streams into it),
    while tests create private registries for isolation.

    With no sink attached — the common case — {!emit} returns without
    reading the clock or building the event, so instrumentation in hot
    loops costs a list-emptiness check.  Metric updates always happen:
    counters and Welford histograms are cheap enough to leave on.

    Registries are safe to share across domains: metric lookup, sink
    management, event emission and span nesting are mutex-protected (the
    experiment runner executes instrumented tasks on a Domain pool, all
    falling back to {!default}).  Metric {e updates} are intentionally
    unlocked — single-field stores that stay memory-safe under races, at
    worst dropping a count — and span depths recorded from concurrently
    running tasks reflect interleaved nesting. *)

type t

val create : ?label:string -> ?clock:(unit -> float) -> unit -> t
(** [clock] defaults to [Unix.gettimeofday]; tests inject a deterministic
    clock. *)

val default : t
(** The process-wide registry every instrumented layer falls back to. *)

val label : t -> string

val now : t -> float

val counter : t -> string -> Metric.counter
(** Get-or-create by name; the same name always returns the same cell. *)

val gauge : t -> string -> Metric.gauge

val histogram : t -> string -> Metric.histogram

val add_sink : t -> Sink.t -> unit

val remove_sink : t -> Sink.t -> unit
(** Physical-equality removal of a sink added with {!add_sink}. *)

val active : t -> bool
(** Whether any sink is attached — guard for expensive event payloads
    (e.g. per-iteration residual trajectories). *)

val emit : t -> string -> (unit -> (string * Jsonx.t) list) -> unit
(** [emit t name fields] builds and delivers an event to every sink; the
    [fields] thunk is not called when no sink is attached. *)

val flush : t -> unit

val enter_span : t -> int
(** Increment the span nesting depth, returning the entered span's own
    depth (0 = outermost).  Used by {!module:Span}. *)

val leave_span : t -> unit

val depth : t -> int

val counters : t -> (string * Metric.counter) list
(** Sorted by name; likewise {!gauges} and {!histograms}. *)

val gauges : t -> (string * Metric.gauge) list

val histograms : t -> (string * Metric.histogram) list

val reset : t -> unit
(** Drop all metrics and reset nesting; sinks stay attached. *)
