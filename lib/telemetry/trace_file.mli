(** Binary on-disk format for drained traces.

    A trace file is the byte-exact image of a {!Recorder.dump}: an 8-byte
    magic ["MACTRC01"], three little-endian u64s (name count, record
    count, dropped count), the name table (u64 length + bytes each), then
    the records as eight little-endian u64s apiece in {!Recorder.record}
    field order.  Everything is fixed-width so the reader validates
    length arithmetic exactly; short, oversized or out-of-range files
    raise {!Corrupt} instead of yielding a plausible-looking trace. *)

exception Corrupt of string

val magic : string

val write : string -> Recorder.dump -> unit
(** [write path dump] replaces [path] with the serialised trace. *)

val read : string -> Recorder.dump
(** @raise Corrupt when the file is not a well-formed trace (bad magic,
    truncated, trailing bytes, or a record naming an out-of-range name
    id).  I/O errors propagate as [Sys_error]. *)
