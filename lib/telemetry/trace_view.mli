(** Offline views over a drained trace: per-span summaries, Chrome
    trace-event export, and trace-to-trace regression diffs.

    Everything here works on a {!Recorder.dump} (in memory or read back
    via {!Trace_file}); nothing touches the hot path. *)

type span_stat = {
  name : string;
  count : int;  (** closed spans with this name *)
  total_s : float;  (** wall seconds inside the span, children included *)
  self_s : float;  (** total minus time attributed to child spans *)
}

type summary = {
  spans : span_stat list;  (** sorted by self time, descending *)
  instants : (string * int) list;  (** instant name → count, descending *)
  records : int;
  dropped : int;
  orphan_ends : int;  (** ends whose begin was overwritten by a wrap *)
  unclosed : int;  (** begins with no end in the trace *)
  wall_s : float;  (** last timestamp minus first *)
  domains : int;  (** distinct writing domains *)
}

val summarize : Recorder.dump -> summary

val render_summary : ?top:int -> Format.formatter -> summary -> unit
(** Top-[top] (default 15) span names by self time, instant counts, and
    the loss/coverage footer (records, dropped, orphans, unclosed). *)

val to_chrome : Recorder.dump -> Jsonx.t
(** Chrome trace-event JSON (the [traceEvents] array form) loadable in
    Perfetto or [chrome://tracing]: spans become ["B"]/["E"] pairs,
    instants thread-scoped ["i"] events; timestamps are microseconds
    relative to the first record; [tid] is the writing domain. *)

type delta = {
  span : string;
  a_s : float;  (** total seconds in the first trace (0 if absent) *)
  b_s : float;  (** total seconds in the second trace (0 if absent) *)
  ratio : float;  (** (b - a) / a; +inf when the span is new *)
  flagged : bool;
}

val diff :
  ?threshold:float -> ?min_seconds:float -> Recorder.dump -> Recorder.dump -> delta list
(** Per-span-name total-time comparison, sorted by |ratio| descending.
    A delta is flagged when |ratio| exceeds [threshold] (default 0.25)
    and the larger side is at least [min_seconds] (default 1e-4) — the
    floor keeps nanosecond-scale spans from tripping the gate on noise. *)

val render_diff : Format.formatter -> delta list -> unit

val flagged : delta list -> int
(** How many deltas are flagged (the CLI's exit code hinges on this). *)
