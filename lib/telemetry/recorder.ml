type record = {
  ts : int;
  domain : int;
  kind : int;
  name : int;
  span : int;
  parent : int;
  a : int;
  b : int;
}

type dump = { records : record array; names : string array; dropped : int }

let kind_begin = 0
let kind_end = 1
let kind_instant = 2

(* Records are [stride] consecutive ints in the ring's flat buffer, in
   the field order of {!record}. *)
let stride = 8

(* Open-span stack depth per domain; instrumented nesting is a handful
   deep, so overflow (silently not pushed) is a non-event. *)
let max_open = 512

type ring = {
  uid : int;  (** drain tie-break: unique even when domains reuse rings *)
  buf : int array;
  cap : int;  (** records; a power of two *)
  mutable domain : int;
  mutable head : int;  (** records written since the last reset *)
  mutable last_ts : int;
  stack : int array;
  mutable sp : int;
}

type shared = {
  lock : Mutex.t;
      (* Guards ring/parked lists, the name table and capacity; never
         taken on the record path. *)
  clock : unit -> int;
  enabled : bool Atomic.t;
  detail_on : bool Atomic.t;
  next_span : int Atomic.t;
  next_uid : int Atomic.t;
  mutable ring_capacity : int;
  mutable rings : ring list;
  mutable parked : ring list;
  names : (string, int) Hashtbl.t;
  mutable names_rev : string list;
  mutable n_names : int;
}

type t = { s : shared; key : ring Domain.DLS.key }

let default_capacity = 1 lsl 15

let rec pow2 k n = if k >= n then k else pow2 (k * 2) n

let default_clock () = int_of_float (Unix.gettimeofday () *. 1e9)

let fresh_ring s =
  {
    uid = Atomic.fetch_and_add s.next_uid 1;
    buf = Array.make (s.ring_capacity * stride) 0;
    cap = s.ring_capacity;
    domain = 0;
    head = 0;
    last_ts = 0;
    stack = Array.make max_open 0;
    sp = 0;
  }

(* First record on a domain: adopt a parked ring of the right capacity,
   or allocate a fresh one.  Parking on domain exit keeps the ring's
   records drainable and bounds memory at one ring per concurrently
   live domain, however many short-lived pool workers come and go. *)
let obtain s =
  let me = (Domain.self () :> int) in
  Mutex.lock s.lock;
  let rec take acc = function
    | [] -> None
    | r :: rest when r.cap = s.ring_capacity ->
        s.parked <- List.rev_append acc rest;
        Some r
    | r :: rest -> take (r :: acc) rest
  in
  let r =
    match take [] s.parked with
    | Some r ->
        r.sp <- 0;
        r
    | None ->
        let r = fresh_ring s in
        s.rings <- r :: s.rings;
        r
  in
  r.domain <- me;
  Mutex.unlock s.lock;
  Domain.at_exit (fun () ->
      Mutex.lock s.lock;
      s.parked <- r :: s.parked;
      Mutex.unlock s.lock);
  r

let create ?(capacity = default_capacity) ?(clock = default_clock) () =
  if capacity < 16 then invalid_arg "Recorder.create: capacity < 16";
  let s =
    {
      lock = Mutex.create ();
      clock;
      enabled = Atomic.make false;
      detail_on = Atomic.make false;
      next_span = Atomic.make 1;
      next_uid = Atomic.make 0;
      ring_capacity = pow2 16 capacity;
      rings = [];
      parked = [];
      names = Hashtbl.create 64;
      names_rev = [];
      n_names = 0;
    }
  in
  { s; key = Domain.DLS.new_key (fun () -> obtain s) }

let default = create ()

let set_enabled t v = Atomic.set t.s.enabled v
let enabled t = Atomic.get t.s.enabled
let set_detail t v = Atomic.set t.s.detail_on v
let detail t = Atomic.get t.s.detail_on && Atomic.get t.s.enabled

let set_capacity t c =
  if c < 16 then invalid_arg "Recorder.set_capacity: capacity < 16";
  Mutex.lock t.s.lock;
  t.s.ring_capacity <- pow2 16 c;
  Mutex.unlock t.s.lock

let capacity t = t.s.ring_capacity

let intern t name =
  let s = t.s in
  Mutex.lock s.lock;
  let id =
    match Hashtbl.find_opt s.names name with
    | Some id -> id
    | None ->
        let id = s.n_names in
        Hashtbl.add s.names name id;
        s.names_rev <- name :: s.names_rev;
        s.n_names <- id + 1;
        id
  in
  Mutex.unlock s.lock;
  id

(* The hot path: one clock read (clamped strictly forward so per-ring
   order is total), eight stores, one head bump.  No allocation. *)
let write s r kind name span parent a b =
  let c = s.clock () in
  let ts = if c <= r.last_ts then r.last_ts + 1 else c in
  r.last_ts <- ts;
  let i = (r.head land (r.cap - 1)) * stride in
  let buf = r.buf in
  buf.(i) <- ts;
  buf.(i + 1) <- r.domain;
  buf.(i + 2) <- kind;
  buf.(i + 3) <- name;
  buf.(i + 4) <- span;
  buf.(i + 5) <- parent;
  buf.(i + 6) <- a;
  buf.(i + 7) <- b;
  r.head <- r.head + 1

let instant t name a b =
  if Atomic.get t.s.enabled then begin
    let r = Domain.DLS.get t.key in
    let span = if r.sp > 0 then r.stack.(r.sp - 1) else 0 in
    write t.s r kind_instant name span 0 a b
  end

let begin_span t name a b =
  if not (Atomic.get t.s.enabled) then 0
  else begin
    let r = Domain.DLS.get t.key in
    let parent = if r.sp > 0 then r.stack.(r.sp - 1) else 0 in
    let id = Atomic.fetch_and_add t.s.next_span 1 in
    if r.sp < max_open then begin
      r.stack.(r.sp) <- id;
      r.sp <- r.sp + 1
    end;
    write t.s r kind_begin name id parent a b;
    id
  end

let end_span t name id =
  if id <> 0 then begin
    let r = Domain.DLS.get t.key in
    (* Normally [id] is on top; an exception that unwound nested spans
       whose end_span never ran leaves them above — pop those too. *)
    let rec find i = if i < 0 then -1 else if r.stack.(i) = id then i else find (i - 1) in
    let at = find (r.sp - 1) in
    if at >= 0 then r.sp <- at;
    let parent = if r.sp > 0 then r.stack.(r.sp - 1) else 0 in
    if Atomic.get t.s.enabled then write t.s r kind_end name id parent 0 0
  end

let current_span t =
  if not (Atomic.get t.s.enabled) then 0
  else
    let r = Domain.DLS.get t.key in
    if r.sp > 0 then r.stack.(r.sp - 1) else 0

type stats = { rings : int; live : int; written : int; dropped : int }

let stats t =
  Mutex.lock t.s.lock;
  let st =
    List.fold_left
      (fun acc r ->
        {
          rings = acc.rings + 1;
          live = acc.live + Stdlib.min r.head r.cap;
          written = acc.written + r.head;
          dropped = acc.dropped + Stdlib.max 0 (r.head - r.cap);
        })
      { rings = 0; live = 0; written = 0; dropped = 0 }
      t.s.rings
  in
  Mutex.unlock t.s.lock;
  st

let drain ?(registry = Registry.default) ?(reset = true) t =
  let s = t.s in
  Mutex.lock s.lock;
  let rings = s.rings in
  let total =
    List.fold_left (fun acc r -> acc + Stdlib.min r.head r.cap) 0 rings
  in
  let dropped =
    List.fold_left (fun acc r -> acc + Stdlib.max 0 (r.head - r.cap)) 0 rings
  in
  let nothing =
    { ts = 0; domain = 0; kind = 0; name = 0; span = 0; parent = 0; a = 0; b = 0 }
  in
  let out = Array.make (Stdlib.max 1 total) nothing in
  (* Ring uid per merged record, for a total sort order: timestamps are
     strictly increasing within a ring but can collide across rings. *)
  let uids = Array.make (Stdlib.max 1 total) 0 in
  let pos = ref 0 in
  List.iter
    (fun r ->
      let live = Stdlib.min r.head r.cap in
      for k = r.head - live to r.head - 1 do
        let i = (k land (r.cap - 1)) * stride in
        let buf = r.buf in
        out.(!pos) <-
          {
            ts = buf.(i);
            domain = buf.(i + 1);
            kind = buf.(i + 2);
            name = buf.(i + 3);
            span = buf.(i + 4);
            parent = buf.(i + 5);
            a = buf.(i + 6);
            b = buf.(i + 7);
          };
        uids.(!pos) <- r.uid;
        incr pos
      done;
      if reset then r.head <- 0)
    rings;
  let names = Array.of_list (List.rev s.names_rev) in
  Mutex.unlock s.lock;
  let order = Array.init total Fun.id in
  Array.sort
    (fun x y ->
      let c = compare out.(x).ts out.(y).ts in
      if c <> 0 then c else compare uids.(x) uids.(y))
    order;
  let records = Array.map (fun i -> out.(i)) (Array.sub order 0 total) in
  if dropped > 0 then
    Metric.add
      (Registry.counter registry "telemetry.trace.dropped_records")
      dropped;
  { records; names; dropped }
