type span_stat = {
  name : string;
  count : int;
  total_s : float;
  self_s : float;
}

type summary = {
  spans : span_stat list;
  instants : (string * int) list;
  records : int;
  dropped : int;
  orphan_ends : int;
  unclosed : int;
  wall_s : float;
  domains : int;
}

type open_span = {
  o_name : int;
  o_ts : int;
  o_parent : int;
  mutable o_child : int;  (* ns attributed to already-closed children *)
}

let summarize (d : Recorder.dump) =
  let n_names = Array.length d.names in
  let count = Array.make n_names 0 in
  let total = Array.make n_names 0 in
  let self = Array.make n_names 0 in
  let inst = Array.make n_names 0 in
  let live = Hashtbl.create 64 in
  let domains = Hashtbl.create 8 in
  let orphan_ends = ref 0 in
  Array.iter
    (fun (r : Recorder.record) ->
      Hashtbl.replace domains r.domain ();
      if r.kind = Recorder.kind_begin then
        Hashtbl.replace live r.span
          { o_name = r.name; o_ts = r.ts; o_parent = r.parent; o_child = 0 }
      else if r.kind = Recorder.kind_end then begin
        match Hashtbl.find_opt live r.span with
        | None -> incr orphan_ends
        | Some o ->
            Hashtbl.remove live r.span;
            let dur = r.ts - o.o_ts in
            count.(o.o_name) <- count.(o.o_name) + 1;
            total.(o.o_name) <- total.(o.o_name) + dur;
            self.(o.o_name) <- self.(o.o_name) + Stdlib.max 0 (dur - o.o_child);
            (match Hashtbl.find_opt live o.o_parent with
            | Some p -> p.o_child <- p.o_child + dur
            | None -> ())
      end
      else inst.(r.name) <- inst.(r.name) + 1)
    d.records;
  let spans =
    List.init n_names Fun.id
    |> List.filter (fun i -> count.(i) > 0)
    |> List.map (fun i ->
           {
             name = d.names.(i);
             count = count.(i);
             total_s = float_of_int total.(i) *. 1e-9;
             self_s = float_of_int self.(i) *. 1e-9;
           })
    |> List.sort (fun x y -> compare y.self_s x.self_s)
  in
  let instants =
    List.init n_names Fun.id
    |> List.filter (fun i -> inst.(i) > 0)
    |> List.map (fun i -> (d.names.(i), inst.(i)))
    |> List.sort (fun (_, x) (_, y) -> compare y x)
  in
  let n = Array.length d.records in
  let wall_s =
    if n < 2 then 0.
    else float_of_int (d.records.(n - 1).ts - d.records.(0).ts) *. 1e-9
  in
  {
    spans;
    instants;
    records = n;
    dropped = d.dropped;
    orphan_ends = !orphan_ends;
    unclosed = Hashtbl.length live;
    wall_s;
    domains = Hashtbl.length domains;
  }

let fmt_s ppf s =
  if s >= 1. then Format.fprintf ppf "%.3f s" s
  else if s >= 1e-3 then Format.fprintf ppf "%.3f ms" (s *. 1e3)
  else if s >= 1e-6 then Format.fprintf ppf "%.3f us" (s *. 1e6)
  else Format.fprintf ppf "%.0f ns" (s *. 1e9)

let render_summary ?(top = 15) ppf s =
  Format.fprintf ppf "trace: %d records over %a on %d domain%s@."
    s.records fmt_s s.wall_s s.domains
    (if s.domains = 1 then "" else "s");
  if s.spans <> [] then begin
    Format.fprintf ppf "@.%-32s %8s %12s %12s@." "span (by self time)" "count"
      "self" "total";
    let shown = ref 0 in
    List.iter
      (fun st ->
        if !shown < top then begin
          incr shown;
          Format.fprintf ppf "%-32s %8d %12s %12s@." st.name st.count
            (Format.asprintf "%a" fmt_s st.self_s)
            (Format.asprintf "%a" fmt_s st.total_s)
        end)
      s.spans;
    let rest = List.length s.spans - !shown in
    if rest > 0 then Format.fprintf ppf "  ... and %d more span name%s@." rest
        (if rest = 1 then "" else "s")
  end;
  if s.instants <> [] then begin
    Format.fprintf ppf "@.%-32s %8s@." "instant" "count";
    let shown = ref 0 in
    List.iter
      (fun (name, n) ->
        if !shown < top then begin
          incr shown;
          Format.fprintf ppf "%-32s %8d@." name n
        end)
      s.instants;
    let rest = List.length s.instants - !shown in
    if rest > 0 then Format.fprintf ppf "  ... and %d more instant name%s@."
        rest (if rest = 1 then "" else "s")
  end;
  if s.dropped > 0 then
    Format.fprintf ppf
      "@.WARNING: %d records dropped to ring wrap — totals are lower bounds@."
      s.dropped;
  if s.orphan_ends > 0 || s.unclosed > 0 then
    Format.fprintf ppf "note: %d orphan end%s, %d unclosed span%s@."
      s.orphan_ends
      (if s.orphan_ends = 1 then "" else "s")
      s.unclosed
      (if s.unclosed = 1 then "" else "s")

let to_chrome (d : Recorder.dump) =
  let t0 = if Array.length d.records = 0 then 0 else d.records.(0).ts in
  let us ts = float_of_int (ts - t0) /. 1e3 in
  let events =
    Array.to_list d.records
    |> List.map (fun (r : Recorder.record) ->
           let common =
             [
               ("name", Jsonx.String d.names.(r.name));
               ("ts", Jsonx.Float (us r.ts));
               ("pid", Jsonx.Int 0);
               ("tid", Jsonx.Int r.domain);
             ]
           in
           if r.kind = Recorder.kind_begin then
             Jsonx.Obj
               (("ph", Jsonx.String "B") :: common
               @ [
                   ( "args",
                     Jsonx.Obj
                       [
                         ("span", Jsonx.Int r.span);
                         ("parent", Jsonx.Int r.parent);
                         ("a", Jsonx.Int r.a);
                         ("b", Jsonx.Int r.b);
                       ] );
                 ])
           else if r.kind = Recorder.kind_end then
             Jsonx.Obj (("ph", Jsonx.String "E") :: common)
           else
             Jsonx.Obj
               (("ph", Jsonx.String "i") :: ("s", Jsonx.String "t") :: common
               @ [
                   ( "args",
                     Jsonx.Obj [ ("a", Jsonx.Int r.a); ("b", Jsonx.Int r.b) ] );
                 ]))
  in
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.List events);
      ("displayTimeUnit", Jsonx.String "ms");
      ("otherData", Jsonx.Obj [ ("dropped_records", Jsonx.Int d.dropped) ]);
    ]

type delta = {
  span : string;
  a_s : float;
  b_s : float;
  ratio : float;
  flagged : bool;
}

let diff ?(threshold = 0.25) ?(min_seconds = 1e-4) da db =
  let sa = summarize da and sb = summarize db in
  let tbl = Hashtbl.create 32 in
  List.iter (fun st -> Hashtbl.replace tbl st.name (st.total_s, 0.)) sa.spans;
  List.iter
    (fun st ->
      match Hashtbl.find_opt tbl st.name with
      | Some (a, _) -> Hashtbl.replace tbl st.name (a, st.total_s)
      | None -> Hashtbl.replace tbl st.name (0., st.total_s))
    sb.spans;
  Hashtbl.fold
    (fun span (a_s, b_s) acc ->
      let ratio = if a_s > 0. then (b_s -. a_s) /. a_s else Float.infinity in
      let flagged =
        Float.abs ratio > threshold && Stdlib.max a_s b_s >= min_seconds
      in
      { span; a_s; b_s; ratio; flagged } :: acc)
    tbl []
  |> List.sort (fun x y ->
         match compare y.flagged x.flagged with
         | 0 -> compare (Float.abs y.ratio) (Float.abs x.ratio)
         | c -> c)

let render_diff ppf deltas =
  Format.fprintf ppf "%-32s %12s %12s %10s@." "span" "trace A" "trace B"
    "delta";
  List.iter
    (fun d ->
      Format.fprintf ppf "%-32s %12s %12s %9.1f%%%s@." d.span
        (Format.asprintf "%a" fmt_s d.a_s)
        (Format.asprintf "%a" fmt_s d.b_s)
        (if Float.is_finite d.ratio then d.ratio *. 100. else Float.infinity)
        (if d.flagged then "  << FLAGGED" else ""))
    deltas;
  let n = List.length (List.filter (fun d -> d.flagged) deltas) in
  if n > 0 then
    Format.fprintf ppf "@.%d span%s exceeded the regression threshold@." n
      (if n = 1 then "" else "s")
  else Format.fprintf ppf "@.no span exceeded the regression threshold@."

let flagged deltas = List.length (List.filter (fun d -> d.flagged) deltas)
