(** Timed regions.

    A span measures one dynamic extent on the registry clock.  Every
    completed span feeds the histogram ["<name>.seconds"] and the counter
    ["<name>.calls"], and — when a sink is attached — emits a ["span"]
    event with the span's nesting depth (0 = outermost), so a JSONL trace
    reconstructs the call tree of instrumented regions.

    Spans also carry {e identity}: when the flight recorder is enabled,
    entering a span records a begin/end pair with a process-unique span id
    and the id of the enclosing span as parent (see {!module:Recorder}),
    and the JSONL ["span"] event gains [span]/[parent] fields.  With the
    recorder disabled the extra cost is one atomic load. *)

val with_span :
  ?registry:Registry.t ->
  ?recorder:Recorder.t ->
  ?fields:(unit -> (string * Jsonx.t) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] times [f ()]; the span completes (metrics, event,
    recorder end-record, depth and open-span stack restored) even when
    [f] raises.  [fields] adds extra payload to the event and is only
    evaluated when a sink is attached. *)

type timer
(** A manually finished span, for regions that do not nest as a single
    [fun] body. *)

val start : ?registry:Registry.t -> ?recorder:Recorder.t -> string -> timer

val id : timer -> int
(** The timer's recorder span id; 0 when the recorder is disabled. *)

val stop : ?fields:(unit -> (string * Jsonx.t) list) -> timer -> float
(** Completes the span and returns the elapsed seconds.  Each [start]
    must be matched by exactly one [stop], innermost first. *)
