type t = { at : float; name : string; fields : (string * Jsonx.t) list }

let make ~at ~name fields = { at; name; fields }

let to_json { at; name; fields } =
  Jsonx.Obj (("event", Jsonx.String name) :: ("at", Jsonx.Float at) :: fields)

let to_line event = Jsonx.to_string (to_json event)

let of_json json =
  match (Jsonx.member "event" json, Jsonx.member "at" json) with
  | Some (Jsonx.String name), Some at_json -> (
      match Jsonx.to_float_opt at_json with
      | Some at ->
          let fields =
            match json with
            | Jsonx.Obj kvs ->
                List.filter (fun (k, _) -> k <> "event" && k <> "at") kvs
            | _ -> []
          in
          Some { at; name; fields }
      | None -> None)
  | _ -> None

let field key event = List.assoc_opt key event.fields
