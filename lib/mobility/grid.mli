(** Uniform-grid spatial index over node positions.

    Buckets node ids into square cells of a fixed size so that range
    queries (carrier sense, interference neighbourhoods) touch O(local
    density) candidates instead of all n nodes.  Membership is explicit:
    ids are [add]ed, [remove]d and [move]d individually, so the same
    structure serves both a static node index (filled once) and a sparse
    airborne-transmitter set (members come and go per frame).

    Queries return a {e superset} of the requested disk — the cells
    overlapping the padded bounding square — and callers apply the exact
    {!Geom.within} predicate.  {!query} does that filtering itself and is
    the reference for the property tests; {!iter_candidates} leaves it to
    the caller's hot loop.

    The structure is not thread-safe; shard it (one grid per domain)
    rather than sharing it. *)

type t

val create : ?fill:bool -> cell:float -> Geom.point array -> t
(** [create ~cell points] indexes [points] into cells of side [cell];
    point [i] keeps id [i].  [fill] (default true) inserts every id;
    [~fill:false] builds an empty index over the same coordinates (the
    airborne set).  Cell count is derived from the coordinate extent.

    @raise Invalid_argument on a non-positive [cell] or negative
    coordinates (the grid origin is pinned at (0,0)). *)

val length : t -> int
(** Number of ids (present or not). *)

val cell_size : t -> float

val position : t -> int -> Geom.point
(** Current coordinates of id [i] (tracked even while absent). *)

val add : t -> int -> unit
(** Insert id [i] at its current coordinates; no-op when present. *)

val remove : t -> int -> unit
(** Delete id [i] (swap-remove within its bucket); no-op when absent. *)

val mem : t -> int -> bool

val move : t -> int -> Geom.point -> unit
(** Update id [i]'s coordinates, re-bucketing only when the cell actually
    changes — the incremental path for waypoint walkers, counted by
    {!rebuckets}.  An absent id just has its coordinates updated.

    @raise Invalid_argument on negative coordinates. *)

val iter_candidates : t -> radius:float -> float -> float -> (int -> unit) -> unit
(** [iter_candidates t ~radius x y f] applies [f] to every {e present} id
    in the cells overlapping the padded square of half-width [radius]
    around [(x, y)] — a superset of the ids within [radius]; the caller
    filters exactly.  Ids offered (pre-filter) accumulate into
    {!candidates}.

    @raise Invalid_argument on a negative radius. *)

val query : t -> radius:float -> int -> int list
(** Present ids within exactly [radius] ({!Geom.within}) of id [i],
    excluding [i] itself, in increasing order — matches the neighbour
    lists of {!Topology.adjacency} when the grid holds every id. *)

val candidates : t -> int
(** Cumulative ids offered to query callbacks (pre-filter), the measure of
    how selective the cells are. *)

val rebuckets : t -> int
(** Cumulative cell crossings performed by {!move}. *)
