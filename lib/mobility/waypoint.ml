type config = {
  width : float;
  height : float;
  speed_min : float;
  speed_max : float;
}

type walker = {
  mutable pos : Geom.point;
  mutable goal : Geom.point;
  mutable speed : float;  (* m/s *)
  rng : Prelude.Rng.t;
}

type t = { cfg : config; walkers : walker array }

let validate cfg =
  if cfg.width <= 0. || cfg.height <= 0. then
    invalid_arg "Waypoint.create: area must be positive";
  if cfg.speed_min < 0. || cfg.speed_max < cfg.speed_min then
    invalid_arg "Waypoint.create: need 0 <= speed_min <= speed_max"

let fresh_leg cfg walker =
  walker.goal <- Geom.random_in walker.rng ~width:cfg.width ~height:cfg.height;
  walker.speed <- Prelude.Rng.float_in walker.rng cfg.speed_min cfg.speed_max

let create ?(seed = 0) cfg ~n =
  validate cfg;
  if n < 1 then invalid_arg "Waypoint.create: need n >= 1";
  let master = Prelude.Rng.create seed in
  (* Each walker draws from its own stream (split in index order), so a
     trajectory depends only on the walker's stream and total elapsed time —
     never on how other walkers' leg redraws interleave with its own.  This
     is what makes [step ~dt] granularity-invariant. *)
  let walkers =
    Array.init n (fun _ ->
        let rng = Prelude.Rng.split master in
        let pos = Geom.random_in rng ~width:cfg.width ~height:cfg.height in
        let walker = { pos; goal = pos; speed = 0.; rng } in
        fresh_leg cfg walker;
        walker)
  in
  { cfg; walkers }

let positions t = Array.map (fun w -> w.pos) t.walkers

let config t = t.cfg

let step t ~dt =
  if dt <= 0. then invalid_arg "Waypoint.step: dt must be positive";
  let rec advance walker budget =
    if budget > 0. && walker.speed > 0. then begin
      let reach = Geom.distance walker.pos walker.goal in
      let travel = walker.speed *. budget in
      if travel >= reach then begin
        walker.pos <- walker.goal;
        let spent = if walker.speed > 0. then reach /. walker.speed else budget in
        fresh_leg t.cfg walker;
        advance walker (budget -. spent)
      end
      else
        walker.pos <-
          Geom.move_towards ~from:walker.pos ~goal:walker.goal ~dist:travel
    end
    else if walker.speed = 0. then begin
      (* Degenerate zero-speed leg: redraw and keep moving with the budget
         this step still has, so trajectories do not depend on the dt
         granularity.  If the redraw lands on zero speed again (possible
         only when speed_max = 0), give up the rest of the step rather
         than loop forever. *)
      fresh_leg t.cfg walker;
      if budget > 0. && walker.speed > 0. then advance walker budget
    end
  in
  Array.iter (fun w -> advance w dt) t.walkers
