(** The random waypoint mobility model used in Sec. VII.B.

    Each node picks a uniform destination in the area and a uniform speed
    in [speed_min, speed_max], walks there in a straight line, then
    immediately picks the next waypoint (zero pause time, as in the paper's
    scenario: 100 nodes, 1000 m × 1000 m, speeds in [0, 5] m/s).

    A node whose drawn speed is (near) zero keeps its position until the
    next waypoint draw — matching the well-known speed-decay caveat of the
    model, which the tests pin down. *)

type config = {
  width : float;
  height : float;
  speed_min : float;   (** m/s, ≥ 0 *)
  speed_max : float;   (** m/s, ≥ speed_min *)
}

type t

val create : ?seed:int -> config -> n:int -> t
(** [n] nodes at independent uniform positions, each already heading to its
    first waypoint. *)

val positions : t -> Geom.point array
(** Current positions (a fresh copy). *)

val step : t -> dt:float -> unit
(** Advance every node [dt > 0] seconds, re-drawing waypoints as they are
    reached (several per step if the step is long).

    Each node draws from its own RNG stream (split from the seed in index
    order), and a leg finished mid-step hands its leftover time budget to
    the next leg.  Together these make trajectories depend only on total
    elapsed time, not on how it is sliced: when speeds are strictly
    positive, [step ~dt] twice lands (up to float splicing error) where
    [step ~dt:(2. *. dt)] once does. *)

val config : t -> config
