type t = {
  cell : float;
  cols : int;
  rows : int;
  xs : float array;
  ys : float array;
  cell_idx : int array; (* current cell of each id, -1 when absent *)
  slot_idx : int array; (* position inside that cell's bucket *)
  buckets : int array array; (* members as a dense prefix of each row *)
  lens : int array;
  mutable candidates : int;
  mutable rebuckets : int;
}

let floor_div t v =
  let c = int_of_float (Float.floor (v /. t.cell)) in
  if c < 0 then 0 else c

let col_of t x = Stdlib.min (t.cols - 1) (floor_div t x)
let row_of t y = Stdlib.min (t.rows - 1) (floor_div t y)
let cell_of t i = (row_of t t.ys.(i) * t.cols) + col_of t t.xs.(i)

let bucket_push t b i =
  let len = t.lens.(b) in
  let bucket = t.buckets.(b) in
  let bucket =
    if len < Array.length bucket then bucket
    else begin
      let grown = Array.make (Stdlib.max 4 (2 * len)) 0 in
      Array.blit bucket 0 grown 0 len;
      t.buckets.(b) <- grown;
      grown
    end
  in
  bucket.(len) <- i;
  t.lens.(b) <- len + 1;
  t.cell_idx.(i) <- b;
  t.slot_idx.(i) <- len

let add t i =
  if t.cell_idx.(i) < 0 then bucket_push t (cell_of t i) i

let remove t i =
  let b = t.cell_idx.(i) in
  if b >= 0 then begin
    let last = t.lens.(b) - 1 in
    let s = t.slot_idx.(i) in
    let mover = t.buckets.(b).(last) in
    t.buckets.(b).(s) <- mover;
    t.slot_idx.(mover) <- s;
    t.lens.(b) <- last;
    t.cell_idx.(i) <- -1
  end

let mem t i = t.cell_idx.(i) >= 0

let create ?(fill = true) ~cell points =
  if cell <= 0. then invalid_arg "Grid.create: cell must be positive";
  let n = Array.length points in
  let maxx = ref 0. and maxy = ref 0. in
  Array.iter
    (fun (p : Geom.point) ->
      if p.x < 0. || p.y < 0. then
        invalid_arg "Grid.create: coordinates must be non-negative";
      if p.x > !maxx then maxx := p.x;
      if p.y > !maxy then maxy := p.y)
    points;
  let extent v = 1 + int_of_float (Float.floor (v /. cell)) in
  let cols = extent !maxx and rows = extent !maxy in
  let t =
    {
      cell;
      cols;
      rows;
      xs = Array.map (fun (p : Geom.point) -> p.x) points;
      ys = Array.map (fun (p : Geom.point) -> p.y) points;
      cell_idx = Array.make n (-1);
      slot_idx = Array.make n 0;
      buckets = Array.make (cols * rows) [||];
      lens = Array.make (cols * rows) 0;
      candidates = 0;
      rebuckets = 0;
    }
  in
  if fill then
    for i = 0 to n - 1 do
      add t i
    done;
  t

let length t = Array.length t.xs
let cell_size t = t.cell
let position t i = { Geom.x = t.xs.(i); y = t.ys.(i) }

let move t i (p : Geom.point) =
  if p.x < 0. || p.y < 0. then
    invalid_arg "Grid.move: coordinates must be non-negative";
  t.xs.(i) <- p.x;
  t.ys.(i) <- p.y;
  let old = t.cell_idx.(i) in
  if old >= 0 then begin
    let fresh = cell_of t i in
    if fresh <> old then begin
      remove t i;
      bucket_push t fresh i;
      t.rebuckets <- t.rebuckets + 1
    end
  end

(* The candidate box is the padded axis-aligned square of half-width
   [radius] around (x, y): a superset of the disk, so callers filter with
   an exact predicate.  The pad absorbs the rounding of [x -. radius]
   against a bucket boundary — a member at distance exactly [radius] can
   otherwise fall one cell outside a box computed in floats. *)
let iter_candidates t ~radius x y f =
  if radius < 0. then invalid_arg "Grid.iter_candidates: negative radius";
  let r = radius +. (t.cell *. 1e-9) in
  let c0 = col_of t (x -. r) and c1 = col_of t (x +. r) in
  let r0 = row_of t (y -. r) and r1 = row_of t (y +. r) in
  let offered = ref 0 in
  for row = r0 to r1 do
    let base = row * t.cols in
    for col = c0 to c1 do
      let b = base + col in
      let bucket = t.buckets.(b) in
      let len = t.lens.(b) in
      offered := !offered + len;
      for k = 0 to len - 1 do
        f bucket.(k)
      done
    done
  done;
  t.candidates <- t.candidates + !offered

let query t ~radius i =
  let p = position t i in
  let acc = ref [] in
  iter_candidates t ~radius p.x p.y (fun j ->
      if j <> i && Geom.within ~range:radius p (position t j) then
        acc := j :: !acc);
  List.sort_uniq compare !acc

let candidates t = t.candidates
let rebuckets t = t.rebuckets
