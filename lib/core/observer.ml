type kind =
  | Perfect
  | Noisy of { rng : Prelude.Rng.t; rel_stddev : float }
  | Sampling of { rng : Prelude.Rng.t; samples : int }

type t = { kind : kind; name : string }

let name t = t.name

let perfect = { kind = Perfect; name = "perfect" }

let noisy ~rng ~rel_stddev =
  if rel_stddev < 0. then invalid_arg "Observer.noisy: negative stddev";
  {
    kind = Noisy { rng; rel_stddev };
    name = Printf.sprintf "noisy(%g)" rel_stddev;
  }

let sampling ~rng ~samples_per_stage =
  if samples_per_stage < 1 then
    invalid_arg "Observer.sampling: need at least one sample per stage";
  {
    kind = Sampling { rng; samples = samples_per_stage };
    name = Printf.sprintf "sampling(%d)" samples_per_stage;
  }

let clamp_window w = if w < 1 then 1 else w

let observe t ~me cws =
  match t.kind with
  | Perfect -> Array.copy cws
  | Noisy { rng; rel_stddev } ->
      Array.mapi
        (fun j w ->
          if j = me then w
          else begin
            let noise =
              Prelude.Rng.normal rng ~mean:0. ~stddev:(rel_stddev *. float_of_int w)
            in
            clamp_window (int_of_float (Float.round (float_of_int w +. noise)))
          end)
        cws
  | Sampling { rng; samples } ->
      Array.mapi
        (fun j w ->
          if j = me then w
          else begin
            let total = ref 0 in
            for _ = 1 to samples do
              total := !total + Prelude.Rng.int rng w
            done;
            let mean = float_of_int !total /. float_of_int samples in
            clamp_window (int_of_float (Float.round ((2. *. mean) +. 1.)))
          end)
        cws

let estimate_error_stddev ~w ~samples =
  if w < 1 then invalid_arg "Observer.estimate_error_stddev: window >= 1";
  if samples < 1 then invalid_arg "Observer.estimate_error_stddev: samples >= 1";
  (* Backoff draws are uniform on {0..W−1}: variance (W²−1)/12; the estimator
     doubles the mean, so its stddev is 2·σ/√k. *)
  let wf = float_of_int w in
  2. *. sqrt (((wf *. wf) -. 1.) /. 12. /. float_of_int samples)

(* {2 Multi-knob estimators}

   Widening the strategy space to (CW, AIFS, TXOP, rate) widens what an
   observer must measure.  AIFS rides on the same idle-slot counting as
   the window estimator: the idle gap before a neighbour's transmission
   is aifs + b with b uniform on {0..W−1}, so subtracting the known
   backoff mean isolates the deviation.  TXOP needs no estimator at all —
   burst lengths are deterministic — only coverage: the observer must
   catch one burst of the cheating access pattern. *)

let aifs_estimate ~rng ~w ~aifs ~samples =
  if w < 1 then invalid_arg "Observer.aifs_estimate: window >= 1";
  if aifs < 0 then invalid_arg "Observer.aifs_estimate: aifs >= 0";
  if samples < 1 then invalid_arg "Observer.aifs_estimate: samples >= 1";
  let total = ref 0 in
  for _ = 1 to samples do
    total := !total + aifs + Prelude.Rng.int rng w
  done;
  (float_of_int !total /. float_of_int samples)
  -. (float_of_int (w - 1) /. 2.)

let aifs_estimate_stddev ~w ~samples =
  if w < 1 then invalid_arg "Observer.aifs_estimate_stddev: window >= 1";
  if samples < 1 then invalid_arg "Observer.aifs_estimate_stddev: samples >= 1";
  (* Only the backoff term is random: variance (W²−1)/12 per access, and
     the known mean is subtracted rather than doubled, so the error decays
     as σ_backoff/√k (half the window estimator's rate constant). *)
  let wf = float_of_int w in
  sqrt (((wf *. wf) -. 1.) /. 12. /. float_of_int samples)

let txop_longest_burst ~rng ~txop ~p_observe ~accesses =
  if txop < 1 then invalid_arg "Observer.txop_longest_burst: txop >= 1";
  if p_observe < 0. || p_observe > 1. then
    invalid_arg "Observer.txop_longest_burst: p_observe in [0, 1]";
  if accesses < 1 then invalid_arg "Observer.txop_longest_burst: accesses >= 1";
  let seen = ref 0 in
  for _ = 1 to accesses do
    if Prelude.Rng.float rng 1. < p_observe then seen := Stdlib.max !seen txop
  done;
  !seen
