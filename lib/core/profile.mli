(** Strategy profiles of the MAC game: one {!Dcf.Strategy_space.t} record
    per player.

    The paper's game (Definition 1) is CW-only; the profile generalizes
    W^k to the full (CW, AIFS, TXOP, rate) strategy space while keeping
    the CW-only view first-class: [of_cws]/[cws] convert to and from bare
    window arrays, and every degenerate profile behaves exactly as the
    pre-refactor [int array] profile did. *)

type t = Dcf.Strategy_space.t array

val uniform : n:int -> w:int -> t
(** All [n ≥ 1] players on the degenerate (CW-only) strategy with window
    [w ≥ 1]. *)

val uniform_strategy : n:int -> Dcf.Strategy_space.t -> t
(** All [n ≥ 1] players on the same multi-knob strategy. *)

val with_deviant : n:int -> w:int -> w_dev:int -> t
(** Player 0 on [w_dev], the other n−1 players on [w] — Lemma 4's
    configuration, degenerate strategies throughout. *)

val with_deviant_strategy : n:int -> w:int -> dev:Dcf.Strategy_space.t -> t
(** Player 0 on the multi-knob strategy [dev], the rest on the degenerate
    window [w]. *)

val of_cws : int array -> t
(** Lift a bare CW array to degenerate strategy records (the CW-only
    shorthand kept across the stack). *)

val cws : t -> int array
(** The CW view: each strategy's window, dropping the other knobs. *)

val is_uniform : t -> bool
(** Every player on the same strategy (all four knobs equal). *)

val is_degenerate : t -> bool
(** Every strategy CW-only ({!Dcf.Strategy_space.is_degenerate}). *)

val min_window : t -> int
(** Smallest window in the profile (the TFT attractor).
    @raise Invalid_argument on an empty profile. *)

val canonical : t -> t
(** Sorted copy under the strategy-space total order: the canonical
    multiset representative.  Permutations of a profile share it. *)

val key : t -> string
(** Deterministic rendering of {!canonical} (store/memo addressing). *)

val fingerprint : t -> int64
(** FNV-1a of {!key}: permutation-invariant by construction. *)

val validate : cw_max:int -> t -> (unit, string) result
(** Every strategy must pass {!Dcf.Strategy_space.validate} with the given
    window cap. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Compact rendering: degenerate uniform profiles as [n×W], other uniform
    profiles as [n×(cw=…,…)], the rest as a list. *)

val to_json : t -> Telemetry.Jsonx.t
(** List of per-player strategies; degenerate entries render as bare ints
    (the historical wire format). *)

val of_json : Telemetry.Jsonx.t -> (t, string) result
