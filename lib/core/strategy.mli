(** Player strategies for the repeated MAC game (Sec. IV).

    A strategy decides the window to play in stage k from the (possibly
    noisy) observations of every player's window in previous stages.  The
    observation vector passed to [decide] is what the player's CW observer
    reports (see {!module:Observer}), most recent stage first. *)

type decision_input = {
  stage : int;            (** index k ≥ 1 of the stage being decided *)
  me : int;               (** the deciding player's index *)
  my_window : int;        (** the window the player used in stage k−1 *)
  observed : int array list;
      (** per-stage observation vectors, most recent first; element [me]
          is the player's own (exact) window *)
}

type t = {
  name : string;
  initial : int;          (** window played in stage 0 *)
  decide : decision_input -> int;
}

val fixed : int -> t
(** Always play the given window — models naive conformers and the
    malicious player of Sec. V.E (with a small window). *)

val tft : initial:int -> t
(** TIT-FOR-TAT as defined in Sec. IV: in each stage play
    min_j W_j^{k−1}, the smallest window observed in the previous stage. *)

val gtft : initial:int -> r0:int -> beta:float -> t
(** Generous TFT: average each player's window over the last [r0 ≥ 1]
    stages; if some player l has W̄_l < β·W̄_me (β ∈ (0, 1], close to 1),
    punish by matching the smallest window of the last stage, otherwise keep
    the current window.  Larger [r0] or smaller [beta] is more tolerant. *)

val short_sighted : int -> t
(** A deviant that pins its window below the efficient NE to harvest
    short-term payoff (Sec. V.D).  Behaviourally identical to {!fixed};
    the distinct name keeps game traces readable. *)

val malicious : int -> t
(** A player that pins a (typically tiny) window to drag the whole network
    down (Sec. V.E).  Behaviourally identical to {!fixed}. *)

val grim_trigger : initial:int -> beta:float -> t
(** Grim trigger: play [initial] until any player's observed window falls
    below [beta]·initial (β ∈ (0, 1]), then punish *forever* by matching
    the smallest window ever observed.  Unlike TFT it never forgives, so a
    single noisy observation permanently collapses the profile — the
    contrast experiment for TFT/GTFT's tolerance.  The trigger state lives
    inside the strategy value: build a fresh one per game. *)

val best_response : Oracle.t -> initial:int -> t
(** Myopic best response: maximise the stage payoff against the last
    observed profile (everything else equal), each candidate evaluated
    through the oracle.  This is the short-sighted dynamics of [2]
    (Cagalj et al.); iterating it collapses the network — the contrast
    experiment to TFT. *)

val pp : Format.formatter -> t -> unit
