type t = { adjacency : int array array }

let create lists =
  let n = Array.length lists in
  let sets = Array.map (fun l -> List.sort_uniq compare l) lists in
  Array.iteri
    (fun i l ->
      if List.length l <> List.length lists.(i) then
        invalid_arg "Multihop.create: duplicate neighbour";
      List.iter
        (fun j ->
          if j < 0 || j >= n then
            invalid_arg "Multihop.create: neighbour out of range";
          if j = i then invalid_arg "Multihop.create: self-loop";
          if not (List.mem i sets.(j)) then
            invalid_arg "Multihop.create: adjacency not symmetric")
        l)
    sets;
  { adjacency = Array.map Array.of_list sets }

let size t = Array.length t.adjacency

let degrees t = Array.map Array.length t.adjacency

let neighbors t i = Array.to_list t.adjacency.(i)

(* Breadth-first distances from [source]; unreached nodes stay at -1. *)
let bfs t source =
  let n = size t in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      t.adjacency.(u)
  done;
  dist

let is_connected t =
  let n = size t in
  n = 0 || Array.for_all (fun d -> d >= 0) (bfs t 0)

let diameter t =
  let n = size t in
  if n = 0 then invalid_arg "Multihop.diameter: empty graph";
  if not (is_connected t) then invalid_arg "Multihop.diameter: disconnected";
  let widest = ref 0 in
  for i = 0 to n - 1 do
    Array.iter (fun d -> if d > !widest then widest := d) (bfs t i)
  done;
  !widest

let local_efficient_cw oracle t =
  (* No per-degree cache here: the oracle's (n, w) memo already makes the
     repeated ternary searches cheap. *)
  Array.map (fun deg -> Equilibrium.efficient_cw oracle ~n:(deg + 1)) (degrees t)

let converged_cw oracle t =
  let locals = local_efficient_cw oracle t in
  if Array.length locals = 0 then invalid_arg "Multihop.converged_cw: empty graph";
  Array.fold_left Stdlib.min locals.(0) locals

let tft_rounds t ~start =
  let n = size t in
  if Array.length start <> n then
    invalid_arg "Multihop.tft_rounds: wrong start length";
  let current = ref (Array.copy start) in
  let rec go rounds =
    let next =
      Array.mapi
        (fun i w ->
          Array.fold_left (fun acc j -> Stdlib.min acc !current.(j)) w
            t.adjacency.(i))
        !current
    in
    if next = !current then (rounds, !current)
    else begin
      current := next;
      go (rounds + 1)
    end
  in
  go 0

type game_outcome = {
  trace : (int array * float array) array;
  converged_at : int option;
  final : int array;
}

let local_tft_game ?(observer = Observer.perfect) t ~initials ~stages ~payoffs =
  let n = size t in
  if Array.length initials <> n then
    invalid_arg "Multihop.local_tft_game: wrong initials length";
  if stages < 1 then invalid_arg "Multihop.local_tft_game: need >= 1 stage";
  let trace = ref [] in
  let cws = ref (Array.copy initials) in
  for stage = 0 to stages - 1 do
    let played = Array.copy !cws in
    let utilities = payoffs played in
    if Array.length utilities <> n then
      invalid_arg "Multihop.local_tft_game: payoff backend arity";
    trace := (played, utilities) :: !trace;
    if stage < stages - 1 then
      cws :=
        Array.init n (fun i ->
            (* Each node observes only its closed neighbourhood. *)
            let seen = Observer.observe observer ~me:i played in
            Array.fold_left
              (fun acc j -> Stdlib.min acc seen.(j))
              seen.(i) t.adjacency.(i))
  done;
  let trace = Array.of_list (List.rev !trace) in
  let final = fst trace.(Array.length trace - 1) in
  let converged_at =
    let len = Array.length trace in
    if len < 2 || fst trace.(len - 1) <> fst trace.(len - 2) then None
    else begin
      let rec back i =
        if i = 0 then 0 else if fst trace.(i - 1) = final then back (i - 1) else i
      in
      Some (back (len - 1))
    end
  in
  { trace; converged_at; final }

let payoffs_at oracle t ~w =
  Array.map
    (fun deg -> Oracle.payoff_uniform oracle ~n:(deg + 1) ~w)
    (degrees t)

type quasi_optimality = {
  w_m : int;
  global_at_ne : float;
  global_opt : float;
  w_global_opt : int;
  global_ratio : float;
  local_ratios : float array;
  min_local_ratio : float;
}

let quasi_optimality oracle t =
  let locals = local_efficient_cw oracle t in
  let w_m = Array.fold_left Stdlib.min locals.(0) locals in
  let global w = Prelude.Util.sum_floats (payoffs_at oracle t ~w) in
  (* Individual payoffs are unimodal with peaks at the per-degree optima;
     the welfare sum peaks between the smallest and largest of them.
     Scan that (small) range exhaustively. *)
  let w_hi = Array.fold_left Stdlib.max locals.(0) locals in
  let w_global_opt, global_opt =
    Numerics.Optimize.exhaustive_int_max global (Stdlib.max 1 (w_m / 2))
      (Stdlib.min (Oracle.params oracle).cw_max (2 * w_hi))
  in
  let at_ne = payoffs_at oracle t ~w:w_m in
  let global_at_ne = Prelude.Util.sum_floats at_ne in
  let local_ratios =
    Array.mapi
      (fun i u_ne ->
        let u_best =
          Oracle.payoff_uniform oracle ~n:((degrees t).(i) + 1) ~w:locals.(i)
        in
        u_ne /. u_best)
      at_ne
  in
  {
    w_m;
    global_at_ne;
    global_opt;
    w_global_opt;
    global_ratio = global_at_ne /. global_opt;
    local_ratios;
    min_local_ratio = Array.fold_left Float.min local_ratios.(0) local_ratios;
  }
