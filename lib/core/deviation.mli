(** Short-sighted and malicious deviation analysis (Sec. V.D–V.E).

    A deviant s with personal discount factor δ_s plays W_s < W_c* while the
    other n−1 players take [react_stages] = m ≥ 1 stages to notice and
    punish via TFT.  Its total payoff is

    U_s = (1−δ_s^m)/(1−δ_s) · U_s^stage(W_c★,…,W_s,…,W_c★)
        + δ_s^m/(1−δ_s) · U_s^stage(W_s,…,W_s)

    compared with honest play U_s⁰ = U^stage(W_c★,…,W_c★)/(1−δ_s).  The
    module evaluates both, optimises W_s for a given δ_s, and finds the
    critical patience above which honesty wins — reconciling our result
    with [2]'s network-collapse finding, as Sec. VIII discusses.

    All stage payoffs are profile evaluations through the {!Oracle}; the
    bisections and exhaustive scans below revisit the same handful of
    profiles at every δ_s probe, so after the first sweep every evaluation
    is a memo hit. *)

type stage_payoffs = {
  deviant : float;    (** deviant's stage payoff during the free ride *)
  conformer : float;  (** a conformer's stage payoff during the free ride *)
  uniform_w : float;  (** everyone's stage payoff once all play W_s *)
  uniform_star : float;  (** everyone's stage payoff at (W_c★, …, W_c★) *)
}

val stage_payoffs : Oracle.t -> n:int -> w_star:int -> w_dev:int -> stage_payoffs
(** Stage payoffs U^s = u·T of the three relevant profiles. *)

val deviant_total :
  Oracle.t -> n:int -> w_star:int -> w_dev:int -> delta_s:float ->
  react_stages:int -> float
(** U_s above.  [delta_s ∈ [0, 1)], [react_stages ≥ 1]. *)

val honest_total :
  Oracle.t -> n:int -> w_star:int -> delta_s:float -> float
(** U_s⁰ = U^stage(W_c★)/(1−δ_s). *)

val best_deviation :
  Oracle.t -> n:int -> w_star:int -> delta_s:float -> react_stages:int ->
  int * float
(** The window W_s ∈ [1, W_c*] maximising {!deviant_total} and its value
    (exhaustive scan: with punishment the curve need not be unimodal). *)

val critical_discount :
  ?tol:float -> Oracle.t -> n:int -> w_star:int -> react_stages:int -> float
(** Smallest δ_s at which no *strict* deviation (W_s < W_c★) beats
    honesty: bisection on δ_s ↦ max_{W_s < W_c★} U_s − U_s⁰, which is
    decreasing in δ_s.  Returns 0 if honesty already wins at δ_s = 0 (or
    W_c★ = 1), and 1 if some deviation still pays at δ_s → 1. *)

val critical_discount_for :
  ?tol:float -> Oracle.t -> n:int -> w_star:int -> w_dev:int ->
  react_stages:int -> float
(** Smallest δ_s at which the *specific* deviation to [w_dev] stops paying.
    Because the payoff curve is nearly flat at the top (the robustness of
    Figures 2–3), deviating by a single window is almost free and
    {!critical_discount} can sit at 1; for a substantial deviation
    (say W_c★/2) this function shows the finite patience threshold that
    separates our regime from the network collapse of [2]. *)

(** {1 Coalitions}

    Theorem 2 establishes unilateral stability; these functions probe
    *coalition* deviations: k ≥ 1 colluders jointly undercut to W_s while
    the other n−k play W_c★ until TFT punishment kicks in after
    [react_stages].  The per-member accounting mirrors the single-deviant
    case, so the NE is coalition-proof for patient players exactly when
    {!coalition_gain} is non-positive for every k. *)

type coalition_stage = {
  member : float;    (** a colluder's stage payoff during the free ride *)
  outsider : float;  (** a conformer's stage payoff during the free ride *)
  punished : float;  (** everyone's stage payoff once TFT drags all to W_s *)
  honest : float;    (** everyone's stage payoff at (W_c★, …, W_c★) *)
}

val coalition_stage_payoffs :
  Oracle.t -> n:int -> w_star:int -> k:int -> w_dev:int -> coalition_stage
(** Stage payoffs of the three relevant profiles, via the multi-class
    solver.  Requires 1 ≤ k < n. *)

val coalition_member_total :
  Oracle.t -> n:int -> w_star:int -> k:int -> w_dev:int ->
  delta_s:float -> react_stages:int -> float
(** A colluder's discounted total, free ride then punishment. *)

val coalition_gain :
  Oracle.t -> n:int -> w_star:int -> k:int -> w_dev:int ->
  delta_s:float -> react_stages:int -> float
(** Per-member gain over honest play; the NE resists the coalition when
    this is ≤ 0 for the coalition's best W_s. *)

val malicious_welfare :
  Oracle.t -> n:int -> w_mal:int -> float
(** Global payoff rate after TFT has dragged everyone to the malicious
    window [w_mal] (Sec. V.E): n·u(w_mal, …, w_mal).  Negative once
    [w_mal] falls below the break-even window — the network is paralysed. *)
