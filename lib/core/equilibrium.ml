let efficient_cw (oracle : Oracle.t) ~n =
  if n < 1 then invalid_arg "Equilibrium.efficient_cw: need n >= 1";
  if n = 1 then 1
  else begin
    let telemetry = Oracle.telemetry oracle in
    let candidates =
      Telemetry.Registry.counter telemetry "equilibrium.candidates"
    in
    let evaluate w =
      let u = Oracle.payoff_uniform oracle ~n ~w in
      Telemetry.Metric.incr candidates;
      Telemetry.Registry.emit telemetry "cw_candidate" (fun () ->
          [
            ("n", Telemetry.Jsonx.Int n);
            ("w", Telemetry.Jsonx.Int w);
            ("payoff", Telemetry.Jsonx.Float u);
          ]);
      u
    in
    let cw_max = (Oracle.params oracle).cw_max in
    let w_star = fst (Numerics.Optimize.ternary_int_max evaluate 1 cw_max) in
    Telemetry.Registry.emit telemetry "efficient_cw" (fun () ->
        [ ("n", Telemetry.Jsonx.Int n); ("w", Telemetry.Jsonx.Int w_star) ]);
    w_star
  end

let tau_star (params : Dcf.Params.t) ~n =
  if n < 1 then invalid_arg "Equilibrium.tau_star: need n >= 1";
  if n = 1 then 1.
  else begin
    let timing = Dcf.Timing.of_params params in
    let nf = float_of_int n in
    let q tau =
      let idle = (1. -. tau) ** nf in
      (idle *. params.sigma) +. ((1. -. idle -. (nf *. tau)) *. timing.tc)
    in
    Numerics.Roots.brent q 1e-12 (1. -. 1e-12)
  end

let cw_of_tau (oracle : Oracle.t) ~n target =
  if target <= 0. || target > 1. then
    invalid_arg "Equilibrium.cw_of_tau: target must be in (0, 1]";
  let tau_of w = fst (Oracle.tau_p oracle ~n ~w) in
  (* τ(W) is decreasing; find the smallest W with τ(W) ≤ target, then pick
     the closer of it and its left neighbour. *)
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if tau_of mid <= target then search lo mid else search (mid + 1) hi
    end
  in
  let w = search 1 (Oracle.params oracle).cw_max in
  if w = 1 then 1
  else begin
    let better_left =
      Float.abs (tau_of (w - 1) -. target) < Float.abs (tau_of w -. target)
    in
    if better_left then w - 1 else w
  end

let break_even_cw oracle ~n =
  if n < 1 then invalid_arg "Equilibrium.break_even_cw: need n >= 1";
  let w_star = efficient_cw oracle ~n in
  let u w = Oracle.payoff_uniform oracle ~n ~w in
  if u 1 > 0. then 1
  else begin
    (* u is increasing on [1, W_c*]; binary search for the sign change. *)
    let rec search lo hi =
      (* invariant: u lo ≤ 0 < u hi *)
      if hi - lo <= 1 then hi
      else begin
        let mid = (lo + hi) / 2 in
        if u mid > 0. then search lo mid else search mid hi
      end
    in
    search 1 w_star
  end

type ne_set = { w_lo : int; w_hi : int }

let ne_set oracle ~n =
  { w_lo = break_even_cw oracle ~n; w_hi = efficient_cw oracle ~n }

let is_ne oracle ~n ~w =
  let { w_lo; w_hi } = ne_set oracle ~n in
  w >= w_lo && w <= w_hi

let is_efficient oracle ~n ~w = w = efficient_cw oracle ~n

let social_welfare oracle ~n ~w = Oracle.welfare_uniform oracle ~n ~w

let robust_range oracle ~n ~fraction =
  if fraction <= 0. || fraction > 1. then
    invalid_arg "Equilibrium.robust_range: fraction must be in (0, 1]";
  let w_star = efficient_cw oracle ~n in
  let threshold = fraction *. Oracle.payoff_uniform oracle ~n ~w:w_star in
  let u w = Oracle.payoff_uniform oracle ~n ~w in
  let cw_max = (Oracle.params oracle).cw_max in
  (* Unimodality: u ≥ threshold on a contiguous range around W_c*. *)
  let rec lowest lo hi =
    (* invariant: u hi ≥ threshold, u lo < threshold (or lo = hi) *)
    if hi - lo <= 1 then hi
    else begin
      let mid = (lo + hi) / 2 in
      if u mid >= threshold then lowest lo mid else lowest mid hi
    end
  in
  let rec highest lo hi =
    (* invariant: u lo ≥ threshold, u hi < threshold (or lo = hi) *)
    if hi - lo <= 1 then lo
    else begin
      let mid = (lo + hi) / 2 in
      if u mid >= threshold then highest mid hi else highest lo mid
    end
  in
  let lo = if u 1 >= threshold then 1 else lowest 1 w_star in
  let hi = if u cw_max >= threshold then cw_max else highest w_star cw_max in
  (lo, hi)

let unilateral_gain oracle ~n ~w ~w_dev =
  if n < 2 then invalid_arg "Equilibrium.unilateral_gain: need n >= 2";
  if w = w_dev then 0.
  else begin
    let u = Oracle.payoffs_profile oracle (Profile.with_deviant ~n ~w ~w_dev) in
    u.(0) -. u.(1)
  end
