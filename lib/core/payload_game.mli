(** The payload-size game — the conclusion's "other selfish behaviors such
    as rate control" instantiated on the same framework.

    Players share a common contention window (e.g. the CW game's efficient
    NE) but each chooses its *payload size* L_i ∈ [l_min, l_max] bits.  A
    delivered packet is worth gain proportional to its payload
    (g·L_i/L_ref, with L_ref the Table-I payload), an attempt costs the
    usual e, and the channel is priced by the heterogeneous-frame model
    ({!Dcf.Hetero}): your long frames inflate everybody's slot time.

    Two regimes, both derived rather than assumed:
    - γ = 0 (throughput-only utility): header amortisation makes the
      best response l_max regardless of the others; the unique NE is
      everyone-at-l_max, and it coincides with the social optimum — payload
      selfishness is benign.
    - γ > 0 (delay-priced utility as in {!Delay_game}): long frames raise
      the shared slot time and hence everyone's access delay; the best
      response becomes interior and decreases with γ, and the NE payload
      shrinks accordingly.

    The module also exposes the classic *rate anomaly* computation
    (heterogeneous PHY rates under MAC-level packet fairness) as the
    baseline motivating airtime-based utility redefinitions. *)

type config = {
  oracle : Oracle.t;  (** payoff oracle carrying the parameter set; τ and p
                          at the shared window come from its uniform fast
                          path *)
  w : int;            (** common contention window *)
  l_min : int;        (** smallest payload, bits *)
  l_max : int;        (** largest payload, bits *)
  gamma : float;      (** delay sensitivity, 1/s (0 = throughput only) *)
}

val utilities : config -> int array -> float array
(** Per-node payoff rates for a payload profile (bits per node). *)

val best_response : config -> payloads:int array -> i:int -> int
(** The payload maximising node [i]'s payoff against the given profile
    (grid search over ~64 candidate sizes, then local refinement). *)

val best_response_dynamics :
  ?max_rounds:int -> config -> int array -> int array * int * bool
(** Iterate simultaneous best responses from the given profile:
    [(final, rounds, converged)]. *)

val symmetric_optimum : config -> n:int -> int
(** The common payload maximising the symmetric per-node payoff in an
    [n]-player network. *)

type rate_anomaly = {
  rates : float array;        (** per-node PHY rate, bit/s *)
  throughputs : float array;  (** per-node goodput (fraction of base rate) *)
  airtime_shares : float array; (** fraction of busy time each node holds *)
}

val rate_anomaly : Oracle.t -> w:int -> rates:float array -> rate_anomaly
(** Heusse et al.'s 802.11 anomaly, computed from the heterogeneous-frame
    model: MAC-level fairness gives every node the same packet rate, so a
    single slow node drags every fast node's goodput down to roughly the
    slow node's level while hogging the airtime. *)
