type t = Dcf.Strategy_space.t array

let uniform_strategy ~n s =
  if n < 1 then invalid_arg "Profile.uniform: need n >= 1";
  (match Dcf.Strategy_space.validate s with
  | Ok () -> ()
  | Error e -> invalid_arg ("Profile.uniform: " ^ e));
  Array.make n s

let uniform ~n ~w = uniform_strategy ~n (Dcf.Strategy_space.of_cw w)

let with_deviant_strategy ~n ~w ~dev =
  if n < 2 then invalid_arg "Profile.with_deviant: need n >= 2";
  (match Dcf.Strategy_space.validate dev with
  | Ok () -> ()
  | Error e -> invalid_arg ("Profile.with_deviant: " ^ e));
  let p = uniform ~n ~w in
  p.(0) <- dev;
  p

let with_deviant ~n ~w ~w_dev =
  with_deviant_strategy ~n ~w ~dev:(Dcf.Strategy_space.of_cw w_dev)

let of_cws cws = Array.map Dcf.Strategy_space.of_cw cws
let cws t = Array.map (fun (s : Dcf.Strategy_space.t) -> s.cw) t

let is_uniform t =
  Array.length t > 0
  && Array.for_all (fun s -> Dcf.Strategy_space.equal s t.(0)) t

let is_degenerate t = Array.for_all Dcf.Strategy_space.is_degenerate t

let min_window t =
  if Array.length t = 0 then invalid_arg "Profile.min_window: empty profile";
  Array.fold_left
    (fun acc (s : Dcf.Strategy_space.t) -> Stdlib.min acc s.cw)
    t.(0).Dcf.Strategy_space.cw t

(* The canonical form is the multiset: sorted by the strategy-space total
   order, so any permutation of the same profile canonicalizes to the same
   array — the basis of the oracle's memo/store keys. *)
let canonical t =
  let sorted = Array.copy t in
  Array.sort Dcf.Strategy_space.compare sorted;
  sorted

let key t =
  String.concat ";"
    (Array.to_list (Array.map Dcf.Strategy_space.to_key (canonical t)))

let fingerprint t = Prelude.Util.fnv1a64 (key t)

let validate ~cw_max t =
  if Array.length t = 0 then Error "empty profile"
  else
    Array.fold_left
      (fun acc s ->
        match acc with
        | Error _ -> acc
        | Ok () -> Dcf.Strategy_space.validate ~cw_max s)
      (Ok ()) t

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 Dcf.Strategy_space.equal a b

let pp ppf t =
  if is_uniform t && Dcf.Strategy_space.is_degenerate t.(0) then
    Format.fprintf ppf "%dx%d" (Array.length t) t.(0).Dcf.Strategy_space.cw
  else if is_uniform t then
    Format.fprintf ppf "%dx%a" (Array.length t) Dcf.Strategy_space.pp t.(0)
  else begin
    Format.pp_print_char ppf '[';
    Array.iteri
      (fun i s ->
        if i > 0 then Format.pp_print_string ppf "; ";
        Dcf.Strategy_space.pp ppf s)
      t;
    Format.pp_print_char ppf ']'
  end

let to_json t =
  Telemetry.Jsonx.List (Array.to_list (Array.map Dcf.Strategy_space.to_json t))

let of_json json =
  match json with
  | Telemetry.Jsonx.List (_ :: _ as items) ->
      let rec decode acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | item :: rest -> (
            match Dcf.Strategy_space.of_json item with
            | Ok s -> decode (s :: acc) rest
            | Error e -> Error e)
      in
      decode [] items
  | _ -> Error "profile must be a non-empty list"
