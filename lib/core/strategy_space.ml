(* Re-export so game-layer consumers can say [Macgame.Strategy_space]
   without depending on the dcf library directly. *)
include Dcf.Strategy_space
