(** The distributed search for the efficient NE (Sec. V.C).

    When players do not know n they cannot compute W_c* directly; the paper
    gives a coordinator-driven protocol: node l broadcasts Start-Search, then
    repeatedly announces a window via Ready messages, waits for the others
    to adopt it, measures its own payoff Û_l = (n_s·g − n_e·e)/t_m over a
    measurement interval, and hill-climbs right (then left if the first
    right step already lost payoff) until the payoff drops, finally
    broadcasting the best window found.

    The paper's pseudocode is ambiguous about when Left-Search triggers
    ("if W_m ≠ W_0 + 1"); we implement the evident intent — search left
    exactly when the right search made no progress — which finds the
    maximiser of any unimodal payoff from any starting point.

    The payoff oracle abstracts how Û_l is measured: exact (analytic
    model), noisy, or packet-counting on a simulator. *)

type message =
  | Start_search of int  (** initial window W_0 *)
  | Ready of int         (** "everyone switch to this window" *)
  | Announce of int      (** final broadcast of W_m *)

type measurement = {
  w : int;
  payoff : float;  (** mean over the probe's oracle calls *)
  stddev : float;
      (** sample stddev across the probe's oracle calls (Welford); 0 with a
          single probe or an exact oracle — the coordinator's own estimate
          of its measurement noise *)
}

type trace = {
  result : int;                   (** the window announced as W_m *)
  messages : message list;        (** protocol messages, in order *)
  measurements : measurement list;(** payoff probes, in order *)
}

type oracle = int -> float
(** [oracle w] is the coordinator's measured payoff when every player
    operates on window [w]. *)

val of_oracle : Oracle.t -> n:int -> oracle
(** The payoff {!Oracle}'s uniform fast path as a search oracle: exact and
    memoised with the analytic backend, replicate-averaged measurement with
    a simulated one.  Repeated probes of the same window are memo hits and
    return identical values; wrap in {!noisy_oracle} to model per-probe
    measurement noise on top. *)

val noisy_oracle : Prelude.Rng.t -> rel_stddev:float -> oracle -> oracle
(** Multiplicative Gaussian measurement noise, as produced by a finite
    measurement interval t_m. *)

val run :
  ?telemetry:Telemetry.Registry.t ->
  ?w0:int -> ?probes:int -> cw_max:int -> oracle -> trace
(** Run the protocol from starting window [w0] (default 16) over the
    strategy space [1, cw_max].  Each candidate's payoff is averaged over
    [probes ≥ 1] oracle calls (default 1) — the knob corresponding to the
    measurement interval t_m: against a noisy oracle, more probes keep the
    unit-step climb from stalling where the payoff slope is shallower than
    the noise.  The recorded measurement carries the probe average and the
    Welford sample stddev across the probe's calls.

    Each averaged measurement emits a ["search_probe"] event (window,
    payoff, stddev, probe count) and the announcement a ["search_result"]
    event on [telemetry] (default: the global registry); ["search.probes"]
    counts measurements. *)

val misreport_stage_payoffs :
  Oracle.t -> n:int -> w_star:int -> w_report:int -> float * float
(** The Remark of Sec. V.C: [(truthful, misreport)] long-run stage payoffs
    of a coordinator who either announces the true W_c* or announces
    [w_report].  Under-reporting (w_report < W_c★) drags everyone — itself
    included, by TFT — to w_report; over-reporting converges back to the
    coordinator's own W_c* so its long-run payoff is unchanged.  In both
    cases misreporting never beats truth in the long run. *)

(** {2 Multi-knob NE search}

    Over the full (CW, AIFS, TXOP, rate) strategy space the protocol's
    one-dimensional walk no longer spans a player's options; the search
    becomes per-dimension coordinate descent (the payoff is unimodal
    along the CW axis by Lemma 3, and the remaining axes are small finite
    ranges scanned exhaustively), iterated Gauss–Seidel over the players
    until a whole round changes nobody's strategy. *)

type ne_outcome = {
  equilibrium : Profile.t;  (** profile after the last round *)
  rounds : int;             (** best-response rounds played *)
  converged : bool;
      (** a full round left every strategy unchanged — each player is at
          a coordinate-wise best response to the others *)
  evaluations : int;        (** oracle payoff evaluations consumed *)
}

val best_response_strategy :
  ?evaluations:int ref -> ?max_sweeps:int ->
  Oracle.t -> space:Dcf.Strategy_space.space -> profile:Profile.t ->
  player:int -> Dcf.Strategy_space.t
(** [player]'s best response to [profile] within [space] by coordinate
    descent: CW via hill climb from the current window, AIFS/TXOP/rate by
    exhaustive scan of their (small) ranges, swept until a full pass is a
    fixed point or [max_sweeps] (default 8) passes ran.  Strategies
    outside [space] are first projected into it (knobs clamped, an
    unavailable rate reset to 1).  [evaluations], when given, accumulates
    the number of oracle evaluations.

    @raise Invalid_argument on an invalid space, a bad player index or
    [max_sweeps < 1]. *)

val ne_search :
  ?telemetry:Telemetry.Registry.t -> ?max_rounds:int ->
  Oracle.t -> space:Dcf.Strategy_space.space -> initial:Profile.t ->
  ne_outcome
(** Iterated best response from [initial] (projected into [space]):
    each round lets every player in turn switch to
    {!best_response_strategy} against the current profile; the search
    stops when a round changes nothing ([converged = true]) or after
    [max_rounds] (default 16) rounds.  On the degenerate CW-only space
    this reduces to the classical iterated window best response.  Emits
    one ["ne_search"] telemetry event (rounds, convergence, evaluation
    count, equilibrium profile).

    @raise Invalid_argument on an invalid space, an empty profile or
    [max_rounds < 1]. *)
