let check_gamma gamma =
  if gamma < 0. then invalid_arg "Delay_game: gamma must be >= 0"

let node_delay (params : Dcf.Params.t) (view : Oracle.uniform_view) ~w =
  (Dcf.Delay.of_node ~slot_time:view.slot_time ~tau:view.tau ~p:view.p ~w
     ~m:params.max_backoff_stage)
    .mean_delay

let payoff oracle ~gamma ~n ~w =
  check_gamma gamma;
  let params = Oracle.params oracle in
  let view = Oracle.uniform oracle ~n ~w in
  if view.p >= 1. then -.(view.tau *. params.cost) /. view.slot_time
  else begin
    let delay = node_delay params view ~w in
    view.tau
    *. (((1. -. view.p) *. params.gain /. (1. +. (gamma *. delay)))
       -. params.cost)
    /. view.slot_time
  end

let efficient_cw oracle ~gamma ~n =
  check_gamma gamma;
  if n < 1 then invalid_arg "Delay_game.efficient_cw: need n >= 1";
  if n = 1 then 1
  else
    fst
      (Numerics.Optimize.ternary_int_max
         (fun w -> payoff oracle ~gamma ~n ~w)
         1 (Oracle.params oracle).cw_max)

let delay_at_ne oracle ~gamma ~n =
  let w = efficient_cw oracle ~gamma ~n in
  node_delay (Oracle.params oracle) (Oracle.uniform oracle ~n ~w) ~w

type tradeoff_point = {
  gamma : float;
  w_star : int;
  delay : float;
  throughput : float;
}

let tradeoff oracle ~n ~gammas =
  let params = Oracle.params oracle in
  Array.map
    (fun gamma ->
      let w_star = efficient_cw oracle ~gamma ~n in
      let view = Oracle.uniform oracle ~n ~w:w_star in
      let delay =
        if view.p >= 1. then infinity else node_delay params view ~w:w_star
      in
      { gamma; w_star; delay; throughput = view.throughput })
    gammas
