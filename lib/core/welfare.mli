(** Global-payoff curves (Figures 2–3) and their robustness summary.

    The figures plot the normalised global payoff U/C against the common
    contention window, where U = T/(1−δ)·Σ_i u_i and C = g·T/(σ(1−δ)),
    i.e. U/C = σ·n·u(W,…,W)/g — a dimensionless curve whose maximiser is
    W_c* and whose flatness around it is the robustness the paper stresses.

    Series evaluate through the {!Oracle}: the figures can be regenerated
    from the analytic model or from packet-level simulation by swapping the
    backend, and a hidden-node factor is configured on the oracle
    ([Oracle.create ~p_hn]) rather than threaded per call. *)

type point = { w : int; value : float }

val global_series : Oracle.t -> n:int -> ws:int array -> point array
(** U/C at each window of [ws] for the symmetric n-player network. *)

val local_series : Oracle.t -> n:int -> ws:int array -> point array
(** Per-node payoff rate u at each window (the individual view; its argmax
    coincides with the global one by symmetry). *)

val sample_windows : Oracle.t -> n:int -> count:int -> int array
(** A log-spaced window grid covering [1, ~4·W_c*] with [count ≥ 2]
    distinct points — a good x-axis for the figures at any n. *)

val peak : point array -> point
(** The maximising point of a series.  @raise Invalid_argument if empty. *)

val flatness : point array -> around:int -> within:float -> int * int
(** [(lo, hi)]: the contiguous window range of the series around the window
    [around] whose value stays within [within] (e.g. 0.95) of the series
    value at [around].  Quantifies the "CW values near W_c* yield almost
    the same payoff" observation. *)
