(** Delay-aware variant of the MAC game (the Sec. VIII extension).

    The paper concedes that its generic utility "does not take into account
    the delay and other factors.  As a result, the CW value of NE may seem
    too long in some cases."  This module prices delay in: a delivered
    packet is worth g discounted by how long the node waited for it,

    u_i(γ) = τ_i·((1−p_i)·g/(1 + γ·D_i) − e) / T̄slot

    with D_i the node's mean access delay ({!Dcf.Delay}) and γ ≥ 0 the
    delay sensitivity in 1/seconds (γ = 0 recovers the paper's game; at
    γ·D = 1 a packet is worth half its nominal gain).

    The model's verdict on the paper's worry is itself interesting: in
    saturation the access delay D ≈ n·T̄slot/(n·τ(1−p)) is almost flat in
    the common window near the optimum (every node waits for the other
    n−1 regardless of W), and its minimum sits at the *throughput*-optimal
    window, slightly above the payoff-optimal one (which also prices the
    energy cost e).  So moderate delay sensitivity nudges the efficient NE
    *upward* toward the throughput peak — the "too long" NE window is not
    actually a delay problem — while extreme γ degenerates to maximal
    windows (when delay destroys all packet value, the rational move is to
    barely participate and save energy).

    τ, p, T̄slot and S come from the {!Oracle}'s uniform view, so the
    delay-aware game inherits backend pluggability and memoization; only
    the delay pricing itself stays analytic ({!Dcf.Delay} is closed-form
    in those estimates). *)

val payoff : Oracle.t -> gamma:float -> n:int -> w:int -> float
(** Per-node delay-aware payoff rate of the uniform profile (w, …, w). *)

val efficient_cw : Oracle.t -> gamma:float -> n:int -> int
(** The delay-aware efficient NE window: argmax of {!payoff} over
    [1, cw_max].  Decreasing in [gamma]; equals
    {!Equilibrium.efficient_cw} at [gamma = 0]. *)

val delay_at_ne : Oracle.t -> gamma:float -> n:int -> float
(** Mean access delay at the delay-aware NE, s. *)

type tradeoff_point = {
  gamma : float;
  w_star : int;       (** delay-aware efficient window *)
  delay : float;      (** mean access delay at it, s *)
  throughput : float; (** network throughput S at it *)
}

val tradeoff : Oracle.t -> n:int -> gammas:float array -> tradeoff_point array
(** The delay/throughput frontier traced by sweeping γ — the ablation
    behind the [delay] bench. *)
