(** Detection-theoretic design of the GTFT tolerance (linking [3] to
    Sec. IV).

    A TFT/GTFT player flags neighbour j as a cheater when its estimated
    window Ŵ_j falls below β·W_exp, where W_exp is the window everyone is
    supposed to play.  With the backoff-counting estimator
    ({!Observer.sampling}), Ŵ is approximately Normal(W_true, σ²) with
    σ = 2·√((W_true²−1)/12k) after k observed backoffs, so both error rates
    of the trigger have closed forms:

    - false positive: P(Ŵ < β·W_exp | W_true = W_exp) — punishing an
      honest neighbour, which under plain TFT collapses the network;
    - detection: P(Ŵ < β·W_exp | W_true = c·W_exp) for a cheater playing a
      fraction c < β of the expected window.

    GTFT's averaging over r0 stages multiplies the effective sample count
    by r0, which is how (r0, β) should be chosen: make the false-positive
    rate negligible at the noise level while still detecting the cheats
    that matter. *)

val false_positive_rate : w_exp:int -> samples:int -> beta:float -> float
(** P(flag an honest node).  [beta ∈ (0, 1]], [samples ≥ 1]. *)

val detection_rate :
  w_true:int -> w_exp:int -> samples:int -> beta:float -> float
(** P(flag a node whose true window is [w_true]). *)

val required_samples : w_exp:int -> beta:float -> max_fp:float -> int
(** Smallest k with [false_positive_rate ≤ max_fp] ([max_fp ∈ (0, 0.5)]).
    Closed form from the normal quantile, then adjusted to the exact
    integer threshold. *)

type design = {
  beta : float;
  samples_per_stage : int;  (** k needed in a single stage *)
  r0 : int;                 (** GTFT stages to average when only
                                [per_stage] samples arrive per stage *)
  false_positive : float;   (** achieved FP rate *)
  detection : float;        (** achieved detection of the target cheat *)
}

val design_gtft :
  w_exp:int -> cheat_factor:float -> per_stage:int -> max_fp:float ->
  min_detection:float -> design option
(** Find the cheapest tolerance meeting both error budgets: over
    β ∈ (cheat_factor, 1), compute the r0 (averaging depth) that makes the
    false-positive budget hold with [per_stage] backoff observations per
    stage, require the cheat at [cheat_factor]·w_exp to be caught with
    probability ≥ [min_detection], and return the feasible design with the
    smallest r0 (ties broken toward the larger β).  [None] if nothing
    works within r0 ≤ 64. *)

val empirical_rates :
  rng:Prelude.Rng.t -> trials:int -> w_true:int -> w_exp:int -> samples:int ->
  beta:float -> float
(** Monte-Carlo flag rate of the exact (non-Gaussian) estimator — used by
    the tests to validate the closed forms. *)

(** {2 Multi-knob deviation detection}

    With (CW, AIFS, TXOP, rate) strategies a cheater has more knobs than
    the contention window; each needs its own trigger.  AIFS deviation is
    estimated from the same idle-slot counts as the window ({!Observer.aifs_estimate}),
    so its error rates have the same normal closed forms.  TXOP deviation
    is deterministic per observed burst — detection is purely a coverage
    question. *)

val aifs_flag_rate :
  w:int -> aifs_true:int -> aifs_exp:int -> samples:int -> delta:float ->
  float
(** P(âifs < aifs_exp − delta) for a neighbour with true AIFS
    [aifs_true] and window [w], after [samples ≥ 1] observed accesses.
    [delta ≥ 0] is the trigger margin in slots. *)

val aifs_false_positive_rate :
  w:int -> aifs_exp:int -> samples:int -> delta:float -> float
(** P(flag an honest node): {!aifs_flag_rate} at
    [aifs_true = aifs_exp]. *)

val aifs_detection_rate :
  w:int -> aifs_true:int -> aifs_exp:int -> samples:int -> delta:float ->
  float
(** P(flag a node defering [aifs_true < aifs_exp] slots). *)

val txop_detection_rate :
  txop_true:int -> txop_exp:int -> p_observe:float -> accesses:int -> float
(** P(catch a burst longer than [txop_exp]) when each of [accesses ≥ 1]
    channel accesses is observed independently with probability
    [p_observe]: [0] for an honest node, [1 − (1−p_observe)^accesses]
    for a cheater — burst length is deterministic, so one observed
    access convicts. *)

val empirical_aifs_rate :
  rng:Prelude.Rng.t -> trials:int -> w:int -> aifs_true:int -> aifs_exp:int ->
  samples:int -> delta:float -> float
(** Monte-Carlo flag rate of the exact AIFS estimator — validates the
    closed form in the tests. *)

val punishment_stages :
  gain:float -> loss:float -> discount:float -> int option
(** Banchs-style punishment sizing: the smallest number of punishment
    stages L making a detected deviation unprofitable, i.e.
    Σ_{k=1..L} δ^k·[loss] ≥ [gain], where [gain] is the cheater's
    one-stage payoff gain and [loss] its per-stage payoff loss while
    punished.  [Some 0] when there is nothing to deter; [None] when even
    perpetual punishment cannot recoup the gain (δ too small). *)
