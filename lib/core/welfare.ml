type point = { w : int; value : float }

let series_of oracle ~n ~ws ~per_node =
  let params = Oracle.params oracle in
  Array.map
    (fun w ->
      let u = Oracle.payoff_uniform oracle ~n ~w in
      let value =
        if per_node then u
        else
          (* U/C = σ·n·u/g, cf. Sec. VII.A *)
          params.Dcf.Params.sigma *. float_of_int n *. u
          /. params.Dcf.Params.gain
      in
      { w; value })
    ws

let global_series oracle ~n ~ws = series_of oracle ~n ~ws ~per_node:false

let local_series oracle ~n ~ws = series_of oracle ~n ~ws ~per_node:true

let sample_windows oracle ~n ~count =
  if count < 2 then invalid_arg "Welfare.sample_windows: need >= 2 points";
  let params = Oracle.params oracle in
  let w_star = Equilibrium.efficient_cw oracle ~n in
  let hi = Stdlib.min params.cw_max (Stdlib.max 8 (4 * w_star)) in
  let raw = Prelude.Util.logspace 1. (float_of_int hi) count in
  let ints = Array.map (fun x -> int_of_float (Float.round x)) raw in
  (* Deduplicate while keeping order (rounding collapses small values). *)
  let seen = Hashtbl.create count in
  let keep =
    Array.to_list ints
    |> List.filter (fun w ->
           if Hashtbl.mem seen w then false
           else begin
             Hashtbl.add seen w ();
             true
           end)
  in
  Array.of_list keep

let peak points =
  if Array.length points = 0 then invalid_arg "Welfare.peak: empty series";
  points.(Prelude.Util.argmax (fun p -> p.value) points)

let flatness points ~around ~within =
  if within <= 0. || within > 1. then
    invalid_arg "Welfare.flatness: within must be in (0, 1]";
  let reference =
    match Array.find_opt (fun p -> p.w = around) points with
    | Some p -> p.value
    | None -> invalid_arg "Welfare.flatness: reference window not in series"
  in
  let threshold = within *. reference in
  let n = Array.length points in
  let idx = ref 0 in
  Array.iteri (fun i p -> if p.w = around then idx := i) points;
  let lo = ref !idx and hi = ref !idx in
  while !lo > 0 && points.(!lo - 1).value >= threshold do
    decr lo
  done;
  while !hi < n - 1 && points.(!hi + 1).value >= threshold do
    incr hi
  done;
  (points.(!lo).w, points.(!hi).w)
