(** The multi-hop game G′ (Sec. VI).

    Each node i only contends with the nodes in its carrier-sense
    neighbourhood M_i, so eq. 3 becomes local (eq. 4) and the utility gains
    the hidden-node degradation factor p_hn.  Without global coordination a
    rational node sets its window to the efficient NE of the *local*
    single-hop game among itself and its neighbours (deg(i)+1 players), and
    TFT then drags every window down to W_m = min_i W_i (Theorem 3), which
    is a Nash equilibrium of G′ — Pareto optimal but only quasi-optimal
    globally.

    This module takes an abstract neighbourhood graph; building one from
    node positions and mobility is {!module:Mobility}'s job. *)

type t
(** An undirected neighbourhood graph. *)

val create : int list array -> t
(** [create adjacency] with [adjacency.(i)] the neighbour list of node i.
    @raise Invalid_argument if a list mentions an out-of-range node, a
    self-loop, a duplicate, or if the relation is not symmetric. *)

val size : t -> int

val degrees : t -> int array

val neighbors : t -> int -> int list

val is_connected : t -> bool
(** Breadth-first reachability from node 0 (true for the empty graph). *)

val diameter : t -> int
(** Longest shortest path between any two nodes.
    @raise Invalid_argument if the graph is disconnected or empty. *)

val local_efficient_cw : Oracle.t -> t -> int array
(** W_i for every node: the efficient NE window of the single-hop game with
    deg(i)+1 players.  Real topologies have few distinct degrees, and the
    oracle's (n, w) memo makes the repeated searches cheap. *)

val converged_cw : Oracle.t -> t -> int
(** W_m = min_i W_i — the profile Theorem 3 proves TFT converges to. *)

val tft_rounds : t -> start:int array -> int * int array
(** Local-TFT dynamics W_i ← min over i's closed neighbourhood, iterated to
    a fixed point: [(rounds, final)].  On a connected graph [final] is
    uniformly the minimum of [start] and [rounds ≤ diameter]. *)

type game_outcome = {
  trace : (int array * float array) array;
      (** per stage: the profile played and the per-node payoffs *)
  converged_at : int option;
      (** first stage of a constant suffix of length ≥ 2 *)
  final : int array;
}

val local_tft_game :
  ?observer:Observer.t ->
  t -> initials:int array -> stages:int ->
  payoffs:(int array -> float array) -> game_outcome
(** The multi-hop repeated game G′: in each stage every node plays the
    minimum of its *own* closed neighbourhood's windows as observed in the
    previous stage (it cannot see beyond its radio range — the difference
    from the single-hop engine).  [payoffs] evaluates a full profile, e.g.
    the analytic local model or a {!Netsim.Spatial} run.  Theorem 3: on a
    connected graph the profile converges to the minimum initial window
    within diameter stages. *)

val payoffs_at : Oracle.t -> t -> w:int -> float array
(** Per-node payoff rates when every node operates on [w], each evaluated
    in its local game (deg(i)+1 players; configure the degradation factor
    with [Oracle.create ~p_hn]). *)

type quasi_optimality = {
  w_m : int;                 (** the converged NE window *)
  global_at_ne : float;      (** Σ_i u_i at W_m *)
  global_opt : float;        (** max over common w of Σ_i u_i *)
  w_global_opt : int;        (** the maximising common window *)
  global_ratio : float;      (** global_at_ne / global_opt *)
  local_ratios : float array;(** u_i(W_m) / max_w u_i(w) per node *)
  min_local_ratio : float;
}

val quasi_optimality : Oracle.t -> t -> quasi_optimality
(** The Sec. VII.B evaluation: how close the converged NE is to the best
    common window, globally and for the worst-off node.  The paper reports
    ≥ 96 % locally and ≥ 97 % globally for its 100-node topology. *)
