type sim_config = { duration : float; replicates : int; seed : int }

type backend =
  | Analytic
  | Sim_slotted of sim_config
  | Sim_spatial of sim_config

type uniform_view = {
  tau : float;
  p : float;
  utility : float;
  throughput : float;
  slot_time : float;
}

type tier = Memo | Store | Cold

let tier_name = function Memo -> "memo" | Store -> "store" | Cold -> "cold"

exception Non_converged of string

(* A solved heterogeneous profile is stored per strategy class: distinct
   strategies in the canonical (sorted) order, one utility each.  Equal
   strategies share (τ, p) by symmetry, so one float per class answers
   every node — and every permutation of the same multiset. *)
type classes = (Dcf.Strategy_space.t * float) array

type t = {
  params : Dcf.Params.t;
  p_hn : float option;
  backend : backend;
  telemetry : Telemetry.Registry.t;
  hits : Telemetry.Metric.counter;
  misses : Telemetry.Metric.counter;
  solves : Telemetry.Metric.counter;
  store_hits : Telemetry.Metric.counter;
  store_misses : Telemetry.Metric.counter;
  warm_used : Telemetry.Metric.counter;
  nonconverged : Telemetry.Metric.counter;
  warm_iters : Telemetry.Metric.histogram;
  cold_iters : Telemetry.Metric.histogram;
  (* Iteration budget handed to the analytic class solvers; None means the
     solver defaults.  Exists so tests (and cautious deployments) can
     force the non-convergence path and watch it refuse, not fabricate. *)
  solver_max_iter : int option;
  lock : Mutex.t;
  uniform_memo : (int * Dcf.Strategy_space.t, uniform_view) Hashtbl.t;
  profile_memo : (Dcf.Strategy_space.t list, classes) Hashtbl.t;
  store : Store.t option;
  (* Lazy: rendering and fingerprinting the full parameter set costs more
     than every other allocation in [create] combined, and an oracle
     without a store may never need its identity.  Forced on first store
     access or [identity] call. *)
  store_prefix : string Lazy.t;
  warm_start : bool;
  (* (n, w) → τ of every degenerate uniform solution this oracle can reach
     without solving: persisted store rows loaded at open plus everything
     memoized since.  The warm-start neighbour search scans this table,
     so a fresh process inherits the whole fleet's solved grid as
     starting points. *)
  neighbor_taus : (int * int, float) Hashtbl.t;
}

(* Flight-recorder names, interned once (intern takes a lock).  Payload
   words: hits/misses carry (n, w) on the uniform path and (n, smallest
   window) on the profile path; solve spans carry the same. *)
let recorder = Telemetry.Recorder.default
let nid_hit = Telemetry.Recorder.intern recorder "oracle.hit"
let nid_miss = Telemetry.Recorder.intern recorder "oracle.miss"
let nid_solve = Telemetry.Recorder.intern recorder "oracle.solve"
let nid_store_hit = Telemetry.Recorder.intern recorder "oracle.store_hit"

let recorded_solve a b f =
  let rid = Telemetry.Recorder.begin_span recorder nid_solve a b in
  if rid = 0 then f ()
  else
    Fun.protect
      ~finally:(fun () -> Telemetry.Recorder.end_span recorder nid_solve rid)
      f

let validate_backend = function
  | Analytic -> ()
  | Sim_slotted { duration; replicates; _ }
  | Sim_spatial { duration; replicates; _ } ->
      if duration <= 0. then
        invalid_arg "Oracle.create: sim duration must be positive";
      if replicates < 1 then
        invalid_arg "Oracle.create: need replicates >= 1"

(* {2 Persistent store keys and codecs}

   Store entries are shared across runs, processes and backends, so every
   key pins down the full evaluation identity: parameter fingerprint,
   backend (with its sim configuration), and p_hn.  Two oracles with
   equal configurations address the same rows; any difference — even one
   sim seed — addresses disjoint ones.

   Schema v2: profile rows key the full (CW, AIFS, TXOP, rate) strategy
   multiset and store per-strategy classes.  v1 rows (bare-window keys,
   [{"w":…}] classes) are refused at open — silently reinterpreting them
   would alias distinct strategies onto their CW projection. *)

let v1_prefix = "oracle|v1|"

let backend_repr = function
  | Analytic -> "analytic"
  | Sim_slotted { duration; replicates; seed } ->
      Printf.sprintf "slotted|dur=%h|rep=%d|seed=%d" duration replicates seed
  | Sim_spatial { duration; replicates; seed } ->
      Printf.sprintf "spatial|dur=%h|rep=%d|seed=%d" duration replicates seed

let store_prefix_of ~params ~p_hn ~backend =
  let params_fp =
    Prelude.Util.hex64
      (Prelude.Util.fnv1a64 (Format.asprintf "%a" Dcf.Params.pp params))
  in
  Printf.sprintf "oracle|v2|params=%s|p_hn=%h|%s" params_fp
    (Option.value p_hn ~default:1.)
    (backend_repr backend)

(* Degenerate strategies render as their bare window (the historical v1
   shape, now under the v2 prefix); multi-knob ones use the full
   strategy key.  The two alphabets are disjoint ("8" vs "w8.a1…"). *)
let strategy_repr (s : Dcf.Strategy_space.t) =
  if Dcf.Strategy_space.is_degenerate s then string_of_int s.cw
  else Dcf.Strategy_space.to_key s

let uniform_store_key t ~n ~s =
  if Dcf.Strategy_space.is_degenerate s then
    Printf.sprintf "%s|uniform|n=%d|w=%d" (Lazy.force t.store_prefix) n
      s.Dcf.Strategy_space.cw
  else
    Printf.sprintf "%s|uniform|n=%d|s=%s" (Lazy.force t.store_prefix) n
      (Dcf.Strategy_space.to_key s)

let profile_store_key t sorted =
  Printf.sprintf "%s|profile|%s"
    (Lazy.force t.store_prefix)
    (String.concat ";" (List.map strategy_repr (Array.to_list sorted)))

(* Parse (n, w) back out of a degenerate uniform store key — used once, at
   open, to seed the neighbour table from persisted rows.  Multi-knob
   uniform rows use the "|s=" tail and are deliberately not parsed: the
   warm-start neighbour model predicts τ from windows alone. *)
let parse_uniform_key ~prefix key =
  let marker = prefix ^ "|uniform|n=" in
  let mlen = String.length marker in
  if String.length key > mlen && String.sub key 0 mlen = marker then
    match
      String.split_on_char '|'
        (String.sub key mlen (String.length key - mlen))
    with
    | [ n_part; w_part ] when String.length w_part > 2 ->
        Option.bind (int_of_string_opt n_part) (fun n ->
            if String.sub w_part 0 2 = "w=" then
              Option.map
                (fun w -> (n, w))
                (int_of_string_opt
                   (String.sub w_part 2 (String.length w_part - 2)))
            else None)
    | _ -> None
  else None

let view_to_json (v : uniform_view) =
  Telemetry.Jsonx.Obj
    [
      ("tau", Telemetry.Jsonx.Float v.tau);
      ("p", Telemetry.Jsonx.Float v.p);
      ("utility", Telemetry.Jsonx.Float v.utility);
      ("throughput", Telemetry.Jsonx.Float v.throughput);
      ("slot_time", Telemetry.Jsonx.Float v.slot_time);
    ]

let view_of_json json =
  let field name =
    Option.bind (Telemetry.Jsonx.member name json) Telemetry.Jsonx.to_float_opt
  in
  match
    ( field "tau", field "p", field "utility", field "throughput",
      field "slot_time" )
  with
  | Some tau, Some p, Some utility, Some throughput, Some slot_time ->
      Some { tau; p; utility; throughput; slot_time }
  | _ -> None

let classes_to_json (classes : classes) =
  Telemetry.Jsonx.List
    (Array.to_list
       (Array.map
          (fun (s, u) ->
            Telemetry.Jsonx.Obj
              [
                ("s", Dcf.Strategy_space.to_json s);
                ("u", Telemetry.Jsonx.Float u);
              ])
          classes))

let classes_of_json json =
  match json with
  | Telemetry.Jsonx.List items ->
      let decoded =
        List.filter_map
          (fun item ->
            match
              ( Telemetry.Jsonx.member "s" item,
                Option.bind
                  (Telemetry.Jsonx.member "u" item)
                  Telemetry.Jsonx.to_float_opt )
            with
            | Some sj, Some u -> (
                match Dcf.Strategy_space.of_json sj with
                | Ok s -> Some (s, u)
                | Error _ -> None)
            | _ -> None)
          items
      in
      if List.length decoded = List.length items && decoded <> [] then
        Some (Array.of_list decoded)
      else None
  | _ -> None

let create ?(telemetry = Telemetry.Registry.default) ?p_hn
    ?(backend = Analytic) ?store ?(warm_start = false) ?solver_max_iter
    (params : Dcf.Params.t) =
  validate_backend backend;
  (match solver_max_iter with
  | Some i when i < 1 ->
      invalid_arg "Oracle.create: solver_max_iter must be >= 1"
  | _ -> ());
  (match p_hn with
  | Some f when f <= 0. || f > 1. ->
      invalid_arg "Oracle.create: p_hn must be in (0, 1]"
  | _ -> ());
  let store_prefix = lazy (store_prefix_of ~params ~p_hn ~backend) in
  let neighbor_taus = Hashtbl.create 64 in
  (* Inherit the persisted grid as warm-start seeds.  The rows themselves
     stay out of the memo — a first-touch answer served from disk must be
     attributable to the store tier, not mistaken for a memo hit.  A v1
     row anywhere in the store poisons the open: refuse it loudly rather
     than leave entries the v2 schema can never address. *)
  Option.iter
    (fun s ->
      Store.iter s (fun ~key value ->
          let klen = String.length key in
          let plen = String.length v1_prefix in
          if klen >= plen && String.sub key 0 plen = v1_prefix then
            raise
              (Store.Corrupt
                 (Printf.sprintf
                    "legacy oracle row %S: the v1 key schema (bare CW \
                     profiles) predates multi-knob strategies and cannot be \
                     reinterpreted; delete the row or regenerate the store \
                     under oracle|v2"
                    key));
          match parse_uniform_key ~prefix:(Lazy.force store_prefix) key with
          | Some (n, w) ->
              Option.iter
                (fun v -> Hashtbl.replace neighbor_taus (n, w) v.tau)
                (view_of_json value)
          | None -> ()))
    store;
  {
    params;
    p_hn;
    backend;
    telemetry;
    hits = Telemetry.Registry.counter telemetry "oracle.cache.hits";
    misses = Telemetry.Registry.counter telemetry "oracle.cache.misses";
    solves = Telemetry.Registry.counter telemetry "oracle.cache.solves";
    store_hits = Telemetry.Registry.counter telemetry "oracle.store.hits";
    store_misses = Telemetry.Registry.counter telemetry "oracle.store.misses";
    warm_used = Telemetry.Registry.counter telemetry "oracle.warmstart.used";
    nonconverged =
      Telemetry.Registry.counter telemetry "oracle.solve.nonconverged";
    solver_max_iter;
    warm_iters =
      Telemetry.Registry.histogram telemetry "oracle.solve.iterations.warm";
    cold_iters =
      Telemetry.Registry.histogram telemetry "oracle.solve.iterations.cold";
    lock = Mutex.create ();
    uniform_memo = Hashtbl.create 64;
    profile_memo = Hashtbl.create 64;
    store;
    store_prefix;
    warm_start;
    neighbor_taus;
  }

let analytic ?telemetry ?p_hn params = create ?telemetry ?p_hn params

let params t = t.params
let backend t = t.backend
let telemetry t = t.telemetry
let store t = t.store
let warm_start t = t.warm_start
let identity t = Lazy.force t.store_prefix

let backend_name = function
  | Analytic -> "analytic"
  | Sim_slotted _ -> "slotted"
  | Sim_spatial _ -> "spatial"

(* Memo access.  Lookups and inserts hold the lock (oracles are shared
   across the experiment runner's domains); backend solves run outside it,
   with a double-checked insert so a racing duplicate solve is harmless —
   both domains end up returning the same stored value. *)
let find_memo t tbl key =
  Mutex.lock t.lock;
  let found = Hashtbl.find_opt tbl key in
  Mutex.unlock t.lock;
  (match found with
  | Some _ -> Telemetry.Metric.incr t.hits
  | None -> Telemetry.Metric.incr t.misses);
  found

let memo_insert t tbl key value =
  Mutex.lock t.lock;
  let value =
    match Hashtbl.find_opt tbl key with
    | Some existing -> existing
    | None ->
        Hashtbl.add tbl key value;
        value
  in
  Mutex.unlock t.lock;
  value

let note_neighbor t ~n ~w tau =
  Mutex.lock t.lock;
  Hashtbl.replace t.neighbor_taus (n, w) tau;
  Mutex.unlock t.lock

(* Nearest warm-start seed: same player count, closest window.  The τ of
   (n, w') predicts τ(n, w) after rescaling by the no-collision ratio
   (τ ≈ 2/(W+1) up to the collision correction), which is plenty to
   bracket Brent or seed Picard. *)
let nearest_tau t ~n ~w =
  Mutex.lock t.lock;
  let best = ref None in
  Hashtbl.iter
    (fun (n', w') tau ->
      if n' = n && w' <> w then
        match !best with
        | Some (d, _, _) when abs (w' - w) >= d -> ()
        | _ -> best := Some (abs (w' - w), w', tau))
    t.neighbor_taus;
  Mutex.unlock t.lock;
  match !best with
  | None -> None
  | Some (_, w', tau) ->
      let scaled = tau *. float_of_int (w' + 1) /. float_of_int (w + 1) in
      if scaled > 0. && scaled < 1. then Some scaled else Some tau

let note_iterations t ~warm iters =
  let h = if warm then t.warm_iters else t.cold_iters in
  Telemetry.Metric.observe h (float_of_int iters);
  if warm then Telemetry.Metric.incr t.warm_used

(* A non-converged fixed point must never masquerade as an answer:
   raising here (before any [memo_insert] or [store_put] runs) keeps the
   memo, the persistent store, and every serve reply free of fabricated
   rows. *)
let refuse_nonconverged t what =
  Telemetry.Metric.incr t.nonconverged;
  raise
    (Non_converged
       (Printf.sprintf "solver did not converge on %s%s" what
          (match t.solver_max_iter with
          | Some i -> Printf.sprintf " (max_iter=%d)" i
          | None -> "")))

(* Store access around a memo miss.  Values round-trip bit-faithfully
   (Jsonx renders floats at full precision), so an answer served from
   disk is bit-identical to the solve that produced it.  Keys arrive as
   thunks: building one forces the identity prefix (a full parameter
   render + fingerprint), which a store-less oracle must never pay. *)
let store_find t key decode =
  match t.store with
  | None -> None
  | Some s -> (
      match Option.bind (Store.find s ~key:(key ())) decode with
      | Some v ->
          Telemetry.Metric.incr t.store_hits;
          Some v
      | None ->
          Telemetry.Metric.incr t.store_misses;
          None)

let store_put t key json =
  Option.iter (fun s -> Store.put s ~key:(key ()) json) t.store

(* Per-replicate RNG streams are derived from the sim seed and the content
   key of the evaluation (à la the experiment runner), so a measurement
   depends only on what is being measured — never on memo state or
   evaluation order.  Content keys for degenerate evaluations keep the
   exact pre-strategy strings, so the derived seeds — and therefore every
   simulated degenerate answer — are bit-stable across the refactor. *)
let derived_seed ~seed key replicate =
  let rng = Prelude.Rng.of_key ~seed (key ^ "#" ^ string_of_int replicate) in
  Int64.to_int (Prelude.Rng.bits64 rng) land max_int

let replicate_estimates t ~key (strategies : Dcf.Strategy_space.t array) =
  let cws =
    Array.map (fun (s : Dcf.Strategy_space.t) -> s.Dcf.Strategy_space.cw)
      strategies
  in
  match t.backend with
  | Analytic -> invalid_arg "Oracle.replicate_estimates: analytic backend"
  | Sim_slotted { duration; replicates; seed } ->
      List.init replicates (fun r ->
          Telemetry.Metric.incr t.solves;
          Netsim.Slotted.estimates ~telemetry:t.telemetry ~strategies
            {
              params = t.params;
              cws;
              duration;
              seed = derived_seed ~seed key r;
            })
  | Sim_spatial { duration; replicates; seed } ->
      List.init replicates (fun r ->
          Telemetry.Metric.incr t.solves;
          Netsim.Spatial.clique_estimates ~telemetry:t.telemetry ~strategies
            ~params:t.params ~cws ~duration
            ~seed:(derived_seed ~seed key r) ())

(* {2 Uniform profiles: the (n, strategy) fast path} *)

let uniform_key ~n (s : Dcf.Strategy_space.t) =
  if Dcf.Strategy_space.is_degenerate s then
    Printf.sprintf "oracle.uniform|n=%d|w=%d" n s.cw
  else
    Printf.sprintf "oracle.uniform|n=%d|s=%s" n (Dcf.Strategy_space.to_key s)

let solve_uniform t ~n ~s =
  match t.backend with
  | Analytic when Dcf.Strategy_space.is_degenerate s ->
      (* Mirrors Dcf.Model.homogeneous operation for operation, so a
         memoized analytic oracle is bit-identical to direct model calls
         — unless warm-started, in which case the narrowed bracket makes
         the answer tolerance-identical instead (the conformance suite
         anchors the gap). *)
      let w = s.Dcf.Strategy_space.cw in
      let guess = if t.warm_start then nearest_tau t ~n ~w else None in
      let iters = ref 0 in
      let tau, p =
        Dcf.Solver.solve_homogeneous ~telemetry:t.telemetry ~iterations:iters
          ?guess t.params ~n ~w
      in
      note_iterations t ~warm:(guess <> None) !iters;
      let metrics = Dcf.Metrics.of_taus t.params (Array.make n tau) in
      Telemetry.Metric.incr t.solves;
      {
        tau;
        p;
        utility =
          Dcf.Utility.rate_of_node ?p_hn:t.p_hn t.params
            ~slot_time:metrics.slot_time ~tau ~p;
        throughput = metrics.throughput;
        slot_time = metrics.slot_time;
      }
  | Analytic ->
      let iters = ref 0 in
      let solved =
        Dcf.Model.solve_strategies ?p_hn:t.p_hn ~iterations:iters
          ?max_iter:t.solver_max_iter t.params (Array.make n s)
      in
      note_iterations t ~warm:false !iters;
      Telemetry.Metric.incr t.solves;
      if not solved.Dcf.Model.converged then
        refuse_nonconverged t (uniform_key ~n s);
      {
        tau = solved.Dcf.Model.taus.(0);
        p = solved.Dcf.Model.ps.(0);
        utility = solved.Dcf.Model.utilities.(0);
        throughput =
          Array.fold_left ( +. ) 0. solved.Dcf.Model.goodputs;
        slot_time = solved.Dcf.Model.slot_time;
      }
  | Sim_slotted _ | Sim_spatial _ ->
      let reps =
        replicate_estimates t ~key:(uniform_key ~n s) (Array.make n s)
      in
      let tau = Prelude.Stats.create () in
      let p = Prelude.Stats.create () in
      let utility = Prelude.Stats.create () in
      let throughput = Prelude.Stats.create () in
      let slot_time = Prelude.Stats.create () in
      List.iter
        (fun per_node ->
          let total = ref 0. in
          Array.iter
            (fun (e : Netsim.Estimate.t) ->
              Prelude.Stats.add tau e.tau_hat;
              Prelude.Stats.add p e.p_hat;
              Prelude.Stats.add utility e.payoff_rate;
              Prelude.Stats.add slot_time e.slot_time;
              total := !total +. e.throughput)
            per_node;
          Prelude.Stats.add throughput !total)
        reps;
      {
        tau = Prelude.Stats.mean tau;
        p = Prelude.Stats.mean p;
        utility = Prelude.Stats.mean utility;
        throughput = Prelude.Stats.mean throughput;
        slot_time = Prelude.Stats.mean slot_time;
      }

let uniform_strategy_outcome t ~n (s : Dcf.Strategy_space.t) =
  if n < 1 then invalid_arg "Oracle.uniform: need n >= 1";
  if s.cw < 1 then invalid_arg "Oracle.uniform: window must be >= 1";
  (match Dcf.Strategy_space.validate s with
  | Ok () -> ()
  | Error e -> invalid_arg ("Oracle.uniform: " ^ e));
  match find_memo t t.uniform_memo (n, s) with
  | Some view ->
      Telemetry.Recorder.instant recorder nid_hit n s.cw;
      (view, Memo)
  | None -> (
      Telemetry.Recorder.instant recorder nid_miss n s.cw;
      match
        store_find t (fun () -> uniform_store_key t ~n ~s) view_of_json
      with
      | Some view ->
          Telemetry.Recorder.instant recorder nid_store_hit n s.cw;
          let view = memo_insert t t.uniform_memo (n, s) view in
          if Dcf.Strategy_space.is_degenerate s then
            note_neighbor t ~n ~w:s.cw view.tau;
          (view, Store)
      | None ->
          let solved =
            recorded_solve n s.cw (fun () -> solve_uniform t ~n ~s)
          in
          let view = memo_insert t t.uniform_memo (n, s) solved in
          if Dcf.Strategy_space.is_degenerate s then
            note_neighbor t ~n ~w:s.cw view.tau;
          store_put t (fun () -> uniform_store_key t ~n ~s)
            (view_to_json view);
          (view, Cold))

let uniform_strategy t ~n s = fst (uniform_strategy_outcome t ~n s)

let uniform_outcome t ~n ~w =
  uniform_strategy_outcome t ~n (Dcf.Strategy_space.of_cw w)

let uniform t ~n ~w = fst (uniform_outcome t ~n ~w)
let payoff_uniform t ~n ~w = (uniform t ~n ~w).utility
let welfare_uniform t ~n ~w = float_of_int n *. payoff_uniform t ~n ~w

let tau_p t ~n ~w =
  let view = uniform t ~n ~w in
  (view.tau, view.p)

(* {2 Heterogeneous profiles: the canonical sorted-multiset path} *)

let profile_key sorted =
  "oracle.profile|"
  ^ String.concat ";" (List.map strategy_repr (Array.to_list sorted))

(* Distinct strategies of a sorted profile with the mean utility of each
   strategy class.  For the analytic backend the class members are already
   bit-identical (class-reduced solve), so the mean is the common value;
   for simulated backends the within-class averaging is what makes the
   oracle's permutation invariance exact. *)
let classes_of (sorted : Dcf.Strategy_space.t array) utilities =
  let acc = ref [] in
  let start = ref 0 in
  let n = Array.length sorted in
  for i = 1 to n do
    if i = n || not (Dcf.Strategy_space.equal sorted.(i) sorted.(!start))
    then begin
      let k = i - !start in
      let total = ref 0. in
      for j = !start to i - 1 do
        total := !total +. utilities.(j)
      done;
      acc := (sorted.(!start), !total /. float_of_int k) :: !acc;
      start := i
    end
  done;
  Array.of_list (List.rev !acc)

(* Solve a canonical sorted profile, returning the per-class utilities and
   the per-class (strategy, τ) pairs — the latter feed batch warm starts.
   [tau_hint], when given (a batch context), overrides the oracle-level
   warm-start neighbour search. *)
let solve_profile ?tau_hint t (sorted : Dcf.Strategy_space.t array) =
  match t.backend with
  | Analytic when Profile.is_degenerate sorted ->
      let n = Array.length sorted in
      let cws = Profile.cws sorted in
      let tau_hint =
        match tau_hint with
        | Some hint ->
            Some (fun w -> hint (Dcf.Strategy_space.of_cw w))
        | None ->
            if t.warm_start then
              Some
                (fun w ->
                  Mutex.lock t.lock;
                  let tau = Hashtbl.find_opt t.neighbor_taus (n, w) in
                  Mutex.unlock t.lock;
                  tau)
            else None
      in
      let iters = ref 0 in
      let solved =
        Dcf.Model.solve_profile ?p_hn:t.p_hn ~iterations:iters ?tau_hint
          ?max_iter:t.solver_max_iter t.params cws
      in
      note_iterations t ~warm:(tau_hint <> None) !iters;
      Telemetry.Metric.incr t.solves;
      if not solved.Dcf.Model.converged then
        refuse_nonconverged t (profile_key sorted);
      ( classes_of sorted solved.Dcf.Model.utilities,
        classes_of sorted solved.Dcf.Model.taus )
  | Analytic ->
      let iters = ref 0 in
      let solved =
        Dcf.Model.solve_strategies ?p_hn:t.p_hn ~iterations:iters ?tau_hint
          ?max_iter:t.solver_max_iter t.params sorted
      in
      note_iterations t ~warm:(tau_hint <> None) !iters;
      Telemetry.Metric.incr t.solves;
      if not solved.Dcf.Model.converged then
        refuse_nonconverged t (profile_key sorted);
      ( classes_of sorted solved.Dcf.Model.utilities,
        classes_of sorted solved.Dcf.Model.taus )
  | Sim_slotted _ | Sim_spatial _ ->
      let reps = replicate_estimates t ~key:(profile_key sorted) sorted in
      let n = Array.length sorted in
      let means = Array.make n 0. in
      let count = float_of_int (List.length reps) in
      List.iter
        (fun per_node ->
          Array.iteri
            (fun i (e : Netsim.Estimate.t) ->
              means.(i) <- means.(i) +. (e.payoff_rate /. count))
            per_node)
        reps;
      (classes_of sorted means, [||])

let class_utility (classes : classes) s =
  let rec find i =
    if i >= Array.length classes then
      invalid_arg "Oracle.payoffs: strategy missing from canonical solve"
    else begin
      let s', u = classes.(i) in
      if Dcf.Strategy_space.equal s' s then u else find (i + 1)
    end
  in
  find 0

(* {2 Batch evaluation: sweep-column warm starts}

   A batch context carries the class τs of every profile it has solved,
   so consecutive cold solves in a sweep start from the previous point's
   fixed point instead of the no-collision guess.  Contexts are cheap,
   single-threaded by design (one per sweep column / serve batch
   envelope), and only influence *cold* solves — memo and store tiers are
   untouched.  Like [warm_start], a batch-warm answer agrees with the
   cold solve at tolerance level, not bit level. *)

type batch = {
  owner : t;
  batch_taus : (string, Dcf.Strategy_space.t * float) Hashtbl.t;
}

let batch t = { owner = t; batch_taus = Hashtbl.create 32 }

let batch_hint b (s : Dcf.Strategy_space.t) =
  match Hashtbl.find_opt b.batch_taus (Dcf.Strategy_space.to_key s) with
  | Some (_, tau) -> Some tau
  | None ->
      (* Nearest previously-solved class by CW, rescaled by the
         no-collision ratio — the same neighbour model as the oracle-level
         warm start. *)
      let best = ref None in
      Hashtbl.iter
        (fun _ ((s' : Dcf.Strategy_space.t), tau) ->
          let d = abs (s'.Dcf.Strategy_space.cw - s.Dcf.Strategy_space.cw) in
          match !best with
          | Some (d0, _, _) when d0 <= d -> ()
          | _ -> best := Some (d, s'.Dcf.Strategy_space.cw, tau))
        b.batch_taus;
      Option.map
        (fun (_, cw', tau) ->
          let scaled =
            tau *. float_of_int (cw' + 1) /. float_of_int (s.cw + 1)
          in
          if scaled > 0. && scaled < 1. then scaled else tau)
        !best

let batch_note b class_taus =
  Array.iter
    (fun ((s : Dcf.Strategy_space.t), tau) ->
      if tau > 0. && tau < 1. then
        Hashtbl.replace b.batch_taus (Dcf.Strategy_space.to_key s) (s, tau))
    class_taus

let payoffs_profile_outcome ?batch t (profile : Profile.t) =
  let n = Array.length profile in
  if n = 0 then invalid_arg "Oracle.payoffs: empty profile";
  (match batch with
  | Some b when b.owner != t ->
      invalid_arg "Oracle.payoffs: batch context belongs to another oracle"
  | _ -> ());
  Array.iter
    (fun (s : Dcf.Strategy_space.t) ->
      if s.cw < 1 then invalid_arg "Oracle.payoffs: window must be >= 1";
      match Dcf.Strategy_space.validate s with
      | Ok () -> ()
      | Error e -> invalid_arg ("Oracle.payoffs: " ^ e))
    profile;
  if Profile.is_uniform profile then
    let view, tier = uniform_strategy_outcome t ~n profile.(0) in
    (Array.make n view.utility, tier)
  else begin
    let sorted = Profile.canonical profile in
    let key = Array.to_list sorted in
    let w0 = sorted.(0).Dcf.Strategy_space.cw in
    let classes, tier =
      match find_memo t t.profile_memo key with
      | Some classes ->
          Telemetry.Recorder.instant recorder nid_hit n w0;
          (classes, Memo)
      | None -> (
          Telemetry.Recorder.instant recorder nid_miss n w0;
          match
            store_find t (fun () -> profile_store_key t sorted) classes_of_json
          with
          | Some classes ->
              Telemetry.Recorder.instant recorder nid_store_hit n w0;
              (memo_insert t t.profile_memo key classes, Store)
          | None ->
              let tau_hint =
                match batch with
                | Some b when Hashtbl.length b.batch_taus > 0 ->
                    Some (batch_hint b)
                | _ -> None
              in
              let solved, class_taus =
                recorded_solve n w0 (fun () ->
                    solve_profile ?tau_hint t sorted)
              in
              Option.iter (fun b -> batch_note b class_taus) batch;
              let classes = memo_insert t t.profile_memo key solved in
              store_put t
                (fun () -> profile_store_key t sorted)
                (classes_to_json classes);
              (classes, Cold))
    in
    (Array.map (fun s -> class_utility classes s) profile, tier)
  end

let payoffs_profile t profile = fst (payoffs_profile_outcome t profile)

let payoffs_batch_outcome t profiles =
  let b = batch t in
  Array.map
    (fun profile ->
      match payoffs_profile_outcome ~batch:b t profile with
      | result -> Ok result
      | exception Non_converged reason -> Error reason)
    profiles

let payoffs_batch t profiles =
  let b = batch t in
  Array.map (fun p -> fst (payoffs_profile_outcome ~batch:b t p)) profiles

let payoffs_outcome t cws = payoffs_profile_outcome t (Profile.of_cws cws)
let payoffs t cws = fst (payoffs_outcome t cws)
