type sim_config = { duration : float; replicates : int; seed : int }

type backend =
  | Analytic
  | Sim_slotted of sim_config
  | Sim_spatial of sim_config

type uniform_view = {
  tau : float;
  p : float;
  utility : float;
  throughput : float;
  slot_time : float;
}

(* A solved heterogeneous profile is stored per window class: distinct
   windows ascending, one utility each.  Equal windows share (τ, p) by
   symmetry, so one float per class answers every node — and every
   permutation of the same multiset. *)
type classes = (int * float) array

type t = {
  params : Dcf.Params.t;
  p_hn : float option;
  backend : backend;
  telemetry : Telemetry.Registry.t;
  hits : Telemetry.Metric.counter;
  misses : Telemetry.Metric.counter;
  solves : Telemetry.Metric.counter;
  lock : Mutex.t;
  uniform_memo : (int * int, uniform_view) Hashtbl.t;
  profile_memo : (int list, classes) Hashtbl.t;
}

(* Flight-recorder names, interned once (intern takes a lock).  Payload
   words: hits/misses carry (n, w) on the uniform path and (n, smallest
   window) on the profile path; solve spans carry the same. *)
let recorder = Telemetry.Recorder.default
let nid_hit = Telemetry.Recorder.intern recorder "oracle.hit"
let nid_miss = Telemetry.Recorder.intern recorder "oracle.miss"
let nid_solve = Telemetry.Recorder.intern recorder "oracle.solve"

let recorded_solve a b f =
  let rid = Telemetry.Recorder.begin_span recorder nid_solve a b in
  if rid = 0 then f ()
  else
    Fun.protect
      ~finally:(fun () -> Telemetry.Recorder.end_span recorder nid_solve rid)
      f

let validate_backend = function
  | Analytic -> ()
  | Sim_slotted { duration; replicates; _ }
  | Sim_spatial { duration; replicates; _ } ->
      if duration <= 0. then
        invalid_arg "Oracle.create: sim duration must be positive";
      if replicates < 1 then
        invalid_arg "Oracle.create: need replicates >= 1"

let create ?(telemetry = Telemetry.Registry.default) ?p_hn
    ?(backend = Analytic) (params : Dcf.Params.t) =
  validate_backend backend;
  (match p_hn with
  | Some f when f <= 0. || f > 1. ->
      invalid_arg "Oracle.create: p_hn must be in (0, 1]"
  | _ -> ());
  {
    params;
    p_hn;
    backend;
    telemetry;
    hits = Telemetry.Registry.counter telemetry "oracle.cache.hits";
    misses = Telemetry.Registry.counter telemetry "oracle.cache.misses";
    solves = Telemetry.Registry.counter telemetry "oracle.cache.solves";
    lock = Mutex.create ();
    uniform_memo = Hashtbl.create 64;
    profile_memo = Hashtbl.create 64;
  }

let analytic ?telemetry ?p_hn params = create ?telemetry ?p_hn params

let params t = t.params
let backend t = t.backend
let telemetry t = t.telemetry

let backend_name = function
  | Analytic -> "analytic"
  | Sim_slotted _ -> "slotted"
  | Sim_spatial _ -> "spatial"

(* Memo access.  Lookups and inserts hold the lock (oracles are shared
   across runner domains); backend solves run outside it, with a
   double-checked insert so a racing duplicate solve is harmless — both
   domains end up returning the same stored value. *)
let find_memo t tbl key =
  Mutex.lock t.lock;
  let found = Hashtbl.find_opt tbl key in
  Mutex.unlock t.lock;
  (match found with
  | Some _ -> Telemetry.Metric.incr t.hits
  | None -> Telemetry.Metric.incr t.misses);
  found

let memo_insert t tbl key value =
  Mutex.lock t.lock;
  let value =
    match Hashtbl.find_opt tbl key with
    | Some existing -> existing
    | None ->
        Hashtbl.add tbl key value;
        value
  in
  Mutex.unlock t.lock;
  value

(* Per-replicate RNG streams are derived from the sim seed and the content
   key of the evaluation (à la the experiment runner), so a measurement
   depends only on what is being measured — never on memo state or
   evaluation order. *)
let derived_seed ~seed key replicate =
  let rng = Prelude.Rng.of_key ~seed (key ^ "#" ^ string_of_int replicate) in
  Int64.to_int (Prelude.Rng.bits64 rng) land max_int

let replicate_estimates t ~key cws =
  match t.backend with
  | Analytic -> invalid_arg "Oracle.replicate_estimates: analytic backend"
  | Sim_slotted { duration; replicates; seed } ->
      List.init replicates (fun r ->
          Telemetry.Metric.incr t.solves;
          Netsim.Slotted.estimates ~telemetry:t.telemetry
            {
              params = t.params;
              cws;
              duration;
              seed = derived_seed ~seed key r;
            })
  | Sim_spatial { duration; replicates; seed } ->
      List.init replicates (fun r ->
          Telemetry.Metric.incr t.solves;
          Netsim.Spatial.clique_estimates ~telemetry:t.telemetry
            ~params:t.params ~cws ~duration
            ~seed:(derived_seed ~seed key r) ())

(* {2 Uniform profiles: the (n, w) fast path} *)

let uniform_key ~n ~w = Printf.sprintf "oracle.uniform|n=%d|w=%d" n w

let solve_uniform t ~n ~w =
  match t.backend with
  | Analytic ->
      (* Mirrors Dcf.Model.homogeneous operation for operation, so a
         memoized analytic oracle is bit-identical to direct model calls. *)
      let tau, p =
        Dcf.Solver.solve_homogeneous ~telemetry:t.telemetry t.params ~n ~w
      in
      let metrics = Dcf.Metrics.of_taus t.params (Array.make n tau) in
      Telemetry.Metric.incr t.solves;
      {
        tau;
        p;
        utility =
          Dcf.Utility.rate_of_node ?p_hn:t.p_hn t.params
            ~slot_time:metrics.slot_time ~tau ~p;
        throughput = metrics.throughput;
        slot_time = metrics.slot_time;
      }
  | Sim_slotted _ | Sim_spatial _ ->
      let reps =
        replicate_estimates t ~key:(uniform_key ~n ~w) (Array.make n w)
      in
      let tau = Prelude.Stats.create () in
      let p = Prelude.Stats.create () in
      let utility = Prelude.Stats.create () in
      let throughput = Prelude.Stats.create () in
      let slot_time = Prelude.Stats.create () in
      List.iter
        (fun per_node ->
          let total = ref 0. in
          Array.iter
            (fun (e : Netsim.Estimate.t) ->
              Prelude.Stats.add tau e.tau_hat;
              Prelude.Stats.add p e.p_hat;
              Prelude.Stats.add utility e.payoff_rate;
              Prelude.Stats.add slot_time e.slot_time;
              total := !total +. e.throughput)
            per_node;
          Prelude.Stats.add throughput !total)
        reps;
      {
        tau = Prelude.Stats.mean tau;
        p = Prelude.Stats.mean p;
        utility = Prelude.Stats.mean utility;
        throughput = Prelude.Stats.mean throughput;
        slot_time = Prelude.Stats.mean slot_time;
      }

let uniform t ~n ~w =
  if n < 1 then invalid_arg "Oracle.uniform: need n >= 1";
  if w < 1 then invalid_arg "Oracle.uniform: window must be >= 1";
  match find_memo t t.uniform_memo (n, w) with
  | Some view ->
      Telemetry.Recorder.instant recorder nid_hit n w;
      view
  | None ->
      Telemetry.Recorder.instant recorder nid_miss n w;
      memo_insert t t.uniform_memo (n, w)
        (recorded_solve n w (fun () -> solve_uniform t ~n ~w))

let payoff_uniform t ~n ~w = (uniform t ~n ~w).utility
let welfare_uniform t ~n ~w = float_of_int n *. payoff_uniform t ~n ~w

let tau_p t ~n ~w =
  let view = uniform t ~n ~w in
  (view.tau, view.p)

(* {2 Heterogeneous profiles: the canonical sorted-multiset path} *)

let profile_key sorted =
  "oracle.profile|"
  ^ String.concat ";" (List.map string_of_int (Array.to_list sorted))

(* Distinct windows of a sorted profile with the mean utility of each
   window class.  For the analytic backend the class members are already
   bit-identical (class-reduced solve), so the mean is the common value;
   for simulated backends the within-class averaging is what makes the
   oracle's permutation invariance exact. *)
let classes_of sorted utilities =
  let acc = ref [] in
  let start = ref 0 in
  let n = Array.length sorted in
  for i = 1 to n do
    if i = n || sorted.(i) <> sorted.(!start) then begin
      let k = i - !start in
      let total = ref 0. in
      for j = !start to i - 1 do
        total := !total +. utilities.(j)
      done;
      acc := (sorted.(!start), !total /. float_of_int k) :: !acc;
      start := i
    end
  done;
  Array.of_list (List.rev !acc)

let solve_profile t sorted =
  match t.backend with
  | Analytic ->
      let solved = Dcf.Model.solve_profile ?p_hn:t.p_hn t.params sorted in
      Telemetry.Metric.incr t.solves;
      classes_of sorted solved.Dcf.Model.utilities
  | Sim_slotted _ | Sim_spatial _ ->
      let reps = replicate_estimates t ~key:(profile_key sorted) sorted in
      let n = Array.length sorted in
      let means = Array.make n 0. in
      let count = float_of_int (List.length reps) in
      List.iter
        (fun per_node ->
          Array.iteri
            (fun i (e : Netsim.Estimate.t) ->
              means.(i) <- means.(i) +. (e.payoff_rate /. count))
            per_node)
        reps;
      classes_of sorted means

let class_utility classes w =
  let rec find i =
    if i >= Array.length classes then
      invalid_arg "Oracle.payoffs: window missing from canonical solve"
    else begin
      let w', u = classes.(i) in
      if w' = w then u else find (i + 1)
    end
  in
  find 0

let payoffs t (profile : Profile.t) =
  let n = Array.length profile in
  if n = 0 then invalid_arg "Oracle.payoffs: empty profile";
  Array.iter
    (fun w -> if w < 1 then invalid_arg "Oracle.payoffs: window must be >= 1")
    profile;
  if Profile.is_uniform profile then
    Array.make n (uniform t ~n ~w:profile.(0)).utility
  else begin
    let sorted = Array.copy profile in
    Array.sort compare sorted;
    let key = Array.to_list sorted in
    let classes =
      match find_memo t t.profile_memo key with
      | Some classes ->
          Telemetry.Recorder.instant recorder nid_hit n sorted.(0);
          classes
      | None ->
          Telemetry.Recorder.instant recorder nid_miss n sorted.(0);
          memo_insert t t.profile_memo key
            (recorded_solve n sorted.(0) (fun () -> solve_profile t sorted))
    in
    Array.map (fun w -> class_utility classes w) profile
  end
