type message = Start_search of int | Ready of int | Announce of int

type measurement = { w : int; payoff : float; stddev : float }

type trace = {
  result : int;
  messages : message list;
  measurements : measurement list;
}

type oracle = int -> float

let of_oracle oracle ~n = fun w -> Oracle.payoff_uniform oracle ~n ~w

let noisy_oracle rng ~rel_stddev oracle =
  if rel_stddev < 0. then invalid_arg "Search.noisy_oracle: negative stddev";
  fun w ->
    let u = oracle w in
    u +. Prelude.Rng.normal rng ~mean:0. ~stddev:(rel_stddev *. Float.abs u)

let run ?(telemetry = Telemetry.Registry.default) ?(w0 = 16) ?(probes = 1)
    ~cw_max oracle =
  if w0 < 1 || w0 > cw_max then invalid_arg "Search.run: w0 out of range";
  if probes < 1 then invalid_arg "Search.run: probes must be >= 1";
  let messages = ref [ Start_search w0 ] in
  let measurements = ref [] in
  let probe_counter = Telemetry.Registry.counter telemetry "search.probes" in
  let probe w =
    (* Averaging several oracle calls models a longer measurement interval
       t_m; with a noisy oracle this is what keeps the unit-step climb from
       stalling on the shallow part of the payoff curve.  The spread across
       probes is the coordinator's own noise estimate (0 with a single
       probe or an exact oracle). *)
    let acc = Prelude.Stats.create () in
    for _ = 1 to probes do
      Prelude.Stats.add acc (oracle w)
    done;
    let payoff = Prelude.Stats.mean acc in
    let stddev = Prelude.Stats.stddev acc in
    measurements := { w; payoff; stddev } :: !measurements;
    Telemetry.Metric.incr probe_counter;
    Telemetry.Registry.emit telemetry "search_probe" (fun () ->
        [
          ("w", Telemetry.Jsonx.Int w);
          ("payoff", Telemetry.Jsonx.Float payoff);
          ("stddev", Telemetry.Jsonx.Float stddev);
          ("probes", Telemetry.Jsonx.Int probes);
        ]);
    payoff
  in
  let step direction w = w + direction in
  (* Walk in one direction while the payoff improves; return the best
     window and payoff seen. *)
  let rec walk direction w best =
    let w' = step direction w in
    if w' < 1 || w' > cw_max then (w, best)
    else begin
      messages := Ready w' :: !messages;
      let payoff = probe w' in
      if payoff > best then walk direction w' payoff else (w, best)
    end
  in
  let u0 = probe w0 in
  let right_w, right_u = walk 1 w0 u0 in
  let result, _ =
    if right_w > w0 then (right_w, right_u) else walk (-1) w0 u0
  in
  messages := Announce result :: !messages;
  Telemetry.Registry.emit telemetry "search_result" (fun () ->
      [
        ("w", Telemetry.Jsonx.Int result);
        ("measurements", Telemetry.Jsonx.Int (List.length !measurements));
      ]);
  {
    result;
    messages = List.rev !messages;
    measurements = List.rev !measurements;
  }

let misreport_stage_payoffs oracle ~n ~w_star ~w_report =
  let stage w =
    Dcf.Utility.stage (Oracle.params oracle) (Oracle.payoff_uniform oracle ~n ~w)
  in
  let truthful = stage w_star in
  (* Under-report: TFT drags everyone (the coordinator included) to the
     reported window.  Over-report: the coordinator keeps operating on
     W_c★, the others follow the smallest observed window back to W_c★, so
     the long-run profile is (W_c★, …, W_c★) again. *)
  let misreport = if w_report < w_star then stage w_report else truthful in
  (truthful, misreport)

(* {2 Multi-knob NE search: per-dimension coordinate descent}

   With the strategy space widened to (CW, AIFS, TXOP, rate), the
   one-dimensional hill climb above no longer spans a player's options.
   The payoff stays unimodal along each axis (CW by Lemma 3; AIFS, TXOP
   and rate ranges are tiny), so a best response is found by coordinate
   descent — optimise one knob with the others pinned, sweep until a full
   pass changes nothing — and an equilibrium by Gauss–Seidel iterated
   best response over the players. *)

type ne_outcome = {
  equilibrium : Profile.t;
  rounds : int;
  converged : bool;
  evaluations : int;
}

(* Project a strategy into the space so the descent starts feasible. *)
let project (space : Dcf.Strategy_space.space) (s : Dcf.Strategy_space.t) =
  if Dcf.Strategy_space.mem space s then s
  else
    {
      Dcf.Strategy_space.cw =
        Stdlib.min space.cw_max (Stdlib.max space.cw_min s.cw);
      aifs = Stdlib.min space.aifs_max (Stdlib.max 0 s.aifs);
      txop_frames = Stdlib.min space.txop_max (Stdlib.max 1 s.txop_frames);
      rate =
        (if Array.exists (fun r -> r = s.rate) space.rates then s.rate
         else 1.0);
    }

let best_response_strategy ?evaluations ?(max_sweeps = 8) oracle
    ~(space : Dcf.Strategy_space.space) ~(profile : Profile.t) ~player =
  (match Dcf.Strategy_space.space_validate space with
  | Ok () -> ()
  | Error e -> invalid_arg ("Search.best_response_strategy: " ^ e));
  let n = Array.length profile in
  if player < 0 || player >= n then
    invalid_arg "Search.best_response_strategy: player out of range";
  if max_sweeps < 1 then
    invalid_arg "Search.best_response_strategy: need max_sweeps >= 1";
  let u_of (s : Dcf.Strategy_space.t) =
    Option.iter (fun r -> incr r) evaluations;
    let prof = Array.copy profile in
    prof.(player) <- s;
    (Oracle.payoffs_profile oracle prof).(player)
  in
  let pass (s : Dcf.Strategy_space.t) =
    let cw, _ =
      Numerics.Optimize.hill_climb_int_max ~start:s.cw
        (fun w -> u_of { s with cw = w })
        space.cw_min space.cw_max
    in
    let s = { s with Dcf.Strategy_space.cw } in
    let aifs, _ =
      Numerics.Optimize.exhaustive_int_max
        (fun a -> u_of { s with aifs = a })
        0 space.aifs_max
    in
    let s = { s with Dcf.Strategy_space.aifs } in
    let txop_frames, _ =
      Numerics.Optimize.exhaustive_int_max
        (fun k -> u_of { s with txop_frames = k })
        1 space.txop_max
    in
    let s = { s with Dcf.Strategy_space.txop_frames } in
    let best = ref (s.rate, u_of s) in
    Array.iter
      (fun r ->
        if r <> s.rate then begin
          let u = u_of { s with rate = r } in
          if u > snd !best then best := (r, u)
        end)
      space.rates;
    { s with Dcf.Strategy_space.rate = fst !best }
  in
  let rec go k s =
    let s' = pass s in
    if k <= 1 || Dcf.Strategy_space.equal s' s then s' else go (k - 1) s'
  in
  go max_sweeps (project space profile.(player))

let ne_search ?(telemetry = Telemetry.Registry.default) ?(max_rounds = 16)
    oracle ~(space : Dcf.Strategy_space.space) ~(initial : Profile.t) =
  (match Dcf.Strategy_space.space_validate space with
  | Ok () -> ()
  | Error e -> invalid_arg ("Search.ne_search: " ^ e));
  if max_rounds < 1 then invalid_arg "Search.ne_search: need max_rounds >= 1";
  let n = Array.length initial in
  if n = 0 then invalid_arg "Search.ne_search: empty profile";
  let profile = Array.map (project space) initial in
  let evaluations = ref 0 in
  let rounds = ref 0 in
  let converged = ref false in
  while (not !converged) && !rounds < max_rounds do
    incr rounds;
    let changed = ref false in
    for player = 0 to n - 1 do
      let br = best_response_strategy ~evaluations oracle ~space ~profile ~player in
      if not (Dcf.Strategy_space.equal br profile.(player)) then begin
        profile.(player) <- br;
        changed := true
      end
    done;
    if not !changed then converged := true
  done;
  Telemetry.Registry.emit telemetry "ne_search" (fun () ->
      [
        ("rounds", Telemetry.Jsonx.Int !rounds);
        ("converged", Telemetry.Jsonx.Bool !converged);
        ("evaluations", Telemetry.Jsonx.Int !evaluations);
        ("equilibrium", Profile.to_json profile);
      ]);
  {
    equilibrium = profile;
    rounds = !rounds;
    converged = !converged;
    evaluations = !evaluations;
  }
