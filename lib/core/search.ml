type message = Start_search of int | Ready of int | Announce of int

type measurement = { w : int; payoff : float; stddev : float }

type trace = {
  result : int;
  messages : message list;
  measurements : measurement list;
}

type oracle = int -> float

let of_oracle oracle ~n = fun w -> Oracle.payoff_uniform oracle ~n ~w

let noisy_oracle rng ~rel_stddev oracle =
  if rel_stddev < 0. then invalid_arg "Search.noisy_oracle: negative stddev";
  fun w ->
    let u = oracle w in
    u +. Prelude.Rng.normal rng ~mean:0. ~stddev:(rel_stddev *. Float.abs u)

let run ?(telemetry = Telemetry.Registry.default) ?(w0 = 16) ?(probes = 1)
    ~cw_max oracle =
  if w0 < 1 || w0 > cw_max then invalid_arg "Search.run: w0 out of range";
  if probes < 1 then invalid_arg "Search.run: probes must be >= 1";
  let messages = ref [ Start_search w0 ] in
  let measurements = ref [] in
  let probe_counter = Telemetry.Registry.counter telemetry "search.probes" in
  let probe w =
    (* Averaging several oracle calls models a longer measurement interval
       t_m; with a noisy oracle this is what keeps the unit-step climb from
       stalling on the shallow part of the payoff curve.  The spread across
       probes is the coordinator's own noise estimate (0 with a single
       probe or an exact oracle). *)
    let acc = Prelude.Stats.create () in
    for _ = 1 to probes do
      Prelude.Stats.add acc (oracle w)
    done;
    let payoff = Prelude.Stats.mean acc in
    let stddev = Prelude.Stats.stddev acc in
    measurements := { w; payoff; stddev } :: !measurements;
    Telemetry.Metric.incr probe_counter;
    Telemetry.Registry.emit telemetry "search_probe" (fun () ->
        [
          ("w", Telemetry.Jsonx.Int w);
          ("payoff", Telemetry.Jsonx.Float payoff);
          ("stddev", Telemetry.Jsonx.Float stddev);
          ("probes", Telemetry.Jsonx.Int probes);
        ]);
    payoff
  in
  let step direction w = w + direction in
  (* Walk in one direction while the payoff improves; return the best
     window and payoff seen. *)
  let rec walk direction w best =
    let w' = step direction w in
    if w' < 1 || w' > cw_max then (w, best)
    else begin
      messages := Ready w' :: !messages;
      let payoff = probe w' in
      if payoff > best then walk direction w' payoff else (w, best)
    end
  in
  let u0 = probe w0 in
  let right_w, right_u = walk 1 w0 u0 in
  let result, _ =
    if right_w > w0 then (right_w, right_u) else walk (-1) w0 u0
  in
  messages := Announce result :: !messages;
  Telemetry.Registry.emit telemetry "search_result" (fun () ->
      [
        ("w", Telemetry.Jsonx.Int result);
        ("measurements", Telemetry.Jsonx.Int (List.length !measurements));
      ]);
  {
    result;
    messages = List.rev !messages;
    measurements = List.rev !measurements;
  }

let misreport_stage_payoffs oracle ~n ~w_star ~w_report =
  let stage w =
    Dcf.Utility.stage (Oracle.params oracle) (Oracle.payoff_uniform oracle ~n ~w)
  in
  let truthful = stage w_star in
  (* Under-report: TFT drags everyone (the coordinator included) to the
     reported window.  Over-report: the coordinator keeps operating on
     W_c★, the others follow the smallest observed window back to W_c★, so
     the long-run profile is (W_c★, …, W_c★) again. *)
  let misreport = if w_report < w_star then stage w_report else truthful in
  (truthful, misreport)
