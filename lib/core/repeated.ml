type stage_record = {
  stage : int;
  cws : Profile.t;
  utilities : float array;
  welfare : float;
}

type outcome = {
  trace : stage_record array;
  converged_at : int option;
  final : Profile.t;
  discounted : float array;
}

let run ?(observer = Observer.perfect) ?payoffs (oracle : Oracle.t)
    ~strategies ~stages =
  let n = Array.length strategies in
  if n = 0 then invalid_arg "Repeated.run: no players";
  if stages < 1 then invalid_arg "Repeated.run: need at least one stage";
  let telemetry = Oracle.telemetry oracle in
  let params = Oracle.params oracle in
  let payoffs =
    match payoffs with Some f -> f | None -> Oracle.payoffs oracle
  in
  (* Per-player observation histories, most recent stage first. *)
  let histories = Array.make n [] in
  let trace = ref [] in
  let discounted = Array.make n 0. in
  let cws = ref (Array.map (fun (s : Strategy.t) -> s.initial) strategies) in
  for stage = 0 to stages - 1 do
    let played = Array.copy !cws in
    let utilities = payoffs played in
    if Array.length utilities <> n then
      invalid_arg "Repeated.run: payoff backend returned wrong arity";
    let welfare = Array.fold_left ( +. ) 0. utilities in
    trace := { stage; cws = Profile.of_cws played; utilities; welfare }
             :: !trace;
    Telemetry.Registry.emit telemetry "game_stage" (fun () ->
        [
          ("stage", Telemetry.Jsonx.Int stage);
          ( "cws",
            Telemetry.Jsonx.List
              (Array.to_list
                 (Array.map (fun w -> Telemetry.Jsonx.Int w) played)) );
          ( "utilities",
            Telemetry.Jsonx.List
              (Array.to_list
                 (Array.map (fun u -> Telemetry.Jsonx.Float u) utilities)) );
          ("welfare", Telemetry.Jsonx.Float welfare);
          ( "jain_fairness",
            Telemetry.Jsonx.Float (Prelude.Stats.jain_fairness utilities) );
        ]);
    let factor =
      params.discount ** float_of_int stage *. params.stage_duration
    in
    Array.iteri
      (fun i u -> discounted.(i) <- discounted.(i) +. (factor *. u))
      utilities;
    for i = 0 to n - 1 do
      histories.(i) <- Observer.observe observer ~me:i played :: histories.(i)
    done;
    if stage < stages - 1 then
      cws :=
        Array.mapi
          (fun i (s : Strategy.t) ->
            s.decide
              {
                Strategy.stage = stage + 1;
                me = i;
                my_window = played.(i);
                observed = histories.(i);
              })
          strategies
  done;
  let trace = Array.of_list (List.rev !trace) in
  let final = trace.(Array.length trace - 1).cws in
  let converged_at =
    let len = Array.length trace in
    if len < 2 then None
    else if not (Profile.equal trace.(len - 1).cws trace.(len - 2).cws) then None
    else begin
      (* First index of the maximal constant suffix. *)
      let rec back i =
        if i = 0 then 0
        else if Profile.equal trace.(i - 1).cws final then back (i - 1)
        else i
      in
      Some (back (len - 1))
    end
  in
  Telemetry.Registry.emit telemetry "game_summary" (fun () ->
      [
        ("stages", Telemetry.Jsonx.Int stages);
        ("players", Telemetry.Jsonx.Int n);
        ( "converged_at",
          match converged_at with
          | Some k -> Telemetry.Jsonx.Int k
          | None -> Telemetry.Jsonx.Null );
        ("final", Profile.to_json final);
        ( "discounted",
          Telemetry.Jsonx.List
            (Array.to_list
               (Array.map (fun u -> Telemetry.Jsonx.Float u) discounted)) );
      ]);
  { trace; converged_at; final; discounted }

let all_tft ~n ~initials =
  if Array.length initials <> n then
    invalid_arg "Repeated.all_tft: need one initial window per player";
  Array.map (fun w -> Strategy.tft ~initial:w) initials

let converged_window outcome =
  if Profile.is_uniform outcome.final then
    Some outcome.final.(0).Dcf.Strategy_space.cw
  else None

let pre_convergence_shortfall (params : Dcf.Params.t) outcome =
  match outcome.converged_at with
  | None -> None
  | Some t0 ->
      let n = Array.length outcome.final in
      let reference = outcome.trace.(Array.length outcome.trace - 1).utilities in
      let shortfall = Array.make n 0. in
      for k = 0 to t0 - 1 do
        let factor =
          (params.discount ** float_of_int k) *. params.stage_duration
        in
        Array.iteri
          (fun i u ->
            shortfall.(i) <-
              shortfall.(i) +. (factor *. (reference.(i) -. u)))
          outcome.trace.(k).utilities
      done;
      Some shortfall
