type decision_input = {
  stage : int;
  me : int;
  my_window : int;
  observed : int array list;
}

type t = { name : string; initial : int; decide : decision_input -> int }

let check_window w =
  if w < 1 then invalid_arg "Strategy: window must be >= 1"

let fixed w =
  check_window w;
  { name = Printf.sprintf "fixed(%d)" w; initial = w; decide = (fun _ -> w) }

let min_of a = Array.fold_left Stdlib.min a.(0) a

let tft ~initial =
  check_window initial;
  {
    name = "tft";
    initial;
    decide =
      (fun input ->
        match input.observed with
        | [] -> input.my_window
        | last :: _ -> min_of last);
  }

let gtft ~initial ~r0 ~beta =
  check_window initial;
  if r0 < 1 then invalid_arg "Strategy.gtft: r0 must be >= 1";
  if beta <= 0. || beta > 1. then
    invalid_arg "Strategy.gtft: beta must be in (0, 1]";
  {
    name = Printf.sprintf "gtft(r0=%d,beta=%g)" r0 beta;
    initial;
    decide =
      (fun input ->
        match input.observed with
        | [] -> input.my_window
        | (last :: _ : int array list) as all ->
            let window_stages = List.filteri (fun i _ -> i < r0) all in
            let k = List.length window_stages in
            let n = Array.length last in
            let averages =
              Array.init n (fun j ->
                  let total =
                    List.fold_left (fun acc st -> acc + st.(j)) 0 window_stages
                  in
                  float_of_int total /. float_of_int k)
            in
            let mine = averages.(input.me) in
            let someone_cheats =
              Array.exists (fun avg -> avg < beta *. mine) averages
            in
            if someone_cheats then min_of last else input.my_window);
  }

let short_sighted w =
  let base = fixed w in
  { base with name = Printf.sprintf "short_sighted(%d)" w }

let malicious w =
  let base = fixed w in
  { base with name = Printf.sprintf "malicious(%d)" w }

let grim_trigger ~initial ~beta =
  check_window initial;
  if beta <= 0. || beta > 1. then
    invalid_arg "Strategy.grim_trigger: beta must be in (0, 1]";
  let triggered = ref false in
  let harshest = ref initial in
  {
    name = Printf.sprintf "grim(beta=%g)" beta;
    initial;
    decide =
      (fun input ->
        match input.observed with
        | [] -> input.my_window
        | last :: _ ->
            let smallest = min_of last in
            if smallest < !harshest then harshest := smallest;
            if float_of_int smallest < beta *. float_of_int initial then
              triggered := true;
            if !triggered then !harshest else input.my_window);
  }

let best_response oracle ~initial =
  check_window initial;
  let cw_max = (Oracle.params oracle).cw_max in
  {
    name = "best_response";
    initial;
    decide =
      (fun input ->
        match input.observed with
        | [] -> input.my_window
        | last :: _ ->
            let cws = Array.copy last in
            let stage_payoff w =
              cws.(input.me) <- w;
              (Oracle.payoffs oracle cws).(input.me)
            in
            (* The stage payoff is unimodal in the own window (concavity of
               U_i in τ_i, Lemma 2); hill-climb from the current window. *)
            fst
              (Numerics.Optimize.hill_climb_int_max ~start:input.my_window
                 stage_payoff 1 cw_max));
  }

let pp ppf t = Format.pp_print_string ppf t.name
