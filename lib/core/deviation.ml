type stage_payoffs = {
  deviant : float;
  conformer : float;
  uniform_w : float;
  uniform_star : float;
}

let stage_payoffs oracle ~n ~w_star ~w_dev =
  let params = Oracle.params oracle in
  let stage u = Dcf.Utility.stage params u in
  let during = Oracle.payoffs_profile oracle (Profile.with_deviant ~n ~w:w_star ~w_dev) in
  {
    deviant = stage during.(0);
    conformer = stage (if n > 1 then during.(1) else during.(0));
    uniform_w = stage (Oracle.payoff_uniform oracle ~n ~w:w_dev);
    uniform_star = stage (Oracle.payoff_uniform oracle ~n ~w:w_star);
  }

let check_delta delta_s =
  if delta_s < 0. || delta_s >= 1. then
    invalid_arg "Deviation: delta_s must be in [0, 1)"

let deviant_total oracle ~n ~w_star ~w_dev ~delta_s ~react_stages =
  check_delta delta_s;
  if react_stages < 1 then invalid_arg "Deviation: react_stages must be >= 1";
  let p = stage_payoffs oracle ~n ~w_star ~w_dev in
  let dm = delta_s ** float_of_int react_stages in
  (((1. -. dm) *. p.deviant) +. (dm *. p.uniform_w)) /. (1. -. delta_s)

let honest_total oracle ~n ~w_star ~delta_s =
  check_delta delta_s;
  let u = Oracle.payoff_uniform oracle ~n ~w:w_star in
  Dcf.Utility.stage (Oracle.params oracle) u /. (1. -. delta_s)

let best_deviation oracle ~n ~w_star ~delta_s ~react_stages =
  Numerics.Optimize.exhaustive_int_max
    (fun w_dev -> deviant_total oracle ~n ~w_star ~w_dev ~delta_s ~react_stages)
    1 w_star

let critical_discount ?(tol = 1e-6) oracle ~n ~w_star ~react_stages =
  if w_star <= 1 then 0.
  else begin
    (* Strict deviations only: W_s = W_c★ trivially ties with honesty, so
       including it would keep the gain non-negative forever.  Both totals
       carry the same 1/(1−δ_s) factor, so compare the numerators — the
       strict gain is decreasing in δ_s (free-riding stages weigh less as
       patience grows) and crosses zero at the critical patience. *)
    let gain delta_s =
      let _, best =
        Numerics.Optimize.exhaustive_int_max
          (fun w_dev ->
            deviant_total oracle ~n ~w_star ~w_dev ~delta_s ~react_stages)
          1 (w_star - 1)
      in
      (best -. honest_total oracle ~n ~w_star ~delta_s) *. (1. -. delta_s)
    in
    if gain 0. <= 0. then 0.
    else if gain (1. -. tol) > 0. then 1.
    else Numerics.Roots.bisect ~tol gain 0. (1. -. tol)
  end

type coalition_stage = {
  member : float;
  outsider : float;
  punished : float;
  honest : float;
}

let coalition_stage_payoffs oracle ~n ~w_star ~k ~w_dev =
  if k < 1 || k >= n then
    invalid_arg "Deviation.coalition_stage_payoffs: need 1 <= k < n";
  let stage u = Dcf.Utility.stage (Oracle.params oracle) u in
  let during =
    Oracle.payoffs oracle
      (Array.init n (fun i -> if i < k then w_dev else w_star))
  in
  {
    member = stage during.(0);
    outsider = stage during.(n - 1);
    punished = stage (Oracle.payoff_uniform oracle ~n ~w:w_dev);
    honest = stage (Oracle.payoff_uniform oracle ~n ~w:w_star);
  }

let coalition_member_total oracle ~n ~w_star ~k ~w_dev ~delta_s ~react_stages =
  check_delta delta_s;
  if react_stages < 1 then invalid_arg "Deviation: react_stages must be >= 1";
  let p = coalition_stage_payoffs oracle ~n ~w_star ~k ~w_dev in
  let dm = delta_s ** float_of_int react_stages in
  (((1. -. dm) *. p.member) +. (dm *. p.punished)) /. (1. -. delta_s)

let coalition_gain oracle ~n ~w_star ~k ~w_dev ~delta_s ~react_stages =
  coalition_member_total oracle ~n ~w_star ~k ~w_dev ~delta_s ~react_stages
  -. honest_total oracle ~n ~w_star ~delta_s

let critical_discount_for ?(tol = 1e-9) oracle ~n ~w_star ~w_dev ~react_stages =
  let gain delta_s =
    (deviant_total oracle ~n ~w_star ~w_dev ~delta_s ~react_stages
    -. honest_total oracle ~n ~w_star ~delta_s)
    *. (1. -. delta_s)
  in
  if gain 0. <= 0. then 0.
  else if gain (1. -. 1e-12) > 0. then 1.
  else Numerics.Roots.bisect ~tol gain 0. (1. -. 1e-12)

let malicious_welfare oracle ~n ~w_mal = Oracle.welfare_uniform oracle ~n ~w:w_mal
