(** Observation of other players' contention windows.

    TFT requires each player to measure every other player's CW (the paper
    cites Kyasanur & Vaidya [3] for how: in promiscuous mode a node can
    count the idle slots a neighbour waits between transmissions, whose mean
    is (W−1)/2 at backoff stage 0).  This module provides the observation
    channel of the repeated-game engine: perfect, multiplicatively noisy,
    or a per-stage sampling model of the backoff estimator.

    A player always observes its own window exactly. *)

type t

val name : t -> string

val perfect : t
(** Every window observed exactly. *)

val noisy : rng:Prelude.Rng.t -> rel_stddev:float -> t
(** Each foreign window is perturbed by Gaussian relative noise with the
    given standard deviation, rounded, and clamped to ≥ 1. *)

val sampling : rng:Prelude.Rng.t -> samples_per_stage:int -> t
(** Backoff-counting estimator: for a neighbour with true window W the
    observer sees [samples_per_stage ≥ 1] uniform draws on [0, W−1] and
    reports Ŵ = round(2·mean + 1), clamped to ≥ 1.  Standard error decays
    as W/√(12·k), so longer stages (more observed transmissions) give
    sharper estimates — the quantitative motivation for GTFT's tolerance. *)

val observe : t -> me:int -> int array -> int array
(** [observe t ~me cws] is the observation vector reported to player [me]
    about the true profile [cws].  Element [me] is exact. *)

val estimate_error_stddev : w:int -> samples:int -> float
(** Analytic standard deviation of the {!sampling} estimator's error:
    √(W²−1)/√(3·k)… specifically 2·σ_backoff/√k with σ²_backoff =
    (W²−1)/12.  Used by tests and by the GTFT tolerance ablation. *)

(** {2 Multi-knob estimators}

    The (CW, AIFS, TXOP, rate) strategy space widens what a promiscuous
    observer must measure.  AIFS deviation rides on the same idle-slot
    counting as the window estimator; TXOP deviation is deterministic per
    observed burst and only needs coverage. *)

val aifs_estimate :
  rng:Prelude.Rng.t -> w:int -> aifs:int -> samples:int -> float
(** One empirical run of the AIFS estimator: the observer measures the
    idle gap before each of [samples ≥ 1] transmissions of a neighbour
    with true window [w] and AIFS [aifs], then subtracts the known
    backoff mean (W−1)/2.  Unbiased for the true AIFS. *)

val aifs_estimate_stddev : w:int -> samples:int -> float
(** Analytic standard deviation of {!aifs_estimate}:
    √((W²−1)/12k) — half the rate constant of the window estimator,
    because the backoff mean is subtracted rather than doubled. *)

val txop_longest_burst :
  rng:Prelude.Rng.t -> txop:int -> p_observe:float -> accesses:int -> int
(** Longest burst an observer catching each channel access independently
    with probability [p_observe] sees over [accesses ≥ 1] accesses of a
    neighbour bursting [txop ≥ 1] frames per access; [0] if it caught
    none.  Burst length is deterministic, so a single observed access
    reveals the neighbour's TXOP exactly. *)
