(** Nash-equilibrium analysis of the single-hop game G (Sec. V).

    Theorem 2: every uniform profile (W, …, W) with W_c⁰ ≤ W ≤ W_c* is a NE,
    where W_c* maximises the common payoff u(W, …, W) (Lemma 3 proves the
    payoff unimodal in the common window) and W_c⁰ is the break-even window
    below which the stage payoff turns negative.  NE refinement (Sec. V.B)
    singles out (W_c★, …, W_c★) as the unique Pareto-optimal,
    welfare-maximising NE.

    Every payoff evaluation goes through the {!Oracle}, so the analysis
    runs unchanged on the analytic model or either packet-level simulator,
    and the repeated window probes of the binary/ternary searches are memo
    hits after the first visit. *)

val efficient_cw : Oracle.t -> n:int -> int
(** W_c*: the window maximising {!Oracle.payoff_uniform} over the strategy
    space [1, cw_max], by ternary search on the unimodal curve.  Every
    candidate evaluation emits a ["cw_candidate"] event and the optimum an
    ["efficient_cw"] event on the oracle's registry. *)

val tau_star : Dcf.Params.t -> n:int -> float
(** The Appendix-B optimality condition's root: the τ solving
    Q(τ) = (1−τ)^n·σ + (1 − (1−τ)^n − nτ)·Tc = 0.  This is the e-neglected
    continuous optimum; {!efficient_cw} maximises the exact utility.
    Exposed so tests can confirm Q is monotone with a unique root in (0,1)
    (Lemma 3) and that it predicts {!efficient_cw} well when e ≪ g.
    Closed-form in the parameters — no payoff evaluation, hence no oracle. *)

val cw_of_tau : Oracle.t -> n:int -> float -> int
(** Invert the symmetric model: the integer window whose homogeneous
    fixed-point τ is closest to the given target.  Monotone bisection on
    W. *)

val break_even_cw : Oracle.t -> n:int -> int
(** W_c⁰: the smallest window with positive uniform payoff, found by
    binary search on the sign change (payoff is increasing below W_c★).
    1 if the payoff is positive on the whole range (e.g. when e = 0, or
    when n = 1 so there are no collisions). *)

type ne_set = { w_lo : int; w_hi : int }
(** The inclusive NE range of Theorem 2. *)

val ne_set : Oracle.t -> n:int -> ne_set

val is_ne : Oracle.t -> n:int -> w:int -> bool

val is_efficient : Oracle.t -> n:int -> w:int -> bool
(** Whether (w, …, w) survives the refinement of Sec. V.B, i.e.
    [w = efficient_cw]. *)

val social_welfare : Oracle.t -> n:int -> w:int -> float
(** n·u(w, …, w): the global payoff rate. *)

val robust_range : Oracle.t -> n:int -> fraction:float -> int * int
(** [(lo, hi)]: the contiguous window range around W_c* whose uniform
    payoff stays within [fraction] (e.g. 0.95) of the optimum — the
    robustness the paper highlights below Figure 3.  [fraction] must be in
    (0, 1]. *)

val unilateral_gain : Oracle.t -> n:int -> w:int -> w_dev:int -> float
(** Stage-payoff gain u_dev − u_conf of a single deviant playing [w_dev]
    against (w, …, w), evaluated on the deviant profile through the
    oracle.  Positive for w_dev < w (Lemma 4 case 2): the deviation is
    profitable for one stage, which is why TFT punishment is what sustains
    the NE.  Requires n ≥ 2. *)
