let check_common ~samples ~beta =
  if samples < 1 then invalid_arg "Detection: samples must be >= 1";
  if beta <= 0. || beta > 1. then invalid_arg "Detection: beta must be in (0, 1]"

let estimator_stddev ~w_true ~samples =
  let wf = float_of_int w_true in
  2. *. sqrt (((wf *. wf) -. 1.) /. 12. /. float_of_int samples)

let flag_rate ~w_true ~w_exp ~samples ~beta =
  check_common ~samples ~beta;
  if w_true < 1 || w_exp < 1 then invalid_arg "Detection: windows must be >= 1";
  let threshold = beta *. float_of_int w_exp in
  let stddev = estimator_stddev ~w_true ~samples in
  if stddev = 0. then (* w_true = 1: the estimator is exact *)
    if float_of_int w_true < threshold then 1. else 0.
  else
    Numerics.Special.normal_cdf ~mean:(float_of_int w_true) ~stddev threshold

let false_positive_rate ~w_exp ~samples ~beta =
  flag_rate ~w_true:w_exp ~w_exp ~samples ~beta

let detection_rate ~w_true ~w_exp ~samples ~beta =
  flag_rate ~w_true ~w_exp ~samples ~beta

let required_samples ~w_exp ~beta ~max_fp =
  check_common ~samples:1 ~beta;
  if max_fp <= 0. || max_fp >= 0.5 then
    invalid_arg "Detection.required_samples: max_fp must be in (0, 0.5)";
  if beta >= 1. then invalid_arg "Detection.required_samples: beta must be < 1";
  (* FP = Φ((β−1)·W/σ_1·√k) ≤ max_fp  ⇔  √k ≥ z_{max_fp}·σ_1/((β−1)·W),
     with σ_1 the single-sample stddev. *)
  let z = Numerics.Special.normal_quantile max_fp in
  let wf = float_of_int w_exp in
  let sigma1 = 2. *. sqrt (((wf *. wf) -. 1.) /. 12.) in
  let root = z *. sigma1 /. ((beta -. 1.) *. wf) in
  let k = int_of_float (Float.ceil (root *. root)) in
  (* The normal approximation can be off by one either way near the
     boundary; walk to the exact integer threshold. *)
  let ok k = k >= 1 && false_positive_rate ~w_exp ~samples:k ~beta <= max_fp in
  let rec settle k = if k > 1 && ok (k - 1) then settle (k - 1) else k in
  let rec grow k = if ok k then k else grow (k + 1) in
  settle (grow (Stdlib.max 1 k))

type design = {
  beta : float;
  samples_per_stage : int;
  r0 : int;
  false_positive : float;
  detection : float;
}

let design_gtft ~w_exp ~cheat_factor ~per_stage ~max_fp ~min_detection =
  if cheat_factor <= 0. || cheat_factor >= 1. then
    invalid_arg "Detection.design_gtft: cheat_factor must be in (0, 1)";
  if per_stage < 1 then invalid_arg "Detection.design_gtft: per_stage >= 1";
  let w_cheat = Stdlib.max 1 (int_of_float (cheat_factor *. float_of_int w_exp)) in
  let betas = List.init 18 (fun i -> 0.975 -. (0.025 *. float_of_int i)) in
  let try_beta beta =
    if beta <= cheat_factor then None
    else begin
      let samples = required_samples ~w_exp ~beta ~max_fp in
      let r0 = (samples + per_stage - 1) / per_stage in
      if r0 > 64 then None
      else begin
        let effective = r0 * per_stage in
        let detection =
          detection_rate ~w_true:w_cheat ~w_exp ~samples:effective ~beta
        in
        if detection >= min_detection then
          Some
            {
              beta;
              samples_per_stage = samples;
              r0;
              false_positive =
                false_positive_rate ~w_exp ~samples:effective ~beta;
              detection;
            }
        else None
      end
    end
  in
  (* Among the feasible tolerances prefer the cheapest (smallest averaging
     depth r0), tie-broken by the larger beta (gentler punishment trigger
     margins for the cheater to evade, but cheaper honest operation). *)
  List.filter_map try_beta betas
  |> List.fold_left
       (fun acc d ->
         match acc with
         | Some best
           when best.r0 < d.r0 || (best.r0 = d.r0 && best.beta >= d.beta) ->
             acc
         | _ -> Some d)
       None

let empirical_rates ~rng ~trials ~w_true ~w_exp ~samples ~beta =
  check_common ~samples ~beta;
  if trials < 1 then invalid_arg "Detection.empirical_rates: trials >= 1";
  let threshold = beta *. float_of_int w_exp in
  let flagged = ref 0 in
  for _ = 1 to trials do
    let total = ref 0 in
    for _ = 1 to samples do
      total := !total + Prelude.Rng.int rng w_true
    done;
    let estimate = (2. *. float_of_int !total /. float_of_int samples) +. 1. in
    if estimate < threshold then incr flagged
  done;
  float_of_int !flagged /. float_of_int trials

(* {2 Multi-knob deviation detection} *)

let aifs_flag_rate ~w ~aifs_true ~aifs_exp ~samples ~delta =
  if w < 1 then invalid_arg "Detection: window must be >= 1";
  if aifs_true < 0 || aifs_exp < 0 then
    invalid_arg "Detection: aifs must be >= 0";
  if samples < 1 then invalid_arg "Detection: samples must be >= 1";
  if delta < 0. then invalid_arg "Detection: delta must be >= 0";
  let threshold = float_of_int aifs_exp -. delta in
  let wf = float_of_int w in
  let stddev = sqrt (((wf *. wf) -. 1.) /. 12. /. float_of_int samples) in
  if stddev = 0. then (* w = 1: the idle gap is exactly the AIFS *)
    if float_of_int aifs_true < threshold then 1. else 0.
  else
    Numerics.Special.normal_cdf ~mean:(float_of_int aifs_true) ~stddev threshold

let aifs_false_positive_rate ~w ~aifs_exp ~samples ~delta =
  aifs_flag_rate ~w ~aifs_true:aifs_exp ~aifs_exp ~samples ~delta

let aifs_detection_rate ~w ~aifs_true ~aifs_exp ~samples ~delta =
  aifs_flag_rate ~w ~aifs_true ~aifs_exp ~samples ~delta

let txop_detection_rate ~txop_true ~txop_exp ~p_observe ~accesses =
  if txop_true < 1 || txop_exp < 1 then invalid_arg "Detection: txop >= 1";
  if p_observe < 0. || p_observe > 1. then
    invalid_arg "Detection: p_observe in [0, 1]";
  if accesses < 1 then invalid_arg "Detection: accesses >= 1";
  if txop_true <= txop_exp then 0.
  else 1. -. ((1. -. p_observe) ** float_of_int accesses)

let empirical_aifs_rate ~rng ~trials ~w ~aifs_true ~aifs_exp ~samples ~delta =
  if trials < 1 then invalid_arg "Detection.empirical_aifs_rate: trials >= 1";
  let threshold = float_of_int aifs_exp -. delta in
  let flagged = ref 0 in
  for _ = 1 to trials do
    let estimate = Observer.aifs_estimate ~rng ~w ~aifs:aifs_true ~samples in
    if estimate < threshold then incr flagged
  done;
  float_of_int !flagged /. float_of_int trials

let punishment_stages ~gain ~loss ~discount =
  if gain < 0. then invalid_arg "Detection.punishment_stages: gain >= 0";
  if loss <= 0. then invalid_arg "Detection.punishment_stages: loss > 0";
  if discount <= 0. || discount >= 1. then
    invalid_arg "Detection.punishment_stages: discount in (0, 1)";
  if gain = 0. then Some 0
  else if discount /. (1. -. discount) *. loss <= gain then None
  else begin
    (* Σ_{k=1..L} δ^k·loss ≥ gain  ⇔  δ·(1−δ^L)/(1−δ) ≥ gain/loss.
       Closed form, then settled to the exact integer. *)
    let target = gain /. loss in
    let enough l =
      discount *. (1. -. (discount ** float_of_int l)) /. (1. -. discount)
      >= target
    in
    let guess =
      let inner = 1. -. (target *. (1. -. discount) /. discount) in
      if inner <= 0. then 1
      else Stdlib.max 1 (int_of_float (Float.ceil (log inner /. log discount)))
    in
    let rec settle l = if l > 1 && enough (l - 1) then settle (l - 1) else l in
    let rec grow l = if enough l then l else grow (l + 1) in
    Some (settle (grow guess))
  end
