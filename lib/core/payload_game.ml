type config = {
  oracle : Oracle.t;
  w : int;
  l_min : int;
  l_max : int;
  gamma : float;
}

let validate cfg =
  if cfg.w < 1 then invalid_arg "Payload_game: window must be >= 1";
  if cfg.l_min < 1 || cfg.l_max < cfg.l_min then
    invalid_arg "Payload_game: need 1 <= l_min <= l_max";
  if cfg.gamma < 0. then invalid_arg "Payload_game: gamma must be >= 0"

(* All nodes share the window, hence a common tau and p. *)
let channel cfg payloads =
  let n = Array.length payloads in
  let params = Oracle.params cfg.oracle in
  let tau, p = Oracle.tau_p cfg.oracle ~n ~w:cfg.w in
  let timings =
    Array.map
      (fun bits ->
        Dcf.Hetero.node_timing params ~payload_bits:bits
          ~bit_rate:params.bit_rate)
      payloads
  in
  let hetero =
    Dcf.Hetero.of_profile ~sigma:params.sigma ~taus:(Array.make n tau)
      ~ts:(Array.map (fun (ts, _, _) -> ts) timings)
      ~tc:(Array.map (fun (_, tc, _) -> tc) timings)
      ~payload_time:(Array.map (fun (_, _, pt) -> pt) timings)
  in
  (tau, p, hetero)

let utilities cfg payloads =
  validate cfg;
  let n = Array.length payloads in
  if n = 0 then invalid_arg "Payload_game.utilities: empty profile";
  Array.iter
    (fun l ->
      if l < cfg.l_min || l > cfg.l_max then
        invalid_arg "Payload_game.utilities: payload out of range")
    payloads;
  let tau, p, hetero = channel cfg payloads in
  let params = Oracle.params cfg.oracle in
  let l_ref = float_of_int params.payload_bits in
  Array.map
    (fun bits ->
      (* A delivered packet is worth g scaled by its payload and discounted
         by the node's mean access delay (cf. Delay_game). *)
      let gain = params.gain *. float_of_int bits /. l_ref in
      let delay_factor =
        if cfg.gamma = 0. then 1.
        else begin
          let mean_delay = hetero.slot_time /. (tau *. (1. -. p)) in
          1. /. (1. +. (cfg.gamma *. mean_delay))
        end
      in
      tau *. (((1. -. p) *. gain *. delay_factor) -. params.cost)
      /. hetero.slot_time)
    payloads

let candidate_grid cfg =
  let span = cfg.l_max - cfg.l_min in
  let count = Stdlib.min 64 (span + 1) in
  if count = 1 then [ cfg.l_min ]
  else
    List.init count (fun i ->
        cfg.l_min + (i * span / (count - 1)))
    |> List.sort_uniq compare

let payoff_of cfg payloads i bits =
  let trial = Array.copy payloads in
  trial.(i) <- bits;
  (utilities cfg trial).(i)

let best_response cfg ~payloads ~i =
  validate cfg;
  if i < 0 || i >= Array.length payloads then
    invalid_arg "Payload_game.best_response: index out of range";
  let best = ref cfg.l_min and best_u = ref neg_infinity in
  List.iter
    (fun bits ->
      let u = payoff_of cfg payloads i bits in
      if u > !best_u then begin
        best_u := u;
        best := bits
      end)
    (candidate_grid cfg);
  (* Local refinement around the best grid point. *)
  let step = Stdlib.max 1 ((cfg.l_max - cfg.l_min) / 63) in
  let refined, _ =
    Numerics.Optimize.hill_climb_int_max ~start:!best
      (payoff_of cfg payloads i)
      (Stdlib.max cfg.l_min (!best - step))
      (Stdlib.min cfg.l_max (!best + step))
  in
  refined

let best_response_dynamics ?(max_rounds = 20) cfg start =
  validate cfg;
  let current = ref (Array.copy start) in
  let rec go round =
    if round >= max_rounds then (!current, round, false)
    else begin
      let next =
        Array.mapi (fun i _ -> best_response cfg ~payloads:!current ~i) !current
      in
      if next = !current then (!current, round, true)
      else begin
        current := next;
        go (round + 1)
      end
    end
  in
  go 0

let symmetric_optimum cfg ~n =
  validate cfg;
  if n < 1 then invalid_arg "Payload_game.symmetric_optimum: need n >= 1";
  (* In the symmetric profile everyone shares the payoff, so a 1-D search
     over the common payload suffices. *)
  let payoff bits = (utilities cfg (Array.make n bits)).(0) in
  let best = ref cfg.l_min and best_u = ref neg_infinity in
  List.iter
    (fun bits ->
      let u = payoff bits in
      if u > !best_u then begin
        best_u := u;
        best := bits
      end)
    (candidate_grid cfg);
  !best

type rate_anomaly = {
  rates : float array;
  throughputs : float array;
  airtime_shares : float array;
}

let rate_anomaly oracle ~w ~rates =
  let params = Oracle.params oracle in
  let n = Array.length rates in
  if n = 0 then invalid_arg "Payload_game.rate_anomaly: empty network";
  Array.iter
    (fun r ->
      if r <= 0. then invalid_arg "Payload_game.rate_anomaly: rate must be positive")
    rates;
  let tau, _p = Oracle.tau_p oracle ~n ~w in
  let timings =
    Array.map
      (fun rate ->
        Dcf.Hetero.node_timing params ~payload_bits:params.payload_bits
          ~bit_rate:rate)
      rates
  in
  let ts = Array.map (fun (t, _, _) -> t) timings in
  let hetero =
    Dcf.Hetero.of_profile ~sigma:params.sigma ~taus:(Array.make n tau) ~ts
      ~tc:(Array.map (fun (_, t, _) -> t) timings)
      ~payload_time:(Array.map (fun (_, _, t) -> t) timings)
  in
  let busy_time =
    Array.fold_left ( +. ) 0.
      (Array.init n (fun i -> hetero.per_node_success.(i) *. ts.(i)))
  in
  {
    rates;
    throughputs = hetero.per_node_goodput;
    airtime_shares =
      Array.init n (fun i ->
          if busy_time = 0. then 0.
          else hetero.per_node_success.(i) *. ts.(i) /. busy_time);
  }
