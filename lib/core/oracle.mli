(** The unified payoff oracle: one memoized, backend-pluggable evaluation
    path for every payoff the game layer needs.

    Every analysis in this library ultimately asks the same two questions —
    "what does each node earn under this CW profile?" and "what are τ and p
    at this uniform window?" — and before this module each game module
    answered them with its own private helper calling
    {!Dcf.Model.homogeneous} or {!Dcf.Solver.solve_homogeneous} directly,
    hard-wiring the analytic backend.  An {!t} bundles the parameter set,
    the evaluation backend (closed-form/fixed-point analytic model, or
    packet-level measurement on either simulator) and a profile-keyed memo
    table, so the backend is chosen once per experiment and redundant
    fixed-point solves (repeated games and NE searches revisit the same
    profiles across stages and probes) become cache hits.

    {2 Memoization}

    Two tables, both protected by a mutex (oracles are shared across the
    experiment runner's domains):

    - a [(n, w)] fast path for uniform profiles, backed by the scalar
      Brent solve (analytic) or an n-node simulation;
    - a canonical-profile table for heterogeneous profiles, keyed by the
      {e sorted} multiset of per-node windows.  Sorting is sound because
      payoffs are permutation-invariant in the profile — nodes are
      distinguished only by their window (the qcheck suite probes this
      property on the raw solver) — and the canonical entry answers every
      permutation of the same multiset.  The analytic backend evaluates
      profiles through {!Dcf.Model.solve_profile} (class-reduced, so equal
      windows get bit-identical payoffs); the simulated backends average
      replicate runs and then average {e within} each window class, making
      permutation invariance exact by construction there too.

    Memo hits return the stored floats unchanged, so a hit is bit-identical
    to the cold solve that populated it.

    {2 Persistence}

    An oracle may be backed by a {!Store.t}: on a memo miss the store is
    consulted before solving, and cold solves are written through, so
    equilibrium grids survive across processes and runs.  Store keys embed
    the full evaluation identity (parameter fingerprint, backend with its
    sim configuration, p_hn), and values round-trip bit-faithfully, so a
    store hit is bit-identical to the solve that produced it — across
    process boundaries.

    Keys use schema {b v2} ([oracle|v2|…]): profile rows address the full
    (CW, AIFS, TXOP, rate) strategy multiset, with degenerate (CW-only)
    strategies keeping the historical bare-window rendering.  A store
    containing any legacy [oracle|v1|…] row is refused at {!create} with
    {!Store.Corrupt}: v1 rows keyed bare windows and cannot distinguish a
    CW from the strategies projecting onto it, so reinterpreting them
    would silently alias distinct strategies.

    With [warm_start], analytic solves on a store/memo miss are seeded from
    the nearest already-solved (n, w) neighbour (loaded from the store at
    open and accumulated since), cutting iteration counts.  Warm-started
    answers agree with cold solves at {e tolerance} level, not bit level,
    so [warm_start] defaults to off; the conformance suite anchors the gap.

    {2 Telemetry}

    Counters on the oracle's registry (these replace the repeated-game
    engine's bespoke [repeated.payoff_cache.hits]/[misses]):

    - ["oracle.cache.hits"] / ["oracle.cache.misses"] — memo table
      outcomes, one per query;
    - ["oracle.cache.solves"] — backend invocations: one per analytic
      solve, one per simulation replicate (so with [replicates > 1],
      solves exceeds misses);
    - ["oracle.store.hits"] / ["oracle.store.misses"] — persistent-store
      outcomes, counted only on memo misses of a store-backed oracle;
    - ["oracle.warmstart.used"] — solves that started from a neighbour's τ;
    - ["oracle.solve.iterations.warm"] / [".cold"] — iteration-count
      histograms of warm-started vs cold analytic solves (the warm-start
      saving, measured). *)

type sim_config = {
  duration : float;   (** simulated seconds per replicate *)
  replicates : int;   (** independent runs averaged per evaluation, ≥ 1 *)
  seed : int;         (** master seed; per-replicate streams are derived *)
}
(** Configuration of a simulated backend.  Each evaluation derives one RNG
    stream per replicate with {!Prelude.Rng.of_key} from [(seed, content
    key # replicate)], where the content key encodes the profile being
    measured — so results are independent of evaluation order and memo
    state, and two oracles with equal configs agree exactly. *)

type backend =
  | Analytic
      (** The Bianchi fixed-point model: scalar Brent solve for uniform
          profiles, class-reduced Picard iteration for heterogeneous ones.
          Exact and fast; the default. *)
  | Sim_slotted of sim_config
      (** Packet-level measurement on {!Netsim.Slotted} (virtual-slot
          accurate, single-hop). *)
  | Sim_spatial of sim_config
      (** Packet-level measurement on {!Netsim.Spatial} over a clique
          topology (σ-quantised; τ/p estimates are coarse, payoffs exact
          counters).  Prefer n ≥ 2: a single isolated node never
          transmits. *)

type uniform_view = {
  tau : float;        (** per-node transmission probability (estimate) *)
  p : float;          (** conditional collision probability (estimate) *)
  utility : float;    (** per-node payoff rate u *)
  throughput : float; (** network throughput S *)
  slot_time : float;  (** mean virtual slot length T̄slot, s *)
}
(** Everything the game layer consumes about a uniform profile (w, …, w). *)

type tier =
  | Memo   (** answered from the in-process memo, bit-identical *)
  | Store  (** answered from the persistent store, bit-identical *)
  | Cold   (** solved by the backend (and written through) *)
(** Where an answer came from — the serving layer's per-request
    accounting.  [Memo] and [Store] answers are bit-identical to the cold
    solve that originally produced them. *)

val tier_name : tier -> string
(** ["memo"], ["store"] or ["cold"] — the wire vocabulary of the serving
    layer's replies and counters. *)

exception Non_converged of string
(** Raised (instead of returning a fabricated answer) when the analytic
    fixed point fails to converge within its iteration budget.  Raising
    happens {e before} any memo insert or store write, so non-converged
    solves can never be memoized, persisted, or served; each refusal bumps
    the ["oracle.solve.nonconverged"] counter.  The serving layer maps
    this to an error reply. *)

type t

val create :
  ?telemetry:Telemetry.Registry.t ->
  ?p_hn:float -> ?backend:backend ->
  ?store:Store.t -> ?warm_start:bool -> ?solver_max_iter:int ->
  Dcf.Params.t -> t
(** [create params] builds an oracle with an empty memo.  [backend]
    defaults to [Analytic].  [p_hn] is the hidden-node degradation factor
    applied to analytic utilities (default 1); the simulated backends
    ignore it — their losses come from the packet process itself.
    [telemetry] (default: the global registry) receives the cache counters
    and any solver/simulator events.

    [store], when given, backs the memo with persistent rows: memo misses
    consult the store, cold solves write through, and the store's
    degenerate uniform rows (for this oracle's exact evaluation identity)
    seed the warm-start neighbour table at open.
    @raise Store.Corrupt if the store holds any legacy [oracle|v1|…] row
    (regenerate or delete it — the v2 strategy-keyed schema cannot address
    v1 rows).  [warm_start] (default [false]) additionally
    seeds analytic solves from the nearest solved neighbour — trading the
    bit-stability of cold solves for fewer iterations; leave it off
    wherever bit-identity with {!Dcf.Model} is asserted.

    [solver_max_iter] (≥ 1) bounds the analytic class solver's iteration
    budget (the Brent uniform path is unaffected).  Solves that exhaust
    it raise {!Non_converged} instead of answering — the oracle never
    memoizes, persists, or serves a non-converged fixed point. *)

val analytic : ?telemetry:Telemetry.Registry.t -> ?p_hn:float -> Dcf.Params.t -> t
(** [analytic params] = [create ~backend:Analytic params]. *)

val params : t -> Dcf.Params.t

val backend : t -> backend

val telemetry : t -> Telemetry.Registry.t

val store : t -> Store.t option

val warm_start : t -> bool

val identity : t -> string
(** The oracle's full evaluation identity (parameter fingerprint, p_hn,
    backend with sim configuration) — the prefix of every store key it
    reads or writes.  Layers that persist derived results (the serving
    layer's NE rows) key them under the same prefix so rows never leak
    across configurations. *)

val backend_name : backend -> string
(** ["analytic"], ["slotted"] or ["spatial"] — the CLI's [--backend]
    vocabulary. *)

val uniform : t -> n:int -> w:int -> uniform_view
(** The memoized uniform-profile evaluation ((n, w) fast path) — the
    CW-only shorthand for {!uniform_strategy} on the degenerate
    strategy. *)

val uniform_outcome : t -> n:int -> w:int -> uniform_view * tier
(** Like {!uniform}, also reporting which tier answered — the serving
    layer's entry point. *)

val uniform_strategy : t -> n:int -> Dcf.Strategy_space.t -> uniform_view
(** The memoized uniform evaluation of [n] players all on the given
    multi-knob strategy.  Degenerate strategies take the exact CW-only
    solve path, so [uniform_strategy t ~n (Strategy_space.of_cw w)] is
    bit-identical to [uniform t ~n ~w]. *)

val uniform_strategy_outcome :
  t -> n:int -> Dcf.Strategy_space.t -> uniform_view * tier
(** Like {!uniform_strategy}, also reporting which tier answered. *)

val payoff_uniform : t -> n:int -> w:int -> float
(** Per-node payoff rate u of the uniform profile (w, …, w) — what the
    game modules' deleted private [payoff] helpers computed. *)

val welfare_uniform : t -> n:int -> w:int -> float
(** n·u(w, …, w): the global payoff rate. *)

val tau_p : t -> n:int -> w:int -> float * float
(** The (τ, p) pair of the uniform profile — what the deleted private
    [tau_of] helpers computed. *)

val payoffs_profile : t -> Profile.t -> float array
(** Per-node payoff rates of an arbitrary strategy profile, in profile
    order.  Uniform profiles take the [(n, strategy)] fast path;
    heterogeneous ones go through the canonical sorted-multiset memo.
    Nodes with equal strategies receive bit-identical payoffs, and
    degenerate profiles are bit-identical to the CW-only {!payoffs}
    shorthand. *)

(** {2 Batch evaluation}

    Sweep columns and the serve daemon's batch envelopes evaluate many
    neighbouring profiles in sequence; a batch context lets each cold
    solve start from the previous point's class τs (the multi-knob end of
    the warm-start throughline), which typically cuts a cold Newton solve
    to a handful of accepted steps.  Contexts are single-threaded by
    design — create one per sweep column, not one per oracle.  Like
    [warm_start], batch-warm answers agree with cold solves at tolerance
    level, not bit level; the memoized/persisted entry is whichever solve
    ran first. *)

type batch
(** Mutable warm-start context accumulating (strategy, τ) pairs across
    the profiles solved through it. *)

val batch : t -> batch
(** A fresh, empty context for this oracle.  Passing it to another
    oracle's evaluations is refused with [Invalid_argument]. *)

val payoffs_profile_outcome :
  ?batch:batch -> t -> Profile.t -> float array * tier
(** Like {!payoffs_profile}, also reporting which tier answered.  [batch]
    threads a sweep context (see {!batch}) whose accumulated class τs
    warm-start this evaluation's cold solve — memo and store tiers are
    unaffected. *)

val payoffs_batch_outcome :
  t -> Profile.t array -> (float array * tier, string) result array
(** Evaluate a sweep column in order under one fresh batch context.
    Each element is [Ok (payoffs, tier)] or [Error reason] when that
    profile's solve raised {!Non_converged} — one diverging point does
    not poison the rest of the column. *)

val payoffs_batch : t -> Profile.t array -> float array array
(** Like {!payoffs_batch_outcome} but returning the payoffs only.
    @raise Non_converged on the first non-converged profile. *)

val payoffs : t -> int array -> float array
(** CW-only shorthand: [payoffs t cws] =
    [payoffs_profile t (Profile.of_cws cws)].  The entry point for every
    caller that speaks bare windows (TFT dynamics, best response,
    deviation scans). *)

val payoffs_outcome : t -> int array -> float array * tier
(** Like {!payoffs}, also reporting which tier answered. *)
