(** The repeated-game engine (Definition 1).

    Plays the multi-stage game G: in stage 0 every player uses its
    strategy's initial window; in stage k ≥ 1 each player decides from its
    own observation history (collected through an {!module:Observer}).
    Stage payoffs are evaluated through the payoff {!Oracle}, so the same
    game runs on the analytic model or a packet-level simulator by swapping
    the oracle's backend. *)

type stage_record = {
  stage : int;
  cws : Profile.t;          (** profile W^k actually played *)
  utilities : float array;  (** per-node payoff rates u_i(W^k) *)
  welfare : float;          (** Σ_i u_i(W^k) *)
}

type outcome = {
  trace : stage_record array;   (** one record per stage, in order *)
  converged_at : int option;
      (** first stage of a constant suffix of length ≥ 2 (the TFT
          convergence the paper proves); [None] if the last two stages
          differ *)
  final : Profile.t;            (** profile of the last stage *)
  discounted : float array;
      (** Σ_k δ^k·u_i(W^k)·T over the played stages — the utility U_i of
          Definition 1 truncated to the horizon *)
}

val run :
  ?observer:Observer.t ->
  ?payoffs:(int array -> float array) ->
  Oracle.t -> strategies:Strategy.t array -> stages:int -> outcome
(** Play [stages ≥ 1] stages.  Strategies play CW windows (the paper's
    action space), so stage payoffs take the bare window profile; they
    default to {!Oracle.payoffs} on the given oracle (memoised per
    canonical profile, so converged runs cost one solve); pass [payoffs]
    to override with a bespoke backend (e.g. a topology-aware simulation).
    [observer] defaults to {!Observer.perfect}.

    Telemetry goes to the oracle's registry: the oracle counts
    ["oracle.cache.hits"/"misses"/"solves"], each stage emits a
    ["game_stage"] event (profile, utilities, welfare, Jain fairness) and
    the run closes with a ["game_summary"] event. *)

val all_tft : n:int -> initials:int array -> Strategy.t array
(** Convenience: [n] TFT players with the given initial windows
    ([initials] must have length [n]). *)

val converged_window : outcome -> int option
(** The common window if the final profile is uniform. *)

val pre_convergence_shortfall : Dcf.Params.t -> outcome -> float array option
(** Per-player discounted payoff given up before convergence:
    Σ_k δ^k·(u_i(final) − u_i(W^k))·T over the pre-convergence stages,
    where u_i(final) is the player's payoff at the converged profile.
    This is exactly the Σ_{k<t0} term Sec. V.A drops "given that δ is
    close to 1" — the function quantifies how good that approximation is
    (compare against [discounted]).  [None] if the run never converged.
    Negative entries are possible: a player that free-rode before
    punishment earned *more* than its converged payoff. *)
