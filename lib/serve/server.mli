(** The oracle service: JSONL requests in, JSONL replies out.

    A server wraps one {!Macgame.Oracle.t} (and, through it, an optional
    persistent {!Store.t}) behind the line protocol of {!Request} and
    {!Reply}.  Every reply carries the tier that answered — in-process
    memo, persistent store, or cold solve — so a client (and the
    saturation bench) can see exactly how warm the service is.

    {2 Guarantees}

    - {b No crash on bad input}: malformed JSON, unknown ops, ill-typed
      fields, invalid arguments and expired deadlines all produce error
      replies; [handle_line] never raises.
    - {b Bit-faithful answers}: a served [tau]/[welfare]/[payoff] answer
      is the oracle's own evaluation, so memo- and store-tier replies are
      bit-identical to direct {!Macgame.Oracle} calls (the conformance
      suite's serving checks pin this down).
    - {b Derived rows persist too}: NE answers (window range, refined
      W_c*, its welfare) are memoized per [n] and written through to the
      store under the oracle's identity prefix, so a restarted service
      answers NE queries from the store without re-running the searches.

    {2 Telemetry}

    Counters ["serve.requests"], ["serve.errors"],
    ["serve.tier.memo"/"store"/"cold"] (one per leaf answered), histogram
    ["serve.latency_ms"] (per-leaf service time), and a ["serve.request"]
    span per request on the server's registry. *)

type t

val create : ?telemetry:Telemetry.Registry.t -> Macgame.Oracle.t -> t
(** Wrap an oracle.  Persistence and warm-starting are the oracle's
    affair: back it with a store / enable warm start at
    {!Macgame.Oracle.create} time. *)

val oracle : t -> Macgame.Oracle.t

val handle_line : t -> string -> string option
(** Serve one request line, returning the reply line (no newline).
    [None] for blank lines.  Never raises. *)

val serve_channel : t -> in_channel -> out_channel -> unit
(** Serve line-by-line until EOF, flushing each reply — the [--stdin]
    transport. *)

val serve_socket :
  t -> path:string -> ?max_inflight:int -> ?max_connections:int ->
  unit -> unit
(** Listen on a Unix-domain socket at [path] (replacing any stale socket
    file), serving each connection on its own thread; at most
    [max_inflight] (default 8) requests are evaluated concurrently, the
    rest queue.  With [max_connections] the accept loop ends after that
    many connections and the call returns once they drain (how the tests
    and the bench bound a run); without it, serves forever.  The socket
    file is removed on exit. *)
