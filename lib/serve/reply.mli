(** Reply lines of the oracle service's JSONL protocol.

    Success:
    {v
    {"id": …, "ok": true, "tier": "memo"|"store"|"cold",
     "elapsed_ms": …, "result": { … }}
    v}

    Failure (malformed input, invalid arguments, expired deadline):
    {v
    {"id": …, "ok": false, "error": "<reason>"}
    v}

    [id] echoes the request's id ([null] when the request had none or was
    too malformed to carry one).  Batch replies omit [tier] on the
    envelope — each member reply inside [result.replies] carries its
    own. *)

type t = Telemetry.Jsonx.t

val ok :
  id:Telemetry.Jsonx.t ->
  ?tier:Macgame.Oracle.tier ->
  elapsed_ms:float -> Telemetry.Jsonx.t -> t

val error : id:Telemetry.Jsonx.t -> string -> t

val to_line : t -> string
(** Compact one-line rendering (no trailing newline). *)
