module Jx = Telemetry.Jsonx

type ne_row = { w_lo : int; w_hi : int; w_star : int; welfare : float }

type t = {
  oracle : Macgame.Oracle.t;
  registry : Telemetry.Registry.t;
  requests : Telemetry.Metric.counter;
  errors : Telemetry.Metric.counter;
  tier_memo : Telemetry.Metric.counter;
  tier_store : Telemetry.Metric.counter;
  tier_cold : Telemetry.Metric.counter;
  latency_ms : Telemetry.Metric.histogram;
  (* NE rows are derived (searches over the oracle), so the oracle's own
     memo/store tiers would misattribute them: a fully memoized search is
     still recomputed fold-by-fold.  The server memoizes the finished row
     per n, with store write-through under the oracle's identity prefix. *)
  ne_memo : (int, ne_row) Hashtbl.t;
  lock : Mutex.t;
}

let create ?(telemetry = Telemetry.Registry.default) oracle =
  {
    oracle;
    registry = telemetry;
    requests = Telemetry.Registry.counter telemetry "serve.requests";
    errors = Telemetry.Registry.counter telemetry "serve.errors";
    tier_memo = Telemetry.Registry.counter telemetry "serve.tier.memo";
    tier_store = Telemetry.Registry.counter telemetry "serve.tier.store";
    tier_cold = Telemetry.Registry.counter telemetry "serve.tier.cold";
    latency_ms = Telemetry.Registry.histogram telemetry "serve.latency_ms";
    ne_memo = Hashtbl.create 16;
    lock = Mutex.create ();
  }

let oracle t = t.oracle

let note_tier t (tier : Macgame.Oracle.tier) =
  Telemetry.Metric.incr
    (match tier with
    | Memo -> t.tier_memo
    | Store -> t.tier_store
    | Cold -> t.tier_cold)

(* {2 NE rows} *)

let ne_store_key t ~n =
  Printf.sprintf "%s|ne|n=%d" (Macgame.Oracle.identity t.oracle) n

let ne_row_to_json row =
  Jx.Obj
    [
      ("w_lo", Jx.Int row.w_lo);
      ("w_hi", Jx.Int row.w_hi);
      ("w_star", Jx.Int row.w_star);
      ("welfare", Jx.Float row.welfare);
    ]

let ne_row_of_json json =
  let int_field name =
    match Jx.member name json with Some (Jx.Int v) -> Some v | _ -> None
  in
  match
    ( int_field "w_lo", int_field "w_hi", int_field "w_star",
      Option.bind (Jx.member "welfare" json) Jx.to_float_opt )
  with
  | Some w_lo, Some w_hi, Some w_star, Some welfare ->
      Some { w_lo; w_hi; w_star; welfare }
  | _ -> None

let ne_outcome t ~n : ne_row * Macgame.Oracle.tier =
  Mutex.lock t.lock;
  let memoized = Hashtbl.find_opt t.ne_memo n in
  Mutex.unlock t.lock;
  match memoized with
  | Some row -> (row, Memo)
  | None -> (
      let remember row =
        Mutex.lock t.lock;
        let row =
          match Hashtbl.find_opt t.ne_memo n with
          | Some existing -> existing
          | None ->
              Hashtbl.add t.ne_memo n row;
              row
        in
        Mutex.unlock t.lock;
        row
      in
      let stored =
        Option.bind (Macgame.Oracle.store t.oracle) (fun s ->
            Option.bind (Store.find s ~key:(ne_store_key t ~n)) ne_row_of_json)
      in
      match stored with
      | Some row -> (remember row, Store)
      | None ->
          let ne = Macgame.Equilibrium.ne_set t.oracle ~n in
          let w_star = Macgame.Equilibrium.efficient_cw t.oracle ~n in
          let welfare =
            Macgame.Equilibrium.social_welfare t.oracle ~n ~w:w_star
          in
          let row =
            remember { w_lo = ne.w_lo; w_hi = ne.w_hi; w_star; welfare }
          in
          Option.iter
            (fun s ->
              Store.put s ~key:(ne_store_key t ~n) (ne_row_to_json row))
            (Macgame.Oracle.store t.oracle);
          (row, Cold))

(* {2 Dispatch} *)

let now_ms () = Unix.gettimeofday () *. 1000.

let leaf_result ?batch t (op : Request.op) : Jx.t * Macgame.Oracle.tier =
  match op with
  | Tau { n; w } ->
      let view, tier = Macgame.Oracle.uniform_outcome t.oracle ~n ~w in
      (Jx.Obj [ ("tau", Jx.Float view.tau); ("p", Jx.Float view.p) ], tier)
  | Welfare { n; w } ->
      let view, tier = Macgame.Oracle.uniform_outcome t.oracle ~n ~w in
      ( Jx.Obj
          [
            ("utility", Jx.Float view.utility);
            ("welfare", Jx.Float (float_of_int n *. view.utility));
          ],
        tier )
  | Payoff { profile } ->
      let payoffs, tier =
        Macgame.Oracle.payoffs_profile_outcome ?batch t.oracle profile
      in
      ( Jx.Obj
          [
            ( "payoffs",
              Jx.List
                (Array.to_list (Array.map (fun u -> Jx.Float u) payoffs)) );
          ],
        tier )
  | Ne { n } ->
      let row, tier = ne_outcome t ~n in
      (ne_row_to_json row, tier)
  | Batch _ -> invalid_arg "Server.leaf_result: batch is not a leaf"

let expired ~received_at deadline_ms =
  match deadline_ms with
  | None -> false
  | Some d -> now_ms () -. received_at >= d

let rec reply_to ?batch t ~received_at (req : Request.t) : Reply.t =
  Telemetry.Metric.incr t.requests;
  if expired ~received_at req.deadline_ms then begin
    Telemetry.Metric.incr t.errors;
    Reply.error ~id:req.id "deadline exceeded"
  end
  else
    Telemetry.Span.with_span ~registry:t.registry "serve.request"
      ~fields:(fun () -> [ ("op", Jx.String (Request.op_name req.op)) ])
      (fun () ->
        let started = now_ms () in
        match req.op with
        | Batch members ->
            (* Members run in request order; each carries its own tier and
               honours its own deadline (checked against the same receipt
               time, so queueing before the batch counts for everyone).
               One warm-start context spans the whole envelope: each cold
               Payoff solve seeds the next member's, so dense sweep
               batches amortize to a few Newton steps per point. *)
            let batch = Macgame.Oracle.batch t.oracle in
            let replies =
              List.map (fun m -> reply_to ~batch t ~received_at m) members
            in
            Reply.ok ~id:req.id ~elapsed_ms:(now_ms () -. started)
              (Jx.Obj [ ("replies", Jx.List replies) ])
        | op -> (
            match leaf_result ?batch t op with
            | result, tier ->
                note_tier t tier;
                let elapsed_ms = now_ms () -. started in
                Telemetry.Metric.observe t.latency_ms elapsed_ms;
                Reply.ok ~id:req.id ~tier ~elapsed_ms result
            | exception Invalid_argument reason ->
                Telemetry.Metric.incr t.errors;
                Reply.error ~id:req.id reason
            | exception Macgame.Oracle.Non_converged reason ->
                (* A diverged solve is a refusal, not an answer: the memo
                   and store were never touched, and neither is the wire. *)
                Telemetry.Metric.incr t.errors;
                Reply.error ~id:req.id reason))

(* Salvage the request id from a line whose envelope failed to parse as a
   request, so the client can still correlate the error reply. *)
let salvage_id line =
  match Jx.parse line with
  | exception Jx.Parse_error _ -> Jx.Null
  | json -> Option.value (Jx.member "id" json) ~default:Jx.Null

let handle_line t line =
  let received_at = now_ms () in
  if String.trim line = "" then None
  else
    let reply =
      match Request.of_line line with
      | Error reason ->
          Telemetry.Metric.incr t.requests;
          Telemetry.Metric.incr t.errors;
          Reply.error ~id:(salvage_id line) reason
      | Ok req -> (
          try reply_to t ~received_at req
          with exn ->
            Telemetry.Metric.incr t.errors;
            Reply.error ~id:req.id
              (Printf.sprintf "internal error: %s" (Printexc.to_string exn)))
    in
    Some (Reply.to_line reply)

(* {2 Transports} *)

let serve_channel t ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        Option.iter
          (fun reply ->
            output_string oc reply;
            output_char oc '\n';
            flush oc)
          (handle_line t line);
        loop ()
  in
  loop ()

let serve_connection t sem fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        Option.iter
          (fun reply ->
            output_string oc reply;
            output_char oc '\n';
            flush oc)
          (let () = Semaphore.Counting.acquire sem in
           Fun.protect
             ~finally:(fun () -> Semaphore.Counting.release sem)
             (fun () -> handle_line t line));
        loop ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try loop () with Sys_error _ -> ())

let serve_socket t ~path ?(max_inflight = 8) ?max_connections () =
  if max_inflight < 1 then
    invalid_arg "Server.serve_socket: max_inflight must be >= 1";
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 64;
      let sem = Semaphore.Counting.make max_inflight in
      let workers = ref [] in
      let accepted = ref 0 in
      let more () =
        match max_connections with
        | None -> true
        | Some limit -> !accepted < limit
      in
      while more () do
        let fd, _ = Unix.accept sock in
        incr accepted;
        workers := Thread.create (serve_connection t sem) fd :: !workers
      done;
      List.iter Thread.join !workers)
