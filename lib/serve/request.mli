(** Typed requests of the oracle service's JSONL protocol.

    One request per line, one JSON object per request.  The envelope:

    {v
    {"id": <any JSON>, "op": "<name>", ..., "deadline_ms": <number>?}
    v}

    [id] is echoed verbatim in the reply (default [null]); [deadline_ms],
    when present, is a per-request service deadline — a request still
    queued when it expires is answered with an error instead of being
    served late.  Operations:

    - [{"op": "tau", "n": N, "w": W}] — (τ, p) of the uniform profile;
    - [{"op": "welfare", "n": N, "w": W}] — per-node payoff and n·u;
    - [{"op": "payoff", "profile": [w1, …]}] — per-node payoff rates;
      entries are bare CW windows (the CW-only shorthand) or full
      strategy objects [{"cw": W, "aifs": A?, "txop": K?, "rate": R?}],
      freely mixed;
    - [{"op": "ne", "n": N}] — the Theorem-2 NE window range and the
      refined W_c*;
    - [{"op": "batch", "requests": [ … ]}] — leaf requests answered in
      order in one reply (batches may not nest).

    Parsing never raises: malformed lines come back as [Error reason],
    which the server turns into an error reply. *)

type op =
  | Ne of { n : int }
  | Payoff of { profile : Macgame.Profile.t }
  | Welfare of { n : int; w : int }
  | Tau of { n : int; w : int }
  | Batch of t list

and t = {
  id : Telemetry.Jsonx.t;  (** echoed in the reply; [Null] when absent *)
  op : op;
  deadline_ms : float option;
}

val op_name : op -> string
(** The wire name: ["ne"], ["payoff"], ["welfare"], ["tau"], ["batch"]. *)

val of_line : string -> (t, string) result
(** Parse one request line.  [Error reason] on malformed JSON, missing or
    ill-typed fields, unknown ops, or nested batches — never raises. *)
