type op =
  | Ne of { n : int }
  | Payoff of { profile : Macgame.Profile.t }
  | Welfare of { n : int; w : int }
  | Tau of { n : int; w : int }
  | Batch of t list

and t = {
  id : Telemetry.Jsonx.t;
  op : op;
  deadline_ms : float option;
}

let op_name = function
  | Ne _ -> "ne"
  | Payoff _ -> "payoff"
  | Welfare _ -> "welfare"
  | Tau _ -> "tau"
  | Batch _ -> "batch"

let id_of json =
  match Telemetry.Jsonx.member "id" json with
  | Some v -> v
  | None -> Telemetry.Jsonx.Null

let int_field name json =
  match Telemetry.Jsonx.member name json with
  | Some (Telemetry.Jsonx.Int v) -> Ok v
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let positive_field name json =
  Result.bind (int_field name json) (fun v ->
      if v >= 1 then Ok v
      else Error (Printf.sprintf "field %S must be >= 1" name))

(* A profile entry is either a bare window (the historical CW-only wire
   format, kept as shorthand) or a strategy object
   [{"cw": …, "aifs": …?, "txop": …?, "rate": …?}]. *)
let profile_field json =
  match Telemetry.Jsonx.member "profile" json with
  | Some (Telemetry.Jsonx.List _ as items) -> (
      match Macgame.Profile.of_json items with
      | Ok profile -> Ok profile
      | Error reason ->
          Error (Printf.sprintf "field \"profile\": %s" reason))
  | Some _ -> Error "field \"profile\" must be a non-empty list"
  | None -> Error "missing field \"profile\""

let deadline_field json =
  match Telemetry.Jsonx.member "deadline_ms" json with
  | None -> Ok None
  | Some v -> (
      match Telemetry.Jsonx.to_float_opt v with
      | Some d when d >= 0. -> Ok (Some d)
      | _ -> Error "field \"deadline_ms\" must be a number >= 0")

(* [depth] guards against nested batches: a batch member must be a leaf
   operation, so a request line bounds the work it names. *)
let rec of_json ~depth json =
  let ( let* ) = Result.bind in
  let* deadline_ms = deadline_field json in
  let leaf op = Ok { id = id_of json; op; deadline_ms } in
  match Telemetry.Jsonx.member "op" json with
  | Some (Telemetry.Jsonx.String "ne") ->
      let* n = positive_field "n" json in
      leaf (Ne { n })
  | Some (Telemetry.Jsonx.String "payoff") ->
      let* profile = profile_field json in
      leaf (Payoff { profile })
  | Some (Telemetry.Jsonx.String "welfare") ->
      let* n = positive_field "n" json in
      let* w = positive_field "w" json in
      leaf (Welfare { n; w })
  | Some (Telemetry.Jsonx.String "tau") ->
      let* n = positive_field "n" json in
      let* w = positive_field "w" json in
      leaf (Tau { n; w })
  | Some (Telemetry.Jsonx.String "batch") ->
      if depth > 0 then Error "batch requests may not nest"
      else
        let* members =
          match Telemetry.Jsonx.member "requests" json with
          | Some (Telemetry.Jsonx.List items) when items <> [] ->
              let rec parse acc = function
                | [] -> Ok (List.rev acc)
                | item :: rest ->
                    let* req = of_json ~depth:(depth + 1) item in
                    parse (req :: acc) rest
              in
              parse [] items
          | Some _ -> Error "field \"requests\" must be a non-empty list"
          | None -> Error "missing field \"requests\""
        in
        leaf (Batch members)
  | Some (Telemetry.Jsonx.String other) ->
      Error (Printf.sprintf "unknown op %S" other)
  | Some _ -> Error "field \"op\" must be a string"
  | None -> Error "missing field \"op\""

let of_line line =
  match Telemetry.Jsonx.parse line with
  | exception Telemetry.Jsonx.Parse_error msg ->
      Error (Printf.sprintf "malformed JSON: %s" msg)
  | json -> of_json ~depth:0 json
