type t = Telemetry.Jsonx.t

let ok ~id ?tier ~elapsed_ms result =
  Telemetry.Jsonx.Obj
    (("id", id)
     :: ("ok", Telemetry.Jsonx.Bool true)
     :: (match tier with
        | Some tier ->
            [ ("tier", Telemetry.Jsonx.String (Macgame.Oracle.tier_name tier)) ]
        | None -> [])
    @ [
        ("elapsed_ms", Telemetry.Jsonx.Float elapsed_ms);
        ("result", result);
      ])

let error ~id reason =
  Telemetry.Jsonx.Obj
    [
      ("id", id);
      ("ok", Telemetry.Jsonx.Bool false);
      ("error", Telemetry.Jsonx.String reason);
    ]

let to_line t = Telemetry.Jsonx.to_string t
