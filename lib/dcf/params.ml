type access_mode = Basic | Rts_cts

let pp_access_mode ppf = function
  | Basic -> Format.pp_print_string ppf "basic"
  | Rts_cts -> Format.pp_print_string ppf "RTS/CTS"

type t = {
  payload_bits : int;
  mac_header_bits : int;
  phy_header_bits : int;
  ack_bits : int;
  rts_bits : int;
  cts_bits : int;
  bit_rate : float;
  sigma : float;
  sifs : float;
  difs : float;
  gain : float;
  cost : float;
  stage_duration : float;
  discount : float;
  max_backoff_stage : int;
  cw_max : int;
  mode : access_mode;
}

let default =
  {
    payload_bits = 8184;
    mac_header_bits = 272;
    phy_header_bits = 128;
    ack_bits = 112;
    rts_bits = 160;
    cts_bits = 112;
    bit_rate = 1e6;
    sigma = 50e-6;
    sifs = 28e-6;
    difs = 128e-6;
    gain = 1.0;
    cost = 0.01;
    stage_duration = 10.0;
    discount = 0.9999;
    max_backoff_stage = 5;
    cw_max = 4096;
    mode = Basic;
  }

let with_mode mode t = { t with mode }

let rts_cts = with_mode Rts_cts default

(* AIFS is modeled as whole backoff slots of extra defer after every busy
   period, beyond the DIFS already folded into Ts.  This is its wall-clock
   cost, used when converting defer slots to airtime. *)
let aifs_duration t ~slots =
  if slots < 0 then invalid_arg "Params.aifs_duration: slots must be >= 0";
  float_of_int slots *. t.sigma

let validate t =
  let check cond msg rest = if cond then rest () else Error msg in
  check (t.payload_bits > 0) "payload_bits must be positive" @@ fun () ->
  check (t.mac_header_bits >= 0 && t.phy_header_bits >= 0)
    "header sizes must be non-negative"
  @@ fun () ->
  check (t.ack_bits > 0 && t.rts_bits > 0 && t.cts_bits > 0)
    "control frame sizes must be positive"
  @@ fun () ->
  check (t.bit_rate > 0.) "bit_rate must be positive" @@ fun () ->
  check (t.sigma > 0.) "sigma must be positive" @@ fun () ->
  check (t.sifs >= 0. && t.difs >= 0.) "IFS durations must be non-negative"
  @@ fun () ->
  check (t.gain > t.cost) "gain must exceed cost (g > e)" @@ fun () ->
  check (t.cost >= 0.) "cost must be non-negative" @@ fun () ->
  check (t.stage_duration > 0.) "stage_duration must be positive" @@ fun () ->
  check (t.discount > 0. && t.discount < 1.) "discount must be in (0, 1)"
  @@ fun () ->
  check (t.max_backoff_stage >= 0) "max_backoff_stage must be non-negative"
  @@ fun () ->
  check (t.cw_max >= 1) "cw_max must be at least 1" @@ fun () -> Ok ()

let pp ppf t =
  let f fmt = Format.fprintf ppf fmt in
  f "@[<v>";
  f "payload          %d bits@," t.payload_bits;
  f "MAC header       %d bits@," t.mac_header_bits;
  f "PHY header       %d bits@," t.phy_header_bits;
  f "ACK              %d bits + PHY header@," t.ack_bits;
  f "RTS              %d bits + PHY header@," t.rts_bits;
  f "CTS              %d bits + PHY header@," t.cts_bits;
  f "channel bit rate %.0f bit/s@," t.bit_rate;
  f "sigma            %.0f us@," (t.sigma *. 1e6);
  f "SIFS             %.0f us@," (t.sifs *. 1e6);
  f "DIFS             %.0f us@," (t.difs *. 1e6);
  f "gain g           %g@," t.gain;
  f "cost e           %g@," t.cost;
  f "stage T          %g s@," t.stage_duration;
  f "discount delta   %g@," t.discount;
  f "max stage m      %d@," t.max_backoff_stage;
  f "W_max            %d@," t.cw_max;
  f "access mode      %a" pp_access_mode t.mode;
  f "@]"
