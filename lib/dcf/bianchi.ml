let check_args ~w ~m p =
  if w < 1 then invalid_arg "Bianchi: window must be >= 1";
  if m < 0 then invalid_arg "Bianchi: max stage must be >= 0";
  if p < 0. || p > 1. then invalid_arg "Bianchi: p must be in [0, 1]"

let tau_of_p ~w ~m p =
  check_args ~w ~m p;
  let wf = float_of_int w in
  2. /. (1. +. wf +. (p *. wf *. Prelude.Util.geometric_sum (2. *. p) m))

let dtau_dp ~w ~m p =
  check_args ~w ~m p;
  let wf = float_of_int w in
  (* τ = 2/D with D(p) = 1 + W + p·W·Σ_{j<m}(2p)^j
                       = 1 + W + W·Σ_{j<m} 2^j p^(j+1),
     so dD/dp = W·Σ_{j<m} (j+1)·(2p)^j and dτ/dp = −2·dD/dp / D².  Both
     sums accumulate incrementally (no pow call): this derivative sits in
     the Newton solver's innermost loop, and unlike τ itself it carries no
     bit-stability contract — it only steers the iterate path, whose
     destination the convergence test on τ pins. *)
  let geom = ref 0. and s = ref 0. and pow = ref 1. in
  for j = 0 to m - 1 do
    geom := !geom +. !pow;
    s := !s +. (float_of_int (j + 1) *. !pow);
    pow := !pow *. 2. *. p
  done;
  let d = 1. +. wf +. (p *. wf *. !geom) in
  -2. *. wf *. !s /. (d *. d)

let dtau_dp_at_tau ~w ~m ~tau p =
  (* Same derivative, cheaper: τ = 2/D means 1/D² = τ²/4, so when the
     caller already holds τ = τB(w, p) — the solver's map evaluation does —
     dτ/dp = −2·W·S/D² collapses to −W·S·τ²/2 and only the stage sum
     S = Σ_{j<m}(j+1)·(2p)^j remains.  This sits in the Newton solver's
     innermost loop; like {!dtau_dp} it carries no bit-stability contract. *)
  let wf = float_of_int w in
  let s = ref 0. and pow = ref 1. in
  for j = 0 to m - 1 do
    s := !s +. (float_of_int (j + 1) *. !pow);
    pow := !pow *. 2. *. p
  done;
  -0.5 *. wf *. !s *. tau *. tau

let tau_of_p_ratio_form ~w ~m p =
  check_args ~w ~m p;
  let wf = float_of_int w in
  let one_m_2p = 1. -. (2. *. p) in
  2. *. one_m_2p
  /. ((one_m_2p *. (wf +. 1.)) +. (p *. wf *. (1. -. ((2. *. p) ** float_of_int m))))

type stationary = { q00 : float; stage_heads : float array; tau : float }

let stationary ~w ~m p =
  check_args ~w ~m p;
  (* Stage-head masses relative to q(0,0): q(j,0) = p^j·q00 for j < m and
     q(m,0) = p^m/(1−p)·q00 (the last stage self-loops on collision).  The
     within-stage column sum is (W_j+1)/2·q(j,0) with W_j = 2^j·w. *)
  let rel = Array.make (m + 1) 1. in
  for j = 1 to m do
    rel.(j) <- rel.(j - 1) *. p
  done;
  if p < 1. then rel.(m) <- rel.(m) /. (1. -. p);
  let mass_rel = ref 0. in
  for j = 0 to m do
    let wj = float_of_int (w lsl j) in
    mass_rel := !mass_rel +. (rel.(j) *. (wj +. 1.) /. 2.)
  done;
  if p >= 1. then begin
    (* Degenerate chain: every attempt collides and all mass concentrates on
       the last stage, which keeps cycling through its window of 2^m·w
       slots; τ = 2/(2^m·w + 1), matching the p → 1 limit of eq. 2. *)
    let wm = float_of_int (w lsl m) in
    let heads = Array.make (m + 1) 0. in
    heads.(m) <- 2. /. (wm +. 1.);
    { q00 = 0.; stage_heads = heads; tau = heads.(m) }
  end
  else begin
    let q00 = 1. /. !mass_rel in
    let stage_heads = Array.map (fun r -> r *. q00) rel in
    let tau = Array.fold_left ( +. ) 0. stage_heads in
    { q00; stage_heads; tau }
  end

let total_mass ~w ~m st =
  if Array.length st.stage_heads <> m + 1 then
    invalid_arg "Bianchi.total_mass: stage count mismatch";
  let total = ref 0. in
  for j = 0 to m do
    let wj = float_of_int (w lsl j) in
    total := !total +. (st.stage_heads.(j) *. (wj +. 1.) /. 2.)
  done;
  !total

let expected_backoff ~w = float_of_int (w - 1) /. 2.
