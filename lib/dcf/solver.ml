type solution = {
  taus : float array;
  ps : float array;
  iterations : int;
  converged : bool;
}

(* p_i = 1 − Π_{j≠i}(1 − τ_j), computed with prefix/suffix products so a
   node with τ_j = 1 (window 1, always transmitting) does not force a
   division by zero. *)
let collision_probabilities taus =
  let n = Array.length taus in
  let prefix = Array.make (n + 1) 1. in
  let suffix = Array.make (n + 1) 1. in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) *. (1. -. taus.(i))
  done;
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) *. (1. -. taus.(i))
  done;
  Array.init n (fun i ->
      Prelude.Util.clamp ~lo:0. ~hi:1. (1. -. (prefix.(i) *. suffix.(i + 1))))

let solve ?telemetry ?(tol = 1e-13) ?(max_iter = 20_000) (params : Params.t)
    cws =
  let n = Array.length cws in
  if n = 0 then invalid_arg "Solver.solve: empty network";
  Array.iter
    (fun w -> if w < 1 then invalid_arg "Solver.solve: window must be >= 1")
    cws;
  let m = params.max_backoff_stage in
  let step taus =
    let ps = collision_probabilities taus in
    Array.mapi (fun i p -> Bianchi.tau_of_p ~w:cws.(i) ~m p) ps
  in
  let x0 = Array.map (fun w -> 2. /. float_of_int (w + 1)) cws in
  let outcome =
    Numerics.Fixed_point.solve ?telemetry ~damping:0.5 ~tol ~max_iter step x0
  in
  let taus = outcome.value in
  {
    taus;
    ps = collision_probabilities taus;
    iterations = outcome.iterations;
    converged = outcome.converged;
  }

let solve_homogeneous ?(telemetry = Telemetry.Registry.default) ?iterations
    ?guess ?(tol = 1e-14) (params : Params.t) ~n ~w =
  if n < 1 then invalid_arg "Solver.solve_homogeneous: need n >= 1";
  if w < 1 then invalid_arg "Solver.solve_homogeneous: window must be >= 1";
  let m = params.max_backoff_stage in
  let report iters =
    (match iterations with Some r -> r := iters | None -> ());
    Telemetry.Registry.emit telemetry "solver_convergence" (fun () ->
        [
          ("method", Telemetry.Jsonx.String "brent");
          ("n", Telemetry.Jsonx.Int n);
          ("w", Telemetry.Jsonx.Int w);
          ("tol", Telemetry.Jsonx.Float tol);
          ("iterations", Telemetry.Jsonx.Int iters);
          ("converged", Telemetry.Jsonx.Bool true);
        ])
  in
  if n = 1 then begin
    report 0;
    (Bianchi.tau_of_p ~w ~m 0., 0.)
  end
  else begin
    (* Defect h(τ) = τ − τ_model(p(τ)): negative at τ→0 and positive at
       τ = 1, with a single crossing (uniqueness per Bianchi). *)
    let p_of_tau tau = 1. -. ((1. -. tau) ** float_of_int (n - 1)) in
    let defect tau = tau -. Bianchi.tau_of_p ~w ~m (p_of_tau tau) in
    let eps = 1e-15 in
    let iters = ref 0 in
    (* Warm start: a neighbouring solution's τ narrows the Brent bracket
       to [g/2, 2g] when that interval still straddles the sign change;
       otherwise fall back to the full interval.  The root found is the
       same crossing either way (tolerance-level, not bit-level —
       callers that need bit-stability must not pass a guess). *)
    let lo, hi =
      match guess with
      | Some g when g > 0. && g < 1. ->
          let lo = Float.max eps (g /. 2.) and hi = Float.min 1. (g *. 2.) in
          if defect lo < 0. && defect hi > 0. then (lo, hi) else (eps, 1.)
      | _ -> (eps, 1.)
    in
    let tau = Numerics.Roots.brent ~iterations:iters ~tol defect lo hi in
    report !iters;
    (tau, p_of_tau tau)
  end

let solve_classes ?telemetry ?iterations ?tau_hint ?(tol = 1e-14)
    (params : Params.t) classes =
  if classes = [] then invalid_arg "Solver.solve_classes: no classes";
  List.iter
    (fun (w, k) ->
      if w < 1 then invalid_arg "Solver.solve_classes: window must be >= 1";
      if k < 1 then invalid_arg "Solver.solve_classes: count must be >= 1")
    classes;
  let m = params.max_backoff_stage in
  let ws = Array.of_list (List.map fst classes) in
  let ks = Array.of_list (List.map snd classes) in
  let c = Array.length ws in
  let step taus =
    (* Π over everyone, then divide out one copy of the own class. *)
    let product = ref 1. in
    for j = 0 to c - 1 do
      product := !product *. ((1. -. taus.(j)) ** float_of_int ks.(j))
    done;
    Array.init c (fun j ->
        let others =
          if taus.(j) >= 1. then begin
            (* Avoid 0/0: recompute the product excluding one member. *)
            let rest = ref ((1. -. taus.(j)) ** float_of_int (ks.(j) - 1)) in
            for j' = 0 to c - 1 do
              if j' <> j then
                rest := !rest *. ((1. -. taus.(j')) ** float_of_int ks.(j'))
            done;
            !rest
          end
          else !product /. (1. -. taus.(j))
        in
        let p = Prelude.Util.clamp ~lo:0. ~hi:1. (1. -. others) in
        Bianchi.tau_of_p ~w:ws.(j) ~m p)
  in
  (* Warm start: [tau_hint w] may seed a class with a τ from a
     neighbouring solved problem; classes without a hint start at the
     no-collision value 2/(W+1).  The damped iteration contracts to the
     same fixed point from any interior start (a property the test suite
     probes), so a hint changes the path, not the destination — at
     tolerance level, which is why warm-started answers carry a
     conformance anchor rather than a bit-identity claim. *)
  let default_x0 w = 2. /. float_of_int (w + 1) in
  let x0 =
    match tau_hint with
    | None -> Array.map default_x0 ws
    | Some hint ->
        Array.map
          (fun w ->
            match hint w with
            | Some g when g > 0. && g < 1. -> g
            | _ -> default_x0 w)
          ws
  in
  let outcome =
    Numerics.Fixed_point.solve ?telemetry ~damping:0.5 ~tol ~max_iter:50_000
      step x0
  in
  (match iterations with Some r -> r := outcome.iterations | None -> ());
  let taus = outcome.value in
  let product = ref 1. in
  for j = 0 to c - 1 do
    product := !product *. ((1. -. taus.(j)) ** float_of_int ks.(j))
  done;
  List.init c (fun j ->
      let others =
        if taus.(j) >= 1. then 0. else !product /. (1. -. taus.(j))
      in
      (taus.(j), Prelude.Util.clamp ~lo:0. ~hi:1. (1. -. others)))

(* Multi-knob class solver.  AIFS enters the coupled system through an
   eligibility factor: a node deferring a extra slots after every busy
   period can only start in a slot if none of the preceding a slots was
   busy for it, which in the mean-field model happens with probability
   (1 − p)^a.  Its *effective* per-slot transmission probability is
   therefore τ' = (1 − p)^a · τ_bianchi(W, p), and it is τ' that other
   nodes see when computing their collision probabilities.  TXOP and rate
   do not change the contention fixed point (they change channel
   occupancy and payoff, priced downstream); CW enters exactly as in
   {!solve_classes}, so at a = 0 the iteration reduces to it. *)
let solve_strategy_classes ?telemetry ?iterations ?(tol = 1e-14)
    (params : Params.t) classes =
  if classes = [] then invalid_arg "Solver.solve_strategy_classes: no classes";
  List.iter
    (fun ((s : Strategy_space.t), k) ->
      (match Strategy_space.validate s with
      | Ok () -> ()
      | Error e -> invalid_arg ("Solver.solve_strategy_classes: " ^ e));
      if k < 1 then
        invalid_arg "Solver.solve_strategy_classes: count must be >= 1")
    classes;
  let m = params.max_backoff_stage in
  let ss = Array.of_list (List.map fst classes) in
  let ks = Array.of_list (List.map snd classes) in
  let c = Array.length ss in
  let p_of taus j =
    let product = ref 1. in
    for j' = 0 to c - 1 do
      product := !product *. ((1. -. taus.(j')) ** float_of_int ks.(j'))
    done;
    let others =
      if taus.(j) >= 1. then begin
        let rest = ref ((1. -. taus.(j)) ** float_of_int (ks.(j) - 1)) in
        for j' = 0 to c - 1 do
          if j' <> j then
            rest := !rest *. ((1. -. taus.(j')) ** float_of_int ks.(j'))
        done;
        !rest
      end
      else !product /. (1. -. taus.(j))
    in
    Prelude.Util.clamp ~lo:0. ~hi:1. (1. -. others)
  in
  let step taus =
    Array.init c (fun j ->
        let s = ss.(j) in
        let p = p_of taus j in
        let tau = Bianchi.tau_of_p ~w:s.Strategy_space.cw ~m p in
        if s.Strategy_space.aifs = 0 then tau
        else ((1. -. p) ** float_of_int s.Strategy_space.aifs) *. tau)
  in
  let x0 =
    Array.map
      (fun (s : Strategy_space.t) -> 2. /. float_of_int (s.cw + 1))
      ss
  in
  let outcome =
    Numerics.Fixed_point.solve ?telemetry ~damping:0.5 ~tol ~max_iter:50_000
      step x0
  in
  (match iterations with Some r -> r := outcome.iterations | None -> ());
  let taus = outcome.value in
  List.init c (fun j -> (taus.(j), p_of taus j))

let solve_profile ?telemetry ?iterations ?tau_hint ?tol (params : Params.t)
    cws =
  let n = Array.length cws in
  if n = 0 then invalid_arg "Solver.solve_profile: empty network";
  Array.iter
    (fun w -> if w < 1 then invalid_arg "Solver.solve_profile: window must be >= 1")
    cws;
  (* Group equal windows into classes: nodes sharing a window share (τ, p)
     by symmetry, so the fixed point collapses to one dimension per
     distinct window — a 100-node profile with 3 distinct windows costs the
     same as n = 3. *)
  let classes = Hashtbl.create 8 in
  Array.iter
    (fun w ->
      Hashtbl.replace classes w (1 + Option.value ~default:0 (Hashtbl.find_opt classes w)))
    cws;
  let class_list =
    Hashtbl.fold (fun w k acc -> (w, k) :: acc) classes []
    |> List.sort compare
  in
  let iters = match iterations with Some r -> r | None -> ref 0 in
  let solved =
    solve_classes ?telemetry ~iterations:iters ?tau_hint ?tol params
      class_list
  in
  let by_window = Hashtbl.create 8 in
  List.iter2
    (fun (w, _) tp -> Hashtbl.replace by_window w tp)
    class_list solved;
  let taus = Array.map (fun w -> fst (Hashtbl.find by_window w)) cws in
  let ps = Array.map (fun w -> snd (Hashtbl.find by_window w)) cws in
  { taus; ps; iterations = !iters; converged = true }

let solve_with_deviant ?telemetry ?(tol = 1e-14) (params : Params.t) ~n ~w
    ~w_dev =
  if n < 2 then invalid_arg "Solver.solve_with_deviant: need n >= 2";
  if w < 1 || w_dev < 1 then
    invalid_arg "Solver.solve_with_deviant: windows must be >= 1";
  let m = params.max_backoff_stage in
  (* Two-class reduction: n−1 conformers at τ, one deviant at τ_d.
     p_d = 1 − (1−τ)^{n−1};  p = 1 − (1−τ)^{n−2}·(1−τ_d). *)
  let step x =
    let tau = x.(0) and tau_dev = x.(1) in
    let others = (1. -. tau) ** float_of_int (n - 2) in
    let p = Prelude.Util.clamp ~lo:0. ~hi:1. (1. -. (others *. (1. -. tau_dev))) in
    let p_dev =
      Prelude.Util.clamp ~lo:0. ~hi:1. (1. -. (others *. (1. -. tau)))
    in
    [| Bianchi.tau_of_p ~w ~m p; Bianchi.tau_of_p ~w:w_dev ~m p_dev |]
  in
  let x0 = [| 2. /. float_of_int (w + 1); 2. /. float_of_int (w_dev + 1) |] in
  let outcome =
    Numerics.Fixed_point.solve ?telemetry ~damping:0.5 ~tol ~max_iter:50_000
      step x0
  in
  let tau = outcome.value.(0) and tau_dev = outcome.value.(1) in
  let others = (1. -. tau) ** float_of_int (n - 2) in
  let p = 1. -. (others *. (1. -. tau_dev)) in
  let p_dev = 1. -. (others *. (1. -. tau)) in
  ((tau_dev, p_dev), (tau, p))
