type solution = {
  taus : float array;
  ps : float array;
  iterations : int;
  converged : bool;
}

type algo = Newton | Picard

type class_solution = {
  class_pairs : (float * float) list;
  iterations : int;
  converged : bool;
}

type deviant_solution = {
  deviant : float * float;
  conformer : float * float;
  iterations : int;
  converged : bool;
}

(* p_i = 1 − Π_{j≠i}(1 − τ_j), computed with prefix/suffix products so a
   node with τ_j = 1 (window 1, always transmitting) does not force a
   division by zero. *)
let collision_probabilities taus =
  let n = Array.length taus in
  let prefix = Array.make (n + 1) 1. in
  let suffix = Array.make (n + 1) 1. in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) *. (1. -. taus.(i))
  done;
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) *. (1. -. taus.(i))
  done;
  Array.init n (fun i ->
      Prelude.Util.clamp ~lo:0. ~hi:1. (1. -. (prefix.(i) *. suffix.(i + 1))))

let solve ?telemetry ?(tol = 1e-13) ?(max_iter = 20_000) (params : Params.t)
    cws =
  let n = Array.length cws in
  if n = 0 then invalid_arg "Solver.solve: empty network";
  Array.iter
    (fun w -> if w < 1 then invalid_arg "Solver.solve: window must be >= 1")
    cws;
  let m = params.max_backoff_stage in
  let step taus =
    let ps = collision_probabilities taus in
    Array.mapi (fun i p -> Bianchi.tau_of_p ~w:cws.(i) ~m p) ps
  in
  let x0 = Array.map (fun w -> 2. /. float_of_int (w + 1)) cws in
  let outcome =
    Numerics.Fixed_point.solve ?telemetry ~damping:0.5 ~tol ~max_iter step x0
  in
  let taus = outcome.value in
  {
    taus;
    ps = collision_probabilities taus;
    iterations = outcome.iterations;
    converged = outcome.converged;
  }

let solve_homogeneous ?(telemetry = Telemetry.Registry.default) ?iterations
    ?guess ?(tol = 1e-14) (params : Params.t) ~n ~w =
  if n < 1 then invalid_arg "Solver.solve_homogeneous: need n >= 1";
  if w < 1 then invalid_arg "Solver.solve_homogeneous: window must be >= 1";
  let m = params.max_backoff_stage in
  let report iters =
    (match iterations with Some r -> r := iters | None -> ());
    Telemetry.Registry.emit telemetry "solver_convergence" (fun () ->
        [
          ("method", Telemetry.Jsonx.String "brent");
          ("n", Telemetry.Jsonx.Int n);
          ("w", Telemetry.Jsonx.Int w);
          ("tol", Telemetry.Jsonx.Float tol);
          ("iterations", Telemetry.Jsonx.Int iters);
          ("converged", Telemetry.Jsonx.Bool true);
        ])
  in
  if n = 1 then begin
    report 0;
    (Bianchi.tau_of_p ~w ~m 0., 0.)
  end
  else begin
    (* Defect h(τ) = τ − τ_model(p(τ)): negative at τ→0 and positive at
       τ = 1, with a single crossing (uniqueness per Bianchi). *)
    let p_of_tau tau = 1. -. ((1. -. tau) ** float_of_int (n - 1)) in
    let defect tau = tau -. Bianchi.tau_of_p ~w ~m (p_of_tau tau) in
    let eps = 1e-15 in
    let iters = ref 0 in
    (* Warm start: a neighbouring solution's τ narrows the Brent bracket
       to [g/2, 2g] when that interval still straddles the sign change;
       otherwise fall back to the full interval.  The root found is the
       same crossing either way (tolerance-level, not bit-level —
       callers that need bit-stability must not pass a guess). *)
    let lo, hi =
      match guess with
      | Some g when g > 0. && g < 1. ->
          let lo = Float.max eps (g /. 2.) and hi = Float.min 1. (g *. 2.) in
          if defect lo < 0. && defect hi > 0. then (lo, hi) else (eps, 1.)
      | _ -> (eps, 1.)
    in
    let tau = Numerics.Roots.brent ~iterations:iters ~tol defect lo hi in
    report !iters;
    (tau, p_of_tau tau)
  end

(* ---------------------------------------------------------------- *)
(* Class-space fixed points: shared Newton/Picard machinery.         *)
(* ---------------------------------------------------------------- *)

(* x^k for the small integer class counts of the hot loops.  The k ≤ 1
   cases bypass [( ** )] — IEEE pow pins pow(x, 0) = 1 and pow(x, 1) = x
   exactly, so the fast path is bit-identical to the pow the pre-Newton
   solver called, while skipping a libm call per class per iteration
   (singleton classes dominate heterogeneous sweeps). *)
let powk x k =
  if k = 0 then 1.
  else if k = 1 then x
  else x ** float_of_int k

(* Per-class collision probabilities at an iterate: Π over everyone,
   then divide out one copy of the own class.  The τ_j ≥ 1 branch
   recomputes the product excluding one member to avoid 0/0; it is the
   same arithmetic the pre-Newton solver performed, kept bit-identical
   because the degenerate conformance group pins this path. *)
let class_ps ~ks taus =
  let c = Array.length taus in
  let product = ref 1. in
  for j = 0 to c - 1 do
    product := !product *. powk (1. -. taus.(j)) ks.(j)
  done;
  Array.init c (fun j ->
      let others =
        if taus.(j) >= 1. then begin
          let rest = ref (powk (1. -. taus.(j)) (ks.(j) - 1)) in
          for j' = 0 to c - 1 do
            if j' <> j then
              rest := !rest *. powk (1. -. taus.(j')) ks.(j')
          done;
          !rest
        end
        else !product /. (1. -. taus.(j))
      in
      Prelude.Util.clamp ~lo:0. ~hi:1. (1. -. others))

(* Newton step for the class-space map g_j(τ) = φ_j(p_j(τ)), exploiting
   the rank-one structure of the Jacobian.  With O_j = Π_l(1−τ_l)^{k_l}
   / (1−τ_j) and p_j = 1 − O_j,

      ∂p_j/∂τ_i = (k_i − δ_ij)·O_j/(1−τ_i)
      J_ji = φ'_j(p_j)·(k_i − δ_ij)·O_j/(1−τ_i) = u_j·v_i − δ_ij·u_j/(1−τ_j)

   with u_j = φ'_j(p_j)·O_j and v_i = k_i/(1−τ_i).  The Newton system
   (I − J)·δ = defect is therefore (D − u·vᵀ)·δ = defect with
   D = diag(1 + u_j/(1−τ_j)), solved in O(c) by Sherman–Morrison:

      δ = D⁻¹d + D⁻¹u·(vᵀD⁻¹d)/(1 − vᵀD⁻¹u).

   [dphi ~j ~p_j ~phi_j] supplies φ'_j; for the CW-only map φ_j = τB so
   φ' = dτ/dp, and the AIFS map adds the eligibility factor's product
   rule.  Returns [None] near the τ = 1 boundary (where the product
   shortcut and the derivative both degenerate), on a near-singular
   diagonal or denominator, and on any non-finite intermediate — the
   caller then takes one damped Picard sweep instead. *)
let rank_one_newton_step ~ks ~dphi taus defect =
  let c = Array.length taus in
  let usable = ref true in
  for j = 0 to c - 1 do
    if not (Float.is_finite taus.(j)) || taus.(j) >= 1. then usable := false
  done;
  if not !usable then None
  else begin
    let product = ref 1. in
    for j = 0 to c - 1 do
      product := !product *. powk (1. -. taus.(j)) ks.(j)
    done;
    (* Single fused pass: the Sherman–Morrison dot products v·D⁻¹d and
       v·D⁻¹u accumulate alongside the per-class diagonal solves, so the
       step costs two array writes and no temporary beyond them. *)
    let d_inv_defect = Array.make c 0. in
    let d_inv_u = Array.make c 0. in
    (try
       let v_dot_d = ref 0. and v_dot_u = ref 0. in
       for j = 0 to c - 1 do
         let one_m = 1. -. taus.(j) in
         let o_j = !product /. one_m in
         let p_j = Prelude.Util.clamp ~lo:0. ~hi:1. (1. -. o_j) in
         (* The map value at p_j is x_j + defect_j by construction (up to
            one rounding), which lets dphi reuse it instead of re-deriving
            τB(w, p_j) — a derivative-only shortcut, never a τ result. *)
         let phi_j = taus.(j) +. defect.(j) in
         let u_j = dphi ~j ~p_j ~phi_j *. o_j in
         let d_j = 1. +. (u_j /. one_m) in
         if (not (Float.is_finite d_j)) || Float.abs d_j < 1e-12 then
           raise Exit;
         let did = defect.(j) /. d_j in
         let diu = u_j /. d_j in
         d_inv_defect.(j) <- did;
         d_inv_u.(j) <- diu;
         let v_j = float_of_int ks.(j) /. one_m in
         v_dot_d := !v_dot_d +. (v_j *. did);
         v_dot_u := !v_dot_u +. (v_j *. diu)
       done;
       let denom = 1. -. !v_dot_u in
       if (not (Float.is_finite denom)) || Float.abs denom < 1e-12 then
         raise Exit;
       let scale = !v_dot_d /. denom in
       let delta = d_inv_defect in
       for j = 0 to c - 1 do
         delta.(j) <- delta.(j) +. (d_inv_u.(j) *. scale)
       done;
       Some delta
     with Exit -> None)
  end

let run_class_fixed_point ?telemetry ~algo ~tol ~max_iter ~step ~newton_step x0
    =
  match algo with
  | Picard ->
      let o =
        Numerics.Fixed_point.solve ?telemetry ~damping:0.5 ~tol ~max_iter step
          x0
      in
      (o.value, o.iterations, o.converged)
  | Newton ->
      let o =
        Numerics.Newton.solve ?telemetry ~damping:0.5 ~tol ~max_iter ~lo:0.
          ~hi:1. ~step:newton_step step x0
      in
      (o.value, o.iterations, o.converged)

(* Cold-start seed for the Newton path: pool the whole network into one
   homogeneous pseudo-class (count-weighted mean window) and Brent-solve
   its scalar fixed point to 1e-6, then seed every class at its own
   Bianchi response to the pooled collision probability.  That lands the
   iterate 2–3 decades closer to the solution than the no-collision
   2/(W+1) start and typically saves one or two quadratic steps — a
   material fraction of a six-iteration solve.  The Picard path keeps the
   legacy start untouched: it *is* the pre-Newton solver, bit for bit.
   Returns [None] (caller falls back to 2/(W+1)) on trivial networks or
   when the scalar proxy degenerates. *)
let newton_cold_x0 ?telemetry (params : Params.t) ~ws ~ks =
  let c = Array.length ws in
  let n_total = Array.fold_left ( + ) 0 ks in
  if n_total < 2 then None
  else begin
    let wsum = ref 0 in
    for j = 0 to c - 1 do
      wsum := !wsum + (ws.(j) * ks.(j))
    done;
    let mean_w = max 1 (!wsum / n_total) in
    match solve_homogeneous ?telemetry ~tol:1e-6 params ~n:n_total ~w:mean_w with
    | exception _ -> None
    | _, p_star ->
        if p_star > 0. && p_star < 1. then
          Some
            (Array.init c (fun j ->
                 Bianchi.tau_of_p ~w:ws.(j) ~m:params.max_backoff_stage p_star))
        else None
  end

let solve_classes ?telemetry ?iterations ?tau_hint ?(tol = 1e-14)
    ?(algo = Newton) ?(max_iter = 50_000) (params : Params.t) classes =
  if classes = [] then invalid_arg "Solver.solve_classes: no classes";
  List.iter
    (fun (w, k) ->
      if w < 1 then invalid_arg "Solver.solve_classes: window must be >= 1";
      if k < 1 then invalid_arg "Solver.solve_classes: count must be >= 1")
    classes;
  let m = params.max_backoff_stage in
  let ws = Array.of_list (List.map fst classes) in
  let ks = Array.of_list (List.map snd classes) in
  let c = Array.length ws in
  let step taus =
    let ps = class_ps ~ks taus in
    Array.init c (fun j -> Bianchi.tau_of_p ~w:ws.(j) ~m ps.(j))
  in
  (* Specialised rank-one step for the CW-only map: the same algebra as
     {!rank_one_newton_step} with φ' inlined in its τ form (−W·S·τ²/2,
     cf. {!Bianchi.dtau_dp_at_tau}), saving a closure dispatch and a
     clamp call per class in the innermost Jacobian loop — this is the
     hot path of every cold heterogeneous solve.  Guards and fallback
     behaviour are identical: any non-finite or near-singular
     intermediate yields [None] and the caller takes a damped sweep. *)
  let newton_step taus defect =
    let c = Array.length taus in
    let usable = ref true in
    for j = 0 to c - 1 do
      if not (Float.is_finite taus.(j)) || taus.(j) >= 1. then usable := false
    done;
    if not !usable then None
    else begin
      let product = ref 1. in
      for j = 0 to c - 1 do
        product := !product *. powk (1. -. taus.(j)) ks.(j)
      done;
      let d_inv_defect = Array.make c 0. in
      let d_inv_u = Array.make c 0. in
      try
        let v_dot_d = ref 0. and v_dot_u = ref 0. in
        for j = 0 to c - 1 do
          let one_m = 1. -. taus.(j) in
          let o_j = !product /. one_m in
          let p_j = Prelude.Util.clamp ~lo:0. ~hi:1. (1. -. o_j) in
          let phi_j = taus.(j) +. defect.(j) in
          let s = ref 0. and pow = ref 1. in
          for i = 0 to m - 1 do
            s := !s +. (float_of_int (i + 1) *. !pow);
            pow := !pow *. 2. *. p_j
          done;
          let u_j =
            -0.5 *. float_of_int ws.(j) *. !s *. phi_j *. phi_j *. o_j
          in
          let d_j = 1. +. (u_j /. one_m) in
          if (not (Float.is_finite d_j)) || Float.abs d_j < 1e-12 then
            raise Exit;
          let did = defect.(j) /. d_j in
          let diu = u_j /. d_j in
          d_inv_defect.(j) <- did;
          d_inv_u.(j) <- diu;
          let v_j = float_of_int ks.(j) /. one_m in
          v_dot_d := !v_dot_d +. (v_j *. did);
          v_dot_u := !v_dot_u +. (v_j *. diu)
        done;
        let denom = 1. -. !v_dot_u in
        if (not (Float.is_finite denom)) || Float.abs denom < 1e-12 then
          raise Exit;
        let scale = !v_dot_d /. denom in
        let delta = d_inv_defect in
        for j = 0 to c - 1 do
          delta.(j) <- delta.(j) +. (d_inv_u.(j) *. scale)
        done;
        Some delta
      with Exit -> None
    end
  in
  (* Warm start: [tau_hint w] may seed a class with a τ from a
     neighbouring solved problem; classes without a hint start at the
     no-collision value 2/(W+1).  Both iterations contract to the same
     fixed point from any interior start (a property the test suite
     probes), so a hint changes the path, not the destination — at
     tolerance level, which is why warm-started answers carry a
     conformance anchor rather than a bit-identity claim. *)
  let default_x0 w = 2. /. float_of_int (w + 1) in
  let x0 =
    match tau_hint with
    | None -> (
        match algo with
        | Newton -> (
            match newton_cold_x0 ?telemetry params ~ws ~ks with
            | Some x0 -> x0
            | None -> Array.map default_x0 ws)
        | Picard -> Array.map default_x0 ws)
    | Some hint ->
        Array.map
          (fun w ->
            match hint w with
            | Some g when g > 0. && g < 1. -> g
            | _ -> default_x0 w)
          ws
  in
  let taus, iters, converged =
    run_class_fixed_point ?telemetry ~algo ~tol ~max_iter ~step ~newton_step x0
  in
  (match iterations with Some r -> r := iters | None -> ());
  let ps = class_ps ~ks taus in
  {
    class_pairs = List.init c (fun j -> (taus.(j), ps.(j)));
    iterations = iters;
    converged;
  }

(* Multi-knob class solver.  AIFS enters the coupled system through an
   eligibility factor: a node deferring a extra slots after every busy
   period can only start in a slot if none of the preceding a slots was
   busy for it, which in the mean-field model happens with probability
   (1 − p)^a.  Its *effective* per-slot transmission probability is
   therefore τ' = (1 − p)^a · τ_bianchi(W, p), and it is τ' that other
   nodes see when computing their collision probabilities.  TXOP and rate
   do not change the contention fixed point (they change channel
   occupancy and payoff, priced downstream); CW enters exactly as in
   {!solve_classes}, so at a = 0 the iteration reduces to it. *)
let solve_strategy_classes_core ?telemetry ?iterations ?tau_hint ?x0
    ~tol ~algo ~max_iter (params : Params.t) classes =
  if classes = [] then invalid_arg "Solver.solve_strategy_classes: no classes";
  List.iter
    (fun ((s : Strategy_space.t), k) ->
      (match Strategy_space.validate s with
      | Ok () -> ()
      | Error e -> invalid_arg ("Solver.solve_strategy_classes: " ^ e));
      if k < 1 then
        invalid_arg "Solver.solve_strategy_classes: count must be >= 1")
    classes;
  let m = params.max_backoff_stage in
  let ss = Array.of_list (List.map fst classes) in
  let ks = Array.of_list (List.map snd classes) in
  let c = Array.length ss in
  let step taus =
    let ps = class_ps ~ks taus in
    Array.init c (fun j ->
        let s = ss.(j) in
        let p = ps.(j) in
        let tau = Bianchi.tau_of_p ~w:s.Strategy_space.cw ~m p in
        if s.Strategy_space.aifs = 0 then tau
        else powk (1. -. p) s.Strategy_space.aifs *. tau)
  in
  (* φ_j(p) = (1−p)^a · τB(w, p), so the product rule gives
     φ'_j = (1−p)^a·dτB/dp − a·(1−p)^{a−1}·τB. *)
  let newton_step =
    rank_one_newton_step ~ks ~dphi:(fun ~j ~p_j ~phi_j ->
        let s = ss.(j) in
        let w = s.Strategy_space.cw in
        let a = s.Strategy_space.aifs in
        if a = 0 then Bianchi.dtau_dp_at_tau ~w ~m ~tau:phi_j p_j
        else
          (* φ_j = (1−p)^a·τB, so the cheap τ-form derivative needs the
             bare τB back out of the map value; near p = 1 the eligibility
             factor underflows and we re-derive τB directly instead. *)
          let elig = powk (1. -. p_j) a in
          let tau_b =
            if elig > 1e-300 then phi_j /. elig
            else Bianchi.tau_of_p ~w ~m p_j
          in
          let d = Bianchi.dtau_dp_at_tau ~w ~m ~tau:tau_b p_j in
          let elig' = float_of_int a *. powk (1. -. p_j) (a - 1) in
          (elig *. d) -. (elig' *. tau_b))
  in
  let default_x0 (s : Strategy_space.t) = 2. /. float_of_int (s.cw + 1) in
  let x0 =
    match x0 with
    | Some x0 ->
        if Array.length x0 <> c then
          invalid_arg "Solver.solve_strategy_classes: x0 length mismatch";
        Array.mapi
          (fun j g -> if g > 0. && g < 1. then g else default_x0 ss.(j))
          x0
    | None -> (
        match tau_hint with
        | None -> (
            match algo with
            | Newton -> (
                (* Proxy seed on the CW knob only — AIFS shapes the map,
                   not the seed, and a CW-only strategy profile must seed
                   bit-identically to {!solve_classes} (the degenerate
                   conformance group compares the two paths). *)
                let cws = Array.map (fun (s : Strategy_space.t) -> s.cw) ss in
                match newton_cold_x0 ?telemetry params ~ws:cws ~ks with
                | Some x0 -> x0
                | None -> Array.map default_x0 ss)
            | Picard -> Array.map default_x0 ss)
        | Some hint ->
            Array.map
              (fun s ->
                match hint s with
                | Some g when g > 0. && g < 1. -> g
                | _ -> default_x0 s)
              ss)
  in
  let taus, iters, converged =
    run_class_fixed_point ?telemetry ~algo ~tol ~max_iter ~step ~newton_step x0
  in
  (match iterations with Some r -> r := iters | None -> ());
  let ps = class_ps ~ks taus in
  {
    class_pairs = List.init c (fun j -> (taus.(j), ps.(j)));
    iterations = iters;
    converged;
  }

let solve_strategy_classes ?telemetry ?iterations ?tau_hint ?(tol = 1e-14)
    ?(algo = Newton) ?(max_iter = 50_000) (params : Params.t) classes =
  solve_strategy_classes_core ?telemetry ?iterations ?tau_hint ~tol ~algo
    ~max_iter params classes

let solve_batch ?telemetry ?(tol = 1e-14) ?(algo = Newton)
    ?(max_iter = 50_000) (params : Params.t) problems =
  (* Sweep columns vary one knob between consecutive points, so the
     previous point's τ vector is a near-fixed-point start for the next —
     position-wise when the class shape repeats (the common case), else
     matched by strategy.  Newton from a warm start typically converges
     in 2–4 accepted steps. *)
  let prev : (class_solution * Strategy_space.t array) option ref = ref None in
  Array.map
    (fun classes ->
      let ss = Array.of_list (List.map fst classes) in
      let x0 =
        match !prev with
        | Some (sol, prev_ss) when Array.length prev_ss = Array.length ss ->
            Some
              (Array.of_list (List.map fst sol.class_pairs))
        | Some (sol, prev_ss) ->
            (* Shape changed: carry over per-strategy matches, let the
               core fill the rest with the cold default. *)
            let taus = Array.of_list (List.map fst sol.class_pairs) in
            Some
              (Array.map
                 (fun s ->
                   let found = ref 0. in
                   Array.iteri
                     (fun i s' ->
                       if Strategy_space.compare s s' = 0 then
                         found := taus.(i))
                     prev_ss;
                   !found)
                 ss)
        | None -> None
      in
      let sol =
        solve_strategy_classes_core ?telemetry ?x0 ~tol ~algo ~max_iter params
          classes
      in
      prev := Some (sol, ss);
      sol)
    problems

let solve_profile ?telemetry ?iterations ?tau_hint ?tol ?algo ?max_iter
    (params : Params.t) cws =
  let n = Array.length cws in
  if n = 0 then invalid_arg "Solver.solve_profile: empty network";
  Array.iter
    (fun w -> if w < 1 then invalid_arg "Solver.solve_profile: window must be >= 1")
    cws;
  (* Group equal windows into classes: nodes sharing a window share (τ, p)
     by symmetry, so the fixed point collapses to one dimension per
     distinct window — a 100-node profile with 3 distinct windows costs the
     same as n = 3. *)
  let classes = Hashtbl.create 8 in
  Array.iter
    (fun w ->
      Hashtbl.replace classes w (1 + Option.value ~default:0 (Hashtbl.find_opt classes w)))
    cws;
  let class_list =
    Hashtbl.fold (fun w k acc -> (w, k) :: acc) classes []
    |> List.sort compare
  in
  let iters = match iterations with Some r -> r | None -> ref 0 in
  let solved =
    solve_classes ?telemetry ~iterations:iters ?tau_hint ?tol ?algo ?max_iter
      params class_list
  in
  let by_window = Hashtbl.create 8 in
  List.iter2
    (fun (w, _) tp -> Hashtbl.replace by_window w tp)
    class_list solved.class_pairs;
  let taus = Array.map (fun w -> fst (Hashtbl.find by_window w)) cws in
  let ps = Array.map (fun w -> snd (Hashtbl.find by_window w)) cws in
  { taus; ps; iterations = !iters; converged = solved.converged }

let solve_with_deviant ?telemetry ?(tol = 1e-14) ?(max_iter = 50_000)
    (params : Params.t) ~n ~w ~w_dev =
  if n < 2 then invalid_arg "Solver.solve_with_deviant: need n >= 2";
  if w < 1 || w_dev < 1 then
    invalid_arg "Solver.solve_with_deviant: windows must be >= 1";
  let m = params.max_backoff_stage in
  (* Two-class reduction: n−1 conformers at τ, one deviant at τ_d.
     p_d = 1 − (1−τ)^{n−1};  p = 1 − (1−τ)^{n−2}·(1−τ_d). *)
  let step x =
    let tau = x.(0) and tau_dev = x.(1) in
    let others = (1. -. tau) ** float_of_int (n - 2) in
    let p = Prelude.Util.clamp ~lo:0. ~hi:1. (1. -. (others *. (1. -. tau_dev))) in
    let p_dev =
      Prelude.Util.clamp ~lo:0. ~hi:1. (1. -. (others *. (1. -. tau)))
    in
    [| Bianchi.tau_of_p ~w ~m p; Bianchi.tau_of_p ~w:w_dev ~m p_dev |]
  in
  let x0 = [| 2. /. float_of_int (w + 1); 2. /. float_of_int (w_dev + 1) |] in
  let outcome =
    Numerics.Fixed_point.solve ?telemetry ~damping:0.5 ~tol ~max_iter step x0
  in
  let tau = outcome.value.(0) and tau_dev = outcome.value.(1) in
  let others = (1. -. tau) ** float_of_int (n - 2) in
  (* Clamp like every other exit path: float round-off in the product must
     not leak a collision probability epsilon-outside [0, 1]. *)
  let p =
    Prelude.Util.clamp ~lo:0. ~hi:1. (1. -. (others *. (1. -. tau_dev)))
  in
  let p_dev =
    Prelude.Util.clamp ~lo:0. ~hi:1. (1. -. (others *. (1. -. tau)))
  in
  {
    deviant = (tau_dev, p_dev);
    conformer = (tau, p);
    iterations = outcome.iterations;
    converged = outcome.converged;
  }
