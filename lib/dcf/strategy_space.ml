type t = { cw : int; aifs : int; txop_frames : int; rate : float }

let default = { cw = 32; aifs = 0; txop_frames = 1; rate = 1.0 }
let of_cw w = { cw = w; aifs = 0; txop_frames = 1; rate = 1.0 }
let is_degenerate s = s.aifs = 0 && s.txop_frames = 1 && s.rate = 1.0

let compare a b =
  let c = Stdlib.compare a.cw b.cw in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.aifs b.aifs in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.txop_frames b.txop_frames in
      if c <> 0 then c else Stdlib.compare a.rate b.rate

let equal a b = compare a b = 0

let validate ?cw_max s =
  if s.cw < 1 then Error (Printf.sprintf "cw must be >= 1 (got %d)" s.cw)
  else
    match cw_max with
    | Some hi when s.cw > hi ->
        Error (Printf.sprintf "cw %d exceeds cw_max %d" s.cw hi)
    | _ ->
        if s.aifs < 0 then
          Error (Printf.sprintf "aifs must be >= 0 (got %d)" s.aifs)
        else if s.txop_frames < 1 then
          Error
            (Printf.sprintf "txop_frames must be >= 1 (got %d)" s.txop_frames)
        else if not (Float.is_finite s.rate && s.rate > 0.) then
          Error (Printf.sprintf "rate must be finite and > 0 (got %g)" s.rate)
        else Ok ()

let pp fmt s =
  if is_degenerate s then Format.fprintf fmt "%d" s.cw
  else
    Format.fprintf fmt "(cw=%d,aifs=%d,txop=%d,rate=%g)" s.cw s.aifs
      s.txop_frames s.rate

(* Degenerate strategies keep the bare "w<cw>" shape so CW-only store keys
   stay recognisable; %h makes the rate component bit-faithful. *)
let to_key s =
  if is_degenerate s then Printf.sprintf "w%d" s.cw
  else Printf.sprintf "w%d.a%d.t%d.r%h" s.cw s.aifs s.txop_frames s.rate

let fingerprint s = Prelude.Util.fnv1a64 (to_key s)

let to_json s =
  if is_degenerate s then Telemetry.Jsonx.Int s.cw
  else
    Telemetry.Jsonx.Obj
      [
        ("cw", Telemetry.Jsonx.Int s.cw);
        ("aifs", Telemetry.Jsonx.Int s.aifs);
        ("txop", Telemetry.Jsonx.Int s.txop_frames);
        ("rate", Telemetry.Jsonx.Float s.rate);
      ]

let of_json json =
  let open Telemetry.Jsonx in
  match json with
  | Int w when w >= 1 -> Ok (of_cw w)
  | Int w -> Error (Printf.sprintf "cw must be >= 1 (got %d)" w)
  | Obj _ -> (
      let int_field name ~default =
        match member name json with
        | Some (Int v) -> Ok v
        | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
        | None -> Ok default
      in
      let ( let* ) = Result.bind in
      let* cw =
        match member "cw" json with
        | Some (Int v) -> Ok v
        | Some _ -> Error "field \"cw\" must be an integer"
        | None -> Error "missing field \"cw\""
      in
      let* aifs = int_field "aifs" ~default:0 in
      let* txop_frames = int_field "txop" ~default:1 in
      let* rate =
        match member "rate" json with
        | None -> Ok 1.0
        | Some v -> (
            match to_float_opt v with
            | Some r -> Ok r
            | None -> Error "field \"rate\" must be a number")
      in
      let s = { cw; aifs; txop_frames; rate } in
      Result.map (fun () -> s) (validate s))
  | _ -> Error "strategy must be an integer CW or an object"

type times = { ts : float; ts1 : float; tc : float; payload : float }

let times (p : Params.t) ~(base : Timing.t) s =
  if s.txop_frames = 1 && s.rate = 1.0 then
    { ts = base.ts; ts1 = base.ts; tc = base.tc; payload = base.payload }
  else
    let payload_airtime =
      float_of_int p.payload_bits /. (p.bit_rate *. s.rate)
    in
    let burst = Timing.burst p ~frames:s.txop_frames ~payload_airtime in
    let single = Timing.burst p ~frames:1 ~payload_airtime in
    { ts = burst.ts; ts1 = single.ts; tc = burst.tc; payload = payload_airtime }

type space = {
  cw_min : int;
  cw_max : int;
  aifs_max : int;
  txop_max : int;
  rates : float array;
}

let cw_only_space ~cw_max =
  { cw_min = 1; cw_max; aifs_max = 0; txop_max = 1; rates = [| 1.0 |] }

let edca_space ?(aifs_max = 4) ?(txop_max = 4) ?(rates = [| 1.0 |]) ~cw_max ()
    =
  { cw_min = 1; cw_max; aifs_max; txop_max; rates }

let space_validate sp =
  if sp.cw_min < 1 || sp.cw_max < sp.cw_min then
    Error
      (Printf.sprintf "cw range [%d, %d] is invalid" sp.cw_min sp.cw_max)
  else if sp.aifs_max < 0 then Error "aifs_max must be >= 0"
  else if sp.txop_max < 1 then Error "txop_max must be >= 1"
  else if Array.length sp.rates = 0 then Error "rates must be non-empty"
  else if not (Array.exists (fun r -> r = 1.0) sp.rates) then
    Error "rates must include the base rate 1.0"
  else if not (Array.for_all (fun r -> Float.is_finite r && r > 0.) sp.rates)
  then Error "rates must be finite and > 0"
  else Ok ()

let mem sp s =
  s.cw >= sp.cw_min && s.cw <= sp.cw_max && s.aifs >= 0
  && s.aifs <= sp.aifs_max && s.txop_frames >= 1
  && s.txop_frames <= sp.txop_max
  && Array.exists (fun r -> r = s.rate) sp.rates
