(** Protocol and game parameters (Table I of the paper).

    All durations are in seconds, all frame sizes in bits.  The default
    values are exactly Table I: 8184-bit payload, 272-bit MAC header,
    128-bit PHY header, 112-bit ACK/CTS and 160-bit RTS (each plus a PHY
    header on the air), 1 Mbit/s channel, σ = 50 µs, SIFS = 28 µs,
    DIFS = 128 µs, gain g = 1, cost e = 0.01, stage length T = 10 s,
    discount δ = 0.9999.

    Table I does not give the maximum backoff stage m; we default to m = 5
    (CWmax = 2⁵·CWmin as in standard DCF) and expose it. *)

type access_mode = Basic | Rts_cts

val pp_access_mode : Format.formatter -> access_mode -> unit

type t = {
  payload_bits : int;
  mac_header_bits : int;
  phy_header_bits : int;
  ack_bits : int;      (** excluding PHY header *)
  rts_bits : int;      (** excluding PHY header *)
  cts_bits : int;      (** excluding PHY header *)
  bit_rate : float;    (** bit/s *)
  sigma : float;       (** empty slot duration, s *)
  sifs : float;
  difs : float;
  gain : float;        (** g, reward for a delivered packet *)
  cost : float;        (** e, energy cost of a transmission attempt *)
  stage_duration : float;  (** T, duration of one game stage, s *)
  discount : float;        (** δ, per-stage discount factor *)
  max_backoff_stage : int; (** m, number of CW doublings *)
  cw_max : int;        (** W_max, upper end of the strategy space *)
  mode : access_mode;
}

val default : t
(** Table I values, basic access, m = 5, W_max = 4096. *)

val rts_cts : t
(** {!default} with RTS/CTS access. *)

val with_mode : access_mode -> t -> t

val aifs_duration : t -> slots:int -> float
(** Wall-clock cost of [slots] extra AIFS defer slots ([slots · σ]).
    AIFS is modeled as whole backoff slots of additional defer after every
    busy period, on top of the DIFS already folded into Ts.
    @raise Invalid_argument if [slots < 0]. *)

val validate : t -> (unit, string) result
(** Check positivity/range constraints (rates, durations, g > e ≥ 0,
    0 < δ < 1, m ≥ 0, W_max ≥ 1).  Used by the CLI before running. *)

val pp : Format.formatter -> t -> unit
(** Multi-line rendering of every field with units, for the [table1]
    bench. *)
