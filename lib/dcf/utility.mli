(** The paper's utility model (Sec. IV and VI.A).

    Node i's payoff rate ("expected gain per unit time") is

    u_i = τ_i·((1−p_i)·g − e) / T̄slot                      (single-hop)
    u_i = τ_i·((1−p_i)·p_hn·g − e) / T̄slot                 (multi-hop)

    where g is the gain of a delivered packet, e the energy cost of an
    attempt, and p_hn ∈ (0, 1] the hidden-node degradation factor: a
    fraction 1 − p_hn of transmissions that survive contention within
    carrier-sense range still collide at the receiver because of hidden
    terminals.  The single-hop form is the p_hn = 1 special case.

    Stage and discounted utilities follow Definition 1:
    U_i^s = u_i·T and U_i = Σ_k δ^k·U_i^s = u_i·T/(1−δ) for a profile held
    forever. *)

val rates : ?p_hn:float -> Params.t -> taus:float array -> ps:float array ->
  float array
(** Per-node payoff rates u_i for a solved profile.  [p_hn] defaults to 1
    and must lie in (0, 1]. *)

val rate_of_node :
  ?p_hn:float -> Params.t -> slot_time:float -> tau:float -> p:float -> float
(** One node's u_i given an externally computed mean slot time (used by the
    multi-hop model, where each node sees its own local T̄slot). *)

val rate_of_strategy :
  ?p_hn:float -> Params.t -> slot_time:float -> tau:float -> p:float ->
  frames:int -> float
(** TXOP-aware payoff rate: a successful access delivers [frames] frames
    (gain k·g, cost k·e) while a collision wastes a single frame (cost e),
    so u = τ·((1−p)·p_hn·k·g − e·(1 + (1−p)(k−1))) / T̄slot.  [frames = 1]
    delegates to {!rate_of_node} (bit-identical). *)

val stage : Params.t -> float -> float
(** [stage params u] is the stage payoff U^s = u·T. *)

val discounted : Params.t -> float -> float
(** [discounted params u] is Σ_{k≥0} δ^k·u·T = u·T/(1−δ). *)

val discounted_tail : Params.t -> from_stage:int -> float -> float
(** Σ_{k≥from_stage} δ^k·u·T = δ^{from_stage}·u·T/(1−δ). *)

val social_welfare : float array -> float
(** Σ_i u_i — the global payoff rate of Sec. V.B. *)

val normalized_global : Params.t -> float array -> float
(** The Y-axis of Figures 2–3: U/C with U = T/(1−δ)·Σ_i u_i and
    C = g·T/(σ(1−δ)), i.e. σ·Σ_i u_i/g — dimensionless. *)
