(** Multi-dimensional MAC strategy: the (CW, AIFS, TXOP, rate) knobs.

    The paper's game is CW-only, but real 802.11e selfishness plays every
    EDCA knob (Banchs et al., arXiv 1311.6280; Tinnirello et al., arXiv
    1008.4463): shrink the contention window, shorten the arbitration
    inter-frame space, stretch the transmission opportunity, or force a
    higher PHY rate.  This module is the single source of truth for that
    strategy record — its canonical order, its persistent fingerprint, and
    its JSON codec — so that every layer (solver, oracle, simulators,
    store, serve) keys on the same value.

    The CW-only subspace [{aifs = 0; txop_frames = 1; rate = 1.0}] is the
    {e degenerate subspace}: every consumer is required to reproduce the
    pre-refactor CW-only answers bit-identically on it.  [is_degenerate]
    is the branch point consumers use to delegate to the legacy code
    paths. *)

type t = {
  cw : int;          (** minimum contention window W (slots), ≥ 1 *)
  aifs : int;        (** extra defer slots beyond DIFS after a busy period, ≥ 0 *)
  txop_frames : int; (** frames sent back-to-back per channel access, ≥ 1 *)
  rate : float;      (** payload PHY-rate multiplier on the base bit rate, > 0 *)
}

val default : t
(** Honest station: CW 32, no extra AIFS slots, single-frame TXOP, base
    rate. *)

val of_cw : int -> t
(** [of_cw w] is the degenerate (CW-only) strategy with window [w]. *)

val is_degenerate : t -> bool
(** No knob other than CW moved: [aifs = 0 && txop_frames = 1 && rate = 1.0]. *)

val compare : t -> t -> int
(** Canonical total order: lexicographic on (cw, aifs, txop_frames, rate).
    Profiles sorted with it are permutation-invariant multisets. *)

val equal : t -> t -> bool

val validate : ?cw_max:int -> t -> (unit, string) result
(** Range checks: [1 ≤ cw ≤ cw_max] (when given), [0 ≤ aifs],
    [1 ≤ txop_frames], [rate > 0]. *)

val pp : Format.formatter -> t -> unit
(** Compact rendering: a bare window ["32"] for degenerate strategies,
    ["(cw=16,aifs=2,txop=4,rate=2)"] otherwise. *)

val to_key : t -> string
(** Deterministic key fragment for store/memo addressing: ["w32"] for
    degenerate strategies (so CW-only keys keep their historical shape),
    ["w16.a2.t4.r<hex-float>"] otherwise.  The rate uses [%h] so the key
    is bit-faithful. *)

val fingerprint : t -> int64
(** FNV-1a of [to_key]: stable across runs, platforms and field
    orderings. *)

val to_json : t -> Telemetry.Jsonx.t
(** Degenerate strategies render as a bare [Int cw] (the historical wire
    shorthand); anything else as
    [{"cw":_, "aifs":_, "txop":_, "rate":_}]. *)

val of_json : Telemetry.Jsonx.t -> (t, string) result
(** Accepts the bare-int CW shorthand and the object form (field order
    irrelevant; [aifs]/[txop]/[rate] optional, defaulting to the
    degenerate values). *)

(** {1 Per-strategy channel occupancy} *)

type times = {
  ts : float;      (** success occupancy of a full TXOP burst, s *)
  ts1 : float;     (** success occupancy of a single frame (PER-corrupted
                       accesses abort the burst after frame one), s *)
  tc : float;      (** collision occupancy, s *)
  payload : float; (** per-frame payload airtime at the node's rate, s *)
}

val times : Params.t -> base:Timing.t -> t -> times
(** Occupancy durations for one node playing [t].  For degenerate timing
    (txop = 1 and rate = 1.0 — AIFS does not change frame durations) the
    [base] durations are passed through untouched, which makes the
    degenerate-subspace bit-identity structural rather than numerical. *)

(** {1 Discrete strategy spaces for NE search} *)

type space = {
  cw_min : int;
  cw_max : int;
  aifs_max : int;        (** AIFS dimension is [0 .. aifs_max] *)
  txop_max : int;        (** TXOP dimension is [1 .. txop_max] *)
  rates : float array;   (** admissible rate multipliers, must include 1.0 *)
}

val cw_only_space : cw_max:int -> space
(** The paper's original strategy space: CW in [1, cw_max], every other
    dimension pinned to its degenerate value. *)

val edca_space : ?aifs_max:int -> ?txop_max:int -> ?rates:float array ->
  cw_max:int -> unit -> space
(** Multi-knob space; defaults: [aifs_max = 4], [txop_max = 4],
    [rates = [|1.0|]]. *)

val space_validate : space -> (unit, string) result

val mem : space -> t -> bool
(** Membership in the discrete grid ([rate] by float equality against
    [rates]). *)
