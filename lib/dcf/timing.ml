type t = { ts : float; tc : float; payload : float; header : float }

let tx_time (p : Params.t) bits = float_of_int bits /. p.bit_rate

let of_params (p : Params.t) =
  let header = tx_time p (p.phy_header_bits + p.mac_header_bits) in
  let payload = tx_time p p.payload_bits in
  let ack = tx_time p (p.ack_bits + p.phy_header_bits) in
  let rts = tx_time p (p.rts_bits + p.phy_header_bits) in
  let cts = tx_time p (p.cts_bits + p.phy_header_bits) in
  match p.mode with
  | Params.Basic ->
      {
        ts = header +. payload +. p.sifs +. ack +. p.difs;
        tc = header +. payload +. p.sifs;
        payload;
        header;
      }
  | Params.Rts_cts ->
      {
        ts =
          rts +. p.sifs +. cts +. p.sifs +. header +. payload +. p.sifs +. ack
          +. p.difs;
        tc = rts +. p.difs;
        payload;
        header;
      }

(* A TXOP burst wins contention once and sends [frames] data frames
   back-to-back, each individually acknowledged, with SIFS between
   consecutive frame exchanges; the closing DIFS is paid once.  Collisions
   can only hit the first access of the burst (basic: first data frame;
   RTS/CTS: the RTS), so Tc is independent of the burst length. *)
let burst (p : Params.t) ~frames ~payload_airtime =
  if frames < 1 then invalid_arg "Timing.burst: frames must be >= 1";
  let k = float_of_int frames in
  let header = tx_time p (p.phy_header_bits + p.mac_header_bits) in
  let ack = tx_time p (p.ack_bits + p.phy_header_bits) in
  let rts = tx_time p (p.rts_bits + p.phy_header_bits) in
  let cts = tx_time p (p.cts_bits + p.phy_header_bits) in
  let frame = header +. payload_airtime +. p.sifs +. ack in
  match p.mode with
  | Params.Basic ->
      {
        ts = (k *. frame) +. ((k -. 1.) *. p.sifs) +. p.difs;
        tc = header +. payload_airtime +. p.sifs;
        payload = payload_airtime;
        header;
      }
  | Params.Rts_cts ->
      {
        ts =
          rts +. p.sifs +. cts +. p.sifs
          +. (k *. frame)
          +. ((k -. 1.) *. p.sifs)
          +. p.difs;
        tc = rts +. p.difs;
        payload = payload_airtime;
        header;
      }
