(** Coupled fixed point of the heterogeneous network model.

    Combining eq. 2 (τ_i from p_i and W_i) with eq. 3
    (p_i = 1 − Π_{j≠i}(1 − τ_j)) gives 2n equations in 2n unknowns; we solve
    the equivalent n-dimensional fixed point on the τ vector.  The class
    solvers run a damped-Newton iteration on the defect by default — the
    Jacobian of the class-space map is diagonal plus rank-one, so each
    Newton step costs O(c) via Sherman–Morrison — and fall back to the
    damped Picard sweep on any refused, singular, or non-contracting step.
    [1] proves uniqueness for homogeneous windows; for the heterogeneous
    profiles used in the experiments both iterations converge to the same
    point from any interior start (a property the test suite probes from
    randomised starting points, and the [solver_core] conformance group
    pins Newton against Picard at ≤1e-10 relative). *)

type solution = {
  taus : float array;  (** per-node transmission probability *)
  ps : float array;    (** per-node conditional collision probability *)
  iterations : int;
  converged : bool;
}

type algo =
  | Newton  (** damped Newton with O(c) rank-one steps, Picard fallback *)
  | Picard  (** the pre-Newton damped fixed-point iteration, kept as the
                reference path for conformance and benchmarks *)

type class_solution = {
  class_pairs : (float * float) list;
      (** per-class (τ, p) in input order; for strategy classes τ is the
          {e effective} transmission probability (AIFS-discounted) *)
  iterations : int;  (** map evaluations spent by the underlying solver *)
  converged : bool;  (** whether the final defect fell below [tol] *)
}

type deviant_solution = {
  deviant : float * float;     (** (τ_dev, p_dev) of the deviant *)
  conformer : float * float;   (** (τ, p) of each conformer *)
  iterations : int;
  converged : bool;
}

val solve :
  ?telemetry:Telemetry.Registry.t ->
  ?tol:float -> ?max_iter:int -> Params.t -> int array -> solution
(** [solve params cws] solves the network in which node i uses initial
    window [cws.(i)] by per-node damped Picard iteration.  All windows must
    be ≥ 1; the array must be non-empty.  Defaults: [tol = 1e-13],
    [max_iter = 20_000].  Convergence telemetry (span,
    ["solver_convergence"] and ["residual_trajectory"] events) flows
    through {!Numerics.Fixed_point.solve} on [telemetry] (default: the
    global registry). *)

val solve_homogeneous :
  ?telemetry:Telemetry.Registry.t -> ?iterations:int ref -> ?guess:float ->
  ?tol:float -> Params.t -> n:int -> w:int -> float * float
(** [(τ, p)] for [n ≥ 1] nodes all using window [w]: the scalar fixed point
    τ = τ(1 − (1−τ)^{n−1}), solved by Brent's method on the defect.  Orders
    of magnitude faster than the vector solve; used by the CW sweeps.
    [iterations], when given, receives Brent's iteration count (0 for the
    trivial n = 1 case) — the scalar path's analogue of
    [solution.iterations]; the same count is reported in a
    ["solver_convergence"] event.

    [guess] warm-starts the solve from a neighbouring problem's τ: when
    [[g/2, 2g]] still brackets the sign change, Brent runs on that
    interval instead of the full (0, 1], typically halving the iteration
    count.  The answer agrees with the cold solve at tolerance level,
    {e not} bit level — callers that promise bit-stability (the memoized
    oracle's default path) must not pass a guess. *)

val solve_with_deviant :
  ?telemetry:Telemetry.Registry.t ->
  ?tol:float -> ?max_iter:int -> Params.t -> n:int -> w:int -> w_dev:int ->
  deviant_solution
(** One deviant at window [w_dev] among [n ≥ 2] nodes whose other n−1
    members use [w].  Solves the reduced 2-dimensional fixed point; used by
    the deviation analyses (Lemma 4, Sec. V.D/V.E) where the full vector
    solve would be wasteful.  All four returned probabilities are clamped
    into [0, 1] (round-off in the final recomputation must not leak an
    epsilon-outside value), and [converged] reports the underlying
    fixed-point outcome instead of being assumed. *)

val solve_classes :
  ?telemetry:Telemetry.Registry.t -> ?iterations:int ref ->
  ?tau_hint:(int -> float option) ->
  ?tol:float -> ?algo:algo -> ?max_iter:int ->
  Params.t -> (int * int) list -> class_solution
(** [solve_classes params [(w1, k1); …]] solves a network of Σk_c nodes in
    which [k_c] nodes share window [w_c], reducing the fixed point to one
    (τ, p) pair per class:

    p_c = 1 − Π_{c'} (1−τ_{c'})^{k_{c'}} / (1−τ_c).

    Returns the per-class [(τ_c, p_c)] in input order together with the
    iteration count and the {e real} convergence flag.  This is what the
    coalition analyses use — a 3-class problem costs the same as n = 3.
    Windows must be ≥ 1 and counts ≥ 1; classes may repeat a window.
    [algo] defaults to [Newton] (the Jacobian is computed from
    {!Bianchi.dtau_dp} and the prefix/suffix product derivatives); pass
    [Picard] to force the reference iteration.  [tau_hint w] may seed
    class [w]'s starting iterate with a τ from a neighbouring solved
    problem (warm start); hints outside (0, 1) are ignored.  Both
    iterations converge to the same fixed point from any interior start,
    so hints trade bit-stability for iterations exactly like
    {!solve_homogeneous}'s [guess]. *)

val solve_strategy_classes :
  ?telemetry:Telemetry.Registry.t -> ?iterations:int ref ->
  ?tau_hint:(Strategy_space.t -> float option) ->
  ?tol:float -> ?algo:algo -> ?max_iter:int ->
  Params.t -> (Strategy_space.t * int) list -> class_solution
(** Multi-knob analogue of {!solve_classes}: [k_c] nodes share strategy
    [s_c].  AIFS couples into the fixed point through an eligibility
    factor — a node deferring [a] extra slots after every busy period only
    reaches a transmission slot with probability (1 − p)^a in the
    mean-field model, so its effective per-slot transmission probability
    is τ' = (1 − p)^a · τ_bianchi(W, p), and it is τ' that enters every
    other node's collision probability.  The Newton Jacobian carries the
    eligibility factor through the product rule:
    φ' = (1−p)^a·dτB/dp − a·(1−p)^{a−1}·τB.  TXOP and rate leave the
    contention fixed point untouched (they are priced in channel occupancy
    and utility downstream).  Returns per-class [(τ'_c, p_c)] in input
    order.  [tau_hint s] warm-starts class [s] like {!solve_classes}'s
    window-keyed hint — this is the multi-knob end of the PR 7 warm-start
    throughline.  At [aifs = 0] for every class the iteration map is the
    {!solve_classes} map composed with a multiplication by 1.0 — callers
    that need the bit-identity guarantee for the degenerate subspace
    should branch to {!solve_classes} instead (as {!Model.solve_strategies}
    does). *)

val solve_batch :
  ?telemetry:Telemetry.Registry.t ->
  ?tol:float -> ?algo:algo -> ?max_iter:int ->
  Params.t -> (Strategy_space.t * int) list array -> class_solution array
(** [solve_batch params problems] solves a sweep column of strategy-class
    problems in order, reusing each point's τ vector as the next point's
    starting iterate — position-wise when consecutive problems share a
    class shape (the common case in sweep grids), matched by strategy when
    the shape changes.  Newton from a warm start typically needs 2–4
    accepted steps, so a dense sweep amortizes to a fraction of the cold
    per-point cost.  Answers agree with per-point cold solves at tolerance
    level, {e not} bit level — the batched path is for sweeps and grids,
    not for the oracle's bit-stable memoized entries. *)

val solve_profile :
  ?telemetry:Telemetry.Registry.t -> ?iterations:int ref ->
  ?tau_hint:(int -> float option) ->
  ?tol:float -> ?algo:algo -> ?max_iter:int ->
  Params.t -> int array -> solution
(** [solve_profile params cws] solves the same network as {!solve} but
    class-reduced: nodes sharing a window share (τ, p) by symmetry, so the
    profile is grouped into distinct-window classes (sorted ascending, so
    any permutation of [cws] solves the identical class problem), handed to
    {!solve_classes}, and the per-class pairs are expanded back to per-node
    arrays in input order.  This is the payoff oracle's canonical solve
    entry: orders of magnitude cheaper than the n-dimensional Picard
    iteration when the profile has few distinct windows (the common case in
    repeated games), and permutation-invariant by construction.
    [converged] is threaded from the underlying class solve — it is no
    longer assumed [true]. *)

val collision_probabilities : float array -> float array
(** [collision_probabilities taus] evaluates eq. 3 for every node, using
    prefix/suffix products so nodes with τ = 1 (window 1) are handled
    without dividing by zero. *)
