(** Closed forms of the per-node backoff Markov chain (Sec. III).

    The chain of node i has states (j, k): backoff stage j ∈ [0, m] with
    contention window 2^j·W_i, and backoff counter k.  Conditioned on a
    constant per-attempt collision probability p, the stationary transmission
    probability is (eq. 2, written in its singularity-free form)

    τ = 2 / (1 + W + p·W·Σ_{j=0}^{m−1} (2p)^j).

    This module also exposes the full stationary distribution so that tests
    can verify normalisation and the equivalence of the two published forms
    of eq. 2 (the (1−2p)-ratio form is singular at p = 1/2). *)

val tau_of_p : w:int -> m:int -> float -> float
(** [tau_of_p ~w ~m p] is the transmission probability of a node with
    initial window [w ≥ 1] and [m ≥ 0] doubling stages facing collision
    probability [p ∈ [0, 1]].  Decreasing in both [p] and [w]. *)

val dtau_dp : w:int -> m:int -> float -> float
(** [dtau_dp ~w ~m p] is the analytic derivative of {!tau_of_p} in [p]:
    with D(p) = 1 + W + W·Σ_{j=0}^{m−1} 2^j·p^(j+1) the value is
    −2·W·Σ_{j=0}^{m−1}(j+1)(2p)^j / D².  Always ≤ 0 (τ decreases in p).
    Feeds the Newton Jacobian of the coupled τ/p fixed point. *)

val dtau_dp_at_tau : w:int -> m:int -> tau:float -> float -> float
(** [dtau_dp_at_tau ~w ~m ~tau p] equals {!dtau_dp} up to round-off when
    [tau = tau_of_p ~w ~m p]: since τ = 2/D, the derivative −2·W·S/D²
    collapses to −W·S·τ²/2 with S = Σ_{j<m}(j+1)(2p)^j, skipping the D
    recomputation.  The fast path for Jacobian assembly when the caller
    already evaluated the map at [p]; garbage in ([tau] not matching [p])
    gives garbage out. *)

val tau_of_p_ratio_form : w:int -> m:int -> float -> float
(** The paper's first printed form 2(1−2p)/((1−2p)(W+1)+pW(1−(2p)^m)).
    Equal to {!tau_of_p} everywhere except at the removable singularity
    p = 1/2, where it is NaN.  Exposed for the equivalence test only. *)

type stationary = {
  q00 : float;              (** mass of state (0,0) *)
  stage_heads : float array;(** q(j,0) for j = 0..m *)
  tau : float;              (** Σ_j q(j,0) *)
}

val stationary : w:int -> m:int -> float -> stationary
(** Full stationary solution of the chain at collision probability [p].
    The total mass Σ_{j,k} q(j,k) is 1 by construction; tests verify it by
    explicit summation. *)

val total_mass : w:int -> m:int -> stationary -> float
(** Σ_{j=0}^{m} Σ_{k=0}^{2^j·w−1} q(j,k), computed by explicit summation
    over stages (the within-stage sum has the closed form
    (2^j·w+1)/2·q(j,0)).  Should be 1. *)

val expected_backoff : w:int -> float
(** Mean backoff counter drawn at stage 0: (w−1)/2 slots.  Used by the CW
    observer. *)
