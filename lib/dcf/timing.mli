(** Channel occupancy durations derived from the protocol parameters.

    Following Sec. III (basic access) and Sec. V.F (RTS/CTS), neglecting
    propagation delay:

    - basic:   Ts = H + P + SIFS + ACK + DIFS,  Tc = H + P + SIFS
    - RTS/CTS: Ts = RTS + SIFS + CTS + SIFS + H + P + SIFS + ACK + DIFS,
               Tc = RTS + DIFS

    where H is the PHY+MAC header time, P the payload time, and ACK/RTS/CTS
    times include a PHY header each. *)

type t = {
  ts : float;       (** channel busy time of a successful transmission, s *)
  tc : float;       (** channel busy time of a collision, s *)
  payload : float;  (** payload airtime P, s (equals E[P] in the S formula) *)
  header : float;   (** PHY+MAC header airtime H, s *)
}

val of_params : Params.t -> t
(** Durations for the parameter set's access mode. *)

val tx_time : Params.t -> int -> float
(** [tx_time p bits] is the airtime of [bits] at the channel bit rate. *)

val burst : Params.t -> frames:int -> payload_airtime:float -> t
(** Durations of a [frames]-long TXOP burst whose per-frame payload
    airtime is [payload_airtime] (which may differ from the base-rate
    payload time when the node transmits at another PHY rate; headers,
    control frames and ACKs stay at the base rate).

    - basic:   Ts = k·(H+P'+SIFS+ACK) + (k−1)·SIFS + DIFS,
               Tc = H + P' + SIFS
    - RTS/CTS: Ts = RTS + SIFS + CTS + SIFS + k·(H+P'+SIFS+ACK)
               + (k−1)·SIFS + DIFS,  Tc = RTS + DIFS

    Collisions only ever hit the first access of a burst, so Tc does not
    depend on [frames].  [frames = 1] with the base-rate payload airtime
    reproduces {!of_params} exactly. *)
