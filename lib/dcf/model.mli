(** High-level facade over the analytic model: one call from a CW profile to
    everything the game layer consumes.

    The game layer ({!module:Macgame}) manipulates CW profiles only through
    this module, so the whole Bianchi machinery stays an implementation
    detail of the [dcf] library. *)

type solved = {
  params : Params.t;
  cws : int array;
  taus : float array;
  ps : float array;
  metrics : Metrics.t;
  utilities : float array;  (** payoff rates u_i *)
  converged : bool;
      (** whether the underlying fixed point actually converged — callers
          that persist or serve answers must check this *)
}

val solve : ?p_hn:float -> Params.t -> int array -> solved
(** Solve the fixed point for a heterogeneous profile and evaluate
    metrics and utilities.  [p_hn] (default 1) is the multi-hop
    hidden-node degradation factor applied to every node. *)

val solve_profile :
  ?p_hn:float -> ?iterations:int ref -> ?tau_hint:(int -> float option) ->
  ?max_iter:int -> Params.t -> int array -> solved
(** Like {!solve} but through {!Solver.solve_profile}: the fixed point is
    class-reduced over distinct windows, so equal windows get bit-identical
    (τ, p, u) and the result is invariant under profile permutation.  The
    payoff oracle's heterogeneous path.  [iterations], [tau_hint] (warm
    start) and [max_iter] pass through to {!Solver.solve_profile}. *)

type strategy_solved = {
  params : Params.t;
  strategies : Strategy_space.t array;
  taus : float array;
      (** effective per-slot transmission probabilities τ'_i *)
  ps : float array;
  slot_time : float;
  utilities : float array;  (** TXOP-aware payoff rates u_i *)
  goodputs : float array;
      (** per-node normalised goodput (burst payload credited to the
          access) *)
  converged : bool;  (** threaded from the underlying class solve *)
}

val solve_strategies :
  ?p_hn:float -> ?iterations:int ref ->
  ?tau_hint:(Strategy_space.t -> float option) -> ?max_iter:int ->
  Params.t -> Strategy_space.t array -> strategy_solved
(** Solve a full multi-knob strategy profile.  When every strategy is
    degenerate (CW-only) this delegates to {!solve_profile} verbatim, so
    the degenerate subspace reproduces the CW-only answers bit-identically
    (taus/ps/utilities equal [solved]'s, [slot_time] =
    [metrics.slot_time], [goodputs] = [metrics.per_node_throughput]).
    Otherwise: contention via {!Solver.solve_strategy_classes} (AIFS
    eligibility coupling), channel occupancy via {!Hetero.of_profile} with
    per-strategy burst/rate durations, and payoffs via
    {!Utility.rate_of_strategy}.  [tau_hint] warm-starts the class solve
    (strategy-keyed; on the degenerate branch it is adapted to the
    window-keyed {!solve_profile} hint), and [max_iter] bounds the
    underlying iteration — both pass straight through to the solver. *)

type node_view = {
  tau : float;
  p : float;
  utility : float;     (** payoff rate u *)
  throughput : float;  (** node's share of S *)
  slot_time : float;   (** network T̄slot *)
}

val homogeneous : ?p_hn:float -> Params.t -> n:int -> w:int -> node_view
(** Per-node view of the symmetric network (all [n] nodes on window [w]),
    via the fast scalar solve. *)

val homogeneous_welfare : ?p_hn:float -> Params.t -> n:int -> w:int -> float
(** n·u for the symmetric network: the global payoff rate plotted in
    Figures 2–3 (up to the constant C). *)

type deviation_view = {
  deviant : node_view;
  conformer : node_view;
  converged : bool;
}

val with_deviant :
  ?p_hn:float -> Params.t -> n:int -> w:int -> w_dev:int -> deviation_view
(** Views of both classes when one node plays [w_dev] against n−1 nodes on
    [w] (Lemma 4's configuration), via the fast two-class solve.
    [converged] reports the underlying two-dimensional fixed point's real
    outcome. *)
