let check_p_hn p_hn =
  if p_hn <= 0. || p_hn > 1. then
    invalid_arg "Utility: p_hn must be in (0, 1]"

let rate_of_node ?(p_hn = 1.) (params : Params.t) ~slot_time ~tau ~p =
  check_p_hn p_hn;
  tau *. (((1. -. p) *. p_hn *. params.gain) -. params.cost) /. slot_time

(* TXOP amortization: one contention win delivers [frames] frames, so a
   successful access gains k·g and costs k·e while a collision still costs
   a single frame.  E[cost per access] = e·(1 + (1−p)(k−1)); k = 1
   collapses to [rate_of_node]'s per-access economics. *)
let rate_of_strategy ?(p_hn = 1.) (params : Params.t) ~slot_time ~tau ~p
    ~frames =
  check_p_hn p_hn;
  if frames < 1 then invalid_arg "Utility.rate_of_strategy: frames must be >= 1";
  if frames = 1 then rate_of_node ~p_hn params ~slot_time ~tau ~p
  else
    let k = float_of_int frames in
    let gain = (1. -. p) *. p_hn *. k *. params.gain in
    let cost = params.cost *. (1. +. ((1. -. p) *. (k -. 1.))) in
    tau *. (gain -. cost) /. slot_time

let rates ?(p_hn = 1.) (params : Params.t) ~taus ~ps =
  check_p_hn p_hn;
  if Array.length taus <> Array.length ps then
    invalid_arg "Utility.rates: profile length mismatch";
  let metrics = Metrics.of_taus params taus in
  Array.map2
    (fun tau p -> rate_of_node ~p_hn params ~slot_time:metrics.slot_time ~tau ~p)
    taus ps

let stage (params : Params.t) u = u *. params.stage_duration

let discounted (params : Params.t) u =
  u *. params.stage_duration /. (1. -. params.discount)

let discounted_tail (params : Params.t) ~from_stage u =
  (params.discount ** float_of_int from_stage) *. discounted params u

let social_welfare = Array.fold_left ( +. ) 0.

let normalized_global (params : Params.t) rates =
  params.sigma *. social_welfare rates /. params.gain
