type solved = {
  params : Params.t;
  cws : int array;
  taus : float array;
  ps : float array;
  metrics : Metrics.t;
  utilities : float array;
}

let solve ?p_hn (params : Params.t) cws =
  let solution = Solver.solve params cws in
  let metrics = Metrics.of_solution params solution in
  let utilities = Utility.rates ?p_hn params ~taus:solution.taus ~ps:solution.ps in
  { params; cws; taus = solution.taus; ps = solution.ps; metrics; utilities }

let solve_profile ?p_hn ?iterations ?tau_hint (params : Params.t) cws =
  let solution = Solver.solve_profile ?iterations ?tau_hint params cws in
  let metrics = Metrics.of_solution params solution in
  let utilities = Utility.rates ?p_hn params ~taus:solution.taus ~ps:solution.ps in
  { params; cws; taus = solution.taus; ps = solution.ps; metrics; utilities }

type node_view = {
  tau : float;
  p : float;
  utility : float;
  throughput : float;
  slot_time : float;
}

let view_of ?p_hn (params : Params.t) (metrics : Metrics.t) ~tau ~p ~index =
  {
    tau;
    p;
    utility =
      Utility.rate_of_node ?p_hn params ~slot_time:metrics.slot_time ~tau ~p;
    throughput = metrics.per_node_throughput.(index);
    slot_time = metrics.slot_time;
  }

let homogeneous ?p_hn (params : Params.t) ~n ~w =
  let tau, p = Solver.solve_homogeneous params ~n ~w in
  let metrics = Metrics.of_taus params (Array.make n tau) in
  view_of ?p_hn params metrics ~tau ~p ~index:0

let homogeneous_welfare ?p_hn params ~n ~w =
  float_of_int n *. (homogeneous ?p_hn params ~n ~w).utility

type deviation_view = { deviant : node_view; conformer : node_view }

let with_deviant ?p_hn (params : Params.t) ~n ~w ~w_dev =
  let (tau_dev, p_dev), (tau, p) =
    Solver.solve_with_deviant params ~n ~w ~w_dev
  in
  let taus = Array.make n tau in
  taus.(0) <- tau_dev;
  let metrics = Metrics.of_taus params taus in
  {
    deviant = view_of ?p_hn params metrics ~tau:tau_dev ~p:p_dev ~index:0;
    conformer = view_of ?p_hn params metrics ~tau ~p ~index:1;
  }
