type solved = {
  params : Params.t;
  cws : int array;
  taus : float array;
  ps : float array;
  metrics : Metrics.t;
  utilities : float array;
  converged : bool;
}

let solve ?p_hn (params : Params.t) cws =
  let solution = Solver.solve params cws in
  let metrics = Metrics.of_solution params solution in
  let utilities = Utility.rates ?p_hn params ~taus:solution.taus ~ps:solution.ps in
  {
    params;
    cws;
    taus = solution.taus;
    ps = solution.ps;
    metrics;
    utilities;
    converged = solution.converged;
  }

let solve_profile ?p_hn ?iterations ?tau_hint ?max_iter (params : Params.t)
    cws =
  let solution =
    Solver.solve_profile ?iterations ?tau_hint ?max_iter params cws
  in
  let metrics = Metrics.of_solution params solution in
  let utilities = Utility.rates ?p_hn params ~taus:solution.taus ~ps:solution.ps in
  {
    params;
    cws;
    taus = solution.taus;
    ps = solution.ps;
    metrics;
    utilities;
    converged = solution.converged;
  }

type strategy_solved = {
  params : Params.t;
  strategies : Strategy_space.t array;
  taus : float array;
  ps : float array;
  slot_time : float;
  utilities : float array;
  goodputs : float array;
  converged : bool;
}

(* The degenerate branch routes through [solve_profile] verbatim so the
   CW-only subspace inherits its bit-identity guarantee structurally; the
   general branch prices per-strategy channel occupancy through the
   heterogeneous slot model. *)
let solve_strategies ?p_hn ?iterations ?tau_hint ?max_iter (params : Params.t)
    strategies =
  let n = Array.length strategies in
  if n = 0 then invalid_arg "Model.solve_strategies: empty network";
  Array.iter
    (fun s ->
      match Strategy_space.validate s with
      | Ok () -> ()
      | Error e -> invalid_arg ("Model.solve_strategies: " ^ e))
    strategies;
  if Array.for_all Strategy_space.is_degenerate strategies then begin
    let cws = Array.map (fun (s : Strategy_space.t) -> s.cw) strategies in
    (* Adapt the strategy-keyed hint to the window-keyed profile path. *)
    let tau_hint =
      Option.map (fun hint w -> hint (Strategy_space.of_cw w)) tau_hint
    in
    let s = solve_profile ?p_hn ?iterations ?tau_hint ?max_iter params cws in
    {
      params;
      strategies;
      taus = s.taus;
      ps = s.ps;
      slot_time = s.metrics.slot_time;
      utilities = s.utilities;
      goodputs = s.metrics.per_node_throughput;
      converged = s.converged;
    }
  end
  else begin
    (* Class-reduce over distinct strategies (canonical order, so any
       permutation of the profile solves the identical class problem). *)
    let tbl = Hashtbl.create 8 in
    Array.iter
      (fun s ->
        let key = Strategy_space.to_key s in
        match Hashtbl.find_opt tbl key with
        | Some (s', k) -> Hashtbl.replace tbl key (s', k + 1)
        | None -> Hashtbl.add tbl key (s, 1))
      strategies;
    let class_list =
      Hashtbl.fold (fun _ sk acc -> sk :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> Strategy_space.compare a b)
    in
    let solved =
      Solver.solve_strategy_classes ?iterations ?tau_hint ?max_iter params
        class_list
    in
    let by_key = Hashtbl.create 8 in
    List.iter2
      (fun (s, _) tp -> Hashtbl.replace by_key (Strategy_space.to_key s) tp)
      class_list solved.class_pairs;
    let pair i = Hashtbl.find by_key (Strategy_space.to_key strategies.(i)) in
    let taus = Array.init n (fun i -> fst (pair i)) in
    let ps = Array.init n (fun i -> snd (pair i)) in
    let base = Timing.of_params params in
    let times = Array.map (Strategy_space.times params ~base) strategies in
    let ts = Array.map (fun (t : Strategy_space.times) -> t.ts) times in
    let tc = Array.map (fun (t : Strategy_space.times) -> t.tc) times in
    (* Goodput credits the whole burst's payload to the one access. *)
    let payload_time =
      Array.init n (fun i ->
          float_of_int strategies.(i).Strategy_space.txop_frames
          *. times.(i).Strategy_space.payload)
    in
    let hetero =
      Hetero.of_profile ~sigma:params.sigma ~taus ~ts ~tc ~payload_time
    in
    let utilities =
      Array.init n (fun i ->
          Utility.rate_of_strategy ?p_hn params ~slot_time:hetero.slot_time
            ~tau:taus.(i) ~p:ps.(i)
            ~frames:strategies.(i).Strategy_space.txop_frames)
    in
    {
      params;
      strategies;
      taus;
      ps;
      slot_time = hetero.slot_time;
      utilities;
      goodputs = hetero.per_node_goodput;
      converged = solved.converged;
    }
  end

type node_view = {
  tau : float;
  p : float;
  utility : float;
  throughput : float;
  slot_time : float;
}

let view_of ?p_hn (params : Params.t) (metrics : Metrics.t) ~tau ~p ~index =
  {
    tau;
    p;
    utility =
      Utility.rate_of_node ?p_hn params ~slot_time:metrics.slot_time ~tau ~p;
    throughput = metrics.per_node_throughput.(index);
    slot_time = metrics.slot_time;
  }

let homogeneous ?p_hn (params : Params.t) ~n ~w =
  let tau, p = Solver.solve_homogeneous params ~n ~w in
  let metrics = Metrics.of_taus params (Array.make n tau) in
  view_of ?p_hn params metrics ~tau ~p ~index:0

let homogeneous_welfare ?p_hn params ~n ~w =
  float_of_int n *. (homogeneous ?p_hn params ~n ~w).utility

type deviation_view = {
  deviant : node_view;
  conformer : node_view;
  converged : bool;
}

let with_deviant ?p_hn (params : Params.t) ~n ~w ~w_dev =
  let sol = Solver.solve_with_deviant params ~n ~w ~w_dev in
  let tau_dev, p_dev = sol.deviant in
  let tau, p = sol.conformer in
  let taus = Array.make n tau in
  taus.(0) <- tau_dev;
  let metrics = Metrics.of_taus params taus in
  {
    deviant = view_of ?p_hn params metrics ~tau:tau_dev ~p:p_dev ~index:0;
    conformer = view_of ?p_hn params metrics ~tau ~p ~index:1;
    converged = sol.converged;
  }
