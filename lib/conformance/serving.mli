(** Conformance checks of the serving layer (group ["serving"], all fast
    tier).

    The service's contract has four load-bearing claims, each pinned by a
    check:

    - ["serving.bitmatch.uniform"] / ["serving.bitmatch.payoff"] — answers
      served through the JSONL protocol are {e bit-identical} to direct
      {!Macgame.Oracle} evaluation (the wire format renders floats at full
      precision; warm start off);
    - ["serving.restart.store_tier"] — a server restarted onto the same
      store directory answers every repeat query from the store tier,
      bit-identically: persistence is indistinguishable from recomputing;
    - ["serving.warmstart.anchor"] — warm-started solves agree with cold
      solves to 1e-9 relative (the documented tolerance-for-iterations
      trade);
    - ["serving.errors.replies"] — malformed JSON, unknown ops, invalid
      arguments, nested batches and expired deadlines all produce error
      replies, never exceptions. *)

val checks :
  ?telemetry:Telemetry.Registry.t -> tier:Check.tier -> unit -> Check.t list
