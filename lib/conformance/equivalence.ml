type topology = Clique | Chain

type sim =
  | Slotted of { bianchi_ticks : bool; per : float }
  | Spatial of topology

type slack = Rel of float | Abs of float

type point = {
  id : string;
  tier : Check.tier;
  params : Dcf.Params.t;
  profile : int array;
  sim : sim;
  replicates : int;
  duration : float;
  seed : int;
  confidence : float;
  quantities : (string * slack) list;
}

(* {2 The grid}

   Tolerances are declarative data, tuned against the documented accuracy
   of each backend pair: bianchi-tick slotted runs agree with the chain to
   <1% (tight Rel slacks), real-freeze runs carry the model's 4–9% τ gap
   (wide slack, deliberately kept as a check so the gap itself is
   monitored), the spatial core is σ-quantised (frame durations round to
   whole slots, shifting Ts/Tc by up to one σ), and PER runs escalate
   backoff on noise losses — a second-order effect the analytic
   p_hn = 1 − per factor does not model. *)

let basic = Dcf.Params.default
let rts = Dcf.Params.rts_cts

let grid () =
  [
    (* -- fast tier: sized for @ci -- *)
    {
      id = "slotted.basic.n5.w79";
      tier = Check.Fast;
      params = basic;
      profile = Array.make 5 79;
      sim = Slotted { bianchi_ticks = true; per = 0. };
      replicates = 5;
      duration = 20.;
      seed = 101;
      confidence = 0.99;
      quantities =
        [
          ("utility", Rel 0.02);
          ("tau", Rel 0.02);
          ("p", Rel 0.04);
          ("throughput", Rel 0.02);
        ];
    };
    {
      id = "slotted.basic.n10.w160";
      tier = Check.Fast;
      params = basic;
      profile = Array.make 10 160;
      sim = Slotted { bianchi_ticks = true; per = 0. };
      replicates = 4;
      duration = 15.;
      seed = 102;
      confidence = 0.99;
      quantities = [ ("utility", Rel 0.02); ("throughput", Rel 0.02) ];
    };
    {
      id = "slotted.rts.n5.w16";
      tier = Check.Fast;
      params = rts;
      profile = Array.make 5 16;
      sim = Slotted { bianchi_ticks = true; per = 0. };
      replicates = 4;
      duration = 15.;
      seed = 103;
      confidence = 0.99;
      quantities = [ ("utility", Rel 0.03); ("tau", Rel 0.03) ];
    };
    {
      id = "slotted.basic.hetero";
      tier = Check.Fast;
      params = basic;
      profile = [| 64; 64; 128; 128; 256 |];
      sim = Slotted { bianchi_ticks = true; per = 0. };
      replicates = 4;
      duration = 20.;
      seed = 104;
      confidence = 0.99;
      quantities =
        [
          ("utility@64", Rel 0.03);
          ("utility@128", Rel 0.04);
          ("utility@256", Rel 0.06);
        ];
    };
    {
      id = "slotted.basic.per10";
      tier = Check.Fast;
      params = basic;
      profile = Array.make 5 79;
      sim = Slotted { bianchi_ticks = true; per = 0.1 };
      replicates = 4;
      duration = 20.;
      seed = 105;
      confidence = 0.99;
      quantities = [ ("utility", Rel 0.10); ("error_share", Abs 0.02) ];
    };
    {
      id = "slotted.basic.realfreeze";
      tier = Check.Fast;
      params = basic;
      profile = Array.make 5 79;
      sim = Slotted { bianchi_ticks = false; per = 0. };
      replicates = 4;
      duration = 20.;
      seed = 106;
      confidence = 0.99;
      quantities = [ ("tau", Rel 0.10); ("utility", Rel 0.10) ];
    };
    {
      id = "spatial.clique.rts.n5.w32";
      tier = Check.Fast;
      params = rts;
      profile = Array.make 5 32;
      sim = Spatial Clique;
      replicates = 4;
      duration = 5.;
      seed = 107;
      confidence = 0.99;
      quantities = [ ("utility", Rel 0.10) ];
    };
    {
      id = "spatial.chain.rts.n8.w64";
      tier = Check.Fast;
      params = rts;
      profile = Array.make 8 64;
      sim = Spatial Chain;
      replicates = 3;
      duration = 3.;
      seed = 108;
      confidence = 0.99;
      quantities = [ ("event_core_delta", Abs 0.) ];
    };
    (* -- full tier: real replicate counts, larger n -- *)
    {
      id = "slotted.basic.n20.w339";
      tier = Check.Full;
      params = basic;
      profile = Array.make 20 339;
      sim = Slotted { bianchi_ticks = true; per = 0. };
      replicates = 8;
      duration = 60.;
      seed = 201;
      confidence = 0.99;
      quantities =
        [
          ("utility", Rel 0.02);
          ("tau", Rel 0.02);
          ("p", Rel 0.04);
          ("throughput", Rel 0.02);
        ];
    };
    {
      id = "slotted.basic.n50.w859";
      tier = Check.Full;
      params = basic;
      profile = Array.make 50 859;
      sim = Slotted { bianchi_ticks = true; per = 0. };
      replicates = 6;
      duration = 60.;
      seed = 202;
      confidence = 0.99;
      quantities = [ ("utility", Rel 0.03); ("throughput", Rel 0.03) ];
    };
    {
      id = "slotted.rts.n20.w67";
      tier = Check.Full;
      params = rts;
      profile = Array.make 20 67;
      sim = Slotted { bianchi_ticks = true; per = 0. };
      replicates = 6;
      duration = 40.;
      seed = 203;
      confidence = 0.99;
      quantities = [ ("utility", Rel 0.03); ("tau", Rel 0.03) ];
    };
    {
      id = "slotted.basic.per30";
      tier = Check.Full;
      params = basic;
      profile = Array.make 5 79;
      sim = Slotted { bianchi_ticks = true; per = 0.3 };
      replicates = 6;
      duration = 40.;
      seed = 204;
      confidence = 0.99;
      quantities = [ ("utility", Rel 0.15); ("error_share", Abs 0.02) ];
    };
    {
      id = "spatial.clique.basic.n10.w160";
      tier = Check.Full;
      params = basic;
      profile = Array.make 10 160;
      sim = Spatial Clique;
      replicates = 6;
      duration = 10.;
      seed = 205;
      confidence = 0.99;
      quantities = [ ("utility", Rel 0.10) ];
    };
    {
      id = "spatial.chain.rts.n12.w64";
      tier = Check.Full;
      params = rts;
      profile = Array.make 12 64;
      sim = Spatial Chain;
      replicates = 3;
      duration = 5.;
      seed = 206;
      confidence = 0.99;
      quantities = [ ("event_core_delta", Abs 0.) ];
    };
  ]

let points ~tier =
  List.filter (fun p -> Check.runs_in p.tier ~at:tier) (grid ())

(* {2 Quantity extraction} *)

type quantity =
  | Utility
  | Tau
  | P
  | Throughput
  | Utility_at of int
  | Error_share
  | Event_core_delta

let quantity_of_id qid =
  match qid with
  | "utility" -> Utility
  | "tau" -> Tau
  | "p" -> P
  | "throughput" -> Throughput
  | "error_share" -> Error_share
  | "event_core_delta" -> Event_core_delta
  | _ ->
      let prefix = "utility@" in
      if String.length qid > String.length prefix
         && String.sub qid 0 (String.length prefix) = prefix
      then
        let w =
          String.sub qid (String.length prefix)
            (String.length qid - String.length prefix)
        in
        match int_of_string_opt w with
        | Some w when w >= 1 -> Utility_at w
        | _ -> invalid_arg ("Equivalence: bad quantity id " ^ qid)
      else invalid_arg ("Equivalence: unknown quantity id " ^ qid)

let mean_over profile pred f per_node =
  let sum = ref 0. and count = ref 0 in
  Array.iteri
    (fun i s ->
      if pred profile.(i) then (
        sum := !sum +. f s;
        incr count))
    per_node;
  if !count = 0 then nan else !sum /. float_of_int !count

let slotted_quantity (r : Netsim.Slotted.result) profile q =
  let all _ = true in
  match q with
  | Utility ->
      mean_over profile all
        (fun (s : Netsim.Slotted.node_stats) -> s.payoff_rate)
        r.per_node
  | Tau ->
      mean_over profile all
        (fun (s : Netsim.Slotted.node_stats) -> s.tau_hat)
        r.per_node
  | P ->
      mean_over profile all
        (fun (s : Netsim.Slotted.node_stats) -> s.p_hat)
        r.per_node
  | Throughput -> r.total_throughput
  | Utility_at w ->
      mean_over profile (Int.equal w)
        (fun (s : Netsim.Slotted.node_stats) -> s.payoff_rate)
        r.per_node
  | Error_share ->
      let e = r.airtime.error_fraction and s = r.airtime.success_fraction in
      if e +. s > 0. then e /. (e +. s) else nan
  | Event_core_delta -> invalid_arg "Equivalence: event_core_delta on slotted"

let spatial_quantity (r : Netsim.Spatial.result) profile q =
  let all _ = true in
  match q with
  | Utility ->
      mean_over profile all
        (fun (s : Netsim.Spatial.node_stats) -> s.payoff_rate)
        r.per_node
  | Utility_at w ->
      mean_over profile (Int.equal w)
        (fun (s : Netsim.Spatial.node_stats) -> s.payoff_rate)
        r.per_node
  | Throughput ->
      Array.fold_left
        (fun acc (s : Netsim.Spatial.node_stats) -> acc +. s.throughput)
        0. r.per_node
  | Tau | P | Error_share | Event_core_delta ->
      invalid_arg "Equivalence: quantity unavailable on the spatial backend"

let clique n = Array.init n (fun i -> List.filter (( <> ) i) (List.init n Fun.id))

let chain n =
  Array.init n (fun i ->
      (if i > 0 then [ i - 1 ] else []) @ if i < n - 1 then [ i + 1 ] else [])

(* Per-replicate seeds are an arithmetic stride off the point seed (7919 is
   prime, so strides of distinct points interleave without collision for
   any realistic replicate count). *)
let replicate_seed point r = point.seed + (7919 * r)

let run_replicate point r =
  let seed = replicate_seed point r in
  match point.sim with
  | Slotted { bianchi_ticks; per } ->
      let result =
        Netsim.Slotted.run ~bianchi_ticks ~per
          {
            Netsim.Slotted.params = point.params;
            cws = point.profile;
            duration = point.duration;
            seed;
          }
      in
      fun q -> slotted_quantity result point.profile q
  | Spatial topo -> (
      let n = Array.length point.profile in
      let adjacency = match topo with Clique -> clique n | Chain -> chain n in
      let config =
        {
          Netsim.Spatial.params = point.params;
          adjacency;
          cws = point.profile;
          duration = point.duration;
          seed;
        }
      in
      let result = Netsim.Spatial.run config in
      match topo with
      | Clique -> fun q -> spatial_quantity result point.profile q
      | Chain ->
          (* The chain has no analytic reference; its quantity is the
             differential between the event core and the boundary-scanning
             reference loop, which the determinism contract pins to zero. *)
          let reference_result = Netsim.Spatial.run_reference config in
          fun q ->
            (match q with
            | Event_core_delta -> ()
            | _ -> invalid_arg "Equivalence: chain points check event_core_delta");
            if Netsim.Spatial.equal_result result reference_result then 0.
            else
              let delta = ref epsilon_float in
              Array.iteri
                (fun i (s : Netsim.Spatial.node_stats) ->
                  let s' = reference_result.per_node.(i) in
                  delta :=
                    Float.max !delta
                      (Float.abs (s.payoff_rate -. s'.payoff_rate)))
                result.per_node;
              !delta)

(* {2 Analytic references} *)

let per_of point =
  match point.sim with Slotted { per; _ } -> per | Spatial _ -> 0.

let uniform_window point =
  let w = point.profile.(0) in
  if not (Array.for_all (Int.equal w) point.profile) then
    invalid_arg
      ("Equivalence: uniform quantity on heterogeneous point " ^ point.id);
  w

let reference point qid =
  let per = per_of point in
  let oracle = Macgame.Oracle.create ~p_hn:(1. -. per) point.params in
  let n = Array.length point.profile in
  match quantity_of_id qid with
  | Utility ->
      (Macgame.Oracle.uniform oracle ~n ~w:(uniform_window point)).utility
  | Tau -> (Macgame.Oracle.uniform oracle ~n ~w:(uniform_window point)).tau
  | P -> (Macgame.Oracle.uniform oracle ~n ~w:(uniform_window point)).p
  | Throughput ->
      if per > 0. then
        invalid_arg "Equivalence: throughput reference undefined under PER";
      (Macgame.Oracle.uniform oracle ~n ~w:(uniform_window point)).throughput
  | Utility_at w ->
      let payoffs = Macgame.Oracle.payoffs oracle point.profile in
      mean_over point.profile (Int.equal w) Fun.id payoffs
  | Error_share -> per
  | Event_core_delta -> 0.

(* {2 Runner task} *)

let sim_field sim =
  let descr =
    match sim with
    | Slotted { bianchi_ticks; per } ->
        Printf.sprintf "slotted:bianchi=%b,per=%.6g" bianchi_ticks per
    | Spatial Clique -> "spatial:clique"
    | Spatial Chain -> "spatial:chain"
  in
  ("sim", Telemetry.Jsonx.String descr)

let key point =
  Runner.Task.key_of ~family:"conformance.equivalence"
    [
      ("id", Telemetry.Jsonx.String point.id);
      ( "params",
        Telemetry.Jsonx.String (Format.asprintf "%a" Dcf.Params.pp point.params)
      );
      ( "profile",
        Telemetry.Jsonx.List
          (Array.to_list
             (Array.map (fun w -> Telemetry.Jsonx.Int w) point.profile)) );
      sim_field point.sim;
      ("replicates", Telemetry.Jsonx.Int point.replicates);
      ("duration", Telemetry.Jsonx.Float point.duration);
      ("seed", Telemetry.Jsonx.Int point.seed);
      ( "quantities",
        Telemetry.Jsonx.List
          (List.map (fun (q, _) -> Telemetry.Jsonx.String q) point.quantities)
      );
    ]

let encode samples =
  Telemetry.Jsonx.Obj
    (List.map (fun (q, arr) -> (q, Runner.Task.float_array arr)) samples)

let decode point json =
  let field (q, _) =
    Option.bind (Telemetry.Jsonx.member q json) Runner.Task.to_float_array
    |> Option.map (fun arr -> (q, arr))
  in
  let rec all = function
    | [] -> Some []
    | q :: rest -> (
        match field q with
        | None -> None
        | Some v -> Option.map (fun tl -> v :: tl) (all rest))
  in
  all point.quantities

let compute point _rng =
  let quantities = List.map (fun (q, _) -> quantity_of_id q) point.quantities in
  let samples =
    List.map (fun _ -> Array.make point.replicates nan) quantities
  in
  for r = 0 to point.replicates - 1 do
    let extract = run_replicate point r in
    List.iter2 (fun q arr -> arr.(r) <- extract q) quantities samples
  done;
  List.map2 (fun (q, _) arr -> (q, arr)) point.quantities samples

let task point =
  Runner.Task.make ~key:(key point) ~encode ~decode:(decode point)
    (compute point)

(* {2 Checks} *)

let checks ?telemetry point ~samples =
  List.map
    (fun (qid, slk) ->
      let id = point.id ^ "." ^ qid in
      let check =
        match List.assoc_opt qid samples with
        | None ->
            Check.v ~id ~group:"equivalence" ~margin:nan
              ~detail:"quantity missing from task result" ()
        | Some arr ->
            let reference_value = reference point qid in
            let band = Band.of_samples ~confidence:point.confidence arr in
            let slack =
              match slk with
              | Rel f -> f *. Float.abs reference_value
              | Abs a -> a
            in
            let margin = Band.margin band ~slack reference_value in
            let detail = Band.describe band ~slack reference_value in
            Check.v ~id ~group:"equivalence" ~margin ~detail ()
      in
      Check.emit ?telemetry check;
      check)
    point.quantities
