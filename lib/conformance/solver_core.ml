(* The Newton solver core promises to accelerate the class-space fixed
   point, not to move it: Newton and Picard must land on the same (τ, p)
   to ≤1e-10 relative on every problem the stack actually solves.  These
   checks run both algorithms on the 14-point equivalence-grid profiles
   (class-reduced, spanning both access modes and uniform/mixed windows)
   plus a set of multi-knob strategy-class problems exercising the AIFS
   eligibility term of the Jacobian.  Any Newton bug that survives the
   accept-only-contracting-steps guard — a wrong Jacobian sign, a missing
   eligibility product-rule term, a bad Sherman–Morrison denominator —
   shows up here as a relative gap far above 1e-10. *)

let tolerance = 1e-10

let rel_diff a b =
  let scale = Float.max 1e-12 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) /. scale

(* Worst relative discrepancy between two class solutions, over every τ
   and p.  Infinite when either solve failed to converge or the shapes
   disagree — a solver that cannot finish both ways has no business
   passing an equivalence check. *)
let margin_of (newton : Dcf.Solver.class_solution)
    (picard : Dcf.Solver.class_solution) =
  if not (newton.converged && picard.converged) then infinity
  else if
    List.length newton.class_pairs <> List.length picard.class_pairs
  then infinity
  else
    List.fold_left2
      (fun acc (tau_n, p_n) (tau_p, p_p) ->
        Float.max acc (Float.max (rel_diff tau_n tau_p) (rel_diff p_n p_p)))
      0. newton.class_pairs picard.class_pairs
    /. tolerance

(* Class-reduce an equivalence-grid profile the same way solve_profile
   does: distinct windows sorted ascending. *)
let classes_of_profile profile =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun w ->
      Hashtbl.replace tbl w
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl w)))
    profile;
  Hashtbl.fold (fun w k acc -> (w, k) :: acc) tbl [] |> List.sort compare

let strategy ~cw ~aifs ~txop ~rate =
  { Dcf.Strategy_space.cw; aifs; txop_frames = txop; rate }

(* Multi-knob strategy-class problems: AIFS asymmetry (the eligibility
   term of the Jacobian), TXOP/rate knobs (inert in the fixed point but
   part of the class identity), small windows (strong coupling, where a
   naive undamped Newton would overshoot), and a wide 20-class ladder
   matching the perf kernel's shape. *)
let strategy_problems =
  [
    ( "strategy.aifs_pair",
      [ (strategy ~cw:32 ~aifs:0 ~txop:1 ~rate:1., 3);
        (strategy ~cw:32 ~aifs:2 ~txop:1 ~rate:1., 3) ] );
    ( "strategy.aifs_txop_mix",
      [ (strategy ~cw:16 ~aifs:1 ~txop:3 ~rate:1., 2);
        (strategy ~cw:64 ~aifs:0 ~txop:1 ~rate:2., 5);
        (strategy ~cw:128 ~aifs:3 ~txop:2 ~rate:0.5, 4) ] );
    ( "strategy.small_windows",
      [ (strategy ~cw:2 ~aifs:1 ~txop:1 ~rate:1., 2);
        (strategy ~cw:4 ~aifs:0 ~txop:1 ~rate:1., 3) ] );
    ( "strategy.ladder20",
      List.init 20 (fun i ->
          (strategy ~cw:(64 + (8 * i)) ~aifs:(i mod 3) ~txop:1 ~rate:1., 1))
    );
  ]

let grid_check ?telemetry (point : Equivalence.point) =
  let id = "solver_core.grid." ^ point.id in
  let classes = classes_of_profile point.profile in
  let check =
    match
      ( Dcf.Solver.solve_classes ~algo:Newton point.params classes,
        Dcf.Solver.solve_classes ~algo:Picard point.params classes )
    with
    | newton, picard ->
        Check.v ~id ~group:"solver_core" ~margin:(margin_of newton picard)
          ~detail:
            (Printf.sprintf
               "newton %d iters vs picard %d iters, %d classes, <=%.0e rel"
               newton.iterations picard.iterations (List.length classes)
               tolerance)
          ()
    | exception exn ->
        Check.v ~id ~group:"solver_core" ~margin:infinity
          ~detail:("raised: " ^ Printexc.to_string exn)
          ()
  in
  Check.emit ?telemetry check;
  check

let strategy_check ?telemetry (name, classes) =
  let id = "solver_core." ^ name in
  let params = Dcf.Params.default in
  let check =
    match
      ( Dcf.Solver.solve_strategy_classes ~algo:Newton params classes,
        Dcf.Solver.solve_strategy_classes ~algo:Picard params classes )
    with
    | newton, picard ->
        Check.v ~id ~group:"solver_core" ~margin:(margin_of newton picard)
          ~detail:
            (Printf.sprintf
               "newton %d iters vs picard %d iters, %d classes, <=%.0e rel"
               newton.iterations picard.iterations (List.length classes)
               tolerance)
          ()
    | exception exn ->
        Check.v ~id ~group:"solver_core" ~margin:infinity
          ~detail:("raised: " ^ Printexc.to_string exn)
          ()
  in
  Check.emit ?telemetry check;
  check

let checks ?telemetry ~tier () =
  if not (Check.runs_in Check.Fast ~at:tier) then []
  else
    List.map (grid_check ?telemetry) (Equivalence.points ~tier:Check.Full)
    @ List.map (strategy_check ?telemetry) strategy_problems
