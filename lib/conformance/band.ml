type t = {
  mean : float;
  stddev : float;
  count : int;
  confidence : float;
  halfwidth : float;
}

let of_stats ~confidence stats =
  let count = Prelude.Stats.count stats in
  if count < 2 then invalid_arg "Band.of_stats: need at least two samples";
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Band.of_stats: confidence must be in (0, 1)";
  let mean = Prelude.Stats.mean stats in
  let stddev = Prelude.Stats.stddev stats in
  let t_crit =
    Numerics.Special.student_t_quantile ~df:(count - 1)
      (1. -. ((1. -. confidence) /. 2.))
  in
  let halfwidth = t_crit *. stddev /. sqrt (float_of_int count) in
  { mean; stddev; count; confidence; halfwidth }

let of_samples ~confidence samples =
  let stats = Prelude.Stats.create () in
  Prelude.Stats.add_many stats samples;
  of_stats ~confidence stats

let z_score band x =
  let stderr = band.stddev /. sqrt (float_of_int band.count) in
  let delta = x -. band.mean in
  if stderr > 0. then delta /. stderr
  else if delta = 0. then 0.
  else Float.of_int (compare delta 0.) *. infinity

let margin band ~slack x =
  let budget = band.halfwidth +. slack in
  let delta = Float.abs (x -. band.mean) in
  if budget > 0. then delta /. budget else if delta = 0. then 0. else infinity

let describe band ~slack x =
  Printf.sprintf "ref %.6g vs %.6g +-%.2g(+%.2g slack), z=%+.2f, R=%d"
    x band.mean band.halfwidth slack (z_score band x) band.count
