(** Newton-vs-Picard equivalence group.

    The damped-Newton class solver (PR 9) must agree with the reference
    damped Picard iteration to ≤1e-10 relative on every (τ, p) it
    produces — across the class-reduced 14-point equivalence grid and a
    set of multi-knob strategy-class problems that exercise the AIFS
    eligibility term of the analytic Jacobian.  Both solves must also
    report [converged = true]; a solve that cannot finish both ways fails
    with an infinite margin.  Fast tier: pure analytic solves, a few
    milliseconds total. *)

val checks :
  ?telemetry:Telemetry.Registry.t -> tier:Check.tier -> unit -> Check.t list
(** Run the group (fast tier and up), emitting each check on
    [telemetry]. *)
