(** Degenerate-subspace bit-identity checks.

    The multi-knob strategy refactor carries one hard promise: on the
    degenerate subspace (aifs = 0, txop = 1, rate = 1) every layer —
    analytic model, slotted simulator, spatial simulator — produces
    answers {e bit-identical} to the CW-only stack it replaced.  The
    14-point grid here drives each layer both ways (bare CW arrays and
    explicit degenerate strategy records) and compares every returned
    float bitwise; the margin is 0 on exact agreement and infinite
    otherwise.  All points run in the fast tier, so CI trips the moment a
    change reroutes degenerate inputs through the multi-knob machinery. *)

val checks :
  ?telemetry:Telemetry.Registry.t -> tier:Check.tier -> unit -> Check.t list
(** Evaluate the grid (group ["degenerate"], fast tier); one check per
    point, emitted on the registry. *)
