(** Paper anchors: published numbers from Chen & Leneutre, checked against
    the model with the tolerance {e in the table}, not in test bodies.

    Each anchor names its source (Table II, Fig. 2, …), the published or
    derived expected value, a comparison {!kind} carrying the explicit
    tolerance, and a closure computing the model's answer.  Keeping the
    tolerances declarative makes the acceptance policy reviewable in one
    place and lets the report show, per anchor, how much of the budget the
    reproduction currently consumes.

    Tolerance provenance (documented in DESIGN.md):
    - Table II windows match to ±5%: the repo's m = 5 chain gives 79/339/859
      against the paper's 76/336/879.
    - Table III RTS windows are evaluated on the paper's own regime (m = 7,
      e → 0); n = 5 is excluded — the published 22 is not reproducible from
      the stated model (the repo's chain gives 12) and is discussed in
      DESIGN.md instead of being silently tolerated with a huge budget.
    - Fig. 2's peak utility and Fig. 3's 95%-plateau width are read off the
      figures, hence absolute/loose-relative tolerances.
    - Multi-hop (full tier): the paper's 100-node scenario reports
      converged CW 26, ≥ 96% local and ≤ 3% global loss; the repo's random
      waypoint snapshots (seeds 7/21/42) must stay at least that good. *)

type kind =
  | Relative of float  (** pass iff |actual − expected| ≤ tol·|expected| *)
  | Absolute of float  (** pass iff |actual − expected| ≤ tol *)
  | At_least of float
      (** lower bound: pass iff actual ≥ expected − tol; margin 0 whenever
          the bound itself is met *)

type anchor = {
  id : string;          (** e.g. ["anchor.table2.basic.n50"] *)
  tier : Check.tier;
  source : string;      (** where the expected value comes from *)
  expected : float;
  kind : kind;
  compute : unit -> float;  (** the model's answer, analytic backends only *)
}

val table : unit -> anchor list
(** Every anchor, fast tier first. *)

val margin_of : kind -> expected:float -> actual:float -> float
(** The consumed tolerance fraction for one comparison (exposed for unit
    tests of the comparison semantics). *)

val checks :
  ?telemetry:Telemetry.Registry.t -> tier:Check.tier -> unit -> Check.t list
(** Evaluate every anchor the tier includes; one {!Check.t} per anchor
    (group ["anchor"]), emitted on the registry.  A [compute] that raises
    becomes a failing check carrying the exception text — an anchor must
    never pass by crashing. *)
