(** Cross-backend equivalence checks: the statistical half of the
    conformance suite.

    The repo has three independent answers to "what does profile W earn?"
    — the Bianchi analytic fixed point ({!Macgame.Oracle}'s [Analytic]
    backend), the virtual-slot simulator ({!Netsim.Slotted}) and the
    spatial event core ({!Netsim.Spatial}).  Each grid {!point} pins one
    (parameter set, CW profile, PER, topology, simulator) combination,
    runs R independent replicates, folds each compared quantity into a
    Welford mean ± Student-t confidence band ({!Band}) and asks whether
    the analytic value sits inside the band widened by the point's
    declared systematic {!slack} — reporting the z-score and consumed
    margin, not just pass/fail.

    Replicate simulations are pure functions of the point (replicate
    seeds are derived arithmetically from [point.seed]), so each point is
    one {!Runner.Task}: the grid runs domain-parallel, results are
    content-cached, and an interrupted nightly sweep resumes from its
    checkpoint journal. *)

type topology =
  | Clique  (** every node hears every node: comparable to the analytic
                model and to the slotted simulator *)
  | Chain   (** a line with hidden terminals: no analytic reference, used
                for the event-core-vs-reference differential quantity *)

type sim =
  | Slotted of { bianchi_ticks : bool; per : float }
      (** single-hop virtual-slot run; [bianchi_ticks = true] matches the
          chain's tick convention (tight bands), [false] exercises real
          freeze semantics (documents the model's accuracy gap via a wide
          slack).  [per] is the channel-noise packet error rate. *)
  | Spatial of topology  (** the spatial event core on a fixed topology *)

type slack =
  | Rel of float  (** fraction of the reference value *)
  | Abs of float  (** absolute units of the quantity *)
(** The systematic allowance added to the statistical half-width — the
    model-accuracy bias a sampling band cannot absorb (see {!Band}).
    Declared per quantity in the grid table, never hard-coded in check
    logic. *)

type point = {
  id : string;                      (** e.g. ["slotted.basic.n5.w79"] *)
  tier : Check.tier;
  params : Dcf.Params.t;
  profile : int array;              (** per-node contention windows *)
  sim : sim;
  replicates : int;                 (** R ≥ 2 *)
  duration : float;                 (** simulated seconds per replicate *)
  seed : int;                       (** base seed; replicate r uses
                                        [seed + 7919·r] *)
  confidence : float;               (** band coverage, e.g. 0.99 *)
  quantities : (string * slack) list;
      (** which quantities this point checks, each with its slack.
          Quantity ids: ["utility"], ["tau"], ["p"], ["throughput"]
          (uniform profiles), ["utility@W"] (mean over the window-W class
          of a heterogeneous profile), ["error_share"] (fraction of
          completed transmissions lost to channel noise, reference =
          [per]), ["event_core_delta"] (max |payoff difference| between
          {!Netsim.Spatial.run} and {!Netsim.Spatial.run_reference},
          reference = 0). *)
}

val grid : unit -> point list
(** The full conformance grid, fast points first.  Fast-tier points are
    sized for [@ci] (a few seconds total); full-tier points use the
    replicate counts the statistical claims deserve. *)

val points : tier:Check.tier -> point list
(** The grid filtered to the checks a run [~at] that tier executes
    (fast ⊂ full). *)

val reference : point -> string -> float
(** The analytic value a quantity is compared against (PER points
    evaluate utilities with the degradation factor [p_hn = 1 − per], cf.
    {!Netsim.Slotted.run}). *)

val task : point -> (string * float array) list Runner.Task.t
(** One runner task per point: computes the R replicate samples of every
    quantity.  Keyed by the complete point description, so cache entries
    survive exactly as long as the point's definition. *)

val checks :
  ?telemetry:Telemetry.Registry.t ->
  point -> samples:(string * float array) list -> Check.t list
(** Band-compare each quantity's samples against {!reference}; one
    {!Check.t} per quantity (id [point.id ^ "." ^ quantity]), emitted on
    the registry. *)
