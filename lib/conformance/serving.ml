module Jx = Telemetry.Jsonx

(* Every serving check is fast: the grids are small, the oracles analytic,
   and the store lives in a throwaway temp directory. *)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun entry -> rm_rf (Filename.concat path entry))
        (try Sys.readdir path with Sys_error _ -> [||]);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let with_temp_dir f =
  let dir = Filename.temp_file "conformance_serving" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Drive one request line through a server and decode the reply. *)
let ask server line =
  match Serve.Server.handle_line server line with
  | None -> failwith "no reply"
  | Some reply -> Jx.parse reply

let reply_ok reply =
  match Jx.member "ok" reply with Some (Jx.Bool b) -> b | _ -> false

let reply_tier reply =
  match Jx.member "tier" reply with Some (Jx.String t) -> t | _ -> "?"

let result_float field reply =
  match
    Option.bind (Jx.member "result" reply) (fun r ->
        Option.bind (Jx.member field r) Jx.to_float_opt)
  with
  | Some v -> v
  | None -> nan

let grid = [ (2, 16); (2, 64); (5, 32); (5, 128); (10, 32); (10, 256) ]
let profile = [| 16; 32; 32; 64 |]

let tau_line ~n ~w =
  Printf.sprintf "{\"op\":\"tau\",\"n\":%d,\"w\":%d}" n w

let welfare_line ~n ~w =
  Printf.sprintf "{\"op\":\"welfare\",\"n\":%d,\"w\":%d}" n w

let payoff_line profile =
  Printf.sprintf "{\"op\":\"payoff\",\"profile\":[%s]}"
    (String.concat "," (Array.to_list (Array.map string_of_int profile)))

(* {2 Checks} *)

(* Served answers must be bit-identical to direct oracle evaluation: the
   wire format renders floats at full precision and the server evaluates
   through the same oracle code path (warm start off). *)
let bitmatch_uniform ?telemetry () =
  let params = Dcf.Params.default in
  let server = Serve.Server.create (Macgame.Oracle.analytic params) in
  let direct = Macgame.Oracle.analytic params in
  let mismatches = ref [] in
  List.iter
    (fun (n, w) ->
      let view = Macgame.Oracle.uniform direct ~n ~w in
      let tau_reply = ask server (tau_line ~n ~w) in
      let welfare_reply = ask server (welfare_line ~n ~w) in
      let ok =
        reply_ok tau_reply && reply_ok welfare_reply
        && bits_equal (result_float "tau" tau_reply) view.tau
        && bits_equal (result_float "p" tau_reply) view.p
        && bits_equal (result_float "utility" welfare_reply) view.utility
        && bits_equal
             (result_float "welfare" welfare_reply)
             (float_of_int n *. view.utility)
      in
      if not ok then mismatches := (n, w) :: !mismatches)
    grid;
  Check.v ~id:"serving.bitmatch.uniform" ~group:"serving"
    ~detail:
      (match !mismatches with
      | [] ->
          Printf.sprintf "%d (n, w) points: served tau/p/utility/welfare \
                          bit-identical to direct oracle"
            (List.length grid)
      | l ->
          Printf.sprintf "%d/%d points differ (e.g. n=%d w=%d)" (List.length l)
            (List.length grid) (fst (List.hd l)) (snd (List.hd l)))
    ~margin:(if !mismatches = [] then 0. else infinity)
    ()
  |> fun check ->
  Check.emit ?telemetry check;
  check

let bitmatch_payoff ?telemetry () =
  let params = Dcf.Params.default in
  let server = Serve.Server.create (Macgame.Oracle.analytic params) in
  let direct = Macgame.Oracle.payoffs (Macgame.Oracle.analytic params) profile in
  let reply = ask server (payoff_line profile) in
  let served =
    match
      Option.bind (Jx.member "result" reply) (fun r -> Jx.member "payoffs" r)
    with
    | Some (Jx.List items) ->
        Array.of_list
          (List.map (fun v -> Option.value (Jx.to_float_opt v) ~default:nan) items)
    | _ -> [||]
  in
  let ok =
    reply_ok reply
    && Array.length served = Array.length direct
    && Array.for_all2 bits_equal served direct
  in
  Check.v ~id:"serving.bitmatch.payoff" ~group:"serving"
    ~detail:
      (if ok then "heterogeneous profile payoffs bit-identical through the wire"
       else "served payoffs differ from direct oracle evaluation")
    ~margin:(if ok then 0. else infinity)
    ()
  |> fun check ->
  Check.emit ?telemetry check;
  check

(* A server restarted onto the same store directory must answer every
   repeat query from the store tier, bit-identically — persistence is only
   worth having if it is indistinguishable from recomputing. *)
let restart_store_tier ?telemetry () =
  with_temp_dir (fun dir ->
      let params = Dcf.Params.default in
      let first_pass =
        Store.with_store dir (fun store ->
            let server =
              Serve.Server.create
                (Macgame.Oracle.create ~backend:Analytic ~store params)
            in
            List.map
              (fun (n, w) ->
                let r = ask server (tau_line ~n ~w) in
                (reply_tier r, result_float "tau" r))
              grid)
      in
      let second_pass =
        Store.with_store dir (fun store ->
            let server =
              Serve.Server.create
                (Macgame.Oracle.create ~backend:Analytic ~store params)
            in
            List.map
              (fun (n, w) ->
                let r = ask server (tau_line ~n ~w) in
                (reply_tier r, result_float "tau" r))
              grid)
      in
      let cold_ok =
        List.for_all (fun (tier, _) -> tier = "cold") first_pass
      in
      let store_ok =
        List.for_all2
          (fun (_, cold_tau) (tier, tau) ->
            tier = "store" && bits_equal cold_tau tau)
          first_pass second_pass
      in
      let ok = cold_ok && store_ok in
      Check.v ~id:"serving.restart.store_tier" ~group:"serving"
        ~detail:
          (if ok then
             Printf.sprintf
               "restarted server answered all %d repeat queries from the \
                store tier, bit-identically"
               (List.length grid)
           else
             Printf.sprintf "tiers across restart: first [%s], second [%s]"
               (String.concat ";" (List.map fst first_pass))
               (String.concat ";" (List.map fst second_pass)))
        ~margin:(if ok then 0. else infinity)
        ()
      |> fun check ->
      Check.emit ?telemetry check;
      check)

(* Warm-started solves trade bit-identity for iterations; the trade is
   only sound if the answers stay within a strict tolerance of the cold
   solve.  1e-9 relative is ~5 orders of magnitude above double noise and
   ~5 below anything the game layer can distinguish. *)
let warmstart_anchor ?telemetry () =
  with_temp_dir (fun dir ->
      let params = Dcf.Params.default in
      let tol = 1e-9 in
      let n = 5 in
      let cold = Macgame.Oracle.analytic params in
      let used =
        Telemetry.Registry.counter Telemetry.Registry.default
          "oracle.warmstart.used"
      in
      let used_before = Telemetry.Metric.count used in
      let warm_taus =
        Store.with_store dir (fun store ->
            (* Populate the neighbour table: solve w = 64 cold, then ask a
               warm-started oracle (sharing the store) for nearby windows. *)
            ignore
              (Macgame.Oracle.uniform
                 (Macgame.Oracle.create ~backend:Analytic ~store params)
                 ~n ~w:64);
            let warm =
              Macgame.Oracle.create ~backend:Analytic ~store
                ~warm_start:true params
            in
            List.map
              (fun w -> (w, (Macgame.Oracle.uniform warm ~n ~w).tau))
              [ 48; 96; 128 ])
      in
      let fired = Telemetry.Metric.count used - used_before in
      let worst =
        List.fold_left
          (fun acc (w, warm_tau) ->
            let cold_tau = (Macgame.Oracle.uniform cold ~n ~w).tau in
            Float.max acc
              (Float.abs (warm_tau -. cold_tau) /. (tol *. Float.abs cold_tau)))
          0. warm_taus
      in
      (* A vacuous pass (no solve actually warm-started) must fail: the
         anchor exists to bound the warm path, not the cold one. *)
      let margin = if fired < List.length warm_taus then infinity else worst in
      Check.v ~id:"serving.warmstart.anchor" ~group:"serving"
        ~detail:
          (Printf.sprintf
             "%d warm-started solves within %.0e relative of cold (n=%d)"
             fired tol n)
        ~margin ()
      |> fun check ->
      Check.emit ?telemetry check;
      check)

(* Malformed input must produce error replies, never exceptions and never
   [ok: true]. *)
let error_replies ?telemetry () =
  let server = Serve.Server.create (Macgame.Oracle.analytic Dcf.Params.default) in
  let erroneous =
    [
      "not json at all";
      "{\"op\":\"frobnicate\"}";
      "{\"op\":\"tau\",\"n\":0,\"w\":32}";
      "{\"op\":\"tau\",\"n\":\"five\",\"w\":32}";
      "{\"op\":\"payoff\",\"profile\":[]}";
      "{\"op\":\"batch\",\"requests\":[{\"op\":\"batch\",\"requests\":[]}]}";
      "{\"op\":\"tau\",\"n\":5,\"w\":32,\"deadline_ms\":0}";
    ]
  in
  let failures =
    List.filter
      (fun line ->
        match ask server line with
        | reply -> reply_ok reply
        | exception _ -> true)
      erroneous
  in
  let blank_ok = Serve.Server.handle_line server "   " = None in
  let ok = failures = [] && blank_ok in
  Check.v ~id:"serving.errors.replies" ~group:"serving"
    ~detail:
      (if ok then
         Printf.sprintf "%d malformed/invalid/expired inputs all answered \
                         with error replies"
           (List.length erroneous)
       else "some invalid input did not produce an error reply")
    ~margin:(if ok then 0. else infinity)
    ()
  |> fun check ->
  Check.emit ?telemetry check;
  check

let checks ?telemetry ~tier () =
  if not (Check.runs_in Check.Fast ~at:tier) then []
  else
    [
      bitmatch_uniform ?telemetry ();
      bitmatch_payoff ?telemetry ();
      restart_store_tier ?telemetry ();
      warmstart_anchor ?telemetry ();
      error_replies ?telemetry ();
    ]
