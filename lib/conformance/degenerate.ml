(* The refactor to (CW, AIFS, TXOP, rate) strategies promises that the
   degenerate subspace {aifs = 0; txop = 1; rate = 1} reproduces the
   CW-only stack bit-for-bit — not approximately, identically: every
   layer branches degenerate inputs onto the pre-refactor code path.
   These checks guard that seam.  Each point drives a layer both ways
   (bare CW arrays vs. explicit degenerate strategy records) and demands
   bitwise equality of every float it returns, so a future edit that
   quietly reroutes degenerate inputs through the multi-knob machinery
   trips the fast tier immediately. *)

let bits_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

let float_arrays_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> bits_equal x y) a b

(* margin 0 on exact agreement, infinity otherwise — there is no partial
   credit for "close" when the claim is bit-identity. *)
let margin_of ok = if ok then 0. else infinity

let degenerate_strategies cws = Array.map Dcf.Strategy_space.of_cw cws

let model_point ~mode ~cws =
  let params =
    match mode with
    | `Basic -> Dcf.Params.default
    | `Rts -> Dcf.Params.rts_cts
  in
  (* [solve_profile], not [solve]: the class-reduced profile solver is
     what the oracle (and so the whole game stack) runs, and it is the
     path [solve_strategies] routes degenerate inputs through.  The plain
     per-node [solve] is a different fixed-point algorithm with different
     round-off. *)
  let legacy = Dcf.Model.solve_profile params cws in
  let multi = Dcf.Model.solve_strategies params (degenerate_strategies cws) in
  float_arrays_equal legacy.taus multi.taus
  && float_arrays_equal legacy.ps multi.ps
  && float_arrays_equal legacy.utilities multi.utilities
  && float_arrays_equal legacy.metrics.per_node_throughput multi.goodputs
  && bits_equal legacy.metrics.slot_time multi.slot_time

let slotted_point ~cws ~seed =
  let config =
    { Netsim.Slotted.params = Dcf.Params.default; cws; duration = 0.3; seed }
  in
  let plain = Netsim.Slotted.run config in
  let lifted =
    Netsim.Slotted.run ~strategies:(degenerate_strategies cws) config
  in
  plain.slots = lifted.slots
  && bits_equal plain.welfare_rate lifted.welfare_rate
  && Array.for_all2
       (fun (a : Netsim.Slotted.node_stats) (b : Netsim.Slotted.node_stats) ->
         a.attempts = b.attempts && a.successes = b.successes
         && a.collisions = b.collisions && a.drops = b.drops
         && bits_equal a.tau_hat b.tau_hat
         && bits_equal a.p_hat b.p_hat
         && bits_equal a.payoff_rate b.payoff_rate)
       plain.per_node lifted.per_node

let spatial_point ~cws ~seed =
  let n = Array.length cws in
  (* Ring topology: hidden terminals without carrier-sense symmetry. *)
  let adjacency =
    Array.init n (fun i -> [ (i + 1) mod n; (i + n - 1) mod n ])
  in
  let config =
    {
      Netsim.Spatial.params = Dcf.Params.rts_cts;
      adjacency;
      cws;
      duration = 0.3;
      seed;
    }
  in
  let plain = Netsim.Spatial.run config in
  let lifted =
    Netsim.Spatial.run ~strategies:(degenerate_strategies cws) config
  in
  bits_equal plain.welfare_rate lifted.welfare_rate
  && Array.for_all2
       (fun (a : Netsim.Spatial.node_stats) (b : Netsim.Spatial.node_stats) ->
         a.attempts = b.attempts && a.successes = b.successes
         && a.drops = b.drops
         && a.local_collisions = b.local_collisions
         && a.hidden_failures = b.hidden_failures
         && bits_equal a.payoff_rate b.payoff_rate
         && bits_equal a.throughput b.throughput)
       plain.per_node lifted.per_node

(* The 14-point grid: 7 analytic solves spanning both access modes,
   uniform and mixed profiles; 5 slotted runs; 2 spatial runs. *)
let points =
  [
    ("model.basic.n5.w32", fun () -> model_point ~mode:`Basic ~cws:(Array.make 5 32));
    ("model.basic.n20.w336", fun () -> model_point ~mode:`Basic ~cws:(Array.make 20 336));
    ("model.basic.mixed3", fun () -> model_point ~mode:`Basic ~cws:[| 16; 64; 256 |]);
    ("model.basic.deviant5", fun () -> model_point ~mode:`Basic ~cws:[| 8; 76; 76; 76; 76 |]);
    ("model.rts.n10.w64", fun () -> model_point ~mode:`Rts ~cws:(Array.make 10 64));
    ("model.rts.mixed4", fun () -> model_point ~mode:`Rts ~cws:[| 32; 32; 128; 512 |]);
    ("model.rts.n2.w1", fun () -> model_point ~mode:`Rts ~cws:[| 1; 1 |]);
    ("slotted.n5.w79.s1", fun () -> slotted_point ~cws:(Array.make 5 79) ~seed:1);
    ("slotted.n10.w128.s7", fun () -> slotted_point ~cws:(Array.make 10 128) ~seed:7);
    ("slotted.mixed.s42", fun () -> slotted_point ~cws:[| 16; 79; 79; 200 |] ~seed:42);
    ("slotted.deviant.s11", fun () -> slotted_point ~cws:[| 4; 64; 64; 64; 64; 64 |] ~seed:11);
    ("slotted.n2.w16.s3", fun () -> slotted_point ~cws:[| 16; 16 |] ~seed:3);
    ("spatial.ring6.s5", fun () -> spatial_point ~cws:(Array.make 6 64) ~seed:5);
    ("spatial.ring5.mixed.s9", fun () -> spatial_point ~cws:[| 16; 64; 64; 128; 64 |] ~seed:9);
  ]

let checks ?telemetry ~tier () =
  if not (Check.runs_in Check.Fast ~at:tier) then []
  else
    List.map
      (fun (name, compute) ->
        let id = "degenerate." ^ name in
        let check =
          match compute () with
          | ok ->
              Check.v ~id ~group:"degenerate" ~margin:(margin_of ok)
                ~detail:
                  (if ok then "CW path and strategy path bit-identical"
                   else "CW path and strategy path DIVERGED on the \
                         degenerate subspace")
                ()
          | exception exn ->
              Check.v ~id ~group:"degenerate" ~margin:infinity
                ~detail:("raised: " ^ Printexc.to_string exn)
                ()
        in
        Check.emit ?telemetry check;
        check)
      points
