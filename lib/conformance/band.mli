(** Small-sample confidence bands for the cross-backend equivalence
    checks.

    A band summarises R simulation replicates of one scalar quantity
    (Welford mean and stddev via {!Prelude.Stats}) and asks whether a
    reference value — the analytic model's answer — is statistically
    compatible with them.  The half-width uses the Student-t quantile
    ({!Numerics.Special.student_t_quantile}, df = R − 1), because the
    replicate counts CI can afford are small enough that the normal
    approximation would understate the tails.

    Pure sampling bands shrink like 1/√R, so any {e systematic} model
    bias — and Bianchi's independence approximation has a documented one —
    would eventually fail an unbiased-looking check at high replicate
    counts.  Each comparison therefore carries an explicit absolute
    [slack]: the acceptance band is [halfwidth + slack], the declared
    systematic allowance on top of the statistical one.  The z-score is
    still reported against the raw standard error, so drift inside the
    slack stays visible. *)

type t = {
  mean : float;
  stddev : float;    (** unbiased sample stddev over replicates *)
  count : int;       (** R, ≥ 2 for a meaningful band *)
  confidence : float;(** two-sided coverage, e.g. 0.99 *)
  halfwidth : float; (** t-quantile · stddev / √R *)
}

val of_samples : confidence:float -> float array -> t
(** @raise Invalid_argument on fewer than two samples or a confidence
    outside (0, 1). *)

val of_stats : confidence:float -> Prelude.Stats.t -> t
(** Same, from an existing Welford accumulator. *)

val z_score : t -> float -> float
(** [(x − mean) / (stddev/√R)] — signed distance of the reference from the
    replicate mean in standard errors.  0 when the stddev is 0 and x
    equals the mean; ±∞ when the stddev is 0 and it does not. *)

val margin : t -> slack:float -> float -> float
(** Consumed tolerance fraction: [|x − mean| / (halfwidth + slack)].
    ≤ 1 means the reference sits inside the widened band.  A degenerate
    band (zero halfwidth and slack) yields 0 on exact agreement and
    [infinity] otherwise. *)

val describe : t -> slack:float -> float -> string
(** One report line: reference vs [mean ± halfwidth(+slack)], the z-score
    and R. *)
