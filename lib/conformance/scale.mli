(** Scale-seam checks: the grid index and the sharded runner.

    Three claims, in increasing looseness.  (1) {!Netsim.Spatial.run_grid}
    is bit-identical to {!Netsim.Spatial.run} on the adjacency lists
    extracted from the same positions — the index changes how
    neighbourhoods are found, never what they are.  (2) The sharding
    machinery is bit-exact where no approximation exists: one shard
    reproduces the single-domain grid core on the same RNG streams, and
    the merged result is independent of the pool's worker count.  (3)
    With many shards, ghost mirroring truncates couplings beyond the
    halo, so sharded-vs-single agreement is a tolerance band on delivered
    frames; the margin is the consumed fraction of that band.

    Bit points and the small statistical point run in the fast tier; the
    full tier adds a larger statistical point (n = 200, 4 shards). *)

val checks :
  ?telemetry:Telemetry.Registry.t -> tier:Check.tier -> unit -> Check.t list
(** Evaluate the group (["scale"]); one check per point, emitted on the
    registry. *)
