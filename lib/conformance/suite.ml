type outcome = {
  tier : Check.tier;
  checks : Check.t list;
  report : string;
  ok : bool;
}

let default_golden_dir = Filename.concat "test" "golden"

let equivalence_checks ?telemetry ~tier () =
  let points = Equivalence.points ~tier in
  let tasks = Array.of_list (List.map Equivalence.task points) in
  let name = "conformance." ^ Check.tier_name tier in
  let results = Runner.map ?registry:telemetry ~name tasks in
  List.concat
    (List.mapi
       (fun i point ->
         Equivalence.checks ?telemetry point ~samples:results.(i))
       points)

let run ?telemetry ?(golden_dir = default_golden_dir) ~tier () =
  let checks =
    equivalence_checks ?telemetry ~tier ()
    @ Degenerate.checks ?telemetry ~tier ()
    @ Solver_core.checks ?telemetry ~tier ()
    @ Anchors.checks ?telemetry ~tier ()
    @ Serving.checks ?telemetry ~tier ()
    @ Scale.checks ?telemetry ~tier ()
    @ Golden.checks ?telemetry ~tier ~dir:golden_dir ()
  in
  { tier; checks; report = Check.report checks; ok = Check.all_passed checks }

let bless ?(golden_dir = default_golden_dir) ~tier () =
  Golden.bless ~dir:golden_dir ~tier
