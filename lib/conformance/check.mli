(** The conformance vocabulary: one record per machine-checked agreement
    claim, with a {e margin} instead of a bare pass/fail bit.

    Every check — a cross-backend equivalence band, a paper anchor, a
    golden snapshot — reduces to "how much of its tolerance budget did the
    discrepancy consume?".  That consumed fraction is the margin: 0 means
    exact agreement, 1 sits on the tolerance boundary, anything above 1
    fails.  Reporting the margin (and, for statistical checks, the
    z-score) makes drift visible while it is still passing: a check whose
    margin creeps from 0.2 to 0.9 across PRs is a regression in progress
    that a boolean would hide until it trips. *)

type tier = Fast | Full
(** [Fast] checks run in [@ci] on every push (sub-second to a few
    seconds); [Full] adds the statistical grid at real replicate counts
    ([@conformance], nightly/manual).  The full tier {e includes} the fast
    one. *)

val tier_name : tier -> string
(** ["fast"] / ["full"] — the CLI's [--tier] vocabulary. *)

val tier_of_string : string -> tier option

val runs_in : tier -> at:tier -> bool
(** [runs_in t ~at] — whether a check declared at tier [t] is part of a
    run at tier [at] (fast ⊂ full). *)

type status = Pass | Fail | Skipped of string

type t = {
  id : string;      (** stable dotted identifier, e.g. ["anchor.table2.n5"] *)
  group : string;   (** ["equivalence"], ["anchor"] or ["golden"] *)
  status : status;
  margin : float;   (** consumed tolerance fraction; [status = Pass] iff ≤ 1 *)
  detail : string;  (** one human-readable line: values, band, z-score *)
}

val v : id:string -> group:string -> ?detail:string -> margin:float -> unit -> t
(** Derive the status from the margin: [Pass] iff the margin is finite and
    ≤ 1 (NaN or infinite margins fail — a check that cannot compute its
    discrepancy must not pass silently). *)

val skip : id:string -> group:string -> string -> t
(** A check that could not run here (e.g. golden directory absent);
    margin 0, status [Skipped reason]. *)

val passed : t -> bool
(** [Skipped] counts as passed — it is not a divergence. *)

val all_passed : t list -> bool

val emit : ?telemetry:Telemetry.Registry.t -> t -> unit
(** Record the check on a registry (default: the global one): a
    ["conformance_check"] event carrying id/group/status/margin/detail,
    the ["conformance.checks.pass"/".fail"/".skipped"] counters, and the
    ["conformance.margin"] histogram — the drift trace a nightly run
    leaves behind. *)

val report : t list -> string
(** ASCII table of every check (group, id, status, margin, detail),
    worst margin first within each group, followed by a summary line. *)

val summary : t list -> string
(** One line: ["conformance: 37 checks, 35 pass, 1 fail, 1 skipped; worst
    margin 1.24 (equivalence.slotted...)"]. *)
