type kind = Relative of float | Absolute of float | At_least of float

type anchor = {
  id : string;
  tier : Check.tier;
  source : string;
  expected : float;
  kind : kind;
  compute : unit -> float;
}

(* Every anchor evaluates the analytic model — paper numbers are model
   properties, not sampling outcomes, so they get exact margins. *)

let basic_oracle = lazy (Macgame.Oracle.analytic Dcf.Params.default)

(* Table III is stated for the paper's own regime: m = 7 backoff stages and
   a vanishing transmission cost. *)
let table3_params =
  { Dcf.Params.rts_cts with max_backoff_stage = 7; cost = 0. }

let table3_oracle = lazy (Macgame.Oracle.analytic table3_params)

let efficient oracle n =
  float_of_int (Macgame.Equilibrium.efficient_cw (Lazy.force oracle) ~n)

(* The Sec. VII.B scenario, identical to the multihop bench: 100 random
   waypoint walkers in 1000 m x 1000 m, 250 m range, RTS/CTS.  One
   snapshot per seed, shared by the three anchors that read it. *)
let multihop_quasi =
  let cache = Hashtbl.create 4 in
  fun seed ->
    match Hashtbl.find_opt cache seed with
    | Some q -> q
    | None ->
        let walkers =
          Mobility.Waypoint.create ~seed
            { width = 1000.; height = 1000.; speed_min = 0.; speed_max = 5. }
            ~n:100
        in
        let adjacency =
          Mobility.Topology.snapshot ~connect_attempts:200 walkers ~range:250.
        in
        let graph = Macgame.Multihop.create adjacency in
        let oracle = Macgame.Oracle.analytic Dcf.Params.rts_cts in
        let q = Macgame.Multihop.quasi_optimality oracle graph in
        Hashtbl.add cache seed q;
        q

let table () =
  let fast = Check.Fast and full = Check.Full in
  let table2 n expected =
    {
      id = Printf.sprintf "table2.basic.n%d" n;
      tier = fast;
      source = "Table II (basic access, W_c*)";
      expected;
      kind = Relative 0.05;
      compute = (fun () -> efficient basic_oracle n);
    }
  in
  let table3 n expected =
    {
      id = Printf.sprintf "table3.rts.n%d" n;
      tier = fast;
      source = "Table III (RTS/CTS, m=7, e->0, W_c*)";
      expected;
      kind = Relative 0.07;
      compute = (fun () -> efficient table3_oracle n);
    }
  in
  (* Appendix B: the e-neglected continuous optimality condition, inverted
     back to a window, must land on the exact discrete optimum. *)
  let tau_inversion n expected =
    {
      id = Printf.sprintf "appendixB.tau_inversion.n%d" n;
      tier = fast;
      source = "Appendix B optimality condition vs exact W_c*";
      expected;
      kind = Relative 0.05;
      compute =
        (fun () ->
          let oracle = Lazy.force basic_oracle in
          let tau = Macgame.Equilibrium.tau_star Dcf.Params.default ~n in
          float_of_int (Macgame.Equilibrium.cw_of_tau oracle ~n tau));
    }
  in
  let multihop seed field =
    let quasi () = multihop_quasi seed in
    match field with
    | `Wm ->
        {
          id = Printf.sprintf "multihop.wm.seed%d" seed;
          tier = full;
          (* W_m is the efficient window of the snapshot's sparsest local
             neighbourhood, so it tracks the random topology, not just the
             model: the paper's single 100-node topology gave 26, the
             repo's waypoint seeds give 9-16.  The anchor pins the order
             of magnitude, not the exact window. *)
          source = "Sec. VII.B (converged CW, paper reports 26)";
          expected = 26.;
          kind = Absolute 20.;
          compute =
            (fun () -> float_of_int (quasi ()).Macgame.Multihop.w_m);
        }
    | `Global ->
        {
          id = Printf.sprintf "multihop.global_ratio.seed%d" seed;
          tier = full;
          source = "Sec. VII.B (global payoff within 3% of optimum)";
          expected = 0.97;
          kind = At_least 0.03;
          compute = (fun () -> (quasi ()).Macgame.Multihop.global_ratio);
        }
    | `Local ->
        {
          id = Printf.sprintf "multihop.min_local.seed%d" seed;
          tier = full;
          source = "Sec. VII.B (every node >= 96% of its local optimum)";
          expected = 0.96;
          kind = At_least 0.04;
          compute = (fun () -> (quasi ()).Macgame.Multihop.min_local_ratio);
        }
  in
  [
    table2 5 76.;
    table2 20 336.;
    table2 50 879.;
    table3 20 48.;
    table3 50 116.;
    {
      id = "fig2.peak_payoff.n5";
      tier = fast;
      source = "Fig. 2 (peak normalised payoff U/C at n=5, read off the figure)";
      expected = 0.0050;
      kind = Absolute 0.0005;
      compute =
        (fun () ->
          (* U/C = sigma*n*u/g, the dimensionless y-axis of Figs. 2-3. *)
          let params = Dcf.Params.default in
          let oracle = Lazy.force basic_oracle in
          let n = 5 in
          let w = Macgame.Equilibrium.efficient_cw oracle ~n in
          params.Dcf.Params.sigma *. float_of_int n
          *. Macgame.Oracle.payoff_uniform oracle ~n ~w
          /. params.Dcf.Params.gain);
    };
    {
      id = "fig3.plateau_ratio.n5";
      tier = fast;
      source = "Fig. 3 (95%-payoff plateau width around W_c*, n=5)";
      expected = 9.9;
      kind = Relative 0.3;
      compute =
        (fun () ->
          let oracle = Lazy.force basic_oracle in
          let lo, hi =
            Macgame.Equilibrium.robust_range oracle ~n:5 ~fraction:0.95
          in
          float_of_int hi /. float_of_int lo);
    };
    tau_inversion 5 79.;
    tau_inversion 20 339.;
    {
      id = "banchs.capture.n3";
      tier = fast;
      source =
        "Banchs et al. (EDCA configuration game): without punishment the \
         one-shot equilibria are asymmetric, one station captures the \
         channel";
      expected = 1.;
      kind = Absolute 0.01;
      compute =
        (fun () ->
          (* Coordinate-descent NE search over (CW, AIFS) from a symmetric
             start: the widened strategy space must reproduce the capture
             equilibrium — exactly one player drops to cw_min while the
             others retreat to silence — not a symmetric compromise. *)
          let params = Dcf.Params.default in
          let oracle = Lazy.force basic_oracle in
          let space =
            Dcf.Strategy_space.edca_space ~aifs_max:2 ~txop_max:1
              ~cw_max:params.Dcf.Params.cw_max ()
          in
          let initial = Macgame.Profile.uniform ~n:3 ~w:32 in
          let out = Macgame.Search.ne_search oracle ~space ~initial in
          if not out.converged then nan
          else
            float_of_int
              (Array.fold_left
                 (fun acc (s : Dcf.Strategy_space.t) ->
                   if s.cw = space.cw_min then acc + 1 else acc)
                 0 out.equilibrium));
    };
  ]
  @ List.concat_map
      (fun seed -> [ multihop seed `Wm; multihop seed `Global; multihop seed `Local ])
      [ 7; 21; 42 ]

let margin_of kind ~expected ~actual =
  match kind with
  | Relative tol -> Float.abs (actual -. expected) /. (tol *. Float.abs expected)
  | Absolute tol -> Float.abs (actual -. expected) /. tol
  | At_least tol -> Float.max 0. ((expected -. actual) /. tol)

let describe_kind = function
  | Relative tol -> Printf.sprintf "+-%g rel" tol
  | Absolute tol -> Printf.sprintf "+-%g abs" tol
  | At_least tol -> Printf.sprintf ">= (tol %g)" tol

let checks ?telemetry ~tier () =
  List.filter_map
    (fun a ->
      if not (Check.runs_in a.tier ~at:tier) then None
      else
        let id = "anchor." ^ a.id in
        let check =
          match a.compute () with
          | actual ->
              let margin = margin_of a.kind ~expected:a.expected ~actual in
              let detail =
                Printf.sprintf "%s: expected %g, got %.6g (%s)" a.source
                  a.expected actual (describe_kind a.kind)
              in
              Check.v ~id ~group:"anchor" ~margin ~detail ()
          | exception exn ->
              Check.v ~id ~group:"anchor" ~margin:infinity
                ~detail:("raised: " ^ Printexc.to_string exn)
                ()
        in
        Check.emit ?telemetry check;
        Some check)
    (table ())
