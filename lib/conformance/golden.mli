(** Golden regression snapshots: canonical JSONL files under
    [test/golden/], regenerated on demand and diffed field by field.

    Each {!snapshot} deterministically generates a list of JSON records
    (every generator is a pure function of constants baked into this
    module — fixed seeds, fixed grids — so blessing twice produces
    byte-identical files).  Checking parses the stored file and compares
    record by record under the snapshot's {!policy}:

    - [Exact] — every field must round-trip bit-identically
      ({!Telemetry.Jsonx} renders floats so parse ∘ render is the
      identity).  Used for analytic results and for simulator runs, which
      are bit-reproducible under the determinism contract.
    - [Toleranced tol] — float fields may drift by the relative tolerance
      (margin = consumed fraction, like every other check); non-float
      fields stay exact.  Used for fields measured through a simulated
      oracle backend, where a harmless change in RNG consumption order
      should not churn the goldens.

    A failing check's detail lists the first differing fields as
    ["record/field: golden X vs current Y"] and the report ends with the
    one-line re-bless command ({!bless_hint}).  [CONFORMANCE_BLESS=1] (or
    [--bless]) rewrites the files instead of checking them. *)

type policy = Exact | Toleranced of float

type snapshot = {
  name : string;   (** file stem: [name ^ ".jsonl"] in the golden dir *)
  tier : Check.tier;
  policy : policy;
  generate : unit -> Telemetry.Jsonx.t list;
      (** one JSON object per JSONL line, each carrying an ["id"] field
          that keys the per-record diff *)
}

val snapshots : unit -> snapshot list

val checks :
  ?telemetry:Telemetry.Registry.t ->
  tier:Check.tier -> dir:string -> unit -> Check.t list
(** One check per snapshot in the tier (group ["golden"], id
    ["golden." ^ name]).  A missing golden directory or file yields a
    [Skipped] check naming the bless command rather than a failure, so a
    fresh checkout degrades loudly but green. *)

val bless : dir:string -> tier:Check.tier -> string list
(** Regenerate every snapshot in the tier into [dir] (created if needed);
    returns the paths written.  Deterministic: running it twice writes
    byte-identical files. *)

val bless_hint : string
(** The one-line command a failure message points at. *)
