(** The assembled conformance suite: equivalence grid + paper anchors +
    golden snapshots, at a chosen tier.

    The equivalence points run as one {!Runner.map} sweep (name
    ["conformance.<tier>"]), so [-j N] parallelises the statistical grid,
    results are content-cached, and an interrupted full-tier run resumes
    from its checkpoint journal.  Anchors and golden snapshots are cheap
    and run inline. *)

type outcome = {
  tier : Check.tier;
  checks : Check.t list;  (** every check the tier ran, in groups *)
  report : string;        (** {!Check.report} of [checks] *)
  ok : bool;              (** {!Check.all_passed} *)
}

val default_golden_dir : string
(** ["test/golden"] — resolved relative to the working directory, so runs
    from the repo root find the checked-in snapshots. *)

val run :
  ?telemetry:Telemetry.Registry.t ->
  ?golden_dir:string ->
  tier:Check.tier ->
  unit ->
  outcome
(** Execute every check the tier includes; each check is emitted on the
    registry as it completes (margin histogram, pass/fail counters, one
    event per check). *)

val bless : ?golden_dir:string -> tier:Check.tier -> unit -> string list
(** Regenerate the golden snapshots instead of checking them; returns the
    files written. *)
