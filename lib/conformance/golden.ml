type policy = Exact | Toleranced of float

type snapshot = {
  name : string;
  tier : Check.tier;
  policy : policy;
  generate : unit -> Telemetry.Jsonx.t list;
}

let bless_hint =
  "CONFORMANCE_BLESS=1 dune exec bin/macgame_cli.exe -- conformance"

(* {2 Generators}

   Everything below is a pure function of constants in this file — fixed
   seeds, fixed grids — which is what makes blessing reproducible. *)

open Telemetry.Jsonx

let floats arr = List (Array.to_list (Array.map (fun x -> Float x) arr))

let ints arr = List (Array.to_list (Array.map (fun x -> Int x) arr))

let analytic_equilibrium () =
  List.concat_map
    (fun (label, params) ->
      let oracle = Macgame.Oracle.analytic params in
      List.map
        (fun n ->
          let w_star = Macgame.Equilibrium.efficient_cw oracle ~n in
          let w_c0 = Macgame.Equilibrium.break_even_cw oracle ~n in
          let ne = Macgame.Equilibrium.ne_set oracle ~n in
          let lo, hi =
            Macgame.Equilibrium.robust_range oracle ~n ~fraction:0.95
          in
          let view = Macgame.Oracle.uniform oracle ~n ~w:w_star in
          Obj
            [
              ("id", String (Printf.sprintf "%s.n%d" label n));
              ("w_star", Int w_star);
              ("w_c0", Int w_c0);
              ("ne_lo", Int ne.Macgame.Equilibrium.w_lo);
              ("ne_hi", Int ne.Macgame.Equilibrium.w_hi);
              ("robust_lo", Int lo);
              ("robust_hi", Int hi);
              ("tau", Float view.Macgame.Oracle.tau);
              ("p", Float view.Macgame.Oracle.p);
              ("utility", Float view.Macgame.Oracle.utility);
              ("throughput", Float view.Macgame.Oracle.throughput);
              ("slot_time", Float view.Macgame.Oracle.slot_time);
            ])
        [ 2; 5; 10; 20; 50 ])
    [ ("basic", Dcf.Params.default); ("rts", Dcf.Params.rts_cts) ]

let slotted_record ~id ?(bianchi_ticks = true) ?retry_limit ?(per = 0.) ~params
    ~cws ~seed () =
  let result =
    Netsim.Slotted.run ~bianchi_ticks ?retry_limit ~per
      { Netsim.Slotted.params; cws; duration = 2.; seed }
  in
  let per_node f =
    Array.map f result.Netsim.Slotted.per_node
  in
  Obj
    [
      ("id", String id);
      ("slots", Int result.slots);
      ( "attempts",
        ints (per_node (fun (s : Netsim.Slotted.node_stats) -> s.attempts)) );
      ( "successes",
        ints (per_node (fun (s : Netsim.Slotted.node_stats) -> s.successes)) );
      ( "collisions",
        ints (per_node (fun (s : Netsim.Slotted.node_stats) -> s.collisions)) );
      ("drops", ints (per_node (fun (s : Netsim.Slotted.node_stats) -> s.drops)));
      ("total_throughput", Float result.total_throughput);
      ("welfare_rate", Float result.welfare_rate);
      ("idle_fraction", Float result.airtime.idle_fraction);
      ("success_fraction", Float result.airtime.success_fraction);
      ("collision_fraction", Float result.airtime.collision_fraction);
      ("error_fraction", Float result.airtime.error_fraction);
    ]

let slotted_sim () =
  [
    slotted_record ~id:"basic.n5.w79.seed42" ~params:Dcf.Params.default
      ~cws:(Array.make 5 79) ~seed:42 ();
    slotted_record ~id:"rts.n5.w16.seed43" ~params:Dcf.Params.rts_cts
      ~cws:(Array.make 5 16) ~seed:43 ();
    slotted_record ~id:"basic.per20.retry6.seed44" ~per:0.2 ~retry_limit:6
      ~params:Dcf.Params.default ~cws:(Array.make 5 79) ~seed:44 ();
    slotted_record ~id:"basic.realfreeze.n5.w79.seed45" ~bianchi_ticks:false
      ~params:Dcf.Params.default ~cws:(Array.make 5 79) ~seed:45 ();
  ]

let chain n =
  Array.init n (fun i ->
      (if i > 0 then [ i - 1 ] else []) @ if i < n - 1 then [ i + 1 ] else [])

let clique n = Array.init n (fun i -> List.filter (( <> ) i) (List.init n Fun.id))

let spatial_record ~id ~params ~adjacency ~cws ~seed =
  let result =
    Netsim.Spatial.run
      { Netsim.Spatial.params; adjacency; cws; duration = 1.; seed }
  in
  let per_node f = Array.map f result.Netsim.Spatial.per_node in
  Obj
    [
      ("id", String id);
      ("delivered", Int result.delivered);
      ("delivered_late", Int result.delivered_late);
      ("welfare_rate", Float result.welfare_rate);
      ( "attempts",
        ints (per_node (fun (s : Netsim.Spatial.node_stats) -> s.attempts)) );
      ( "successes",
        ints (per_node (fun (s : Netsim.Spatial.node_stats) -> s.successes)) );
      ( "hidden_failures",
        ints
          (per_node (fun (s : Netsim.Spatial.node_stats) -> s.hidden_failures))
      );
      ( "payoff_rates",
        floats
          (per_node (fun (s : Netsim.Spatial.node_stats) -> s.payoff_rate)) );
      ("busy_fraction", Float result.airtime.busy_fraction);
      ("success_fraction", Float result.airtime.success_fraction);
      ("collision_fraction", Float result.airtime.collision_fraction);
      ("overlap_fraction", Float result.airtime.overlap_fraction);
    ]

let spatial_sim () =
  [
    spatial_record ~id:"chain.rts.n6.seed7" ~params:Dcf.Params.rts_cts
      ~adjacency:(chain 6) ~cws:(Array.make 6 32) ~seed:7;
    spatial_record ~id:"clique.basic.n4.seed9" ~params:Dcf.Params.default
      ~adjacency:(clique 4) ~cws:(Array.make 4 64) ~seed:9;
  ]

let multihop_quasi () =
  (* An 8-node ring: deterministic, connected, every node degree 2. *)
  let ring = Array.init 8 (fun i -> [ (i + 7) mod 8; (i + 1) mod 8 ]) in
  let graph = Macgame.Multihop.create ring in
  let oracle = Macgame.Oracle.analytic Dcf.Params.rts_cts in
  let q = Macgame.Multihop.quasi_optimality oracle graph in
  [
    Obj
      [
        ("id", String "ring8.rts");
        ("w_m", Int q.Macgame.Multihop.w_m);
        ("w_global_opt", Int q.w_global_opt);
        ("global_at_ne", Float q.global_at_ne);
        ("global_opt", Float q.global_opt);
        ("global_ratio", Float q.global_ratio);
        ("min_local_ratio", Float q.min_local_ratio);
      ];
  ]

let oracle_backends () =
  let sim =
    { Macgame.Oracle.duration = 5.; replicates = 2; seed = 11 }
  in
  List.map
    (fun (label, params, n, w) ->
      let analytic = Macgame.Oracle.analytic params in
      let slotted =
        Macgame.Oracle.create ~backend:(Macgame.Oracle.Sim_slotted sim) params
      in
      Obj
        [
          ("id", String label);
          ("n", Int n);
          ("w", Int w);
          ( "utility_analytic",
            Float (Macgame.Oracle.payoff_uniform analytic ~n ~w) );
          ( "utility_slotted",
            Float (Macgame.Oracle.payoff_uniform slotted ~n ~w) );
        ])
    [
      ("basic.n5.w79", Dcf.Params.default, 5, 79);
      ("rts.n5.w16", Dcf.Params.rts_cts, 5, 16);
    ]

let snapshots () =
  [
    {
      name = "analytic_equilibrium";
      tier = Check.Fast;
      policy = Exact;
      generate = analytic_equilibrium;
    };
    { name = "slotted_sim"; tier = Check.Fast; policy = Exact; generate = slotted_sim };
    { name = "spatial_sim"; tier = Check.Fast; policy = Exact; generate = spatial_sim };
    {
      name = "multihop_quasi";
      tier = Check.Fast;
      policy = Exact;
      generate = multihop_quasi;
    };
    {
      name = "oracle_backends";
      tier = Check.Fast;
      policy = Toleranced 0.05;
      generate = oracle_backends;
    };
  ]

(* {2 Field-level diffing} *)

type field_diff = { path : string; golden : string; current : string; m : float }

let numeric = function Int _ | Float _ -> true | _ -> false

let as_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | _ -> nan

(* Accumulates one diff entry per differing leaf.  Under [Toleranced tol]
   numeric leaves get a proportional margin; everything else is
   exact-or-infinite. *)
let rec diff_value ~policy ~path golden current acc =
  match (golden, current) with
  | Obj g, Obj c ->
      let keys =
        List.sort_uniq compare (List.map fst g @ List.map fst c)
      in
      List.fold_left
        (fun acc key ->
          let sub = if path = "" then key else path ^ "/" ^ key in
          match (List.assoc_opt key g, List.assoc_opt key c) with
          | Some gv, Some cv -> diff_value ~policy ~path:sub gv cv acc
          | Some gv, None ->
              { path = sub; golden = to_string gv; current = "<missing>";
                m = infinity }
              :: acc
          | None, Some cv ->
              { path = sub; golden = "<missing>"; current = to_string cv;
                m = infinity }
              :: acc
          | None, None -> acc)
        acc keys
  | List g, List c when List.length g = List.length c ->
      List.fold_left
        (fun (acc, i) (gv, cv) ->
          (diff_value ~policy ~path:(Printf.sprintf "%s[%d]" path i) gv cv acc,
           i + 1))
        (acc, 0) (List.combine g c)
      |> fst
  | g, c when g = c -> acc
  | g, c -> (
      match policy with
      | Toleranced tol when numeric g && numeric c ->
          let gv = as_float g and cv = as_float c in
          let scale = Float.max (Float.abs gv) (Float.abs cv) in
          let rel = if scale > 0. then Float.abs (gv -. cv) /. scale else 0. in
          let m = rel /. tol in
          if m <= 1. && Float.is_finite m then acc
          else
            { path; golden = to_string g; current = to_string c; m } :: acc
      | _ ->
          { path; golden = to_string g; current = to_string c; m = infinity }
          :: acc)

let record_id json =
  match member "id" json with Some (String s) -> s | _ -> "<no id>"

let diff_records ~policy golden current =
  let index records =
    List.map (fun r -> (record_id r, r)) records
  in
  let g = index golden and c = index current in
  let keys = List.sort_uniq compare (List.map fst g @ List.map fst c) in
  List.fold_left
    (fun acc key ->
      match (List.assoc_opt key g, List.assoc_opt key c) with
      | Some gv, Some cv -> diff_value ~policy ~path:key gv cv acc
      | Some _, None ->
          { path = key; golden = "<record>"; current = "<missing>";
            m = infinity }
          :: acc
      | None, Some _ ->
          { path = key; golden = "<missing>"; current = "<record>";
            m = infinity }
          :: acc
      | None, None -> acc)
    [] keys
  |> List.rev

(* {2 File I/O} *)

let path_of ~dir snapshot = Filename.concat dir (snapshot.name ^ ".jsonl")

let render records =
  String.concat "" (List.map (fun r -> to_string r ^ "\n") records)

let read_lines path =
  let contents = In_channel.with_open_text path In_channel.input_all in
  String.split_on_char '\n' contents
  |> List.filter (fun line -> String.trim line <> "")

(* {2 Checks and blessing} *)

let check_snapshot snapshot ~dir =
  let id = "golden." ^ snapshot.name in
  let path = path_of ~dir snapshot in
  if not (Sys.file_exists path) then
    Check.skip ~id ~group:"golden"
      (Printf.sprintf "no snapshot at %s; bless with: %s" path bless_hint)
  else
    match List.map parse (read_lines path) with
    | exception Parse_error msg ->
        Check.v ~id ~group:"golden" ~margin:infinity
          ~detail:(Printf.sprintf "unparseable golden %s: %s" path msg)
          ()
    | golden_records ->
        let diffs =
          diff_records ~policy:snapshot.policy golden_records
            (snapshot.generate ())
        in
        let margin =
          List.fold_left (fun acc d -> Float.max acc d.m) 0. diffs
        in
        let detail =
          match diffs with
          | [] ->
              Printf.sprintf "%d records match"
                (List.length golden_records)
          | _ ->
              let shown =
                List.filteri (fun i _ -> i < 3) diffs
                |> List.map (fun d ->
                       Printf.sprintf "%s: golden %s vs current %s" d.path
                         d.golden d.current)
              in
              let more =
                if List.length diffs > 3 then
                  Printf.sprintf " (+%d more)" (List.length diffs - 3)
                else ""
              in
              String.concat "; " shown ^ more
              ^ Printf.sprintf "; re-bless: %s" bless_hint
        in
        Check.v ~id ~group:"golden" ~margin ~detail ()

let checks ?telemetry ~tier ~dir () =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    let c =
      Check.skip ~id:"golden" ~group:"golden"
        (Printf.sprintf "golden directory %s absent; bless with: %s" dir
           bless_hint)
    in
    (Check.emit ?telemetry c; [ c ])
  else
    List.filter_map
      (fun s ->
        if not (Check.runs_in s.tier ~at:tier) then None
        else
          let c = check_snapshot s ~dir in
          Check.emit ?telemetry c;
          Some c)
      (snapshots ())

let bless ~dir ~tier =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.filter_map
    (fun s ->
      if not (Check.runs_in s.tier ~at:tier) then None
      else begin
        let path = path_of ~dir s in
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (render (s.generate ())));
        Some path
      end)
    (snapshots ())
