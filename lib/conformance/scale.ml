(* The scale seam (PR 10): the grid-indexed geometric core and the
   region-sharded multi-domain runner carry three promises, checked here
   in increasing looseness.

   1. Bit-identity of the index: [Spatial.run_grid] on positions must
      equal [Spatial.run] on the adjacency lists [Topology] extracts from
      the same positions — the grid changes how neighbourhoods are found,
      never what they are.  Margin 0 or infinity, like the degenerate
      group.

   2. Bit-identity of the sharding machinery where no approximation
      exists: one shard must reproduce the single-domain grid core on the
      same RNG streams, and the merged result must not depend on the
      worker count of the pool that scheduled the shards.

   3. Statistical equivalence where the approximation lives: with many
      shards, ghost mirroring truncates couplings beyond the halo, so
      sharded-vs-single agreement is a tolerance band on delivered
      frames, not bit-identity.  The margin is the consumed fraction of
      that band — the number to watch creep if the halo or the border
      protocol regresses. *)

let params = Dcf.Params.default
let range = 120.
let cs_range = 180.

let positions ~seed n =
  let w =
    Mobility.Waypoint.create ~seed
      { width = 500.; height = 500.; speed_min = 0.; speed_max = 5. }
      ~n
  in
  Mobility.Waypoint.positions w

let margin_of ok = if ok then 0. else infinity

(* {2 Grid-vs-lists bit-identity} *)

let grid_bit_point ~mode ~n ~seed ~range ~cs_range () =
  let params =
    match mode with `Basic -> Dcf.Params.default | `Rts -> Dcf.Params.rts_cts
  in
  let positions = positions ~seed n in
  let cws = Array.init n (fun i -> 16 lsl (i mod 2)) in
  let adjacency = Mobility.Topology.adjacency ~range positions in
  let cs_adjacency = Mobility.Topology.adjacency ~range:cs_range positions in
  let lists =
    Netsim.Spatial.run ~cs_adjacency
      { params; adjacency; cws; duration = 1.; seed }
  in
  let grid =
    Netsim.Spatial.run_grid ~params ~positions ~range ~cs_range ~cws
      ~duration:1. ~seed ()
  in
  Netsim.Spatial.equal_result lists grid

(* {2 Sharded bit-identity (no approximation in play)} *)

let sharded_cfg ~n ~seed ~duration =
  {
    Netsim.Sharded.params;
    positions = positions ~seed n;
    range;
    cs_range;
    cws = Array.make n 32;
    duration;
    seed;
  }

let stats_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 Netsim.Spatial.equal_stats a b

let single_grid (cfg : Netsim.Sharded.config) =
  Netsim.Spatial.run_grid
    ~rng_of:(Netsim.Sharded.node_rng ~seed:cfg.seed)
    ~params:cfg.params ~positions:cfg.positions ~range:cfg.range
    ~cs_range:cfg.cs_range ~cws:cfg.cws ~duration:cfg.duration ~seed:cfg.seed
    ()

let sharded_one_shard_point ~n ~seed () =
  let cfg = sharded_cfg ~n ~seed ~duration:0.5 in
  let sharded = Netsim.Sharded.run ~shards:1 cfg in
  let single = single_grid cfg in
  stats_equal sharded.per_node single.per_node

let sharded_workers_point ~n ~seed () =
  let cfg = sharded_cfg ~n ~seed ~duration:0.5 in
  let run workers =
    let pool = Runner.Pool.create ~workers () in
    Netsim.Sharded.run ~pool ~shards:3 cfg
  in
  let serial = run 1 and parallel = run 3 in
  stats_equal serial.per_node parallel.per_node

(* {2 Sharded-vs-single statistical band} *)

let sharded_stat_point ~n ~shards ~duration ~seed ~tolerance () =
  let cfg = sharded_cfg ~n ~seed ~duration in
  let sharded = Netsim.Sharded.run ~shards cfg in
  let single = single_grid cfg in
  let total stats =
    Array.fold_left
      (fun acc (s : Netsim.Spatial.node_stats) -> acc + s.successes)
      0 stats
  in
  let s = total sharded.per_node and g = total single.per_node in
  let rel =
    Float.abs (float_of_int (s - g)) /. float_of_int (Stdlib.max 1 g)
  in
  ( rel /. tolerance,
    Printf.sprintf
      "delivered %d sharded vs %d single (rel diff %.4f, band %.2f)" s g rel
      tolerance )

let checks ?telemetry ~tier () =
  if not (Check.runs_in Check.Fast ~at:tier) then []
  else begin
    let emit check =
      Check.emit ?telemetry check;
      check
    in
    let bit ~id compute =
      emit
        (match compute () with
        | ok ->
            Check.v ~id ~group:"scale" ~margin:(margin_of ok)
              ~detail:
                (if ok then "bit-identical"
                 else "DIVERGED where bit-identity is promised")
              ()
        | exception exn ->
            Check.v ~id ~group:"scale" ~margin:infinity
              ~detail:("raised: " ^ Printexc.to_string exn)
              ())
    in
    let stat ~id compute =
      emit
        (match compute () with
        | margin, detail -> Check.v ~id ~group:"scale" ~margin ~detail ()
        | exception exn ->
            Check.v ~id ~group:"scale" ~margin:infinity
              ~detail:("raised: " ^ Printexc.to_string exn)
              ())
    in
    let fast =
      [
        bit ~id:"scale.grid.basic.n24"
          (grid_bit_point ~mode:`Basic ~n:24 ~seed:3 ~range:150.
             ~cs_range:210.);
        bit ~id:"scale.grid.rts.n32"
          (grid_bit_point ~mode:`Rts ~n:32 ~seed:7 ~range:150. ~cs_range:225.);
        bit ~id:"scale.grid.cs-eq-range.n16"
          (grid_bit_point ~mode:`Basic ~n:16 ~seed:11 ~range:120.
             ~cs_range:120.);
        bit ~id:"scale.sharded.one-shard.n40"
          (sharded_one_shard_point ~n:40 ~seed:5);
        bit ~id:"scale.sharded.workers.n60"
          (sharded_workers_point ~n:60 ~seed:13);
        stat ~id:"scale.sharded.stat.n60"
          (sharded_stat_point ~n:60 ~shards:3 ~duration:1. ~seed:21
             ~tolerance:0.1);
      ]
    in
    let full =
      if not (Check.runs_in Check.Full ~at:tier) then []
      else
        [
          stat ~id:"scale.sharded.stat.n200"
            (sharded_stat_point ~n:200 ~shards:4 ~duration:2. ~seed:33
               ~tolerance:0.15);
        ]
    in
    fast @ full
  end
