type tier = Fast | Full

let tier_name = function Fast -> "fast" | Full -> "full"

let tier_of_string = function
  | "fast" -> Some Fast
  | "full" -> Some Full
  | _ -> None

let runs_in t ~at = match (t, at) with Fast, _ -> true | Full, at -> at = Full

type status = Pass | Fail | Skipped of string

type t = {
  id : string;
  group : string;
  status : status;
  margin : float;
  detail : string;
}

let v ~id ~group ?(detail = "") ~margin () =
  let status =
    if Float.is_finite margin && margin <= 1. then Pass else Fail
  in
  { id; group; status; margin; detail }

let skip ~id ~group reason =
  { id; group; status = Skipped reason; margin = 0.; detail = reason }

let passed c = match c.status with Pass | Skipped _ -> true | Fail -> false

let all_passed = List.for_all passed

let status_name = function
  | Pass -> "pass"
  | Fail -> "FAIL"
  | Skipped _ -> "skip"

let emit ?(telemetry = Telemetry.Registry.default) c =
  let counter =
    match c.status with
    | Pass -> "conformance.checks.pass"
    | Fail -> "conformance.checks.fail"
    | Skipped _ -> "conformance.checks.skipped"
  in
  Telemetry.Metric.incr (Telemetry.Registry.counter telemetry counter);
  (match c.status with
  | Skipped _ -> ()
  | Pass | Fail ->
      Telemetry.Metric.observe
        (Telemetry.Registry.histogram telemetry "conformance.margin")
        c.margin);
  Telemetry.Registry.emit telemetry "conformance_check" (fun () ->
      [
        ("id", Telemetry.Jsonx.String c.id);
        ("group", Telemetry.Jsonx.String c.group);
        ("status", Telemetry.Jsonx.String (status_name c.status));
        ("margin", Telemetry.Jsonx.Float c.margin);
        ("detail", Telemetry.Jsonx.String c.detail);
      ])

let summary checks =
  let count pred = List.length (List.filter pred checks) in
  let pass = count (fun c -> c.status = Pass) in
  let fail = count (fun c -> c.status = Fail) in
  let skipped =
    count (fun c -> match c.status with Skipped _ -> true | _ -> false)
  in
  let worst =
    List.fold_left
      (fun acc c ->
        match (c.status, acc) with
        | Skipped _, _ -> acc
        | _, Some (m, _) when c.margin <= m -> acc
        | _, _ -> Some (c.margin, c.id))
      None checks
  in
  Printf.sprintf "conformance: %d checks, %d pass, %d fail, %d skipped%s"
    (List.length checks) pass fail skipped
    (match worst with
    | Some (m, id) -> Printf.sprintf "; worst margin %.2f (%s)" m id
    | None -> "")

let report checks =
  let columns =
    [
      Prelude.Table.column ~align:Prelude.Table.Left "group";
      Prelude.Table.column ~align:Prelude.Table.Left "check";
      Prelude.Table.column "status";
      Prelude.Table.column "margin";
      Prelude.Table.column ~align:Prelude.Table.Left "detail";
    ]
  in
  (* Stable group order, worst margin first within a group, so the closest
     calls lead their section. *)
  let group_rank = function
    | "equivalence" -> 0
    | "anchor" -> 1
    | "golden" -> 2
    | _ -> 3
  in
  let sorted =
    List.stable_sort
      (fun a b ->
        match compare (group_rank a.group) (group_rank b.group) with
        | 0 -> compare b.margin a.margin
        | c -> c)
      checks
  in
  let rows =
    List.map
      (fun c ->
        [
          c.group;
          c.id;
          status_name c.status;
          (match c.status with
          | Skipped _ -> "-"
          | _ -> Printf.sprintf "%.3f" c.margin);
          c.detail;
        ])
      sorted
  in
  Prelude.Table.render columns rows ^ summary checks ^ "\n"
