(** Line codec of the persistent equilibrium store.

    A store file is line-oriented: one header line naming the magic and
    format version, then one entry per line.  Every entry line is

    {v <16 hex digits>:<compact JSON {"k": key, "v": value}> v}

    where the digest is the 64-bit FNV-1a hash of the payload bytes that
    follow the colon.  A torn final line (kill mid-append), a flipped bit
    anywhere in the line, or a glued/partial JSON document all fail the
    digest or the parse and decode to [None] — the reader drops exactly
    that entry and keeps every other line, so a crash never costs more
    than the entry being written. *)

exception Corrupt of string
(** Raised for file-level damage (header of a non-store file); per-entry
    damage is reported by {!decode} returning [None] instead. *)

val magic : string
(** ["MACSTORE1"]. *)

val version : int

val header : string
(** The header line (no trailing newline) every store file starts with. *)

val check_header : string -> unit
(** Validate a file's first line.  @raise Corrupt when it is not a
    well-formed header carrying the expected magic and version. *)

val encode : key:string -> Telemetry.Jsonx.t -> string
(** One entry line (no trailing newline). *)

val decode : string -> (string * Telemetry.Jsonx.t) option
(** Decode one entry line; [None] on any damage.  Values round-trip
    bit-faithfully for floats ({!Telemetry.Jsonx} renders the shortest
    representation that parses back to the identical bits). *)
