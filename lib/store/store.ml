module Codec = Codec

exception Locked of string
exception Corrupt = Codec.Corrupt

type t = {
  dir : string;
  lock_path : string;
  lock_fd : Unix.file_descr;
  mutex : Mutex.t;
  index : (string, Telemetry.Jsonx.t) Hashtbl.t;
  mutable active : out_channel;
  mutable closed : bool;
  hits : Telemetry.Metric.counter;
  misses : Telemetry.Metric.counter;
  puts : Telemetry.Metric.counter;
  corrupt : Telemetry.Metric.counter;
  compactions : Telemetry.Metric.counter;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Advisory locking is two-layered: [Unix.lockf] keeps a second {e
   process} out, but POSIX record locks are per-process (re-locking from
   the same process silently succeeds), so a process-global registry of
   held paths catches a second opener in the same process too. *)
let held = Hashtbl.create 4
let held_mutex = Mutex.create ()

let canonical dir =
  match Unix.realpath dir with exception Unix.Unix_error _ -> dir | p -> p

let acquire_lock dir =
  let path = Filename.concat dir "LOCK" in
  let key = canonical dir in
  Mutex.lock held_mutex;
  let already = Hashtbl.mem held key in
  if not already then Hashtbl.replace held key ();
  Mutex.unlock held_mutex;
  if already then
    raise
      (Locked
         (Printf.sprintf "store %s is already open in this process" dir));
  let release_registry () =
    Mutex.lock held_mutex;
    Hashtbl.remove held key;
    Mutex.unlock held_mutex
  in
  match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 with
  | exception e ->
      release_registry ();
      raise e
  | fd -> (
      match Unix.lockf fd Unix.F_TLOCK 0 with
      | () ->
          let pid = string_of_int (Unix.getpid ()) ^ "\n" in
          ignore (Unix.ftruncate fd 0);
          ignore (Unix.write_substring fd pid 0 (String.length pid));
          (path, fd)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
          Unix.close fd;
          release_registry ();
          raise
            (Locked
               (Printf.sprintf
                  "store %s is locked by another process (lock file %s)" dir
                  path))
      | exception e ->
          Unix.close fd;
          release_registry ();
          raise e)

let release_lock t =
  Unix.close t.lock_fd;
  Mutex.lock held_mutex;
  Hashtbl.remove held (canonical t.dir);
  Mutex.unlock held_mutex

let segment_prefix = "seg-"
let segment_suffix = ".jsonl"
let active_name = "active.jsonl"
let segment_name gen = Printf.sprintf "%s%06d%s" segment_prefix gen segment_suffix

let segment_gen file =
  let plen = String.length segment_prefix in
  let slen = String.length segment_suffix in
  let n = String.length file in
  if
    n > plen + slen
    && String.sub file 0 plen = segment_prefix
    && String.sub file (n - slen) slen = segment_suffix
  then int_of_string_opt (String.sub file plen (n - plen - slen))
  else None

let segments dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
      Array.to_list files
      |> List.filter_map (fun f ->
             Option.map (fun g -> (g, f)) (segment_gen f))
      |> List.sort compare

(* Load one store file into the index.  The header is strict — a file
   that does not announce itself as a store segment raises {!Corrupt} —
   but entry lines are validated independently: a torn final line or a
   flipped bit drops that entry alone (counted on [corrupt]) and every
   other line survives. *)
let load_file ~corrupt index path =
  match open_in_bin path with
  | exception Sys_error _ -> ()
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          (match input_line ic with
          | exception End_of_file ->
              raise (Codec.Corrupt (path ^ ": empty store file"))
          | line -> Codec.check_header line);
          try
            while true do
              let line = input_line ic in
              if String.trim line <> "" then
                match Codec.decode line with
                | Some (key, value) -> Hashtbl.replace index key value
                | None -> Telemetry.Metric.incr corrupt
            done
          with End_of_file -> ())

let open_active dir =
  let path = Filename.concat dir active_name in
  let fresh = not (Sys.file_exists path) in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  if fresh then begin
    output_string oc Codec.header;
    output_char oc '\n';
    flush oc
  end;
  oc

let open_dir ?(telemetry = Telemetry.Registry.default) dir =
  mkdir_p dir;
  let lock_path, lock_fd = acquire_lock dir in
  let corrupt = Telemetry.Registry.counter telemetry "store.corrupt_entries" in
  let index = Hashtbl.create 256 in
  let finish_open () =
    List.iter
      (fun (_, file) -> load_file ~corrupt index (Filename.concat dir file))
      (segments dir);
    let active_path = Filename.concat dir active_name in
    if Sys.file_exists active_path then load_file ~corrupt index active_path;
    {
      dir;
      lock_path;
      lock_fd;
      mutex = Mutex.create ();
      index;
      active = open_active dir;
      closed = false;
      hits = Telemetry.Registry.counter telemetry "store.hits";
      misses = Telemetry.Registry.counter telemetry "store.misses";
      puts = Telemetry.Registry.counter telemetry "store.puts";
      corrupt;
      compactions = Telemetry.Registry.counter telemetry "store.compactions";
    }
  in
  match finish_open () with
  | t -> t
  | exception e ->
      (* Corrupt header (or any load failure): do not leave the lock
         held by a store that never opened. *)
      Unix.close lock_fd;
      Mutex.lock held_mutex;
      Hashtbl.remove held (canonical dir);
      Mutex.unlock held_mutex;
      raise e

let dir t = t.dir

let ensure_open t what =
  if t.closed then invalid_arg (Printf.sprintf "Store.%s: store is closed" what)

let find t ~key =
  Mutex.lock t.mutex;
  let found =
    if t.closed then None else Hashtbl.find_opt t.index key
  in
  Mutex.unlock t.mutex;
  (match found with
  | Some _ -> Telemetry.Metric.incr t.hits
  | None -> Telemetry.Metric.incr t.misses);
  found

let put t ~key value =
  let line = Codec.encode ~key value in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      ensure_open t "put";
      Hashtbl.replace t.index key value;
      output_string t.active line;
      output_char t.active '\n';
      flush t.active;
      Telemetry.Metric.incr t.puts)

let entries t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.index in
  Mutex.unlock t.mutex;
  n

let iter t f =
  Mutex.lock t.mutex;
  let snapshot = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.index [] in
  Mutex.unlock t.mutex;
  List.iter (fun (k, v) -> f ~key:k v) snapshot

(* Fold every live entry into one fresh sealed segment (written next to
   its final name and renamed, so a crash mid-compaction leaves the old
   files untouched), then drop the superseded segments and restart the
   append log.  Disk after compaction holds exactly one copy of each
   entry. *)
let compact t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      ensure_open t "compact";
      let old_segments = segments t.dir in
      let next_gen =
        match List.rev old_segments with (g, _) :: _ -> g + 1 | [] -> 0
      in
      let target = Filename.concat t.dir (segment_name next_gen) in
      let tmp = target ^ ".tmp" in
      let oc = open_out_bin tmp in
      output_string oc Codec.header;
      output_char oc '\n';
      Hashtbl.iter
        (fun key value ->
          output_string oc (Codec.encode ~key value);
          output_char oc '\n')
        t.index;
      close_out oc;
      Sys.rename tmp target;
      List.iter
        (fun (_, file) ->
          try Sys.remove (Filename.concat t.dir file)
          with Sys_error _ -> ())
        old_segments;
      close_out_noerr t.active;
      (try Sys.remove (Filename.concat t.dir active_name)
       with Sys_error _ -> ());
      t.active <- open_active t.dir;
      Telemetry.Metric.incr t.compactions)

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        close_out_noerr t.active;
        release_lock t
      end)

let with_store ?telemetry dir f =
  let t = open_dir ?telemetry dir in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
