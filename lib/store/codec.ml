exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt
let magic = "MACSTORE1"
let version = 1

let header =
  Telemetry.Jsonx.to_string
    (Telemetry.Jsonx.Obj
       [
         ("magic", Telemetry.Jsonx.String magic);
         ("version", Telemetry.Jsonx.Int version);
       ])

let check_header line =
  match Telemetry.Jsonx.parse line with
  | exception Telemetry.Jsonx.Parse_error msg ->
      corrupt "unreadable segment header: %s" msg
  | json -> (
      (match Telemetry.Jsonx.member "magic" json with
      | Some (Telemetry.Jsonx.String m) when String.equal m magic -> ()
      | _ -> corrupt "bad magic (not a store segment)");
      match Telemetry.Jsonx.member "version" json with
      | Some (Telemetry.Jsonx.Int v) when v = version -> ()
      | Some (Telemetry.Jsonx.Int v) ->
          corrupt "unsupported store version %d (expected %d)" v version
      | _ -> corrupt "segment header missing version")

(* The checksum covers the rendered payload bytes, not the parsed value:
   Jsonx is not render-stable through a parse (integral floats come back
   as ints), so hashing the re-rendering would reject entries the codec
   itself wrote.  Hashing the raw bytes makes verification exact and
   catches any flipped bit in either the payload or the digest itself. *)
let encode ~key value =
  let payload =
    Telemetry.Jsonx.to_string
      (Telemetry.Jsonx.Obj
         [ ("k", Telemetry.Jsonx.String key); ("v", value) ])
  in
  Prelude.Util.hex64 (Prelude.Util.fnv1a64 payload) ^ ":" ^ payload

let decode line =
  let n = String.length line in
  if n < 18 || line.[16] <> ':' then None
  else
    let digest = String.sub line 0 16 in
    let payload = String.sub line 17 (n - 17) in
    if
      not
        (String.equal digest
           (Prelude.Util.hex64 (Prelude.Util.fnv1a64 payload)))
    then None
    else
      match Telemetry.Jsonx.parse payload with
      | exception Telemetry.Jsonx.Parse_error _ -> None
      | json -> (
          match
            (Telemetry.Jsonx.member "k" json, Telemetry.Jsonx.member "v" json)
          with
          | Some (Telemetry.Jsonx.String key), Some value -> Some (key, value)
          | _ -> None)
