(** Persistent, content-keyed equilibrium store.

    The oracle's memo tables die with the process; this store is their
    durable counterpart — a key → JSON map that survives runs and is
    shared across backends, so every equilibrium the fleet has ever
    solved can answer the next query at disk-read cost instead of a
    fixed-point solve.

    {2 On-disk layout}

    {v
    DIR/
      LOCK              advisory lock (holder's pid)
      seg-000000.jsonl  sealed segments (compaction output)
      active.jsonl      append log for new entries
    v}

    Every file starts with a strict magic/version header line and holds
    checksummed entry lines (see {!Codec}).  [put] appends to the active
    log and flushes, so a crash loses at most the entry being written:
    the torn final line fails its digest on the next open and is dropped
    alone, exactly like {!Runner.Checkpoint} journals.  [compact] folds
    everything into one fresh segment with a tmp+rename write (crash
    mid-compaction leaves the previous files intact) and restarts the
    log.  Later entries win, so re-putting a key supersedes it.

    {2 Locking}

    Opening takes an advisory lock ([LOCK], via [lockf] plus an
    in-process registry) and raises {!Locked} immediately when another
    opener — same process or another one — already holds the store:
    concurrent writers would interleave log appends, so the store
    refuses fast and loudly rather than corrupting.

    {2 Telemetry}

    Counters on the registry passed at open: ["store.hits"] /
    ["store.misses"] (lookups), ["store.puts"], ["store.corrupt_entries"]
    (entry lines dropped at load), ["store.compactions"]. *)

module Codec = Codec
(** The line codec, exposed for tests and tooling that inspect or forge
    store files (e.g. crash-safety tests damaging entries byte-wise). *)

type t

exception Locked of string
(** Raised by {!open_dir} when the directory is already open elsewhere. *)

exception Corrupt of string
(** Raised when a store file is not a store file at all (bad magic or
    unsupported version).  Damaged {e entries} never raise — they are
    dropped entry-wise and counted on ["store.corrupt_entries"]. *)

val open_dir : ?telemetry:Telemetry.Registry.t -> string -> t
(** Open (creating if needed, including parents) the store, take its
    lock, and load the in-memory index from every segment plus the
    active log. *)

val close : t -> unit
(** Flush, release the lock and mark the store closed (idempotent).
    Lookups on a closed store miss; [put]/[compact] raise
    [Invalid_argument]. *)

val with_store :
  ?telemetry:Telemetry.Registry.t -> string -> (t -> 'a) -> 'a
(** [with_store dir f] opens, runs [f], and closes even on raise. *)

val dir : t -> string

val find : t -> key:string -> Telemetry.Jsonx.t option
(** Index lookup (no disk I/O after open). *)

val put : t -> key:string -> Telemetry.Jsonx.t -> unit
(** Insert or supersede an entry; appended to the log and flushed before
    returning. *)

val entries : t -> int
(** Number of live (deduplicated) entries. *)

val iter : t -> (key:string -> Telemetry.Jsonx.t -> unit) -> unit
(** Iterate over a snapshot of the live entries (unspecified order). *)

val compact : t -> unit
(** Merge all files into one fresh sealed segment and truncate the log. *)
