(** Damped Newton iteration for fixed-point problems [x = f x].

    Each iteration tries a full Newton step on the defect
    [h(x) = f(x) − x], delegated to a caller-supplied linear-step closure
    (so structured Jacobians — e.g. diagonal plus rank-one — can solve in
    O(n) instead of O(n³)).  A step is accepted only when it strictly
    shrinks the max-norm defect; a refused, singular, or non-finite step
    degrades to one damped Picard sweep, which keeps global convergence
    exactly where the plain {!Fixed_point} iteration had it. *)

type outcome = {
  value : float array;     (** the (approximate) fixed point *)
  iterations : int;        (** total iterations (Newton + fallback) *)
  residual : float;        (** max |f(x) − x| at the final iterate *)
  converged : bool;        (** whether [residual ≤ tol] *)
  newton_steps : int;      (** accepted Newton steps *)
  fallback_steps : int;    (** damped Picard fallback steps *)
}

val solve :
  ?telemetry:Telemetry.Registry.t ->
  ?damping:float -> ?tol:float -> ?max_iter:int ->
  ?lo:float -> ?hi:float ->
  step:(float array -> float array -> float array option) ->
  (float array -> float array) -> float array -> outcome
(** [solve ~step f x0] iterates from [x0] until the max-norm defect
    [|f x − x|] falls below [tol] (default 1e-12) or [max_iter]
    iterations (default 10_000) are spent.

    [step x defect] must return [Some delta] solving
    [(I − J(x))·delta = defect] where [J] is the Jacobian of [f] at [x]
    — i.e. the Newton update for the defect — or [None] when the system
    is singular or the caller cannot form it; [None], a non-finite
    [delta], and a candidate that fails to strictly reduce the defect all
    fall back to one damped Picard sweep (damping default 0.5, in
    (0, 1]).  Iterates are clamped componentwise into [\[lo, hi\]]
    (defaults: unbounded).  [f] must preserve the vector length; the
    input vector is not mutated.  A non-finite defect terminates the
    solve as non-converged.

    Every solve runs inside a ["newton.solve"] telemetry span, bumps the
    ["solver.newton.steps"] / ["solver.newton.fallbacks"] counters, and
    emits a ["solver_convergence"] event (method ["newton"]). *)

val dense_step :
  jacobian:(float array -> float array array) ->
  float array -> float array -> float array option
(** [dense_step ~jacobian] is a generic [step] for {!solve}: it forms the
    dense system [(I − J(x))·delta = defect] and solves it by Gaussian
    elimination.  O(n³) — intended for small systems and for testing
    structured steps against; [None] on a singular or non-finite system. *)

val gauss_solve : float array array -> float array -> float array option
(** [gauss_solve a b] solves [a·x = b] in place (clobbering both
    arguments) by Gaussian elimination with partial pivoting.  [None] if
    a pivot vanishes to working precision or the result is non-finite. *)
