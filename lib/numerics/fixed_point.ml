type outcome = {
  value : float array;
  iterations : int;
  residual : float;
  converged : bool;
}

(* Residual trajectories can be as long as max_iter (50k for the class
   solver); cap what one event carries so a diverging solve cannot emit a
   megabyte line. *)
let trajectory_cap = 512

(* Flight-recorder names, interned once (intern takes a lock). *)
let recorder = Telemetry.Recorder.default
let nid_phase = Telemetry.Recorder.intern recorder "fixed_point.phase"
let nid_converged = Telemetry.Recorder.intern recorder "fixed_point.converged"

let solve ?(telemetry = Telemetry.Registry.default) ?(damping = 0.5)
    ?(tol = 1e-12) ?(max_iter = 10_000) f x0 =
  if damping <= 0. || damping > 1. then
    invalid_arg "Fixed_point.solve: damping must be in (0, 1]";
  let n = Array.length x0 in
  let x = Array.copy x0 in
  (* Only pay for the per-iteration trajectory when someone is listening. *)
  let trajectory =
    if Telemetry.Registry.active telemetry then Some (ref []) else None
  in
  let kept = ref 0 in
  let note r =
    match trajectory with
    | Some l when !kept < trajectory_cap ->
        incr kept;
        l := r :: !l
    | _ -> ()
  in
  Telemetry.Span.with_span ~registry:telemetry "fixed_point.solve" (fun () ->
      let rec go iter =
        let fx = f x in
        if Array.length fx <> n then
          invalid_arg "Fixed_point.solve: map changed vector length";
        let residual = ref 0. in
        for i = 0 to n - 1 do
          let x' = ((1. -. damping) *. x.(i)) +. (damping *. fx.(i)) in
          let delta = Float.abs (x' -. x.(i)) in
          if delta > !residual then residual := delta;
          x.(i) <- x'
        done;
        note !residual;
        (* Sparse progress marks: every power-of-two iteration, carrying
           the residual's binary exponent so a stalled solve is visible
           in a trace without per-iteration cost. *)
        if iter land (iter - 1) = 0 then
          Telemetry.Recorder.instant recorder nid_phase iter
            (snd (Float.frexp !residual));
        if !residual <= tol then
          { value = x; iterations = iter; residual = !residual; converged = true }
        else if iter >= max_iter then
          { value = x; iterations = iter; residual = !residual; converged = false }
        else go (iter + 1)
      in
      let outcome = go 1 in
      Telemetry.Recorder.instant recorder nid_converged outcome.iterations n;
      Telemetry.Metric.incr
        (Telemetry.Registry.counter telemetry "fixed_point.solves");
      Telemetry.Metric.observe
        (Telemetry.Registry.histogram telemetry "fixed_point.iterations")
        (float_of_int outcome.iterations);
      Telemetry.Registry.emit telemetry "solver_convergence" (fun () ->
          [
            ("method", Telemetry.Jsonx.String "picard");
            ("n", Telemetry.Jsonx.Int n);
            ("damping", Telemetry.Jsonx.Float damping);
            ("tol", Telemetry.Jsonx.Float tol);
            ("iterations", Telemetry.Jsonx.Int outcome.iterations);
            ("residual", Telemetry.Jsonx.Float outcome.residual);
            ("converged", Telemetry.Jsonx.Bool outcome.converged);
          ]);
      (match trajectory with
      | Some l ->
          Telemetry.Registry.emit telemetry "residual_trajectory" (fun () ->
              [
                ("n", Telemetry.Jsonx.Int n);
                ( "residuals",
                  Telemetry.Jsonx.List
                    (List.rev_map (fun r -> Telemetry.Jsonx.Float r) !l) );
                ( "truncated",
                  Telemetry.Jsonx.Bool (outcome.iterations > trajectory_cap) );
              ])
      | None -> ());
      outcome)

let solve_scalar ?damping ?tol ?max_iter f x0 =
  let outcome = solve ?damping ?tol ?max_iter (fun x -> [| f x.(0) |]) [| x0 |] in
  outcome.value.(0)
