type outcome = {
  value : float array;
  iterations : int;
  residual : float;
  converged : bool;
}

(* Residual trajectories can be as long as max_iter (50k for the class
   solver); cap what one event carries so a diverging solve cannot emit a
   megabyte line. *)
let trajectory_cap = 512

(* Flight-recorder names, interned once (intern takes a lock). *)
let recorder = Telemetry.Recorder.default
let nid_phase = Telemetry.Recorder.intern recorder "fixed_point.phase"
let nid_converged = Telemetry.Recorder.intern recorder "fixed_point.converged"

let solve ?(telemetry = Telemetry.Registry.default) ?(damping = 0.5)
    ?(tol = 1e-12) ?(max_iter = 10_000) f x0 =
  if damping <= 0. || damping > 1. then
    invalid_arg "Fixed_point.solve: damping must be in (0, 1]";
  let n = Array.length x0 in
  let x = Array.copy x0 in
  (* Only pay for the per-iteration trajectory when someone is listening. *)
  let trajectory =
    if Telemetry.Registry.active telemetry then Some (ref []) else None
  in
  let kept = ref 0 in
  let note r =
    match trajectory with
    | Some l when !kept < trajectory_cap ->
        incr kept;
        l := r :: !l
    | _ -> ()
  in
  Telemetry.Span.with_span ~registry:telemetry "fixed_point.solve" (fun () ->
      let rec go iter =
        let fx = f x in
        if Array.length fx <> n then
          invalid_arg "Fixed_point.solve: map changed vector length";
        (* Convergence is judged on the undamped defect |f(x) − x|: the
           damped update is damping·defect, so testing the step size would
           silently loosen the tolerance by 1/damping (2× at the default).
           The max is NaN-propagating so a map that goes non-finite ends
           as a non-converged outcome, never a spurious success. *)
        let residual = ref 0. in
        for i = 0 to n - 1 do
          let delta = Float.abs (fx.(i) -. x.(i)) in
          if not (delta <= !residual) then residual := delta
        done;
        note !residual;
        (* Sparse progress marks: every power-of-two iteration, carrying
           the residual's binary exponent so a stalled solve is visible
           in a trace without per-iteration cost. *)
        if iter land (iter - 1) = 0 then
          Telemetry.Recorder.instant recorder nid_phase iter
            (snd (Float.frexp !residual));
        if !residual <= tol then
          { value = x; iterations = iter; residual = !residual; converged = true }
        else if iter >= max_iter || not (Float.is_finite !residual) then
          { value = x; iterations = iter; residual = !residual; converged = false }
        else begin
          for i = 0 to n - 1 do
            x.(i) <- ((1. -. damping) *. x.(i)) +. (damping *. fx.(i))
          done;
          go (iter + 1)
        end
      in
      let outcome = go 1 in
      Telemetry.Recorder.instant recorder nid_converged outcome.iterations n;
      Telemetry.Metric.incr
        (Telemetry.Registry.counter telemetry "fixed_point.solves");
      Telemetry.Metric.observe
        (Telemetry.Registry.histogram telemetry "fixed_point.iterations")
        (float_of_int outcome.iterations);
      Telemetry.Registry.emit telemetry "solver_convergence" (fun () ->
          [
            ("method", Telemetry.Jsonx.String "picard");
            ("n", Telemetry.Jsonx.Int n);
            ("damping", Telemetry.Jsonx.Float damping);
            ("tol", Telemetry.Jsonx.Float tol);
            ("iterations", Telemetry.Jsonx.Int outcome.iterations);
            ("residual", Telemetry.Jsonx.Float outcome.residual);
            ("converged", Telemetry.Jsonx.Bool outcome.converged);
          ]);
      (match trajectory with
      | Some l ->
          Telemetry.Registry.emit telemetry "residual_trajectory" (fun () ->
              [
                ("n", Telemetry.Jsonx.Int n);
                ( "residuals",
                  Telemetry.Jsonx.List
                    (List.rev_map (fun r -> Telemetry.Jsonx.Float r) !l) );
                ( "truncated",
                  Telemetry.Jsonx.Bool (outcome.iterations > trajectory_cap) );
              ])
      | None -> ());
      outcome)

let solve_scalar ?damping ?tol ?max_iter f x0 =
  let outcome = solve ?damping ?tol ?max_iter (fun x -> [| f x.(0) |]) [| x0 |] in
  outcome.value.(0)
