(* Abramowitz & Stegun 7.1.26. *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let y =
    1.
    -. ((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t
        -. 0.284496736)
        *. t
       +. 0.254829592)
       *. t
       *. exp (-.(x *. x))
  in
  sign *. y

let normal_cdf ?(mean = 0.) ?(stddev = 1.) x =
  if stddev <= 0. then invalid_arg "Special.normal_cdf: stddev must be positive";
  0.5 *. (1. +. erf ((x -. mean) /. (stddev *. sqrt 2.)))

(* Acklam's inverse-normal approximation plus a Halley refinement step. *)
let normal_quantile p =
  if p <= 0. || p >= 1. then
    invalid_arg "Special.normal_quantile: p must be in (0, 1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2. *. log p) in
      (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
      *. q
      +. c.(5)
      |> fun num ->
      num
      /. ((((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q) +. d.(3)) *. q +. 1.)
    end
    else if p <= 1. -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
       *. r
      +. a.(5))
      *. q
      /. ((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
          *. r
         +. 1.)
    end
    else begin
      let q = sqrt (-2. *. log (1. -. p)) in
      -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
         *. q
        +. c.(5))
      /. ((((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q) +. d.(3)) *. q +. 1.)
    end
  in
  (* One Halley step against the accurate CDF. *)
  let e = normal_cdf x -. p in
  let u = e *. sqrt (2. *. Float.pi) *. exp (x *. x /. 2.) in
  x -. (u /. (1. +. (x *. u /. 2.)))

(* Student-t inverse CDF.  Exact closed forms for 1 and 2 degrees of
   freedom; the Cornish–Fisher expansion around the normal quantile
   otherwise (Hill 1970), whose error shrinks like df⁻⁵ — ~1e-3 absolute
   at df = 3 and well below measurement noise at the replicate counts the
   conformance bands use it for. *)
let student_t_quantile ~df p =
  if df < 1 then invalid_arg "Special.student_t_quantile: df must be >= 1";
  if p <= 0. || p >= 1. then
    invalid_arg "Special.student_t_quantile: p must be in (0, 1)";
  match df with
  | 1 -> tan (Float.pi *. (p -. 0.5))
  | 2 -> (2. *. p -. 1.) /. sqrt (2. *. p *. (1. -. p))
  | _ ->
      let z = normal_quantile p in
      let z2 = z *. z in
      let z3 = z2 *. z and z4 = z2 *. z2 in
      let z5 = z4 *. z in
      let z7 = z5 *. z2 in
      let z9 = z7 *. z2 in
      let g1 = (z3 +. z) /. 4. in
      let g2 = ((5. *. z5) +. (16. *. z3) +. (3. *. z)) /. 96. in
      let g3 =
        ((3. *. z7) +. (19. *. z5) +. (17. *. z3) -. (15. *. z)) /. 384.
      in
      let g4 =
        ((79. *. z9) +. (776. *. z7) +. (1482. *. z5) -. (1920. *. z3)
        -. (945. *. z))
        /. 92160.
      in
      let nu = float_of_int df in
      z
      +. (g1 /. nu)
      +. (g2 /. (nu *. nu))
      +. (g3 /. (nu *. nu *. nu))
      +. (g4 /. (nu *. nu *. nu *. nu))
