(** Special functions needed by the detection analysis. *)

val erf : float -> float
(** Error function, by the Abramowitz & Stegun 7.1.26 rational
    approximation (absolute error < 1.5e-7 — ample for detection-rate
    work). *)

val normal_cdf : ?mean:float -> ?stddev:float -> float -> float
(** Φ((x − mean)/stddev).  [stddev] must be positive (default 1,
    mean default 0). *)

val normal_quantile : float -> float
(** Inverse of the standard normal CDF on (0, 1), by Acklam's rational
    approximation refined with one Halley step (relative error < 1e-9).
    @raise Invalid_argument outside (0, 1). *)

val student_t_quantile : df:int -> float -> float
(** Inverse of the Student-t CDF with [df ≥ 1] degrees of freedom on
    (0, 1): exact closed forms for df = 1, 2, the Cornish–Fisher expansion
    of {!normal_quantile} (Hill 1970) otherwise — absolute error ≲ 1e-3 at
    df = 3, vanishing as df grows.  This is what turns a Welford
    mean/stddev over R simulation replicates into a small-sample
    confidence band (df = R − 1) in the conformance checks.
    @raise Invalid_argument on df < 1 or p outside (0, 1). *)
