type outcome = {
  value : float array;
  iterations : int;
  residual : float;
  converged : bool;
  newton_steps : int;
  fallback_steps : int;
}

(* Dense Gaussian elimination with partial pivoting, solving A x = b in
   place (both arguments are clobbered).  Returns [None] when a pivot
   vanishes (singular to working precision) or the input carries a
   non-finite entry, so callers can fall back rather than propagate NaNs. *)
let gauss_solve a b =
  let n = Array.length b in
  if Array.length a <> n then invalid_arg "Newton.gauss_solve: shape mismatch";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Newton.gauss_solve: shape mismatch")
    a;
  let ok = ref true in
  (try
     for k = 0 to n - 1 do
       (* Partial pivot: the largest magnitude in column k at/below row k. *)
       let pivot = ref k in
       for i = k + 1 to n - 1 do
         if Float.abs a.(i).(k) > Float.abs a.(!pivot).(k) then pivot := i
       done;
       if !pivot <> k then begin
         let tmp = a.(k) in
         a.(k) <- a.(!pivot);
         a.(!pivot) <- tmp;
         let tb = b.(k) in
         b.(k) <- b.(!pivot);
         b.(!pivot) <- tb
       end;
       let akk = a.(k).(k) in
       if (not (Float.is_finite akk)) || Float.abs akk < 1e-300 then begin
         ok := false;
         raise Exit
       end;
       for i = k + 1 to n - 1 do
         let factor = a.(i).(k) /. akk in
         if factor <> 0. then begin
           a.(i).(k) <- 0.;
           for j = k + 1 to n - 1 do
             a.(i).(j) <- a.(i).(j) -. (factor *. a.(k).(j))
           done;
           b.(i) <- b.(i) -. (factor *. b.(k))
         end
       done
     done
   with Exit -> ());
  if not !ok then None
  else begin
    let x = Array.make n 0. in
    for i = n - 1 downto 0 do
      let s = ref b.(i) in
      for j = i + 1 to n - 1 do
        s := !s -. (a.(i).(j) *. x.(j))
      done;
      x.(i) <- !s /. a.(i).(i)
    done;
    if Array.for_all Float.is_finite x then Some x else None
  end

let dense_step ~jacobian x defect =
  let n = Array.length x in
  let j = jacobian x in
  if Array.length j <> n then None
  else begin
    (* A = I − J, so that A·δ = f(x) − x is the Newton system of the
       defect h(x) = f(x) − x (whose Jacobian is J − I; the sign is folded
       into the right-hand side). *)
    let a =
      Array.init n (fun r ->
          Array.init n (fun c -> (if r = c then 1. else 0.) -. j.(r).(c)))
    in
    gauss_solve a (Array.copy defect)
  end

let solve ?(telemetry = Telemetry.Registry.default) ?(damping = 0.5)
    ?(tol = 1e-12) ?(max_iter = 10_000) ?(lo = neg_infinity) ?(hi = infinity)
    ~step f x0 =
  if damping <= 0. || damping > 1. then
    invalid_arg "Newton.solve: damping must be in (0, 1]";
  let n = Array.length x0 in
  let x = Array.copy x0 in
  let newton_steps = ref 0 in
  let fallback_steps = ref 0 in
  (* Two defect buffers swapped between iterations and one candidate
     buffer, all preallocated: the solve allocates nothing per iteration
     beyond what the map and step closures themselves build. *)
  let d_cur = ref (Array.make n 0.) in
  let d_spare = ref (Array.make n 0.) in
  let candidate = Array.make n 0. in
  let defect_into d x fx =
    let worst = ref 0. in
    for i = 0 to n - 1 do
      d.(i) <- fx.(i) -. x.(i);
      let m = Float.abs d.(i) in
      if not (m <= !worst) then worst := m (* NaN-propagating max *)
    done;
    !worst
  in
  let eval y =
    let fy = f y in
    if Array.length fy <> n then
      invalid_arg "Newton.solve: map changed vector length";
    fy
  in
  let clamp v = Float.min hi (Float.max lo v) in
  Telemetry.Span.with_span ~registry:telemetry "newton.solve" (fun () ->
      (* [known] carries the residual already computed for [fx] when the
         caller left the matching defect in [d_cur] — the accept test
         below evaluates the candidate's defect anyway, so an accepted
         step hands it to the next iteration instead of recomputing the
         identical pair. *)
      let rec go iter fx known =
        let defect = !d_cur in
        let residual =
          match known with Some r -> r | None -> defect_into defect x fx
        in
        if residual <= tol then
          {
            value = x;
            iterations = iter;
            residual;
            converged = true;
            newton_steps = !newton_steps;
            fallback_steps = !fallback_steps;
          }
        else if iter >= max_iter || not (Float.is_finite residual) then
          {
            value = x;
            iterations = iter;
            residual;
            converged = false;
            newton_steps = !newton_steps;
            fallback_steps = !fallback_steps;
          }
        else begin
          let fallback () =
            (* One damped Picard sweep: always available, always finite on
               a finite map, and exactly the legacy iteration — so a solve
               whose every Newton step is refused degrades to the damped
               fixed-point iteration rather than failing. *)
            incr fallback_steps;
            for i = 0 to n - 1 do
              x.(i) <- clamp (x.(i) +. (damping *. defect.(i)))
            done;
            go (iter + 1) (eval x) None
          in
          match step x defect with
          | None -> fallback ()
          | Some delta when
              Array.length delta <> n
              || not (Array.for_all Float.is_finite delta) ->
              fallback ()
          | Some delta ->
              for i = 0 to n - 1 do
                candidate.(i) <- clamp (x.(i) +. delta.(i))
              done;
              let fc = eval candidate in
              let candidate_residual = defect_into !d_spare candidate fc in
              (* Accept only strictly-contracting steps; anything else —
                 overshoot, NaN, a stall at round-off — falls back to the
                 damped iteration, which keeps global convergence exactly
                 where the Picard solver had it. *)
              if
                Float.is_finite candidate_residual
                && candidate_residual < residual
              then begin
                incr newton_steps;
                Array.blit candidate 0 x 0 n;
                let freed = !d_cur in
                d_cur := !d_spare;
                d_spare := freed;
                go (iter + 1) fc (Some candidate_residual)
              end
              else fallback ()
        end
      in
      let outcome = go 0 (eval x) None in
      Telemetry.Metric.incr
        (Telemetry.Registry.counter telemetry "newton.solves");
      Telemetry.Metric.add
        (Telemetry.Registry.counter telemetry "solver.newton.steps")
        outcome.newton_steps;
      Telemetry.Metric.add
        (Telemetry.Registry.counter telemetry "solver.newton.fallbacks")
        outcome.fallback_steps;
      Telemetry.Registry.emit telemetry "solver_convergence" (fun () ->
          [
            ("method", Telemetry.Jsonx.String "newton");
            ("n", Telemetry.Jsonx.Int n);
            ("tol", Telemetry.Jsonx.Float tol);
            ("iterations", Telemetry.Jsonx.Int outcome.iterations);
            ("newton_steps", Telemetry.Jsonx.Int outcome.newton_steps);
            ("fallback_steps", Telemetry.Jsonx.Int outcome.fallback_steps);
            ("residual", Telemetry.Jsonx.Float outcome.residual);
            ("converged", Telemetry.Jsonx.Bool outcome.converged);
          ]);
      outcome)
