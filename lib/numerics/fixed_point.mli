(** Damped fixed-point iteration on float vectors.

    The heterogeneous Bianchi model couples 2n unknowns (τ_1…τ_n, p_1…p_n)
    through a contraction-like map; damped Picard iteration converges
    reliably for all parameter ranges the experiments use. *)

type outcome = {
  value : float array;  (** the (approximate) fixed point *)
  iterations : int;     (** map evaluations actually performed *)
  residual : float;     (** max |f(x) − x| at the final iterate *)
  converged : bool;     (** whether [residual ≤ tol] *)
}

val solve :
  ?telemetry:Telemetry.Registry.t ->
  ?damping:float -> ?tol:float -> ?max_iter:int ->
  (float array -> float array) -> float array -> outcome
(** [solve f x0] iterates [x ← (1−λ)·x + λ·f x] from [x0] until the
    max-norm {e undamped defect} [|f x − x|] falls below [tol] (default
    1e-12) or [max_iter] map evaluations (default 10_000) are spent.
    Convergence is judged on the defect, not the damped step — the step is
    only [λ·defect], so testing it would loosen the effective tolerance by
    [1/λ] (2× at the default).  On convergence the returned [value] is the
    iterate at which the defect was measured, with no trailing damped step
    applied.  A non-finite defect terminates the solve as non-converged.
    [damping] λ defaults to 0.5 and must be in (0, 1].  [f] must preserve
    the vector length.

    The input vector is not mutated.

    Every solve runs inside a ["fixed_point.solve"] telemetry span and
    emits a ["solver_convergence"] event on [telemetry] (default: the
    global registry) recording iterations, the final residual, damping and
    convergence.  When a sink is attached, a ["residual_trajectory"] event
    carries the per-iteration residuals (capped at 512 entries); with no
    sink, the trajectory is never materialised. *)

val solve_scalar :
  ?damping:float -> ?tol:float -> ?max_iter:int ->
  (float -> float) -> float -> float
(** Scalar convenience wrapper; returns the fixed point value. *)
