type t = {
  tau_hat : float;
  p_hat : float;
  payoff_rate : float;
  throughput : float;
  slot_time : float;
}
