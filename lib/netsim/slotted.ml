type config = {
  params : Dcf.Params.t;
  cws : int array;
  duration : float;
  seed : int;
}

type node_stats = {
  attempts : int;
  successes : int;
  collisions : int;
  drops : int;
  tau_hat : float;
  p_hat : float;
  payoff_rate : float;
  throughput : float;
}

type airtime = {
  idle_fraction : float;
  success_fraction : float;
  collision_fraction : float;
  error_fraction : float;
}

type result = {
  time : float;
  slots : int;
  per_node : node_stats array;
  total_throughput : float;
  welfare_rate : float;
  airtime : airtime;
}

type node_state = {
  id : int;
  window : int;
  mutable stage : int;
  mutable counter : int;
  mutable defer : int;
      (* remaining AIFS slots: consumed before the backoff counter after
         every busy period; permanently 0 on the degenerate subspace *)
  mutable retries : int;
  mutable attempts : int;
  mutable success_accesses : int;
  mutable successes : int;  (* frames delivered: txop per winning access *)
  mutable frames : int;     (* frames put on air (the energy-cost basis) *)
  mutable drops : int;
  rng : Prelude.Rng.t;
}

let draw_backoff node =
  Prelude.Rng.int node.rng (node.window lsl node.stage)

let run ?(telemetry = Telemetry.Registry.default) ?(bianchi_ticks = false)
    ?(retry_limit = max_int) ?(per = 0.) ?trace ?strategies
    { params; cws; duration; seed } =
  if retry_limit < 0 then invalid_arg "Slotted.run: retry_limit must be >= 0";
  if per < 0. || per >= 1. then invalid_arg "Slotted.run: per must be in [0, 1)";
  let n = Array.length cws in
  if n = 0 then invalid_arg "Slotted.run: empty network";
  if duration <= 0. then invalid_arg "Slotted.run: duration must be positive";
  Array.iter
    (fun w -> if w < 1 then invalid_arg "Slotted.run: window must be >= 1")
    cws;
  let m = params.max_backoff_stage in
  let timing = Dcf.Timing.of_params params in
  (* Per-node strategy knobs and channel occupancies.  Without strategies
     (or with degenerate ones) every array holds the CW-only values, and
     the loop below executes the exact same float/RNG operation sequence
     as the pre-strategy simulator — the degenerate bit-identity the
     conformance suite asserts. *)
  (match strategies with
  | None -> ()
  | Some ss ->
      if Array.length ss <> n then
        invalid_arg "Slotted.run: strategies length mismatch";
      Array.iteri
        (fun i (s : Dcf.Strategy_space.t) ->
          (match Dcf.Strategy_space.validate s with
          | Ok () -> ()
          | Error e -> invalid_arg ("Slotted.run: " ^ e));
          if s.cw <> cws.(i) then
            invalid_arg "Slotted.run: strategies disagree with cws")
        ss);
  let strat i =
    match strategies with
    | Some ss -> ss.(i)
    | None -> Dcf.Strategy_space.of_cw cws.(i)
  in
  let aifs = Array.init n (fun i -> (strat i).Dcf.Strategy_space.aifs) in
  let has_aifs = Array.exists (fun a -> a > 0) aifs in
  let txop =
    Array.init n (fun i -> (strat i).Dcf.Strategy_space.txop_frames)
  in
  let times =
    Array.init n (fun i -> Dcf.Strategy_space.times params ~base:timing (strat i))
  in
  let sts = Array.map (fun (t : Dcf.Strategy_space.times) -> t.ts) times in
  let sts1 = Array.map (fun (t : Dcf.Strategy_space.times) -> t.ts1) times in
  let stc = Array.map (fun (t : Dcf.Strategy_space.times) -> t.tc) times in
  let spayload =
    Array.map (fun (t : Dcf.Strategy_space.times) -> t.payload) times
  in
  let master = Prelude.Rng.create seed in
  let emit event =
    match trace with None -> () | Some t -> Trace.record t event
  in
  let nodes =
    Array.mapi
      (fun id window ->
        let node =
          {
            id;
            window;
            stage = 0;
            counter = 0;
            defer = aifs.(id);
            retries = 0;
            attempts = 0;
            success_accesses = 0;
            successes = 0;
            frames = 0;
            drops = 0;
            rng = Prelude.Rng.split master;
          }
        in
        node.counter <- draw_backoff node;
        node)
      cws
  in
  let time = ref 0. in
  let slots = ref 0 in
  (* Channel-airtime accounting, updated incrementally as the simulation
     advances so the run summary costs nothing extra at the end. *)
  let idle_airtime = ref 0. in
  let success_airtime = ref 0. in
  let collision_airtime = ref 0. in
  let error_airtime = ref 0. in
  (* Per virtual slot: skip ahead by the smallest counter (idle slots), then
     resolve the transmission slot. *)
  while !time < duration do
    (* Every defer is permanently 0 on the degenerate subspace, so the
       per-slot defer bookkeeping is gated behind [has_aifs] and the hot
       loop keeps the CW-only shape. *)
    let idle =
      if has_aifs then
        Array.fold_left
          (fun acc nd -> Stdlib.min acc (nd.defer + nd.counter))
          max_int nodes
      else
        Array.fold_left
          (fun acc nd -> Stdlib.min acc nd.counter)
          max_int nodes
    in
    if idle > 0 then begin
      let dt = float_of_int idle *. params.sigma in
      time := !time +. dt;
      idle_airtime := !idle_airtime +. dt;
      slots := !slots + idle;
      if has_aifs then
        Array.iter
          (fun nd ->
            (* AIFS defer slots are consumed before backoff slots. *)
            let d = if nd.defer < idle then nd.defer else idle in
            nd.defer <- nd.defer - d;
            nd.counter <- nd.counter - (idle - d))
          nodes
      else Array.iter (fun nd -> nd.counter <- nd.counter - idle) nodes
    end;
    if !time < duration then begin
      let transmitters =
        if has_aifs then
          Array.to_list nodes
          |> List.filter (fun nd -> nd.defer = 0 && nd.counter = 0)
        else Array.to_list nodes |> List.filter (fun nd -> nd.counter = 0)
      in
      incr slots;
      (match transmitters with
      | [] -> assert false
      | [ winner ] when per > 0. && Prelude.Rng.bernoulli winner.rng per ->
          (* Channel error: the lone winner's first frame went out in full
             but arrived corrupted, so the channel is held for one whole
             frame time — not the collision time Tc, which models
             truncated overlapping frames.  The missing ACK aborts any
             TXOP continuation, so the burst never happens. *)
          winner.attempts <- winner.attempts + 1;
          winner.frames <- winner.frames + 1;
          winner.retries <- winner.retries + 1;
          if winner.retries > retry_limit then begin
            winner.drops <- winner.drops + 1;
            winner.retries <- 0;
            winner.stage <- 0;
            emit (Trace.Drop { time = !time; node = winner.id })
          end
          else winner.stage <- Stdlib.min (winner.stage + 1) m;
          time := !time +. sts1.(winner.id);
          error_airtime := !error_airtime +. sts1.(winner.id);
          emit (Trace.Channel_error { time = !time; node = winner.id })
      | [ winner ] ->
          winner.attempts <- winner.attempts + 1;
          winner.success_accesses <- winner.success_accesses + 1;
          winner.successes <- winner.successes + txop.(winner.id);
          winner.frames <- winner.frames + txop.(winner.id);
          winner.stage <- 0;
          winner.retries <- 0;
          time := !time +. sts.(winner.id);
          success_airtime := !success_airtime +. sts.(winner.id);
          emit (Trace.Success { time = !time; node = winner.id })
      | colliders ->
          List.iter
            (fun nd ->
              nd.attempts <- nd.attempts + 1;
              nd.frames <- nd.frames + 1;
              nd.retries <- nd.retries + 1;
              if nd.retries > retry_limit then begin
                (* Discard the head-of-line packet; the saturated queue
                   offers the next one at a fresh backoff stage. *)
                nd.drops <- nd.drops + 1;
                nd.retries <- 0;
                nd.stage <- 0;
                emit (Trace.Drop { time = !time; node = nd.id })
              end
              else nd.stage <- Stdlib.min (nd.stage + 1) m)
            colliders;
          (* Overlapping frames hold the channel for the longest collider's
             Tc (equal to the common Tc on the degenerate subspace). *)
          let tc_busy =
            List.fold_left
              (fun acc nd -> Float.max acc stc.(nd.id))
              0. colliders
          in
          time := !time +. tc_busy;
          collision_airtime := !collision_airtime +. tc_busy;
          emit
            (Trace.Collision
               { time = !time; nodes = List.map (fun nd -> nd.id) colliders }));
      if bianchi_ticks then
        (* Markov-chain convention: the busy virtual slot also ticks the
           frozen stations' counters (transmitters are at 0 and resample
           below; their fresh counter first ticks in the next slot).  The
           chain has no AIFS state, so the tick applies to backoff
           counters only. *)
        Array.iter
          (fun nd -> if nd.counter > 0 then nd.counter <- nd.counter - 1)
          nodes;
      List.iter (fun nd -> nd.counter <- draw_backoff nd) transmitters;
      (* Every node heard the busy period and defers AIFS slots before
         resuming its countdown; a no-op on the degenerate subspace. *)
      Array.iter
        (fun nd -> if aifs.(nd.id) > 0 then nd.defer <- aifs.(nd.id))
        nodes
    end
  done;
  let elapsed = !time in
  let per_node =
    Array.map
      (fun nd ->
        let attempts = nd.attempts and successes = nd.successes in
        let collisions = attempts - nd.success_accesses in
        {
          attempts;
          successes;
          collisions;
          drops = nd.drops;
          tau_hat = float_of_int attempts /. float_of_int !slots;
          p_hat =
            (if attempts = 0 then 0.
             else float_of_int collisions /. float_of_int attempts);
          payoff_rate =
            ((float_of_int successes *. params.gain)
            -. (float_of_int nd.frames *. params.cost))
            /. elapsed;
          throughput =
            float_of_int successes *. spayload.(nd.id) /. elapsed;
        })
      nodes
  in
  let airtime =
    {
      idle_fraction = !idle_airtime /. elapsed;
      success_fraction = !success_airtime /. elapsed;
      collision_fraction = !collision_airtime /. elapsed;
      error_fraction = !error_airtime /. elapsed;
    }
  in
  let result =
    {
      time = elapsed;
      slots = !slots;
      per_node;
      total_throughput =
        Array.fold_left (fun acc s -> acc +. s.throughput) 0. per_node;
      welfare_rate =
        Array.fold_left (fun acc s -> acc +. s.payoff_rate) 0. per_node;
      airtime;
    }
  in
  Telemetry.Metric.incr
    (Telemetry.Registry.counter telemetry "netsim.slotted.runs");
  Telemetry.Metric.observe
    (Telemetry.Registry.histogram telemetry "netsim.slotted.slots")
    (float_of_int !slots);
  Telemetry.Registry.emit telemetry "run_summary" (fun () ->
      let total_successes =
        Array.fold_left (fun acc (s : node_stats) -> acc + s.successes) 0
          per_node
      in
      let share (s : node_stats) =
        if total_successes = 0 then 0.
        else float_of_int s.successes /. float_of_int total_successes
      in
      [
        ("sim", Telemetry.Jsonx.String "slotted");
        ("n", Telemetry.Jsonx.Int n);
        ("seed", Telemetry.Jsonx.Int seed);
        ("time", Telemetry.Jsonx.Float elapsed);
        ("slots", Telemetry.Jsonx.Int !slots);
        ("idle_fraction", Telemetry.Jsonx.Float airtime.idle_fraction);
        ("success_fraction", Telemetry.Jsonx.Float airtime.success_fraction);
        ( "collision_fraction",
          Telemetry.Jsonx.Float airtime.collision_fraction );
        ("error_fraction", Telemetry.Jsonx.Float airtime.error_fraction);
        ("throughput", Telemetry.Jsonx.Float result.total_throughput);
        ("welfare_rate", Telemetry.Jsonx.Float result.welfare_rate);
        ( "jain_fairness",
          Telemetry.Jsonx.Float
            (Prelude.Stats.jain_fairness
               (Array.map (fun s -> s.throughput) per_node)) );
        ( "success_share",
          Telemetry.Jsonx.List
            (Array.to_list
               (Array.map (fun s -> Telemetry.Jsonx.Float (share s)) per_node))
        );
      ]);
  result

let estimates ?telemetry ?strategies config =
  let result = run ?telemetry ?strategies config in
  let slot_time =
    if result.slots = 0 then config.params.sigma
    else result.time /. float_of_int result.slots
  in
  Array.map
    (fun s ->
      {
        Estimate.tau_hat = s.tau_hat;
        p_hat = s.p_hat;
        payoff_rate = s.payoff_rate;
        throughput = s.throughput;
        slot_time;
      })
    result.per_node

let payoff_oracle ~params ~n ~duration ~seed w =
  let result =
    run { params; cws = Array.make n w; duration; seed = seed + (w * 7919) }
  in
  result.per_node.(0).payoff_rate
