type config = {
  params : Dcf.Params.t;
  adjacency : int list array;
  cws : int array;
  duration : float;
  seed : int;
}

type node_stats = {
  attempts : int;
  successes : int;
  drops : int;
  local_collisions : int;
  hidden_failures : int;
  payoff_rate : float;
  throughput : float;
  p_hn_hat : float;
}

type airtime = {
  busy_fraction : float;
  idle_fraction : float;
  success_fraction : float;
  collision_fraction : float;
}

type result = {
  time : float;
  per_node : node_stats array;
  welfare_rate : float;
  delivered : int;
  airtime : airtime;
}

type node = {
  id : int;
  window : int;
  neighbors : int array;      (** decode (transmission) range *)
  neighbor_set : bool array;  (** dense membership test *)
  cs_neighbors : int array;   (** carrier-sense range (superset) *)
  cs_set : bool array;
  rng : Prelude.Rng.t;
  mutable stage : int;
  mutable counter : int;
  mutable retries : int;
  mutable busy_until : int;   (** own transmission occupies the air *)
  mutable nav_until : int;
  mutable attempts : int;
  mutable successes : int;
  mutable drops : int;
  mutable local_collisions : int;
  mutable hidden_failures : int;
}

type tx = {
  src : int;
  dest : int;
  vuln_end : int;            (** end of the vulnerable window, in slots *)
  mutable resolved : bool;
  mutable finish : int;      (** src airtime ends (set at resolution) *)
  mutable corrupted_local : bool;
  mutable corrupted_hidden : bool;
}

let slots_of sigma t = Stdlib.max 1 (int_of_float (Float.round (t /. sigma)))

let run ?(telemetry = Telemetry.Registry.default) ?cs_adjacency
    ?(retry_limit = max_int) ?trace { params; adjacency; cws; duration; seed } =
  if retry_limit < 0 then invalid_arg "Spatial.run: retry_limit must be >= 0";
  let n = Array.length adjacency in
  let cs_adjacency = Option.value cs_adjacency ~default:adjacency in
  if Array.length cs_adjacency <> n then
    invalid_arg "Spatial.run: cs_adjacency length mismatch";
  if n = 0 then invalid_arg "Spatial.run: empty network";
  if Array.length cws <> n then invalid_arg "Spatial.run: cws length mismatch";
  if duration <= 0. then invalid_arg "Spatial.run: duration must be positive";
  Array.iter
    (fun w -> if w < 1 then invalid_arg "Spatial.run: window must be >= 1")
    cws;
  Array.iteri
    (fun i l ->
      List.iter
        (fun j ->
          if j < 0 || j >= n || j = i then
            invalid_arg "Spatial.run: bad neighbour";
          if not (List.mem i adjacency.(j)) then
            invalid_arg "Spatial.run: adjacency not symmetric")
        l)
    adjacency;
  Array.iteri
    (fun i l ->
      List.iter
        (fun j ->
          if j < 0 || j >= n || j = i then
            invalid_arg "Spatial.run: bad carrier-sense neighbour";
          if not (List.mem i cs_adjacency.(j)) then
            invalid_arg "Spatial.run: cs_adjacency not symmetric")
        l;
      List.iter
        (fun j ->
          if not (List.mem j l) then
            invalid_arg "Spatial.run: cs_adjacency must contain adjacency")
        adjacency.(i))
    cs_adjacency;
  let m = params.max_backoff_stage in
  let timing = Dcf.Timing.of_params params in
  let sigma = params.sigma in
  let ts_slots = slots_of sigma timing.ts in
  let tc_slots = slots_of sigma timing.tc in
  let vuln_slots =
    match params.mode with
    | Dcf.Params.Basic -> slots_of sigma (timing.header +. timing.payload)
    | Dcf.Params.Rts_cts ->
        slots_of sigma
          (float_of_int (params.rts_bits + params.phy_header_bits)
          /. params.bit_rate)
  in
  let horizon = int_of_float (Float.ceil (duration /. sigma)) in
  let master = Prelude.Rng.create seed in
  let nodes =
    Array.init n (fun i ->
        let neighbors = Array.of_list adjacency.(i) in
        let neighbor_set = Array.make n false in
        Array.iter (fun j -> neighbor_set.(j) <- true) neighbors;
        let cs_neighbors = Array.of_list cs_adjacency.(i) in
        let cs_set = Array.make n false in
        Array.iter (fun j -> cs_set.(j) <- true) cs_neighbors;
        let node =
          {
            id = i;
            window = cws.(i);
            neighbors;
            neighbor_set;
            cs_neighbors;
            cs_set;
            rng = Prelude.Rng.split master;
            stage = 0;
            counter = 0;
            retries = 0;
            busy_until = 0;
            nav_until = 0;
            attempts = 0;
            successes = 0;
            drops = 0;
            local_collisions = 0;
            hidden_failures = 0;
          }
        in
        node.counter <- Prelude.Rng.int node.rng node.window;
        node)
  in
  let active : tx list ref = ref [] in
  let delivered = ref 0 in
  (* Airtime accounting, all in slots.  [success]/[collision] aggregate
     per-transmission airtime (they can exceed the horizon under spatial
     reuse); [covered] is the union of transmission intervals, tracked
     incrementally — events arrive in time order, so extending a coverage
     watermark is exact. *)
  let success_tx_slots = ref 0 in
  let collision_tx_slots = ref 0 in
  let busy_slots = ref 0 in
  let covered_until = ref 0 in
  let cover a b =
    let from = Stdlib.max a !covered_until in
    if b > from then begin
      busy_slots := !busy_slots + (b - from);
      covered_until := b
    end
  in
  (* A node senses the channel idle when it is not transmitting, has no NAV,
     and no neighbour is transmitting. *)
  let senses_idle now node =
    node.busy_until <= now
    && node.nav_until <= now
    && not
         (Array.exists
            (fun j -> nodes.(j).busy_until > now)
            node.cs_neighbors)
  in
  let backoff_reset node =
    node.counter <- Prelude.Rng.int node.rng (node.window lsl node.stage)
  in
  let emit event =
    match trace with None -> () | Some t -> Trace.record t event
  in
  let resolve now tx =
    tx.resolved <- true;
    let src = nodes.(tx.src) in
    let corrupted = tx.corrupted_local || tx.corrupted_hidden in
    if corrupted then begin
      src.busy_until <- now - vuln_slots + tc_slots;
      tx.finish <- src.busy_until;
      collision_tx_slots := !collision_tx_slots + tc_slots;
      cover now tx.finish;
      if tx.corrupted_local then
        src.local_collisions <- src.local_collisions + 1
      else src.hidden_failures <- src.hidden_failures + 1;
      emit
        (Trace.Collision
           { time = float_of_int now *. sigma; nodes = [ tx.src ] });
      src.retries <- src.retries + 1;
      if src.retries > retry_limit then begin
        src.drops <- src.drops + 1;
        src.retries <- 0;
        src.stage <- 0;
        emit (Trace.Drop { time = float_of_int now *. sigma; node = tx.src })
      end
      else src.stage <- Stdlib.min (src.stage + 1) m
    end
    else begin
      let finish = now - vuln_slots + ts_slots in
      src.busy_until <- finish;
      tx.finish <- finish;
      src.successes <- src.successes + 1;
      incr delivered;
      success_tx_slots := !success_tx_slots + ts_slots;
      cover now finish;
      emit (Trace.Success { time = float_of_int now *. sigma; node = tx.src });
      src.stage <- 0;
      src.retries <- 0;
      (match params.mode with
      | Dcf.Params.Basic -> ()
      | Dcf.Params.Rts_cts ->
          (* The CTS (and the data exchange) silences both neighbourhoods
             until the ACK completes. *)
          emit
            (Trace.Cts
               {
                 time = float_of_int now *. sigma;
                 src = tx.dest;
                 dest = tx.src;
               });
          let dest = nodes.(tx.dest) in
          dest.busy_until <- Stdlib.max dest.busy_until finish;
          let silence j =
            if j <> tx.src then begin
              let nd = nodes.(j) in
              if finish > nd.nav_until then begin
                nd.nav_until <- finish;
                emit
                  (Trace.Nav_defer
                     {
                       time = float_of_int now *. sigma;
                       node = j;
                       until = float_of_int finish *. sigma;
                     })
              end
            end
          in
          Array.iter silence dest.neighbors;
          Array.iter silence src.neighbors)
    end;
    backoff_reset src
  in
  let start_transmission now node =
    if Array.length node.neighbors = 0 then
      (* Isolated node: nothing to send to; stay silent. *)
      backoff_reset node
    else begin
      let dest = Prelude.Rng.pick node.rng node.neighbors in
      node.attempts <- node.attempts + 1;
      node.busy_until <- now + vuln_slots (* extended at resolution *);
      cover now (now + vuln_slots);
      (match params.mode with
      | Dcf.Params.Basic -> ()
      | Dcf.Params.Rts_cts ->
          emit
            (Trace.Rts
               { time = float_of_int now *. sigma; src = node.id; dest }));
      let tx =
        {
          src = node.id;
          dest;
          vuln_end = now + vuln_slots;
          resolved = false;
          finish = now + vuln_slots;
          corrupted_local = false;
          corrupted_hidden = false;
        }
      in
      (* Eager corruption marking against every other airborne frame. *)
      let dest_node = nodes.(dest) in
      if dest_node.busy_until > now then
        (* Receiver itself is transmitting and will miss the frame; it is a
           neighbour, so this counts as a local loss. *)
        tx.corrupted_local <- true;
      List.iter
        (fun other ->
          if nodes.(other.src).busy_until > now then begin
            (* [other]'s frame is still on the air. *)
            if other.src <> node.id && dest_node.neighbor_set.(other.src)
            then begin
              if node.cs_set.(other.src) then tx.corrupted_local <- true
              else tx.corrupted_hidden <- true
            end;
            (* Symmetrically, the new frame may corrupt [other] if other is
               still in its vulnerable window and we are audible at its
               receiver — or if we ARE its receiver and just went deaf by
               transmitting ourselves (same-slot start, so other's dest-busy
               check could not see it). *)
            if (not other.resolved) && now < other.vuln_end then begin
              if other.dest = node.id then other.corrupted_local <- true
              else if nodes.(other.dest).neighbor_set.(node.id) then
                if nodes.(other.src).cs_set.(node.id) then
                  other.corrupted_local <- true
                else other.corrupted_hidden <- true
            end
          end)
        !active;
      active := tx :: !active
    end
  in
  let now = ref 0 in
  while !now < horizon do
    (* 1. Resolve frames whose vulnerable window closes now; drop frames
       whose airtime has ended. *)
    List.iter
      (fun tx -> if (not tx.resolved) && tx.vuln_end <= !now then resolve !now tx)
      !active;
    active := List.filter (fun tx -> tx.finish > !now) !active;
    (* 2. Launch every node whose counter has reached zero, against a
       single snapshot of the channel state: nodes that fire in the same
       slot cannot sense each other's start, so all of them transmit (the
       synchronised-collision case). *)
    let starters =
      Array.to_list nodes
      |> List.filter (fun nd -> nd.counter <= 0 && senses_idle !now nd)
    in
    List.iter (start_transmission !now) starters;
    (* 3. Between boundaries only the currently idle-sensing nodes tick. *)
    let counting =
      Array.to_list nodes |> List.filter (fun nd -> senses_idle !now nd)
    in
    (* 4. Jump to the next channel-state boundary. *)
    let next = ref max_int in
    let consider t = if t > !now && t < !next then next := t in
    List.iter (fun tx -> if not tx.resolved then consider tx.vuln_end) !active;
    Array.iter
      (fun nd ->
        consider nd.busy_until;
        consider nd.nav_until)
      nodes;
    List.iter (fun nd -> consider (!now + nd.counter)) counting;
    let next = if !next = max_int then horizon else Stdlib.min !next horizon in
    let dt = next - !now in
    List.iter (fun nd -> nd.counter <- nd.counter - dt) counting;
    now := next
  done;
  (* Frames still in their vulnerable window at the horizon complete just
     after the measurement ends; resolve them so the per-node accounting
     (attempts = successes + collisions) balances. *)
  List.iter
    (fun tx -> if not tx.resolved then resolve tx.vuln_end tx)
    !active;
  let elapsed = float_of_int horizon *. sigma in
  let per_node =
    Array.map
      (fun nd ->
        let clean = nd.attempts - nd.local_collisions in
        {
          attempts = nd.attempts;
          successes = nd.successes;
          drops = nd.drops;
          local_collisions = nd.local_collisions;
          hidden_failures = nd.hidden_failures;
          payoff_rate =
            ((float_of_int nd.successes *. params.gain)
            -. (float_of_int nd.attempts *. params.cost))
            /. elapsed;
          throughput = float_of_int nd.successes *. timing.payload /. elapsed;
          p_hn_hat =
            (if clean <= 0 then 1.
             else float_of_int (clean - nd.hidden_failures) /. float_of_int clean);
        })
      nodes
  in
  let horizon_f = float_of_int horizon in
  let busy_fraction =
    Stdlib.min 1. (float_of_int !busy_slots /. horizon_f)
  in
  let airtime =
    {
      busy_fraction;
      idle_fraction = 1. -. busy_fraction;
      success_fraction = float_of_int !success_tx_slots /. horizon_f;
      collision_fraction = float_of_int !collision_tx_slots /. horizon_f;
    }
  in
  let result =
    {
      time = elapsed;
      per_node;
      welfare_rate =
        Array.fold_left (fun acc s -> acc +. s.payoff_rate) 0. per_node;
      delivered = !delivered;
      airtime;
    }
  in
  Telemetry.Metric.incr
    (Telemetry.Registry.counter telemetry "netsim.spatial.runs");
  Telemetry.Registry.emit telemetry "run_summary" (fun () ->
      let total_successes =
        Array.fold_left (fun acc (s : node_stats) -> acc + s.successes) 0
          per_node
      in
      let share (s : node_stats) =
        if total_successes = 0 then 0.
        else float_of_int s.successes /. float_of_int total_successes
      in
      [
        ("sim", Telemetry.Jsonx.String "spatial");
        ("n", Telemetry.Jsonx.Int n);
        ("seed", Telemetry.Jsonx.Int seed);
        ("time", Telemetry.Jsonx.Float elapsed);
        ("delivered", Telemetry.Jsonx.Int !delivered);
        ("busy_fraction", Telemetry.Jsonx.Float airtime.busy_fraction);
        ("idle_fraction", Telemetry.Jsonx.Float airtime.idle_fraction);
        ("success_fraction", Telemetry.Jsonx.Float airtime.success_fraction);
        ( "collision_fraction",
          Telemetry.Jsonx.Float airtime.collision_fraction );
        ("welfare_rate", Telemetry.Jsonx.Float result.welfare_rate);
        ( "hidden_failures",
          Telemetry.Jsonx.Int
            (Array.fold_left
               (fun acc (s : node_stats) -> acc + s.hidden_failures)
               0 per_node)
        );
        ( "jain_fairness",
          Telemetry.Jsonx.Float
            (Prelude.Stats.jain_fairness
               (Array.map (fun s -> s.throughput) per_node)) );
        ( "success_share",
          Telemetry.Jsonx.List
            (Array.to_list
               (Array.map (fun s -> Telemetry.Jsonx.Float (share s)) per_node))
        );
      ]);
  result

(* Single-hop adapter for the payoff oracle: a clique adjacency makes every
   node hear and address every other, so the spatial machinery degenerates
   to the saturated single-hop world — modulo σ-quantisation of frame
   times.  The loop has no virtual-slot notion, so τ̂ is attempts per
   σ-slot and the slot estimate is σ itself: coarser than Slotted's, while
   payoff and throughput come from exact counters. *)
let clique_estimates ?telemetry ~params ~cws ~duration ~seed () =
  let n = Array.length cws in
  let everyone = List.init n Fun.id in
  let adjacency =
    Array.init n (fun i -> List.filter (fun j -> j <> i) everyone)
  in
  let result = run ?telemetry { params; adjacency; cws; duration; seed } in
  let sigma = params.Dcf.Params.sigma in
  let slots = result.time /. sigma in
  Array.map
    (fun (s : node_stats) ->
      {
        Estimate.tau_hat = float_of_int s.attempts /. slots;
        p_hat =
          (if s.attempts = 0 then 0.
           else
             float_of_int (s.attempts - s.successes)
             /. float_of_int s.attempts);
        payoff_rate = s.payoff_rate;
        throughput = s.throughput;
        slot_time = sigma;
      })
    result.per_node
