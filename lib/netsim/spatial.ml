type config = {
  params : Dcf.Params.t;
  adjacency : int list array;
  cws : int array;
  duration : float;
  seed : int;
}

type node_stats = {
  attempts : int;
  successes : int;
  drops : int;
  local_collisions : int;
  hidden_failures : int;
  payoff_rate : float;
  throughput : float;
  p_hn_hat : float;
}

type airtime = {
  busy_fraction : float;
  idle_fraction : float;
  success_fraction : float;
  collision_fraction : float;
  overlap_fraction : float;
}

type result = {
  time : float;
  per_node : node_stats array;
  welfare_rate : float;
  delivered : int;
  delivered_late : int;
  airtime : airtime;
}

type tx = {
  src : int;
  mutable dest : int;
  mutable vuln_end : int;    (** end of the vulnerable window, in slots *)
  mutable resolved : bool;
  mutable finish : int;      (** src airtime ends (set at resolution) *)
  mutable corrupted_local : bool;
  mutable corrupted_hidden : bool;
}

type node = {
  id : int;
  window : int;
  neighbors : int array;      (** decode (transmission) range *)
  cs_neighbors : int array;   (** carrier-sense range (superset) *)
  rng : Prelude.Rng.t;
  can_tx : bool;              (** has at least one neighbour to address *)
  tx : tx;                    (** reusable record (event core only) *)
  mutable stage : int;
  mutable counter : int;
  mutable retries : int;
  mutable busy_until : int;   (** own transmission occupies the air *)
  mutable nav_until : int;
  mutable defer : int;        (** AIFS slots left before backoff resumes
                                  (reference loop only) *)
  mutable sensing : bool;     (** idle-sensing during the interval that just
                                  ended (reference loop only) *)
  mutable attempts : int;
  mutable successes : int;    (** frames delivered (txop per winning access) *)
  mutable success_accesses : int;  (** winning accesses (conservation) *)
  mutable drops : int;
  mutable local_collisions : int;
  mutable hidden_failures : int;
  (* Event-core scheduling state.  A node is either UNFROZEN (idle-sensing,
     [expiry] is the absolute slot its backoff ends, a Fire event is in the
     calendar) or FROZEN ([counter] holds the remaining backoff slots,
     [expiry] = -1).  [audible] counts carrier-sense neighbours currently
     on the air, so idle-sensing is an O(1) test. *)
  mutable frozen : bool;
  mutable on_air : bool;
  mutable audible : int;
  mutable expiry : int;
  (* Absolute slot the AIFS defer ends after the last unfreeze (event core
     only).  Backoff slots are only the ones past it: a freeze at [t]
     leaves [expiry − max t defer_end] backoff slots, and the defer
     re-arms in full at the next unfreeze. *)
  mutable defer_end : int;
  mutable in_bag : bool;
}

let slots_of sigma t = Stdlib.max 1 (int_of_float (Float.round (t /. sigma)))

let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let equal_stats (a : node_stats) (b : node_stats) =
  a.attempts = b.attempts && a.successes = b.successes && a.drops = b.drops
  && a.local_collisions = b.local_collisions
  && a.hidden_failures = b.hidden_failures
  && feq a.payoff_rate b.payoff_rate
  && feq a.throughput b.throughput
  && feq a.p_hn_hat b.p_hn_hat

let equal_result (a : result) (b : result) =
  feq a.time b.time
  && a.delivered = b.delivered
  && a.delivered_late = b.delivered_late
  && feq a.welfare_rate b.welfare_rate
  && feq a.airtime.busy_fraction b.airtime.busy_fraction
  && feq a.airtime.idle_fraction b.airtime.idle_fraction
  && feq a.airtime.success_fraction b.airtime.success_fraction
  && feq a.airtime.collision_fraction b.airtime.collision_fraction
  && feq a.airtime.overlap_fraction b.airtime.overlap_fraction
  && Array.length a.per_node = Array.length b.per_node
  && Array.for_all2 equal_stats a.per_node b.per_node

(* Event kinds, packed with time and node id into a single calendar int:
   [((t * 4 + kind) * n) + id] sorts by time, then kind, then node id —
   exactly the intra-slot processing order the reference loop implies
   (resolutions, then channel releases, then backoff expiries). *)
let kind_resolve = 0
let kind_busy_release = 1
let kind_nav_release = 2
let kind_fire = 3

(* Flight-recorder names, interned once (intern takes a lock).  The
   default tier records per-transmission outcomes (a = slot, b = node);
   the dense per-calendar-event tier sits behind [Recorder.detail]. *)
let recorder = Telemetry.Recorder.default
let nid_tx_start = Telemetry.Recorder.intern recorder "spatial.tx_start"
let nid_success = Telemetry.Recorder.intern recorder "spatial.success"
let nid_collision = Telemetry.Recorder.intern recorder "spatial.collision"
let nid_drop = Telemetry.Recorder.intern recorder "spatial.drop"

let nid_event =
  [|
    Telemetry.Recorder.intern recorder "spatial.ev.resolve";
    Telemetry.Recorder.intern recorder "spatial.ev.busy_release";
    Telemetry.Recorder.intern recorder "spatial.ev.nav_release";
    Telemetry.Recorder.intern recorder "spatial.ev.fire";
  |]

type driver = Reference | Event_core

(* Where neighbourhoods come from.  [Lists] is the historical adjacency
   interface (dense membership sets, full symmetry validation); [Geo] is
   the unit-disk model resolved through a {!Mobility.Grid} index, whose
   neighbour arrays are identical to [Topology.adjacency ~range] of the
   same positions — which is what makes {!run_grid} bit-match {!run}. *)
type neighborhoods =
  | Lists of {
      adjacency : int list array;
      cs_adjacency : int list array option;
    }
  | Geo of {
      positions : Mobility.Geom.point array;
      range : float;
      cs_range : float;
      grid : Mobility.Grid.t option;
    }

(* Grid-backed state threaded into the event core when neighbourhoods are
   geometric: the airborne-transmitter index, the coordinates to query
   around, and a flush that folds both grids' candidate/rebucket tallies
   into the registry counters once per run (the grids count into plain
   ints so the hot loop never takes the registry lock). *)
type geo_state = {
  g_air : Mobility.Grid.t;
  g_positions : Mobility.Geom.point array;
  g_radius : float;
  g_flush : Telemetry.Registry.t -> unit;
}

(* [flight] gates the flight recorder for this run: the differential
   shadow run passes [false] so primary and shadow do not double-record
   the same workload into the process-wide rings. *)
let simulate ~driver ~telemetry ~retry_limit ~trace ~flight ~strategies
    ~rng_of ~hoods ~(params : Dcf.Params.t) ~cws ~duration ~seed =
  if retry_limit < 0 then invalid_arg "Spatial.run: retry_limit must be >= 0";
  let validate_scalars n =
    if n = 0 then invalid_arg "Spatial.run: empty network";
    if Array.length cws <> n then
      invalid_arg "Spatial.run: cws length mismatch";
    if duration <= 0. then invalid_arg "Spatial.run: duration must be positive";
    Array.iter
      (fun w -> if w < 1 then invalid_arg "Spatial.run: window must be >= 1")
      cws
  in
  let n, neighbors_a, cs_neighbors_a, is_neighbor, in_cs, geo =
    match hoods with
    | Lists { adjacency; cs_adjacency } ->
        let n = Array.length adjacency in
        let cs_adjacency = Option.value cs_adjacency ~default:adjacency in
        if Array.length cs_adjacency <> n then
          invalid_arg "Spatial.run: cs_adjacency length mismatch";
        validate_scalars n;
        Array.iteri
          (fun i l ->
            List.iter
              (fun j ->
                if j < 0 || j >= n || j = i then
                  invalid_arg "Spatial.run: bad neighbour";
                if not (List.mem i adjacency.(j)) then
                  invalid_arg "Spatial.run: adjacency not symmetric")
              l)
          adjacency;
        Array.iteri
          (fun i l ->
            List.iter
              (fun j ->
                if j < 0 || j >= n || j = i then
                  invalid_arg "Spatial.run: bad carrier-sense neighbour";
                if not (List.mem i cs_adjacency.(j)) then
                  invalid_arg "Spatial.run: cs_adjacency not symmetric")
              l;
            List.iter
              (fun j ->
                if not (List.mem j l) then
                  invalid_arg "Spatial.run: cs_adjacency must contain adjacency")
              adjacency.(i))
          cs_adjacency;
        let dense l =
          let set = Array.make n false in
          List.iter (fun j -> set.(j) <- true) l;
          set
        in
        let neighbor_sets = Array.map dense adjacency in
        let cs_sets = Array.map dense cs_adjacency in
        ( n,
          Array.map Array.of_list adjacency,
          Array.map Array.of_list cs_adjacency,
          (fun i j -> neighbor_sets.(i).(j)),
          (fun i j -> cs_sets.(i).(j)),
          None )
    | Geo { positions; range; cs_range; grid } ->
        let n = Array.length positions in
        validate_scalars n;
        if range <= 0. then
          invalid_arg "Spatial.run_grid: range must be positive";
        if cs_range < range then
          invalid_arg "Spatial.run_grid: cs_range must be >= range";
        let g =
          match grid with
          | None -> Mobility.Grid.create ~cell:range positions
          | Some g ->
              if Mobility.Grid.length g <> n then
                invalid_arg "Spatial.run_grid: grid length mismatch";
              Array.iteri
                (fun i (p : Mobility.Geom.point) ->
                  let q = Mobility.Grid.position g i in
                  if q.x <> p.x || q.y <> p.y then
                    invalid_arg
                      "Spatial.run_grid: grid coordinates disagree with \
                       positions")
                positions;
              g
        in
        let candidates0 = Mobility.Grid.candidates g in
        let rebuckets0 = Mobility.Grid.rebuckets g in
        let neighbors = Array.make n [||] in
        let cs_neighbors = Array.make n [||] in
        for i = 0 to n - 1 do
          let cands = Mobility.Grid.query g ~radius:cs_range i in
          cs_neighbors.(i) <- Array.of_list cands;
          neighbors.(i) <-
            Array.of_list
              (List.filter
                 (fun j ->
                   Mobility.Geom.within ~range positions.(i) positions.(j))
                 cands)
        done;
        (* Airborne-transmitter index: every pair the eager corruption
           marking can couple (src→receiver→other src) spans at most two
           decode hops, so a 2·range candidate box is a superset of the
           frames that can matter; extra candidates no-op through the
           exact predicates below. *)
        let air =
          Mobility.Grid.create ~fill:false ~cell:(2. *. range) positions
        in
        let flush registry =
          Telemetry.Metric.add
            (Telemetry.Registry.counter registry "netsim.grid.candidates")
            (Mobility.Grid.candidates g - candidates0
            + Mobility.Grid.candidates air);
          Telemetry.Metric.add
            (Telemetry.Registry.counter registry "netsim.grid.rebuckets")
            (Mobility.Grid.rebuckets g - rebuckets0
            + Mobility.Grid.rebuckets air)
        in
        ( n,
          neighbors,
          cs_neighbors,
          (fun i j ->
            i <> j
            && Mobility.Geom.within ~range positions.(i) positions.(j)),
          (fun i j ->
            i <> j
            && Mobility.Geom.within ~range:cs_range positions.(i)
                 positions.(j)),
          Some
            {
              g_air = air;
              g_positions = positions;
              g_radius = 2. *. range;
              g_flush = flush;
            } )
  in
  let strategies =
    match strategies with
    | None -> Array.map Dcf.Strategy_space.of_cw cws
    | Some ss ->
        if Array.length ss <> n then
          invalid_arg "Spatial.run: strategies length mismatch";
        Array.iteri
          (fun i (s : Dcf.Strategy_space.t) ->
            (match Dcf.Strategy_space.validate s with
            | Ok () -> ()
            | Error e -> invalid_arg ("Spatial.run: " ^ e));
            if s.cw <> cws.(i) then
              invalid_arg "Spatial.run: strategies disagree with cws")
          ss;
        ss
  in
  let m = params.max_backoff_stage in
  let timing = Dcf.Timing.of_params params in
  let sigma = params.sigma in
  (* Per-node frame timings: with degenerate strategies the passthrough in
     {!Dcf.Strategy_space.times} yields the base timings, so every slot
     count below equals the pre-strategy scalar — the degenerate subspace
     runs the exact CW-only slot sequence. *)
  let times_a =
    Array.map (fun s -> Dcf.Strategy_space.times params ~base:timing s)
      strategies
  in
  let ts_slots_a =
    Array.map (fun (tm : Dcf.Strategy_space.times) -> slots_of sigma tm.ts)
      times_a
  in
  let tc_slots_a =
    Array.map (fun (tm : Dcf.Strategy_space.times) -> slots_of sigma tm.tc)
      times_a
  in
  let vuln_slots_a =
    match params.mode with
    | Dcf.Params.Basic ->
        Array.map
          (fun (tm : Dcf.Strategy_space.times) ->
            slots_of sigma (timing.header +. tm.payload))
          times_a
    | Dcf.Params.Rts_cts ->
        let v =
          slots_of sigma
            (float_of_int (params.rts_bits + params.phy_header_bits)
            /. params.bit_rate)
        in
        Array.make n v
  in
  let aifs_a =
    Array.map (fun (s : Dcf.Strategy_space.t) -> s.aifs) strategies
  in
  let has_aifs = Array.exists (fun a -> a > 0) aifs_a in
  let txop_a =
    Array.map (fun (s : Dcf.Strategy_space.t) -> s.txop_frames) strategies
  in
  let horizon = int_of_float (Float.ceil (duration /. sigma)) in
  if horizon + 1 > max_int / (4 * n) then
    invalid_arg "Spatial.run: horizon too large for event packing";
  let master = Prelude.Rng.create seed in
  let nodes =
    Array.init n (fun i ->
        let node =
          {
            id = i;
            window = cws.(i);
            neighbors = neighbors_a.(i);
            cs_neighbors = cs_neighbors_a.(i);
            rng =
              (match rng_of with
              | None -> Prelude.Rng.split master
              | Some f -> f i);
            can_tx = Array.length neighbors_a.(i) > 0;
            tx =
              {
                src = i;
                dest = i;
                vuln_end = 0;
                resolved = true;
                finish = 0;
                corrupted_local = false;
                corrupted_hidden = false;
              };
            stage = 0;
            counter = 0;
            retries = 0;
            busy_until = 0;
            nav_until = 0;
            defer = aifs_a.(i);
            sensing = true;
            attempts = 0;
            successes = 0;
            success_accesses = 0;
            drops = 0;
            local_collisions = 0;
            hidden_failures = 0;
            frozen = false;
            on_air = false;
            audible = 0;
            expiry = -1;
            defer_end = 0;
            in_bag = false;
          }
        in
        node.counter <- Prelude.Rng.int node.rng node.window;
        node)
  in
  let delivered = ref 0 in
  let delivered_late = ref 0 in
  (* Airtime accounting, all in slots and all clipped at the horizon.
     [success]/[collision] aggregate per-transmission airtime (they can
     exceed the horizon under spatial reuse); [busy] is the union of
     transmission intervals, tracked incrementally — in-horizon events
     arrive in time order, so extending a coverage watermark is exact. *)
  let success_tx_slots = ref 0 in
  let collision_tx_slots = ref 0 in
  let busy_slots = ref 0 in
  let covered_until = ref 0 in
  let clip t = if t > horizon then horizon else t in
  let cover a b =
    let from = Stdlib.max a !covered_until in
    if b > from then begin
      busy_slots := !busy_slots + (b - from);
      covered_until := b
    end
  in
  let backoff_reset node =
    node.counter <- Prelude.Rng.int node.rng (node.window lsl node.stage)
  in
  let emit event =
    match trace with None -> () | Some t -> Trace.record t event
  in
  (* One flag read per run, not per event: the recorder can only be
     toggled between runs, and a single captured bool keeps the hot loop
     at one predictable branch per site. *)
  let rec_on = flight && Telemetry.Recorder.enabled recorder in
  let rec_detail = flight && Telemetry.Recorder.detail recorder in
  (* Driver-specific behaviour, injected so that the physics below is
     shared verbatim between the reference loop and the event core — the
     two schedulers can then only disagree on *when* they call into it,
     which is exactly what the differential mode checks. *)
  let raise_busy : (int -> node -> int -> unit) ref =
    ref (fun _ _ _ -> ())
  in
  let raise_nav : (int -> node -> int -> unit) ref = ref (fun _ _ _ -> ()) in
  let obtain : (node -> int -> int -> tx) ref =
    ref (fun nd _ _ -> nd.tx)
  in
  let register : (node -> tx -> unit) ref = ref (fun _ _ -> ()) in
  let iter_airborne : (node -> int -> (tx -> unit) -> unit) ref =
    ref (fun _ _ _ -> ())
  in
  let resolve now tx =
    tx.resolved <- true;
    let src = nodes.(tx.src) in
    let started = now - vuln_slots_a.(tx.src) in
    let corrupted = tx.corrupted_local || tx.corrupted_hidden in
    if corrupted then begin
      let finish = started + tc_slots_a.(tx.src) in
      !raise_busy now src finish;
      tx.finish <- finish;
      collision_tx_slots :=
        !collision_tx_slots + (clip finish - clip started);
      cover (clip now) (clip finish);
      if tx.corrupted_local then
        src.local_collisions <- src.local_collisions + 1
      else src.hidden_failures <- src.hidden_failures + 1;
      if rec_on then
        Telemetry.Recorder.instant recorder nid_collision now tx.src;
      emit
        (Trace.Collision
           { time = float_of_int now *. sigma; nodes = [ tx.src ] });
      src.retries <- src.retries + 1;
      if src.retries > retry_limit then begin
        src.drops <- src.drops + 1;
        src.retries <- 0;
        src.stage <- 0;
        if rec_on then Telemetry.Recorder.instant recorder nid_drop now tx.src;
        emit (Trace.Drop { time = float_of_int now *. sigma; node = tx.src })
      end
      else src.stage <- Stdlib.min (src.stage + 1) m
    end
    else begin
      let finish = started + ts_slots_a.(tx.src) in
      !raise_busy now src finish;
      tx.finish <- finish;
      src.successes <- src.successes + txop_a.(tx.src);
      src.success_accesses <- src.success_accesses + 1;
      if now < horizon then delivered := !delivered + txop_a.(tx.src)
      else delivered_late := !delivered_late + txop_a.(tx.src);
      success_tx_slots := !success_tx_slots + (clip finish - clip started);
      cover (clip now) (clip finish);
      if rec_on then Telemetry.Recorder.instant recorder nid_success now tx.src;
      emit (Trace.Success { time = float_of_int now *. sigma; node = tx.src });
      src.stage <- 0;
      src.retries <- 0;
      (match params.mode with
      | Dcf.Params.Basic -> ()
      | Dcf.Params.Rts_cts ->
          (* The CTS (and the data exchange) silences both neighbourhoods
             until the ACK completes. *)
          emit
            (Trace.Cts
               {
                 time = float_of_int now *. sigma;
                 src = tx.dest;
                 dest = tx.src;
               });
          let dest = nodes.(tx.dest) in
          !raise_busy now dest finish;
          let silence j =
            if j <> tx.src then begin
              let nd = nodes.(j) in
              if finish > nd.nav_until then begin
                !raise_nav now nd finish;
                emit
                  (Trace.Nav_defer
                     {
                       time = float_of_int now *. sigma;
                       node = j;
                       until = float_of_int finish *. sigma;
                     })
              end
            end
          in
          Array.iter silence dest.neighbors;
          Array.iter silence src.neighbors)
    end;
    backoff_reset src
  in
  let start_transmission now node =
    if not node.can_tx then
      (* Isolated node: nothing to send to; stay silent. *)
      backoff_reset node
    else begin
      let dest = Prelude.Rng.pick node.rng node.neighbors in
      node.attempts <- node.attempts + 1;
      if rec_on then
        Telemetry.Recorder.instant recorder nid_tx_start now node.id;
      !raise_busy now node
        (now + vuln_slots_a.(node.id)) (* extended at resolution *);
      cover now (clip (now + vuln_slots_a.(node.id)));
      (match params.mode with
      | Dcf.Params.Basic -> ()
      | Dcf.Params.Rts_cts ->
          emit
            (Trace.Rts
               { time = float_of_int now *. sigma; src = node.id; dest }));
      let tx = !obtain node dest now in
      (* Eager corruption marking against every other airborne frame. *)
      let dest_node = nodes.(dest) in
      if dest_node.busy_until > now then
        (* Receiver itself is transmitting and will miss the frame; it is a
           neighbour, so this counts as a local loss. *)
        tx.corrupted_local <- true;
      !iter_airborne node now (fun other ->
          if other != tx && nodes.(other.src).busy_until > now then begin
            (* [other]'s frame is still on the air. *)
            if other.src <> node.id && is_neighbor dest other.src then begin
              if in_cs node.id other.src then tx.corrupted_local <- true
              else tx.corrupted_hidden <- true
            end;
            (* Symmetrically, the new frame may corrupt [other] if other is
               still in its vulnerable window and we are audible at its
               receiver — or if we ARE its receiver and just went deaf by
               transmitting ourselves (same-slot start, so other's dest-busy
               check could not see it). *)
            if (not other.resolved) && now < other.vuln_end then begin
              if other.dest = node.id then other.corrupted_local <- true
              else if is_neighbor other.dest node.id then
                if in_cs other.src node.id then
                  other.corrupted_local <- true
                else other.corrupted_hidden <- true
            end
          end);
      !register node tx
    end
  in
  (match driver with
  | Reference ->
      (* The pre-event-core boundary-scan loop, kept as the differential
         baseline: at every channel-state boundary resolve, launch, and
         tick by scanning nodes and the active list. *)
      let active : tx list ref = ref [] in
      (raise_busy :=
         fun _now nd v -> if v > nd.busy_until then nd.busy_until <- v);
      (raise_nav := fun _now nd v -> nd.nav_until <- v);
      (obtain :=
         fun node dest now ->
           {
             src = node.id;
             dest;
             vuln_end = now + vuln_slots_a.(node.id);
             resolved = false;
             finish = now + vuln_slots_a.(node.id);
             corrupted_local = false;
             corrupted_hidden = false;
           });
      (register := fun _node tx -> active := tx :: !active);
      (iter_airborne := fun _node _now f -> List.iter f !active);
      (* A node senses the channel idle when it is not transmitting, has no
         NAV, and no neighbour is transmitting. *)
      let senses_idle now node =
        node.busy_until <= now
        && node.nav_until <= now
        && not
             (Array.exists
                (fun j -> nodes.(j).busy_until > now)
                node.cs_neighbors)
      in
      let now = ref 0 in
      while !now < horizon do
        (* 1. Resolve frames whose vulnerable window closes now; drop frames
           whose airtime has ended. *)
        List.iter
          (fun tx ->
            if (not tx.resolved) && tx.vuln_end <= !now then resolve !now tx)
          !active;
        active := List.filter (fun tx -> tx.finish > !now) !active;
        (* 2a. Pre-launch sensing transitions: a node whose channel just
           went idle re-arms its AIFS defer in full.  The scan costs a
           full senses_idle pass per boundary, so it only runs when some
           node actually defers; on the degenerate subspace (every defer
           0) the starter filter below keeps the cheap short-circuit
           shape of the CW-only loop.
           2b. Launch every node whose defer and counter have reached
           zero, against a single snapshot of the channel state: nodes
           that fire in the same slot cannot sense each other's start, so
           all of them transmit (the synchronised-collision case). *)
        let starters =
          if has_aifs then begin
            Array.iter
              (fun nd ->
                let idle = senses_idle !now nd in
                if idle && not nd.sensing then nd.defer <- aifs_a.(nd.id);
                nd.sensing <- idle)
              nodes;
            Array.to_list nodes
            |> List.filter (fun nd ->
                   nd.defer = 0 && nd.counter <= 0 && nd.sensing)
          end
          else
            Array.to_list nodes
            |> List.filter (fun nd -> nd.counter <= 0 && senses_idle !now nd)
        in
        List.iter (start_transmission !now) starters;
        (* 3. Between boundaries only the currently idle-sensing nodes
           tick (defer slots first, then backoff). *)
        Array.iter (fun nd -> nd.sensing <- senses_idle !now nd) nodes;
        let counting =
          Array.to_list nodes |> List.filter (fun nd -> nd.sensing)
        in
        (* 4. Jump to the next channel-state boundary. *)
        let next = ref max_int in
        let consider t = if t > !now && t < !next then next := t in
        List.iter
          (fun tx -> if not tx.resolved then consider tx.vuln_end)
          !active;
        Array.iter
          (fun nd ->
            consider nd.busy_until;
            consider nd.nav_until)
          nodes;
        List.iter
          (fun nd -> consider (!now + nd.defer + nd.counter))
          counting;
        let next =
          if !next = max_int then horizon else Stdlib.min !next horizon
        in
        let dt = next - !now in
        List.iter
          (fun nd ->
            let d = Stdlib.min nd.defer dt in
            nd.defer <- nd.defer - d;
            nd.counter <- nd.counter - (dt - d))
          counting;
        now := next
      done;
      (* Frames still in their vulnerable window at the horizon complete
         just after the measurement ends; resolve them so the per-node
         accounting (attempts = successes + collisions) balances.  Their
         airtime past the horizon is clipped away by [clip]. *)
      List.iter
        (fun tx -> if not tx.resolved then resolve tx.vuln_end tx)
        !active
  | Event_core ->
      (* Allocation-free event core: a packed-int calendar replaces the
         per-boundary node/active scans.  Intra-slot order (resolve, busy
         release, NAV release, fire) and node-id order within each kind
         reproduce the reference loop's phases bit-for-bit. *)
      let cal = Prelude.Heap.create ~capacity:(4 * n) () in
      let pack t kind id = (((t * 4) + kind) * n) + id in
      let time_of e = e / (4 * n) in
      let push_event t kind id =
        if t < horizon then Prelude.Heap.push cal (pack t kind id)
      in
      (* Airborne transmissions, one slot per node (a node carries at most
         one outstanding frame); stale entries are pruned lazily while
         marking. *)
      let bag = Array.make n 0 in
      let bag_len = ref 0 in
      let starters = Array.make n 0 in
      let n_starters = ref 0 in
      let freeze t nd =
        if not nd.frozen then begin
          nd.frozen <- true;
          if nd.expiry >= 0 then begin
            (* Only slots past the defer end are consumed backoff; a
               freeze inside the defer keeps the backoff whole (the defer
               re-arms in full at the next unfreeze). *)
            nd.counter <- nd.expiry - Stdlib.max t nd.defer_end;
            nd.expiry <- -1
          end
        end
      in
      let try_unfreeze t nd =
        if
          nd.can_tx && nd.frozen && nd.busy_until <= t && nd.nav_until <= t
          && nd.audible = 0
        then begin
          nd.frozen <- false;
          let a = aifs_a.(nd.id) in
          if a = 0 && nd.counter <= 0 then begin
            nd.expiry <- -1;
            starters.(!n_starters) <- nd.id;
            incr n_starters
          end
          else begin
            nd.defer_end <- t + a;
            nd.expiry <- nd.defer_end + Stdlib.max nd.counter 0;
            push_event nd.expiry kind_fire nd.id
          end
        end
      in
      (raise_busy :=
         fun t nd v ->
           if v > nd.busy_until then begin
             nd.busy_until <- v;
             if not nd.on_air then begin
               nd.on_air <- true;
               let cs = nd.cs_neighbors in
               for k = 0 to Array.length cs - 1 do
                 let p = nodes.(cs.(k)) in
                 p.audible <- p.audible + 1;
                 freeze t p
               done
             end;
             freeze t nd;
             push_event v kind_busy_release nd.id
           end);
      (raise_nav :=
         fun t nd v ->
           nd.nav_until <- v;
           freeze t nd;
           push_event v kind_nav_release nd.id);
      (obtain :=
         fun node dest now ->
           let tx = node.tx in
           tx.dest <- dest;
           tx.vuln_end <- now + vuln_slots_a.(node.id);
           tx.resolved <- false;
           tx.finish <- now + vuln_slots_a.(node.id);
           tx.corrupted_local <- false;
           tx.corrupted_hidden <- false;
           tx);
      (match geo with
      | None ->
          (register :=
             fun node tx ->
               if not node.in_bag then begin
                 node.in_bag <- true;
                 bag.(!bag_len) <- node.id;
                 incr bag_len
               end;
               push_event tx.vuln_end kind_resolve node.id);
          iter_airborne :=
            fun _node now f ->
              let k = ref 0 in
              while !k < !bag_len do
                let id = bag.(!k) in
                let tx = nodes.(id).tx in
                if tx.resolved && tx.finish <= now then begin
                  nodes.(id).in_bag <- false;
                  decr bag_len;
                  bag.(!k) <- bag.(!bag_len)
                end
                else begin
                  f tx;
                  incr k
                end
              done
      | Some { g_air = air; g_positions = positions; g_radius; _ } ->
          (* The global bag becomes the airborne grid: registration inserts
             the transmitter's cell, marking queries only the cells within
             the interference radius, and stale members are pruned lazily
             as queries meet them.  Candidates are staged through [scratch]
             because pruning mutates the bucket being iterated. *)
          let scratch = Array.make n 0 in
          (register :=
             fun node tx ->
               Mobility.Grid.add air node.id;
               push_event tx.vuln_end kind_resolve node.id);
          iter_airborne :=
            fun node now f ->
              let p = positions.(node.id) in
              let len = ref 0 in
              Mobility.Grid.iter_candidates air ~radius:g_radius p.x p.y
                (fun j ->
                  scratch.(!len) <- j;
                  incr len);
              for k = 0 to !len - 1 do
                let id = scratch.(k) in
                let tx = nodes.(id).tx in
                if tx.resolved && tx.finish <= now then
                  Mobility.Grid.remove air id
                else f tx
              done);
      (* Seed the calendar: every node that can transmit starts unfrozen
         with its initial AIFS defer and backoff pending. *)
      Array.iter
        (fun nd ->
          if nd.can_tx then begin
            nd.defer_end <- aifs_a.(nd.id);
            nd.expiry <- nd.defer_end + nd.counter;
            push_event nd.expiry kind_fire nd.id
          end
          else nd.frozen <- true)
        nodes;
      while not (Prelude.Heap.is_empty cal) do
        let t = time_of (Prelude.Heap.min_elt cal) in
        n_starters := 0;
        (* Drain every event in this slot; the packed order already yields
           resolutions, then busy releases, then NAV releases, then fires,
           each in ascending node id. *)
        while
          (not (Prelude.Heap.is_empty cal)) && time_of (Prelude.Heap.min_elt cal) = t
        do
          let e = Prelude.Heap.pop_min cal in
          let id = e mod n in
          let kind = e / n land 3 in
          if rec_detail then
            Telemetry.Recorder.instant recorder nid_event.(kind) t id;
          let nd = nodes.(id) in
          if kind = kind_resolve then begin
            let tx = nd.tx in
            if (not tx.resolved) && tx.vuln_end = t then resolve t tx
          end
          else if kind = kind_busy_release then begin
            if nd.on_air && nd.busy_until = t then begin
              nd.on_air <- false;
              let cs = nd.cs_neighbors in
              for k = 0 to Array.length cs - 1 do
                let p = nodes.(cs.(k)) in
                p.audible <- p.audible - 1;
                try_unfreeze t p
              done;
              try_unfreeze t nd
            end
          end
          else if kind = kind_nav_release then begin
            if nd.nav_until = t then try_unfreeze t nd
          end
          else if (not nd.frozen) && nd.expiry = t then begin
            (* Fire: the backoff expired while still idle-sensing. *)
            nd.expiry <- -1;
            starters.(!n_starters) <- id;
            incr n_starters
          end
        done;
        (* Launch this slot's starters in node-id order against the
           post-resolution channel snapshot — same-slot starters cannot
           sense each other, so each starts regardless of what the ones
           before it just did. *)
        for i = 1 to !n_starters - 1 do
          let v = starters.(i) in
          let j = ref (i - 1) in
          while !j >= 0 && starters.(!j) > v do
            starters.(!j + 1) <- starters.(!j);
            decr j
          done;
          starters.(!j + 1) <- v
        done;
        for k = 0 to !n_starters - 1 do
          let nd = nodes.(starters.(k)) in
          nd.frozen <- true;
          nd.expiry <- -1;
          start_transmission t nd
        done
      done;
      (* Frames still unresolved carry a vulnerable window past the horizon
         (in-horizon resolutions all had calendar entries); resolve them so
         per-node accounting balances.  [clip] discards their airtime.
         Resolution order cannot affect the result here: each resolve
         only touches its own node's counters and rng stream plus global
         sums, and every airtime contribution clips to the horizon — so
         scanning the bag (lists) and scanning all nodes (geo) agree. *)
      match geo with
      | None ->
          for k = 0 to !bag_len - 1 do
            let tx = nodes.(bag.(k)).tx in
            if not tx.resolved then resolve tx.vuln_end tx
          done
      | Some _ ->
          Array.iter
            (fun nd ->
              if not nd.tx.resolved then resolve nd.tx.vuln_end nd.tx)
            nodes);
  let elapsed = float_of_int horizon *. sigma in
  let per_node =
    Array.map
      (fun nd ->
        let clean = nd.attempts - nd.local_collisions in
        (* Frames transmitted: one per failed access (only the first frame
           of a burst collides), txop per winning access.  Equals
           [attempts] on the degenerate subspace. *)
        let frames =
          nd.attempts - nd.success_accesses
          + (nd.success_accesses * txop_a.(nd.id))
        in
        {
          attempts = nd.attempts;
          successes = nd.successes;
          drops = nd.drops;
          local_collisions = nd.local_collisions;
          hidden_failures = nd.hidden_failures;
          payoff_rate =
            ((float_of_int nd.successes *. params.gain)
            -. (float_of_int frames *. params.cost))
            /. elapsed;
          throughput =
            float_of_int nd.successes *. times_a.(nd.id).payload /. elapsed;
          p_hn_hat =
            (if clean <= 0 then 1.
             else
               float_of_int (clean - nd.hidden_failures) /. float_of_int clean);
        })
      nodes
  in
  let horizon_f = float_of_int horizon in
  let busy_fraction = float_of_int !busy_slots /. horizon_f in
  let airtime =
    {
      busy_fraction;
      idle_fraction = 1. -. busy_fraction;
      success_fraction = float_of_int !success_tx_slots /. horizon_f;
      collision_fraction = float_of_int !collision_tx_slots /. horizon_f;
      overlap_fraction =
        float_of_int (!success_tx_slots + !collision_tx_slots - !busy_slots)
        /. horizon_f;
    }
  in
  (* Always-on conservation checker: these identities hold by construction,
     so a violation means the scheduler or the accounting is broken — fail
     the run rather than publish bad numbers. *)
  let fail fmt = Printf.ksprintf failwith fmt in
  Array.iteri
    (fun i nd ->
      if
        nd.attempts
        <> nd.success_accesses + nd.local_collisions + nd.hidden_failures
      then
        fail
          "Spatial.run: conservation violated at node %d: %d attempts <> %d \
           winning accesses + %d local + %d hidden"
          i nd.attempts nd.success_accesses nd.local_collisions
          nd.hidden_failures;
      if nd.successes <> nd.success_accesses * txop_a.(i) then
        fail
          "Spatial.run: conservation violated at node %d: %d frames <> %d \
           accesses x txop %d"
          i nd.successes nd.success_accesses txop_a.(i))
    nodes;
  let total_successes =
    Array.fold_left (fun acc (s : node_stats) -> acc + s.successes) 0 per_node
  in
  if !delivered + !delivered_late <> total_successes then
    fail
      "Spatial.run: conservation violated: delivered %d + late %d <> %d \
       successes"
      !delivered !delivered_late total_successes;
  if !busy_slots > horizon then
    fail "Spatial.run: conservation violated: busy %d slots > horizon %d"
      !busy_slots horizon;
  if !success_tx_slots + !collision_tx_slots < !busy_slots then
    fail
      "Spatial.run: conservation violated: success %d + collision %d < busy \
       %d slots"
      !success_tx_slots !collision_tx_slots !busy_slots;
  let balance =
    airtime.idle_fraction +. airtime.success_fraction
    +. airtime.collision_fraction -. airtime.overlap_fraction
  in
  if Float.abs (balance -. 1.) > 1e-9 then
    fail "Spatial.run: conservation violated: airtime balance %.12f <> 1"
      balance;
  let result =
    {
      time = elapsed;
      per_node;
      welfare_rate =
        Array.fold_left (fun acc s -> acc +. s.payoff_rate) 0. per_node;
      delivered = !delivered;
      delivered_late = !delivered_late;
      airtime;
    }
  in
  Option.iter (fun gs -> gs.g_flush telemetry) geo;
  Telemetry.Metric.incr
    (Telemetry.Registry.counter telemetry "netsim.spatial.runs");
  Telemetry.Registry.emit telemetry "run_summary" (fun () ->
      let share (s : node_stats) =
        if total_successes = 0 then 0.
        else float_of_int s.successes /. float_of_int total_successes
      in
      [
        ("sim", Telemetry.Jsonx.String "spatial");
        ("n", Telemetry.Jsonx.Int n);
        ("seed", Telemetry.Jsonx.Int seed);
        ("time", Telemetry.Jsonx.Float elapsed);
        ("delivered", Telemetry.Jsonx.Int !delivered);
        ("delivered_late", Telemetry.Jsonx.Int !delivered_late);
        ("busy_fraction", Telemetry.Jsonx.Float airtime.busy_fraction);
        ("idle_fraction", Telemetry.Jsonx.Float airtime.idle_fraction);
        ("success_fraction", Telemetry.Jsonx.Float airtime.success_fraction);
        ( "collision_fraction",
          Telemetry.Jsonx.Float airtime.collision_fraction );
        ("overlap_fraction", Telemetry.Jsonx.Float airtime.overlap_fraction);
        ("welfare_rate", Telemetry.Jsonx.Float result.welfare_rate);
        ( "hidden_failures",
          Telemetry.Jsonx.Int
            (Array.fold_left
               (fun acc (s : node_stats) -> acc + s.hidden_failures)
               0 per_node) );
        ( "jain_fairness",
          Telemetry.Jsonx.Float
            (Prelude.Stats.jain_fairness
               (Array.map (fun s -> s.throughput) per_node)) );
        ( "success_share",
          Telemetry.Jsonx.List
            (Array.to_list
               (Array.map (fun s -> Telemetry.Jsonx.Float (share s)) per_node))
        );
      ]);
  result

let nid_run = Telemetry.Recorder.intern recorder "spatial.run"

(* A recorder-only span around one run (a = n, b = seed): cheap enough
   to leave on every entry point, and it parents the per-transmission
   instants so traces group by simulation. *)
let recorded_run a b f =
  let rid = Telemetry.Recorder.begin_span recorder nid_run a b in
  if rid = 0 then f ()
  else
    Fun.protect
      ~finally:(fun () -> Telemetry.Recorder.end_span recorder nid_run rid)
      f

let diff_requested () =
  match Sys.getenv_opt "NETSIM_SPATIAL_DIFF" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let run_reference ?(telemetry = Telemetry.Registry.default) ?cs_adjacency
    ?(retry_limit = max_int) ?trace ?strategies
    { params; adjacency; cws; duration; seed } =
  let hoods = Lists { adjacency; cs_adjacency } in
  recorded_run (Array.length adjacency) seed (fun () ->
      simulate ~driver:Reference ~telemetry ~retry_limit ~trace ~flight:true
        ~strategies ~rng_of:None ~hoods ~params ~cws ~duration ~seed)

let run ?(telemetry = Telemetry.Registry.default) ?cs_adjacency
    ?(retry_limit = max_int) ?trace ?strategies
    { params; adjacency; cws; duration; seed } =
  let hoods = Lists { adjacency; cs_adjacency } in
  let result =
    recorded_run (Array.length adjacency) seed (fun () ->
        simulate ~driver:Event_core ~telemetry ~retry_limit ~trace
          ~flight:true ~strategies ~rng_of:None ~hoods ~params ~cws ~duration
          ~seed)
  in
  if diff_requested () then begin
    let shadow =
      simulate ~driver:Reference
        ~telemetry:(Telemetry.Registry.create ())
        ~retry_limit ~trace:None ~flight:false ~strategies ~rng_of:None
        ~hoods ~params ~cws ~duration ~seed
    in
    if not (equal_result result shadow) then
      failwith
        "Spatial.run: NETSIM_SPATIAL_DIFF divergence: event core and \
         reference loop disagree"
  end;
  result

let run_grid ?(telemetry = Telemetry.Registry.default) ?(retry_limit = max_int)
    ?trace ?strategies ?rng_of ?grid ?cs_range ~params ~positions ~range ~cws
    ~duration ~seed () =
  let cs_range = Option.value cs_range ~default:range in
  let hoods = Geo { positions; range; cs_range; grid } in
  let result =
    recorded_run (Array.length positions) seed (fun () ->
        simulate ~driver:Event_core ~telemetry ~retry_limit ~trace
          ~flight:true ~strategies ~rng_of ~hoods ~params ~cws ~duration ~seed)
  in
  if diff_requested () then begin
    let shadow =
      simulate ~driver:Reference
        ~telemetry:(Telemetry.Registry.create ())
        ~retry_limit ~trace:None ~flight:false ~strategies ~rng_of ~hoods
        ~params ~cws ~duration ~seed
    in
    if not (equal_result result shadow) then
      failwith
        "Spatial.run_grid: NETSIM_SPATIAL_DIFF divergence: event core and \
         reference loop disagree"
  end;
  result

(* Single-hop adapter for the payoff oracle: a clique adjacency makes every
   node hear and address every other, so the spatial machinery degenerates
   to the saturated single-hop world — modulo σ-quantisation of frame
   times.  The loop has no virtual-slot notion, so τ̂ is attempts per
   σ-slot and the slot estimate is σ itself: coarser than Slotted's, while
   payoff and throughput come from exact counters. *)
let clique_estimates ?telemetry ?strategies ~params ~cws ~duration ~seed () =
  let n = Array.length cws in
  let everyone = List.init n Fun.id in
  let adjacency =
    Array.init n (fun i -> List.filter (fun j -> j <> i) everyone)
  in
  let result =
    run ?telemetry ?strategies { params; adjacency; cws; duration; seed }
  in
  let sigma = params.Dcf.Params.sigma in
  let slots = result.time /. sigma in
  Array.map
    (fun (s : node_stats) ->
      {
        Estimate.tau_hat = float_of_int s.attempts /. slots;
        p_hat =
          (* Failed accesses over accesses; on the degenerate subspace
             this equals the historical (attempts − successes)/attempts
             (successes then counts accesses). *)
          (if s.attempts = 0 then 0.
           else
             float_of_int (s.local_collisions + s.hidden_failures)
             /. float_of_int s.attempts);
        payoff_rate = s.payoff_rate;
        throughput = s.throughput;
        slot_time = sigma;
      })
    result.per_node
