(** Slot-accurate simulator of saturated single-hop IEEE 802.11 DCF.

    This is the packet-level ground truth the analytic model abstracts: every
    node independently draws a uniform backoff in [0, 2^j·W_i − 1], counters
    tick down together during idle slots and freeze while the channel is
    busy, the nodes whose counters hit zero transmit, exactly one transmitter
    means success (channel busy Ts), two or more mean collision (busy Tc,
    colliders advance their backoff stage up to m).  Since every node hears
    every other, the simulation advances per *virtual slot*, making runs of
    millions of slots cheap.

    It plays the role NS-2 plays in the paper's Sec. VII.A: regenerating the
    simulated columns of Tables II and III and validating τ, p and payoff
    against the Markov-chain model. *)

type config = {
  params : Dcf.Params.t;
  cws : int array;     (** per-node initial contention window *)
  duration : float;    (** simulated seconds *)
  seed : int;
}

type node_stats = {
  attempts : int;      (** channel accesses attempted *)
  successes : int;
      (** frames delivered ([txop_frames] per winning access; equals the
          winning accesses on the degenerate subspace) *)
  collisions : int;    (** accesses that collided *)
  drops : int;
      (** packets discarded after exhausting the retry limit (0 when
          simulating the paper's infinite-retry chain) *)
  tau_hat : float;     (** attempts per virtual slot — estimates τ_i *)
  p_hat : float;       (** collisions / attempts — estimates p_i *)
  payoff_rate : float;
      (** (delivered frames·g − transmitted frames·e) / time — estimates
          u_i; frames transmitted = attempts on the degenerate subspace *)
  throughput : float;  (** payload airtime fraction delivered by this node *)
}

type airtime = {
  idle_fraction : float;       (** fraction of elapsed time the channel idled *)
  success_fraction : float;    (** fraction occupied by successful frames (Ts) *)
  collision_fraction : float;  (** fraction occupied by collisions (Tc) *)
  error_fraction : float;
      (** fraction occupied by fully transmitted frames lost to channel
          noise (Ts each — the whole frame went out, no ACK came back);
          0 unless [per] > 0 *)
}
(** Channel airtime decomposition, accumulated incrementally during the
    run.  The four fractions sum to ≈ 1 (up to the final partial busy
    period straddling the horizon). *)

type result = {
  time : float;        (** simulated time actually elapsed, s *)
  slots : int;         (** number of virtual slots *)
  per_node : node_stats array;
  total_throughput : float;  (** S: summed payload fraction *)
  welfare_rate : float;      (** Σ_i payoff_rate *)
  airtime : airtime;
}

val run :
  ?telemetry:Telemetry.Registry.t ->
  ?bianchi_ticks:bool -> ?retry_limit:int -> ?per:float -> ?trace:Trace.t ->
  ?strategies:Dcf.Strategy_space.t array ->
  config -> result
(** Simulate until [duration] simulated seconds have elapsed.

    [strategies] gives each node its full (CW, AIFS, TXOP, rate) strategy;
    each entry's [cw] must agree with [cws] (the CW array stays the
    config's source of truth).  AIFS adds defer slots consumed before the
    backoff counter after every busy period; TXOP sends
    [txop_frames] frames per winning access (successes and frame costs
    count frames, collisions still cost one); rate scales the payload
    airtime per node.  Omitting [strategies] — or passing only degenerate
    ones — runs the exact CW-only operation sequence, bit-identically.

    [trace] records a {!Trace.event} per success, collision and drop.

    Every run emits a ["run_summary"] telemetry event on [telemetry]
    (default: the global registry) carrying the airtime fractions, the
    per-node success shares and the Jain fairness of the throughput
    allocation — the per-station channel metrics selfishness detectors
    key on.

    [per] is a packet error rate from channel noise: a transmission that
    wins contention is still lost with this probability (treated as a
    failure by the backoff machinery, as real DCF cannot tell noise from
    collision).  The corrupted frame is transmitted in full, so it holds
    the channel for Ts (tallied in [error_fraction]) and the trace records
    a {!Trace.Channel_error} rather than a {!Trace.Collision}.  Default 0
    — the paper's perfect channel.  Analytically this is the same
    multiplicative factor as the hidden-node degradation p_hn of
    Sec. VI.A, so the validation tests compare against
    [Utility.rates ~p_hn:(1−per)].

    [retry_limit] is the number of retransmissions before a packet is
    discarded (real DCF uses 4–7; default: unlimited, matching the paper's
    chain, whose stage m retries forever).  A drop resets the backoff stage
    just like a success, and the saturated queue immediately offers the
    next packet.

    [bianchi_ticks] selects the backoff-freeze semantics.  [false]
    (default) is the real protocol: counters freeze during busy periods.
    [true] is the Markov chain's convention: every virtual slot — busy ones
    included — decrements the counters of the non-transmitting stations, so
    the simulation matches eq. 2-3 exactly.  The gap between the two modes
    (a few percent on τ) is precisely the known accuracy limit of Bianchi's
    model, which the validation tests pin down.

    @raise Invalid_argument on an empty network, a non-positive duration or
    a window < 1. *)

val estimates :
  ?telemetry:Telemetry.Registry.t ->
  ?strategies:Dcf.Strategy_space.t array -> config -> Estimate.t array
(** One {!run} folded into per-node {!Estimate.t} records: τ̂ and p̂ come
    straight from the per-node counters and the estimated mean virtual slot
    is elapsed time over virtual slots.  The payoff oracle's [Sim_slotted]
    backend. *)

val payoff_oracle :
  params:Dcf.Params.t -> n:int -> duration:float -> seed:int -> int -> float
(** [payoff_oracle ~params ~n ~duration ~seed w] measures a node's payoff
    rate with all [n] nodes on window [w] — a drop-in, noisy
    {!Macgame.Search.oracle} backend (the Û_l = (n_s·g − n_e·e)/t_m
    measurement of Sec. V.C).  Fresh seed per window probe. *)
