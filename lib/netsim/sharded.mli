(** Region-sharded spatial simulation across OCaml 5 domains.

    The area is cut into [shards] vertical strips of equal width over the
    x-extent of the positions.  Each shard simulates its strip's nodes
    with {!Spatial.run_grid} on its own domain (scheduled by
    {!Runner.Pool}), together with {e ghosts}: nodes of neighbouring
    strips within [halo] of the strip edge, mirrored into the shard's
    index so border carrier-sense, NAV and interference are seen from
    both sides.  The default halo, [max cs_range (2·range)], covers every
    first-order coupling the physics has (carrier-sense deferral and the
    two-decode-hop interference neighbourhood); second-order effects that
    chain through nodes beyond the halo are where the approximation —
    and the statistical-equivalence conformance point — lives.

    Ownership resolves ties: a node's statistics come only from the shard
    owning its strip; its ghost copies elsewhere exist to keep the border
    physics honest and are discarded.

    Determinism contract: every node's RNG stream is {!node_rng}, keyed
    by its {e global} id via {!Prelude.Rng.of_key} — independent of the
    shard count, the pool's worker count and scheduling order — and
    shards do not communicate during the run.  Hence the merged result is
    a pure function of [(config, shards, halo)]: re-running with a
    different worker pool is bit-identical, and [~shards:1] is
    bit-identical to the single-domain {!Spatial.run_grid} with the same
    [rng_of] (pinned by the [scale] conformance group). *)

type config = {
  params : Dcf.Params.t;
  positions : Mobility.Geom.point array;
  range : float;       (** decode (transmission) radius *)
  cs_range : float;    (** carrier-sense radius, >= [range] *)
  cws : int array;
  duration : float;
  seed : int;
}

type shard_info = {
  shard : int;          (** strip index *)
  owned : int;          (** nodes whose statistics this shard produced *)
  mirrored : int;       (** ghosts simulated redundantly for the border *)
  wall_seconds : float; (** wall-clock of this shard's sub-run *)
}

type result = {
  time : float;
  per_node : Spatial.node_stats array;  (** indexed by global node id *)
  welfare_rate : float;
  delivered : int;
      (** frames delivered by owned nodes, including post-horizon
          resolutions (the sum of [per_node] successes — unlike
          {!Spatial.result.delivered} there is no cross-shard notion of
          the in-horizon global count) *)
  shards : shard_info array;  (** live shards only (empty strips are
                                  skipped) *)
}

val node_rng : seed:int -> int -> Prelude.Rng.t
(** The stream node [gid] draws from in every shard that simulates it. *)

val run :
  ?telemetry:Telemetry.Registry.t ->
  ?retry_limit:int ->
  ?strategies:Dcf.Strategy_space.t array ->
  ?pool:Runner.Pool.t -> ?halo:float ->
  shards:int -> config -> result
(** Simulate [config] over [shards] strips.  [pool] defaults to a fresh
    {!Runner.Pool} with one worker per live shard.  [halo] defaults to
    [max cs_range (2·range)]; smaller halos trade border accuracy for
    less redundant work (each ghost is simulated in full).

    Each shard's sub-run goes to its own telemetry registry; after the
    join the grid counters fold back into [telemetry], per-shard
    [netsim.shard<k>.utilization] gauges record each shard's wall share
    of the slowest shard, and a ["sharded_run_summary"] event is emitted.
    Each sub-run is wrapped in a [netsim.shard] flight-recorder span
    (a = strip index, b = members simulated).

    @raise Invalid_argument on inconsistent sizes, [shards < 1], a
    non-positive [range], [cs_range < range], or a negative [halo]. *)
