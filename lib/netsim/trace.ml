type event =
  | Success of { time : float; node : int }
  | Collision of { time : float; nodes : int list }
  | Channel_error of { time : float; node : int }
  | Drop of { time : float; node : int }
  | Rts of { time : float; src : int; dest : int }
  | Cts of { time : float; src : int; dest : int }
  | Nav_defer of { time : float; node : int; until : float }

let time_of = function
  | Success { time; _ }
  | Collision { time; _ }
  | Channel_error { time; _ }
  | Drop { time; _ }
  | Rts { time; _ }
  | Cts { time; _ }
  | Nav_defer { time; _ } ->
      time

let pp_event ppf = function
  | Success { time; node } -> Format.fprintf ppf "%.5f success node=%d" time node
  | Collision { time; nodes } ->
      Format.fprintf ppf "%.5f collision nodes=[%s]" time
        (String.concat ";" (List.map string_of_int nodes))
  | Channel_error { time; node } ->
      Format.fprintf ppf "%.5f channel-error node=%d" time node
  | Drop { time; node } -> Format.fprintf ppf "%.5f drop node=%d" time node
  | Rts { time; src; dest } ->
      Format.fprintf ppf "%.5f rts src=%d dest=%d" time src dest
  | Cts { time; src; dest } ->
      Format.fprintf ppf "%.5f cts src=%d dest=%d" time src dest
  | Nav_defer { time; node; until } ->
      Format.fprintf ppf "%.5f nav node=%d until=%.5f" time node until

type t = {
  capacity : int;
  buffer : event Queue.t;
  mutable dropped : int;
}

let create ?(capacity = 100_000) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  { capacity; buffer = Queue.create (); dropped = 0 }

let record t event =
  if Queue.length t.buffer >= t.capacity then begin
    ignore (Queue.pop t.buffer);
    t.dropped <- t.dropped + 1
  end;
  Queue.add event t.buffer

let events t = List.of_seq (Queue.to_seq t.buffer)

let length t = Queue.length t.buffer

let dropped t = t.dropped

type summary = {
  successes : int;
  collisions : int;
  channel_errors : int;
  drops : int;
  rts : int;
  cts : int;
  nav_defers : int;
  per_node_successes : (int * int) list;
}

let summarize t =
  let successes = ref 0
  and collisions = ref 0
  and channel_errors = ref 0
  and drops = ref 0
  and rts = ref 0
  and cts = ref 0
  and nav_defers = ref 0 in
  let per_node = Hashtbl.create 16 in
  Queue.iter
    (function
      | Success { node; _ } ->
          incr successes;
          Hashtbl.replace per_node node
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_node node))
      | Collision _ -> incr collisions
      | Channel_error _ -> incr channel_errors
      | Drop _ -> incr drops
      | Rts _ -> incr rts
      | Cts _ -> incr cts
      | Nav_defer _ -> incr nav_defers)
    t.buffer;
  let per_node_successes =
    Hashtbl.fold (fun node count acc -> (node, count) :: acc) per_node []
    |> List.sort compare
  in
  {
    successes = !successes;
    collisions = !collisions;
    channel_errors = !channel_errors;
    drops = !drops;
    rts = !rts;
    cts = !cts;
    nav_defers = !nav_defers;
    per_node_successes;
  }

let to_lines t =
  List.map (fun e -> Format.asprintf "%a" pp_event e) (events t)
