(** Event traces from the simulators.

    A bounded in-memory log of channel events, for debugging protocol
    behaviour and for assertions in tests ("node 3 never transmitted while
    node 1 held the channel").  When the buffer fills, the oldest events
    are discarded and counted in [dropped]. *)

type event =
  | Success of { time : float; node : int }
      (** a frame was delivered at [time] (end of the busy period) *)
  | Collision of { time : float; nodes : int list }
      (** the listed nodes' frames collided *)
  | Channel_error of { time : float; node : int }
      (** [node]'s frame won contention but was corrupted by channel noise
          (packet error rate) — a full-frame loss, distinct from a
          collision *)
  | Drop of { time : float; node : int }
      (** a packet was discarded after the retry limit *)
  | Rts of { time : float; src : int; dest : int }
      (** [src] started an RTS handshake towards [dest] (spatial
          simulator, RTS/CTS mode only) *)
  | Cts of { time : float; src : int; dest : int }
      (** the receiver [src] answered [dest]'s RTS — the exchange won the
          channel; data and ACK follow under NAV protection *)
  | Nav_defer of { time : float; node : int; until : float }
      (** [node] set (or extended) its NAV to [until] seconds because a
          CTS silenced its neighbourhood — virtual carrier sense *)

val time_of : event -> float

val pp_event : Format.formatter -> event -> unit
(** One-line rendering, e.g. ["0.01230 success node=2"]. *)

type t

val create : ?capacity:int -> unit -> t
(** A trace keeping the most recent [capacity] events (default 100_000). *)

val record : t -> event -> unit

val events : t -> event list
(** Chronological order. *)

val length : t -> int

val dropped : t -> int
(** Events discarded because the buffer was full. *)

type summary = {
  successes : int;
  collisions : int;
  channel_errors : int;  (** noise losses (packet error rate) *)
  drops : int;
  rts : int;         (** RTS handshakes started *)
  cts : int;         (** CTS answers (RTS exchanges that won the channel) *)
  nav_defers : int;  (** NAV settings/extensions observed *)
  per_node_successes : (int * int) list;  (** (node, count), sorted by node *)
}

val summarize : t -> summary

val to_lines : t -> string list
(** Every retained event rendered with {!pp_event}. *)
