(** Spatial (multi-hop) simulator of saturated IEEE 802.11 DCF.

    Unlike {!module:Slotted}, nodes only carrier-sense their neighbourhood:
    a transmission is corrupted when another frame overlaps its vulnerable
    window at the *receiver*, which a hidden terminal (in range of the
    receiver but not of the sender) can cause without the sender ever
    sensing it — the mechanism behind the paper's degradation factor p_hn
    (Sec. VI.A).

    The model is slot-quantised: time advances in σ-slots and frame
    durations are rounded to whole slots.  Scheduling is event-driven: a
    packed-int calendar ({!Prelude.Heap}) orders backoff expiries,
    vulnerable-window closes and busy/NAV releases by (slot, kind, node
    id), so a channel-state transition costs O(log events) instead of a
    scan over all nodes and airborne frames — and the steady-state loop
    does not allocate.  {!run_reference} keeps the original
    boundary-scanning loop; both produce bit-identical results under the
    determinism contract (per-node RNG streams, starters launched in
    node-id order within a slot).

    Access modes follow the parameter set:
    - basic: the whole data frame is vulnerable; a failed attempt occupies
      the sender for Tc.
    - RTS/CTS: only the RTS frame is vulnerable; on success the CTS sets a
      NAV over both endpoints' neighbourhoods for the rest of the exchange,
      on failure the sender is busy Tc = RTS + DIFS.

    Saturated traffic: each attempt addresses a uniformly random neighbour.
    Nodes without neighbours never transmit. *)

type config = {
  params : Dcf.Params.t;
  adjacency : int list array;  (** symmetric neighbour lists *)
  cws : int array;             (** per-node window, same length *)
  duration : float;            (** simulated seconds *)
  seed : int;
}

type node_stats = {
  attempts : int;
  successes : int;
      (** frames delivered ([txop_frames] per winning access; equals the
          winning accesses on the degenerate subspace) *)
  drops : int;
      (** packets discarded after the retry limit (0 with the default
          unlimited retries) *)
  local_collisions : int;
      (** failures with at least one overlapping transmitter the sender
          could itself sense — ordinary contention losses *)
  hidden_failures : int;
      (** failures caused exclusively by transmitters outside the sender's
          carrier-sense range — the 1 − p_hn losses *)
  payoff_rate : float;
      (** (delivered frames·g − transmitted frames·e)/time; transmitted
          frames = attempts on the degenerate subspace *)
  throughput : float;   (** payload airtime fraction delivered *)
  p_hn_hat : float;
      (** estimated degradation factor: among attempts that survived local
          contention, the fraction that survived hidden terminals too
          (1 when no such attempt failed) *)
}

type airtime = {
  busy_fraction : float;
      (** fraction of the horizon during which at least one node was
          transmitting (union of transmission intervals, clipped at the
          horizon) *)
  idle_fraction : float;       (** [1 − busy_fraction] *)
  success_fraction : float;
      (** aggregate successful transmit airtime over the horizon, clipped
          at the horizon; can exceed 1 under spatial reuse (concurrent
          non-interfering transmissions each count their full duration) *)
  collision_fraction : float;  (** aggregate corrupted transmit airtime,
                                   clipped at the horizon *)
  overlap_fraction : float;
      (** spatial-reuse excess: aggregate transmit airtime beyond the busy
          union, i.e. [success + collision − busy].  The conservation
          identity [idle + success + collision − overlap = 1] holds to
          1e-9 on every run (checked, see {!run}). *)
}

type result = {
  time : float;
  per_node : node_stats array;
  welfare_rate : float;
  delivered : int;
      (** packets delivered strictly before the horizon — the only ones
          airtime accounting covers *)
  delivered_late : int;
      (** packets whose vulnerable window straddled the horizon and that
          resolved successfully just after measurement ended; counted for
          per-node bookkeeping ([successes] includes them) but excluded
          from [delivered] and clipped out of airtime *)
  airtime : airtime;
}

val run :
  ?telemetry:Telemetry.Registry.t ->
  ?cs_adjacency:int list array -> ?retry_limit:int -> ?trace:Trace.t ->
  ?strategies:Dcf.Strategy_space.t array ->
  config -> result
(** [strategies] gives each node its full (CW, AIFS, TXOP, rate) strategy;
    each entry's [cw] must agree with [cws].  AIFS adds defer slots a node
    waits after every busy→idle channel transition before its backoff
    resumes; TXOP delivers [txop_frames] frames per winning access (the
    burst holds the channel for the full burst Ts, collisions still cost
    one frame); rate rescales the payload airtime.  Omitting [strategies]
    — or passing only degenerate ones — runs the exact CW-only slot
    sequence, bit-identically, on both drivers.

    [cs_adjacency] is the carrier-sense graph: who a node can *hear* (and
    therefore defers to), as opposed to [config.adjacency], who it can
    *decode* (and therefore send to / be corrupted by).  Physically the
    carrier-sense range is at least the transmission range, so
    [cs_adjacency] must contain every [adjacency] edge; it defaults to
    [adjacency].  A larger carrier-sense graph shrinks the hidden-terminal
    population — the ablation the [hidden] bench sweeps.

    [retry_limit] is the number of retransmissions before the head-of-line
    packet is discarded (default: unlimited, the paper's chain).

    In RTS/CTS mode, a [trace] additionally records {!Trace.Rts} at every
    handshake start, {!Trace.Cts} when the exchange wins the channel, and
    {!Trace.Nav_defer} whenever the CTS extends a third node's NAV — so
    multi-hop tests can assert virtual-carrier-sense behaviour.  Every run
    emits a ["run_summary"] telemetry event on [telemetry] (default: the
    global registry) with airtime fractions, per-node success shares and
    Jain fairness.

    Every run passes an always-on conservation audit before returning:
    per-node [attempts = winning accesses + local_collisions +
    hidden_failures] (and [successes = winning accesses · txop_frames]),
    [delivered + delivered_late] equals total successes, the busy union
    never exceeds the horizon, and
    [idle + success + collision − overlap = 1 ± 1e-9].

    When the environment variable [NETSIM_SPATIAL_DIFF] is set (non-empty,
    not ["0"]), every call additionally runs the {!run_reference} loop on
    the same inputs and fails unless the two results are bit-identical —
    the differential harness for the event core.

    @raise Invalid_argument on inconsistent sizes, windows < 1,
    non-positive duration, an asymmetric adjacency, or a [cs_adjacency]
    missing an [adjacency] edge.
    @raise Failure on a conservation-audit or differential failure. *)

val run_reference :
  ?telemetry:Telemetry.Registry.t ->
  ?cs_adjacency:int list array -> ?retry_limit:int -> ?trace:Trace.t ->
  ?strategies:Dcf.Strategy_space.t array ->
  config -> result
(** The original boundary-scanning scheduler (every channel-state boundary
    rescans all nodes and airborne frames), sharing the physics and
    accounting code with {!run}.  Kept as the differential baseline: same
    inputs must give a result {!equal_result} to {!run}'s.  Prefer {!run}
    everywhere else — this loop allocates on every boundary. *)

val run_grid :
  ?telemetry:Telemetry.Registry.t ->
  ?retry_limit:int -> ?trace:Trace.t ->
  ?strategies:Dcf.Strategy_space.t array ->
  ?rng_of:(int -> Prelude.Rng.t) ->
  ?grid:Mobility.Grid.t -> ?cs_range:float ->
  params:Dcf.Params.t -> positions:Mobility.Geom.point array ->
  range:float -> cws:int array -> duration:float -> seed:int ->
  unit -> result
(** The grid-indexed geometric core: the same event-driven scheduler as
    {!run}, with neighbourhoods resolved against a {!Mobility.Grid}
    uniform-grid index over [positions] (unit-disk model, decode radius
    [range], carrier-sense radius [cs_range], default [range]) instead of
    explicit adjacency lists.  Airborne interference is likewise resolved
    against a per-run grid of active transmitters queried at radius
    2·[range] — the eager corruption marking couples nodes at most two
    decode hops apart, so the candidate box is a superset of every frame
    that can matter.

    Determinism contract: [run_grid ~positions ~range ~cs_range] is
    bit-identical ({!equal_result}) to [run] on
    [Topology.adjacency ~range positions] with
    [~cs_adjacency:(Topology.adjacency ~range:cs_range positions)] — the
    grid changes how neighbourhoods are {e found}, never what they are
    (neighbour arrays are equal, and per-node RNG streams make cross-node
    event order immaterial).  The fast-tier [scale] conformance group
    pins this.

    [rng_of] overrides each node's RNG stream (default: streams split
    from [seed] in node order, exactly as {!run}).  {!Sharded.run} uses
    it to give every node a stream keyed by its global id, so a node
    simulates identically in whichever shard mirrors it.  [grid] supplies
    a prebuilt node index (cell size may differ from [range]); its
    coordinates must agree with [positions] — the mobility path keeps one
    grid alive and {!Mobility.Grid.move}s walkers between epochs.

    Each run folds the index's tallies into the [netsim.grid.candidates]
    and [netsim.grid.rebuckets] counters on [telemetry].

    @raise Invalid_argument on inconsistent sizes, a non-positive [range],
    [cs_range < range], or a [grid] disagreeing with [positions]. *)

val equal_result : result -> result -> bool
(** Bit-exact equality (floats compared by their IEEE-754 bits), used by
    the differential harness. *)

val equal_stats : node_stats -> node_stats -> bool
(** Bit-exact equality of one node's statistics. *)

val clique_estimates :
  ?telemetry:Telemetry.Registry.t ->
  ?strategies:Dcf.Strategy_space.t array ->
  params:Dcf.Params.t -> cws:int array -> duration:float -> seed:int ->
  unit -> Estimate.t array
(** Run the spatial simulator on a fully connected (clique) topology and
    fold the result into per-node {!Estimate.t} records — the payoff
    oracle's [Sim_spatial] backend for single-hop games.  The spatial loop
    is σ-quantised and has no virtual-slot notion, so [tau_hat] is
    attempts per σ-slot and [slot_time] is σ — coarser estimates than
    {!Slotted.estimates} — while payoff and throughput are exact counters.
    A single isolated node never transmits, so prefer [n ≥ 2]. *)
