(** Per-node measured counterparts of the analytic model's (τ, p, u, S)
    quantities — the common currency the simulators hand to the payoff
    oracle ({!Macgame.Oracle}'s simulated backends).  Each simulator maps
    its own counters into this record so the oracle can treat analytic and
    simulated evaluations uniformly. *)

type t = {
  tau_hat : float;     (** estimated per-slot transmission probability τ_i *)
  p_hat : float;       (** estimated conditional collision probability p_i *)
  payoff_rate : float; (** measured payoff rate (n_s·g − n_a·e)/t, estimates u_i *)
  throughput : float;  (** payload airtime fraction delivered by this node *)
  slot_time : float;   (** estimated mean virtual slot length, s *)
}
