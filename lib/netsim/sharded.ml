type config = {
  params : Dcf.Params.t;
  positions : Mobility.Geom.point array;
  range : float;
  cs_range : float;
  cws : int array;
  duration : float;
  seed : int;
}

type shard_info = {
  shard : int;
  owned : int;
  mirrored : int;
  wall_seconds : float;
}

type result = {
  time : float;
  per_node : Spatial.node_stats array;
  welfare_rate : float;
  delivered : int;
  shards : shard_info array;
}

let node_rng ~seed gid =
  Prelude.Rng.of_key ~seed ("netsim.sharded.node|" ^ string_of_int gid)

let recorder = Telemetry.Recorder.default
let nid_shard = Telemetry.Recorder.intern recorder "netsim.shard"

(* Counters a shard-local registry accumulates that are worth folding back
   into the caller's registry after the join (each shard runs against its
   own registry so no two domains ever race on one metric cell). *)
let folded_counters =
  [ "netsim.grid.candidates"; "netsim.grid.rebuckets"; "netsim.spatial.runs" ]

let run ?(telemetry = Telemetry.Registry.default) ?(retry_limit = max_int)
    ?strategies ?pool ?halo ~shards
    { params; positions; range; cs_range; cws; duration; seed } =
  let n = Array.length positions in
  if n = 0 then invalid_arg "Sharded.run: empty network";
  if shards < 1 then invalid_arg "Sharded.run: shards must be >= 1";
  if Array.length cws <> n then
    invalid_arg "Sharded.run: cws length mismatch";
  (match strategies with
  | Some ss when Array.length ss <> n ->
      invalid_arg "Sharded.run: strategies length mismatch"
  | _ -> ());
  if range <= 0. then invalid_arg "Sharded.run: range must be positive";
  if cs_range < range then
    invalid_arg "Sharded.run: cs_range must be >= range";
  let halo = Option.value halo ~default:(Stdlib.max cs_range (2. *. range)) in
  if halo < 0. then invalid_arg "Sharded.run: halo must be >= 0";
  let xmin = ref infinity and xmax = ref neg_infinity in
  Array.iter
    (fun (p : Mobility.Geom.point) ->
      if p.x < !xmin then xmin := p.x;
      if p.x > !xmax then xmax := p.x)
    positions;
  let strip = (!xmax -. !xmin) /. float_of_int shards in
  let owner =
    Array.init n (fun i ->
        if strip <= 0. then 0
        else
          Stdlib.min (shards - 1)
            (int_of_float ((positions.(i).x -. !xmin) /. strip)))
  in
  (* Shard membership: every node in the strip, plus ghosts within [halo]
     of either strip edge.  Owners are members of their strip regardless
     of float rounding in the strip bounds. *)
  let members = Array.make shards [] in
  for i = n - 1 downto 0 do
    let x = positions.(i).Mobility.Geom.x in
    for k = shards - 1 downto 0 do
      let lo = !xmin +. (float_of_int k *. strip) in
      let hi = lo +. strip in
      if owner.(i) = k || (x >= lo -. halo && x <= hi +. halo) then
        members.(k) <- i :: members.(k)
    done
  done;
  (* Shards with no owned nodes contribute no statistics; skip them. *)
  let live =
    List.filter_map
      (fun k ->
        let gids = Array.of_list members.(k) in
        let owned =
          Array.fold_left
            (fun acc gid -> if owner.(gid) = k then acc + 1 else acc)
            0 gids
        in
        if owned = 0 then None else Some (k, gids, owned))
      (List.init shards Fun.id)
    |> Array.of_list
  in
  let jobs_n = Array.length live in
  let results = Array.make jobs_n None in
  let walls = Array.make jobs_n 0. in
  let registries =
    Array.init jobs_n (fun _ -> Telemetry.Registry.create ())
  in
  let job idx =
    let k, gids, _owned = live.(idx) in
    let sub n_of = Array.map n_of gids in
    let sub_positions = sub (fun gid -> positions.(gid)) in
    let sub_cws = sub (fun gid -> cws.(gid)) in
    let sub_strategies =
      Option.map (fun ss -> sub (fun gid -> ss.(gid))) strategies
    in
    let rng_of li = node_rng ~seed gids.(li) in
    fun () ->
      let t0 = Unix.gettimeofday () in
      let rid =
        Telemetry.Recorder.begin_span recorder nid_shard k (Array.length gids)
      in
      Fun.protect
        ~finally:(fun () ->
          Telemetry.Recorder.end_span recorder nid_shard rid;
          walls.(idx) <- Unix.gettimeofday () -. t0)
        (fun () ->
          results.(idx) <-
            Some
              (Spatial.run_grid ~telemetry:registries.(idx) ~retry_limit
                 ?strategies:sub_strategies ~rng_of ~params
                 ~positions:sub_positions ~range ~cs_range ~cws:sub_cws
                 ~duration ~seed ()))
  in
  let jobs = Array.init jobs_n job in
  let pool =
    match pool with
    | Some p -> p
    | None -> Runner.Pool.create ~registry:telemetry ~workers:jobs_n ()
  in
  ignore (Runner.Pool.run pool jobs);
  (* Ownership resolves every node exactly once: each gid's owning strip
     has at least that one owned node, so its shard ran. *)
  let merged : Spatial.node_stats option array = Array.make n None in
  let infos =
    Array.mapi
      (fun idx (k, gids, owned) ->
        let r =
          match results.(idx) with
          | Some r -> r
          | None -> failwith "Sharded.run: shard produced no result"
        in
        Array.iteri
          (fun li gid ->
            if owner.(gid) = k then merged.(gid) <- Some r.Spatial.per_node.(li))
          gids;
        { shard = k; owned; mirrored = Array.length gids - owned;
          wall_seconds = walls.(idx) })
      live
  in
  let per_node =
    Array.map
      (function
        | Some s -> s
        | None -> failwith "Sharded.run: node owned by no shard")
      merged
  in
  let time =
    match results.(0) with
    | Some r -> r.Spatial.time
    | None -> failwith "Sharded.run: shard produced no result"
  in
  let welfare_rate =
    Array.fold_left
      (fun acc (s : Spatial.node_stats) -> acc +. s.payoff_rate)
      0. per_node
  in
  let delivered =
    Array.fold_left
      (fun acc (s : Spatial.node_stats) -> acc + s.successes)
      0 per_node
  in
  (* Fold the shard-local registries back into the caller's, and publish
     per-shard utilization (busy wall over the slowest shard's wall, the
     straggler view). *)
  Array.iter
    (fun reg ->
      List.iter
        (fun name ->
          let c = Telemetry.Metric.count (Telemetry.Registry.counter reg name) in
          if c > 0 then
            Telemetry.Metric.add
              (Telemetry.Registry.counter telemetry name)
              c)
        folded_counters)
    registries;
  let slowest = Array.fold_left Stdlib.max 0. walls in
  Array.iter
    (fun info ->
      Telemetry.Metric.set
        (Telemetry.Registry.gauge telemetry
           (Printf.sprintf "netsim.shard%d.utilization" info.shard))
        (if slowest > 0. then info.wall_seconds /. slowest else 0.))
    infos;
  Telemetry.Metric.incr
    (Telemetry.Registry.counter telemetry "netsim.sharded.runs");
  let mirrored_total =
    Array.fold_left (fun acc i -> acc + i.mirrored) 0 infos
  in
  Telemetry.Registry.emit telemetry "sharded_run_summary" (fun () ->
      [
        ("sim", Telemetry.Jsonx.String "sharded");
        ("n", Telemetry.Jsonx.Int n);
        ("seed", Telemetry.Jsonx.Int seed);
        ("shards", Telemetry.Jsonx.Int jobs_n);
        ("mirrored", Telemetry.Jsonx.Int mirrored_total);
        ("time", Telemetry.Jsonx.Float time);
        ("welfare_rate", Telemetry.Jsonx.Float welfare_rate);
        ("delivered", Telemetry.Jsonx.Int delivered);
      ]);
  { time; per_node; welfare_rate; delivered; shards = infos }
