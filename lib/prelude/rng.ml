type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: advance by the golden gamma, then apply the
   variant-13 mix of the counter. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  (* The mixed output seeds the child; mixing prevents correlated lattices
     between parent and child streams. *)
  { state = bits64 t }

let of_key ~seed key =
  (* A stream derived from (seed, key) alone: equal pairs give equal
     streams regardless of task submission order or worker interleaving,
     which is what makes parallel sweeps bit-identical to serial ones.
     The FNV hash of the key is xored into a gamma-scaled seed; SplitMix's
     output mixing takes care of any residual structure. *)
  {
    state =
      Int64.logxor
        (Int64.mul (Int64.of_int seed) golden_gamma)
        (Util.fnv1a64 key);
  }

(* 62 uniform bits as a non-negative OCaml int. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let max = (1 lsl 62) - 1 in
  let limit = max - (max mod bound) in
  let rec draw () =
    let v = bits t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random bits scaled to [0,1), as in the stdlib. *)
  let b = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (b *. 0x1p-53)

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let rec positive () =
    let u = float t 1.0 in
    if u > 0. then u else positive ()
  in
  -.log (positive ()) /. rate

let normal t ~mean ~stddev =
  let rec positive () =
    let u = float t 1.0 in
    if u > 0. then u else positive ()
  in
  let u1 = positive () and u2 = float t 1.0 in
  let r = sqrt (-2. *. log u1) in
  mean +. (stddev *. r *. cos (2. *. Float.pi *. u2))

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
