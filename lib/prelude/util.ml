let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let clamp_int ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let approx_equal ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let linspace lo hi n =
  if n < 2 then invalid_arg "Util.linspace: need at least two points";
  let step = (hi -. lo) /. float_of_int (n - 1) in
  Array.init n (fun i -> lo +. (float_of_int i *. step))

let logspace lo hi n =
  if lo <= 0. || hi <= 0. then invalid_arg "Util.logspace: bounds must be positive";
  Array.map exp (linspace (log lo) (log hi) n)

let int_range lo hi =
  if hi < lo then [||] else Array.init (hi - lo + 1) (fun i -> lo + i)

let argmax f a =
  if Array.length a = 0 then invalid_arg "Util.argmax: empty array";
  let best = ref 0 and best_v = ref (f a.(0)) in
  for i = 1 to Array.length a - 1 do
    let v = f a.(i) in
    if v > !best_v then begin
      best := i;
      best_v := v
    end
  done;
  !best

let argmin f a = argmax (fun x -> -.f x) a

let sum_floats = Array.fold_left ( +. ) 0.

let geometric_sum r k =
  if k <= 0 then 0.
  else if approx_equal r 1. then float_of_int k
  else (1. -. (r ** float_of_int k)) /. (1. -. r)

let fold_range lo hi ~init ~f =
  let rec go acc i = if i > hi then acc else go (f acc i) (i + 1) in
  go init lo

(* FNV-1a, the 64-bit variant: a tiny, well-distributed string hash used
   to content-address cached experiment results and to derive per-task RNG
   streams.  Stable across runs and platforms, unlike [Hashtbl.hash]. *)
let fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

let hex64 h = Printf.sprintf "%016Lx" h
