(** Small numeric and array helpers shared across the library. *)

val clamp : lo:float -> hi:float -> float -> float

val clamp_int : lo:int -> hi:int -> int -> int

val approx_equal : ?eps:float -> float -> float -> bool
(** Mixed absolute/relative comparison: [|a−b| ≤ eps·max(1,|a|,|b|)].
    Default [eps = 1e-9]. *)

val linspace : float -> float -> int -> float array
(** [linspace lo hi n] is [n ≥ 2] evenly spaced points from [lo] to [hi]
    inclusive. *)

val logspace : float -> float -> int -> float array
(** Geometrically spaced points from [lo] to [hi] (both positive). *)

val int_range : int -> int -> int array
(** [int_range lo hi] is [|lo; lo+1; …; hi|] ([||] if [hi < lo]). *)

val argmax : ('a -> float) -> 'a array -> int
(** Index of the first maximiser of [f]; raises [Invalid_argument] on an
    empty array. *)

val argmin : ('a -> float) -> 'a array -> int

val sum_floats : float array -> float

val geometric_sum : float -> int -> float
(** [geometric_sum r k] is Σ_{j=0}^{k−1} r^j, computed stably including at
    [r = 1]. *)

val fold_range : int -> int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** [fold_range lo hi ~init ~f] folds [f] over the inclusive integer range. *)

val fnv1a64 : string -> int64
(** 64-bit FNV-1a hash of the string.  Deterministic across runs and
    platforms (unlike [Hashtbl.hash]), so it is safe to persist — the
    runner's result cache addresses files by it. *)

val hex64 : int64 -> string
(** 16-digit lower-case hex rendering of a 64-bit value. *)
