(** Array-backed binary min-heap over plain [int] keys.

    The element {e is} the priority: callers pack their payload into the
    integer (e.g. [(time * n + node_id) * kinds + kind]) so that the
    natural [int] order is the event order — time first, then any
    tie-breaking fields.  This is the calendar of the spatial simulator's
    event core: one machine word per pending event, no boxing, no
    comparator closure, and no allocation on [push]/[pop_min] once the
    backing array has grown to its working size.

    Stale entries are expected: the intended usage is lazy deletion —
    push a replacement and ignore superseded entries on pop by validating
    them against current state — rather than decrease-key. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty heap.  [capacity] (default 64) pre-sizes the backing
    array; it grows by doubling when exceeded.
    @raise Invalid_argument when [capacity < 1]. *)

val length : t -> int

val is_empty : t -> bool

val clear : t -> unit
(** Forget every element; keeps the backing array. *)

val push : t -> int -> unit

val min_elt : t -> int
(** Smallest element without removing it.
    @raise Invalid_argument when empty. *)

val pop_min : t -> int
(** Remove and return the smallest element.
    @raise Invalid_argument when empty. *)
