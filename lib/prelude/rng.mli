(** Deterministic, splittable pseudo-random number generator.

    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny,
    fast, statistically solid 64-bit generator whose state advances by a
    fixed odd increment, which makes it trivially splittable.  Every
    stochastic component of the library (simulators, mobility, noisy
    observers) threads an explicit [t] so that experiments are reproducible
    from a single integer seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy sharing the current state (diverges on first use of
    either copy only if both are advanced). *)

val split : t -> t
(** [split t] advances [t] and returns a generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Used to give
    each simulated station its own stream. *)

val of_key : seed:int -> string -> t
(** [of_key ~seed key] is a generator determined solely by the
    [(seed, key)] pair — no ambient state is read or advanced.  The
    experiment runner derives each task's stream this way (from the sweep
    seed and the task's content key), so results are independent of task
    ordering, worker count, and scheduling. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound); [bound] must be positive.
    Rejection sampling removes modulo bias. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t x] is uniform on [0, x). *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform on [lo, hi). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate); [rate > 0]. *)

val normal : t -> mean:float -> stddev:float -> float
(** Gaussian sample via Box–Muller. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
