type t = { mutable a : int array; mutable size : int }

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Heap.create: capacity must be >= 1";
  { a = Array.make capacity 0; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let clear t = t.size <- 0

let grow t =
  let a = Array.make (2 * Array.length t.a) 0 in
  Array.blit t.a 0 a 0 t.size;
  t.a <- a

let push t x =
  if t.size = Array.length t.a then grow t;
  (* Sift up. *)
  let a = t.a in
  let i = ref t.size in
  t.size <- t.size + 1;
  a.(!i) <- x;
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    if a.(parent) > x then begin
      a.(!i) <- a.(parent);
      a.(parent) <- x;
      i := parent;
      true
    end
    else false
  do
    ()
  done

let min_elt t =
  if t.size = 0 then invalid_arg "Heap.min_elt: empty heap";
  t.a.(0)

let pop_min t =
  if t.size = 0 then invalid_arg "Heap.pop_min: empty heap";
  let a = t.a in
  let min = a.(0) in
  t.size <- t.size - 1;
  let last = a.(t.size) in
  (* Sift the displaced last element down from the root. *)
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    let r = l + 1 in
    let smallest =
      if l < t.size && a.(l) < last then l else !i
    in
    let smallest =
      if r < t.size && a.(r) < (if smallest = !i then last else a.(smallest))
      then r
      else smallest
    in
    if smallest = !i then begin
      a.(!i) <- last;
      continue := false
    end
    else begin
      a.(!i) <- a.(smallest);
      i := smallest
    end
  done;
  min
