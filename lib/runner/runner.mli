(** The experiment engine: deterministic domain-parallel sweeps with a
    content-addressed result cache and checkpoint/resume.

    [map cfg ~name tasks] evaluates every task and returns their results
    in submission order.  For each task it consults, in order:

    + the sweep's checkpoint journal ([<cache>/<name>.journal.jsonl]) —
      results a previous interrupted run of this sweep already produced;
    + the content-addressed cache ([<cache>/<fingerprint>.json]) — results
      any previous sweep produced for the same content key;
    + the domain pool, which computes the misses, storing each result in
      both cache and journal the moment it completes.

    {b Determinism contract.}  Task results are a function of the task key
    and the sweep seed only: each task's RNG comes from
    {!Prelude.Rng.of_key} on [(cfg.seed, task.key)], and results land in a
    per-task slot.  Consequently [-j k] output is bit-identical to serial
    for every [k], and a cache hit is byte-identical to recomputation
    (given codec fidelity — see {!module:Task}).  No ordering, worker
    count, scheduling, or interruption history can change a sweep's value.

    {b Telemetry.}  Each computed task runs inside a ["runner.task"] span;
    the sweep maintains [runner.cache.hits] / [runner.cache.misses] /
    [runner.tasks.completed] counters (plus the pool's job/steal counters
    and per-worker busy-time histogram) and emits one ["run_manifest"]
    event at pool shutdown carrying the sweep name, worker count, task
    count, cache hit rate, steals and elapsed wall-clock — enough to audit
    a sweep from the JSONL stream alone. *)

module Task = Task
module Deque = Deque
module Pool = Pool
module Cache = Cache
module Checkpoint = Checkpoint

type config = {
  workers : int;            (** degree of parallelism; 1 = serial *)
  cache_dir : string option;(** [None] disables both cache and journal *)
  checkpoints : bool;       (** keep a per-sweep resume journal *)
  seed : int;               (** sweep seed for per-task RNG derivation *)
}

val default_config : config
(** [{ workers = 1; cache_dir = None; checkpoints = true; seed = 0 }] *)

val configure : config -> unit
(** Set the ambient configuration used when {!map} is called without an
    explicit one — the CLI's [-j] / [--cache] / [--no-cache] flags land
    here, so experiment code needs no plumbing. *)

val current_config : unit -> config

val map :
  ?registry:Telemetry.Registry.t ->
  ?config:config ->
  name:string ->
  'a Task.t array ->
  'a array
(** Evaluate the sweep.  [name] identifies the sweep's checkpoint journal
    and labels its manifest; it must be stable across runs for resume to
    find the journal.  Re-raises the first task exception after the pool
    drains. *)
