(** Fixed-size [Domain] worker pool with per-worker work-stealing deques.

    Jobs are distributed round-robin across the workers' deques; each
    worker drains its own deque LIFO and, when empty, steals FIFO from the
    others.  Since jobs never enqueue further jobs, a worker that finds
    every deque empty is done.  [run] spawns [workers − 1] domains, works
    as the zeroth worker on the calling domain, and joins them all before
    returning — so at most [workers] domains exist at any moment, and a
    pool value can be reused across many sweeps.

    With [workers ≤ 1] (or a single job) no domain is spawned and jobs run
    serially on the caller — the [-j 1] baseline parallel runs must match.

    Job exceptions: the first raised exception is re-raised on the caller
    after every worker has drained (workers stop picking up new jobs once
    one has failed). *)

type t

val create : ?registry:Telemetry.Registry.t -> workers:int -> unit -> t
(** [workers] is clamped below at 1.  [registry] (default
    {!Telemetry.Registry.default}) receives the pool's counters —
    [runner.pool.jobs], [runner.pool.steals] — and the per-worker
    [runner.pool.worker_busy_seconds] histogram. *)

val workers : t -> int

type run_stats = {
  jobs : int;
  workers_used : int;   (** min(workers, jobs) *)
  steals : int;
  busy : float array;   (** per-worker seconds spent inside jobs *)
  elapsed : float;      (** wall-clock seconds of this [run] *)
}

val run : t -> (unit -> unit) array -> run_stats

val total_jobs : t -> int
(** Cumulative jobs executed across every [run] on this pool; likewise
    {!total_steals}. *)

val total_steals : t -> int
