(* This module is the library's entry point (it shares the library's
   name), so the building blocks are re-exported here. *)
module Task = Task
module Deque = Deque
module Pool = Pool
module Cache = Cache
module Checkpoint = Checkpoint

type config = {
  workers : int;
  cache_dir : string option;
  checkpoints : bool;
  seed : int;
}

let default_config = { workers = 1; cache_dir = None; checkpoints = true; seed = 0 }

let ambient = ref default_config

let configure cfg = ambient := cfg

let current_config () = !ambient

(* Journal names must be path-safe; sweeps are named by experiment, e.g.
   "table2.basic.n20". *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c
      | _ -> '_')
    name

let map ?(registry = Telemetry.Registry.default) ?config ~name tasks =
  let cfg = match config with Some c -> c | None -> !ambient in
  let n = Array.length tasks in
  let cache = Option.map Cache.open_dir cfg.cache_dir in
  let journal =
    match (cache, cfg.checkpoints) with
    | Some c, true ->
        Some
          (Checkpoint.load ~telemetry:registry
             (Filename.concat (Cache.dir c) (sanitize name ^ ".journal.jsonl")))
    | _ -> None
  in
  let fingerprints = Array.map Task.fingerprint tasks in
  let results = Array.make n None in
  let hits = ref 0 and resumed = ref 0 in
  (* Serve what disk already knows: journal first (this sweep's own
     progress), then the cross-sweep cache. *)
  Array.iteri
    (fun i task ->
      let decoded =
        match
          Option.bind journal (fun j -> Checkpoint.find j ~fingerprint:fingerprints.(i))
        with
        | Some v -> (
            match task.Task.decode v with
            | Some r ->
                incr resumed;
                Some r
            | None -> None)
        | None -> (
            match Option.bind cache (fun c -> Cache.find c ~key:task.Task.key) with
            | Some v -> (
                match task.Task.decode v with
                | Some r ->
                    incr hits;
                    (* Promote into the journal so a later resume of this
                       sweep is self-contained. *)
                    Option.iter
                      (fun j ->
                        Checkpoint.record j ~fingerprint:fingerprints.(i) v)
                      journal;
                    Some r
                | None -> None)
            | None -> None)
      in
      results.(i) <- decoded)
    tasks;
  let served = !hits + !resumed in
  Telemetry.Metric.add (Telemetry.Registry.counter registry "runner.cache.hits") served;
  Telemetry.Metric.add
    (Telemetry.Registry.counter registry "runner.cache.misses")
    (n - served);
  let pending =
    Array.of_list
      (List.filter (fun i -> results.(i) = None) (List.init n Fun.id))
  in
  (* Live sweep progress: tasks are completed across pool domains, so a
     shared atomic drives the progress/ETA gauges any attached reporter
     (or a concurrent reader of the default registry) can poll. *)
  let completed = Atomic.make 0 in
  let sweep_t0 = Unix.gettimeofday () in
  let progress_gauge = Telemetry.Registry.gauge registry "runner.sweep.progress" in
  let eta_gauge = Telemetry.Registry.gauge registry "runner.sweep.eta_seconds" in
  let to_compute = Array.length pending in
  Telemetry.Metric.set progress_gauge (if to_compute = 0 then 1. else 0.);
  Telemetry.Metric.set eta_gauge 0.;
  let note_done () =
    let d = Atomic.fetch_and_add completed 1 + 1 in
    Telemetry.Metric.set progress_gauge
      (float_of_int d /. float_of_int to_compute);
    let elapsed = Unix.gettimeofday () -. sweep_t0 in
    Telemetry.Metric.set eta_gauge
      (elapsed /. float_of_int d *. float_of_int (to_compute - d))
  in
  let job i () =
    let task = tasks.(i) in
    Telemetry.Span.with_span ~registry
      ~fields:(fun () ->
        [
          ("sweep", Telemetry.Jsonx.String name);
          ("task", Telemetry.Jsonx.String fingerprints.(i));
        ])
      "runner.task"
      (fun () ->
        let v = task.Task.compute (Task.rng ~seed:cfg.seed task) in
        results.(i) <- Some v;
        let encoded = task.Task.encode v in
        Option.iter (fun c -> Cache.store c ~key:task.Task.key encoded) cache;
        Option.iter
          (fun j -> Checkpoint.record j ~fingerprint:fingerprints.(i) encoded)
          journal;
        Telemetry.Metric.incr
          (Telemetry.Registry.counter registry "runner.tasks.completed");
        note_done ())
  in
  let pool = Pool.create ~registry ~workers:cfg.workers () in
  let finish () = Option.iter Checkpoint.close journal in
  let stats =
    Fun.protect ~finally:finish (fun () ->
        Telemetry.Span.with_span ~registry
          ~fields:(fun () -> [ ("sweep", Telemetry.Jsonx.String name) ])
          "runner.sweep"
          (fun () -> Pool.run pool (Array.map job pending)))
  in
  (* The pool is done — emit the sweep's audit record. *)
  Telemetry.Registry.emit registry "run_manifest" (fun () ->
      [
        ("sweep", Telemetry.Jsonx.String name);
        ("workers", Telemetry.Jsonx.Int (Pool.workers pool));
        ("tasks", Telemetry.Jsonx.Int n);
        ("computed", Telemetry.Jsonx.Int stats.Pool.jobs);
        ("cache_hits", Telemetry.Jsonx.Int !hits);
        ("resumed", Telemetry.Jsonx.Int !resumed);
        ( "cache_hit_rate",
          Telemetry.Jsonx.Float
            (if n = 0 then 0. else float_of_int served /. float_of_int n) );
        ("steals", Telemetry.Jsonx.Int stats.Pool.steals);
        ("elapsed_seconds", Telemetry.Jsonx.Float stats.Pool.elapsed);
      ]);
  Array.map
    (function
      | Some v -> v
      | None -> invalid_arg "Runner.map: task completed without a result")
    results
