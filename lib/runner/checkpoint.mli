(** Per-sweep checkpoint journal for resume-after-interrupt.

    Where the {!module:Cache} is a cross-sweep content-addressed store,
    the journal is the record of {e this} sweep's progress: one JSONL line
    per completed task, appended and flushed as each task finishes:

    {v {"task": "<fingerprint>", "value": <result>} v}

    Because every line carries the encoded result, resume needs nothing
    but the journal: a re-launched sweep prefills every recorded task and
    computes only the remainder — even with the cache disabled.  A process
    killed mid-append leaves at most one truncated final line, which
    {!load} tolerates (that task is simply recomputed).  Entries are keyed
    by content fingerprint, so editing the grid between runs is safe:
    points still in the grid resume, removed ones become dead lines.

    Replay never fails on a corrupt journal, but it does not hide the
    damage either: every line it cannot use — unparsable JSON anywhere in
    the file, or valid JSON without the [task]/[value] shape — increments
    the [runner.checkpoint.dropped_lines] telemetry counter. *)

type t

val load : ?telemetry:Telemetry.Registry.t -> string -> t
(** Open the journal at this path for appending, first replaying any
    entries an earlier (interrupted) run left there.  Dropped lines are
    counted in [runner.checkpoint.dropped_lines] on [telemetry] (default:
    the global registry). *)

val find : t -> fingerprint:string -> Telemetry.Jsonx.t option

val record : t -> fingerprint:string -> Telemetry.Jsonx.t -> unit
(** Append one completed task and flush.  Safe from pool workers. *)

val entries : t -> int
(** Entries replayed at {!load} time plus those recorded since. *)

val close : t -> unit
