type t = {
  mutex : Mutex.t;
  table : (string, Telemetry.Jsonx.t) Hashtbl.t;
  oc : out_channel;
}

let replay ?(telemetry = Telemetry.Registry.default) table path =
  let dropped =
    Telemetry.Registry.counter telemetry "runner.checkpoint.dropped_lines"
  in
  match open_in_bin path with
  | exception Sys_error _ -> ()
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            while true do
              let line = input_line ic in
              if String.trim line <> "" then
                match Telemetry.Jsonx.parse line with
                | exception Telemetry.Jsonx.Parse_error _ ->
                    (* Unparsable: a kill mid-append truncates the final
                       line, but any corrupt line lands here — count it so
                       a journal silently shrinking resume coverage is
                       observable, and let that task recompute. *)
                    Telemetry.Metric.incr dropped
                | json -> (
                    match
                      ( Telemetry.Jsonx.member "task" json,
                        Telemetry.Jsonx.member "value" json )
                    with
                    | Some (Telemetry.Jsonx.String fp), Some v ->
                        Hashtbl.replace table fp v
                    | _ ->
                        (* Valid JSON but not a journal entry. *)
                        Telemetry.Metric.incr dropped)
            done
          with End_of_file -> ())

let load ?telemetry path =
  let table = Hashtbl.create 64 in
  replay ?telemetry table path;
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
  in
  { mutex = Mutex.create (); table; oc }

let find t ~fingerprint =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> Hashtbl.find_opt t.table fingerprint)

let record t ~fingerprint value =
  let line =
    Telemetry.Jsonx.to_string
      (Telemetry.Jsonx.Obj
         [ ("task", Telemetry.Jsonx.String fingerprint); ("value", value) ])
  in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      Hashtbl.replace t.table fingerprint value;
      output_string t.oc line;
      output_char t.oc '\n';
      flush t.oc)

let entries t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> Hashtbl.length t.table)

let close t = close_out_noerr t.oc
