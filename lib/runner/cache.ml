type t = { dir : string; mutex : Mutex.t }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir dir =
  mkdir_p dir;
  { dir; mutex = Mutex.create () }

let dir t = t.dir

let path_of t ~key =
  Filename.concat t.dir (Prelude.Util.hex64 (Prelude.Util.fnv1a64 key) ^ ".json")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find t ~key =
  let path = path_of t ~key in
  match read_file path with
  | exception Sys_error _ -> None
  | contents -> (
      match Telemetry.Jsonx.parse (String.trim contents) with
      | exception Telemetry.Jsonx.Parse_error _ -> None
      | json -> (
          match Telemetry.Jsonx.member "key" json with
          | Some (Telemetry.Jsonx.String stored) when String.equal stored key ->
              Telemetry.Jsonx.member "value" json
          | _ -> None))

let store t ~key value =
  let path = path_of t ~key in
  let line =
    Telemetry.Jsonx.to_string
      (Telemetry.Jsonx.Obj
         [ ("key", Telemetry.Jsonx.String key); ("value", value) ])
  in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let tmp = path ^ ".tmp" in
      let oc = open_out_bin tmp in
      output_string oc line;
      output_char oc '\n';
      close_out oc;
      Sys.rename tmp path)

let entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> 0
  | files ->
      Array.fold_left
        (fun acc f -> if Filename.check_suffix f ".json" then acc + 1 else acc)
        0 files

type gc_stats = {
  scanned : int;
  evicted : int;
  corrupt : int;
  bytes_freed : int;
  bytes_kept : int;
}

(* A well-formed entry parses as {"key": <string>, "value": _}; anything
   else in a .json file is damage (torn write predating the tmp+rename
   scheme, disk corruption) and is always evicted. *)
let entry_ok path =
  match read_file path with
  | exception Sys_error _ -> false
  | contents -> (
      match Telemetry.Jsonx.parse (String.trim contents) with
      | exception Telemetry.Jsonx.Parse_error _ -> false
      | json -> (
          match
            (Telemetry.Jsonx.member "key" json, Telemetry.Jsonx.member "value" json)
          with
          | Some (Telemetry.Jsonx.String _), Some _ -> true
          | _ -> false))

let gc ?(telemetry = Telemetry.Registry.default) ?max_age_days ?max_bytes t =
  let evicted_c = Telemetry.Registry.counter telemetry "runner.cache.evicted" in
  let now = Unix.gettimeofday () in
  let files =
    match Sys.readdir t.dir with exception Sys_error _ -> [||] | fs -> fs
  in
  let stats =
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.filter_map (fun f ->
           let path = Filename.concat t.dir f in
           match Unix.stat path with
           | exception Unix.Unix_error _ -> None
           | st -> Some (path, st.Unix.st_mtime, st.Unix.st_size))
  in
  let scanned = List.length stats in
  let evicted = ref 0 and corrupt = ref 0 and freed = ref 0 in
  let evict (path, _, size) =
    match Sys.remove path with
    | () ->
        incr evicted;
        freed := !freed + size;
        Telemetry.Metric.incr evicted_c
    | exception Sys_error _ -> ()
  in
  let damaged, sound =
    List.partition (fun (path, _, _) -> not (entry_ok path)) stats
  in
  corrupt := List.length damaged;
  List.iter evict damaged;
  let expired, fresh =
    match max_age_days with
    | None -> ([], sound)
    | Some days ->
        List.partition
          (fun (_, mtime, _) -> now -. mtime > days *. 86_400.)
          sound
  in
  List.iter evict expired;
  (* Size budget applies to what survived: evict oldest-first until the
     remaining entries fit. *)
  let kept =
    match max_bytes with
    | None -> fresh
    | Some budget ->
        let oldest_first =
          List.sort (fun (_, a, _) (_, b, _) -> compare a b) fresh
        in
        let total =
          List.fold_left (fun acc (_, _, size) -> acc + size) 0 oldest_first
        in
        let rec trim total = function
          | entry :: rest when total > budget ->
              let _, _, size = entry in
              evict entry;
              trim (total - size) rest
          | rest -> rest
        in
        trim total oldest_first
  in
  {
    scanned;
    evicted = !evicted;
    corrupt = !corrupt;
    bytes_freed = !freed;
    bytes_kept = List.fold_left (fun acc (_, _, size) -> acc + size) 0 kept;
  }
