type t = { dir : string; mutex : Mutex.t }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir dir =
  mkdir_p dir;
  { dir; mutex = Mutex.create () }

let dir t = t.dir

let path_of t ~key =
  Filename.concat t.dir (Prelude.Util.hex64 (Prelude.Util.fnv1a64 key) ^ ".json")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find t ~key =
  let path = path_of t ~key in
  match read_file path with
  | exception Sys_error _ -> None
  | contents -> (
      match Telemetry.Jsonx.parse (String.trim contents) with
      | exception Telemetry.Jsonx.Parse_error _ -> None
      | json -> (
          match Telemetry.Jsonx.member "key" json with
          | Some (Telemetry.Jsonx.String stored) when String.equal stored key ->
              Telemetry.Jsonx.member "value" json
          | _ -> None))

let store t ~key value =
  let path = path_of t ~key in
  let line =
    Telemetry.Jsonx.to_string
      (Telemetry.Jsonx.Obj
         [ ("key", Telemetry.Jsonx.String key); ("value", value) ])
  in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let tmp = path ^ ".tmp" in
      let oc = open_out_bin tmp in
      output_string oc line;
      output_char oc '\n';
      close_out oc;
      Sys.rename tmp path)

let entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> 0
  | files ->
      Array.fold_left
        (fun acc f -> if Filename.check_suffix f ".json" then acc + 1 else acc)
        0 files
