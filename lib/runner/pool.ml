type t = {
  workers : int;
  registry : Telemetry.Registry.t;
  mutable total_jobs : int;
  mutable total_steals : int;
}

let create ?(registry = Telemetry.Registry.default) ~workers () =
  { workers = Stdlib.max 1 workers; registry; total_jobs = 0; total_steals = 0 }

let workers t = t.workers

type run_stats = {
  jobs : int;
  workers_used : int;
  steals : int;
  busy : float array;
  elapsed : float;
}

let run t jobs =
  let n = Array.length jobs in
  let nw = Stdlib.max 1 (Stdlib.min t.workers n) in
  let started = Unix.gettimeofday () in
  let busy = Array.make nw 0. in
  let steals = Array.make nw 0 in
  let failure = Atomic.make None in
  let execute w job =
    let t0 = Unix.gettimeofday () in
    (try job ()
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       ignore (Atomic.compare_and_set failure None (Some (e, bt))));
    busy.(w) <- busy.(w) +. (Unix.gettimeofday () -. t0)
  in
  if nw = 1 then
    Array.iter
      (fun job -> if Atomic.get failure = None then execute 0 job)
      jobs
  else begin
    let deques = Array.init nw (fun _ -> Deque.create ()) in
    Array.iteri (fun i job -> Deque.push_back deques.(i mod nw) job) jobs;
    let worker w () =
      let next () =
        match Deque.pop_back deques.(w) with
        | Some _ as job -> job
        | None ->
            (* Scan the other deques for a victim, starting just past us so
               thieves spread out instead of mobbing worker 0. *)
            let rec scan k =
              if k >= nw then None
              else
                match Deque.steal deques.((w + k) mod nw) with
                | Some _ as job ->
                    steals.(w) <- steals.(w) + 1;
                    job
                | None -> scan (k + 1)
            in
            scan 1
      in
      let rec loop () =
        if Atomic.get failure = None then
          match next () with
          | Some job ->
              execute w job;
              loop ()
          | None -> ()
      in
      loop ()
    in
    let domains =
      Array.init (nw - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    Array.iter Domain.join domains
  end;
  let stolen = Array.fold_left ( + ) 0 steals in
  t.total_jobs <- t.total_jobs + n;
  t.total_steals <- t.total_steals + stolen;
  Telemetry.Metric.add (Telemetry.Registry.counter t.registry "runner.pool.jobs") n;
  Telemetry.Metric.add
    (Telemetry.Registry.counter t.registry "runner.pool.steals")
    stolen;
  let busy_hist =
    Telemetry.Registry.histogram t.registry "runner.pool.worker_busy_seconds"
  in
  Array.iter (fun s -> Telemetry.Metric.observe busy_hist s) busy;
  (match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  {
    jobs = n;
    workers_used = nw;
    steals = stolen;
    busy;
    elapsed = Unix.gettimeofday () -. started;
  }

let total_jobs t = t.total_jobs

let total_steals t = t.total_steals
