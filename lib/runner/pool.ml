type t = {
  workers : int;
  registry : Telemetry.Registry.t;
  mutable total_jobs : int;
  mutable total_steals : int;
}

let create ?(registry = Telemetry.Registry.default) ~workers () =
  { workers = Stdlib.max 1 workers; registry; total_jobs = 0; total_steals = 0 }

let workers t = t.workers

type run_stats = {
  jobs : int;
  workers_used : int;
  steals : int;
  busy : float array;
  elapsed : float;
}

(* Flight-recorder names, interned once (intern takes a lock).  Worker
   spans carry (worker, job count); steal instants (thief, victim); queue
   instants (worker, local depth at job pickup); idle instants mark a
   worker running out of work to steal. *)
let recorder = Telemetry.Recorder.default
let nid_worker = Telemetry.Recorder.intern recorder "runner.pool.worker"
let nid_steal = Telemetry.Recorder.intern recorder "runner.pool.steal"
let nid_queue = Telemetry.Recorder.intern recorder "runner.pool.queue_depth"
let nid_idle = Telemetry.Recorder.intern recorder "runner.pool.idle"

let run t jobs =
  let n = Array.length jobs in
  let nw = Stdlib.max 1 (Stdlib.min t.workers n) in
  let started = Unix.gettimeofday () in
  let busy = Array.make nw 0. in
  let steals = Array.make nw 0 in
  let failure = Atomic.make None in
  let rec_on = Telemetry.Recorder.enabled recorder in
  let execute w job =
    let t0 = Unix.gettimeofday () in
    (try job ()
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       ignore (Atomic.compare_and_set failure None (Some (e, bt))));
    busy.(w) <- busy.(w) +. (Unix.gettimeofday () -. t0)
  in
  if nw = 1 then begin
    let rid = Telemetry.Recorder.begin_span recorder nid_worker 0 n in
    Array.iter
      (fun job -> if Atomic.get failure = None then execute 0 job)
      jobs;
    Telemetry.Recorder.end_span recorder nid_worker rid
  end
  else begin
    let deques = Array.init nw (fun _ -> Deque.create ()) in
    Array.iteri (fun i job -> Deque.push_back deques.(i mod nw) job) jobs;
    let worker w () =
      let rid = Telemetry.Recorder.begin_span recorder nid_worker w n in
      let next () =
        match Deque.pop_back deques.(w) with
        | Some _ as job ->
            if rec_on then
              Telemetry.Recorder.instant recorder nid_queue w
                (Deque.length deques.(w));
            job
        | None ->
            (* Scan the other deques for a victim, starting just past us so
               thieves spread out instead of mobbing worker 0. *)
            let rec scan k =
              if k >= nw then None
              else
                match Deque.steal deques.((w + k) mod nw) with
                | Some _ as job ->
                    steals.(w) <- steals.(w) + 1;
                    if rec_on then
                      Telemetry.Recorder.instant recorder nid_steal w
                        ((w + k) mod nw);
                    job
                | None -> scan (k + 1)
            in
            scan 1
      in
      let rec loop () =
        if Atomic.get failure = None then
          match next () with
          | Some job ->
              execute w job;
              loop ()
          | None -> if rec_on then Telemetry.Recorder.instant recorder nid_idle w 0
      in
      loop ();
      Telemetry.Recorder.end_span recorder nid_worker rid
    in
    let domains =
      Array.init (nw - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    Array.iter Domain.join domains
  end;
  let stolen = Array.fold_left ( + ) 0 steals in
  t.total_jobs <- t.total_jobs + n;
  t.total_steals <- t.total_steals + stolen;
  Telemetry.Metric.add (Telemetry.Registry.counter t.registry "runner.pool.jobs") n;
  Telemetry.Metric.add
    (Telemetry.Registry.counter t.registry "runner.pool.steals")
    stolen;
  let busy_hist =
    Telemetry.Registry.histogram t.registry "runner.pool.worker_busy_seconds"
  in
  Array.iter (fun s -> Telemetry.Metric.observe busy_hist s) busy;
  let elapsed = Unix.gettimeofday () -. started in
  (* Per-worker utilization gauges: busy seconds over wall seconds, one
     gauge per worker slot so stragglers are visible in the report. *)
  Array.iteri
    (fun w s ->
      Telemetry.Metric.set
        (Telemetry.Registry.gauge t.registry
           (Printf.sprintf "runner.pool.worker%d.utilization" w))
        (if elapsed > 0. then s /. elapsed else 0.))
    busy;
  (match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  { jobs = n; workers_used = nw; steals = stolen; busy; elapsed }

let total_jobs t = t.total_jobs

let total_steals t = t.total_steals
