(** Disk-backed, content-addressed result cache.

    One JSON file per task result under the cache directory, named by the
    task key's 64-bit FNV-1a fingerprint:

    {v
    _runner_cache/
      1f2e3d4c5b6a7988.json   {"key": "<full task key>", "value": <result>}
    v}

    The full key is stored inside the file and compared on lookup, so a
    fingerprint collision degrades to a miss, never to a wrong result.
    Writes go to a temp file in the same directory followed by a rename,
    so a sweep killed mid-store leaves no truncated entries.  The store is
    shared across sweeps — any task anywhere in the grid with the same
    content key reuses the entry — and safe to call from pool workers. *)

type t

val open_dir : string -> t
(** Opens (creating if needed, including parents) the cache directory. *)

val dir : t -> string

val find : t -> key:string -> Telemetry.Jsonx.t option
(** The stored value for this exact key, or [None] on a missing entry, an
    unreadable/corrupt file, or a fingerprint collision. *)

val store : t -> key:string -> Telemetry.Jsonx.t -> unit

val entries : t -> int
(** Number of entries currently on disk. *)

type gc_stats = {
  scanned : int;      (** entries examined *)
  evicted : int;      (** entries deleted (including corrupt ones) *)
  corrupt : int;      (** entries deleted because they failed to parse *)
  bytes_freed : int;
  bytes_kept : int;
}

val gc :
  ?telemetry:Telemetry.Registry.t ->
  ?max_age_days:float -> ?max_bytes:int -> t -> gc_stats
(** Collect the cache: corrupt entries are always deleted; entries whose
    mtime is older than [max_age_days] are deleted; then, if the surviving
    entries still exceed [max_bytes], the oldest are deleted until the
    rest fit.  With neither bound, only corrupt entries go.  Every
    eviction increments the ["runner.cache.evicted"] counter on
    [telemetry] (default: the global registry).  Safe to run against a
    live cache — concurrent writers use tmp+rename, so gc never sees a
    half-written entry as sound, and a deleted entry simply recomputes. *)
