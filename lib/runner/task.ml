type 'a t = {
  key : string;
  encode : 'a -> Telemetry.Jsonx.t;
  decode : Telemetry.Jsonx.t -> 'a option;
  compute : Prelude.Rng.t -> 'a;
}

let make ~key ~encode ~decode compute = { key; encode; decode; compute }

let key_of ~family fields =
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) fields
  in
  family ^ ":" ^ Telemetry.Jsonx.to_string (Telemetry.Jsonx.Obj sorted)

let fingerprint t = Prelude.Util.hex64 (Prelude.Util.fnv1a64 t.key)

let rng ~seed t = Prelude.Rng.of_key ~seed t.key

let float_array a =
  Telemetry.Jsonx.List (Array.to_list (Array.map (fun x -> Telemetry.Jsonx.Float x) a))

let to_float_array = function
  | Telemetry.Jsonx.List items ->
      let floats = List.filter_map Telemetry.Jsonx.to_float_opt items in
      if List.length floats = List.length items then
        Some (Array.of_list floats)
      else None
  | _ -> None

let int_field name json =
  match Telemetry.Jsonx.member name json with
  | Some (Telemetry.Jsonx.Int i) -> Some i
  | _ -> None

let float_field name json =
  Option.bind (Telemetry.Jsonx.member name json) Telemetry.Jsonx.to_float_opt
