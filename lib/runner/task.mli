(** One experiment point: a pure computation plus the identity that makes
    it cacheable and deterministically seedable.

    The contract a task must honour for the runner's guarantees to hold:

    - {b Purity}: [compute] depends only on its captured parameters and
      the RNG it is handed — no ambient mutable state, no wall clock.
    - {b Key completeness}: [key] encodes {e every} parameter that can
      change the result.  Two tasks with equal keys are interchangeable;
      the cache will happily serve one's result for the other.
    - {b Codec fidelity}: [decode (encode v)] must reproduce [v] exactly
      ({!Telemetry.Jsonx} renders floats so they round-trip bit-for-bit),
      so a cache hit is byte-identical to recomputation.

    The RNG handed to [compute] is derived from the sweep seed and the
    task key alone ({!Prelude.Rng.of_key}), never from a shared stream —
    the reason a [-j 8] sweep is bit-identical to a serial one. *)

type 'a t = {
  key : string;
  encode : 'a -> Telemetry.Jsonx.t;
  decode : Telemetry.Jsonx.t -> 'a option;
  compute : Prelude.Rng.t -> 'a;
}

val make :
  key:string ->
  encode:('a -> Telemetry.Jsonx.t) ->
  decode:(Telemetry.Jsonx.t -> 'a option) ->
  (Prelude.Rng.t -> 'a) ->
  'a t

val key_of : family:string -> (string * Telemetry.Jsonx.t) list -> string
(** Canonical content key: [family] followed by the fields as one compact
    JSON object with the fields sorted by name, so keys are insensitive to
    the order call sites list parameters in. *)

val fingerprint : 'a t -> string
(** 16-hex-digit FNV-1a of the key — the cache file name and the
    checkpoint journal's task identifier. *)

val rng : seed:int -> 'a t -> Prelude.Rng.t
(** The task's private RNG stream for sweep seed [seed]. *)

(** {2 Codec helpers} — common encodings for task results. *)

val float_array : float array -> Telemetry.Jsonx.t

val to_float_array : Telemetry.Jsonx.t -> float array option

val int_field : string -> Telemetry.Jsonx.t -> int option

val float_field : string -> Telemetry.Jsonx.t -> float option
