type 'a t = {
  mutex : Mutex.t;
  mutable buf : 'a option array;  (* circular; [None] = unoccupied slot *)
  mutable head : int;             (* index of the front element *)
  mutable len : int;
}

let create () = { mutex = Mutex.create (); buf = Array.make 16 None; head = 0; len = 0 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) None in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- buf;
  t.head <- 0

let push_back t x =
  locked t (fun () ->
      if t.len = Array.length t.buf then grow t;
      t.buf.((t.head + t.len) mod Array.length t.buf) <- Some x;
      t.len <- t.len + 1)

let pop_back t =
  locked t (fun () ->
      if t.len = 0 then None
      else begin
        let i = (t.head + t.len - 1) mod Array.length t.buf in
        let x = t.buf.(i) in
        t.buf.(i) <- None;
        t.len <- t.len - 1;
        x
      end)

let steal t =
  locked t (fun () ->
      if t.len = 0 then None
      else begin
        let x = t.buf.(t.head) in
        t.buf.(t.head) <- None;
        t.head <- (t.head + 1) mod Array.length t.buf;
        t.len <- t.len - 1;
        x
      end)

let length t = locked t (fun () -> t.len)
