(** A mutex-protected work-stealing deque.

    Each pool worker owns one deque: the owner pushes and pops at the back
    (LIFO, keeping its working set warm), thieves take from the front
    (FIFO, stealing the oldest — and for grid sweeps typically the
    largest-remaining — work).  A single mutex per deque is plenty here:
    tasks are milliseconds-scale experiment points, so the lock is touched
    a few hundred times a second, far from contention. *)

type 'a t

val create : unit -> 'a t

val push_back : 'a t -> 'a -> unit

val pop_back : 'a t -> 'a option
(** Owner end; [None] when empty. *)

val steal : 'a t -> 'a option
(** Thief end; [None] when empty. *)

val length : 'a t -> int
