(* Tests for root finding, fixed-point iteration and 1-D optimisation. *)

open Numerics

let check_close ?(eps = 1e-9) msg expected actual =
  if not (Prelude.Util.approx_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* {1 Roots} *)

let test_bisect_linear () =
  check_close "root of x-3" 3. (Roots.bisect (fun x -> x -. 3.) 0. 10.)

let test_bisect_endpoint_root () =
  check_close "root at lower endpoint" 2. (Roots.bisect (fun x -> x -. 2.) 2. 5.);
  check_close "root at upper endpoint" 5. (Roots.bisect (fun x -> x -. 5.) 2. 5.)

let test_bisect_no_bracket () =
  Alcotest.check_raises "same sign" Roots.No_bracket (fun () ->
      ignore (Roots.bisect (fun x -> (x *. x) +. 1.) (-1.) 1.))

let test_bisect_decreasing () =
  check_close "decreasing function" 2. (Roots.bisect (fun x -> 4. -. (x *. x)) 0. 10.)

let test_brent_polynomial () =
  check_close "cube root of 2" (Float.cbrt 2.)
    (Roots.brent (fun x -> (x ** 3.) -. 2.) 0. 2.)

let test_brent_transcendental () =
  (* cos x = x has the Dottie number as root. *)
  check_close ~eps:1e-10 "dottie number" 0.7390851332151607
    (Roots.brent (fun x -> cos x -. x) 0. 1.)

let test_brent_no_bracket () =
  Alcotest.check_raises "same sign" Roots.No_bracket (fun () ->
      ignore (Roots.brent (fun x -> x +. 10.) 0. 1.))

let test_brent_matches_bisect =
  QCheck.Test.make ~name:"brent agrees with bisect on monotone cubics" ~count:100
    QCheck.(float_range (-5.) 5.)
    (fun shift ->
      let f x = (x *. x *. x) +. x -. shift in
      let b = Roots.bisect f (-10.) 10. and br = Roots.brent f (-10.) 10. in
      Prelude.Util.approx_equal ~eps:1e-6 b br)

let test_find_bracket () =
  match Roots.find_bracket (fun x -> x -. 100.) 0. 1. with
  | Some (lo, hi) ->
      Alcotest.(check bool) "brackets the root" true (lo <= 100. && hi >= 100.)
  | None -> Alcotest.fail "expected a bracket"

let test_find_bracket_failure () =
  Alcotest.(check bool) "positive function never brackets" true
    (Roots.find_bracket (fun _ -> 1.) 0. 1. = None)

(* {1 Fixed_point} *)

let test_fixed_point_cosine () =
  let x = Fixed_point.solve_scalar cos 1. in
  check_close ~eps:1e-9 "cos fixed point" 0.7390851332151607 x

let test_fixed_point_vector () =
  (* x = (y+1)/2, y = x/2 has solution x = 2/3, y = 1/3. *)
  let f v = [| (v.(1) +. 1.) /. 2.; v.(0) /. 2. |] in
  let outcome = Fixed_point.solve f [| 0.; 0. |] in
  Alcotest.(check bool) "converged" true outcome.converged;
  check_close "x" (2. /. 3.) outcome.value.(0);
  check_close "y" (1. /. 3.) outcome.value.(1)

let test_fixed_point_respects_max_iter () =
  (* x ← x+1 never converges. *)
  let outcome = Fixed_point.solve ~max_iter:50 (fun v -> [| v.(0) +. 1. |]) [| 0. |] in
  Alcotest.(check bool) "reports divergence" false outcome.converged;
  Alcotest.(check int) "stopped at cap" 50 outcome.iterations

let test_fixed_point_damping_validation () =
  Alcotest.check_raises "zero damping"
    (Invalid_argument "Fixed_point.solve: damping must be in (0, 1]") (fun () ->
      ignore (Fixed_point.solve ~damping:0. Fun.id [| 1. |]))

let test_fixed_point_preserves_input () =
  let x0 = [| 1.; 2. |] in
  let _ = Fixed_point.solve (fun v -> Array.map (fun x -> x /. 2.) v) x0 in
  Alcotest.(check (array (float 0.))) "input unmutated" [| 1.; 2. |] x0

let test_fixed_point_tolerance_is_undamped () =
  (* Regression: convergence is judged on the undamped defect |f(x) − x|.
     The old code tested the damped step, so at the default damping 0.5 a
     map drifting by 1.5e-12 per iteration — above tol — converged anyway
     (step 0.75e-12 ≤ 1e-12).  It must now run to the cap. *)
  let drift d = fun v -> [| v.(0) +. d |] in
  let outcome =
    Fixed_point.solve ~tol:1e-12 ~max_iter:200 (drift 1.5e-12) [| 0. |]
  in
  Alcotest.(check bool) "drift above tol never converges" false
    outcome.converged;
  Alcotest.(check int) "ran to the cap" 200 outcome.iterations;
  (* And a defect genuinely below tol converges immediately, returning the
     current iterate unstepped. *)
  let outcome =
    Fixed_point.solve ~tol:1e-12 ~max_iter:200 (drift 9e-13) [| 0. |]
  in
  Alcotest.(check bool) "defect below tol converges" true outcome.converged;
  Alcotest.(check int) "at the first test" 1 outcome.iterations;
  Alcotest.(check (float 0.)) "value left unstepped" 0. outcome.value.(0)

let test_fixed_point_nonfinite_is_failure () =
  let outcome = Fixed_point.solve (fun _ -> [| Float.nan |]) [| 0.5 |] in
  Alcotest.(check bool) "NaN map reports non-convergence" false
    outcome.converged;
  Alcotest.(check bool) "residual is non-finite" false
    (Float.is_finite outcome.residual)

let test_fixed_point_full_damping_is_picard =
  QCheck.Test.make ~name:"damping=1 solves affine contractions exactly" ~count:100
    QCheck.(pair (float_range (-0.9) 0.9) (float_range (-10.) 10.))
    (fun (a, b) ->
      (* x = a·x + b has fixed point b/(1−a). *)
      let outcome =
        Fixed_point.solve ~damping:1. (fun v -> [| (a *. v.(0)) +. b |]) [| 0. |]
      in
      outcome.converged
      && Prelude.Util.approx_equal ~eps:1e-6 (b /. (1. -. a)) outcome.value.(0))

(* {1 Newton} *)

let test_gauss_solve () =
  (* 2x + y = 3, x + 3y = 5 has solution (0.8, 1.4). *)
  match Newton.gauss_solve [| [| 2.; 1. |]; [| 1.; 3. |] |] [| 3.; 5. |] with
  | Some x ->
      check_close "x" 0.8 x.(0);
      check_close "y" 1.4 x.(1)
  | None -> Alcotest.fail "regular system must solve"

let test_gauss_solve_singular () =
  Alcotest.(check bool) "singular system refused" true
    (Newton.gauss_solve [| [| 1.; 2. |]; [| 2.; 4. |] |] [| 1.; 1. |] = None)

let test_newton_affine_one_step () =
  (* f(x) = A·x + b is exactly linear, so the first accepted Newton step
     lands on the fixed point (I − A)⁻¹·b. *)
  let a = [| [| 0.5; 0.2 |]; [| 0.1; 0.3 |] |] in
  let f v =
    Array.init 2 (fun r -> (a.(r).(0) *. v.(0)) +. (a.(r).(1) *. v.(1)) +. 1.)
  in
  let outcome =
    Newton.solve ~step:(Newton.dense_step ~jacobian:(fun _ -> a)) f [| 0.; 0. |]
  in
  Alcotest.(check bool) "converged" true outcome.converged;
  Alcotest.(check int) "one accepted Newton step" 1 outcome.newton_steps;
  Alcotest.(check int) "no fallbacks" 0 outcome.fallback_steps;
  (* (I − A)⁻¹·b with b = (1, 1): det(I − A) = 0.33. *)
  check_close "x" (0.9 /. 0.33) outcome.value.(0);
  check_close "y" (0.6 /. 0.33) outcome.value.(1)

let test_newton_fallback_is_damped_picard () =
  (* A step closure that always refuses degrades the solve to the damped
     Picard iteration — same answer, zero accepted Newton steps. *)
  let f v = [| cos v.(0) |] in
  let newton = Newton.solve ~step:(fun _ _ -> None) f [| 1. |] in
  let picard = Fixed_point.solve f [| 1. |] in
  Alcotest.(check bool) "converged" true newton.converged;
  Alcotest.(check int) "no Newton steps" 0 newton.newton_steps;
  Alcotest.(check bool) "every iteration fell back" true
    (newton.fallback_steps > 0);
  check_close ~eps:1e-10 "agrees with Fixed_point" picard.value.(0)
    newton.value.(0)

let test_newton_beats_picard_on_cosine () =
  let f v = [| cos v.(0) |] in
  let jacobian v = [| [| -.sin v.(0) |] |] in
  let newton = Newton.solve ~step:(Newton.dense_step ~jacobian) f [| 1. |] in
  let picard = Fixed_point.solve f [| 1. |] in
  Alcotest.(check bool) "converged" true (newton.converged && picard.converged);
  check_close ~eps:1e-10 "dottie number" 0.7390851332151607 newton.value.(0);
  Alcotest.(check bool)
    (Printf.sprintf "newton %d iters < picard %d" newton.iterations
       picard.iterations)
    true
    (newton.iterations < picard.iterations)

let test_newton_respects_max_iter () =
  let outcome =
    Newton.solve ~max_iter:5
      ~step:(fun _ _ -> None)
      (fun v -> [| v.(0) +. 1. |])
      [| 0. |]
  in
  Alcotest.(check bool) "reports divergence" false outcome.converged;
  Alcotest.(check int) "stopped at cap" 5 outcome.iterations

let test_newton_clamps_iterates () =
  (* A map drifting below the box: iterates pin at lo and the solve ends
     non-converged rather than wandering out of the feasible region. *)
  let outcome =
    Newton.solve ~lo:0. ~hi:1. ~max_iter:20
      ~step:(fun _ _ -> None)
      (fun v -> [| v.(0) -. 1. |])
      [| 0.5 |]
  in
  Alcotest.(check bool) "non-converged" false outcome.converged;
  Alcotest.(check (float 0.)) "pinned at the box floor" 0. outcome.value.(0)

(* {1 Optimize} *)

let test_golden_section () =
  let x, v = Optimize.golden_section_max (fun x -> -.((x -. 2.) ** 2.)) 0. 10. in
  check_close ~eps:1e-6 "argmax" 2. x;
  check_close ~eps:1e-6 "max value" 0. v

let test_golden_section_boundary_max () =
  let x, _ = Optimize.golden_section_max Fun.id 0. 5. in
  check_close ~eps:1e-6 "monotone function maxes at boundary" 5. x

let test_exhaustive_int_max () =
  let w, v = Optimize.exhaustive_int_max (fun x -> float_of_int (-(x - 7) * (x - 7))) 0 20 in
  Alcotest.(check int) "argmax" 7 w;
  check_close "value" 0. v;
  Alcotest.check_raises "empty range"
    (Invalid_argument "Optimize.exhaustive_int_max: empty range") (fun () ->
      ignore (Optimize.exhaustive_int_max float_of_int 5 4))

let test_exhaustive_ties_take_smallest () =
  let w, _ = Optimize.exhaustive_int_max (fun _ -> 1.) 3 9 in
  Alcotest.(check int) "first of ties" 3 w

let test_ternary_int_max_unimodal () =
  let f x = -.Float.abs (float_of_int x -. 123.) in
  let w, v = Optimize.ternary_int_max f 1 1000 in
  Alcotest.(check int) "argmax" 123 w;
  check_close "value" 0. v

let test_ternary_int_max_small_ranges () =
  List.iter
    (fun (lo, hi) ->
      let f x = float_of_int (-(x * x) + (6 * x)) in
      let expected, _ = Optimize.exhaustive_int_max f lo hi in
      let got, _ = Optimize.ternary_int_max f lo hi in
      Alcotest.(check int) (Printf.sprintf "range [%d,%d]" lo hi) expected got)
    [ (0, 0); (0, 1); (0, 2); (0, 3); (2, 4); (3, 3); (0, 10) ]

let test_ternary_matches_exhaustive =
  QCheck.Test.make ~name:"ternary = exhaustive on unimodal integer curves"
    ~count:200
    QCheck.(pair (int_range 0 500) (int_range 1 400))
    (fun (peak, half_range) ->
      let lo = peak - half_range and hi = peak + half_range in
      let f x = -.((float_of_int (x - peak)) ** 2.) in
      let we, _ = Optimize.exhaustive_int_max f lo hi in
      let wt, _ = Optimize.ternary_int_max f lo hi in
      we = wt)

let test_hill_climb () =
  let f x = -.((float_of_int x -. 42.) ** 2.) in
  let w, _ = Optimize.hill_climb_int_max ~start:10 f 1 100 in
  Alcotest.(check int) "climbs to the peak" 42 w;
  let w_from_right, _ = Optimize.hill_climb_int_max ~start:99 f 1 100 in
  Alcotest.(check int) "from the right too" 42 w_from_right

let test_hill_climb_start_validation () =
  Alcotest.check_raises "start outside range"
    (Invalid_argument "Optimize.hill_climb_int_max: start out of range") (fun () ->
      ignore (Optimize.hill_climb_int_max ~start:0 float_of_int 1 10))

let test_hill_climb_plateau_terminates () =
  (* Flat function: must stop immediately rather than wander. *)
  let w, v = Optimize.hill_climb_int_max ~start:5 (fun _ -> 1.) 1 10 in
  Alcotest.(check int) "stays put on plateau" 5 w;
  check_close "plateau value" 1. v

let test_memoization_counts_calls () =
  let calls = ref 0 in
  let f x =
    incr calls;
    -.((float_of_int x -. 50.) ** 2.)
  in
  let _ = Optimize.ternary_int_max f 1 1000 in
  Alcotest.(check bool)
    (Printf.sprintf "O(log) evaluations, got %d" !calls)
    true (!calls < 60)

let suite_roots =
  [
    Alcotest.test_case "bisect linear" `Quick test_bisect_linear;
    Alcotest.test_case "bisect endpoint roots" `Quick test_bisect_endpoint_root;
    Alcotest.test_case "bisect no bracket" `Quick test_bisect_no_bracket;
    Alcotest.test_case "bisect decreasing" `Quick test_bisect_decreasing;
    Alcotest.test_case "brent polynomial" `Quick test_brent_polynomial;
    Alcotest.test_case "brent transcendental" `Quick test_brent_transcendental;
    Alcotest.test_case "brent no bracket" `Quick test_brent_no_bracket;
    QCheck_alcotest.to_alcotest test_brent_matches_bisect;
    Alcotest.test_case "find_bracket grows" `Quick test_find_bracket;
    Alcotest.test_case "find_bracket gives up" `Quick test_find_bracket_failure;
  ]

let suite_fixed_point =
  [
    Alcotest.test_case "scalar cosine" `Quick test_fixed_point_cosine;
    Alcotest.test_case "vector affine" `Quick test_fixed_point_vector;
    Alcotest.test_case "max_iter cap" `Quick test_fixed_point_respects_max_iter;
    Alcotest.test_case "damping validation" `Quick test_fixed_point_damping_validation;
    Alcotest.test_case "input preserved" `Quick test_fixed_point_preserves_input;
    Alcotest.test_case "tolerance is undamped" `Quick
      test_fixed_point_tolerance_is_undamped;
    Alcotest.test_case "non-finite map fails" `Quick
      test_fixed_point_nonfinite_is_failure;
    QCheck_alcotest.to_alcotest test_fixed_point_full_damping_is_picard;
  ]

let suite_newton =
  [
    Alcotest.test_case "gauss solve" `Quick test_gauss_solve;
    Alcotest.test_case "gauss singular" `Quick test_gauss_solve_singular;
    Alcotest.test_case "affine one step" `Quick test_newton_affine_one_step;
    Alcotest.test_case "fallback is damped picard" `Quick
      test_newton_fallback_is_damped_picard;
    Alcotest.test_case "beats picard on cosine" `Quick
      test_newton_beats_picard_on_cosine;
    Alcotest.test_case "max_iter cap" `Quick test_newton_respects_max_iter;
    Alcotest.test_case "clamp box" `Quick test_newton_clamps_iterates;
  ]

let suite_optimize =
  [
    Alcotest.test_case "golden section quadratic" `Quick test_golden_section;
    Alcotest.test_case "golden section boundary" `Quick test_golden_section_boundary_max;
    Alcotest.test_case "exhaustive max" `Quick test_exhaustive_int_max;
    Alcotest.test_case "exhaustive tie-breaking" `Quick test_exhaustive_ties_take_smallest;
    Alcotest.test_case "ternary unimodal" `Quick test_ternary_int_max_unimodal;
    Alcotest.test_case "ternary small ranges" `Quick test_ternary_int_max_small_ranges;
    QCheck_alcotest.to_alcotest test_ternary_matches_exhaustive;
    Alcotest.test_case "hill climb" `Quick test_hill_climb;
    Alcotest.test_case "hill climb validation" `Quick test_hill_climb_start_validation;
    Alcotest.test_case "hill climb plateau" `Quick test_hill_climb_plateau_terminates;
    Alcotest.test_case "ternary memoises" `Quick test_memoization_counts_calls;
  ]

let () =
  Alcotest.run "numerics"
    [
      ("roots", suite_roots);
      ("fixed_point", suite_fixed_point);
      ("newton", suite_newton);
      ("optimize", suite_optimize);
    ]
