(* The multi-knob (CW, AIFS, TXOP, rate) strategy space: record semantics
   and canonicalization (qcheck), the widened analytic model, the
   coordinate-descent NE search, the oracle's v2 store schema (with v1
   refusal), the AIFS/TXOP deviation detectors with pinned CW-detection
   rates, and the simulators' strategy support including event-vs-
   reference equivalence off the degenerate subspace. *)

module J = Telemetry.Jsonx
module S = Dcf.Strategy_space

let params = Dcf.Params.default

let temp_dir () =
  let path = Filename.temp_file "strategy_test" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.12g vs %.12g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= eps *. Float.max 1. (Float.abs expected))

(* {1 Record semantics} *)

let test_degenerate_and_validate () =
  Alcotest.(check bool) "of_cw degenerate" true (S.is_degenerate (S.of_cw 16));
  Alcotest.(check bool) "aifs not degenerate" false
    (S.is_degenerate { (S.of_cw 16) with aifs = 1 });
  Alcotest.(check bool) "txop not degenerate" false
    (S.is_degenerate { (S.of_cw 16) with txop_frames = 2 });
  Alcotest.(check bool) "rate not degenerate" false
    (S.is_degenerate { (S.of_cw 16) with rate = 2.0 });
  let bad s = match S.validate s with Ok () -> false | Error _ -> true in
  Alcotest.(check bool) "cw 0 invalid" true (bad { (S.of_cw 1) with cw = 0 });
  Alcotest.(check bool) "aifs -1 invalid" true (bad { (S.of_cw 1) with aifs = -1 });
  Alcotest.(check bool) "txop 0 invalid" true
    (bad { (S.of_cw 1) with txop_frames = 0 });
  Alcotest.(check bool) "rate 0 invalid" true (bad { (S.of_cw 1) with rate = 0. });
  Alcotest.(check bool) "cap enforced" true
    (match S.validate ~cw_max:64 (S.of_cw 128) with
    | Error _ -> true
    | Ok () -> false)

let test_keys_and_order () =
  Alcotest.(check string) "degenerate key" "w16" (S.to_key (S.of_cw 16));
  Alcotest.(check string)
    "full key" "w32.a2.t3.r0x1p-1"
    (S.to_key { S.cw = 32; aifs = 2; txop_frames = 3; rate = 0.5 });
  (* Lexicographic (cw, aifs, txop, rate) total order. *)
  let a = S.of_cw 16 and b = S.of_cw 32 in
  Alcotest.(check bool) "cw first" true (S.compare a b < 0);
  Alcotest.(check bool) "aifs second" true
    (S.compare a { a with aifs = 1 } < 0);
  Alcotest.(check bool) "equal reflexive" true (S.equal a (S.of_cw 16))

let test_times_passthrough () =
  let base = Dcf.Timing.of_params params in
  let t = S.times params ~base (S.of_cw 64) in
  Alcotest.(check bool) "degenerate ts passthrough" true
    (Int64.bits_of_float t.ts = Int64.bits_of_float base.ts);
  Alcotest.(check bool) "degenerate tc passthrough" true
    (Int64.bits_of_float t.tc = Int64.bits_of_float base.tc);
  (* A 2-frame TXOP holds the channel longer than one frame but less than
     two independent accesses (SIFS-separated continuation beats a full
     DIFS + preamble cycle). *)
  let t2 = S.times params ~base { (S.of_cw 64) with txop_frames = 2 } in
  Alcotest.(check bool) "burst longer than one frame" true (t2.ts > base.ts);
  Alcotest.(check bool) "burst amortizes overhead" true
    (t2.ts < 2. *. base.ts);
  (* Doubling the PHY rate halves the payload airtime only. *)
  let tr = S.times params ~base { (S.of_cw 64) with rate = 2.0 } in
  Alcotest.(check bool) "rate shortens frames" true (tr.ts < base.ts)

let test_space_membership () =
  let sp = S.edca_space ~aifs_max:2 ~txop_max:2 ~cw_max:256 () in
  Alcotest.(check bool) "member" true
    (S.mem sp { S.cw = 16; aifs = 2; txop_frames = 1; rate = 1.0 });
  Alcotest.(check bool) "aifs above cap" false
    (S.mem sp { S.cw = 16; aifs = 3; txop_frames = 1; rate = 1.0 });
  Alcotest.(check bool) "rate not offered" false
    (S.mem sp { S.cw = 16; aifs = 0; txop_frames = 1; rate = 0.5 });
  Alcotest.(check bool) "rates must include 1" true
    (match
       S.space_validate
         { sp with rates = [| 0.5 |] }
     with
    | Error _ -> true
    | Ok () -> false)

(* {1 Canonicalization (qcheck, satellite: codec + permutation + pins)} *)

let strategy_gen =
  QCheck.map
    (fun (cw, aifs, txop, ri) ->
      { S.cw; aifs; txop_frames = txop; rate = [| 0.5; 1.0; 2.0 |].(ri) })
    QCheck.(
      quad (int_range 1 1024) (int_range 0 4) (int_range 1 4) (int_range 0 2))

let test_codec_roundtrip =
  QCheck.Test.make ~name:"strategy json codec round-trips" ~count:300
    strategy_gen (fun s ->
      match S.of_json (S.to_json s) with
      | Ok s' -> S.equal s s'
      | Error _ -> false)

let test_degenerate_wire_shorthand =
  QCheck.Test.make ~name:"degenerate strategies encode as bare ints"
    ~count:100
    QCheck.(int_range 1 4096)
    (fun w -> S.to_json (S.of_cw w) = J.Int w)

let test_profile_permutation_invariance =
  QCheck.Test.make ~name:"profile canonical/key/fingerprint permutation-invariant"
    ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 8) strategy_gen) (int_range 0 1000))
    (fun (strategies, salt) ->
      let p = Array.of_list strategies in
      let q = Array.copy p in
      (* Fisher-Yates with a deterministic seed per case. *)
      let rng = Prelude.Rng.create salt in
      for i = Array.length q - 1 downto 1 do
        let j = Prelude.Rng.int rng (i + 1) in
        let t = q.(i) in
        q.(i) <- q.(j);
        q.(j) <- t
      done;
      Macgame.Profile.equal
        (Macgame.Profile.canonical p)
        (Macgame.Profile.canonical q)
      && Macgame.Profile.key p = Macgame.Profile.key q
      && Int64.equal (Macgame.Profile.fingerprint p)
           (Macgame.Profile.fingerprint q))

let test_fingerprint_pins () =
  (* Pinned FNV-1a values: store keys derive from these, so an accidental
     change to the hash or the key rendering silently orphans every
     persisted row.  If a change here is intentional it must come with a
     store schema bump. *)
  Alcotest.(check bool) "of_cw 16" true
    (Int64.equal 0x5f51a519490857a9L (S.fingerprint (S.of_cw 16)));
  Alcotest.(check bool) "multi-knob" true
    (Int64.equal 0x551c74fc8def9f2cL
       (S.fingerprint { S.cw = 32; aifs = 2; txop_frames = 3; rate = 0.5 }));
  Alcotest.(check bool) "profile" true
    (Int64.equal 0xc0592f6c0c42371eL
       (Macgame.Profile.fingerprint (Macgame.Profile.of_cws [| 76; 16; 76; 32 |])))

(* {1 The widened analytic model} *)

let test_model_degenerate_bit_identity () =
  let cws = [| 16; 64; 64 |] in
  let legacy = Dcf.Model.solve_profile params cws in
  let multi = Dcf.Model.solve_strategies params (Array.map S.of_cw cws) in
  Array.iteri
    (fun i tau ->
      Alcotest.(check bool) (Printf.sprintf "tau %d" i) true
        (Int64.bits_of_float tau = Int64.bits_of_float multi.taus.(i));
      Alcotest.(check bool) (Printf.sprintf "utility %d" i) true
        (Int64.bits_of_float legacy.utilities.(i)
        = Int64.bits_of_float multi.utilities.(i)))
    legacy.taus

let test_model_aifs_asymmetry () =
  (* Everyone on (w=128, aifs=2) except a deviant at aifs=0: skipping the
     defer slots wins channel share — the EDCA priority effect. *)
  let honest = { (S.of_cw 128) with aifs = 2 } in
  let strategies = Array.make 5 honest in
  strategies.(0) <- S.of_cw 128;
  let v = Dcf.Model.solve_strategies params strategies in
  Alcotest.(check bool) "deviant tau higher" true (v.taus.(0) > v.taus.(1));
  Alcotest.(check bool) "deviant utility higher" true
    (v.utilities.(0) > v.utilities.(1));
  (* And honest nodes do worse than in the all-honest profile. *)
  let all_honest = Dcf.Model.solve_strategies params (Array.make 5 honest) in
  Alcotest.(check bool) "honest hurt by deviant" true
    (v.utilities.(1) < all_honest.utilities.(1))

let test_model_txop_gain () =
  let strategies = Array.make 5 (S.of_cw 128) in
  strategies.(0) <- { (S.of_cw 128) with txop_frames = 3 };
  let v = Dcf.Model.solve_strategies params strategies in
  Alcotest.(check bool) "burster goodput higher" true
    (v.goodputs.(0) > v.goodputs.(1));
  Alcotest.(check bool) "burster utility higher" true
    (v.utilities.(0) > v.utilities.(1))

(* {1 Coordinate-descent NE search} *)

let test_best_response_in_space () =
  let oracle = Macgame.Oracle.analytic params in
  let space = S.edca_space ~aifs_max:2 ~txop_max:2 ~cw_max:512 () in
  let profile = Macgame.Profile.uniform ~n:3 ~w:64 in
  let br =
    Macgame.Search.best_response_strategy oracle ~space ~profile ~player:0
  in
  Alcotest.(check bool) "response in space" true (S.mem space br);
  let u s =
    let p = Array.copy profile in
    p.(0) <- s;
    (Macgame.Oracle.payoffs_profile oracle p).(0)
  in
  Alcotest.(check bool) "improves on status quo" true
    (u br >= u profile.(0));
  (* No single-knob improvement left at the fixed point. *)
  List.iter
    (fun s' ->
      if S.mem space s' then
        Alcotest.(check bool) "coordinate-wise optimal" true
          (u s' <= u br +. 1e-12))
    [
      { br with S.cw = Stdlib.max 1 (br.S.cw - 1) };
      { br with S.cw = Stdlib.min 512 (br.S.cw + 1) };
      { br with S.aifs = (br.S.aifs + 1) mod 3 };
      { br with S.txop_frames = 1 + (br.S.txop_frames mod 2) };
    ]

let test_ne_search_capture () =
  (* Banchs-style outcome on (CW, AIFS): the one-shot game converges to
     an asymmetric capture equilibrium — one player at cw_min, the rest
     backed off to silence (also pinned as a paper anchor). *)
  let oracle = Macgame.Oracle.analytic params in
  let space =
    S.edca_space ~aifs_max:2 ~txop_max:1 ~cw_max:params.Dcf.Params.cw_max ()
  in
  let out =
    Macgame.Search.ne_search oracle ~space
      ~initial:(Macgame.Profile.uniform ~n:3 ~w:32)
  in
  Alcotest.(check bool) "converged" true out.converged;
  let captors =
    Array.fold_left
      (fun acc (s : S.t) -> if s.cw = space.cw_min then acc + 1 else acc)
      0 out.equilibrium
  in
  Alcotest.(check int) "exactly one captor" 1 captors;
  Alcotest.(check bool) "losers retreat" true
    (Array.exists (fun (s : S.t) -> s.cw = space.cw_max) out.equilibrium)

let test_ne_search_degenerate_space () =
  (* On the CW-only space the search must stay inside the degenerate
     subspace — no knob invents itself. *)
  let oracle = Macgame.Oracle.analytic params in
  let space = S.cw_only_space ~cw_max:256 in
  let out =
    Macgame.Search.ne_search oracle ~space
      ~initial:(Macgame.Profile.uniform ~n:2 ~w:64)
  in
  Alcotest.(check bool) "profile degenerate" true
    (Macgame.Profile.is_degenerate out.equilibrium)

(* {1 Oracle store: v2 schema, v1 refusal (satellite)} *)

let test_store_keys_are_v2 () =
  let dir = temp_dir () in
  Store.with_store dir (fun store ->
      let oracle = Macgame.Oracle.create ~store params in
      ignore (Macgame.Oracle.payoff_uniform oracle ~n:3 ~w:32);
      ignore
        (Macgame.Oracle.payoffs_profile oracle
           (Macgame.Profile.with_deviant_strategy ~n:3 ~w:64
              ~dev:{ (S.of_cw 16) with aifs = 1 })));
  Store.with_store dir (fun store ->
      let total = ref 0 in
      Store.iter store (fun ~key _ ->
          incr total;
          Alcotest.(check bool)
            (Printf.sprintf "key %s carries v2 prefix" key)
            true
            (String.length key >= 10 && String.sub key 0 10 = "oracle|v2|"));
      Alcotest.(check bool) "rows persisted" true (!total >= 2))

let test_store_v1_refused () =
  let dir = temp_dir () in
  Store.with_store dir (fun store ->
      (* A healthy v2 row plus a legacy v1 row: the mixed store must be
         refused loudly, not silently reinterpreted. *)
      let oracle = Macgame.Oracle.create ~store params in
      ignore (Macgame.Oracle.payoff_uniform oracle ~n:3 ~w:32);
      Store.put store ~key:"oracle|v1|params=deadbeef|uniform|n=3|w=32"
        (J.Obj [ ("u", J.Float 1.) ]));
  Store.with_store dir (fun store ->
      match Macgame.Oracle.create ~store params with
      | _ -> Alcotest.fail "v1 row accepted"
      | exception Store.Corrupt msg ->
          Alcotest.(check bool) "refusal names the v1 schema" true
            (let has needle =
               let nh = String.length msg and nn = String.length needle in
               let rec go i =
                 i + nn <= nh && (String.sub msg i nn = needle || go (i + 1))
               in
               go 0
             in
             has "v1" && has "oracle|v2"))

(* {1 Deviation detection (satellite: pinned CW rates + AIFS/TXOP)} *)

let test_cw_detection_rates_pinned () =
  (* Fixed seed matrix: the empirical backoff-counting detector at
     w_exp = 64, beta = 0.9, 20 samples, 2000 trials, seed 7.  Exact
     values — the estimator consumes a deterministic RNG stream, so any
     drift here is a behaviour change in the estimator or the RNG. *)
  List.iter
    (fun (w_true, expected) ->
      let rng = Prelude.Rng.create 7 in
      let r =
        Macgame.Detection.empirical_rates ~rng ~trials:2000 ~w_true ~w_exp:64
          ~samples:20 ~beta:0.9
      in
      check_close ~eps:1e-12 (Printf.sprintf "w_true=%d" w_true) expected r)
    [ (16, 1.); (32, 1.); (48, 0.9415); (64, 0.2135) ];
  (* And the closed forms stay within Monte-Carlo distance of them. *)
  List.iter
    (fun w_true ->
      let rng = Prelude.Rng.create 7 in
      let emp =
        Macgame.Detection.empirical_rates ~rng ~trials:2000 ~w_true ~w_exp:64
          ~samples:20 ~beta:0.9
      in
      let closed =
        Macgame.Detection.detection_rate ~w_true ~w_exp:64 ~samples:20
          ~beta:0.9
      in
      Alcotest.(check bool)
        (Printf.sprintf "closed form near empirical, w_true=%d" w_true)
        true
        (Float.abs (emp -. closed) < 0.04))
    [ 16; 32; 48; 64 ]

let test_aifs_detection () =
  (* The AIFS estimator's closed form agrees with its Monte-Carlo rate. *)
  (* With w = 32 the idle-gap noise has stddev sqrt((w^2-1)/12/k), about
     0.92 slots at k = 100 — so a 2-slot margin keeps honest nodes under
     the 5% false-positive line while still catching an aifs=0 cheat. *)
  let rng = Prelude.Rng.create 11 in
  let emp =
    Macgame.Detection.empirical_aifs_rate ~rng ~trials:2000 ~w:32 ~aifs_true:0
      ~aifs_exp:3 ~samples:100 ~delta:2.
  in
  let closed =
    Macgame.Detection.aifs_detection_rate ~w:32 ~aifs_true:0 ~aifs_exp:3
      ~samples:100 ~delta:2.
  in
  Alcotest.(check bool) "closed near empirical" true
    (Float.abs (emp -. closed) < 0.05);
  Alcotest.(check bool) "cheat caught" true (closed > 0.5);
  let fp =
    Macgame.Detection.aifs_false_positive_rate ~w:32 ~aifs_exp:3 ~samples:100
      ~delta:2.
  in
  Alcotest.(check bool) "honest rarely flagged" true (fp < 0.05);
  (* More samples sharpen the trigger. *)
  Alcotest.(check bool) "detection grows with samples" true
    (Macgame.Detection.aifs_detection_rate ~w:32 ~aifs_true:1 ~aifs_exp:3
       ~samples:100 ~delta:1.
    > Macgame.Detection.aifs_detection_rate ~w:32 ~aifs_true:1 ~aifs_exp:3
        ~samples:10 ~delta:1.)

let test_txop_detection_and_punishment () =
  check_close "honest txop never flagged" 0.
    (Macgame.Detection.txop_detection_rate ~txop_true:2 ~txop_exp:2
       ~p_observe:0.5 ~accesses:100);
  check_close "coverage closed form"
    (1. -. (0.5 ** 10.))
    (Macgame.Detection.txop_detection_rate ~txop_true:4 ~txop_exp:2
       ~p_observe:0.5 ~accesses:10);
  (* Banchs-style punishment sizing: delta = 0.9, one-stage gain 1 against
     per-stage loss 1 needs 2 punishment stages (0.9 < 1 <= 0.9 + 0.81). *)
  Alcotest.(check (option int)) "two stages" (Some 2)
    (Macgame.Detection.punishment_stages ~gain:1. ~loss:1. ~discount:0.9);
  Alcotest.(check (option int)) "nothing to deter" (Some 0)
    (Macgame.Detection.punishment_stages ~gain:0. ~loss:1. ~discount:0.9);
  Alcotest.(check (option int)) "impatient players cannot be deterred" None
    (Macgame.Detection.punishment_stages ~gain:10. ~loss:1. ~discount:0.5);
  (* At delta/(1-delta) = gain/loss even perpetual punishment only breaks
     even, which does not deter.  delta = 0.5 keeps the ratio exact in
     floating point (0.5/0.5 = 1), so the boundary is testable. *)
  Alcotest.(check (option int)) "break-even is not deterrence" None
    (Macgame.Detection.punishment_stages ~gain:1. ~loss:1. ~discount:0.5)

let test_observer_multi_knob_estimators () =
  let rng = Prelude.Rng.create 3 in
  let acc = ref 0. in
  let trials = 500 in
  for _ = 1 to trials do
    acc := !acc +. Macgame.Observer.aifs_estimate ~rng ~w:32 ~aifs:2 ~samples:20
  done;
  let mean = !acc /. float_of_int trials in
  Alcotest.(check bool) "aifs estimator unbiased" true
    (Float.abs (mean -. 2.) < 0.1);
  check_close "aifs stddev formula"
    (sqrt ((1024. -. 1.) /. 12. /. 20.))
    (Macgame.Observer.aifs_estimate_stddev ~w:32 ~samples:20);
  Alcotest.(check int) "certain observation reveals txop" 4
    (Macgame.Observer.txop_longest_burst ~rng ~txop:4 ~p_observe:1. ~accesses:1);
  Alcotest.(check int) "blind observer sees nothing" 0
    (Macgame.Observer.txop_longest_burst ~rng ~txop:4 ~p_observe:0. ~accesses:50)

(* {1 Simulators off the degenerate subspace} *)

let test_slotted_aifs_slows_access () =
  let n = 5 in
  let cws = Array.make n 64 in
  let config =
    { Netsim.Slotted.params; cws; duration = 2.; seed = 9 }
  in
  let plain = Netsim.Slotted.run config in
  let deferred =
    Netsim.Slotted.run
      ~strategies:(Array.make n { (S.of_cw 64) with aifs = 3 })
      config
  in
  let attempts r =
    Array.fold_left
      (fun acc (s : Netsim.Slotted.node_stats) -> acc + s.attempts)
      0 r.Netsim.Slotted.per_node
  in
  Alcotest.(check bool) "AIFS defers access" true
    (attempts deferred < attempts plain)

let test_slotted_txop_conservation () =
  let n = 4 in
  let cws = Array.make n 32 in
  let r =
    Netsim.Slotted.run
      ~strategies:(Array.make n { (S.of_cw 32) with txop_frames = 3 })
      { params; cws; duration = 2.; seed = 5 }
  in
  Array.iteri
    (fun i (s : Netsim.Slotted.node_stats) ->
      Alcotest.(check int)
        (Printf.sprintf "node %d delivers whole bursts" i)
        0 (s.successes mod 3);
      Alcotest.(check bool) "accesses bounded by attempts" true
        ((s.successes / 3) + s.collisions <= s.attempts))
    r.per_node;
  Alcotest.(check bool) "something delivered" true
    (Array.exists (fun (s : Netsim.Slotted.node_stats) -> s.successes > 0)
       r.per_node)

let test_spatial_event_core_matches_reference_multi_knob () =
  (* The dual-driver guarantee must survive off the degenerate subspace:
     AIFS defer re-arming and TXOP bursts implemented twice (slot-scan
     reference vs event core) must agree bit for bit. *)
  let n = 5 in
  let adjacency =
    Array.init n (fun i -> [ (i + 1) mod n; (i + n - 1) mod n ])
  in
  let cws = [| 16; 32; 32; 64; 32 |] in
  let strategies =
    [|
      { (S.of_cw 16) with aifs = 1 };
      { (S.of_cw 32) with txop_frames = 2 };
      S.of_cw 32;
      { S.cw = 64; aifs = 2; txop_frames = 3; rate = 1.0 };
      { (S.of_cw 32) with rate = 2.0 };
    |]
  in
  let quiet () = Telemetry.Registry.create () in
  List.iter
    (fun (label, p) ->
      let config =
        { Netsim.Spatial.params = p; adjacency; cws; duration = 2.; seed = 13 }
      in
      let fast =
        Netsim.Spatial.run ~telemetry:(quiet ()) ~strategies config
      in
      let slow =
        Netsim.Spatial.run_reference ~telemetry:(quiet ()) ~strategies config
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: event core = reference (multi-knob)" label)
        true
        (Netsim.Spatial.equal_result fast slow))
    [ ("basic", params); ("rts", Dcf.Params.rts_cts) ]

let test_strategies_must_agree_with_cws () =
  let config =
    { Netsim.Slotted.params; cws = [| 16; 16 |]; duration = 0.1; seed = 1 }
  in
  Alcotest.check_raises "cw mismatch rejected"
    (Invalid_argument "Slotted.run: strategies disagree with cws") (fun () ->
      ignore (Netsim.Slotted.run ~strategies:[| S.of_cw 16; S.of_cw 32 |] config))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "strategy_space"
    [
      ( "record",
        [
          Alcotest.test_case "degenerate + validate" `Quick
            test_degenerate_and_validate;
          Alcotest.test_case "keys and order" `Quick test_keys_and_order;
          Alcotest.test_case "times passthrough" `Quick test_times_passthrough;
          Alcotest.test_case "space membership" `Quick test_space_membership;
        ] );
      ( "canonical",
        qsuite
          [
            test_codec_roundtrip;
            test_degenerate_wire_shorthand;
            test_profile_permutation_invariance;
          ]
        @ [ Alcotest.test_case "fingerprint pins" `Quick test_fingerprint_pins ]
      );
      ( "model",
        [
          Alcotest.test_case "degenerate bit-identity" `Quick
            test_model_degenerate_bit_identity;
          Alcotest.test_case "aifs asymmetry" `Quick test_model_aifs_asymmetry;
          Alcotest.test_case "txop gain" `Quick test_model_txop_gain;
        ] );
      ( "search",
        [
          Alcotest.test_case "best response in space" `Quick
            test_best_response_in_space;
          Alcotest.test_case "capture equilibrium" `Quick test_ne_search_capture;
          Alcotest.test_case "degenerate space stays degenerate" `Quick
            test_ne_search_degenerate_space;
        ] );
      ( "store",
        [
          Alcotest.test_case "v2 key schema" `Quick test_store_keys_are_v2;
          Alcotest.test_case "v1 rows refused" `Quick test_store_v1_refused;
        ] );
      ( "detection",
        [
          Alcotest.test_case "pinned CW rates" `Quick
            test_cw_detection_rates_pinned;
          Alcotest.test_case "aifs detector" `Quick test_aifs_detection;
          Alcotest.test_case "txop + punishment" `Quick
            test_txop_detection_and_punishment;
          Alcotest.test_case "observer estimators" `Quick
            test_observer_multi_knob_estimators;
        ] );
      ( "netsim",
        [
          Alcotest.test_case "aifs slows access" `Quick
            test_slotted_aifs_slows_access;
          Alcotest.test_case "txop conservation" `Quick
            test_slotted_txop_conservation;
          Alcotest.test_case "event core = reference off-degenerate" `Quick
            test_spatial_event_core_matches_reference_multi_knob;
          Alcotest.test_case "strategy/cw agreement" `Quick
            test_strategies_must_agree_with_cws;
        ] );
    ]
