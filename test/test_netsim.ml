(* Tests for the packet-level simulators: the single-hop slotted simulator
   (validated against the analytic Bianchi model) and the spatial multi-hop
   simulator (carrier sense, hidden terminals, NAV). *)

let check_close ?(eps = 1e-9) msg expected actual =
  if not (Prelude.Util.approx_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let default = Dcf.Params.default
let rts_cts = Dcf.Params.rts_cts

let slotted ?(params = default) ?(duration = 60.) ?(seed = 42) cws =
  Netsim.Slotted.run { params; cws; duration; seed }

(* {1 Slotted simulator} *)

let test_slotted_deterministic () =
  let a = slotted [| 32; 32; 32 |] and b = slotted [| 32; 32; 32 |] in
  Alcotest.(check int) "same slots" a.slots b.slots;
  Array.iteri
    (fun i (s : Netsim.Slotted.node_stats) ->
      Alcotest.(check int) "same attempts" s.attempts b.per_node.(i).attempts;
      Alcotest.(check int) "same successes" s.successes b.per_node.(i).successes)
    a.per_node

let test_slotted_seed_changes_outcome () =
  let a = slotted ~seed:1 [| 32; 32; 32 |] and b = slotted ~seed:2 [| 32; 32; 32 |] in
  Alcotest.(check bool) "different sample paths" true
    (a.per_node.(0).attempts <> b.per_node.(0).attempts
    || a.per_node.(0).successes <> b.per_node.(0).successes)

let test_slotted_accounting_invariants () =
  let r = slotted [| 16; 64; 256 |] in
  Array.iter
    (fun (s : Netsim.Slotted.node_stats) ->
      Alcotest.(check int) "attempts = successes + collisions" s.attempts
        (s.successes + s.collisions);
      Alcotest.(check bool) "tau_hat in [0,1]" true (s.tau_hat >= 0. && s.tau_hat <= 1.);
      Alcotest.(check bool) "p_hat in [0,1]" true (s.p_hat >= 0. && s.p_hat <= 1.))
    r.per_node;
  Alcotest.(check bool) "ran past the requested duration" true (r.time >= 60.);
  Alcotest.(check bool) "throughput below 1" true (r.total_throughput < 1.)

let test_slotted_single_node_never_collides () =
  let r = slotted [| 32 |] in
  Alcotest.(check int) "no collisions alone" 0 r.per_node.(0).collisions;
  (* Alone, every 16th slot on average carries a packet: utilisation is the
     payload share of (mean backoff · sigma + Ts). *)
  let timing = Dcf.Timing.of_params default in
  let expected =
    timing.payload /. ((15.5 *. default.sigma) +. timing.ts)
  in
  check_close ~eps:0.02 "utilisation" expected r.total_throughput

let test_slotted_matches_bianchi_tau_p () =
  (* Under the chain's own tick convention the simulator must agree tightly
     with eq. 2-3; under real freeze semantics the gap is the documented
     accuracy limit of Bianchi's approximation (still below ~10 %). *)
  List.iter
    (fun (n, w) ->
      let v = Dcf.Model.homogeneous default ~n ~w in
      let r =
        Netsim.Slotted.run ~bianchi_ticks:true
          { params = default; cws = Array.make n w; duration = 120.; seed = 42 }
      in
      let taus = Array.map (fun (s : Netsim.Slotted.node_stats) -> s.tau_hat) r.per_node in
      let ps = Array.map (fun (s : Netsim.Slotted.node_stats) -> s.p_hat) r.per_node in
      let tau_hat = Prelude.Stats.mean_of taus and p_hat = Prelude.Stats.mean_of ps in
      if Float.abs (tau_hat -. v.tau) /. v.tau > 0.04 then
        Alcotest.failf "bianchi mode n=%d W=%d: tau %.5f vs %.5f" n w tau_hat v.tau;
      if Float.abs (p_hat -. v.p) > 0.02 then
        Alcotest.failf "bianchi mode n=%d W=%d: p %.4f vs %.4f" n w p_hat v.p;
      let real = slotted ~duration:120. (Array.make n w) in
      let tau_real =
        Prelude.Stats.mean_of
          (Array.map (fun (s : Netsim.Slotted.node_stats) -> s.tau_hat) real.per_node)
      in
      if Float.abs (tau_real -. v.tau) /. v.tau > 0.12 then
        Alcotest.failf "real mode n=%d W=%d: tau %.5f vs %.5f" n w tau_real v.tau)
    [ (2, 64); (5, 79); (10, 128); (20, 339) ]

let test_slotted_matches_analytic_payoff () =
  List.iter
    (fun (n, w) ->
      let v = Dcf.Model.homogeneous default ~n ~w in
      let r = slotted ~duration:120. (Array.make n w) in
      let u_hat =
        Prelude.Stats.mean_of
          (Array.map (fun (s : Netsim.Slotted.node_stats) -> s.payoff_rate) r.per_node)
      in
      if Float.abs (u_hat -. v.utility) /. Float.abs v.utility > 0.08 then
        Alcotest.failf "n=%d W=%d: payoff %.4f vs %.4f" n w u_hat v.utility)
    [ (5, 79); (10, 200); (20, 339) ]

let test_slotted_lemma1_ordering_in_simulation () =
  (* Lemma 1 in the packet simulation: the node with the smaller window
     transmits more, faces a *lower* collision probability (it does not
     contend with itself) and earns more. *)
  let cws = [| 40; 80; 80; 80; 80 |] in
  let r = slotted ~duration:120. cws in
  Alcotest.(check bool) "deviant transmits more" true
    (r.per_node.(0).tau_hat > r.per_node.(1).tau_hat);
  Alcotest.(check bool) "deviant collides less" true
    (r.per_node.(0).p_hat < r.per_node.(1).p_hat);
  Alcotest.(check bool) "deviant earns more" true
    (r.per_node.(0).payoff_rate > r.per_node.(1).payoff_rate)

let test_slotted_rts_cts_mode () =
  (* RTS/CTS collisions are cheap, so at an aggressive window the RTS/CTS
     network sustains much higher welfare than basic access. *)
  let basic = slotted ~duration:60. (Array.make 10 32) in
  let rts = slotted ~params:rts_cts ~duration:60. (Array.make 10 32) in
  Alcotest.(check bool) "rts/cts wins under heavy contention" true
    (rts.welfare_rate > basic.welfare_rate)

let test_slotted_symmetric_fairness () =
  let r = slotted ~duration:120. (Array.make 8 64) in
  let shares = Array.map (fun (s : Netsim.Slotted.node_stats) -> s.throughput) r.per_node in
  Alcotest.(check bool) "jain close to 1" true
    (Prelude.Stats.jain_fairness shares > 0.99)

let test_slotted_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Slotted.run: empty network")
    (fun () -> ignore (slotted [||]));
  Alcotest.check_raises "bad duration"
    (Invalid_argument "Slotted.run: duration must be positive") (fun () ->
      ignore (Netsim.Slotted.run { params = default; cws = [| 8 |]; duration = 0.; seed = 0 }));
  Alcotest.check_raises "bad window"
    (Invalid_argument "Slotted.run: window must be >= 1") (fun () ->
      ignore (slotted [| 0 |]))

let test_payoff_oracle_positive_near_optimum () =
  let u =
    Netsim.Slotted.payoff_oracle ~params:default ~n:5 ~duration:30. ~seed:3 79
  in
  let v = (Dcf.Model.homogeneous default ~n:5 ~w:79).Dcf.Model.utility in
  Alcotest.(check bool) "within 15% of analytic" true
    (Float.abs (u -. v) /. v < 0.15)

(* {1 Spatial simulator} *)

let complete_graph n = Array.init n (fun i -> List.filter (fun j -> j <> i) (List.init n Fun.id))

let spatial ?(params = default) ?(duration = 30.) ?(seed = 9) ~adjacency cws =
  Netsim.Spatial.run { params; adjacency; cws; duration; seed }

let test_spatial_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Spatial.run: empty network")
    (fun () -> ignore (spatial ~adjacency:[||] [||]));
  Alcotest.check_raises "asymmetric"
    (Invalid_argument "Spatial.run: adjacency not symmetric") (fun () ->
      ignore (spatial ~adjacency:[| [ 1 ]; [] |] [| 8; 8 |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Spatial.run: cws length mismatch") (fun () ->
      ignore (spatial ~adjacency:(complete_graph 3) [| 8 |]))

let test_spatial_deterministic () =
  let a = spatial ~adjacency:(complete_graph 4) (Array.make 4 32) in
  let b = spatial ~adjacency:(complete_graph 4) (Array.make 4 32) in
  Alcotest.(check int) "same deliveries" a.delivered b.delivered

let test_spatial_accounting () =
  let r = spatial ~adjacency:(complete_graph 5) (Array.make 5 64) in
  Array.iter
    (fun (s : Netsim.Spatial.node_stats) ->
      Alcotest.(check int) "attempts decompose" s.attempts
        (s.successes + s.local_collisions + s.hidden_failures);
      Alcotest.(check bool) "p_hn_hat in [0,1]" true
        (s.p_hn_hat >= 0. && s.p_hn_hat <= 1.))
    r.per_node;
  let total = Array.fold_left (fun acc (s : Netsim.Spatial.node_stats) -> acc + s.successes) 0 r.per_node in
  Alcotest.(check int) "delivered + late = sum of successes"
    (r.delivered + r.delivered_late) total

let test_spatial_complete_graph_has_no_hidden_failures () =
  let r = spatial ~adjacency:(complete_graph 6) (Array.make 6 32) in
  Array.iter
    (fun (s : Netsim.Spatial.node_stats) ->
      Alcotest.(check int) "no hidden terminals in a clique" 0 s.hidden_failures;
      check_close "p_hn_hat = 1" 1. s.p_hn_hat)
    r.per_node

let test_spatial_complete_graph_matches_slotted () =
  (* On a clique the spatial simulator is the single-hop channel, so its
     welfare must be close to the slotted simulator's (duration-rounding
     differs slightly). *)
  let n = 5 and w = 79 in
  let sp = spatial ~duration:60. ~adjacency:(complete_graph n) (Array.make n w) in
  let sl = slotted ~duration:60. (Array.make n w) in
  let rel = Float.abs (sp.welfare_rate -. sl.welfare_rate) /. sl.welfare_rate in
  Alcotest.(check bool)
    (Printf.sprintf "welfare within 10%% (rel %.3f)" rel)
    true (rel < 0.10)

let test_spatial_isolated_node_stays_silent () =
  let adjacency = [| [ 1 ]; [ 0 ]; [] |] in
  let r = spatial ~adjacency [| 16; 16; 16 |] in
  Alcotest.(check int) "no attempts without neighbours" 0 r.per_node.(2).attempts;
  Alcotest.(check bool) "the pair still communicates" true (r.per_node.(0).successes > 0)

(* Classic hidden-terminal chain: 0 - 1 - 2 where 0 and 2 cannot hear each
   other and both send to 1. *)
let hidden_chain = [| [ 1 ]; [ 0; 2 ]; [ 1 ] |]

let test_spatial_hidden_terminals_appear_in_basic () =
  let r = spatial ~duration:60. ~adjacency:hidden_chain [| 32; 32; 32 |] in
  let outer = r.per_node.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "hidden failures observed (%d)" outer.hidden_failures)
    true
    (outer.hidden_failures > 0);
  Alcotest.(check bool) "degradation factor below 1" true (outer.p_hn_hat < 1.)

let test_spatial_rts_mitigates_hidden_terminals () =
  (* With RTS/CTS only the short RTS is vulnerable, so the hidden-terminal
     loss rate must drop sharply relative to basic access. *)
  let basic = spatial ~duration:60. ~adjacency:hidden_chain [| 32; 32; 32 |] in
  let rts =
    spatial ~params:rts_cts ~duration:60. ~adjacency:hidden_chain [| 32; 32; 32 |]
  in
  let loss (r : Netsim.Spatial.result) =
    let s = r.per_node.(0) in
    1. -. s.p_hn_hat
  in
  Alcotest.(check bool)
    (Printf.sprintf "basic loss %.3f > rts loss %.3f" (loss basic) (loss rts))
    true
    (loss basic > 2. *. loss rts)

let test_spatial_spatial_reuse () =
  (* Two far-apart pairs transmit concurrently: aggregate throughput beats a
     single pair's. *)
  let pairs = [| [ 1 ]; [ 0 ]; [ 3 ]; [ 2 ] |] in
  let two = spatial ~duration:60. ~adjacency:pairs (Array.make 4 32) in
  let one = spatial ~duration:60. ~adjacency:[| [ 1 ]; [ 0 ] |] (Array.make 2 32) in
  Alcotest.(check bool) "parallel pairs deliver more" true
    (two.delivered > (3 * one.delivered) / 2)

let test_spatial_smaller_window_more_attempts () =
  let adjacency = complete_graph 4 in
  let r = spatial ~duration:60. ~adjacency [| 8; 64; 64; 64 |] in
  Alcotest.(check bool) "aggressive node attempts more" true
    (r.per_node.(0).attempts > r.per_node.(1).attempts)

let test_spatial_paper_scenario_runs () =
  (* Smoke-test the Sec. VII.B configuration at reduced duration: 100 nodes,
     RTS/CTS, random connected topology. *)
  let w =
    Mobility.Waypoint.create ~seed:7
      { width = 1000.; height = 1000.; speed_min = 0.; speed_max = 5. }
      ~n:100
  in
  let adjacency = Mobility.Topology.snapshot ~connect_attempts:100 w ~range:250. in
  let r =
    spatial ~params:rts_cts ~duration:5. ~adjacency (Array.make 100 26)
  in
  Alcotest.(check bool) "packets flow" true (r.delivered > 100);
  let p_hns = Array.map (fun (s : Netsim.Spatial.node_stats) -> s.p_hn_hat) r.per_node in
  Alcotest.(check bool) "some hidden-node degradation" true
    (Prelude.Stats.mean_of p_hns < 1.)

let test_spatial_rts_cts_trace () =
  let trace = Netsim.Trace.create () in
  let r =
    Netsim.Spatial.run
      {
        params = rts_cts;
        adjacency = hidden_chain;
        cws = [| 32; 32; 32 |];
        duration = 10.;
        seed = 9;
      }
      ~trace
  in
  let s = Netsim.Trace.summarize trace in
  Alcotest.(check bool) "handshakes happened" true (s.rts > 0);
  (* Every success won the channel through a CTS, and every CTS answer is
     followed by protected data, so the counts agree exactly. *)
  Alcotest.(check int) "one CTS per delivery" (r.delivered + r.delivered_late)
    s.cts;
  Alcotest.(check bool) "no more CTS than RTS" true (s.cts <= s.rts);
  (* In the hidden chain the edge nodes cannot hear each other: the centre's
     CTS is what silences them, so NAV deferrals must be observed. *)
  Alcotest.(check bool) "NAV deferrals observed" true (s.nav_defers > 0);
  List.iter
    (fun ev ->
      match ev with
      | Netsim.Trace.Nav_defer { time; until; _ } ->
          Alcotest.(check bool) "NAV extends into the future" true
            (until > time)
      | _ -> ())
    (Netsim.Trace.events trace)

let test_spatial_basic_mode_has_no_handshake_events () =
  let trace = Netsim.Trace.create () in
  ignore
    (Netsim.Spatial.run
       {
         params = default;
         adjacency = hidden_chain;
         cws = [| 32; 32; 32 |];
         duration = 5.;
         seed = 9;
       }
       ~trace);
  let s = Netsim.Trace.summarize trace in
  Alcotest.(check int) "no RTS in basic mode" 0 s.rts;
  Alcotest.(check int) "no CTS in basic mode" 0 s.cts;
  Alcotest.(check int) "no NAV in basic mode" 0 s.nav_defers

(* {1 Channel noise (PER)} *)

let test_slotted_per_occupies_ts () =
  let trace = Netsim.Trace.create () in
  let r =
    Netsim.Slotted.run ~per:0.4 ~trace
      { params = default; cws = [| 16 |]; duration = 20.; seed = 5 }
  in
  let s = Netsim.Trace.summarize trace in
  let node = r.per_node.(0) in
  (* A lone station never collides: every failed attempt is channel noise,
     and the trace must say so. *)
  Alcotest.(check int) "lone node never collides" 0 s.collisions;
  Alcotest.(check int) "every failure is a channel error"
    (node.attempts - node.successes)
    s.channel_errors;
  Alcotest.(check bool) "channel errors happen" true (s.channel_errors > 0);
  let a = r.airtime in
  check_close "four fractions sum to 1" 1.
    (a.idle_fraction +. a.success_fraction +. a.collision_fraction
   +. a.error_fraction);
  check_close "no collision airtime for one node" 0. a.collision_fraction;
  (* A corrupted frame goes out in full, so it costs Ts — the same airtime
     per attempt as a success.  The error share of busy time is then the
     error rate itself. *)
  let observed = a.error_fraction /. (a.error_fraction +. a.success_fraction) in
  Alcotest.(check bool)
    (Printf.sprintf "error share of Ts airtime near per (%.3f)" observed)
    true
    (Float.abs (observed -. 0.4) < 0.05)

let test_slotted_per_coexists_with_collisions () =
  let trace = Netsim.Trace.create () in
  let r =
    Netsim.Slotted.run ~per:0.2 ~trace
      { params = default; cws = [| 16; 16; 16 |]; duration = 20.; seed = 8 }
  in
  let s = Netsim.Trace.summarize trace in
  Alcotest.(check bool) "collisions still traced" true (s.collisions > 0);
  Alcotest.(check bool) "channel errors traced too" true (s.channel_errors > 0);
  let a = r.airtime in
  check_close "fractions still sum to 1" 1.
    (a.idle_fraction +. a.success_fraction +. a.collision_fraction
   +. a.error_fraction);
  Alcotest.(check bool) "both busy kinds accrue airtime" true
    (a.collision_fraction > 0. && a.error_fraction > 0.);
  Array.iter
    (fun (n : Netsim.Slotted.node_stats) ->
      Alcotest.(check int) "attempts decompose" n.attempts
        (n.successes + n.collisions))
    r.per_node

(* {1 Event core vs reference loop} *)

let quiet () = Telemetry.Registry.create ()

(* Decode pairs (0,1) and (2,3); carrier sense additionally couples 0 and 2,
   exercising the cs-only freeze path. *)
let cs_bridge =
  ( [| [ 1 ]; [ 0 ]; [ 3 ]; [ 2 ] |],
    Some [| [ 1; 2 ]; [ 0 ]; [ 0; 3 ]; [ 2 ] |] )

let test_spatial_event_core_matches_reference () =
  let chain8 =
    Array.init 8 (fun i -> List.filter (fun j -> j >= 0 && j < 8) [ i - 1; i + 1 ])
  in
  let topologies =
    [
      ("pair", [| [ 1 ]; [ 0 ] |], None);
      ("hidden3", hidden_chain, None);
      ("chain8", chain8, None);
      ("clique5", complete_graph 5, None);
      ("two-pairs", [| [ 1 ]; [ 0 ]; [ 3 ]; [ 2 ] |], None);
      ("cs-bridge", fst cs_bridge, snd cs_bridge);
      ("isolated", [| [ 1 ]; [ 0 ]; [] |], None);
    ]
  in
  List.iter
    (fun (label, adjacency, cs_adjacency) ->
      List.iter
        (fun (mode, params) ->
          List.iter
            (fun seed ->
              List.iter
                (fun retry_limit ->
                  let n = Array.length adjacency in
                  let config =
                    {
                      Netsim.Spatial.params;
                      adjacency;
                      cws = Array.init n (fun i -> 16 lsl (i mod 2));
                      duration = 1.;
                      seed;
                    }
                  in
                  let fast =
                    Netsim.Spatial.run ~telemetry:(quiet ()) ?cs_adjacency
                      ?retry_limit config
                  in
                  let slow =
                    Netsim.Spatial.run_reference ~telemetry:(quiet ())
                      ?cs_adjacency ?retry_limit config
                  in
                  Alcotest.(check bool)
                    (Printf.sprintf "%s/%s seed=%d retry=%s bit-identical" label
                       mode seed
                       (match retry_limit with
                       | None -> "inf"
                       | Some r -> string_of_int r))
                    true
                    (Netsim.Spatial.equal_result fast slow))
                [ None; Some 4 ])
            [ 1; 7 ])
        [ ("basic", default); ("rts", rts_cts) ])
    topologies

let test_spatial_event_core_matches_reference_random_25 () =
  (* The acceptance benchmark topology: 25 nodes scattered by the waypoint
     model, snapshot into a connected random geometric graph. *)
  let w =
    Mobility.Waypoint.create ~seed:21
      { width = 500.; height = 500.; speed_min = 0.; speed_max = 5. }
      ~n:25
  in
  let adjacency = Mobility.Topology.snapshot ~connect_attempts:50 w ~range:180. in
  List.iter
    (fun (mode, params) ->
      let config =
        {
          Netsim.Spatial.params;
          adjacency;
          cws = Array.make 25 32;
          duration = 0.5;
          seed = 13;
        }
      in
      let fast = Netsim.Spatial.run ~telemetry:(quiet ()) config in
      let slow = Netsim.Spatial.run_reference ~telemetry:(quiet ()) config in
      Alcotest.(check bool)
        (Printf.sprintf "random-25/%s bit-identical" mode)
        true
        (Netsim.Spatial.equal_result fast slow))
    [ ("basic", default); ("rts", rts_cts) ]

(* {1 Airtime conservation} *)

(* Random symmetric graph with decode ⊆ carrier-sense: each pair gets a
   decode+cs edge, a cs-only edge, or nothing. *)
let random_topology rng n =
  let adj = Array.make n [] and cs = Array.make n [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prelude.Rng.bernoulli rng 0.35 then begin
        adj.(i) <- j :: adj.(i);
        adj.(j) <- i :: adj.(j);
        cs.(i) <- j :: cs.(i);
        cs.(j) <- i :: cs.(j)
      end
      else if Prelude.Rng.bernoulli rng 0.2 then begin
        cs.(i) <- j :: cs.(i);
        cs.(j) <- i :: cs.(j)
      end
    done
  done;
  (adj, cs)

let test_spatial_airtime_conservation =
  QCheck.Test.make ~name:"spatial airtime conserved on random topologies"
    ~count:25
    QCheck.(triple (int_range 2 12) small_nat small_nat)
    (fun (n, topo_seed, sim_seed) ->
      let rng = Prelude.Rng.create (1 + topo_seed) in
      let adjacency, cs_adjacency = random_topology rng n in
      let params = if Prelude.Rng.bernoulli rng 0.5 then default else rts_cts in
      let cws = Array.init n (fun _ -> 8 lsl Prelude.Rng.int rng 4) in
      let r =
        Netsim.Spatial.run ~telemetry:(quiet ()) ~cs_adjacency
          { params; adjacency; cws; duration = 0.5; seed = sim_seed }
      in
      let a = r.airtime in
      let balance =
        a.idle_fraction +. a.success_fraction +. a.collision_fraction
        -. a.overlap_fraction
      in
      Float.abs (balance -. 1.) < 1e-9
      && a.idle_fraction >= 0.
      && a.success_fraction >= 0.
      && a.collision_fraction >= 0.
      && a.overlap_fraction >= 0.
      && a.busy_fraction >= 0.
      && a.busy_fraction <= 1.
      && Array.for_all
           (fun (s : Netsim.Spatial.node_stats) ->
             s.attempts = s.successes + s.local_collisions + s.hidden_failures)
           r.per_node)

let test_spatial_airtime_clipped_at_horizon () =
  (* A short run on a busy clique is guaranteed to end mid-transmission; the
     clipped tallies must still balance and busy time cannot exceed the
     horizon. *)
  let r =
    Netsim.Spatial.run ~telemetry:(quiet ())
      {
        params = default;
        adjacency = complete_graph 4;
        cws = Array.make 4 8;
        duration = 0.02;
        seed = 3;
      }
  in
  let a = r.airtime in
  check_close "balance holds at a mid-frame horizon" 1.
    (a.idle_fraction +. a.success_fraction +. a.collision_fraction
   -. a.overlap_fraction);
  Alcotest.(check bool) "busy cannot exceed the horizon" true
    (a.busy_fraction <= 1.)

(* {1 Grid index & sharded scale} *)

(* Quarter-cell coordinate lattice: with cell = 75 every fourth lattice
   step lands a point exactly on a bucket boundary, the rounding case the
   padded candidate box must absorb. *)
let grid_cell = 75.
let grid_quarter = grid_cell /. 4.
let grid_radii = [| 0.; grid_quarter; grid_cell; 2. *. grid_cell; 500. |]

let grid_point (ix, iy) =
  { Mobility.Geom.x = float_of_int ix *. grid_quarter;
    y = float_of_int iy *. grid_quarter }

let test_grid_query_matches_scan =
  QCheck.Test.make ~name:"grid query equals brute-force scan" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 40) (pair (int_bound 26) (int_bound 26)))
        (int_bound 4))
    (fun (cells, ridx) ->
      let pts = Array.of_list (List.map grid_point cells) in
      let radius = grid_radii.(ridx) in
      let g = Mobility.Grid.create ~cell:grid_cell pts in
      let n = Array.length pts in
      let ok = ref true in
      for i = 0 to n - 1 do
        let got = Mobility.Grid.query g ~radius i in
        let want =
          List.filter
            (fun j ->
              j <> i && Mobility.Geom.within ~range:radius pts.(i) pts.(j))
            (List.init n Fun.id)
        in
        if got <> want then ok := false
      done;
      !ok)

let test_grid_move_incremental =
  QCheck.Test.make ~name:"grid move equals fresh rebuild" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 20) (pair (int_bound 26) (int_bound 26)))
        (small_list (triple small_nat (int_bound 26) (int_bound 26))))
    (fun (cells, moves) ->
      let pts = Array.of_list (List.map grid_point cells) in
      let n = Array.length pts in
      let g = Mobility.Grid.create ~cell:grid_cell pts in
      List.iter
        (fun (idx, ix, iy) ->
          let i = idx mod n in
          let p = grid_point (ix, iy) in
          pts.(i) <- p;
          Mobility.Grid.move g i p)
        moves;
      let fresh = Mobility.Grid.create ~cell:grid_cell pts in
      let ok = ref true in
      for i = 0 to n - 1 do
        if
          Mobility.Grid.query g ~radius:grid_cell i
          <> Mobility.Grid.query fresh ~radius:grid_cell i
        then ok := false
      done;
      !ok)

let geo_positions ~seed n =
  let w =
    Mobility.Waypoint.create ~seed
      { width = 500.; height = 500.; speed_min = 0.; speed_max = 5. }
      ~n
  in
  Mobility.Waypoint.positions w

let test_run_grid_bit_matches_run () =
  List.iter
    (fun (label, n, seed, params, range, cs_range) ->
      let positions = geo_positions ~seed n in
      let adjacency = Mobility.Topology.adjacency ~range positions in
      let cs_adjacency =
        Mobility.Topology.adjacency ~range:cs_range positions
      in
      let cws = Array.init n (fun i -> 16 lsl (i mod 2)) in
      let lists =
        Netsim.Spatial.run ~telemetry:(quiet ()) ~cs_adjacency
          { params; adjacency; cws; duration = 1.; seed }
      in
      let grid =
        Netsim.Spatial.run_grid ~telemetry:(quiet ()) ~params ~positions
          ~range ~cs_range ~cws ~duration:1. ~seed ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: grid core bit-identical" label)
        true
        (Netsim.Spatial.equal_result lists grid))
    [
      ("basic-24", 24, 3, default, 150., 210.);
      ("rts-32", 32, 7, rts_cts, 150., 225.);
      ("cs=range-16", 16, 11, default, 120., 120.);
    ]

let sharded_config ?(duration = 0.5) ~seed n =
  {
    Netsim.Sharded.params = default;
    positions = geo_positions ~seed n;
    range = 120.;
    cs_range = 180.;
    cws = Array.make n 32;
    duration;
    seed;
  }

let test_sharded_single_shard_matches_run_grid () =
  let seed = 5 in
  let cfg = sharded_config ~seed 40 in
  let sh = Netsim.Sharded.run ~telemetry:(quiet ()) ~shards:1 cfg in
  let single =
    Netsim.Spatial.run_grid ~telemetry:(quiet ())
      ~rng_of:(Netsim.Sharded.node_rng ~seed) ~params:cfg.params
      ~positions:cfg.positions ~range:cfg.range ~cs_range:cfg.cs_range
      ~cws:cfg.cws ~duration:cfg.duration ~seed ()
  in
  Array.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d stats bit-identical" i)
        true
        (Netsim.Spatial.equal_stats s single.per_node.(i)))
    sh.per_node;
  Alcotest.(check int) "one live shard" 1 (Array.length sh.shards);
  Alcotest.(check int) "nothing mirrored" 0 sh.shards.(0).mirrored

let test_sharded_deterministic_across_workers () =
  let cfg = sharded_config ~seed:13 60 in
  let run workers =
    Netsim.Sharded.run ~telemetry:(quiet ())
      ~pool:(Runner.Pool.create ~registry:(quiet ()) ~workers ())
      ~shards:3 cfg
  in
  let a = run 1 and b = run 3 in
  Array.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d stats identical across pools" i)
        true
        (Netsim.Spatial.equal_stats s b.per_node.(i)))
    a.per_node;
  Alcotest.(check int) "same delivered" a.delivered b.delivered

let test_sharded_close_to_single () =
  (* The calibrated statistical point lives in the conformance suite; this
     is a loose smoke that the boundary protocol is not nonsense. *)
  let seed = 21 in
  let cfg = sharded_config ~duration:1. ~seed 60 in
  let sh = Netsim.Sharded.run ~telemetry:(quiet ()) ~shards:3 cfg in
  let single =
    Netsim.Spatial.run_grid ~telemetry:(quiet ())
      ~rng_of:(Netsim.Sharded.node_rng ~seed) ~params:cfg.params
      ~positions:cfg.positions ~range:cfg.range ~cs_range:cfg.cs_range
      ~cws:cfg.cws ~duration:cfg.duration ~seed ()
  in
  let total r =
    Array.fold_left
      (fun acc (s : Netsim.Spatial.node_stats) -> acc + s.successes)
      0 r
  in
  let a = total sh.per_node and b = total single.per_node in
  Alcotest.(check bool) "both deliver" true (a > 0 && b > 0);
  let rel =
    Float.abs (float_of_int a -. float_of_int b)
    /. float_of_int (Stdlib.max a b)
  in
  Alcotest.(check bool)
    (Printf.sprintf "delivery within 25%% (rel %.3f)" rel)
    true (rel < 0.25)

let suite_scale =
  [
    QCheck_alcotest.to_alcotest test_grid_query_matches_scan;
    QCheck_alcotest.to_alcotest test_grid_move_incremental;
    Alcotest.test_case "run_grid bit-matches run" `Quick
      test_run_grid_bit_matches_run;
    Alcotest.test_case "sharded = run_grid at one shard" `Quick
      test_sharded_single_shard_matches_run_grid;
    Alcotest.test_case "sharded deterministic across workers" `Quick
      test_sharded_deterministic_across_workers;
    Alcotest.test_case "sharded close to single-domain" `Quick
      test_sharded_close_to_single;
  ]

let suite_slotted =
  [
    Alcotest.test_case "deterministic" `Quick test_slotted_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_slotted_seed_changes_outcome;
    Alcotest.test_case "accounting invariants" `Quick test_slotted_accounting_invariants;
    Alcotest.test_case "single node" `Quick test_slotted_single_node_never_collides;
    Alcotest.test_case "matches bianchi tau/p" `Slow test_slotted_matches_bianchi_tau_p;
    Alcotest.test_case "matches analytic payoff" `Slow test_slotted_matches_analytic_payoff;
    Alcotest.test_case "lemma 4 in simulation" `Slow test_slotted_lemma1_ordering_in_simulation;
    Alcotest.test_case "rts/cts mode" `Quick test_slotted_rts_cts_mode;
    Alcotest.test_case "symmetric fairness" `Slow test_slotted_symmetric_fairness;
    Alcotest.test_case "validation" `Quick test_slotted_validation;
    Alcotest.test_case "payoff oracle" `Quick test_payoff_oracle_positive_near_optimum;
    Alcotest.test_case "per occupies Ts" `Quick test_slotted_per_occupies_ts;
    Alcotest.test_case "per coexists with collisions" `Quick
      test_slotted_per_coexists_with_collisions;
  ]

let suite_spatial =
  [
    Alcotest.test_case "validation" `Quick test_spatial_validation;
    Alcotest.test_case "deterministic" `Quick test_spatial_deterministic;
    Alcotest.test_case "accounting" `Quick test_spatial_accounting;
    Alcotest.test_case "clique has no hidden failures" `Quick test_spatial_complete_graph_has_no_hidden_failures;
    Alcotest.test_case "clique matches slotted" `Slow test_spatial_complete_graph_matches_slotted;
    Alcotest.test_case "isolated node silent" `Quick test_spatial_isolated_node_stays_silent;
    Alcotest.test_case "hidden terminals in basic" `Quick test_spatial_hidden_terminals_appear_in_basic;
    Alcotest.test_case "rts mitigates hidden terminals" `Quick test_spatial_rts_mitigates_hidden_terminals;
    Alcotest.test_case "spatial reuse" `Quick test_spatial_spatial_reuse;
    Alcotest.test_case "aggressive window attempts" `Quick test_spatial_smaller_window_more_attempts;
    Alcotest.test_case "paper scenario smoke" `Slow test_spatial_paper_scenario_runs;
    Alcotest.test_case "rts/cts/nav trace" `Quick test_spatial_rts_cts_trace;
    Alcotest.test_case "basic mode has no handshakes" `Quick
      test_spatial_basic_mode_has_no_handshake_events;
    Alcotest.test_case "event core = reference loop" `Quick
      test_spatial_event_core_matches_reference;
    Alcotest.test_case "event core = reference (random 25)" `Slow
      test_spatial_event_core_matches_reference_random_25;
    QCheck_alcotest.to_alcotest test_spatial_airtime_conservation;
    Alcotest.test_case "airtime clipped at horizon" `Quick
      test_spatial_airtime_clipped_at_horizon;
  ]

let () =
  Alcotest.run "netsim"
    [
      ("slotted", suite_slotted);
      ("spatial", suite_spatial);
      ("scale", suite_scale);
    ]
