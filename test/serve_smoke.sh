#!/bin/sh
# Serve smoke (rides in @ci via the @serve-smoke alias): drive the oracle
# service end-to-end through the CLI, twice, against one --store
# directory.  The first run answers cold and persists; the second must
# answer the same questions from the store (tier "store" in the replies —
# the acceptance criterion "store hits > 0 on a second run") and both
# runs must turn a malformed line into an error reply instead of dying.
set -eu

cli="$1"
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM

requests='{"id":1,"op":"tau","n":5,"w":64}
{"id":2,"op":"ne","n":2}
{"id":3,"op":"batch","requests":[{"op":"welfare","n":5,"w":64},{"op":"tau","n":5,"w":128}]}
this line is not json'

fail() {
  echo "serve-smoke: $1" >&2
  echo "--- first run ---" >&2
  printf '%s\n' "$first" >&2
  echo "--- second run ---" >&2
  printf '%s\n' "$second" >&2
  exit 1
}

first=$(printf '%s\n' "$requests" | "$cli" serve --stdin --store "$dir/store")
second=$(printf '%s\n' "$requests" | "$cli" serve --stdin --store "$dir/store")

case "$first" in
  *'"tier":"cold"'*) ;;
  *) fail "first run produced no cold-tier reply" ;;
esac
case "$first" in
  *'"ok":false'*) ;;
  *) fail "first run produced no error reply for the malformed line" ;;
esac

store_hits=$(printf '%s\n' "$second" | grep -c '"tier":"store"') || true
[ "$store_hits" -gt 0 ] || fail "second run answered nothing from the store"
case "$second" in
  *'"tier":"cold"'*) fail "second run still solved cold" ;;
esac
case "$second" in
  *'"ok":false'*) ;;
  *) fail "second run produced no error reply for the malformed line" ;;
esac

# Both runs answered every line: 3 replies + 1 error each.
[ "$(printf '%s\n' "$first" | wc -l)" -eq 4 ] || fail "first run reply count != 4"
[ "$(printf '%s\n' "$second" | wc -l)" -eq 4 ] || fail "second run reply count != 4"

echo "serve-smoke: ok ($store_hits store-tier replies on the second run)"
