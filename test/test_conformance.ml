(* Tests for the conformance subsystem: margin semantics, Student-t
   confidence bands, the anchor comparison kinds, the declarative tables'
   internal consistency, and the golden snapshot bless/check/diff cycle
   (exercised against a temporary directory, never the checked-in
   goldens). *)

module C = Conformance

let close ?(eps = 1e-3) = Alcotest.(check (float eps))

(* {1 Check semantics} *)

let test_check_margin_semantics () =
  let status margin =
    (C.Check.v ~id:"x" ~group:"g" ~margin ()).C.Check.status
  in
  Alcotest.(check bool) "0 passes" true (status 0. = C.Check.Pass);
  Alcotest.(check bool) "boundary passes" true (status 1. = C.Check.Pass);
  Alcotest.(check bool) "over budget fails" true (status 1.001 = C.Check.Fail);
  Alcotest.(check bool) "nan fails" true (status nan = C.Check.Fail);
  Alcotest.(check bool) "infinity fails" true (status infinity = C.Check.Fail);
  let skip = C.Check.skip ~id:"x" ~group:"g" "not here" in
  Alcotest.(check bool) "skip counts as passed" true (C.Check.passed skip);
  Alcotest.(check bool) "all_passed with skip" true
    (C.Check.all_passed [ skip; C.Check.v ~id:"y" ~group:"g" ~margin:0.5 () ]);
  Alcotest.(check bool) "all_passed spots failures" false
    (C.Check.all_passed [ C.Check.v ~id:"z" ~group:"g" ~margin:2. () ])

let test_tiers () =
  Alcotest.(check bool) "fast runs in fast" true
    (C.Check.runs_in C.Check.Fast ~at:C.Check.Fast);
  Alcotest.(check bool) "fast runs in full" true
    (C.Check.runs_in C.Check.Fast ~at:C.Check.Full);
  Alcotest.(check bool) "full does not run in fast" false
    (C.Check.runs_in C.Check.Full ~at:C.Check.Fast);
  Alcotest.(check bool) "tier names round-trip" true
    (C.Check.tier_of_string (C.Check.tier_name C.Check.Full)
    = Some C.Check.Full);
  Alcotest.(check bool) "unknown tier rejected" true
    (C.Check.tier_of_string "medium" = None)

let test_check_emit_counts () =
  let r = Telemetry.Registry.create ~label:"test" () in
  C.Check.emit ~telemetry:r (C.Check.v ~id:"a" ~group:"g" ~margin:0.1 ());
  C.Check.emit ~telemetry:r (C.Check.v ~id:"b" ~group:"g" ~margin:3. ());
  C.Check.emit ~telemetry:r (C.Check.skip ~id:"c" ~group:"g" "absent");
  let count name =
    Telemetry.Metric.count (Telemetry.Registry.counter r name)
  in
  Alcotest.(check int) "pass counter" 1 (count "conformance.checks.pass");
  Alcotest.(check int) "fail counter" 1 (count "conformance.checks.fail");
  Alcotest.(check int) "skip counter" 1 (count "conformance.checks.skipped")

(* {1 Student-t quantiles and bands} *)

let test_student_t_quantile () =
  let q ~df p = Numerics.Special.student_t_quantile ~df p in
  (* Textbook two-sided 95% critical values. *)
  close ~eps:0.01 "df=1" 12.706 (q ~df:1 0.975);
  close ~eps:0.005 "df=2" 4.303 (q ~df:2 0.975);
  close ~eps:0.01 "df=4" 2.776 (q ~df:4 0.975);
  close ~eps:0.01 "df=10" 2.228 (q ~df:10 0.975);
  close ~eps:0.01 "df=30" 2.042 (q ~df:30 0.975);
  close ~eps:0.01 "df=120" 1.980 (q ~df:120 0.975);
  (* 99% level, the suite's default confidence. *)
  close ~eps:0.03 "df=4 at 99.5%" 4.604 (q ~df:4 0.995);
  close ~eps:0.02 "df=9 at 99.5%" 3.250 (q ~df:9 0.995);
  (* Symmetry and the median. *)
  close ~eps:1e-6 "median is zero" 0. (q ~df:7 0.5);
  close ~eps:1e-6 "antisymmetric" 0. (q ~df:7 0.3 +. q ~df:7 0.7);
  Alcotest.check_raises "df must be positive"
    (Invalid_argument "Special.student_t_quantile: df must be >= 1")
    (fun () -> ignore (q ~df:0 0.9))

let test_band () =
  let band = C.Band.of_samples ~confidence:0.95 [| 1.; 2.; 3.; 4. |] in
  close ~eps:1e-9 "mean" 2.5 band.C.Band.mean;
  close ~eps:1e-6 "stddev" 1.290994 band.C.Band.stddev;
  (* t(3, 0.975) = 3.182; halfwidth = 3.182 * 1.291 / 2. *)
  close ~eps:0.02 "halfwidth" 2.054 band.C.Band.halfwidth;
  close ~eps:1e-6 "z-score" (-0.774597) (C.Band.z_score band 2.);
  (* Margin: consumed fraction of halfwidth + slack. *)
  close ~eps:1e-6 "inside band" (0.5 /. (band.C.Band.halfwidth +. 1.))
    (C.Band.margin band ~slack:1. 3.);
  Alcotest.(check bool) "far outside fails" true
    (C.Band.margin band ~slack:0. 50. > 1.);
  (* Degenerate band: zero spread, zero slack. *)
  let flat = C.Band.of_samples ~confidence:0.95 [| 2.; 2.; 2. |] in
  close ~eps:0. "exact agreement" 0. (C.Band.margin flat ~slack:0. 2.);
  Alcotest.(check bool) "any deviation is infinite" true
    (C.Band.margin flat ~slack:0. 2.1 = infinity);
  Alcotest.check_raises "one sample is not a band"
    (Invalid_argument "Band.of_stats: need at least two samples") (fun () ->
      ignore (C.Band.of_samples ~confidence:0.95 [| 1. |]))

(* {1 Anchors} *)

let test_anchor_margins () =
  let m = C.Anchors.margin_of in
  close ~eps:1e-9 "relative" 0.5
    (m (C.Anchors.Relative 0.1) ~expected:100. ~actual:105.);
  close ~eps:1e-9 "absolute" 2. (m (C.Anchors.Absolute 5.) ~expected:10. ~actual:20.);
  close ~eps:1e-9 "lower bound met" 0.
    (m (C.Anchors.At_least 0.03) ~expected:0.97 ~actual:0.99);
  close ~eps:1e-6 "lower bound within tolerance" 0.5
    (m (C.Anchors.At_least 0.04) ~expected:0.96 ~actual:0.94);
  Alcotest.(check bool) "lower bound breached" true
    (m (C.Anchors.At_least 0.01) ~expected:0.96 ~actual:0.9 > 1.)

let test_anchor_table_well_formed () =
  let table = C.Anchors.table () in
  Alcotest.(check bool) "table is non-trivial" true (List.length table >= 10);
  let ids = List.map (fun a -> a.C.Anchors.id) table in
  Alcotest.(check int) "ids are unique"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun a ->
      let tol_ok =
        match a.C.Anchors.kind with
        | C.Anchors.Relative t | C.Anchors.Absolute t | C.Anchors.At_least t ->
            t > 0.
      in
      Alcotest.(check bool)
        (a.C.Anchors.id ^ " has a positive tolerance")
        true tol_ok;
      Alcotest.(check bool)
        (a.C.Anchors.id ^ " names its source")
        true
        (String.length a.C.Anchors.source > 0))
    table

let test_fast_anchors_pass () =
  let r = Telemetry.Registry.create ~label:"test" () in
  let checks = C.Anchors.checks ~telemetry:r ~tier:C.Check.Fast () in
  Alcotest.(check bool) "fast anchors evaluated" true (List.length checks >= 5);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.C.Check.id ^ " passes: " ^ c.C.Check.detail)
        true (C.Check.passed c))
    checks

(* {1 Equivalence grid} *)

let test_grid_well_formed () =
  let grid = C.Equivalence.grid () in
  let ids = List.map (fun p -> p.C.Equivalence.id) grid in
  Alcotest.(check int) "point ids unique"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (p.C.Equivalence.id ^ " has enough replicates for a band")
        true
        (p.C.Equivalence.replicates >= 2);
      List.iter
        (fun (q, _) ->
          (* Every declared quantity must have a computable reference. *)
          let r = C.Equivalence.reference p q in
          Alcotest.(check bool)
            (p.C.Equivalence.id ^ "." ^ q ^ " reference is finite")
            true (Float.is_finite r))
        p.C.Equivalence.quantities)
    grid;
  let fast = List.length (C.Equivalence.points ~tier:C.Check.Fast) in
  let full = List.length (C.Equivalence.points ~tier:C.Check.Full) in
  Alcotest.(check bool) "fast is a strict subset of full" true (fast < full)

let test_equivalence_references () =
  let grid = C.Equivalence.grid () in
  let per10 =
    List.find (fun p -> p.C.Equivalence.id = "slotted.basic.per10") grid
  in
  close ~eps:1e-12 "error_share reference is the PER" 0.1
    (C.Equivalence.reference per10 "error_share");
  let chain =
    List.find (fun p -> p.C.Equivalence.id = "spatial.chain.rts.n8.w64") grid
  in
  close ~eps:0. "event-core delta reference is zero" 0.
    (C.Equivalence.reference chain "event_core_delta")

let test_task_codec_round_trip () =
  let point = List.hd (C.Equivalence.grid ()) in
  let task = C.Equivalence.task point in
  let samples =
    List.map
      (fun (q, _) -> (q, [| 0.1; 1. /. 3.; nan |]))
      point.C.Equivalence.quantities
  in
  (* NaN renders as null and decodes as NaN through the float_array codec;
     compare bit-insensitively on NaN, exactly elsewhere. *)
  match task.Runner.Task.decode (task.Runner.Task.encode samples) with
  | None -> Alcotest.fail "decode rejected its own encoding"
  | Some decoded ->
      List.iter2
        (fun (q, original) (q', got) ->
          Alcotest.(check string) "quantity order preserved" q q';
          Array.iteri
            (fun i x ->
              if Float.is_nan x then
                Alcotest.(check bool) "nan survives" true (Float.is_nan got.(i))
              else close ~eps:0. (q ^ " float exact") x got.(i))
            original)
        samples decoded

(* {1 Golden snapshots} *)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "conformance-test-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1))
  in
  at 0

let test_golden_missing_dir_skips () =
  let checks =
    C.Golden.checks
      ~telemetry:(Telemetry.Registry.create ~label:"test" ())
      ~tier:C.Check.Fast ~dir:"/nonexistent/golden" ()
  in
  Alcotest.(check bool) "missing dir yields skips, not failures" true
    (C.Check.all_passed checks);
  List.iter
    (fun c ->
      Alcotest.(check bool) "skip explains how to bless" true
        (contains c.C.Check.detail "CONFORMANCE_BLESS"))
    checks

let test_golden_bless_check_diff_cycle () =
  with_temp_dir (fun dir ->
      let r () = Telemetry.Registry.create ~label:"test" () in
      let written = C.Golden.bless ~dir ~tier:C.Check.Fast in
      Alcotest.(check int) "one file per snapshot"
        (List.length (C.Golden.snapshots ()))
        (List.length written);
      (* Blessing is deterministic: a second bless is byte-identical. *)
      let slurp path = In_channel.with_open_bin path In_channel.input_all in
      let before = List.map slurp written in
      let again = C.Golden.bless ~dir ~tier:C.Check.Fast in
      List.iter2
        (fun path old ->
          Alcotest.(check string)
            (path ^ " re-blessed byte-identical")
            old (slurp path))
        again before;
      (* Freshly blessed goldens pass. *)
      let checks =
        C.Golden.checks ~telemetry:(r ()) ~tier:C.Check.Fast ~dir ()
      in
      Alcotest.(check bool) "fresh goldens pass" true
        (C.Check.all_passed checks);
      (* Corrupt one numeric field and the diff must name it, show both
         values and point at the bless command. *)
      let victim = Filename.concat dir "multihop_quasi.jsonl" in
      let corrupted =
        let line = slurp victim in
        let json = Telemetry.Jsonx.parse (String.trim line) in
        match json with
        | Telemetry.Jsonx.Obj fields ->
            Telemetry.Jsonx.to_string
              (Telemetry.Jsonx.Obj
                 (List.map
                    (function
                      | "w_m", _ -> ("w_m", Telemetry.Jsonx.Int 1000000)
                      | field -> field)
                    fields))
            ^ "\n"
        | _ -> Alcotest.fail "golden line is not an object"
      in
      Out_channel.with_open_bin victim (fun oc ->
          Out_channel.output_string oc corrupted);
      let checks =
        C.Golden.checks ~telemetry:(r ()) ~tier:C.Check.Fast ~dir ()
      in
      let failing =
        List.filter (fun c -> not (C.Check.passed c)) checks
      in
      Alcotest.(check int) "exactly the corrupted snapshot fails" 1
        (List.length failing);
      let detail = (List.hd failing).C.Check.detail in
      Alcotest.(check bool) "diff names the field" true
        (contains detail "w_m");
      Alcotest.(check bool) "diff shows the corrupted value" true
        (contains detail "1000000");
      Alcotest.(check bool) "failure points at the bless command" true
        (contains detail "CONFORMANCE_BLESS"))

let test_golden_tolerance_policy () =
  (* A toleranced diff consumes margin proportionally; an exact diff is
     all-or-nothing.  Probe via the policy-level record diff through a
     bless/patch cycle on the toleranced snapshot. *)
  with_temp_dir (fun dir ->
      ignore (C.Golden.bless ~dir ~tier:C.Check.Fast);
      let path = Filename.concat dir "oracle_backends.jsonl" in
      let slurp p = In_channel.with_open_bin p In_channel.input_all in
      let original = slurp path in
      (* Nudge every slotted utility by ~1%: inside the 5% tolerance. *)
      let nudged =
        String.concat "\n"
          (List.map
             (fun line ->
               if String.trim line = "" then line
               else
                 let json = Telemetry.Jsonx.parse line in
                 match json with
                 | Telemetry.Jsonx.Obj fields ->
                     Telemetry.Jsonx.to_string
                       (Telemetry.Jsonx.Obj
                          (List.map
                             (function
                               | "utility_slotted", Telemetry.Jsonx.Float v ->
                                   ( "utility_slotted",
                                     Telemetry.Jsonx.Float (v *. 1.01) )
                               | field -> field)
                             fields))
                 | _ -> line)
             (String.split_on_char '\n' original))
      in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc nudged);
      let checks =
        C.Golden.checks
          ~telemetry:(Telemetry.Registry.create ~label:"test" ())
          ~tier:C.Check.Fast ~dir ()
      in
      let backend_check =
        List.find (fun c -> c.C.Check.id = "golden.oracle_backends") checks
      in
      Alcotest.(check bool) "1% drift passes a 5% tolerance" true
        (C.Check.passed backend_check))

(* {1 Report} *)

let test_report_shape () =
  let checks =
    [
      C.Check.v ~id:"equivalence.x" ~group:"equivalence" ~margin:0.2
        ~detail:"fine" ();
      C.Check.v ~id:"anchor.y" ~group:"anchor" ~margin:1.7 ~detail:"over" ();
      C.Check.skip ~id:"golden.z" ~group:"golden" "absent";
    ]
  in
  let report = C.Check.report checks in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " appears") true (contains report needle))
    [ "equivalence.x"; "anchor.y"; "golden.z"; "FAIL"; "skip"; "1 fail" ];
  Alcotest.(check bool) "summary names the worst check" true
    (contains (C.Check.summary checks) "anchor.y")

let () =
  Alcotest.run "conformance"
    [
      ( "check",
        [
          Alcotest.test_case "margin semantics" `Quick
            test_check_margin_semantics;
          Alcotest.test_case "tiers" `Quick test_tiers;
          Alcotest.test_case "telemetry counters" `Quick test_check_emit_counts;
          Alcotest.test_case "report shape" `Quick test_report_shape;
        ] );
      ( "band",
        [
          Alcotest.test_case "student-t quantile" `Quick test_student_t_quantile;
          Alcotest.test_case "confidence band" `Quick test_band;
        ] );
      ( "anchors",
        [
          Alcotest.test_case "margin kinds" `Quick test_anchor_margins;
          Alcotest.test_case "table well-formed" `Quick
            test_anchor_table_well_formed;
          Alcotest.test_case "fast anchors pass" `Quick test_fast_anchors_pass;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "grid well-formed" `Quick test_grid_well_formed;
          Alcotest.test_case "references" `Quick test_equivalence_references;
          Alcotest.test_case "task codec round-trip" `Quick
            test_task_codec_round_trip;
        ] );
      ( "golden",
        [
          Alcotest.test_case "missing dir skips" `Quick
            test_golden_missing_dir_skips;
          Alcotest.test_case "bless/check/diff cycle" `Quick
            test_golden_bless_check_diff_cycle;
          Alcotest.test_case "tolerance policy" `Quick
            test_golden_tolerance_policy;
        ] );
    ]
