(* Tests for the persistent equilibrium store: codec round-trips (qcheck),
   persistence across reopen, crash-safety (torn final line, bit flips,
   kill mid-write), the advisory lock, compaction, and the oracle's
   store/warm-start integration. *)

module J = Telemetry.Jsonx

let temp_dir () =
  let path = Filename.temp_file "store_test" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let active dir = Filename.concat dir "active.jsonl"

let read_lines path =
  In_channel.with_open_bin path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")

let write_lines path lines =
  Out_channel.with_open_bin path (fun oc ->
      List.iter
        (fun l ->
          Out_channel.output_string oc l;
          Out_channel.output_char oc '\n')
        lines)

(* {1 Codec} *)

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun i -> J.Int i) int;
        map (fun f -> J.Float f) (float_bound_exclusive 1e9);
        map (fun s -> J.String s) (string_size ~gen:printable (int_bound 12));
      ]
  in
  sized (fun n ->
      fix
        (fun self n ->
          if n = 0 then scalar
          else
            oneof
              [
                scalar;
                map (fun l -> J.List l) (list_size (int_bound 4) (self (n / 2)));
                map
                  (fun kvs -> J.Obj kvs)
                  (list_size (int_bound 4)
                     (pair (string_size ~gen:printable (int_bound 8)) (self (n / 2))));
              ])
        (min n 4))

let test_codec_roundtrip_qcheck =
  QCheck.Test.make ~count:200 ~name:"codec round-trips key and value"
    (QCheck.make
       ~print:(fun (k, v) -> k ^ " -> " ^ J.to_string v)
       QCheck.Gen.(pair (string_size ~gen:printable (int_bound 40)) json_gen))
    (fun (key, value) ->
      (* Keys are store-internal (printable, no newlines); values arbitrary. *)
      QCheck.assume (not (String.contains key '\n'));
      match Store.Codec.decode (Store.Codec.encode ~key value) with
      | Some (k, v) -> k = key && J.to_string v = J.to_string value
      | None -> false)

let test_codec_rejects_damage () =
  let line = Store.Codec.encode ~key:"k" (J.Float 19.582154595880152) in
  Alcotest.(check bool) "intact decodes" true (Store.Codec.decode line <> None);
  (* Flip one character in the payload. *)
  let flipped = Bytes.of_string line in
  Bytes.set flipped (String.length line - 2) 'X';
  Alcotest.(check (option unit)) "bit flip rejected" None
    (Option.map ignore (Store.Codec.decode (Bytes.to_string flipped)));
  (* Truncate (torn final line). *)
  Alcotest.(check (option unit)) "torn line rejected" None
    (Option.map ignore
       (Store.Codec.decode (String.sub line 0 (String.length line - 3))));
  (* Damage the digest itself. *)
  let bad_digest = "0000000000000000" ^ String.sub line 16 (String.length line - 16) in
  Alcotest.(check (option unit)) "bad digest rejected" None
    (Option.map ignore (Store.Codec.decode bad_digest))

let test_float_bits_roundtrip () =
  (* The property the oracle's bit-identical store tier rests on. *)
  let values = [ 19.582154595880152; 0.04784643920098388; 1e-300; -0.0 ] in
  List.iter
    (fun f ->
      match Store.Codec.decode (Store.Codec.encode ~key:"f" (J.Float f)) with
      | Some (_, J.Float g) ->
          Alcotest.(check bool)
            (Printf.sprintf "bits of %h" f)
            true
            (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float g))
      | _ -> Alcotest.fail "float entry did not decode as float")
    values

(* {1 Store} *)

let test_persistence_across_reopen () =
  let dir = temp_dir () in
  Store.with_store dir (fun s ->
      Store.put s ~key:"a" (J.Int 1);
      Store.put s ~key:"b" (J.Float 2.5);
      Store.put s ~key:"a" (J.Int 3) (* supersedes *));
  Store.with_store dir (fun s ->
      Alcotest.(check int) "live entries" 2 (Store.entries s);
      Alcotest.(check bool) "later entry wins" true
        (Store.find s ~key:"a" = Some (J.Int 3));
      Alcotest.(check bool) "b kept" true (Store.find s ~key:"b" = Some (J.Float 2.5)))

let test_torn_final_line_dropped () =
  let dir = temp_dir () in
  Store.with_store dir (fun s ->
      Store.put s ~key:"a" (J.Int 1);
      Store.put s ~key:"b" (J.Int 2));
  (* Simulate a kill mid-append: a half-written final line. *)
  let lines = read_lines (active dir) in
  let torn =
    match List.rev lines with
    | last :: rest ->
        List.rev (String.sub last 0 (String.length last / 2) :: rest)
    | [] -> assert false
  in
  write_lines (active dir) torn;
  let registry = Telemetry.Registry.create () in
  Store.with_store ~telemetry:registry dir (fun s ->
      Alcotest.(check int) "only the torn entry lost" 1 (Store.entries s);
      Alcotest.(check bool) "first entry intact" true
        (Store.find s ~key:"a" = Some (J.Int 1));
      Alcotest.(check int) "damage counted" 1
        (Telemetry.Metric.count
           (Telemetry.Registry.counter registry "store.corrupt_entries")))

let test_bit_flip_dropped_entrywise () =
  let dir = temp_dir () in
  Store.with_store dir (fun s ->
      List.iter (fun k -> Store.put s ~key:k (J.String k)) [ "a"; "b"; "c" ]);
  let lines = read_lines (active dir) in
  (* Corrupt the middle entry (line 2 of header + 3 entries). *)
  let flipped =
    List.mapi
      (fun i l ->
        if i = 2 then (
          let b = Bytes.of_string l in
          Bytes.set b (Bytes.length b - 1) '?';
          Bytes.to_string b)
        else l)
      lines
  in
  write_lines (active dir) flipped;
  Store.with_store dir (fun s ->
      Alcotest.(check int) "two entries survive" 2 (Store.entries s);
      Alcotest.(check bool) "a survives" true (Store.find s ~key:"a" <> None);
      Alcotest.(check bool) "c survives" true (Store.find s ~key:"c" <> None);
      Alcotest.(check bool) "b dropped" true (Store.find s ~key:"b" = None))

let test_bad_magic_raises () =
  let dir = temp_dir () in
  Store.with_store dir (fun s -> Store.put s ~key:"a" (J.Int 1));
  let lines = read_lines (active dir) in
  let refused header =
    write_lines (active dir) (header :: List.tl lines);
    match Store.with_store dir (fun _ -> ()) with
    | exception Store.Corrupt _ -> true
    | () -> false
  in
  (* A file that is not ours at all, and one that merely claims a
     different format: both must be refused whole, not salvaged. *)
  Alcotest.(check bool) "non-JSON header refused" true (refused "TRACEFILE99");
  Alcotest.(check bool) "wrong magic refused" true
    (refused {|{"magic":"NOTASTORE","version":1}|});
  Alcotest.(check bool) "future version refused" true
    (refused {|{"magic":"MACSTORE1","version":99}|})

let test_second_opener_fails_fast () =
  let dir = temp_dir () in
  let s = Store.open_dir dir in
  Alcotest.(check bool) "second open raises Locked" true
    (match Store.open_dir dir with
    | exception Store.Locked _ -> true
    | s2 ->
        Store.close s2;
        false);
  Store.close s;
  (* The lock dies with the holder: reopening after close succeeds. *)
  Store.with_store dir (fun _ -> ())

let test_compaction () =
  let dir = temp_dir () in
  let registry = Telemetry.Registry.create () in
  Store.with_store ~telemetry:registry dir (fun s ->
      for i = 1 to 10 do
        Store.put s ~key:"hot" (J.Int i)
      done;
      Store.put s ~key:"other" (J.Bool true);
      Alcotest.(check int) "live before compaction" 2 (Store.entries s);
      Store.compact s;
      Alcotest.(check int) "live after compaction" 2 (Store.entries s);
      Alcotest.(check bool) "latest value survives" true
        (Store.find s ~key:"hot" = Some (J.Int 10)));
  (* After compaction the active log holds only its header. *)
  Alcotest.(check int) "active log truncated" 1
    (List.length (read_lines (active dir)));
  Store.with_store dir (fun s ->
      Alcotest.(check int) "compacted store reopens" 2 (Store.entries s);
      Alcotest.(check bool) "value intact" true
        (Store.find s ~key:"hot" = Some (J.Int 10)))

let test_kill_mid_write_resumes () =
  (* The store-level mirror of the runner's resume-after-kill test: write
     some entries, tear the log mid-entry, reopen, and keep appending —
     the survivors plus the new entries must all be there on a third
     open. *)
  let dir = temp_dir () in
  Store.with_store dir (fun s ->
      Store.put s ~key:"a" (J.Int 1);
      Store.put s ~key:"b" (J.Int 2));
  let lines = read_lines (active dir) in
  let torn =
    match List.rev lines with
    | last :: rest -> List.rev (String.sub last 0 7 :: rest)
    | [] -> assert false
  in
  write_lines (active dir) torn;
  Store.with_store dir (fun s ->
      Alcotest.(check bool) "survivor readable" true
        (Store.find s ~key:"a" = Some (J.Int 1));
      Store.put s ~key:"b" (J.Int 22);
      Store.put s ~key:"c" (J.Int 3));
  Store.with_store dir (fun s ->
      Alcotest.(check int) "all live entries present" 3 (Store.entries s);
      Alcotest.(check bool) "recomputed entry wins" true
        (Store.find s ~key:"b" = Some (J.Int 22)))

(* {1 Oracle integration} *)

let params = Dcf.Params.default

let test_oracle_store_bit_identical () =
  let dir = temp_dir () in
  let direct = Macgame.Oracle.uniform (Macgame.Oracle.analytic params) ~n:7 ~w:96 in
  let first =
    Store.with_store dir (fun store ->
        Macgame.Oracle.uniform
          (Macgame.Oracle.create ~backend:Analytic ~store params)
          ~n:7 ~w:96)
  in
  let second =
    Store.with_store dir (fun store ->
        let oracle = Macgame.Oracle.create ~backend:Analytic ~store params in
        let view, tier = Macgame.Oracle.uniform_outcome oracle ~n:7 ~w:96 in
        Alcotest.(check string) "answered from the store" "store"
          (Macgame.Oracle.tier_name tier);
        view)
  in
  let bits v = Int64.bits_of_float v in
  List.iter
    (fun (name, f) ->
      Alcotest.(check int64) name (bits (f direct)) (bits (f second));
      Alcotest.(check int64) (name ^ " cold") (bits (f direct)) (bits (f first)))
    [
      ("tau", fun (v : Macgame.Oracle.uniform_view) -> v.tau);
      ("p", fun v -> v.p);
      ("utility", fun v -> v.utility);
      ("throughput", fun v -> v.throughput);
      ("slot_time", fun v -> v.slot_time);
    ]

let test_oracle_profile_store_tier () =
  let dir = temp_dir () in
  let profile = [| 16; 32; 32; 64 |] in
  let cold =
    Store.with_store dir (fun store ->
        Macgame.Oracle.payoffs
          (Macgame.Oracle.create ~backend:Analytic ~store params)
          profile)
  in
  Store.with_store dir (fun store ->
      let oracle = Macgame.Oracle.create ~backend:Analytic ~store params in
      let payoffs, tier = Macgame.Oracle.payoffs_outcome oracle profile in
      Alcotest.(check string) "profile row from store" "store"
        (Macgame.Oracle.tier_name tier);
      Array.iteri
        (fun i u ->
          Alcotest.(check int64)
            (Printf.sprintf "payoff %d" i)
            (Int64.bits_of_float cold.(i))
            (Int64.bits_of_float u))
        payoffs)

let test_warm_start_counts_and_agrees () =
  let dir = temp_dir () in
  let registry = Telemetry.Registry.create () in
  let tau_cold =
    (Macgame.Oracle.uniform (Macgame.Oracle.analytic params) ~n:6 ~w:200).tau
  in
  Store.with_store dir (fun store ->
      ignore
        (Macgame.Oracle.uniform
           (Macgame.Oracle.create ~telemetry:registry ~backend:Analytic ~store
              params)
           ~n:6 ~w:128));
  Store.with_store dir (fun store ->
      let oracle =
        Macgame.Oracle.create ~telemetry:registry ~backend:Analytic ~store
          ~warm_start:true params
      in
      let tau_warm = (Macgame.Oracle.uniform oracle ~n:6 ~w:200).tau in
      Alcotest.(check int) "warm start used" 1
        (Telemetry.Metric.count
           (Telemetry.Registry.counter registry "oracle.warmstart.used"));
      Alcotest.(check bool) "tolerance-level agreement" true
        (Float.abs (tau_warm -. tau_cold) <= 1e-9 *. Float.abs tau_cold))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "store"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest test_codec_roundtrip_qcheck;
          quick "damage rejected" test_codec_rejects_damage;
          quick "float bits round-trip" test_float_bits_roundtrip;
        ] );
      ( "store",
        [
          quick "persistence across reopen" test_persistence_across_reopen;
          quick "torn final line dropped" test_torn_final_line_dropped;
          quick "bit flip dropped entry-wise" test_bit_flip_dropped_entrywise;
          quick "bad magic raises Corrupt" test_bad_magic_raises;
          quick "second opener fails fast" test_second_opener_fails_fast;
          quick "compaction" test_compaction;
          quick "kill mid-write resumes" test_kill_mid_write_resumes;
        ] );
      ( "oracle",
        [
          quick "store tier bit-identical" test_oracle_store_bit_identical;
          quick "profile rows persist" test_oracle_profile_store_tier;
          quick "warm start counts and agrees" test_warm_start_counts_and_agrees;
        ] );
    ]
