(* Unit and property tests for the prelude library: deterministic RNG,
   streaming statistics, numeric helpers, table/plot rendering. *)

open Prelude

let check_float = Alcotest.(check (float 1e-9))

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_close ?(eps = 1e-9) msg expected actual =
  if not (Util.approx_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* {1 Rng} *)

let test_rng_deterministic () =
  let a = Rng.create 12345 and b = Rng.create 12345 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues the stream" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_diverges () =
  let a = Rng.create 99 in
  let child = Rng.split a in
  let xs = Array.init 16 (fun _ -> Rng.bits64 a) in
  let ys = Array.init 16 (fun _ -> Rng.bits64 child) in
  Alcotest.(check bool) "parent and child streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "Rng.int out of range: %d" v
  done

let test_rng_int_rejects_bad_bound () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create 5 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in rng (-3) 3 in
    if v < -3 || v > 3 then Alcotest.failf "int_in out of range: %d" v
  done;
  (* Degenerate one-point range *)
  Alcotest.(check int) "singleton range" 9 (Rng.int_in rng 9 9)

let test_rng_int_uniformity () =
  let rng = Rng.create 11 in
  let buckets = Array.make 10 0 in
  let samples = 100_000 in
  for _ = 1 to samples do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  let expected = float_of_int samples /. 10. in
  Array.iteri
    (fun i c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      if dev > 0.05 then Alcotest.failf "bucket %d deviates %.3f" i dev)
    buckets

let test_rng_float_range () =
  let rng = Rng.create 17 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    if v < 0. || v >= 2.5 then Alcotest.failf "float out of range: %f" v
  done

let test_rng_float_mean () =
  let rng = Rng.create 23 in
  let acc = Stats.create () in
  for _ = 1 to 100_000 do
    Stats.add acc (Rng.float rng 1.0)
  done;
  check_close ~eps:0.01 "uniform mean ~ 0.5" 0.5 (Stats.mean acc)

let test_rng_bernoulli () =
  let rng = Rng.create 29 in
  let hits = ref 0 in
  let samples = 100_000 in
  for _ = 1 to samples do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  check_close ~eps:0.02 "bernoulli(0.3) rate" 0.3
    (float_of_int !hits /. float_of_int samples)

let test_rng_exponential_mean () =
  let rng = Rng.create 31 in
  let acc = Stats.create () in
  for _ = 1 to 100_000 do
    Stats.add acc (Rng.exponential rng 2.0)
  done;
  check_close ~eps:0.02 "Exp(2) mean ~ 0.5" 0.5 (Stats.mean acc)

let test_rng_exponential_positive () =
  let rng = Rng.create 37 in
  for _ = 1 to 10_000 do
    if Rng.exponential rng 1.0 < 0. then Alcotest.fail "negative exponential"
  done;
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Rng.exponential: rate must be positive") (fun () ->
      ignore (Rng.exponential rng 0.))

let test_rng_normal_moments () =
  let rng = Rng.create 41 in
  let acc = Stats.create () in
  for _ = 1 to 200_000 do
    Stats.add acc (Rng.normal rng ~mean:3. ~stddev:2.)
  done;
  check_close ~eps:0.03 "normal mean" 3. (Stats.mean acc);
  check_close ~eps:0.05 "normal stddev" 2. (Stats.stddev acc)

let test_rng_pick () =
  let rng = Rng.create 43 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Rng.pick rng arr in
    if not (Array.mem v arr) then Alcotest.failf "picked foreign value %d" v
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]))

let test_rng_shuffle_permutation () =
  let rng = Rng.create 47 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 Fun.id) sorted

(* {1 Stats} *)

let test_stats_empty () =
  let t = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count t);
  check_float "mean" 0. (Stats.mean t);
  check_float "variance" 0. (Stats.variance t)

let test_stats_single () =
  let t = Stats.create () in
  Stats.add t 4.2;
  check_float "mean" 4.2 (Stats.mean t);
  check_float "variance of one" 0. (Stats.variance t);
  check_float "min" 4.2 (Stats.min t);
  check_float "max" 4.2 (Stats.max t)

let test_stats_known_values () =
  let t = Stats.create () in
  Stats.add_many t [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |];
  check_float "mean" 5. (Stats.mean t);
  check_close "sample variance" (32. /. 7.) (Stats.variance t);
  check_close "population variance" 4. (Stats.population_variance t);
  check_float "min" 2. (Stats.min t);
  check_float "max" 9. (Stats.max t);
  check_close "sum" 40. (Stats.sum t)

let test_stats_merge_equals_combined () =
  let xs = Array.init 37 (fun i -> sin (float_of_int i)) in
  let ys = Array.init 53 (fun i -> cos (float_of_int i) *. 3.) in
  let a = Stats.create () and b = Stats.create () and all = Stats.create () in
  Stats.add_many a xs;
  Stats.add_many b ys;
  Stats.add_many all xs;
  Stats.add_many all ys;
  let merged = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count all) (Stats.count merged);
  check_close "mean" (Stats.mean all) (Stats.mean merged);
  check_close "variance" (Stats.variance all) (Stats.variance merged);
  check_float "min" (Stats.min all) (Stats.min merged);
  check_float "max" (Stats.max all) (Stats.max merged)

let test_stats_merge_with_empty () =
  let a = Stats.create () in
  Stats.add_many a [| 1.; 2.; 3. |];
  let e = Stats.create () in
  let m1 = Stats.merge a e and m2 = Stats.merge e a in
  check_close "merge right empty" 2. (Stats.mean m1);
  check_close "merge left empty" 2. (Stats.mean m2)

let test_stats_confidence_interval () =
  let t = Stats.create () in
  Stats.add_many t (Array.make 100 5.);
  check_float "zero spread" 0. (Stats.confidence_interval_95 t);
  let u = Stats.create () in
  Stats.add_many u [| 0.; 10. |];
  (* stddev = sqrt(50), n = 2 *)
  check_close "ci" (1.96 *. sqrt 50. /. sqrt 2.) (Stats.confidence_interval_95 u)

let test_percentile () =
  let xs = [| 15.; 20.; 35.; 40.; 50. |] in
  check_float "p0 is min" 15. (Stats.percentile xs 0.);
  check_float "p100 is max" 50. (Stats.percentile xs 100.);
  check_float "median" 35. (Stats.median xs);
  check_close "p25 interpolates" 20. (Stats.percentile xs 25.);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Stats.percentile [||] 50.))

let test_percentile_does_not_mutate () =
  let xs = [| 3.; 1.; 2. |] in
  let _ = Stats.percentile xs 50. in
  Alcotest.(check (array (float 0.))) "input untouched" [| 3.; 1.; 2. |] xs

let test_jain_fairness () =
  check_float "perfectly fair" 1. (Stats.jain_fairness [| 5.; 5.; 5.; 5. |]);
  check_close "one hog" 0.25 (Stats.jain_fairness [| 1.; 0.; 0.; 0. |]);
  check_float "all zero treated as fair" 1. (Stats.jain_fairness [| 0.; 0. |]);
  (* (1+2)² / (2·(1+4)) = 9/10 *)
  check_close "known mixed" 0.9 (Stats.jain_fairness [| 1.; 2. |])

let test_jain_fairness_bounds =
  QCheck.Test.make ~name:"jain fairness lies in [1/n, 1]" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 20) (float_bound_exclusive 100.))
    (fun xs ->
      QCheck.assume (Array.exists (fun x -> x > 0.) xs);
      let f = Stats.jain_fairness xs in
      f >= (1. /. float_of_int (Array.length xs)) -. 1e-9 && f <= 1. +. 1e-9)

let test_welford_matches_naive =
  QCheck.Test.make ~name:"welford variance matches two-pass" ~count:200
    QCheck.(array_of_size Gen.(int_range 2 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let t = Stats.create () in
      Stats.add_many t xs;
      let n = float_of_int (Array.length xs) in
      let mean = Array.fold_left ( +. ) 0. xs /. n in
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.)
      in
      Util.approx_equal ~eps:1e-6 var (Stats.variance t))

(* {1 Util} *)

let test_clamp () =
  check_float "below" 1. (Util.clamp ~lo:1. ~hi:2. 0.);
  check_float "above" 2. (Util.clamp ~lo:1. ~hi:2. 3.);
  check_float "inside" 1.5 (Util.clamp ~lo:1. ~hi:2. 1.5);
  Alcotest.(check int) "int below" 1 (Util.clamp_int ~lo:1 ~hi:5 0);
  Alcotest.(check int) "int above" 5 (Util.clamp_int ~lo:1 ~hi:5 9)

let test_approx_equal () =
  Alcotest.(check bool) "relative tolerance" true
    (Util.approx_equal ~eps:1e-9 1e12 (1e12 +. 1.));
  Alcotest.(check bool) "absolute near zero" true
    (Util.approx_equal ~eps:1e-9 0. 1e-10);
  Alcotest.(check bool) "clearly different" false (Util.approx_equal 1. 2.)

let test_linspace () =
  let xs = Util.linspace 0. 1. 5 in
  Alcotest.(check int) "length" 5 (Array.length xs);
  check_float "first" 0. xs.(0);
  check_float "last" 1. xs.(4);
  check_float "step" 0.25 xs.(1);
  Alcotest.check_raises "too few"
    (Invalid_argument "Util.linspace: need at least two points") (fun () ->
      ignore (Util.linspace 0. 1. 1))

let test_logspace () =
  let xs = Util.logspace 1. 100. 3 in
  check_close "geometric middle" 10. xs.(1);
  check_close "endpoints" 100. xs.(2)

let test_int_range () =
  Alcotest.(check (array int)) "simple" [| 3; 4; 5 |] (Util.int_range 3 5);
  Alcotest.(check (array int)) "empty" [||] (Util.int_range 5 3);
  Alcotest.(check (array int)) "singleton" [| 7 |] (Util.int_range 7 7)

let test_argmax_argmin () =
  let a = [| 3.; 1.; 4.; 1.; 5.; 9.; 2.; 6. |] in
  Alcotest.(check int) "argmax" 5 (Util.argmax Fun.id a);
  Alcotest.(check int) "argmin (first of ties)" 1 (Util.argmin Fun.id a);
  Alcotest.check_raises "empty" (Invalid_argument "Util.argmax: empty array")
    (fun () -> ignore (Util.argmax Fun.id [||]))

let test_geometric_sum () =
  check_close "r=2, k=5" 31. (Util.geometric_sum 2. 5);
  check_close "r=1 limit" 5. (Util.geometric_sum 1. 5);
  check_close "r=0.5" 1.875 (Util.geometric_sum 0.5 4);
  check_float "k=0" 0. (Util.geometric_sum 3. 0)

let test_geometric_sum_matches_loop =
  QCheck.Test.make ~name:"geometric sum matches explicit loop" ~count:200
    QCheck.(pair (float_range 0. 3.) (int_range 0 20))
    (fun (r, k) ->
      let direct = ref 0. and pow = ref 1. in
      for _ = 1 to k do
        direct := !direct +. !pow;
        pow := !pow *. r
      done;
      Util.approx_equal ~eps:1e-6 !direct (Util.geometric_sum r k))

let test_fold_range () =
  Alcotest.(check int) "sum 1..10" 55
    (Util.fold_range 1 10 ~init:0 ~f:( + ));
  Alcotest.(check int) "empty range keeps init" 42
    (Util.fold_range 5 4 ~init:42 ~f:( + ))

(* {1 Table} *)

let test_table_render () =
  let columns = [ Table.column ~align:Table.Left "name"; Table.column "value" ] in
  let out = Table.render columns [ [ "alpha"; "1" ]; [ "b"; "22" ] ] in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: sep :: row1 :: _ ->
      Alcotest.(check string) "header" "name  | value" header;
      Alcotest.(check string) "separator" "------+------" sep;
      Alcotest.(check string) "left/right alignment" "alpha |     1" row1
  | _ -> Alcotest.fail "unexpected table shape");
  Alcotest.(check bool) "trailing newline" true
    (String.length out > 0 && out.[String.length out - 1] = '\n')

let test_table_pads_short_rows () =
  let columns = [ Table.column "a"; Table.column "b" ] in
  let out = Table.render columns [ [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_table_rejects_wide_rows () =
  let columns = [ Table.column "a" ] in
  Alcotest.check_raises "too wide"
    (Invalid_argument "Table.render: row wider than header") (fun () ->
      ignore (Table.render columns [ [ "1"; "2" ] ]))

let test_table_render_floats () =
  let out = Table.render_floats ~precision:3 [ Table.column "x" ] [ [ 3.14159 ] ] in
  Alcotest.(check bool) "rounds to precision" true (contains out "3.14");
  Alcotest.(check bool) "drops extra digits" false (contains out "3.14159")

(* {1 Ascii_plot} *)

let test_plot_empty () =
  Alcotest.(check string) "placeholder" "(no data to plot)\n" (Ascii_plot.plot [])

let test_plot_contains_glyphs_and_legend () =
  let series =
    [
      { Ascii_plot.label = "rising"; points = [| (0., 0.); (1., 1.); (2., 2.) |] };
      { Ascii_plot.label = "falling"; points = [| (0., 2.); (1., 1.); (2., 0.) |] };
    ]
  in
  let out = Ascii_plot.plot ~width:20 ~height:10 ~title:"demo" series in
  Alcotest.(check bool) "title present" true
    (String.length out >= 4 && String.sub out 0 4 = "demo");
  Alcotest.(check bool) "legend mentions labels" true
    (contains out "rising" && contains out "falling");
  Alcotest.(check bool) "first glyph plotted" true (String.contains out '*');
  Alcotest.(check bool) "second glyph plotted" true (String.contains out '+')

let test_plot_constant_series () =
  (* Degenerate y-range must not crash or divide by zero. *)
  let series = [ { Ascii_plot.label = "flat"; points = [| (0., 1.); (5., 1.) |] } ] in
  let out = Ascii_plot.plot series in
  Alcotest.(check bool) "rendered" true (String.length out > 0)

let suite_rng =
  [
    Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "copy continues stream" `Quick test_rng_copy_independent;
    Alcotest.test_case "split diverges" `Quick test_rng_split_diverges;
    Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "int rejects bad bound" `Quick test_rng_int_rejects_bad_bound;
    Alcotest.test_case "int_in range" `Quick test_rng_int_in;
    Alcotest.test_case "int uniformity" `Quick test_rng_int_uniformity;
    Alcotest.test_case "float range" `Quick test_rng_float_range;
    Alcotest.test_case "float mean" `Quick test_rng_float_mean;
    Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli;
    Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
    Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
    Alcotest.test_case "pick membership" `Quick test_rng_pick;
    Alcotest.test_case "shuffle is permutation" `Quick test_rng_shuffle_permutation;
  ]

let suite_stats =
  [
    Alcotest.test_case "empty accumulator" `Quick test_stats_empty;
    Alcotest.test_case "single observation" `Quick test_stats_single;
    Alcotest.test_case "known values" `Quick test_stats_known_values;
    Alcotest.test_case "merge equals combined" `Quick test_stats_merge_equals_combined;
    Alcotest.test_case "merge with empty" `Quick test_stats_merge_with_empty;
    Alcotest.test_case "confidence interval" `Quick test_stats_confidence_interval;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile preserves input" `Quick test_percentile_does_not_mutate;
    Alcotest.test_case "jain fairness" `Quick test_jain_fairness;
    QCheck_alcotest.to_alcotest test_jain_fairness_bounds;
    QCheck_alcotest.to_alcotest test_welford_matches_naive;
  ]

let suite_util =
  [
    Alcotest.test_case "clamp" `Quick test_clamp;
    Alcotest.test_case "approx_equal" `Quick test_approx_equal;
    Alcotest.test_case "linspace" `Quick test_linspace;
    Alcotest.test_case "logspace" `Quick test_logspace;
    Alcotest.test_case "int_range" `Quick test_int_range;
    Alcotest.test_case "argmax/argmin" `Quick test_argmax_argmin;
    Alcotest.test_case "geometric_sum" `Quick test_geometric_sum;
    QCheck_alcotest.to_alcotest test_geometric_sum_matches_loop;
    Alcotest.test_case "fold_range" `Quick test_fold_range;
  ]

let suite_render =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table pads short rows" `Quick test_table_pads_short_rows;
    Alcotest.test_case "table rejects wide rows" `Quick test_table_rejects_wide_rows;
    Alcotest.test_case "table float formatting" `Quick test_table_render_floats;
    Alcotest.test_case "plot empty" `Quick test_plot_empty;
    Alcotest.test_case "plot glyphs and legend" `Quick test_plot_contains_glyphs_and_legend;
    Alcotest.test_case "plot constant series" `Quick test_plot_constant_series;
  ]

(* {1 Heap} *)

let drain heap =
  let out = ref [] in
  while not (Prelude.Heap.is_empty heap) do
    out := Prelude.Heap.pop_min heap :: !out
  done;
  List.rev !out

let test_heap_basic () =
  let h = Prelude.Heap.create () in
  Alcotest.(check bool) "fresh heap empty" true (Prelude.Heap.is_empty h);
  List.iter (Prelude.Heap.push h) [ 5; 3; 9; 1; 7; 1 ];
  Alcotest.(check int) "length counts duplicates" 6 (Prelude.Heap.length h);
  Alcotest.(check int) "min visible without popping" 1 (Prelude.Heap.min_elt h);
  Alcotest.(check int) "min_elt does not pop" 6 (Prelude.Heap.length h);
  Alcotest.(check (list int)) "drains sorted" [ 1; 1; 3; 5; 7; 9 ] (drain h);
  Alcotest.(check bool) "empty after drain" true (Prelude.Heap.is_empty h)

let test_heap_validation () =
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Heap.create: capacity must be >= 1") (fun () ->
      ignore (Prelude.Heap.create ~capacity:0 ()));
  let h = Prelude.Heap.create () in
  Alcotest.check_raises "min of empty"
    (Invalid_argument "Heap.min_elt: empty heap") (fun () ->
      ignore (Prelude.Heap.min_elt h));
  Alcotest.check_raises "pop of empty"
    (Invalid_argument "Heap.pop_min: empty heap") (fun () ->
      ignore (Prelude.Heap.pop_min h))

let test_heap_interleaved () =
  (* Start at capacity 1 so pushes exercise growth, and interleave pops so
     sift-down runs against a mutating array. *)
  let h = Prelude.Heap.create ~capacity:1 () in
  List.iter (Prelude.Heap.push h) [ 4; 2; 8 ];
  Alcotest.(check int) "first pop" 2 (Prelude.Heap.pop_min h);
  List.iter (Prelude.Heap.push h) [ 1; 6 ];
  Alcotest.(check int) "new min wins" 1 (Prelude.Heap.pop_min h);
  Alcotest.(check int) "then old elements" 4 (Prelude.Heap.pop_min h);
  Prelude.Heap.clear h;
  Alcotest.(check bool) "clear empties" true (Prelude.Heap.is_empty h);
  Prelude.Heap.push h 3;
  Alcotest.(check (list int)) "reusable after clear" [ 3 ] (drain h)

let test_heap_matches_sort =
  QCheck.Test.make ~name:"heap drain = List.sort" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Prelude.Heap.create () in
      List.iter (Prelude.Heap.push h) xs;
      drain h = List.sort compare xs)

let suite_heap =
  [
    Alcotest.test_case "push/pop basics" `Quick test_heap_basic;
    Alcotest.test_case "validation" `Quick test_heap_validation;
    Alcotest.test_case "interleaved ops and growth" `Quick test_heap_interleaved;
    QCheck_alcotest.to_alcotest test_heap_matches_sort;
  ]

let () =
  Alcotest.run "prelude"
    [
      ("rng", suite_rng);
      ("heap", suite_heap);
      ("stats", suite_stats);
      ("util", suite_util);
      ("render", suite_render);
    ]
