(* Tests for the unified payoff oracle: memoization (hit/miss/solve
   accounting, bit-identical replay), agreement with the direct Dcf model
   calls it replaced, permutation invariance of both the analytic and the
   simulated backends, sim-backend determinism, and the search protocol's
   probe statistics on top of it. *)

let params = Dcf.Params.default

let bits = Int64.bits_of_float

let check_bits msg expected actual =
  if bits expected <> bits actual then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected actual

let fresh ?p_hn ?backend () =
  let registry = Telemetry.Registry.create ~label:"test-oracle" () in
  let oracle = Macgame.Oracle.create ~telemetry:registry ?p_hn ?backend params in
  let count name = Telemetry.Metric.count (Telemetry.Registry.counter registry name) in
  (oracle, count)

(* {1 Memoization} *)

let test_uniform_memo_bit_identity () =
  let oracle, count = fresh () in
  let cold = Macgame.Oracle.payoff_uniform oracle ~n:8 ~w:128 in
  Alcotest.(check int) "one miss" 1 (count "oracle.cache.misses");
  Alcotest.(check int) "one solve" 1 (count "oracle.cache.solves");
  let warm = Macgame.Oracle.payoff_uniform oracle ~n:8 ~w:128 in
  Alcotest.(check int) "one hit" 1 (count "oracle.cache.hits");
  Alcotest.(check int) "still one solve" 1 (count "oracle.cache.solves");
  check_bits "memo hit replays the stored float" cold warm

let test_profile_memo_bit_identity () =
  let oracle, count = fresh () in
  let profile = [| 64; 128; 64; 256 |] in
  let cold = Macgame.Oracle.payoffs oracle profile in
  let warm = Macgame.Oracle.payoffs oracle profile in
  Alcotest.(check int) "one miss" 1 (count "oracle.cache.misses");
  Alcotest.(check int) "one hit" 1 (count "oracle.cache.hits");
  Alcotest.(check int) "one solve" 1 (count "oracle.cache.solves");
  Array.iteri (fun i u -> check_bits "memoized payoff" cold.(i) u) warm

let test_uniform_profile_fast_path () =
  (* A uniform profile must route through the (n, w) memo and answer
     exactly what payoff_uniform answers. *)
  let oracle, count = fresh () in
  let u = Macgame.Oracle.payoff_uniform oracle ~n:5 ~w:96 in
  let via_profile = Macgame.Oracle.payoffs oracle (Array.make 5 96) in
  Alcotest.(check int) "profile reused the uniform memo" 1
    (count "oracle.cache.hits");
  Array.iter (fun v -> check_bits "same stored value" u v) via_profile

(* {1 Agreement with the direct model calls the oracle replaced} *)

let test_uniform_matches_model_homogeneous () =
  let oracle, _ = fresh () in
  List.iter
    (fun (n, w) ->
      let v = Dcf.Model.homogeneous params ~n ~w in
      let view = Macgame.Oracle.uniform oracle ~n ~w in
      check_bits "utility" v.Dcf.Model.utility view.Macgame.Oracle.utility;
      check_bits "tau" v.Dcf.Model.tau view.Macgame.Oracle.tau;
      check_bits "p" v.Dcf.Model.p view.Macgame.Oracle.p;
      check_bits "slot_time" v.Dcf.Model.slot_time
        view.Macgame.Oracle.slot_time)
    [ (1, 32); (5, 128); (20, 339); (50, 64) ]

let test_p_hn_matches_model () =
  let oracle, _ = fresh ~p_hn:0.7 () in
  let v = Dcf.Model.homogeneous ~p_hn:0.7 params ~n:6 ~w:64 in
  check_bits "degraded utility" v.Dcf.Model.utility
    (Macgame.Oracle.payoff_uniform oracle ~n:6 ~w:64)

let test_payoffs_match_model_solve () =
  (* The class-reduced path agrees with the general heterogeneous solve to
     solver tolerance (they iterate different-dimensional fixed points). *)
  let oracle, _ = fresh () in
  let profile = [| 32; 64; 128; 64; 32 |] in
  let direct = (Dcf.Model.solve params profile).Dcf.Model.utilities in
  let via_oracle = Macgame.Oracle.payoffs oracle profile in
  Array.iteri
    (fun i u ->
      if not (Prelude.Util.approx_equal ~eps:1e-6 direct.(i) u) then
        Alcotest.failf "node %d: model %.12g vs oracle %.12g" i direct.(i) u)
    via_oracle

(* {1 Permutation invariance} *)

let profile_gen =
  QCheck.Gen.(
    let* n = int_range 2 8 in
    array_size (return n) (map (fun w -> 1 lsl w) (int_range 4 9)))

let permutation_pair =
  (* A profile together with a permuted copy of it (reversal composed with
     a rotation exercises non-trivial permutations without an index list). *)
  QCheck.make
    QCheck.Gen.(
      let* profile = profile_gen in
      let* rot = int_range 0 (Array.length profile - 1) in
      let n = Array.length profile in
      let permuted = Array.init n (fun i -> profile.((n - 1 - i + rot) mod n)) in
      return (profile, permuted))
    ~print:(fun (a, b) ->
      Printf.sprintf "%s / %s"
        (String.concat "," (Array.to_list (Array.map string_of_int a)))
        (String.concat "," (Array.to_list (Array.map string_of_int b))))

let payoff_of profile payoffs =
  (* window -> payoff pairs, sorted: the multiset view of the result. *)
  List.sort compare
    (Array.to_list (Array.mapi (fun i w -> (w, payoffs.(i))) profile))

let test_dcf_solve_profile_permutation_invariant =
  (* The class solve gives both orderings bit-identical (τ, p), but the
     metrics fold over nodes in array order, so the utilities agree only
     to ulp-level float-summation noise — the oracle's sort-then-memoize
     is what upgrades this to exact invariance. *)
  QCheck.Test.make ~name:"Dcf.Model.solve_profile is permutation-invariant"
    ~count:50 permutation_pair (fun (profile, permuted) ->
      let a = payoff_of profile (Dcf.Model.solve_profile params profile).Dcf.Model.utilities in
      let b = payoff_of permuted (Dcf.Model.solve_profile params permuted).Dcf.Model.utilities in
      List.for_all2
        (fun (wa, ua) (wb, ub) ->
          wa = wb && Prelude.Util.approx_equal ~eps:1e-9 ua ub)
        a b)

let test_oracle_permutation_invariant =
  QCheck.Test.make ~name:"oracle payoffs are permutation-invariant (exact)"
    ~count:50 permutation_pair (fun (profile, permuted) ->
      let oracle, _ = fresh () in
      let a = payoff_of profile (Macgame.Oracle.payoffs oracle profile) in
      let b = payoff_of permuted (Macgame.Oracle.payoffs oracle permuted) in
      List.for_all2
        (fun (wa, ua) (wb, ub) -> wa = wb && bits ua = bits ub)
        a b)

(* {1 Simulated backends} *)

let sim_cfg = { Macgame.Oracle.duration = 0.2; replicates = 2; seed = 11 }

let test_sim_backend_deterministic () =
  List.iter
    (fun backend ->
      let one () =
        let oracle, _ = fresh ~backend () in
        Macgame.Oracle.payoffs oracle [| 32; 64; 32 |]
      in
      let a = one () and b = one () in
      Array.iteri (fun i u -> check_bits "replayable measurement" a.(i) u) b)
    [ Macgame.Oracle.Sim_slotted sim_cfg; Macgame.Oracle.Sim_spatial sim_cfg ]

let test_sim_backend_permutation_invariant () =
  (* Within-class averaging makes even noisy measurements exactly
     symmetric across permutations. *)
  let oracle, count = fresh ~backend:(Macgame.Oracle.Sim_slotted sim_cfg) () in
  let a = payoff_of [| 32; 64; 32 |] (Macgame.Oracle.payoffs oracle [| 32; 64; 32 |]) in
  let b = payoff_of [| 64; 32; 32 |] (Macgame.Oracle.payoffs oracle [| 64; 32; 32 |]) in
  List.iter2
    (fun (wa, ua) (wb, ub) ->
      Alcotest.(check int) "window class" wa wb;
      check_bits "class payoff" ua ub)
    a b;
  (* Both permutations hit the same canonical entry: one miss, one hit,
     and one solve per replicate. *)
  Alcotest.(check int) "one miss" 1 (count "oracle.cache.misses");
  Alcotest.(check int) "one hit" 1 (count "oracle.cache.hits");
  Alcotest.(check int) "replicates counted as solves" sim_cfg.replicates
    (count "oracle.cache.solves")

let test_sim_spatial_memo_bit_identity () =
  (* The Sim_spatial backend now runs the event-driven spatial core; the
     memo contract is unchanged: a warm lookup replays the stored floats
     bit-for-bit without re-simulating. *)
  let oracle, count = fresh ~backend:(Macgame.Oracle.Sim_spatial sim_cfg) () in
  let cold = Macgame.Oracle.payoff_uniform oracle ~n:4 ~w:64 in
  Alcotest.(check int) "one miss" 1 (count "oracle.cache.misses");
  Alcotest.(check int) "replicates counted as solves" sim_cfg.replicates
    (count "oracle.cache.solves");
  let warm = Macgame.Oracle.payoff_uniform oracle ~n:4 ~w:64 in
  Alcotest.(check int) "one hit" 1 (count "oracle.cache.hits");
  Alcotest.(check int) "no extra solves" sim_cfg.replicates
    (count "oracle.cache.solves");
  check_bits "memo hit replays the stored measurement" cold warm

let test_sim_backend_sane_payoffs () =
  let oracle, _ = fresh ~backend:(Macgame.Oracle.Sim_slotted sim_cfg) () in
  let u_sim = Macgame.Oracle.payoff_uniform oracle ~n:5 ~w:128 in
  let analytic, _ = fresh () in
  let u_model = Macgame.Oracle.payoff_uniform analytic ~n:5 ~w:128 in
  Alcotest.(check bool) "within 25% of the model" true
    (Float.abs (u_sim -. u_model) < 0.25 *. u_model)

(* {1 Validation} *)

let test_validation () =
  Alcotest.check_raises "empty profile"
    (Invalid_argument "Oracle.payoffs: empty profile") (fun () ->
      ignore (Macgame.Oracle.payoffs (fst (fresh ())) [||]));
  Alcotest.check_raises "window < 1"
    (Invalid_argument "Oracle.payoffs: window must be >= 1") (fun () ->
      ignore (Macgame.Oracle.payoffs (fst (fresh ())) [| 16; 0 |]));
  Alcotest.check_raises "bad replicates"
    (Invalid_argument "Oracle.create: need replicates >= 1") (fun () ->
      ignore
        (Macgame.Oracle.create
           ~backend:
             (Macgame.Oracle.Sim_slotted
                { duration = 1.; replicates = 0; seed = 0 })
           params));
  Alcotest.check_raises "bad duration"
    (Invalid_argument "Oracle.create: sim duration must be positive") (fun () ->
      ignore
        (Macgame.Oracle.create
           ~backend:
             (Macgame.Oracle.Sim_spatial
                { duration = 0.; replicates = 1; seed = 0 })
           params));
  Alcotest.check_raises "bad p_hn"
    (Invalid_argument "Oracle.create: p_hn must be in (0, 1]") (fun () ->
      ignore (Macgame.Oracle.create ~p_hn:0. params))

(* {1 Non-convergence refusal (PR 9)} *)

(* Heterogeneous, so the query routes through the class solver — whose
   iteration budget [solver_max_iter] can be strangled — rather than the
   uniform Brent fast path. *)
let hostile = [| 32; 64; 128; 256; 512 |]

let contains_substring hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let expect_nonconverged f =
  match f () with
  | _ -> Alcotest.fail "expected Oracle.Non_converged"
  | exception Macgame.Oracle.Non_converged reason -> reason

let test_nonconverged_refused_and_not_memoized () =
  let registry = Telemetry.Registry.create ~label:"test-oracle-nc" () in
  let oracle =
    Macgame.Oracle.create ~telemetry:registry ~solver_max_iter:1 params
  in
  let count name =
    Telemetry.Metric.count (Telemetry.Registry.counter registry name)
  in
  let reason =
    expect_nonconverged (fun () -> Macgame.Oracle.payoffs oracle hostile)
  in
  Alcotest.(check bool) "reason names the budget" true
    (contains_substring reason "max_iter");
  (* A second identical query must solve (and refuse) again: the failed
     answer was never memoized. *)
  ignore (expect_nonconverged (fun () -> Macgame.Oracle.payoffs oracle hostile));
  Alcotest.(check int) "counted both refusals" 2
    (count "oracle.solve.nonconverged");
  Alcotest.(check int) "nothing was memoized" 0 (count "oracle.cache.hits")

let test_nonconverged_never_persisted () =
  let dir = Filename.temp_file "oracle_nc" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Store.with_store dir (fun store ->
      let oracle = Macgame.Oracle.create ~store ~solver_max_iter:1 params in
      ignore
        (expect_nonconverged (fun () -> Macgame.Oracle.payoffs oracle hostile));
      Alcotest.(check int) "no row written" 0 (Store.entries store))

let test_nonconverged_surfaces_at_every_layer =
  QCheck.Test.make
    ~name:"max_iter=1 hostile profiles surface non-convergence at every layer"
    ~count:30
    QCheck.(pair (int_range 16 256) (int_range 16 256))
    (fun (w_a, w_b) ->
      QCheck.assume (w_a <> w_b);
      let profile = Array.concat [ Array.make 3 w_a; Array.make 3 w_b ] in
      (* Solver layer. *)
      let classes = [ (min w_a w_b, 3); (max w_a w_b, 3) ] in
      let solver_says =
        not (Dcf.Solver.solve_classes ~max_iter:1 params classes).converged
      in
      (* Model layer. *)
      let model_says =
        not (Dcf.Model.solve_profile ~max_iter:1 params profile).converged
      in
      (* Oracle layer: the same budget must turn into a refusal. *)
      let oracle = Macgame.Oracle.create ~solver_max_iter:1 params in
      let oracle_says =
        match Macgame.Oracle.payoffs oracle profile with
        | _ -> false
        | exception Macgame.Oracle.Non_converged _ -> true
      in
      solver_says && model_says && oracle_says)

let test_batch_outcome_isolates_failures () =
  let oracle = Macgame.Oracle.create ~solver_max_iter:1 params in
  let results =
    Macgame.Oracle.payoffs_batch_outcome oracle
      [|
        Macgame.Profile.of_cws (Array.make 4 64) (* uniform: Brent path *);
        Macgame.Profile.of_cws hostile (* heterogeneous: refused *);
        Macgame.Profile.of_cws (Array.make 4 128) (* unaffected by the error *);
      |]
  in
  (match results.(0) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "uniform profile refused: %s" e);
  (match results.(1) with
  | Ok _ -> Alcotest.fail "hostile profile must be refused"
  | Error reason ->
      Alcotest.(check bool) "reason names the budget" true
        (contains_substring reason "max_iter"));
  match results.(2) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "later profile poisoned by the failure: %s" e

let test_batch_agrees_with_unbatched () =
  let oracle, _ = fresh () in
  let profiles =
    Array.init 8 (fun i ->
        Macgame.Profile.of_cws [| 32 + (16 * i); 128; 128; 128 |])
  in
  let batched = Macgame.Oracle.payoffs_batch oracle profiles in
  let reference = Macgame.Oracle.analytic params in
  Array.iteri
    (fun i payoffs ->
      let cold = Macgame.Oracle.payoffs_profile reference profiles.(i) in
      Array.iteri
        (fun j u ->
          Alcotest.(check bool)
            (Printf.sprintf "profile %d node %d tolerance-level" i j)
            true
            (Float.abs (u -. cold.(j)) <= 1e-9 *. Float.max 1. (Float.abs cold.(j))))
        payoffs)
    batched

(* {1 Search probe statistics on top of the oracle} *)

let test_search_stddev_zero_on_exact_oracle () =
  let oracle, _ = fresh () in
  let trace =
    Macgame.Search.run ~w0:16 ~probes:5 ~cw_max:512
      (Macgame.Search.of_oracle oracle ~n:4)
  in
  List.iter
    (fun (m : Macgame.Search.measurement) ->
      check_bits "deterministic probes have zero spread" 0. m.stddev)
    trace.measurements

let test_search_stddev_positive_under_noise () =
  let oracle, _ = fresh () in
  let noisy =
    Macgame.Search.noisy_oracle (Prelude.Rng.create 5) ~rel_stddev:0.05
      (Macgame.Search.of_oracle oracle ~n:4)
  in
  let trace = Macgame.Search.run ~w0:16 ~probes:8 ~cw_max:512 noisy in
  Alcotest.(check bool) "noise shows up in the probe stddev" true
    (List.exists
       (fun (m : Macgame.Search.measurement) -> m.stddev > 0.)
       trace.measurements)

let () =
  Alcotest.run "oracle"
    [
      ( "memo",
        [
          Alcotest.test_case "uniform hit is bit-identical" `Quick
            test_uniform_memo_bit_identity;
          Alcotest.test_case "profile hit is bit-identical" `Quick
            test_profile_memo_bit_identity;
          Alcotest.test_case "uniform profile takes the (n, w) path" `Quick
            test_uniform_profile_fast_path;
        ] );
      ( "model agreement",
        [
          Alcotest.test_case "uniform view = Dcf.Model.homogeneous" `Quick
            test_uniform_matches_model_homogeneous;
          Alcotest.test_case "p_hn threads through" `Quick test_p_hn_matches_model;
          Alcotest.test_case "payoffs vs Dcf.Model.solve" `Quick
            test_payoffs_match_model_solve;
        ] );
      ( "permutation invariance",
        [
          QCheck_alcotest.to_alcotest test_dcf_solve_profile_permutation_invariant;
          QCheck_alcotest.to_alcotest test_oracle_permutation_invariant;
        ] );
      ( "sim backends",
        [
          Alcotest.test_case "deterministic under replay" `Quick
            test_sim_backend_deterministic;
          Alcotest.test_case "exactly symmetric across permutations" `Quick
            test_sim_backend_permutation_invariant;
          Alcotest.test_case "spatial memo replays bit-identically" `Quick
            test_sim_spatial_memo_bit_identity;
          Alcotest.test_case "agrees loosely with the model" `Quick
            test_sim_backend_sane_payoffs;
        ] );
      ("validation", [ Alcotest.test_case "arguments" `Quick test_validation ]);
      ( "non-convergence",
        [
          Alcotest.test_case "refused and not memoized" `Quick
            test_nonconverged_refused_and_not_memoized;
          Alcotest.test_case "never persisted" `Quick
            test_nonconverged_never_persisted;
          QCheck_alcotest.to_alcotest test_nonconverged_surfaces_at_every_layer;
        ] );
      ( "batch",
        [
          Alcotest.test_case "errors isolated per profile" `Quick
            test_batch_outcome_isolates_failures;
          Alcotest.test_case "agrees with unbatched" `Quick
            test_batch_agrees_with_unbatched;
        ] );
      ( "search",
        [
          Alcotest.test_case "stddev 0 on an exact oracle" `Quick
            test_search_stddev_zero_on_exact_oracle;
          Alcotest.test_case "stddev > 0 under noise" `Quick
            test_search_stddev_positive_under_noise;
        ] );
    ]
