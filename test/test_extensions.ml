(* Tests for the extension layer: delay analysis and the delay-aware game,
   the heterogeneous-frame channel model and the payload game / rate
   anomaly, CSV export, the grim-trigger strategy, and the simulator
   extensions (retry limits, carrier-sense range). *)

let check_close ?(eps = 1e-9) msg expected actual =
  if not (Prelude.Util.approx_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let default = Dcf.Params.default

(* {1 Dcf.Delay} *)

let test_backoff_slots_no_collisions () =
  (* p = 0: only stage 0 is visited, mean counter (W−1)/2. *)
  check_close "W=32" 15.5 (Dcf.Delay.expected_backoff_slots ~w:32 ~m:5 ~p:0.);
  check_close "W=1 never waits" 0. (Dcf.Delay.expected_backoff_slots ~w:1 ~m:5 ~p:0.)

let test_backoff_slots_grow_with_p =
  QCheck.Test.make ~name:"expected backoff increasing in p" ~count:200
    QCheck.(triple (int_range 1 512) (int_range 0 7)
              (pair (float_bound_inclusive 0.98) (float_bound_inclusive 0.98)))
    (fun (w, m, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      QCheck.assume (hi > lo);
      Dcf.Delay.expected_backoff_slots ~w ~m ~p:lo
      <= Dcf.Delay.expected_backoff_slots ~w ~m ~p:hi +. 1e-9)

let test_backoff_slots_hand_computed () =
  (* w=2, m=1, p=1/2: stage 0 mean (2−1)/2 = 0.5; stage 1 reached w.p. 1/2
     and repeats geometrically: p^1/(1−p)·(4−1)/2 = 1·1.5 = 1.5. *)
  check_close "w=2 m=1 p=0.5" 2.0
    (Dcf.Delay.expected_backoff_slots ~w:2 ~m:1 ~p:0.5)

let test_delay_of_profile () =
  let cws = [| 32; 128 |] in
  let s = Dcf.Solver.solve default cws in
  let views = Dcf.Delay.of_profile default ~taus:s.taus ~ps:s.ps ~cws in
  (* The aggressive node delivers more often, so it waits less. *)
  Alcotest.(check bool) "smaller window, shorter delay" true
    (views.(0).mean_delay < views.(1).mean_delay);
  Array.iteri
    (fun i (v : Dcf.Delay.t) ->
      check_close "attempts = 1/(1-p)" (1. /. (1. -. s.ps.(i)))
        v.attempts_per_packet)
    views

let test_delay_renewal_identity () =
  (* mean_delay · per-node success rate = 1: deliveries are a renewal
     process at rate tau(1−p)/Tslot. *)
  let n = 8 and w = 128 in
  let tau, p = Dcf.Solver.solve_homogeneous default ~n ~w in
  let metrics = Dcf.Metrics.of_taus default (Array.make n tau) in
  let v =
    Dcf.Delay.of_node ~slot_time:metrics.slot_time ~tau ~p ~w
      ~m:default.max_backoff_stage
  in
  check_close ~eps:1e-9 "renewal identity" 1.
    (v.mean_delay *. tau *. (1. -. p) /. metrics.slot_time)

let test_delay_matches_simulation () =
  (* Measured mean inter-delivery time vs the analytic mean delay. *)
  let n = 5 and w = 79 in
  let r =
    Netsim.Slotted.run
      { params = default; cws = Array.make n w; duration = 120.; seed = 11 }
  in
  let tau, p = Dcf.Solver.solve_homogeneous default ~n ~w in
  let metrics = Dcf.Metrics.of_taus default (Array.make n tau) in
  let predicted =
    (Dcf.Delay.of_node ~slot_time:metrics.slot_time ~tau ~p ~w
       ~m:default.max_backoff_stage)
      .mean_delay
  in
  let measured = r.time /. float_of_int r.per_node.(0).successes in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.4f vs predicted %.4f" measured predicted)
    true
    (Float.abs (measured -. predicted) /. predicted < 0.1)

let test_drop_probability () =
  check_close "no collisions, no drops" 0.
    (Dcf.Delay.drop_probability ~p:0. ~retry_limit:4);
  check_close "p=0.5 R=1" 0.25 (Dcf.Delay.drop_probability ~p:0.5 ~retry_limit:1);
  check_close "R=0 drops on first collision" 0.3
    (Dcf.Delay.drop_probability ~p:0.3 ~retry_limit:0)

let test_delay_validation () =
  Alcotest.check_raises "p=1 is infinite delay"
    (Invalid_argument "Delay.of_node: node never succeeds (p = 1 or tau = 0)")
    (fun () -> ignore (Dcf.Delay.of_node ~slot_time:1e-3 ~tau:0.1 ~p:1. ~w:8 ~m:5))

(* {1 Macgame.Delay_game} *)

let test_delay_game_gamma_zero_recovers_paper () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "n=%d" n)
        (Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic default) ~n)
        (Macgame.Delay_game.efficient_cw (Macgame.Oracle.analytic default) ~gamma:0. ~n))
    [ 5; 20 ]

let test_delay_game_payoff_decreases_with_gamma =
  QCheck.Test.make ~name:"delay pricing never raises the payoff" ~count:50
    QCheck.(pair (int_range 2 15) (int_range 8 512))
    (fun (n, w) ->
      let u0 = Macgame.Delay_game.payoff (Macgame.Oracle.analytic default) ~gamma:0. ~n ~w in
      let u1 = Macgame.Delay_game.payoff (Macgame.Oracle.analytic default) ~gamma:10. ~n ~w in
      u1 <= u0 +. 1e-12)

let test_delay_game_moderate_gamma_moves_toward_throughput_peak () =
  (* The documented finding: moderate delay pricing nudges the NE upward
     (toward the throughput-optimal window). *)
  let n = 20 in
  let w0 = Macgame.Delay_game.efficient_cw (Macgame.Oracle.analytic default) ~gamma:0. ~n in
  let w100 = Macgame.Delay_game.efficient_cw (Macgame.Oracle.analytic default) ~gamma:100. ~n in
  Alcotest.(check bool)
    (Printf.sprintf "W(0)=%d <= W(100)=%d" w0 w100)
    true (w0 <= w100)

let test_delay_game_tradeoff_shape () =
  let points =
    Macgame.Delay_game.tradeoff (Macgame.Oracle.analytic default) ~n:10 ~gammas:[| 0.; 10.; 100. |]
  in
  Alcotest.(check int) "one point per gamma" 3 (Array.length points);
  Array.iter
    (fun (p : Macgame.Delay_game.tradeoff_point) ->
      Alcotest.(check bool) "delay positive and finite" true
        (p.delay > 0. && Float.is_finite p.delay);
      Alcotest.(check bool) "throughput in (0,1)" true
        (p.throughput > 0. && p.throughput < 1.))
    points

let test_delay_game_validation () =
  Alcotest.check_raises "negative gamma"
    (Invalid_argument "Delay_game: gamma must be >= 0") (fun () ->
      ignore (Macgame.Delay_game.payoff (Macgame.Oracle.analytic default) ~gamma:(-1.) ~n:5 ~w:8))

(* {1 Dcf.Hetero} *)

let test_hetero_matches_metrics_when_homogeneous =
  QCheck.Test.make ~name:"hetero model = homogeneous metrics on equal frames"
    ~count:50
    QCheck.(pair (int_range 1 10) (int_range 2 512))
    (fun (n, w) ->
      let tau, _ = Dcf.Solver.solve_homogeneous default ~n ~w in
      let taus = Array.make n tau in
      let timing = Dcf.Timing.of_params default in
      let hetero =
        Dcf.Hetero.of_profile ~sigma:default.sigma ~taus
          ~ts:(Array.make n timing.ts) ~tc:(Array.make n timing.tc)
          ~payload_time:(Array.make n timing.payload)
      in
      let metrics = Dcf.Metrics.of_taus default taus in
      Prelude.Util.approx_equal ~eps:1e-9 metrics.slot_time hetero.slot_time
      && Prelude.Util.approx_equal ~eps:1e-9 metrics.p_tr hetero.p_tr
      && Prelude.Util.approx_equal ~eps:1e-9
           (Array.fold_left ( +. ) 0. metrics.per_node_throughput)
           (Array.fold_left ( +. ) 0. hetero.per_node_goodput))

let test_hetero_collision_time_montecarlo () =
  (* Exact expectation vs Monte-Carlo for a small asymmetric profile. *)
  let taus = [| 0.3; 0.2; 0.1 |] in
  let tc = [| 1.; 2.; 4. |] in
  let hetero =
    Dcf.Hetero.of_profile ~sigma:1. ~taus ~ts:tc ~tc
      ~payload_time:(Array.make 3 1.)
  in
  let rng = Prelude.Rng.create 3 in
  let total = ref 0. in
  let samples = 200_000 in
  for _ = 1 to samples do
    let s =
      Array.to_list (Array.mapi (fun i t -> (i, Prelude.Rng.bernoulli rng t)) taus)
      |> List.filter_map (fun (i, on) -> if on then Some i else None)
    in
    match s with
    | _ :: _ :: _ ->
        total :=
          !total +. List.fold_left (fun acc i -> Float.max acc tc.(i)) 0. s
    | _ -> ()
  done;
  check_close ~eps:0.02 "collision-time expectation"
    (!total /. float_of_int samples)
    hetero.expected_collision_time

let test_hetero_longer_frames_longer_slots =
  QCheck.Test.make ~name:"inflating one node's frames inflates the slot time"
    ~count:50
    QCheck.(pair (int_range 2 8) (float_range 1.1 4.))
    (fun (n, factor) ->
      let tau, _ = Dcf.Solver.solve_homogeneous default ~n ~w:64 in
      let taus = Array.make n tau in
      let timing = Dcf.Timing.of_params default in
      let base_ts = Array.make n timing.ts and base_tc = Array.make n timing.tc in
      let hetero0 =
        Dcf.Hetero.of_profile ~sigma:default.sigma ~taus ~ts:base_ts ~tc:base_tc
          ~payload_time:(Array.make n timing.payload)
      in
      let ts = Array.copy base_ts and tc = Array.copy base_tc in
      ts.(0) <- ts.(0) *. factor;
      tc.(0) <- tc.(0) *. factor;
      let hetero1 =
        Dcf.Hetero.of_profile ~sigma:default.sigma ~taus ~ts ~tc
          ~payload_time:(Array.make n timing.payload)
      in
      hetero1.slot_time > hetero0.slot_time)

let test_hetero_node_timing_matches_timing_module () =
  let ts, tc, payload =
    Dcf.Hetero.node_timing default ~payload_bits:default.payload_bits
      ~bit_rate:default.bit_rate
  in
  let timing = Dcf.Timing.of_params default in
  check_close "ts" timing.ts ts;
  check_close "tc" timing.tc tc;
  check_close "payload" timing.payload payload

let test_hetero_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Hetero.of_profile: length mismatch") (fun () ->
      ignore
        (Dcf.Hetero.of_profile ~sigma:1. ~taus:[| 0.1 |] ~ts:[||] ~tc:[| 1. |]
           ~payload_time:[| 1. |]))

(* {1 Macgame.Payload_game} *)

let payload_cfg gamma =
  { Macgame.Payload_game.oracle = Macgame.Oracle.analytic default; w = 128; l_min = 512; l_max = 16384; gamma }

let test_payload_utilities_shape () =
  let cfg = payload_cfg 0. in
  let us = Macgame.Payload_game.utilities cfg [| 1024; 8184; 16384 |] in
  (* Bigger payload, bigger payoff (same success rate, more bits). *)
  Alcotest.(check bool) "monotone in own payload" true
    (us.(0) < us.(1) && us.(1) < us.(2))

let test_payload_best_response_is_lmax_when_throughput_only () =
  let cfg = payload_cfg 0. in
  let payloads = Array.make 5 8184 in
  Alcotest.(check int) "header amortisation wins" 16384
    (Macgame.Payload_game.best_response cfg ~payloads ~i:2)

let test_payload_tragedy_of_commons () =
  (* With delay priced, the NE stays at l_max but the social optimum is
     interior: a strict price of anarchy. *)
  let cfg = payload_cfg 50. in
  let n = 6 in
  let final, _, converged =
    Macgame.Payload_game.best_response_dynamics cfg (Array.make n 8184)
  in
  Alcotest.(check bool) "dynamics converge" true converged;
  Alcotest.(check bool) "NE at the top" true (Array.for_all (fun l -> l = 16384) final);
  let opt = Macgame.Payload_game.symmetric_optimum cfg ~n in
  Alcotest.(check bool)
    (Printf.sprintf "social optimum %d interior" opt)
    true
    (opt < 16384);
  let welfare payloads =
    Prelude.Util.sum_floats (Macgame.Payload_game.utilities cfg payloads)
  in
  Alcotest.(check bool) "strict welfare gap" true
    (welfare (Array.make n opt) > welfare final *. 1.01)

let test_payload_validation () =
  let cfg = payload_cfg 0. in
  Alcotest.check_raises "payload out of range"
    (Invalid_argument "Payload_game.utilities: payload out of range") (fun () ->
      ignore (Macgame.Payload_game.utilities cfg [| 100 |]));
  Alcotest.check_raises "bad bounds"
    (Invalid_argument "Payload_game: need 1 <= l_min <= l_max") (fun () ->
      ignore
        (Macgame.Payload_game.utilities
           { cfg with l_min = 10; l_max = 5 }
           [| 8 |]))

let test_rate_anomaly_symmetric () =
  let a =
    Macgame.Payload_game.rate_anomaly (Macgame.Oracle.analytic default) ~w:128
      ~rates:(Array.make 5 default.bit_rate)
  in
  Alcotest.(check bool) "equal rates, equal goodput" true
    (Prelude.Stats.jain_fairness a.throughputs > 0.999);
  check_close ~eps:1e-9 "airtime shares sum to 1" 1.
    (Prelude.Util.sum_floats a.airtime_shares)

let test_rate_anomaly_slow_node_drags () =
  let base = default.bit_rate in
  let rates = Array.init 5 (fun i -> if i = 0 then base /. 10. else base) in
  let a = Macgame.Payload_game.rate_anomaly (Macgame.Oracle.analytic default) ~w:128 ~rates in
  let fair =
    (Macgame.Payload_game.rate_anomaly (Macgame.Oracle.analytic default) ~w:128
       ~rates:(Array.make 5 base))
      .throughputs.(1)
  in
  Alcotest.(check bool) "fast nodes dragged down" true (a.throughputs.(1) < fair /. 1.5);
  Alcotest.(check bool) "slow node hogs airtime" true
    (a.airtime_shares.(0) > 2. /. float_of_int 5)

(* {1 Prelude.Csv} *)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Prelude.Csv.escape_field "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Prelude.Csv.escape_field "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Prelude.Csv.escape_field "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Prelude.Csv.escape_field "a\nb")

let test_csv_to_string () =
  let out =
    Prelude.Csv.to_string ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4,5" ] ]
  in
  Alcotest.(check string) "rendering" "x,y\n1,2\n3,\"4,5\"\n" out

let test_csv_rejects_ragged_rows () =
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Csv.to_string: row width differs from header") (fun () ->
      ignore (Prelude.Csv.to_string ~header:[ "x" ] [ [ "1"; "2" ] ]))

let test_csv_write_roundtrip () =
  let path = Filename.temp_file "macgame" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Prelude.Csv.write ~path ~header:[ "a" ] (Prelude.Csv.float_rows [ [ 0.5 ] ]);
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "file contents" "a\n0.5\n" content)

(* {1 Grim trigger} *)

let decide (s : Macgame.Strategy.t) ~my_window ~observed =
  s.decide { Macgame.Strategy.stage = 1; me = 0; my_window; observed }

let test_grim_tolerates_until_triggered () =
  let s = Macgame.Strategy.grim_trigger ~initial:100 ~beta:0.8 in
  Alcotest.(check int) "small dip tolerated" 100
    (decide s ~my_window:100 ~observed:[ [| 100; 85 |] ]);
  Alcotest.(check int) "big dip triggers" 70
    (decide s ~my_window:100 ~observed:[ [| 100; 70 |] ])

let test_grim_never_forgives () =
  let s = Macgame.Strategy.grim_trigger ~initial:100 ~beta:0.8 in
  let _ = decide s ~my_window:100 ~observed:[ [| 100; 10 |] ] in
  (* Everyone is back at 100, but grim stays at the harshest window seen. *)
  Alcotest.(check int) "still punishing" 10
    (decide s ~my_window:10 ~observed:[ [| 100; 100 |] ])

let test_grim_in_game_matches_tft_without_noise () =
  let n = 4 in
  let strategies =
    Array.init n (fun _ -> Macgame.Strategy.grim_trigger ~initial:64 ~beta:0.8)
  in
  let outcome =
    Macgame.Repeated.run (Macgame.Oracle.analytic default) ~strategies ~stages:5
      ~payoffs:(fun p -> Array.map (fun _ -> 0.) p)
  in
  Alcotest.(check (option int)) "stable at the initial window" (Some 64)
    (Macgame.Repeated.converged_window outcome)

(* {1 Simulator extensions} *)

let test_slotted_retry_limit_drops () =
  let n = 20 and w = 64 in
  let r =
    Netsim.Slotted.run ~retry_limit:2
      { params = default; cws = Array.make n w; duration = 120.; seed = 7 }
  in
  let drops =
    Array.fold_left (fun acc (s : Netsim.Slotted.node_stats) -> acc + s.drops) 0 r.per_node
  in
  let packets =
    Array.fold_left
      (fun acc (s : Netsim.Slotted.node_stats) -> acc + s.successes + s.drops)
      0 r.per_node
  in
  Alcotest.(check bool) "some drops under contention" true (drops > 0);
  let rate = float_of_int drops /. float_of_int packets in
  let _, p = Dcf.Solver.solve_homogeneous default ~n ~w in
  let predicted = Dcf.Delay.drop_probability ~p ~retry_limit:2 in
  (* The i.i.d. approximation undershoots; allow a factor-2 band. *)
  Alcotest.(check bool)
    (Printf.sprintf "drop rate %.4f within 2x of %.4f" rate predicted)
    true
    (rate > predicted /. 2. && rate < predicted *. 2.5)

let test_slotted_unlimited_retries_never_drop () =
  let r =
    Netsim.Slotted.run
      { params = default; cws = Array.make 10 16; duration = 30.; seed = 3 }
  in
  Array.iter
    (fun (s : Netsim.Slotted.node_stats) ->
      Alcotest.(check int) "no drops by default" 0 s.drops)
    r.per_node

let test_spatial_cs_range_removes_hidden_failures () =
  (* 0-1-2 chain: with carrier sense covering two hops, 0 and 2 defer to
     each other and hidden losses vanish. *)
  let adjacency = [| [ 1 ]; [ 0; 2 ]; [ 1 ] |] in
  let cs_adjacency = [| [ 1; 2 ]; [ 0; 2 ]; [ 0; 1 ] |] in
  let run cs =
    Netsim.Spatial.run ?cs_adjacency:cs
      {
        params = default;
        adjacency;
        cws = [| 32; 32; 32 |];
        duration = 60.;
        seed = 5;
      }
  in
  let base = run None and wide = run (Some cs_adjacency) in
  Alcotest.(check bool) "hidden failures with 1-hop sensing" true
    (base.per_node.(0).hidden_failures > 0);
  Alcotest.(check int) "no hidden failures with 2-hop sensing" 0
    (wide.per_node.(0).hidden_failures + wide.per_node.(2).hidden_failures)

let test_spatial_cs_validation () =
  let adjacency = [| [ 1 ]; [ 0 ] |] in
  Alcotest.check_raises "cs must contain adjacency"
    (Invalid_argument "Spatial.run: cs_adjacency must contain adjacency")
    (fun () ->
      ignore
        (Netsim.Spatial.run
           ~cs_adjacency:[| []; [] |]
           {
             params = default;
             adjacency;
             cws = [| 8; 8 |];
             duration = 1.;
             seed = 0;
           }))

let test_spatial_retry_limit_drops () =
  let adjacency = [| [ 1 ]; [ 0; 2 ]; [ 1 ] |] in
  let r =
    Netsim.Spatial.run ~retry_limit:1
      {
        params = default;
        adjacency;
        cws = [| 16; 16; 16 |];
        duration = 60.;
        seed = 5;
      }
  in
  let drops =
    Array.fold_left (fun acc (s : Netsim.Spatial.node_stats) -> acc + s.drops) 0 r.per_node
  in
  Alcotest.(check bool) "hidden-terminal chain drops packets" true (drops > 0)

(* {1 Numerics.Special} *)

let test_erf_known_values () =
  check_close ~eps:1e-6 "erf(0)" 0. (Numerics.Special.erf 0.);
  check_close ~eps:1e-5 "erf(1)" 0.8427007929 (Numerics.Special.erf 1.);
  check_close ~eps:1e-5 "erf(-1) odd" (-0.8427007929) (Numerics.Special.erf (-1.));
  check_close ~eps:1e-6 "erf(3) near 1" 0.9999779 (Numerics.Special.erf 3.)

let test_normal_cdf () =
  check_close ~eps:1e-6 "median" 0.5 (Numerics.Special.normal_cdf 0.);
  check_close ~eps:1e-5 "one sigma" 0.8413447 (Numerics.Special.normal_cdf 1.);
  check_close ~eps:1e-5 "shifted and scaled" 0.8413447
    (Numerics.Special.normal_cdf ~mean:10. ~stddev:2. 12.)

let test_normal_quantile_roundtrip =
  QCheck.Test.make ~name:"quantile inverts the cdf" ~count:300
    QCheck.(float_range 0.001 0.999)
    (fun p ->
      let x = Numerics.Special.normal_quantile p in
      Prelude.Util.approx_equal ~eps:1e-5 p (Numerics.Special.normal_cdf x))

let test_normal_quantile_validation () =
  Alcotest.check_raises "p=0"
    (Invalid_argument "Special.normal_quantile: p must be in (0, 1)") (fun () ->
      ignore (Numerics.Special.normal_quantile 0.))

(* {1 Macgame.Detection} *)

let test_detection_fp_decreases_with_samples =
  QCheck.Test.make ~name:"false positives shrink with more samples" ~count:100
    QCheck.(pair (int_range 2 1024) (int_range 1 256))
    (fun (w_exp, samples) ->
      let fp k = Macgame.Detection.false_positive_rate ~w_exp ~samples:k ~beta:0.8 in
      fp (4 * samples) <= fp samples +. 1e-9)

let test_detection_rate_increases_as_cheat_deepens =
  QCheck.Test.make ~name:"deeper cheats are easier to catch" ~count:100
    QCheck.(int_range 16 1024)
    (fun w_exp ->
      let det w_true =
        Macgame.Detection.detection_rate ~w_true ~w_exp ~samples:16 ~beta:0.8
      in
      det (Stdlib.max 1 (w_exp / 4)) >= det (Stdlib.max 1 (w_exp / 2)) -. 1e-9)

let test_detection_matches_montecarlo () =
  let rng = Prelude.Rng.create 17 in
  List.iter
    (fun (w_true, w_exp, samples, beta) ->
      let predicted =
        Macgame.Detection.detection_rate ~w_true ~w_exp ~samples ~beta
      in
      let measured =
        Macgame.Detection.empirical_rates ~rng ~trials:20_000 ~w_true ~w_exp
          ~samples ~beta
      in
      if Float.abs (predicted -. measured) > 0.02 then
        Alcotest.failf "(%d,%d,%d,%.2f): predicted %.4f, measured %.4f" w_true
          w_exp samples beta predicted measured)
    [ (166, 166, 16, 0.8); (83, 166, 16, 0.8); (120, 166, 64, 0.9); (166, 166, 4, 0.9) ]

let test_required_samples_is_tight () =
  let w_exp = 166 and beta = 0.85 and max_fp = 0.05 in
  let k = Macgame.Detection.required_samples ~w_exp ~beta ~max_fp in
  Alcotest.(check bool) "meets the budget" true
    (Macgame.Detection.false_positive_rate ~w_exp ~samples:k ~beta <= max_fp);
  Alcotest.(check bool) "one fewer sample misses it" true
    (k = 1
    || Macgame.Detection.false_positive_rate ~w_exp ~samples:(k - 1) ~beta > max_fp)

let test_design_gtft_feasible () =
  match
    Macgame.Detection.design_gtft ~w_exp:166 ~cheat_factor:0.5 ~per_stage:25
      ~max_fp:0.1 ~min_detection:0.95
  with
  | None -> Alcotest.fail "expected a feasible design"
  | Some d ->
      Alcotest.(check bool) "budgets met" true
        (d.false_positive <= 0.1 +. 1e-9 && d.detection >= 0.95);
      Alcotest.(check bool) "beta separates cheat from honest" true
        (d.beta > 0.5 && d.beta < 1.);
      Alcotest.(check bool) "r0 bounded" true (d.r0 >= 1 && d.r0 <= 64)

let test_design_gtft_infeasible () =
  (* An essentially honest "cheat" (0.99 of the window) cannot be separated
     from noise. *)
  Alcotest.(check bool) "no design for undetectable cheats" true
    (Macgame.Detection.design_gtft ~w_exp:166 ~cheat_factor:0.99 ~per_stage:1
       ~max_fp:0.001 ~min_detection:0.999
    = None)

let test_detection_validation () =
  Alcotest.check_raises "bad beta"
    (Invalid_argument "Detection: beta must be in (0, 1]") (fun () ->
      ignore (Macgame.Detection.false_positive_rate ~w_exp:10 ~samples:4 ~beta:1.5))

(* {1 Solver.solve_classes and coalitions} *)

let test_solve_classes_matches_full_solve =
  QCheck.Test.make ~name:"class solver matches the vector solver" ~count:30
    QCheck.(triple (int_range 1 6) (int_range 1 6) (pair (int_range 1 256) (int_range 1 256)))
    (fun (k1, k2, (w1, w2)) ->
      let classes = Dcf.Solver.solve_classes default [ (w1, k1); (w2, k2) ] in
      let cws = Array.append (Array.make k1 w1) (Array.make k2 w2) in
      let s = Dcf.Solver.solve default cws in
      match classes.class_pairs with
      | [ (tau1, p1); (tau2, p2) ] ->
          Prelude.Util.approx_equal ~eps:1e-6 tau1 s.taus.(0)
          && Prelude.Util.approx_equal ~eps:1e-6 p1 s.ps.(0)
          && Prelude.Util.approx_equal ~eps:1e-6 tau2 s.taus.(k1)
          && Prelude.Util.approx_equal ~eps:1e-6 p2 s.ps.(k1)
      | _ -> false)

let test_solve_classes_single_class_is_homogeneous () =
  let tau, p = Dcf.Solver.solve_homogeneous default ~n:7 ~w:64 in
  match (Dcf.Solver.solve_classes default [ (64, 7) ]).class_pairs with
  | [ (tau', p') ] ->
      check_close ~eps:1e-9 "tau" tau tau';
      check_close ~eps:1e-9 "p" p p'
  | _ -> Alcotest.fail "expected one class"

let test_coalition_k1_matches_single_deviant () =
  let n = 8 and w_star = 200 and w_dev = 100 in
  let c = Macgame.Deviation.coalition_stage_payoffs (Macgame.Oracle.analytic default) ~n ~w_star ~k:1 ~w_dev in
  let s = Macgame.Deviation.stage_payoffs (Macgame.Oracle.analytic default) ~n ~w_star ~w_dev in
  check_close ~eps:1e-6 "member = deviant" s.deviant c.member;
  check_close ~eps:1e-6 "outsider = conformer" s.conformer c.outsider;
  check_close ~eps:1e-6 "punished" s.uniform_w c.punished;
  check_close ~eps:1e-6 "honest" s.uniform_star c.honest

let test_coalition_gain_shrinks_with_size () =
  let n = 10 in
  let w_star = Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic default) ~n in
  let gain k =
    Macgame.Deviation.coalition_gain (Macgame.Oracle.analytic default) ~n ~w_star ~k ~w_dev:(w_star / 2)
      ~delta_s:0.9 ~react_stages:1
  in
  Alcotest.(check bool) "free ride dilutes" true (gain 1 > gain 3 && gain 3 > gain 6)

let test_coalition_unprofitable_when_patient =
  QCheck.Test.make ~name:"no coalition pays at the paper's delta" ~count:20
    QCheck.(pair (int_range 1 9) (int_range 1 9))
    (fun (k, denom) ->
      let n = 10 in
      let w_star = Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic default) ~n in
      let w_dev = Stdlib.max 1 (w_star * denom / 10) in
      QCheck.assume (w_dev < w_star);
      Macgame.Deviation.coalition_gain (Macgame.Oracle.analytic default) ~n ~w_star ~k ~w_dev
        ~delta_s:0.9999 ~react_stages:1
      < 0.)

let test_coalition_validation () =
  Alcotest.check_raises "k = n"
    (Invalid_argument "Deviation.coalition_stage_payoffs: need 1 <= k < n")
    (fun () ->
      ignore
        (Macgame.Deviation.coalition_stage_payoffs (Macgame.Oracle.analytic default) ~n:5 ~w_star:100 ~k:5
           ~w_dev:50))

(* {1 Netsim.Unsaturated} *)

let unsat ?(duration = 100.) ?(seed = 5) ~n ~w ~rate () =
  Netsim.Unsaturated.run
    {
      params = default;
      cws = Array.make n w;
      arrival_rates = Array.make n rate;
      duration;
      seed;
    }

let test_unsaturated_light_load_delivers_everything () =
  let r = unsat ~n:5 ~w:79 ~rate:1.0 () in
  Array.iter
    (fun (s : Netsim.Unsaturated.node_stats) ->
      Alcotest.(check bool) "no backlog" true (s.backlog <= 2);
      Alcotest.(check bool) "tiny queues" true (s.mean_queue_length < 0.2))
    r.per_node;
  let offered =
    Array.fold_left
      (fun acc (s : Netsim.Unsaturated.node_stats) -> acc + s.arrivals)
      0 r.per_node
  in
  Alcotest.(check bool) "delivered nearly all" true
    (r.total_delivered >= offered - 10)

let test_unsaturated_zero_rate_is_silent () =
  let r = unsat ~n:3 ~w:32 ~rate:0. () in
  Alcotest.(check int) "nothing delivered" 0 r.total_delivered;
  Array.iter
    (fun (s : Netsim.Unsaturated.node_stats) ->
      Alcotest.(check int) "nothing arrived" 0 s.arrivals)
    r.per_node

let test_unsaturated_light_load_sojourn_close_to_service_time () =
  (* Alone on the channel at trivial load, the sojourn is one backoff plus
     one transmission. *)
  let r = unsat ~n:1 ~w:32 ~rate:0.5 ~duration:400. () in
  let timing = Dcf.Timing.of_params default in
  let expected = (15.5 *. default.sigma) +. timing.ts in
  let measured = r.per_node.(0).mean_sojourn in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.4f vs %.4f" measured expected)
    true
    (Float.abs (measured -. expected) /. expected < 0.15)

let test_unsaturated_overload_behaves_like_saturation () =
  (* Offered load far above capacity: the departure rate should approach
     the saturated simulator's. *)
  let n = 5 and w = 79 in
  let r = unsat ~n ~w ~rate:100. ~duration:60. () in
  let saturated =
    Netsim.Slotted.run
      { params = default; cws = Array.make n w; duration = 60.; seed = 5 }
  in
  let unsat_rate = float_of_int r.total_delivered /. r.time in
  let sat_rate =
    float_of_int
      (Array.fold_left
         (fun acc (s : Netsim.Slotted.node_stats) -> acc + s.successes)
         0 saturated.per_node)
    /. saturated.time
  in
  Alcotest.(check bool)
    (Printf.sprintf "unsat %.2f vs sat %.2f pkt/s" unsat_rate sat_rate)
    true
    (Float.abs (unsat_rate -. sat_rate) /. sat_rate < 0.05);
  Array.iter
    (fun (s : Netsim.Unsaturated.node_stats) ->
      Alcotest.(check bool) "always busy" true (s.busy_fraction > 0.99))
    r.per_node

let test_unsaturated_sojourn_grows_with_load =
  QCheck.Test.make ~name:"sojourn increasing in offered load" ~count:10
    QCheck.(int_range 1 4)
    (fun i ->
      let rate = float_of_int i in
      let at r = (unsat ~n:5 ~w:79 ~rate:r ~duration:100. ()).per_node.(0).mean_sojourn in
      at rate <= at (rate +. 2.) +. 1e-3)

let test_unsaturated_capacity_and_utilization () =
  let cap = Netsim.Unsaturated.saturation_rate default ~n:10 ~w:166 in
  Alcotest.(check bool) "positive capacity" true (cap > 0.);
  check_close ~eps:1e-9 "utilization is the ratio" 0.5
    (Netsim.Unsaturated.utilization default ~n:10 ~w:166
       ~arrival_rate:(cap /. 2.));
  (* The measured saturated departure rate should match the analytic one. *)
  let r =
    Netsim.Slotted.run
      { params = default; cws = Array.make 10 166; duration = 120.; seed = 2 }
  in
  let measured =
    float_of_int r.per_node.(0).successes /. r.time
  in
  Alcotest.(check bool)
    (Printf.sprintf "capacity %.3f vs measured %.3f" cap measured)
    true
    (Float.abs (cap -. measured) /. cap < 0.1)

let test_slotted_per_degrades_welfare () =
  let run per =
    (Netsim.Slotted.run ~per
       { params = default; cws = Array.make 5 79; duration = 60.; seed = 9 })
      .welfare_rate
  in
  let w0 = run 0. and w2 = run 0.2 and w5 = run 0.5 in
  Alcotest.(check bool) "monotone degradation" true (w0 > w2 && w2 > w5)

let test_slotted_per_matches_p_hn_model () =
  (* Channel noise at rate per is the p_hn = 1 − per factor of Sec. VI.A,
     up to the backoff escalation noise losses also trigger in the
     simulator. *)
  let per = 0.2 in
  let n = 5 and w = 150 in
  let r =
    Netsim.Slotted.run ~per
      { params = default; cws = Array.make n w; duration = 120.; seed = 4 }
  in
  let tau, p = Dcf.Solver.solve_homogeneous default ~n ~w in
  let predicted =
    (Dcf.Utility.rates ~p_hn:(1. -. per) default ~taus:(Array.make n tau)
       ~ps:(Array.make n p)).(0)
  in
  let measured =
    Prelude.Stats.mean_of
      (Array.map (fun (s : Netsim.Slotted.node_stats) -> s.payoff_rate) r.per_node)
  in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.3f vs p_hn model %.3f" measured predicted)
    true
    (Float.abs (measured -. predicted) /. predicted < 0.12)

let test_slotted_per_validation () =
  Alcotest.check_raises "per = 1" (Invalid_argument "Slotted.run: per must be in [0, 1)")
    (fun () ->
      ignore
        (Netsim.Slotted.run ~per:1.
           { params = default; cws = [| 8 |]; duration = 1.; seed = 0 }))

let test_unsaturated_validation () =
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Unsaturated.run: negative arrival rate") (fun () ->
      ignore
        (Netsim.Unsaturated.run
           {
             params = default;
             cws = [| 8 |];
             arrival_rates = [| -1. |];
             duration = 1.;
             seed = 0;
           }))

(* {1 Netsim.Trace} *)

let test_trace_records_simulation_events () =
  let trace = Netsim.Trace.create () in
  let r =
    Netsim.Slotted.run ~trace
      { params = default; cws = Array.make 5 32; duration = 10.; seed = 6 }
  in
  let s = Netsim.Trace.summarize trace in
  let sim_successes =
    Array.fold_left
      (fun acc (st : Netsim.Slotted.node_stats) -> acc + st.successes)
      0 r.per_node
  in
  Alcotest.(check int) "one event per delivery" sim_successes s.successes;
  Alcotest.(check bool) "collisions observed at W=32, n=5" true (s.collisions > 0);
  Alcotest.(check int) "no drops without a retry limit" 0 s.drops;
  (* Per-node counts agree with the stats. *)
  List.iter
    (fun (node, count) ->
      Alcotest.(check int)
        (Printf.sprintf "node %d" node)
        r.per_node.(node).successes count)
    s.per_node_successes

let test_trace_events_are_chronological () =
  let trace = Netsim.Trace.create () in
  let _ =
    Netsim.Slotted.run ~trace
      { params = default; cws = Array.make 3 16; duration = 5.; seed = 2 }
  in
  let times = List.map Netsim.Trace.time_of (Netsim.Trace.events trace) in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "non-decreasing timestamps" true (sorted times)

let test_trace_capacity_bound () =
  let trace = Netsim.Trace.create ~capacity:10 () in
  for i = 1 to 25 do
    Netsim.Trace.record trace
      (Netsim.Trace.Success { time = float_of_int i; node = 0 })
  done;
  Alcotest.(check int) "keeps the newest" 10 (Netsim.Trace.length trace);
  Alcotest.(check int) "counts the discarded" 15 (Netsim.Trace.dropped trace);
  match Netsim.Trace.events trace with
  | first :: _ ->
      Alcotest.(check (float 0.)) "oldest retained is #16" 16.
        (Netsim.Trace.time_of first)
  | [] -> Alcotest.fail "expected events"

let test_trace_rendering () =
  let trace = Netsim.Trace.create () in
  Netsim.Trace.record trace (Netsim.Trace.Success { time = 0.5; node = 3 });
  Netsim.Trace.record trace (Netsim.Trace.Collision { time = 1.; nodes = [ 1; 2 ] });
  (match Netsim.Trace.to_lines trace with
  | [ a; b ] ->
      Alcotest.(check string) "success line" "0.50000 success node=3" a;
      Alcotest.(check string) "collision line" "1.00000 collision nodes=[1;2]" b
  | _ -> Alcotest.fail "expected two lines")

let test_trace_spatial_invariants () =
  (* Trace the hidden-terminal chain and check protocol invariants: event
     counts match the stats, and two neighbouring nodes never *both*
     deliver within one frame airtime of each other (the receiver in the
     middle can only serve one at a time). *)
  let adjacency = [| [ 1 ]; [ 0; 2 ]; [ 1 ] |] in
  let trace = Netsim.Trace.create () in
  let r =
    Netsim.Spatial.run ~trace
      {
        params = default;
        adjacency;
        cws = [| 32; 32; 32 |];
        duration = 30.;
        seed = 8;
      }
  in
  let s = Netsim.Trace.summarize trace in
  Alcotest.(check int) "success events = delivered"
    (r.delivered + r.delivered_late) s.successes;
  let failures =
    Array.fold_left
      (fun acc (st : Netsim.Spatial.node_stats) ->
        acc + st.local_collisions + st.hidden_failures)
      0 r.per_node
  in
  Alcotest.(check int) "collision events = failures" failures s.collisions;
  let timing = Dcf.Timing.of_params default in
  let successes =
    Netsim.Trace.events trace
    |> List.filter_map (function
         | Netsim.Trace.Success { time; node } -> Some (time, node)
         | _ -> None)
  in
  let rec check_spacing = function
    | (t1, n1) :: ((t2, n2) :: _ as rest) ->
        if n1 <> n2 && t2 -. t1 < timing.ts -. (2. *. default.sigma) then
          Alcotest.failf
            "overlapping deliveries: node %d at %.5f, node %d at %.5f" n1 t1 n2
            t2;
        check_spacing rest
    | _ -> ()
  in
  check_spacing successes

let suite_trace =
  [
    Alcotest.test_case "records simulation events" `Quick test_trace_records_simulation_events;
    Alcotest.test_case "spatial trace invariants" `Quick test_trace_spatial_invariants;
    Alcotest.test_case "chronological" `Quick test_trace_events_are_chronological;
    Alcotest.test_case "capacity bound" `Quick test_trace_capacity_bound;
    Alcotest.test_case "rendering" `Quick test_trace_rendering;
  ]

let suite_classes =
  [
    QCheck_alcotest.to_alcotest test_solve_classes_matches_full_solve;
    Alcotest.test_case "single class" `Quick test_solve_classes_single_class_is_homogeneous;
    Alcotest.test_case "k=1 matches single deviant" `Quick test_coalition_k1_matches_single_deviant;
    Alcotest.test_case "gain shrinks with size" `Quick test_coalition_gain_shrinks_with_size;
    QCheck_alcotest.to_alcotest test_coalition_unprofitable_when_patient;
    Alcotest.test_case "validation" `Quick test_coalition_validation;
  ]

let suite_unsaturated =
  [
    Alcotest.test_case "light load delivers" `Quick test_unsaturated_light_load_delivers_everything;
    Alcotest.test_case "zero rate silent" `Quick test_unsaturated_zero_rate_is_silent;
    Alcotest.test_case "light-load sojourn" `Quick test_unsaturated_light_load_sojourn_close_to_service_time;
    Alcotest.test_case "overload = saturation" `Slow test_unsaturated_overload_behaves_like_saturation;
    QCheck_alcotest.to_alcotest test_unsaturated_sojourn_grows_with_load;
    Alcotest.test_case "capacity and utilization" `Slow test_unsaturated_capacity_and_utilization;
    Alcotest.test_case "channel noise degrades welfare" `Quick test_slotted_per_degrades_welfare;
    Alcotest.test_case "channel noise = p_hn factor" `Slow test_slotted_per_matches_p_hn_model;
    Alcotest.test_case "per validation" `Quick test_slotted_per_validation;
    Alcotest.test_case "validation" `Quick test_unsaturated_validation;
  ]

let suite_special =
  [
    Alcotest.test_case "erf known values" `Quick test_erf_known_values;
    Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
    QCheck_alcotest.to_alcotest test_normal_quantile_roundtrip;
    Alcotest.test_case "quantile validation" `Quick test_normal_quantile_validation;
  ]

let suite_detection =
  [
    QCheck_alcotest.to_alcotest test_detection_fp_decreases_with_samples;
    QCheck_alcotest.to_alcotest test_detection_rate_increases_as_cheat_deepens;
    Alcotest.test_case "matches monte-carlo" `Slow test_detection_matches_montecarlo;
    Alcotest.test_case "required samples tight" `Quick test_required_samples_is_tight;
    Alcotest.test_case "gtft design feasible" `Quick test_design_gtft_feasible;
    Alcotest.test_case "gtft design infeasible" `Quick test_design_gtft_infeasible;
    Alcotest.test_case "validation" `Quick test_detection_validation;
  ]

let suite_delay =
  [
    Alcotest.test_case "backoff slots at p=0" `Quick test_backoff_slots_no_collisions;
    QCheck_alcotest.to_alcotest test_backoff_slots_grow_with_p;
    Alcotest.test_case "backoff slots hand computed" `Quick test_backoff_slots_hand_computed;
    Alcotest.test_case "of_profile ordering" `Quick test_delay_of_profile;
    Alcotest.test_case "renewal identity" `Quick test_delay_renewal_identity;
    Alcotest.test_case "matches simulation" `Slow test_delay_matches_simulation;
    Alcotest.test_case "drop probability" `Quick test_drop_probability;
    Alcotest.test_case "validation" `Quick test_delay_validation;
  ]

let suite_delay_game =
  [
    Alcotest.test_case "gamma=0 recovers the paper" `Quick test_delay_game_gamma_zero_recovers_paper;
    QCheck_alcotest.to_alcotest test_delay_game_payoff_decreases_with_gamma;
    Alcotest.test_case "moderate gamma raises W" `Quick test_delay_game_moderate_gamma_moves_toward_throughput_peak;
    Alcotest.test_case "tradeoff shape" `Quick test_delay_game_tradeoff_shape;
    Alcotest.test_case "validation" `Quick test_delay_game_validation;
  ]

let suite_hetero =
  [
    QCheck_alcotest.to_alcotest test_hetero_matches_metrics_when_homogeneous;
    Alcotest.test_case "collision time vs monte-carlo" `Slow test_hetero_collision_time_montecarlo;
    QCheck_alcotest.to_alcotest test_hetero_longer_frames_longer_slots;
    Alcotest.test_case "node timing consistency" `Quick test_hetero_node_timing_matches_timing_module;
    Alcotest.test_case "validation" `Quick test_hetero_validation;
  ]

let suite_payload =
  [
    Alcotest.test_case "utilities monotone in payload" `Quick test_payload_utilities_shape;
    Alcotest.test_case "throughput-only BR is l_max" `Quick test_payload_best_response_is_lmax_when_throughput_only;
    Alcotest.test_case "tragedy of the commons" `Slow test_payload_tragedy_of_commons;
    Alcotest.test_case "validation" `Quick test_payload_validation;
    Alcotest.test_case "rate anomaly symmetric" `Quick test_rate_anomaly_symmetric;
    Alcotest.test_case "rate anomaly drags fast nodes" `Quick test_rate_anomaly_slow_node_drags;
  ]

let suite_csv =
  [
    Alcotest.test_case "escaping" `Quick test_csv_escaping;
    Alcotest.test_case "to_string" `Quick test_csv_to_string;
    Alcotest.test_case "ragged rows" `Quick test_csv_rejects_ragged_rows;
    Alcotest.test_case "write roundtrip" `Quick test_csv_write_roundtrip;
  ]

let suite_grim =
  [
    Alcotest.test_case "tolerates until triggered" `Quick test_grim_tolerates_until_triggered;
    Alcotest.test_case "never forgives" `Quick test_grim_never_forgives;
    Alcotest.test_case "stable without noise" `Quick test_grim_in_game_matches_tft_without_noise;
  ]

let suite_sim_ext =
  [
    Alcotest.test_case "slotted retry drops" `Slow test_slotted_retry_limit_drops;
    Alcotest.test_case "unlimited retries never drop" `Quick test_slotted_unlimited_retries_never_drop;
    Alcotest.test_case "cs range removes hidden failures" `Quick test_spatial_cs_range_removes_hidden_failures;
    Alcotest.test_case "cs validation" `Quick test_spatial_cs_validation;
    Alcotest.test_case "spatial retry drops" `Quick test_spatial_retry_limit_drops;
  ]

let () =
  Alcotest.run "extensions"
    [
      ("trace", suite_trace);
      ("classes", suite_classes);
      ("unsaturated", suite_unsaturated);
      ("special", suite_special);
      ("detection", suite_detection);
      ("delay", suite_delay);
      ("delay_game", suite_delay_game);
      ("hetero", suite_hetero);
      ("payload_game", suite_payload);
      ("csv", suite_csv);
      ("grim", suite_grim);
      ("sim_ext", suite_sim_ext);
    ]
