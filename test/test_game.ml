(* Tests for the game layer: profiles, Nash-equilibrium analysis (Theorems
   1-2, Lemma 4), strategies (TFT/GTFT/fixed/best-response), the repeated
   game engine and the CW observer. *)

let check_close ?(eps = 1e-9) msg expected actual =
  if not (Prelude.Util.approx_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let default = Dcf.Params.default
let rts_cts = Dcf.Params.rts_cts

(* Keep the search space small so sweeps stay cheap. *)
let small = { default with Dcf.Params.cw_max = 512 }

(* {1 Profile} *)

let test_profile_uniform () =
  let p = Macgame.Profile.uniform ~n:4 ~w:32 in
  Alcotest.(check (array int)) "all equal" [| 32; 32; 32; 32 |]
    (Macgame.Profile.cws p);
  Alcotest.(check bool) "is_uniform" true (Macgame.Profile.is_uniform p);
  Alcotest.(check bool) "is_degenerate" true (Macgame.Profile.is_degenerate p)

let test_profile_with_deviant () =
  let p = Macgame.Profile.with_deviant ~n:3 ~w:64 ~w_dev:8 in
  Alcotest.(check (array int)) "deviant first" [| 8; 64; 64 |]
    (Macgame.Profile.cws p);
  Alcotest.(check bool) "not uniform" false (Macgame.Profile.is_uniform p);
  Alcotest.(check int) "min window" 8 (Macgame.Profile.min_window p)

let test_profile_validate () =
  let of_cws = Macgame.Profile.of_cws in
  Alcotest.(check bool) "valid" true
    (Macgame.Profile.validate ~cw_max:128 (of_cws [| 1; 128 |]) = Ok ());
  Alcotest.(check bool) "rejects 0" true
    (Result.is_error (Macgame.Profile.validate ~cw_max:128 (of_cws [| 0 |])));
  Alcotest.(check bool) "rejects above max" true
    (Result.is_error (Macgame.Profile.validate ~cw_max:128 (of_cws [| 129 |])));
  Alcotest.(check bool) "rejects empty" true
    (Result.is_error (Macgame.Profile.validate ~cw_max:128 (of_cws [||])))

let test_profile_pp () =
  Alcotest.(check string) "uniform rendering" "3x16"
    (Format.asprintf "%a" Macgame.Profile.pp (Macgame.Profile.uniform ~n:3 ~w:16));
  Alcotest.(check string) "list rendering" "[8; 16]"
    (Format.asprintf "%a" Macgame.Profile.pp (Macgame.Profile.of_cws [| 8; 16 |]))

(* {1 Equilibrium} *)

let test_efficient_cw_table2_values () =
  (* Table II band check: the analytic optima for basic access.  Our model
     (m = 5, e = 0.01) gives 79/339/859 against the paper's 76/336/879 —
     within 3 %. *)
  let w5 = Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic default) ~n:5 in
  let w20 = Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic default) ~n:20 in
  let w50 = Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic default) ~n:50 in
  Alcotest.(check bool) "n=5 near 76" true (abs (w5 - 76) <= 5);
  Alcotest.(check bool) "n=20 near 336" true (abs (w20 - 336) <= 12);
  Alcotest.(check bool) "n=50 near 879" true (abs (w50 - 879) <= 35)

let test_efficient_cw_grows_with_n () =
  let w n = Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic default) ~n in
  Alcotest.(check bool) "monotone in n" true (w 5 < w 10 && w 10 < w 20 && w 20 < w 40)

let test_efficient_cw_rts_below_basic () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "rts optimum below basic at n=%d" n)
        true
        (Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic rts_cts) ~n
        < Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic default) ~n))
    [ 5; 20; 50 ]

let test_efficient_cw_single_player () =
  Alcotest.(check int) "alone, transmit always" 1
    (Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic default) ~n:1)

let test_efficient_is_global_argmax =
  QCheck.Test.make ~name:"no uniform profile beats the efficient NE" ~count:40
    QCheck.(pair (int_range 2 12) (int_range 1 512))
    (fun (n, w) ->
      let w_star = Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic small) ~n in
      Macgame.Oracle.payoff_uniform (Macgame.Oracle.analytic small) ~n ~w
      <= Macgame.Oracle.payoff_uniform (Macgame.Oracle.analytic small) ~n ~w:w_star +. 1e-12)

let test_tau_star_q_properties () =
  (* Lemma 3: Q's root is interior and predicts the e-neglected optimum. *)
  List.iter
    (fun n ->
      let tau = Macgame.Equilibrium.tau_star default ~n in
      Alcotest.(check bool) "interior" true (tau > 0. && tau < 1.);
      let e0 = { default with Dcf.Params.cost = 1e-12 } in
      let w_star = Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic e0) ~n in
      let w_from_tau = Macgame.Equilibrium.cw_of_tau (Macgame.Oracle.analytic e0) ~n tau in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: |%d - %d| small" n w_from_tau w_star)
        true
        (abs (w_from_tau - w_star) <= 1 + (w_star / 50)))
    [ 5; 10; 20 ]

let test_tau_star_scaling_law =
  (* Expanding Q(τ) = 0 for small τ gives n·τ* → √(2σ/Tc): the classic
     Bianchi scaling that explains why W_c* grows linearly in n. *)
  QCheck.Test.make ~name:"n*tau* approaches sqrt(2*sigma/Tc)" ~count:20
    QCheck.(int_range 20 200)
    (fun n ->
      let timing = Dcf.Timing.of_params default in
      let predicted = sqrt (2. *. default.Dcf.Params.sigma /. timing.tc) in
      let actual = float_of_int n *. Macgame.Equilibrium.tau_star default ~n in
      Float.abs (actual -. predicted) /. predicted < 0.05)

let test_tau_star_decreases_with_n () =
  let t n = Macgame.Equilibrium.tau_star default ~n in
  Alcotest.(check bool) "more players, rarer transmissions" true
    (t 5 > t 10 && t 10 > t 25 && t 25 > t 50)

let test_cw_of_tau_inverts () =
  List.iter
    (fun w ->
      let tau, _ = Dcf.Solver.solve_homogeneous default ~n:8 ~w in
      Alcotest.(check int)
        (Printf.sprintf "roundtrip W=%d" w)
        w
        (Macgame.Equilibrium.cw_of_tau (Macgame.Oracle.analytic default) ~n:8 tau))
    [ 2; 16; 64; 300; 1024 ]

let test_break_even_no_backoff () =
  (* With m = 0 and tiny windows every attempt collides and pays only the
     cost, so the break-even window is above 1. *)
  let p = { default with Dcf.Params.max_backoff_stage = 0 } in
  let w0 = Macgame.Equilibrium.break_even_cw (Macgame.Oracle.analytic p) ~n:10 in
  Alcotest.(check bool) "positive break-even" true (w0 > 1);
  Alcotest.(check bool) "payoff negative below" true
    (Macgame.Oracle.payoff_uniform (Macgame.Oracle.analytic p) ~n:10 ~w:(w0 - 1) <= 0.);
  Alcotest.(check bool) "payoff positive at w0" true
    (Macgame.Oracle.payoff_uniform (Macgame.Oracle.analytic p) ~n:10 ~w:w0 > 0.)

let test_break_even_with_backoff_is_one () =
  (* Exponential backoff rescues even W = 1 for moderate n under Table I
     parameters (documented deviation from the paper's m-free analysis). *)
  Alcotest.(check int) "W_c0 = 1" 1 (Macgame.Equilibrium.break_even_cw (Macgame.Oracle.analytic default) ~n:5)

let test_ne_set_and_membership () =
  let p = { default with Dcf.Params.max_backoff_stage = 0 } in
  let { Macgame.Equilibrium.w_lo; w_hi } = Macgame.Equilibrium.ne_set (Macgame.Oracle.analytic p) ~n:10 in
  Alcotest.(check bool) "non-empty" true (w_lo <= w_hi);
  Alcotest.(check bool) "lower edge in" true (Macgame.Equilibrium.is_ne (Macgame.Oracle.analytic p) ~n:10 ~w:w_lo);
  Alcotest.(check bool) "upper edge in" true (Macgame.Equilibrium.is_ne (Macgame.Oracle.analytic p) ~n:10 ~w:w_hi);
  Alcotest.(check bool) "below out" false (Macgame.Equilibrium.is_ne (Macgame.Oracle.analytic p) ~n:10 ~w:(w_lo - 1));
  Alcotest.(check bool) "above out" false (Macgame.Equilibrium.is_ne (Macgame.Oracle.analytic p) ~n:10 ~w:(w_hi + 1));
  Alcotest.(check bool) "efficient = upper edge" true
    (Macgame.Equilibrium.is_efficient (Macgame.Oracle.analytic p) ~n:10 ~w:w_hi)

let test_social_welfare_is_n_times_payoff () =
  check_close "welfare" (10. *. Macgame.Oracle.payoff_uniform (Macgame.Oracle.analytic default) ~n:10 ~w:200)
    (Macgame.Equilibrium.social_welfare (Macgame.Oracle.analytic default) ~n:10 ~w:200)

let test_robust_range_brackets_optimum () =
  let w_star = Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic default) ~n:10 in
  let lo, hi = Macgame.Equilibrium.robust_range (Macgame.Oracle.analytic default) ~n:10 ~fraction:0.95 in
  Alcotest.(check bool) "brackets W_c*" true (lo <= w_star && w_star <= hi);
  Alcotest.(check bool) "non-trivial width (robustness)" true (hi - lo > 10);
  let u_star = Macgame.Oracle.payoff_uniform (Macgame.Oracle.analytic default) ~n:10 ~w:w_star in
  Alcotest.(check bool) "edges within fraction" true
    (Macgame.Oracle.payoff_uniform (Macgame.Oracle.analytic default) ~n:10 ~w:lo >= (0.95 *. u_star) -. 1e-9
    && Macgame.Oracle.payoff_uniform (Macgame.Oracle.analytic default) ~n:10 ~w:hi >= (0.95 *. u_star) -. 1e-9);
  Alcotest.(check bool) "left edge tight" true
    (lo = 1 || Macgame.Oracle.payoff_uniform (Macgame.Oracle.analytic default) ~n:10 ~w:(lo - 1) < 0.95 *. u_star)

let test_robust_range_wider_for_rts () =
  (* The paper notes the RTS/CTS curve is flatter: compare relative widths. *)
  let rel params =
    let w_star = Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic params) ~n:20 in
    let lo, hi = Macgame.Equilibrium.robust_range (Macgame.Oracle.analytic params) ~n:20 ~fraction:0.9 in
    float_of_int (hi - lo) /. float_of_int w_star
  in
  Alcotest.(check bool) "rts relatively flatter" true (rel rts_cts > rel default)

let test_lemma4_deviation_ordering =
  (* Lemma 4: a unilateral under-cutter gains, an over-shooter loses, and
     conformers suffer from under-cutters. *)
  QCheck.Test.make ~name:"lemma 4 payoff ordering" ~count:40
    QCheck.(pair (int_range 2 10) (int_range 16 256))
    (fun (n, w) ->
      let uniform = Macgame.Oracle.payoff_uniform (Macgame.Oracle.analytic small) ~n ~w in
      let down = Stdlib.max 1 (w / 2) and up = Stdlib.min 512 (w * 2) in
      QCheck.assume (down < w && up > w);
      let dv_down = Dcf.Model.with_deviant small ~n ~w ~w_dev:down in
      let dv_up = Dcf.Model.with_deviant small ~n ~w ~w_dev:up in
      dv_down.deviant.utility > uniform -. 1e-12
      && dv_down.conformer.utility < uniform +. 1e-12
      && dv_up.deviant.utility < uniform +. 1e-12
      && dv_up.conformer.utility > uniform -. 1e-12)

let test_unilateral_gain_signs () =
  let w_star = Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic default) ~n:5 in
  Alcotest.(check bool) "undercutting beats conformers" true
    (Macgame.Equilibrium.unilateral_gain (Macgame.Oracle.analytic default) ~n:5 ~w:w_star ~w_dev:(w_star / 2) > 0.);
  Alcotest.(check bool) "overshooting loses" true
    (Macgame.Equilibrium.unilateral_gain (Macgame.Oracle.analytic default) ~n:5 ~w:w_star ~w_dev:(w_star * 2) < 0.)

(* {1 Strategy} *)

let obs cws = [ cws ]

let decide (s : Macgame.Strategy.t) ~me ~my_window ~observed =
  s.decide { Macgame.Strategy.stage = 1; me; my_window; observed }

let test_fixed_strategy () =
  let s = Macgame.Strategy.fixed 42 in
  Alcotest.(check int) "initial" 42 s.initial;
  Alcotest.(check int) "ignores observations" 42
    (decide s ~me:0 ~my_window:42 ~observed:(obs [| 1; 2; 3 |]))

let test_tft_follows_min () =
  let s = Macgame.Strategy.tft ~initial:100 in
  Alcotest.(check int) "matches smallest observed" 7
    (decide s ~me:0 ~my_window:100 ~observed:(obs [| 100; 7; 50 |]));
  Alcotest.(check int) "no observations keeps window" 100
    (decide s ~me:0 ~my_window:100 ~observed:[])

let test_tft_stable_at_uniform () =
  let s = Macgame.Strategy.tft ~initial:64 in
  Alcotest.(check int) "uniform profile is a fixed point" 64
    (decide s ~me:1 ~my_window:64 ~observed:(obs [| 64; 64; 64 |]))

let test_gtft_tolerates_small_noise () =
  let s = Macgame.Strategy.gtft ~initial:100 ~r0:1 ~beta:0.9 in
  (* Observed 95 >= 0.9*100: tolerated, keep current window. *)
  Alcotest.(check int) "tolerates" 100
    (decide s ~me:0 ~my_window:100 ~observed:(obs [| 100; 95 |]))

let test_gtft_punishes_real_cheating () =
  let s = Macgame.Strategy.gtft ~initial:100 ~r0:1 ~beta:0.9 in
  Alcotest.(check int) "punishes" 50
    (decide s ~me:0 ~my_window:100 ~observed:(obs [| 100; 50 |]))

let test_gtft_averages_over_r0 () =
  let s = Macgame.Strategy.gtft ~initial:100 ~r0:2 ~beta:0.9 in
  (* One stage at 60 averaged with a clean one gives 80 < 90: punish with
     the min of the most recent stage. *)
  let observed = [ [| 100; 100 |]; [| 100; 60 |] ] in
  Alcotest.(check int) "average triggers punishment" 100
    (decide s ~me:0 ~my_window:100 ~observed);
  (* With r0 = 1 only the clean most-recent stage counts: tolerate. *)
  let s1 = Macgame.Strategy.gtft ~initial:100 ~r0:1 ~beta:0.9 in
  Alcotest.(check int) "fresh stage clean" 100
    (decide s1 ~me:0 ~my_window:100 ~observed)

let test_gtft_validation () =
  Alcotest.check_raises "bad r0" (Invalid_argument "Strategy.gtft: r0 must be >= 1")
    (fun () -> ignore (Macgame.Strategy.gtft ~initial:10 ~r0:0 ~beta:0.9));
  Alcotest.check_raises "bad beta"
    (Invalid_argument "Strategy.gtft: beta must be in (0, 1]") (fun () ->
      ignore (Macgame.Strategy.gtft ~initial:10 ~r0:1 ~beta:1.5))

let test_best_response_undercuts_large_windows () =
  let s = Macgame.Strategy.best_response (Macgame.Oracle.analytic small) ~initial:100 in
  let w = decide s ~me:0 ~my_window:100 ~observed:(obs [| 100; 100; 100; 100 |]) in
  Alcotest.(check bool) (Printf.sprintf "undercuts to %d" w) true (w < 100)

let test_strategy_names () =
  Alcotest.(check string) "tft" "tft"
    (Format.asprintf "%a" Macgame.Strategy.pp (Macgame.Strategy.tft ~initial:1));
  Alcotest.(check string) "fixed" "fixed(9)"
    (Format.asprintf "%a" Macgame.Strategy.pp (Macgame.Strategy.fixed 9))

(* {1 Repeated game} *)

let test_tft_converges_to_min () =
  let initials = [| 300; 150; 80; 200; 120 |] in
  let strategies = Macgame.Repeated.all_tft ~n:5 ~initials in
  let outcome = Macgame.Repeated.run (Macgame.Oracle.analytic default) ~strategies ~stages:6 in
  Alcotest.(check (option int)) "common window = min initial" (Some 80)
    (Macgame.Repeated.converged_window outcome);
  Alcotest.(check (option int)) "converged at stage 1" (Some 1) outcome.converged_at

let test_tft_fairness_after_convergence () =
  let strategies = Macgame.Repeated.all_tft ~n:4 ~initials:[| 90; 120; 100; 110 |] in
  let outcome = Macgame.Repeated.run (Macgame.Oracle.analytic default) ~strategies ~stages:8 in
  let last = outcome.trace.(Array.length outcome.trace - 1) in
  check_close ~eps:1e-9 "equal payoffs at the converged stage" 1.
    (Prelude.Stats.jain_fairness last.utilities)

let test_fixed_cheater_drags_tft_down () =
  let strategies =
    Array.append
      [| Macgame.Strategy.fixed 16 |]
      (Macgame.Repeated.all_tft ~n:4 ~initials:(Array.make 4 128))
  in
  let outcome = Macgame.Repeated.run (Macgame.Oracle.analytic default) ~strategies ~stages:6 in
  Alcotest.(check (option int)) "network converges to the cheater" (Some 16)
    (Macgame.Repeated.converged_window outcome)

let test_punished_cheater_loses_welfare () =
  (* The malicious-player conclusion of Sec. V.E.  Without exponential
     backoff (m = 0, the paper's implicit setting for the collapse
     argument) a W = 1 attacker drags welfare below zero; with m = 5
     backoff the damage is dampened but still monotone. *)
  let p0 = { default with Dcf.Params.max_backoff_stage = 0 } in
  let w_star = Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic p0) ~n:5 in
  let strategies =
    Array.append
      [| Macgame.Strategy.malicious 1 |]
      (Macgame.Repeated.all_tft ~n:4 ~initials:(Array.make 4 w_star))
  in
  let outcome = Macgame.Repeated.run (Macgame.Oracle.analytic p0) ~strategies ~stages:6 in
  let last = outcome.trace.(Array.length outcome.trace - 1) in
  Alcotest.(check bool) "paralysed: negative welfare" true (last.welfare < 0.);
  (* With backoff (default m = 5) the network degrades but survives — a
     documented softening relative to the paper's collapse narrative. *)
  let w5 = Macgame.Equilibrium.social_welfare (Macgame.Oracle.analytic default) ~n:5 in
  Alcotest.(check bool) "monotone damage, but positive" true
    (w5 ~w:4 > 0. && w5 ~w:4 < w5 ~w:16 && w5 ~w:16 < w5 ~w:79)

let test_trace_shape_and_discounting () =
  let strategies = Macgame.Repeated.all_tft ~n:3 ~initials:[| 64; 64; 64 |] in
  let outcome = Macgame.Repeated.run (Macgame.Oracle.analytic default) ~strategies ~stages:5 in
  Alcotest.(check int) "one record per stage" 5 (Array.length outcome.trace);
  Array.iteri
    (fun k r -> Alcotest.(check int) "stage indices" k r.Macgame.Repeated.stage)
    outcome.trace;
  (* Constant profile: discounted utility = u*T*(1-δ^5)/(1-δ). *)
  let u = outcome.trace.(0).utilities.(0) in
  let d = default.Dcf.Params.discount and t = default.Dcf.Params.stage_duration in
  check_close ~eps:1e-9 "discount arithmetic"
    (u *. t *. (1. -. (d ** 5.)) /. (1. -. d))
    outcome.discounted.(0)

let test_run_validation () =
  Alcotest.check_raises "no players" (Invalid_argument "Repeated.run: no players")
    (fun () -> ignore (Macgame.Repeated.run (Macgame.Oracle.analytic default) ~strategies:[||] ~stages:1));
  Alcotest.check_raises "no stages"
    (Invalid_argument "Repeated.run: need at least one stage") (fun () ->
      ignore
        (Macgame.Repeated.run (Macgame.Oracle.analytic default)
           ~strategies:[| Macgame.Strategy.fixed 1 |]
           ~stages:0))

let test_custom_payoff_backend () =
  let strategies = Macgame.Repeated.all_tft ~n:2 ~initials:[| 8; 8 |] in
  let outcome =
    Macgame.Repeated.run (Macgame.Oracle.analytic default) ~strategies ~stages:3
      ~payoffs:(fun p -> Array.map (fun _ -> 0.) p)
  in
  Alcotest.(check (array (float 0.))) "zeros" [| 0.; 0. |] outcome.discounted

let test_tft_converges_from_qcheck_profiles =
  QCheck.Test.make ~name:"all-TFT games always converge to the min initial"
    ~count:40
    QCheck.(list_of_size Gen.(int_range 2 8) (int_range 1 400))
    (fun initials ->
      let initials = Array.of_list initials in
      let n = Array.length initials in
      let strategies = Macgame.Repeated.all_tft ~n ~initials in
      let outcome =
        Macgame.Repeated.run (Macgame.Oracle.analytic default) ~strategies ~stages:4
          ~payoffs:(fun p -> Array.map (fun _ -> 0.) p)
      in
      Macgame.Repeated.converged_window outcome
      = Some (Array.fold_left Stdlib.min initials.(0) initials))

let test_best_response_dynamics_collapse () =
  (* Myopic best-response play (the short-sighted world of [2]) drives
     windows far below the efficient NE. *)
  let n = 4 in
  let w_star = Macgame.Equilibrium.efficient_cw (Macgame.Oracle.analytic small) ~n in
  let strategies =
    Array.init n (fun _ -> Macgame.Strategy.best_response (Macgame.Oracle.analytic small) ~initial:w_star)
  in
  let outcome = Macgame.Repeated.run (Macgame.Oracle.analytic small) ~strategies ~stages:8 in
  let final_min = Macgame.Profile.min_window outcome.final in
  Alcotest.(check bool)
    (Printf.sprintf "collapsed: %d vs W*=%d" final_min w_star)
    true
    (final_min < w_star / 4)

let test_pre_convergence_shortfall () =
  let strategies = Macgame.Repeated.all_tft ~n:3 ~initials:[| 200; 100; 150 |] in
  let outcome = Macgame.Repeated.run (Macgame.Oracle.analytic default) ~strategies ~stages:6 in
  match Macgame.Repeated.pre_convergence_shortfall default outcome with
  | None -> Alcotest.fail "expected convergence"
  | Some shortfall ->
      (* Hand recomputation from the trace. *)
      let t0 = Option.get outcome.converged_at in
      let reference = outcome.trace.(5).utilities in
      Array.iteri
        (fun i s ->
          let expected = ref 0. in
          for k = 0 to t0 - 1 do
            expected :=
              !expected
              +. (default.Dcf.Params.discount ** float_of_int k)
                 *. default.Dcf.Params.stage_duration
                 *. (reference.(i) -. outcome.trace.(k).utilities.(i))
          done;
          check_close "matches trace arithmetic" !expected s)
        shortfall;
      (* The Sec. V.A approximation: the dropped term is tiny relative to
         the horizon total when delta is close to 1 (here the infinite-sum
         scale is u*T/(1-delta)). *)
      let scale =
        reference.(0) *. default.Dcf.Params.stage_duration
        /. (1. -. default.Dcf.Params.discount)
      in
      Array.iter
        (fun s ->
          Alcotest.(check bool) "negligible against the horizon" true
            (Float.abs s < 0.001 *. scale))
        shortfall

let test_pre_convergence_shortfall_none_without_convergence () =
  (* Alternate forever: no constant suffix. *)
  let flip = ref false in
  let strategy =
    {
      Macgame.Strategy.name = "alternator";
      initial = 10;
      decide =
        (fun _ ->
          flip := not !flip;
          if !flip then 20 else 10);
    }
  in
  let outcome =
    Macgame.Repeated.run (Macgame.Oracle.analytic default)
      ~strategies:[| strategy; Macgame.Strategy.fixed 15 |]
      ~stages:5
      ~payoffs:(fun p -> Array.map (fun _ -> 0.) p)
  in
  Alcotest.(check bool) "no convergence, no shortfall" true
    (Macgame.Repeated.pre_convergence_shortfall default outcome = None)

(* {1 Observer} *)

let test_perfect_observer () =
  let cws = [| 10; 20; 30 |] in
  Alcotest.(check (array int)) "identity" cws
    (Macgame.Observer.observe Macgame.Observer.perfect ~me:0 cws);
  let copy = Macgame.Observer.observe Macgame.Observer.perfect ~me:0 cws in
  copy.(1) <- 99;
  Alcotest.(check int) "returns a copy" 20 cws.(1)

let test_noisy_observer_keeps_own_window () =
  let rng = Prelude.Rng.create 5 in
  let observer = Macgame.Observer.noisy ~rng ~rel_stddev:0.5 in
  for _ = 1 to 50 do
    let seen = Macgame.Observer.observe observer ~me:1 [| 100; 64; 100 |] in
    Alcotest.(check int) "own window exact" 64 seen.(1);
    Alcotest.(check bool) "windows stay >= 1" true
      (Array.for_all (fun w -> w >= 1) seen)
  done

let test_noisy_observer_unbiased () =
  let rng = Prelude.Rng.create 6 in
  let observer = Macgame.Observer.noisy ~rng ~rel_stddev:0.1 in
  let acc = Prelude.Stats.create () in
  for _ = 1 to 2000 do
    let seen = Macgame.Observer.observe observer ~me:0 [| 1; 100 |] in
    Prelude.Stats.add acc (float_of_int seen.(1))
  done;
  check_close ~eps:0.02 "mean near truth" 100. (Prelude.Stats.mean acc)

let test_sampling_observer_error_shrinks () =
  let spread samples =
    let rng = Prelude.Rng.create 7 in
    let observer = Macgame.Observer.sampling ~rng ~samples_per_stage:samples in
    let acc = Prelude.Stats.create () in
    for _ = 1 to 500 do
      let seen = Macgame.Observer.observe observer ~me:0 [| 1; 128 |] in
      Prelude.Stats.add acc (float_of_int seen.(1))
    done;
    Prelude.Stats.stddev acc
  in
  Alcotest.(check bool) "more samples, sharper estimate" true
    (spread 100 < spread 4 /. 2.)

let test_sampling_error_formula () =
  (* Monte-Carlo stddev must match the analytic 2·σ_backoff/√k. *)
  let w = 64 and samples = 16 in
  let rng = Prelude.Rng.create 8 in
  let observer = Macgame.Observer.sampling ~rng ~samples_per_stage:samples in
  let acc = Prelude.Stats.create () in
  for _ = 1 to 4000 do
    let seen = Macgame.Observer.observe observer ~me:0 [| 1; w |] in
    Prelude.Stats.add acc (float_of_int seen.(1))
  done;
  let predicted = Macgame.Observer.estimate_error_stddev ~w ~samples in
  check_close ~eps:0.1 "stddev matches prediction" predicted (Prelude.Stats.stddev acc)

let test_gtft_robust_to_sampling_noise_where_tft_is_not () =
  (* Under a noisy observer, plain TFT ratchets the whole network downward
     (an underestimate of any window becomes everyone's next window and is
     never revised upward), while GTFT's tolerance keeps it at the efficient
     window.  This is the quantitative case for GTFT in Sec. IV. *)
  let run strategy_of =
    let rng = Prelude.Rng.create 99 in
    let observer = Macgame.Observer.sampling ~rng ~samples_per_stage:25 in
    let strategies = Array.init 5 (fun _ -> strategy_of ()) in
    let outcome =
      Macgame.Repeated.run (Macgame.Oracle.analytic default) ~observer ~strategies ~stages:30
        ~payoffs:(fun p -> Array.map (fun _ -> 0.) p)
    in
    Macgame.Profile.min_window outcome.final
  in
  let tft_final = run (fun () -> Macgame.Strategy.tft ~initial:79) in
  let gtft_final =
    run (fun () -> Macgame.Strategy.gtft ~initial:79 ~r0:3 ~beta:0.8)
  in
  Alcotest.(check bool)
    (Printf.sprintf "tft drifted to %d, gtft held at %d" tft_final gtft_final)
    true
    (tft_final < gtft_final && gtft_final >= 70)

let suite_profile =
  [
    Alcotest.test_case "uniform" `Quick test_profile_uniform;
    Alcotest.test_case "with_deviant" `Quick test_profile_with_deviant;
    Alcotest.test_case "validate" `Quick test_profile_validate;
    Alcotest.test_case "pp" `Quick test_profile_pp;
  ]

let suite_equilibrium =
  [
    Alcotest.test_case "Table II band" `Slow test_efficient_cw_table2_values;
    Alcotest.test_case "grows with n" `Quick test_efficient_cw_grows_with_n;
    Alcotest.test_case "rts below basic" `Quick test_efficient_cw_rts_below_basic;
    Alcotest.test_case "single player" `Quick test_efficient_cw_single_player;
    QCheck_alcotest.to_alcotest test_efficient_is_global_argmax;
    Alcotest.test_case "tau* via Q (lemma 3)" `Quick test_tau_star_q_properties;
    QCheck_alcotest.to_alcotest test_tau_star_scaling_law;
    Alcotest.test_case "tau* decreasing in n" `Quick test_tau_star_decreases_with_n;
    Alcotest.test_case "cw_of_tau inverts" `Quick test_cw_of_tau_inverts;
    Alcotest.test_case "break-even without backoff" `Quick test_break_even_no_backoff;
    Alcotest.test_case "break-even with backoff" `Quick test_break_even_with_backoff_is_one;
    Alcotest.test_case "NE set membership" `Quick test_ne_set_and_membership;
    Alcotest.test_case "welfare = n*u" `Quick test_social_welfare_is_n_times_payoff;
    Alcotest.test_case "robust range" `Quick test_robust_range_brackets_optimum;
    Alcotest.test_case "rts flatter" `Quick test_robust_range_wider_for_rts;
    QCheck_alcotest.to_alcotest test_lemma4_deviation_ordering;
    Alcotest.test_case "unilateral gain signs" `Quick test_unilateral_gain_signs;
  ]

let suite_strategy =
  [
    Alcotest.test_case "fixed" `Quick test_fixed_strategy;
    Alcotest.test_case "tft follows min" `Quick test_tft_follows_min;
    Alcotest.test_case "tft fixed point" `Quick test_tft_stable_at_uniform;
    Alcotest.test_case "gtft tolerates noise" `Quick test_gtft_tolerates_small_noise;
    Alcotest.test_case "gtft punishes cheating" `Quick test_gtft_punishes_real_cheating;
    Alcotest.test_case "gtft averages over r0" `Quick test_gtft_averages_over_r0;
    Alcotest.test_case "gtft validation" `Quick test_gtft_validation;
    Alcotest.test_case "best response undercuts" `Quick test_best_response_undercuts_large_windows;
    Alcotest.test_case "names" `Quick test_strategy_names;
  ]

let suite_repeated =
  [
    Alcotest.test_case "tft converges to min" `Quick test_tft_converges_to_min;
    Alcotest.test_case "fairness at convergence" `Quick test_tft_fairness_after_convergence;
    Alcotest.test_case "cheater drags network" `Quick test_fixed_cheater_drags_tft_down;
    Alcotest.test_case "malicious collapses welfare" `Quick test_punished_cheater_loses_welfare;
    Alcotest.test_case "trace shape and discounting" `Quick test_trace_shape_and_discounting;
    Alcotest.test_case "validation" `Quick test_run_validation;
    Alcotest.test_case "custom payoff backend" `Quick test_custom_payoff_backend;
    QCheck_alcotest.to_alcotest test_tft_converges_from_qcheck_profiles;
    Alcotest.test_case "best-response collapse" `Slow test_best_response_dynamics_collapse;
    Alcotest.test_case "pre-convergence shortfall (Sec. V.A)" `Quick test_pre_convergence_shortfall;
    Alcotest.test_case "shortfall needs convergence" `Quick test_pre_convergence_shortfall_none_without_convergence;
  ]

let suite_observer =
  [
    Alcotest.test_case "perfect" `Quick test_perfect_observer;
    Alcotest.test_case "noisy keeps own window" `Quick test_noisy_observer_keeps_own_window;
    Alcotest.test_case "noisy unbiased" `Quick test_noisy_observer_unbiased;
    Alcotest.test_case "sampling error shrinks" `Quick test_sampling_observer_error_shrinks;
    Alcotest.test_case "sampling error formula" `Quick test_sampling_error_formula;
    Alcotest.test_case "gtft robust, tft ratchets" `Slow test_gtft_robust_to_sampling_noise_where_tft_is_not;
  ]

let () =
  Alcotest.run "game"
    [
      ("profile", suite_profile);
      ("equilibrium", suite_equilibrium);
      ("strategy", suite_strategy);
      ("repeated", suite_repeated);
      ("observer", suite_observer);
    ]
