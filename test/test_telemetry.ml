(* Tests for the telemetry subsystem: metric semantics, span timing with a
   deterministic clock, JSONL sink round-trips, registry isolation, and the
   instrumentation contracts of the solver/simulator/game layers. *)

module T = Telemetry

let registry ?clock () =
  match clock with
  | Some clock -> T.Registry.create ~label:"test" ~clock ()
  | None -> T.Registry.create ~label:"test" ()

(* A fake clock advancing by [step] seconds per reading. *)
let fake_clock ?(start = 0.) ?(step = 1.) () =
  let now = ref (start -. step) in
  fun () ->
    now := !now +. step;
    !now

(* {1 Metrics} *)

let test_counter () =
  let r = registry () in
  let c = T.Registry.counter r "hits" in
  Alcotest.(check int) "starts at zero" 0 (T.Metric.count c);
  T.Metric.incr c;
  T.Metric.add c 4;
  Alcotest.(check int) "accumulates" 5 (T.Metric.count c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Metric.add: counters only go up") (fun () ->
      T.Metric.add c (-1));
  let c' = T.Registry.counter r "hits" in
  T.Metric.incr c';
  Alcotest.(check int) "same name, same cell" 6 (T.Metric.count c)

let test_gauge () =
  let r = registry () in
  let g = T.Registry.gauge r "depth" in
  T.Metric.set g 3.5;
  Alcotest.(check (float 0.)) "holds last value" 3.5 (T.Metric.value g);
  T.Metric.set g 1.;
  Alcotest.(check (float 0.)) "overwrites" 1. (T.Metric.value g)

let test_histogram () =
  let r = registry () in
  let h = T.Registry.histogram r "latency" in
  List.iter (T.Metric.observe h) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (T.Metric.observations h);
  Alcotest.(check (float 1e-12)) "mean" 2.5 (T.Metric.mean h);
  Alcotest.(check (float 1e-12)) "min" 1. (T.Metric.hmin h);
  Alcotest.(check (float 1e-12)) "max" 4. (T.Metric.hmax h);
  Alcotest.(check (float 1e-12)) "total" 10. (T.Metric.total h);
  (* Welford matches the textbook sample stddev. *)
  Alcotest.(check (float 1e-12)) "stddev"
    (sqrt (5. /. 3.))
    (T.Metric.stddev h)

(* {1 Spans} *)

let test_span_records_duration () =
  let r = registry ~clock:(fake_clock ~step:2. ()) () in
  let result = T.Span.with_span ~registry:r "work" (fun () -> 7) in
  Alcotest.(check int) "returns the body's value" 7 result;
  let h = T.Registry.histogram r "work.seconds" in
  Alcotest.(check int) "one observation" 1 (T.Metric.observations h);
  (* enter and leave each read the fake clock once: 2 s apart. *)
  Alcotest.(check (float 1e-9)) "duration from clock" 2. (T.Metric.mean h);
  Alcotest.(check int) "calls counter" 1
    (T.Metric.count (T.Registry.counter r "work.calls"))

let test_span_nesting_depth () =
  let r = registry () in
  let sink, events = T.Sink.memory () in
  T.Registry.add_sink r sink;
  T.Span.with_span ~registry:r "outer" (fun () ->
      T.Span.with_span ~registry:r "inner" (fun () -> ()));
  let depth_of name =
    List.find_map
      (fun (e : T.Event.t) ->
        match (T.Event.field "name" e, T.Event.field "depth" e) with
        | Some (T.Jsonx.String n), Some (T.Jsonx.Int d) when n = name -> Some d
        | _ -> None)
      (events ())
  in
  Alcotest.(check (option int)) "outer at depth 0" (Some 0) (depth_of "outer");
  Alcotest.(check (option int)) "inner at depth 1" (Some 1) (depth_of "inner");
  Alcotest.(check int) "depth restored" 0 (T.Registry.depth r)

let test_span_survives_exception () =
  let r = registry () in
  (try
     T.Span.with_span ~registry:r "boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span still recorded" 1
    (T.Metric.observations (T.Registry.histogram r "boom.seconds"));
  Alcotest.(check int) "depth restored after raise" 0 (T.Registry.depth r)

(* {1 Events and sinks} *)

let test_emit_is_lazy_without_sinks () =
  let r = registry () in
  let called = ref false in
  T.Registry.emit r "noop" (fun () ->
      called := true;
      []);
  Alcotest.(check bool) "thunk not forced" false !called;
  Alcotest.(check bool) "inactive" false (T.Registry.active r)

let test_memory_sink_order () =
  let r = registry ~clock:(fake_clock ()) () in
  let sink, events = T.Sink.memory () in
  T.Registry.add_sink r sink;
  T.Registry.emit r "a" (fun () -> [ ("k", T.Jsonx.Int 1) ]);
  T.Registry.emit r "b" (fun () -> []);
  (match events () with
  | [ a; b ] ->
      Alcotest.(check string) "order" "a" a.T.Event.name;
      Alcotest.(check string) "order" "b" b.T.Event.name;
      Alcotest.(check bool) "timestamps increase" true
        (b.T.Event.at > a.T.Event.at)
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l));
  T.Registry.remove_sink r sink;
  T.Registry.emit r "c" (fun () -> []);
  Alcotest.(check int) "removed sink sees nothing" 2 (List.length (events ()))

let test_jsonl_sink_round_trip () =
  let r = registry () in
  let path = Filename.temp_file "telemetry_test" ".jsonl" in
  let sink = T.Sink.jsonl path in
  T.Registry.add_sink r sink;
  T.Registry.emit r "alpha" (fun () ->
      [
        ("i", T.Jsonx.Int 42);
        ("f", T.Jsonx.Float 0.1);
        ("s", T.Jsonx.String "quote \" and \\ newline \n done");
        ("l", T.Jsonx.List [ T.Jsonx.Float 1e-3; T.Jsonx.Null ]);
        ("inf", T.Jsonx.Float infinity);
      ]);
  T.Registry.emit r "beta" (fun () -> [ ("ok", T.Jsonx.Bool true) ]);
  T.Registry.remove_sink r sink;
  T.Sink.close sink;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  let events =
    List.map
      (fun line ->
        match T.Event.of_json (T.Jsonx.parse line) with
        | Some e -> e
        | None -> Alcotest.failf "line is not an event: %s" line)
      lines
  in
  (match events with
  | [ alpha; beta ] ->
      Alcotest.(check string) "name survives" "alpha" alpha.T.Event.name;
      Alcotest.(check string) "name survives" "beta" beta.T.Event.name;
      (match T.Event.field "s" alpha with
      | Some (T.Jsonx.String s) ->
          Alcotest.(check string) "escaped string survives"
            "quote \" and \\ newline \n done" s
      | _ -> Alcotest.fail "string field lost");
      (match T.Event.field "f" alpha with
      | Some (T.Jsonx.Float f) ->
          Alcotest.(check (float 0.)) "float round-trips exactly" 0.1 f
      | _ -> Alcotest.fail "float field lost");
      (* Non-finite floats are rendered as null: still valid JSON. *)
      Alcotest.(check bool) "infinity becomes null" true
        (T.Event.field "inf" alpha = Some T.Jsonx.Null)
  | _ -> Alcotest.fail "expected two events")

(* The golden snapshots and the result cache both lean on parse ∘ render
   being the identity; these pin the edges of that contract. *)
let test_jsonx_round_trip_edges () =
  let rt v = T.Jsonx.parse (T.Jsonx.to_string v) in
  (* Control characters, quotes and backslashes in strings. *)
  let hairy = "tab\t nl\n cr\r quote\" back\\slash bell\007 esc\027 nul\000" in
  (match rt (T.Jsonx.String hairy) with
  | T.Jsonx.String s -> Alcotest.(check string) "escapes survive" hairy s
  | _ -> Alcotest.fail "string did not round-trip as a string");
  (* Non-finite floats have no JSON representation: they render as null and
     must still produce a parseable line. *)
  List.iter
    (fun x ->
      Alcotest.(check bool)
        "non-finite float renders as null" true
        (rt (T.Jsonx.Float x) = T.Jsonx.Null))
    [ nan; infinity; neg_infinity ];
  (* Extreme integers. *)
  List.iter
    (fun i ->
      Alcotest.(check bool)
        "extreme int round-trips" true
        (rt (T.Jsonx.Int i) = T.Jsonx.Int i))
    [ max_int; min_int; 0; -1 ];
  (* Floats must round-trip bit-for-bit, including the %.17g fallback
     cases, denormals and integral values (which render with a decimal
     point so they come back as Float, not Int). *)
  List.iter
    (fun x ->
      match rt (T.Jsonx.Float x) with
      | T.Jsonx.Float y ->
          Alcotest.(check bool)
            (Printf.sprintf "float %h bit-identical" x)
            true
            (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      | other ->
          Alcotest.failf "float %h round-tripped as %s" x
            (T.Jsonx.to_string other))
    [
      0.1; 1. /. 3.; 1.0000000000000002; 1e-300; -1.5e308; 4.9e-324; 3.0;
      -0.; 1e16; 123456789.5;
    ]

(* A torn JSONL line — a prefix of a valid object cut mid-write — must be
   rejected, never silently completed. *)
let test_jsonx_rejects_torn_lines () =
  let line =
    T.Jsonx.to_string
      (T.Jsonx.Obj
         [
           ("name", T.Jsonx.String "run_summary");
           ("values", T.Jsonx.List [ T.Jsonx.Float 0.25; T.Jsonx.Int 3 ]);
         ])
  in
  for cut = 1 to String.length line - 1 do
    let torn = String.sub line 0 cut in
    match T.Jsonx.parse torn with
    | _ -> Alcotest.failf "parsed torn prefix %S" torn
    | exception T.Jsonx.Parse_error _ -> ()
  done;
  (* Two records glued onto one line are trailing garbage, not a value. *)
  match T.Jsonx.parse (line ^ line) with
  | _ -> Alcotest.fail "parsed two glued documents"
  | exception T.Jsonx.Parse_error _ -> ()

let test_jsonx_parse_rejects_garbage () =
  List.iter
    (fun s ->
      match T.Jsonx.parse s with
      | _ -> Alcotest.failf "parsed garbage %S" s
      | exception T.Jsonx.Parse_error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

let test_registry_isolation () =
  let a = registry () and b = registry () in
  T.Metric.incr (T.Registry.counter a "shared.name");
  Alcotest.(check int) "registries do not share cells" 0
    (T.Metric.count (T.Registry.counter b "shared.name"));
  let sink, events = T.Sink.memory () in
  T.Registry.add_sink a sink;
  T.Registry.emit b "only-b" (fun () -> []);
  Alcotest.(check int) "sinks are per-registry" 0 (List.length (events ()))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let test_report_renders () =
  let r = registry () in
  T.Metric.add (T.Registry.counter r "requests") 3;
  T.Metric.observe (T.Registry.histogram r "io.seconds") 0.25;
  let s = T.Report.render ~registry:r () in
  Alcotest.(check bool) "mentions the counter" true (contains s "requests");
  Alcotest.(check bool) "mentions the histogram" true (contains s "io.seconds")

(* {1 Layer instrumentation contracts} *)

let params = Dcf.Params.default

let capture f =
  let r = registry () in
  let sink, events = T.Sink.memory () in
  T.Registry.add_sink r sink;
  let x = f r in
  (x, r, events ())

let names events = List.map (fun (e : T.Event.t) -> e.T.Event.name) events

let test_solver_emits_convergence () =
  let _, _, events =
    capture (fun r ->
        Dcf.Solver.solve ~telemetry:r params [| 32; 64; 128 |])
  in
  Alcotest.(check bool) "solver_convergence emitted" true
    (List.mem "solver_convergence" (names events));
  Alcotest.(check bool) "residual_trajectory emitted" true
    (List.mem "residual_trajectory" (names events));
  let conv =
    List.find (fun (e : T.Event.t) -> e.T.Event.name = "solver_convergence")
      events
  in
  (match (T.Event.field "iterations" conv, T.Event.field "converged" conv) with
  | Some (T.Jsonx.Int i), Some (T.Jsonx.Bool c) ->
      Alcotest.(check bool) "iterated" true (i > 0);
      Alcotest.(check bool) "converged" true c
  | _ -> Alcotest.fail "solver_convergence lacks iterations/converged")

let test_homogeneous_iteration_count () =
  let iterations = ref (-1) in
  let tau, p = Dcf.Solver.solve_homogeneous ~iterations params ~n:10 ~w:128 in
  Alcotest.(check bool) "tau in (0,1)" true (tau > 0. && tau < 1.);
  Alcotest.(check bool) "p in (0,1)" true (p > 0. && p < 1.);
  Alcotest.(check bool) "brent iterations reported" true (!iterations > 0);
  let iterations1 = ref (-1) in
  let _ = Dcf.Solver.solve_homogeneous ~iterations:iterations1 params ~n:1 ~w:64 in
  Alcotest.(check int) "n=1 is closed-form" 0 !iterations1;
  let ic = ref (-1) in
  let _ = Dcf.Solver.solve_classes ~iterations:ic params [ (64, 3); (128, 4) ] in
  Alcotest.(check bool) "class iterations reported" true (!ic > 0)

let test_repeated_game_cache_and_events () =
  let outcome, r, events =
    capture (fun r ->
        Macgame.Repeated.run
          (Macgame.Oracle.create ~telemetry:r params)
          ~strategies:
            (Macgame.Repeated.all_tft ~n:4 ~initials:[| 100; 100; 100; 100 |])
          ~stages:6)
  in
  Alcotest.(check bool) "converged" true (outcome.converged_at <> None);
  (* A converged TFT run re-evaluates the same uniform profile every stage:
     the memoised payoff cache must be doing the work. *)
  let hits = T.Metric.count (T.Registry.counter r "oracle.cache.hits") in
  let misses =
    T.Metric.count (T.Registry.counter r "oracle.cache.misses")
  in
  Alcotest.(check bool) "cache hits on a converged run" true (hits > 0);
  Alcotest.(check bool) "some misses too" true (misses > 0);
  Alcotest.(check int) "one game_stage per stage" 6
    (List.length
       (List.filter (fun n -> n = "game_stage") (names events)));
  Alcotest.(check bool) "game_summary emitted" true
    (List.mem "game_summary" (names events))

let test_slotted_run_summary () =
  let result, _, events =
    capture (fun r ->
        Netsim.Slotted.run ~telemetry:r
          { params; cws = Array.make 4 64; duration = 1.; seed = 3 })
  in
  let a = result.Netsim.Slotted.airtime in
  Alcotest.(check (float 1e-9)) "airtime fractions sum to 1" 1.
    (a.idle_fraction +. a.success_fraction +. a.collision_fraction
   +. a.error_fraction);
  let summary =
    List.find (fun (e : T.Event.t) -> e.T.Event.name = "run_summary") events
  in
  (match T.Event.field "jain_fairness" summary with
  | Some (T.Jsonx.Float j) ->
      Alcotest.(check bool) "fairness in (0,1]" true (j > 0. && j <= 1.)
  | _ -> Alcotest.fail "run_summary lacks jain_fairness");
  match T.Event.field "success_share" summary with
  | Some (T.Jsonx.List shares) ->
      Alcotest.(check int) "one share per node" 4 (List.length shares)
  | _ -> Alcotest.fail "run_summary lacks success_share"

let test_spatial_run_summary () =
  let adjacency =
    Array.init 5 (fun i ->
        List.filter (fun j -> j >= 0 && j < 5 && j <> i) [ i - 1; i + 1 ])
  in
  let result, _, events =
    capture (fun r ->
        Netsim.Spatial.run ~telemetry:r
          {
            params = Dcf.Params.rts_cts;
            adjacency;
            cws = Array.make 5 32;
            duration = 1.;
            seed = 5;
          })
  in
  let a = result.Netsim.Spatial.airtime in
  Alcotest.(check bool) "busy + idle = 1" true
    (Float.abs (a.busy_fraction +. a.idle_fraction -. 1.) < 1e-9);
  Alcotest.(check bool) "busy in [0,1]" true
    (a.busy_fraction >= 0. && a.busy_fraction <= 1.);
  Alcotest.(check bool) "run_summary emitted" true
    (List.mem "run_summary" (names events))

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "spans",
        [
          Alcotest.test_case "duration" `Quick test_span_records_duration;
          Alcotest.test_case "nesting depth" `Quick test_span_nesting_depth;
          Alcotest.test_case "exception safety" `Quick
            test_span_survives_exception;
        ] );
      ( "events",
        [
          Alcotest.test_case "lazy without sinks" `Quick
            test_emit_is_lazy_without_sinks;
          Alcotest.test_case "memory sink" `Quick test_memory_sink_order;
          Alcotest.test_case "jsonl round-trip" `Quick
            test_jsonl_sink_round_trip;
          Alcotest.test_case "parser rejects garbage" `Quick
            test_jsonx_parse_rejects_garbage;
          Alcotest.test_case "round-trip edge cases" `Quick
            test_jsonx_round_trip_edges;
          Alcotest.test_case "torn lines rejected" `Quick
            test_jsonx_rejects_torn_lines;
          Alcotest.test_case "registry isolation" `Quick
            test_registry_isolation;
          Alcotest.test_case "report renders" `Quick test_report_renders;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "solver convergence" `Quick
            test_solver_emits_convergence;
          Alcotest.test_case "iteration counts" `Quick
            test_homogeneous_iteration_count;
          Alcotest.test_case "repeated game cache" `Quick
            test_repeated_game_cache_and_events;
          Alcotest.test_case "slotted run summary" `Quick
            test_slotted_run_summary;
          Alcotest.test_case "spatial run summary" `Quick
            test_spatial_run_summary;
        ] );
    ]
